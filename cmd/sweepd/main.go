// Command sweepd runs the sweep service: a long-lived HTTP daemon that
// owns one shared measurement session per protocol over a persistent
// content-addressed store, serving concurrent sweep requests from
// cmd/sweep -server clients.
//
//	sweepd -addr :7077 -store ~/.cache/shaderopt-store
//
// Endpoints: POST /sweep (ndjson event stream), GET /healthz,
// GET /metricz (telemetry table). SIGINT/SIGTERM drain gracefully:
// in-flight sweeps complete, the store is synced, and the process exits
// zero.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"shaderopt/internal/store"
	"shaderopt/internal/sweepd"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7077", "listen address")
	storeDir := flag.String("store", "", "persistent store directory (empty disables persistence)")
	storeMaxMB := flag.Int64("store-max-mb", 0, "store size bound in MiB (0 = unbounded)")
	workers := flag.Int("workers", 0, "per-session worker pool size (0 = GOMAXPROCS)")
	drainTimeout := flag.Duration("drain-timeout", 10*time.Minute, "max time to wait for in-flight sweeps on shutdown")
	flag.Parse()

	if err := run(*addr, *storeDir, *storeMaxMB, *workers, *drainTimeout); err != nil {
		fmt.Fprintln(os.Stderr, "sweepd:", err)
		os.Exit(1)
	}
}

func run(addr, storeDir string, storeMaxMB int64, workers int, drainTimeout time.Duration) error {
	cfg := sweepd.Config{Workers: workers}
	if storeDir != "" {
		st, err := store.Open(storeDir, storeMaxMB<<20)
		if err != nil {
			return err
		}
		cfg.Store = st
		log.Printf("store %s (%d entries, %d bytes)", st.Dir(), st.Len(), st.SizeBytes())
	}
	server := sweepd.New(cfg)

	httpSrv := server.HTTPServer(addr)
	errc := make(chan error, 1)
	go func() {
		log.Printf("listening on %s (protocols: %v)", addr, sweepd.ProtocolNames())
		errc <- httpSrv.ListenAndServe()
	}()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	select {
	case err := <-errc:
		return err // ListenAndServe never returns nil
	case sig := <-sigc:
		log.Printf("%s: draining (in-flight sweeps complete, then store sync)", sig)
	}

	ctx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	if err := <-errc; !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	if err := server.Drain(); err != nil {
		return fmt.Errorf("store sync: %w", err)
	}
	log.Printf("drained; bye")
	return nil
}
