package main

import (
	"fmt"

	"shaderopt"
)

// renderEvent formats one per-shader progress line of a running sweep:
// the shader's source language, variant count, where the shader's time
// went (enumeration vs the measurement pipeline), and how much work the
// session caches absorbed (measurement scores served from cache, driver
// compiles reused). The output is pure in the event, so the golden test
// can pin the format.
func renderEvent(ev shaderopt.SweepEvent) string {
	enum := fmt.Sprintf("enum %6.1fms", ev.EnumMS)
	if ev.EnumCached {
		enum = "enum   cached" // same width as the timed form
	}
	return fmt.Sprintf("  [%*d/%d] %-26s %-4s %3d variants, %s, meas %7.1fms, %4d measured, %3d cached, %3d compiles reused",
		len(fmt.Sprint(ev.Total)), ev.Done, ev.Total, ev.Shader, ev.Lang,
		ev.UniqueVariants, enum, ev.MeasureMS, ev.Measured, ev.CacheHits, ev.CompileHits)
}

// sweepStats is the cache summary a finished sweep prints, decoupled from
// the Session accessors so the golden test can feed fixed values.
type sweepStats struct {
	measHits, measMisses       int64
	compileHits, compileMisses int64
	enumEntries, enumVariants  int
	enumBound                  int
	scoreEntries, scoreBound   int
	scoreEvicted               int64
}

func sessionStats(sess *shaderopt.Session) sweepStats {
	var st sweepStats
	st.measHits, st.measMisses = sess.CacheStats()
	st.compileHits, st.compileMisses, _, _ = sess.CompileCacheStats()
	st.enumEntries, st.enumVariants, st.enumBound = sess.EnumCacheStats()
	st.scoreEntries, st.scoreBound, st.scoreEvicted = sess.MeasCacheStats()
	return st
}

// renderAggregate formats the sweep's final one-line aggregate: corpus
// size, total unique variants, the overall measurement-cache hit rate,
// and where the time went — summed per-shader enumeration and
// measurement wall-clock plus total driver-compile time (read from the
// gpu.compile histogram of the attached telemetry snapshot). Pure in the
// stats, so the golden test can pin the format.
func renderAggregate(st shaderopt.PipelineStats) string {
	return fmt.Sprintf(
		"  total: %d shaders, %d unique variants; cache hit rate %.1f%%; enum %.1fms, measure %.1fms, compile %.1fms",
		st.Shaders, st.UniqueVariants, 100*st.HitRate(),
		st.EnumMS, st.MeasureMS, st.CompileMS())
}

// renderSummary formats the end-of-sweep cache accounting.
func renderSummary(st sweepStats) string {
	return fmt.Sprintf(
		"  %d measurements (%d served from cache); %d driver compiles (%d reused via IR fingerprint)\n"+
			"  enumeration cache %d shaders / %d variants (bound %d); measurement cache %d scores (bound %d, %d evicted)",
		st.measMisses, st.measHits, st.compileMisses, st.compileHits,
		st.enumEntries, st.enumVariants, st.enumBound,
		st.scoreEntries, st.scoreBound, st.scoreEvicted)
}
