package main

// Golden-file test for the sweep progress output: the per-shader event
// lines and the end-of-sweep cache summary are rendered from fixed
// events/stats (timings included — the renderer is pure in its inputs,
// so the bytes are deterministic on every machine) and compared against
// testdata/progress.golden, following the internal/report convention.
//
// Regenerate after an intentional format change with:
//
//	go test ./cmd/sweep -run TestGolden -update

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"shaderopt"
	"shaderopt/internal/telemetry"
)

var update = flag.Bool("update", false, "rewrite golden files with current output")

func TestGoldenProgress(t *testing.T) {
	events := []shaderopt.SweepEvent{
		{
			Shader: "blur/v9", Lang: "glsl", Done: 1, Total: 12, UniqueVariants: 11,
			Measured: 55, CacheHits: 0, Workers: 4,
			EnumMS: 12.3, MeasureMS: 41.7, CompileHits: 3,
		},
		{
			Shader: "wgsl/ripple", Lang: "wgsl", Done: 2, Total: 12, UniqueVariants: 10,
			Measured: 50, CacheHits: 5, Workers: 4,
			EnumCached: true, MeasureMS: 30.2, CompileHits: 0,
		},
		{
			Shader: "pbr/l4_spec_full", Lang: "glsl", Done: 12, Total: 12, UniqueVariants: 9,
			Measured: 44, CacheHits: 6, Workers: 4,
			EnumMS: 107.9, MeasureMS: 112.4, CompileHits: 12,
		},
	}
	stats := sweepStats{
		measHits: 11, measMisses: 149,
		compileHits: 15, compileMisses: 268,
		enumEntries: 12, enumVariants: 84, enumBound: 16384,
		scoreEntries: 149, scoreBound: 16384, scoreEvicted: 0,
	}
	agg := shaderopt.PipelineStats{
		Shaders: 12, UniqueVariants: 84,
		Measured: 149, CacheHits: 11, CompileHits: 15,
		EnumMS: 245.6, MeasureMS: 1234.5,
		Metrics: &telemetry.Snapshot{
			Histograms: map[string]telemetry.HistogramSnapshot{
				"gpu.compile": {Sum: 456700 * time.Microsecond},
			},
		},
	}
	var sb strings.Builder
	for _, ev := range events {
		sb.WriteString(renderEvent(ev))
		sb.WriteString("\n")
	}
	sb.WriteString(renderSummary(stats))
	sb.WriteString("\n")
	sb.WriteString(renderAggregate(agg))
	sb.WriteString("\n")

	path := filepath.Join("testdata", "progress.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(sb.String()), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden %s (run with -update to create): %v", path, err)
	}
	if sb.String() != string(want) {
		t.Errorf("progress output differs from golden; rerun with -update after reviewing.\n--- got ---\n%s\n--- want ---\n%s", sb.String(), want)
	}
}
