// Command sweep regenerates the paper's tables and figures: it runs the
// exhaustive 256-flag-combination study over the shader corpus — the
// synthetic GFXBench-like GLSL suite plus the native WGSL and HLSL
// families — on all five simulated platforms and renders each experiment.
// -lang restricts the corpus to one source language.
//
// -report renders the comparative study layer on top of the same sweep:
// "transfer" prints the language×language and backend×backend transfer
// matrices (the best static set learned on one group applied to every
// other, with the pinned GLSL↔HLSL twin cells computed exactly) plus a
// grep-able "Headline:" line per axis; "groups" prints Table I / Fig. 5
// re-learned per source language and per ingestion format. Both compose
// with -lang, -backend, and -server.
//
// Usage:
//
//	sweep -exp all
//	sweep -exp table1,fig5,fig9 -fast
//	sweep -exp fig7 -platform ARM
//	sweep -lang wgsl -exp table1 -fast
//	sweep -lang hlsl -exp table1,fig5 -fast
//	sweep -lang glsl -fast -trace out.json -metrics
//	sweep -report transfer -fast
//	sweep -report transfer,groups -server 127.0.0.1:7077 -fast
//	sweep -fast -debug-addr localhost:6060
//	sweep -fast -server 127.0.0.1:7077
//
// With -server the command runs as a thin client of a sweepd daemon: it
// submits the corpus sources to the service, which measures them through
// its shared warm session and persistent store, streams back per-shader
// progress, and returns every score; enumeration and report rendering
// stay local (they are deterministic, so the locally enumerated variant
// hashes join the returned scores exactly).
package main

import (
	"expvar"
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof"
	"os"
	"strings"

	"shaderopt"
	"shaderopt/internal/analysis"
	"shaderopt/internal/core"
	"shaderopt/internal/corpus"
	"shaderopt/internal/gpu"
	"shaderopt/internal/harness"
	"shaderopt/internal/report"
	"shaderopt/internal/search"
	"shaderopt/internal/sweepd"
)

// cliConfig carries the flag values into run.
type cliConfig struct {
	exp, platform, lang string
	backend             string
	reports             string
	expSet              bool
	fast                bool
	workers             int
	traceOut            string
	metrics             bool
	debugAddr           string
	server              string
}

func main() {
	var c cliConfig
	flag.StringVar(&c.exp, "exp", "all", "experiments: all | fig3,fig4a,fig4b,fig4c,fig5,fig6,fig7,fig8,fig9,table1")
	flag.StringVar(&c.reports, "report", "", "comparative study reports: transfer (cross-language/cross-backend matrices) and/or groups (Table I / Fig. 5 per language and per ingestion format)")
	flag.StringVar(&c.platform, "platform", "", "restrict per-platform figures (7, 9) to one vendor")
	flag.StringVar(&c.lang, "lang", "all", "restrict the corpus by source language: all|glsl|wgsl|hlsl|msl")
	flag.StringVar(&c.backend, "backend", "", "override every platform's driver ingestion format: glsl|msl|spirv (default: each platform's own assignment)")
	flag.BoolVar(&c.fast, "fast", false, "use the reduced measurement protocol (fewer frames/repeats)")
	flag.IntVar(&c.workers, "workers", 0, "worker pool size for the sweep and the sharded variant enumeration (0 = GOMAXPROCS)")
	flag.StringVar(&c.traceOut, "trace", "", "write the run's spans as Chrome trace-event JSON to this file (load in chrome://tracing or Perfetto)")
	flag.BoolVar(&c.metrics, "metrics", false, "print the end-of-run telemetry metrics table to stdout")
	flag.StringVar(&c.debugAddr, "debug-addr", "", "serve expvar (/debug/vars) and net/http/pprof (/debug/pprof/) on this address for the run's duration")
	flag.StringVar(&c.server, "server", "", "run as a thin client of a sweepd daemon at this address (host:port or URL) instead of measuring locally")
	flag.Parse()
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "exp" {
			c.expSet = true
		}
	})

	if err := run(c); err != nil {
		fmt.Fprintln(os.Stderr, "sweep:", err)
		os.Exit(1)
	}
}

func run(c cliConfig) error {
	expList, platformFilter, langFilter := c.exp, c.platform, c.lang
	fast, workers := c.fast, c.workers
	if c.backend != "" && c.server != "" {
		return fmt.Errorf("-backend overrides local platforms only; a sweepd server measures with its own roster")
	}

	// One registry observes the whole run: corpus compiles, enumeration,
	// driver compiles, and the measurement harness all report into it.
	reg := shaderopt.NewTelemetry()
	var tracer *shaderopt.Tracer
	if c.traceOut != "" {
		tracer = shaderopt.NewTracer()
		reg.SetTracer(tracer)
	}
	if c.debugAddr != "" {
		expvar.Publish("shaderopt", expvar.Func(func() any { return reg.Snapshot() }))
		go func() {
			// expvar and pprof register themselves on the default mux.
			if err := http.ListenAndServe(c.debugAddr, nil); err != nil {
				fmt.Fprintln(os.Stderr, "sweep: debug server:", err)
			}
		}()
		fmt.Fprintf(os.Stderr, "debug server on http://%s/debug/pprof/ and /debug/vars\n", c.debugAddr)
	}
	// finish emits the observability outputs once the run is done; the
	// snapshot argument lets the sweep path pass the gauge-refreshed one.
	finish := func(snap *shaderopt.TelemetrySnapshot) error {
		if c.metrics {
			fmt.Println(snap.Table())
		}
		if c.traceOut != "" {
			f, err := os.Create(c.traceOut)
			if err != nil {
				return err
			}
			if err := tracer.WriteJSON(f); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
			fmt.Fprintf(os.Stderr, "trace written to %s (load in chrome://tracing or Perfetto)\n", c.traceOut)
		}
		return nil
	}
	reports := map[string]bool{}
	if c.reports != "" {
		for _, r := range strings.Split(c.reports, ",") {
			r = strings.TrimSpace(strings.ToLower(r))
			if r != "transfer" && r != "groups" {
				return fmt.Errorf("unknown -report %q (want transfer and/or groups)", r)
			}
			reports[r] = true
		}
		// -report alone means just the comparative reports; an explicit
		// -exp composes with them.
		if !c.expSet {
			expList = ""
		}
	}
	want := map[string]bool{}
	for _, e := range strings.Split(expList, ",") {
		want[strings.TrimSpace(strings.ToLower(e))] = true
	}
	all := want["all"]
	has := func(name string) bool { return all || want[name] }

	shaders, err := corpus.Load()
	if err != nil {
		return err
	}
	if langFilter != "" && langFilter != "all" {
		want, err := core.ParseLang(langFilter)
		if err != nil {
			return err
		}
		var kept []*corpus.Shader
		for _, s := range shaders {
			if s.Lang == want {
				kept = append(kept, s)
			}
		}
		if len(kept) == 0 {
			return fmt.Errorf("no %s shaders in the corpus", want)
		}
		shaders = kept
	}
	platforms := gpu.Platforms()
	if c.backend != "" {
		// Pin one ingestion format across the roster: every driver receives
		// the same backend's output, isolating the format's own artefacts
		// from the per-vendor assignment.
		b, err := core.ParseBackend(c.backend)
		if err != nil {
			return err
		}
		for _, p := range platforms {
			p.Ingest = b.String()
		}
	}
	vendors := make([]string, len(platforms))
	for i, p := range platforms {
		vendors[i] = fmt.Sprintf("%s(%s)", p.Vendor, p.Ingest)
	}
	fmt.Printf("Corpus: %d fragment shaders in %d families; platforms: %s\n\n",
		len(shaders), len(corpus.FamilyNames()), strings.Join(vendors, ", "))

	// Static characterizations don't need measurements.
	if has("fig4a") {
		fmt.Println(report.Fig4a(analysis.LinesOfCode(shaders)))
	}
	if has("fig4b") {
		cyc, err := analysis.ARMStaticCycles(shaders)
		if err != nil {
			return err
		}
		fmt.Println(report.Fig4b(cyc))
	}
	if has("fig4c") {
		uni, err := analysis.UniqueVariants(shaders)
		if err != nil {
			return err
		}
		fmt.Println(report.Fig4c(uni))
	}

	needSweep := has("fig3") || has("fig5") || has("fig6") || has("fig7") || has("fig8") || has("fig9") || has("table1") ||
		reports["transfer"] || reports["groups"]
	if !needSweep {
		return finish(reg.Snapshot())
	}

	cfg := harness.DefaultConfig()
	protocol := "default"
	if fast {
		cfg = harness.FastConfig()
		protocol = "fast"
	}
	var sweep *search.Sweep
	// finalSnap is the telemetry snapshot finish renders: the session's
	// gauge-refreshed one locally, the plain registry remotely.
	var finalSnap func() *shaderopt.TelemetrySnapshot
	if c.server != "" {
		var err error
		sweep, err = remoteSweep(c.server, protocol, reg, shaders, cfg, workers)
		if err != nil {
			return err
		}
		finalSnap = reg.Snapshot
	} else {
		// Compile once per shader, then sweep the handles through a session:
		// the measurement cache guarantees each distinct variant is measured
		// exactly once, and the event stream gives live per-shader progress —
		// including how long the sharded variant enumeration took per shader,
		// so the -workers effect is visible as the sweep streams.
		handles, err := shaderopt.CompileCorpus(shaders, shaderopt.WithTelemetry(reg))
		if err != nil {
			return err
		}
		sess := shaderopt.NewSession(
			shaderopt.WithProtocol(cfg),
			shaderopt.WithPlatforms(platforms...),
			shaderopt.WithWorkers(workers),
			shaderopt.WithTelemetry(reg))
		fmt.Printf("Running exhaustive sweep (256 flag combinations per shader, %d workers)...\n", sess.Workers())
		sweep, err = sess.Sweep(handles, func(ev shaderopt.SweepEvent) {
			fmt.Fprintln(os.Stderr, renderEvent(ev))
		})
		if err != nil {
			return err
		}
		fmt.Fprintln(os.Stderr, renderSummary(sessionStats(sess)))
		fmt.Fprintln(os.Stderr, renderAggregate(sweep.Stats))
		finalSnap = sess.Metrics
	}
	fmt.Println()

	if has("table1") || has("fig5") {
		rows := make([]search.MeanSpeedups, len(platforms))
		for i, p := range platforms {
			rows[i] = sweep.MeanSpeedups(p.Vendor)
		}
		if has("table1") {
			fmt.Println(report.Table1(rows))
		}
		if has("fig5") {
			fmt.Println(report.Fig5(rows))
		}
	}
	if has("fig6") {
		means := map[string]float64{}
		for _, v := range vendors {
			means[v] = sweep.Top30Mean(v)
		}
		fmt.Println(report.Fig6(vendors, means))
	}
	if has("fig7") {
		for _, v := range vendors {
			if platformFilter != "" && v != platformFilter {
				continue
			}
			fmt.Println(report.Fig7(v, sweep.PerShaderSpeedups(v), 15))
		}
	}
	if has("fig8") {
		fmt.Println(report.Fig8(sweep.FlagApplicabilities(), vendors))
	}
	if has("fig9") {
		for _, v := range vendors {
			if platformFilter != "" && v != platformFilter {
				continue
			}
			fmt.Println(report.Fig9(v, sweep.FlagIsolation(v)))
		}
	}
	if has("fig3") {
		me := corpus.MotivatingExample()
		r := sweep.ResultFor(me.Name)
		if r == nil {
			return fmt.Errorf("fig3 needs the motivating example %s (filtered out by -lang?)", me.Name)
		}
		gains := map[string]float64{}
		for _, v := range vendors {
			gains[v] = r.BestSpeedup(v)
		}
		dist := sweep.SpeedupDistribution("ARM", core.AllFlags)
		fmt.Println(report.Fig3(gains, vendors, "ARM", dist))
	}
	if reports["groups"] {
		fmt.Println(report.Table1Grouped("language", analysis.LangGroupMeans(sweep)))
		fmt.Println(report.Fig5Grouped("language", analysis.LangGroupMeans(sweep)))
		fmt.Println(report.Table1Grouped("backend", analysis.BackendGroupMeans(sweep)))
		fmt.Println(report.Fig5Grouped("backend", analysis.BackendGroupMeans(sweep)))
	}
	if reports["transfer"] {
		lm := analysis.LangTransferMatrix(sweep)
		bm := analysis.BackendTransferMatrix(sweep)
		fmt.Println(report.TransferMatrix(lm))
		fmt.Println(report.TransferMatrix(bm))
		if h := report.TransferHeadline(lm); h != "" {
			fmt.Println(h)
		}
		if h := report.TransferHeadline(bm); h != "" {
			fmt.Println(h)
		}
	}
	return finish(finalSnap())
}

// remoteSweep runs the study through a sweepd daemon: corpus sources go
// over the wire, measurement happens in the service's shared warm
// session, and the streamed scores are joined to a local (deterministic)
// variant enumeration so every report renders exactly as it would from a
// local sweep.
func remoteSweep(addr, protocol string, reg *shaderopt.Telemetry, shaders []*corpus.Shader, cfg harness.Config, workers int) (*search.Sweep, error) {
	if !strings.Contains(addr, "://") {
		addr = "http://" + addr
	}
	client := &sweepd.Client{BaseURL: addr}
	if err := client.Health(); err != nil {
		return nil, fmt.Errorf("sweepd at %s: %w", addr, err)
	}
	req := sweepd.SweepRequest{Protocol: protocol}
	for _, s := range shaders {
		req.Shaders = append(req.Shaders, sweepd.ShaderSource{
			Name: s.Name, Source: s.Source, Lang: s.Lang.String(),
		})
	}
	fmt.Printf("Submitting sweep of %d shaders to %s (protocol %s)...\n", len(shaders), addr, protocol)
	scores, err := client.Sweep(req, func(ev search.SweepEvent) {
		fmt.Fprintln(os.Stderr, renderEvent(ev))
	})
	if err != nil {
		return nil, err
	}
	if len(scores) != len(shaders) {
		return nil, fmt.Errorf("sweepd returned %d results for %d shaders", len(scores), len(shaders))
	}
	results := make([]*search.ShaderResult, len(shaders))
	for i, s := range shaders {
		if scores[i].Name != s.Name {
			return nil, fmt.Errorf("sweepd result order differs: %s vs %s", scores[i].Name, s.Name)
		}
		h, err := core.CompileT(reg, s.Source, s.Name, s.Lang)
		if err != nil {
			return nil, err
		}
		results[i] = &search.ShaderResult{
			Handle:    h,
			Shader:    s,
			Variants:  h.VariantsT(reg, workers),
			OrigNS:    scores[i].Orig,
			VariantNS: scores[i].Variants,
		}
	}
	return &search.Sweep{Platforms: gpu.Platforms(), Results: results, Cfg: cfg}, nil
}
