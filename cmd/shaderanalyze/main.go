// Command shaderanalyze is the ARM-offline-compiler-style static analyser
// (the tool behind Fig. 4b): it compiles a fragment shader — desktop
// GLSL, WGSL, or HLSL, auto-detected or pinned with -lang — with a chosen
// platform's driver model and reports the per-pipe cycle decomposition,
// register pressure, and instruction footprint. WGSL and HLSL input
// reaches the drivers through the frontend's GLSL translation, like a
// WebGPU runtime or a D3D-porting layer would hand it over.
//
//	shaderanalyze -platform ARM shader.frag
//	shaderanalyze -all shader.frag
//	shaderanalyze -lang wgsl -all shader.wgsl
//	shaderanalyze -lang hlsl -all shader.hlsl
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"shaderopt"
	"shaderopt/internal/gpu"
)

func main() {
	vendor := flag.String("platform", "ARM", "platform: Intel, AMD, NVIDIA, ARM, Qualcomm")
	all := flag.Bool("all", false, "analyse on every platform")
	langName := flag.String("lang", "auto", "source language: auto|glsl|wgsl|hlsl")
	flag.Parse()

	src, err := readInput(flag.Args())
	if err != nil {
		fail(err)
	}
	lang, err := shaderopt.ParseLang(*langName)
	if err != nil {
		fail(err)
	}
	// Compile once; the handle's cached translation feeds every platform.
	sh, err := shaderopt.Compile(src, "analyze", shaderopt.WithLang(lang))
	if err != nil {
		fail(err)
	}
	src = sh.ToGLSL()

	platforms := []*gpu.Platform{}
	if *all {
		platforms = shaderopt.Platforms()
	} else {
		pl := shaderopt.PlatformByVendor(*vendor)
		if pl == nil {
			fail(fmt.Errorf("unknown platform %q", *vendor))
		}
		platforms = append(platforms, pl)
	}

	fmt.Printf("%-10s %10s %10s %10s %10s %10s %6s %8s\n",
		"Platform", "cycles", "arith", "load/st", "texture", "overhead", "regs", "instrs")
	for _, pl := range platforms {
		eff := src
		if pl.Mobile {
			eff, err = shaderopt.ConvertToES(src, "analyze")
			if err != nil {
				fail(err)
			}
		}
		c, err := pl.CompileSource(eff)
		if err != nil {
			fail(err)
		}
		fmt.Printf("%-10s %10.2f %10.2f %10.2f %10.2f %10.2f %6d %8d\n",
			pl.Vendor, c.CyclesPerFragment, c.Arith, c.LoadStore, c.Texture, c.Overhead,
			c.Stats.PeakRegisters, c.Stats.StaticInstrs)
	}
}

func readInput(args []string) (string, error) {
	if len(args) == 0 || args[0] == "-" {
		b, err := io.ReadAll(os.Stdin)
		return string(b), err
	}
	b, err := os.ReadFile(args[0])
	return string(b), err
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "shaderanalyze:", err)
	os.Exit(1)
}
