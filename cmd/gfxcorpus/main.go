// Command gfxcorpus inspects the shader corpus (the synthetic
// GFXBench-4.0-like GLSL suite plus the native WGSL and HLSL families):
// list shaders with their language and size, dump a shader's source, or
// emit the whole corpus to a directory (.frag for GLSL, .wgsl for WGSL,
// .hlsl for HLSL).
//
//	gfxcorpus -list
//	gfxcorpus -dump blur/v9
//	gfxcorpus -dump wgsl/ripple -glsl   # driver-visible GLSL translation
//	gfxcorpus -emit ./shaders
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"shaderopt"
	"shaderopt/internal/corpus"
)

func main() {
	list := flag.Bool("list", false, "list all corpus shaders")
	dump := flag.String("dump", "", "print the source of one shader (family/instance)")
	glsl := flag.Bool("glsl", false, "with -dump: print the driver-visible desktop GLSL instead of the source")
	emit := flag.String("emit", "", "write every shader to the given directory as .frag files")
	flag.Parse()

	shaders, err := shaderopt.Corpus()
	if err != nil {
		fail(err)
	}

	switch {
	case *dump != "":
		s := corpus.ByName(shaders, *dump)
		if s == nil {
			fail(fmt.Errorf("unknown shader %q", *dump))
		}
		if *glsl {
			sh, err := shaderopt.Compile(s.Source, s.Name, shaderopt.WithLang(s.Lang))
			if err != nil {
				fail(err)
			}
			fmt.Print(sh.ToGLSL())
			return
		}
		fmt.Print(s.Source)
	case *emit != "":
		for _, s := range shaders {
			ext := ".frag"
			switch s.Lang {
			case shaderopt.LangWGSL:
				ext = ".wgsl"
			case shaderopt.LangHLSL:
				ext = ".hlsl"
			}
			path := filepath.Join(*emit, strings.ReplaceAll(s.Name, "/", "_")+ext)
			if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
				fail(err)
			}
			if err := os.WriteFile(path, []byte(s.Source), 0o644); err != nil {
				fail(err)
			}
		}
		fmt.Printf("wrote %d shaders to %s\n", len(shaders), *emit)
	default:
		*list = true
		fallthrough
	case *list:
		fmt.Printf("%-26s %-5s %8s  %s\n", "Shader", "lang", "lines", "defines")
		for _, s := range shaders {
			var defs []string
			for k, v := range s.Defines {
				if v == "" {
					defs = append(defs, k)
				} else {
					defs = append(defs, k+"="+v)
				}
			}
			fmt.Printf("%-26s %-5s %8d  %s\n", s.Name, s.Lang, s.Lines, strings.Join(defs, " "))
		}
		fmt.Printf("\n%d shaders in %d families\n", len(shaders), len(corpus.FamilyNames()))
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "gfxcorpus:", err)
	os.Exit(1)
}
