// Command shaderopt is the offline optimizer CLI (the LunarGlass
// equivalent): it reads a fragment shader — desktop GLSL, WGSL, HLSL, or
// MSL, auto-detected or pinned with -lang — and writes the optimized
// output, with pass selection via -flags and target selection via
// -backend (desktop GLSL, MSL, or binary SPIR-V).
//
//	shaderopt -flags unroll+fp-reassociate shader.frag
//	shaderopt -flags all -es shader.frag        # GLES output
//	shaderopt -variants shader.frag             # enumerate unique variants
//	shaderopt -lang wgsl -flags all shader.wgsl # WGSL input
//	shaderopt -lang hlsl -flags all shader.hlsl # HLSL input
//	shaderopt -backend msl shader.frag          # Metal Shading Language
//	shaderopt -backend spirv shader.frag > s.spv # binary SPIR-V module
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"shaderopt"
)

func main() {
	flagList := flag.String("flags", "default", "optimization flags: none|default|all or name+name (adce, coalesce, gvn, reassociate, unroll, hoist, fp-reassociate, div-to-mul)")
	langName := flag.String("lang", "auto", "source language: auto|glsl|wgsl|hlsl|msl")
	backendName := flag.String("backend", "glsl", "codegen backend: glsl|msl|spirv (spirv writes a binary module to stdout)")
	es := flag.Bool("es", false, "emit OpenGL ES output via the SPIR-V conversion path")
	variants := flag.Bool("variants", false, "enumerate all 256 flag combinations and list unique variants")
	vertex := flag.Bool("vertex", false, "also print the auto-generated matching vertex shader")
	metrics := flag.Bool("metrics", false, "print the telemetry metrics table (parse and enumeration counters) to stderr on exit")
	flag.Parse()

	src, name, err := readInput(flag.Args())
	if err != nil {
		fail(err)
	}
	lang, err := shaderopt.ParseLang(*langName)
	if err != nil {
		fail(err)
	}
	backend, err := shaderopt.ParseBackend(*backendName)
	if err != nil {
		fail(err)
	}
	if *es && backend != shaderopt.BackendGLSL {
		fail(fmt.Errorf("-es applies to the GLSL backend only (got -backend %s)", backend))
	}

	// One registry observes the run; -metrics renders it on the way out.
	reg := shaderopt.NewTelemetry()
	if *metrics {
		defer func() { fmt.Fprintln(os.Stderr, reg.Snapshot().Table()) }()
	}

	// One parse serves every mode below: the handle caches the lowered IR.
	sh, err := shaderopt.Compile(src, name, shaderopt.WithLang(lang), shaderopt.WithTelemetry(reg))
	if err != nil {
		fail(err)
	}

	if *variants {
		vs := sh.VariantsT(reg)
		fmt.Printf("%d unique variants from 256 flag combinations:\n", vs.Unique())
		for i, v := range vs.Variants {
			fmt.Printf("%3d. %s  (%d flag sets, canonical: %v)\n", i+1, v.Hash, len(v.FlagSets), v.Canonical())
		}
		return
	}

	flags, err := shaderopt.ParseFlags(*flagList)
	if err != nil {
		fail(err)
	}
	if backend != shaderopt.BackendGLSL {
		// Non-GLSL backends emit straight from the optimized IR; SPIR-V is
		// binary, so bytes go to stdout unrendered.
		out, err := sh.EmitOptimized(flags, backend)
		if err != nil {
			fail(err)
		}
		if _, err := os.Stdout.Write(out); err != nil {
			fail(err)
		}
		return
	}
	out := sh.Optimize(flags)
	if *es {
		out, err = shaderopt.ConvertToES(out, name)
		if err != nil {
			fail(err)
		}
	}
	fmt.Print(out)

	if *vertex {
		// The vertex generator reads the fragment shader's GLSL interface;
		// feed it the driver-visible form for WGSL input.
		vs, err := shaderopt.GenerateVertexShader(sh.ToGLSL())
		if err != nil {
			fail(err)
		}
		fmt.Println("\n// --- auto-generated vertex shader ---")
		fmt.Print(vs)
	}
}

func readInput(args []string) (src, name string, err error) {
	if len(args) == 0 || args[0] == "-" {
		b, err := io.ReadAll(os.Stdin)
		return string(b), "stdin", err
	}
	b, err := os.ReadFile(args[0])
	return string(b), args[0], err
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "shaderopt:", err)
	os.Exit(1)
}
