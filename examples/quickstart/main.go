// Quickstart: compile one fragment shader to a handle (parsed exactly
// once), optimize it offline under two flag sets, measure everything on
// all five simulated GPUs — then do the same study from an HLSL source
// through the third frontend, with zero changes past the IR.
package main

import (
	"fmt"
	"log"

	"shaderopt"
)

const src = `#version 330
uniform sampler2D tex;
uniform vec4 tint;
in vec2 uv;
out vec4 color;
void main() {
    vec4 acc = vec4(0.0);
    for (int i = 0; i < 4; i++) {
        acc += texture(tex, uv + vec2(float(i) * 0.005, 0.0)) / 4.0;
    }
    color = acc * tint * 2.0 + acc * tint;
}
`

func main() {
	protocol := shaderopt.FastProtocol()

	// One Compile, many products: every call below reuses the cached IR.
	sh, err := shaderopt.Compile(src, "quickstart")
	if err != nil {
		log.Fatal(err)
	}
	defaultOut := sh.Optimize(shaderopt.DefaultFlags)
	allOut := sh.Optimize(shaderopt.AllFlags)
	fmt.Printf("original %d bytes; default-flags %d bytes; all-flags %d bytes; %d distinct variants\n\n",
		len(src), len(defaultOut), len(allOut), sh.Variants().Unique())

	fmt.Printf("%-10s %14s %14s %14s %10s\n", "Platform", "original", "default", "all flags", "best gain")
	for _, pl := range shaderopt.Platforms() {
		orig, err := sh.Measure(pl, protocol)
		if err != nil {
			log.Fatal(err)
		}
		def, err := shaderopt.Measure(pl, defaultOut, protocol)
		if err != nil {
			log.Fatal(err)
		}
		all, err := shaderopt.Measure(pl, allOut, protocol)
		if err != nil {
			log.Fatal(err)
		}
		best := def.MedianNS
		if all.MedianNS < best {
			best = all.MedianNS
		}
		fmt.Printf("%-10s %11.2fms %11.2fms %11.2fms %+9.2f%%\n",
			pl.Vendor,
			orig.MedianNS/1e6, def.MedianNS/1e6, all.MedianNS/1e6,
			shaderopt.Speedup(orig.MedianNS, best))
	}

	fmt.Println("\nOptimized shader (all flags):")
	fmt.Println(allOut)

	// The same pipeline speaks HLSL (and WGSL): the frontend is
	// auto-detected, the handle API is identical, and every product —
	// variants, measurements, renders — derives from the same shared IR.
	hlslSh, err := shaderopt.Compile(hlslSrc, "quickstart-hlsl")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nHLSL input (detected %s): %d distinct variants; driver sees:\n%s\n",
		hlslSh.Lang(), hlslSh.Variants().Unique(), hlslSh.Optimize(shaderopt.AllFlags))
}

const hlslSrc = `
Texture2D tex : register(t0);
SamplerState smp : register(s0);

cbuffer Params : register(b0) {
    float4 tint;
};

float4 main(float2 uv : TEXCOORD0) : SV_Target {
    float4 acc = float4(0.0, 0.0, 0.0, 0.0);
    [unroll] for (int i = 0; i < 4; i++) {
        acc += tex.Sample(smp, uv + float2(float(i) * 0.005, 0.0)) / 4.0;
    }
    return acc * tint * 2.0 + acc * tint;
}
`
