// Quickstart: optimize one fragment shader offline and measure it on all
// five simulated GPUs, comparing the default LunarGlass flag set against
// the full flag set.
package main

import (
	"fmt"
	"log"

	"shaderopt"
)

const src = `#version 330
uniform sampler2D tex;
uniform vec4 tint;
in vec2 uv;
out vec4 color;
void main() {
    vec4 acc = vec4(0.0);
    for (int i = 0; i < 4; i++) {
        acc += texture(tex, uv + vec2(float(i) * 0.005, 0.0)) / 4.0;
    }
    color = acc * tint * 2.0 + acc * tint;
}
`

func main() {
	protocol := shaderopt.FastProtocol()

	defaultOut, err := shaderopt.Optimize(src, "quickstart", shaderopt.DefaultFlags)
	if err != nil {
		log.Fatal(err)
	}
	allOut, err := shaderopt.Optimize(src, "quickstart", shaderopt.AllFlags)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("original %d bytes; default-flags %d bytes; all-flags %d bytes\n\n",
		len(src), len(defaultOut), len(allOut))

	fmt.Printf("%-10s %14s %14s %14s %10s\n", "Platform", "original", "default", "all flags", "best gain")
	for _, pl := range shaderopt.Platforms() {
		orig, err := shaderopt.Measure(pl, src, protocol)
		if err != nil {
			log.Fatal(err)
		}
		def, err := shaderopt.Measure(pl, defaultOut, protocol)
		if err != nil {
			log.Fatal(err)
		}
		all, err := shaderopt.Measure(pl, allOut, protocol)
		if err != nil {
			log.Fatal(err)
		}
		best := def.MedianNS
		if all.MedianNS < best {
			best = all.MedianNS
		}
		fmt.Printf("%-10s %11.2fms %11.2fms %11.2fms %+9.2f%%\n",
			pl.Vendor,
			orig.MedianNS/1e6, def.MedianNS/1e6, all.MedianNS/1e6,
			shaderopt.Speedup(orig.MedianNS, best))
	}

	fmt.Println("\nOptimized shader (all flags):")
	fmt.Println(allOut)
}
