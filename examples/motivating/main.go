// Motivating example: the paper's Listing 1 blur shader, before and after
// optimization (Listing 2), with the Figure 3 per-platform speed-ups.
package main

import (
	"fmt"
	"log"

	"shaderopt"
	"shaderopt/internal/corpus"
)

func main() {
	me := corpus.MotivatingExample()
	fmt.Println("=== Listing 1 (original GFXBench-style blur) ===")
	fmt.Println(me.Source)

	vs, err := shaderopt.Variants(me.Source, me.Name)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("256 flag combinations -> %d unique variants\n\n", vs.Unique())

	best, err := shaderopt.Optimize(me.Source, me.Name, shaderopt.AllFlags)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("=== Listing 2 (after unroll + constant folding + unsafe FP reassociation + div-to-mul) ===")
	fmt.Println(best)

	fmt.Println("=== Figure 3: speed-up of the best variant per platform ===")
	protocol := shaderopt.FastProtocol()
	for _, pl := range shaderopt.Platforms() {
		orig, err := shaderopt.Measure(pl, me.Source, protocol)
		if err != nil {
			log.Fatal(err)
		}
		// Exhaustive per-shader search: best variant for this platform.
		bestNS := orig.MedianNS
		var bestFlags shaderopt.Flags
		for _, v := range vs.Variants {
			m, err := shaderopt.Measure(pl, v.Source, protocol)
			if err != nil {
				log.Fatal(err)
			}
			if m.MedianNS < bestNS {
				bestNS = m.MedianNS
				bestFlags = v.Canonical()
			}
		}
		fmt.Printf("  %-10s %+7.2f%%   (best flags: %v)\n",
			pl.Vendor, shaderopt.Speedup(orig.MedianNS, bestNS), bestFlags)
	}
}
