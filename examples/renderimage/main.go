// Renderimage: uses the functional interpreter to render a corpus shader
// to PNG before and after optimization, demonstrating that the unsafe
// flags preserve the image (the harness's visual-equivalence check).
package main

import (
	"flag"
	"fmt"
	"image"
	"image/color"
	"image/png"
	"log"
	"math"
	"os"

	"shaderopt"
	"shaderopt/internal/corpus"
)

func main() {
	shaderName := flag.String("shader", "tonemap/filmic_full", "corpus shader to render")
	size := flag.Int("size", 96, "image size in pixels")
	outDir := flag.String("out", ".", "output directory")
	flag.Parse()

	shaders, err := shaderopt.Corpus()
	if err != nil {
		log.Fatal(err)
	}
	sh := corpus.ByName(shaders, *shaderName)
	if sh == nil {
		log.Fatalf("unknown shader %q", *shaderName)
	}

	before, err := shaderopt.Render(sh.Source, sh.Name, *size, *size, shaderopt.NoFlags)
	if err != nil {
		log.Fatal(err)
	}
	after, err := shaderopt.Render(sh.Source, sh.Name, *size, *size, shaderopt.AllFlags)
	if err != nil {
		log.Fatal(err)
	}

	maxDiff := 0.0
	for y := range before {
		for x := range before[y] {
			for c := 0; c < 4; c++ {
				d := math.Abs(before[y][x][c] - after[y][x][c])
				if d > maxDiff {
					maxDiff = d
				}
			}
		}
	}

	writePNG := func(name string, img [][][4]float64) string {
		path := fmt.Sprintf("%s/%s", *outDir, name)
		out := image.NewRGBA(image.Rect(0, 0, *size, *size))
		for y := range img {
			for x := range img[y] {
				px := img[y][x]
				out.Set(x, y, color.RGBA{clamp8(px[0]), clamp8(px[1]), clamp8(px[2]), 255})
			}
		}
		f, err := os.Create(path)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		if err := png.Encode(f, out); err != nil {
			log.Fatal(err)
		}
		return path
	}

	p1 := writePNG("shader_before.png", before)
	p2 := writePNG("shader_after.png", after)
	fmt.Printf("rendered %s at %dx%d\n  before: %s\n  after:  %s\n", sh.Name, *size, *size, p1, p2)
	fmt.Printf("max per-channel difference after unsafe optimization: %.2e\n", maxDiff)
	if maxDiff > 1e-3 {
		fmt.Println("WARNING: visible difference — unsafe flags changed the image")
	} else {
		fmt.Println("images are visually identical")
	}
}

func clamp8(v float64) uint8 {
	if v <= 0 {
		return 0
	}
	if v >= 1 {
		return 255
	}
	return uint8(v*255 + 0.5)
}
