// Autotune: per-shader iterative compilation on one platform — enumerate
// every distinct variant, measure each, and report the winner vs the
// one-size-fits-all static flag choice. This is the per-shader tuning the
// paper's conclusion calls for ("smarter techniques to choose when and how
// to optimize each shader for each platform").
package main

import (
	"flag"
	"fmt"
	"log"
	"sort"

	"shaderopt"
	"shaderopt/internal/corpus"
)

func main() {
	vendor := flag.String("platform", "ARM", "target platform: Intel, AMD, NVIDIA, ARM, Qualcomm")
	shaderName := flag.String("shader", "tonemap/filmic_full", "corpus shader to tune")
	flag.Parse()

	pl := shaderopt.PlatformByVendor(*vendor)
	if pl == nil {
		log.Fatalf("unknown platform %q", *vendor)
	}
	shaders, err := shaderopt.Corpus()
	if err != nil {
		log.Fatal(err)
	}
	sh := corpus.ByName(shaders, *shaderName)
	if sh == nil {
		log.Fatalf("unknown shader %q (try blur/v9, fxaa/hq, pbr/l2_spec)", *shaderName)
	}

	protocol := shaderopt.FastProtocol()
	orig, err := shaderopt.Measure(pl, sh.Source, protocol)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Tuning %s on %s (%s)\noriginal: %.3fms/frame\n\n",
		sh.Name, pl.Vendor, pl.GPUName, orig.MedianNS/1e6)

	vs, err := shaderopt.Variants(sh.Source, sh.Name)
	if err != nil {
		log.Fatal(err)
	}
	type row struct {
		flags shaderopt.Flags
		ns    float64
		nsets int
	}
	rows := make([]row, 0, vs.Unique())
	for _, v := range vs.Variants {
		m, err := shaderopt.Measure(pl, v.Source, protocol)
		if err != nil {
			log.Fatal(err)
		}
		rows = append(rows, row{v.Canonical(), m.MedianNS, len(v.FlagSets)})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].ns < rows[j].ns })

	fmt.Printf("%d unique variants of 256 combinations:\n", len(rows))
	for i, r := range rows {
		marker := " "
		if i == 0 {
			marker = "*"
		}
		fmt.Printf("%s %-55v %9.3fms  %+7.2f%%  (%d flag sets)\n",
			marker, r.flags, r.ns/1e6, shaderopt.Speedup(orig.MedianNS, r.ns), r.nsets)
	}

	def, err := shaderopt.Optimize(sh.Source, sh.Name, shaderopt.DefaultFlags)
	if err != nil {
		log.Fatal(err)
	}
	dm, err := shaderopt.Measure(pl, def, protocol)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nper-shader tuned: %+.2f%%   default LunarGlass flags: %+.2f%%\n",
		shaderopt.Speedup(orig.MedianNS, rows[0].ns),
		shaderopt.Speedup(orig.MedianNS, dm.MedianNS))
}
