package shaderopt

import (
	"encoding/json"
	"os"
	"strings"
	"testing"
	"time"

	"shaderopt/internal/core"
	"shaderopt/internal/corpus"
	"shaderopt/internal/telemetry"
)

// twinFamilies returns the übershader twin corpus the cross-shader trie
// gates run over: the GLSL tonemap family and its hand-ported HLSL
// twins, which lower to alpha-equivalent IRs and so exercise every
// sharing tier (exact adoption within a family, no-op adoption and
// rename transport across the frontend boundary).
func twinFamilies(t *testing.T) []*corpus.Shader {
	t.Helper()
	var out []*corpus.Shader
	for _, s := range corpus.MustLoad() {
		if strings.HasPrefix(s.Name, "tonemap/") || strings.HasPrefix(s.Name, "hlsl/") {
			out = append(out, s)
		}
	}
	if len(out) < 4 {
		t.Fatalf("twin families missing from corpus: found %d shaders", len(out))
	}
	return out
}

// compileCorpus compiles fresh handles (fresh every call: a handle
// memoizes its variant set, so each enumeration pass needs its own).
func compileCorpus(t *testing.T, shaders []*corpus.Shader) []*core.Shader {
	t.Helper()
	handles := make([]*core.Shader, len(shaders))
	for i, s := range shaders {
		h, err := core.Compile(s.Source, s.Name, s.Lang)
		if err != nil {
			t.Fatal(err)
		}
		handles[i] = h
	}
	return handles
}

// TestSharedEnumerationMatchesPrivate is the corpus-wide byte-identity
// gate for the cross-shader trie: every shader in the twin families
// (the sweep subset under -short, both full families otherwise)
// enumerated through one shared table must produce a variant set
// byte-identical to a private walk — sharing lives strictly at the
// transform level — and the table must actually have answered
// transitions (enum.shared.hits > 0), so the gate cannot pass vacuously
// on a table that never matches.
func TestSharedEnumerationMatchesPrivate(t *testing.T) {
	shaders := twinFamilies(t)
	if testing.Short() {
		shaders = shaders[:4]
	}
	reg := telemetry.NewRegistry()
	shared := core.NewSharedTrie(0)
	shared.Instrument(reg.Counter("enum.shared.hits"), reg.Counter("enum.shared.misses"))

	sharedHandles := compileCorpus(t, shaders)
	privateHandles := compileCorpus(t, shaders)
	for i, h := range sharedHandles {
		got := h.VariantsSharedT(reg, 1, shared)
		want := privateHandles[i].VariantsT(nil, 1)
		if got.Unique() != want.Unique() {
			t.Fatalf("%s: shared walk found %d unique variants, private %d", h.Name, got.Unique(), want.Unique())
		}
		for k, wv := range want.Variants {
			gv := got.Variants[k]
			if gv.Hash != wv.Hash || gv.Source != wv.Source {
				t.Fatalf("%s: variant %d differs between shared and private walks (%s vs %s)",
					h.Name, k, gv.Hash, wv.Hash)
			}
			if len(gv.FlagSets) != len(wv.FlagSets) {
				t.Fatalf("%s: variant %d covers %d flag sets shared, %d private",
					h.Name, k, len(gv.FlagSets), len(wv.FlagSets))
			}
			for fi, fl := range wv.FlagSets {
				if gv.FlagSets[fi] != fl {
					t.Fatalf("%s: variant %d flag set %d = %v shared, %v private",
						h.Name, k, fi, gv.FlagSets[fi], fl)
				}
			}
		}
	}

	hits := reg.Counter("enum.shared.hits").Value()
	misses := reg.Counter("enum.shared.misses").Value()
	if hits == 0 {
		t.Fatalf("enum.shared.hits = 0 across %d twin shaders (misses %d): the table never shared anything",
			len(shaders), misses)
	}
	t.Logf("%d twin shaders: %d shared transitions, %d private (%.1f%% hit rate)",
		len(shaders), hits, misses, 100*float64(hits)/float64(hits+misses))
}

// sharedEnumBaseline mirrors testdata/enum_shared_baseline.json: the
// committed expectations of the cross-shader enumeration gate. The warm
// set seeds the shared table (untimed); the timed set is then enumerated
// shared-vs-private.
type sharedEnumBaseline struct {
	MinSpeedup  float64  `json:"min_speedup"`
	Repeats     int      `json:"repeats"`
	WarmShaders []string `json:"warm_shaders"`
	Shaders     []string `json:"shaders"`
}

// TestSharedEnumerationSpeedupRegression is the cross-shader
// counterpart of TestEnumerationSpeedupRegression: with the shared
// table warmed by the GLSL tonemap family, enumerating the HLSL twin
// family must beat a private enumeration of the same handles by the
// committed factor — the sharing is adoption and transport across the
// frontend boundary, the paper's übershader-family scenario. The
// threshold sits well below the speedup observed when the baseline was
// committed, so the gate trips on real regressions (a table that stops
// matching and silently recomputes everything), not machine noise.
// Timing both paths in one process on the same inputs keeps the
// comparison machine-independent; single-threaded so it measures walk
// structure, not scheduling.
func TestSharedEnumerationSpeedupRegression(t *testing.T) {
	if testing.Short() {
		t.Skip("timing gate; runs in the dedicated CI step without -short")
	}
	raw, err := os.ReadFile("testdata/enum_shared_baseline.json")
	if err != nil {
		t.Fatal(err)
	}
	var base sharedEnumBaseline
	if err := json.Unmarshal(raw, &base); err != nil {
		t.Fatal(err)
	}
	if base.MinSpeedup <= 1 || len(base.WarmShaders) == 0 || len(base.Shaders) == 0 || base.Repeats < 1 {
		t.Fatalf("implausible baseline: %+v", base)
	}

	all := corpus.MustLoad()
	pick := func(names []string) []*corpus.Shader {
		out := make([]*corpus.Shader, len(names))
		for i, n := range names {
			s := corpus.ByName(all, n)
			if s == nil {
				t.Fatalf("baseline names missing corpus shader %s", n)
			}
			out[i] = s
		}
		return out
	}
	warmSet, timedSet := pick(base.WarmShaders), pick(base.Shaders)

	shared := core.NewSharedTrie(0)
	for _, h := range compileCorpus(t, warmSet) {
		h.VariantsSharedT(nil, 1, shared)
	}

	sharedPass := func() time.Duration {
		handles := compileCorpus(t, timedSet)
		start := time.Now()
		for _, h := range handles {
			h.VariantsSharedT(nil, 1, shared)
		}
		return time.Since(start)
	}
	privatePass := func() time.Duration {
		handles := compileCorpus(t, timedSet)
		start := time.Now()
		for _, h := range handles {
			h.VariantsT(nil, 1)
		}
		return time.Since(start)
	}

	// Warm both paths once (allocator, templates), then take the fastest
	// of the committed repeat count per path.
	sharedPass()
	privatePass()
	best := func(pass func() time.Duration) time.Duration {
		min := time.Duration(0)
		for i := 0; i < base.Repeats; i++ {
			if d := pass(); min == 0 || d < min {
				min = d
			}
		}
		return min
	}
	private, sharedD := best(privatePass), best(sharedPass)
	speedup := float64(private) / float64(sharedD)
	t.Logf("private %v, shared %v: %.2fx (gate %.1fx)", private, sharedD, speedup, base.MinSpeedup)
	stepSummary(t, gateSummary("Cross-shader enumeration gate (warm shared trie vs private walk)",
		private, sharedD, speedup, base.MinSpeedup))
	if speedup < base.MinSpeedup {
		t.Fatalf("shared enumeration only %.2fx faster than private on the twin family, below the committed %.1fx gate",
			speedup, base.MinSpeedup)
	}
}
