package shaderopt

import (
	"fmt"
	"math"
	"testing"

	"shaderopt/internal/corpus"
	"shaderopt/internal/crossc"
)

// The differential-equivalence suite is the metamorphic oracle guarding
// every pass and enumeration change: optimization must never change what
// a shader computes. For every corpus shader (GLSL and WGSL) and every
// enumerated variant, the variant's generated source is re-parsed from
// text — the exact bytes a driver would receive — rendered through the
// reference interpreter, and compared pixel-by-pixel against the
// unoptimized shader; and every variant must be accepted by all five
// platform driver compilers (mobile ones through the GLES conversion).
//
// Tolerance: the all-off baseline and most variants match bit-for-bit.
// Two flags are documented exceptions that reorder floating point:
// fp-reassociate (the paper's custom unsafe pass) and div-to-mul
// (x/c → x*(1/c), a 1-ulp-per-operation rounding change). Their variants
// may drift by accumulated rounding, so the suite allows a small absolute
// per-channel epsilon on [0,1]-scale color output — far below the 1/255
// quantization of an 8-bit render target — and requires exact equality
// for variants whose flag sets never enable either FP pass.
const (
	diffEpsilon = 1e-6
	diffW       = 8
	diffH       = 8
)

// diffCorpus returns the shaders under differential test: a
// behaviour-diverse subset in -short mode (every pass family and all
// three languages represented), the full corpus otherwise — the full
// sweep is wired into CI as its own step.
func diffCorpus(t *testing.T) []*corpus.Shader {
	t.Helper()
	all, err := corpus.Load()
	if err != nil {
		t.Fatal(err)
	}
	if !testing.Short() {
		return all
	}
	names := []string{
		"blur/v9", "godrays/s32", "pbr/l4_spec_full", "tonemap/filmic_full",
		"fxaa/hq", "relief/basic", "alu/d3", "water/full", "ui/flat",
		"wgsl/ripple", "wgsl/glow",
		"hlsl/filmic_full", "hlsl/reinhard_ext",
	}
	var out []*corpus.Shader
	for _, n := range names {
		s := corpus.ByName(all, n)
		if s == nil {
			t.Fatalf("missing corpus shader %s", n)
		}
		out = append(out, s)
	}
	return out
}

// usesUnsafeFP reports whether any flag set producing this variant
// enables a floating-point-reordering pass.
func usesUnsafeFP(v *Variant) bool {
	for _, fs := range v.FlagSets {
		if fs.Has(FPReassociate) || fs.Has(DivToMul) {
			return true
		}
	}
	return false
}

// maxPixelDelta returns the largest per-channel absolute difference
// between two rendered images.
func maxPixelDelta(a, b [][][4]float64) float64 {
	max := 0.0
	for y := range a {
		for x := range a[y] {
			for c := 0; c < 4; c++ {
				if d := math.Abs(a[y][x][c] - b[y][x][c]); d > max {
					max = d
				}
			}
		}
	}
	return max
}

// TestDifferentialEquivalence renders every enumerated variant of every
// corpus shader from its generated source text and compares it against
// the unoptimized original, then pushes each variant through all five
// platform driver compilers.
func TestDifferentialEquivalence(t *testing.T) {
	platforms := Platforms()
	for _, s := range diffCorpus(t) {
		s := s
		t.Run(s.Name, func(t *testing.T) {
			t.Parallel()
			h, err := Compile(s.Source, s.Name, WithLang(s.Lang))
			if err != nil {
				t.Fatal(err)
			}
			baseline, err := h.Render(diffW, diffH, NoFlags)
			if err != nil {
				t.Fatalf("baseline render: %v", err)
			}
			for _, v := range h.Variants().Variants {
				// Re-parse the variant from its generated text — the bytes
				// a driver would see — not from the in-memory IR, so the
				// comparison also covers codegen faithfulness.
				img, err := Render(v.Source, fmt.Sprintf("%s@%s", s.Name, v.Hash), diffW, diffH, NoFlags)
				if err != nil {
					t.Fatalf("variant %s (flags %v) failed to render: %v", v.Hash, v.Canonical(), err)
				}
				delta := maxPixelDelta(baseline, img)
				tol := 0.0
				if usesUnsafeFP(v) {
					tol = diffEpsilon
				}
				if delta > tol {
					t.Errorf("variant %s (flags %v) diverges from original: max channel delta %g > %g",
						v.Hash, v.Canonical(), delta, tol)
				}

				// Every platform's driver must accept every variant.
				for _, pl := range platforms {
					eff := v.Source
					if pl.Mobile {
						if eff, err = crossc.ToES(v.Source, s.Name); err != nil {
							t.Fatalf("variant %s: GLES conversion: %v", v.Hash, err)
						}
					}
					if _, err := pl.CompileSource(eff); err != nil {
						t.Errorf("variant %s rejected by %s driver: %v", v.Hash, pl.Vendor, err)
					}
				}
			}
		})
	}
}
