module shaderopt

go 1.22
