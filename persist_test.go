package shaderopt

import (
	"testing"

	"shaderopt/internal/corpus"
)

// persistNames is the warm-store acceptance subset: the committed bench
// subset in full runs, a diverse slice of it under -short.
func persistNames() []string {
	if testing.Short() {
		return []string{"blur/v9", "projtex/compose", "ui/flat", "simple/luma"}
	}
	return benchNames
}

func persistShaders(t *testing.T) []*corpus.Shader {
	t.Helper()
	all := corpus.MustLoad()
	var out []*corpus.Shader
	for _, n := range persistNames() {
		s := corpus.ByName(all, n)
		if s == nil {
			t.Fatalf("missing corpus shader %s", n)
		}
		out = append(out, s)
	}
	return out
}

func persistHandles(t *testing.T, opts ...Option) []*Shader {
	t.Helper()
	handles, err := CompileCorpus(persistShaders(t), opts...)
	if err != nil {
		t.Fatal(err)
	}
	return handles
}

func assertSweepsIdentical(t *testing.T, want, got *SweepResult) {
	t.Helper()
	if len(got.Results) != len(want.Results) {
		t.Fatalf("result counts differ: %d vs %d", len(got.Results), len(want.Results))
	}
	for i, wr := range want.Results {
		gr := got.Results[i]
		if gr.Name() != wr.Name() {
			t.Fatalf("order differs at %d: %s vs %s", i, gr.Name(), wr.Name())
		}
		for vendor, ns := range wr.OrigNS {
			if gr.OrigNS[vendor] != ns {
				t.Errorf("%s orig on %s: %v != %v", wr.Name(), vendor, gr.OrigNS[vendor], ns)
			}
		}
		for vendor, perVariant := range wr.VariantNS {
			if len(gr.VariantNS[vendor]) != len(perVariant) {
				t.Fatalf("%s on %s: variant counts differ", wr.Name(), vendor)
			}
			for hash, ns := range perVariant {
				if gr.VariantNS[vendor][hash] != ns {
					t.Errorf("%s variant %s on %s: %v != %v",
						wr.Name(), hash, vendor, gr.VariantNS[vendor][hash], ns)
				}
			}
		}
	}
}

// TestWarmStoreSweepRunsNothing is the persistent-store acceptance gate:
// after one store-backed sweep of the bench subset, a fresh session (new
// process state: empty in-memory caches, fresh telemetry registry) over
// the same store must reproduce every score byte-identically to a cold
// store-less local sweep while running zero driver compiles and zero
// harness measurements — everything is served from disk.
func TestWarmStoreSweepRunsNothing(t *testing.T) {
	cfg := FastProtocol()

	// The oracle: a cold, store-less local sweep.
	local := NewSession(WithProtocol(cfg))
	want, err := local.Sweep(persistHandles(t), nil)
	if err != nil {
		t.Fatal(err)
	}

	st, err := OpenStore(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}

	// Cold store-backed sweep populates the store (write-through).
	warmup := NewSession(WithProtocol(cfg), WithStore(st))
	if _, err := warmup.Sweep(persistHandles(t), nil); err != nil {
		t.Fatal(err)
	}
	coldCompiles := warmup.Telemetry().Counter("gpu.compiles").Value()
	if coldCompiles == 0 {
		t.Fatal("cold store-backed sweep ran no driver compiles; warm assertion would be vacuous")
	}

	// Warm restart: fresh session, fresh registry, same store directory
	// (reopened, as a restarted daemon would).
	st2, err := OpenStore(st.Dir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	warm := NewSession(WithProtocol(cfg), WithStore(st2), WithTelemetry(NewTelemetry()))
	got, err := warm.Sweep(persistHandles(t), nil)
	if err != nil {
		t.Fatal(err)
	}

	reg := warm.Telemetry()
	if n := reg.Counter("gpu.compiles").Value(); n != 0 {
		t.Errorf("warm sweep ran %d driver compiles, want 0", n)
	}
	if n := reg.Counter("harness.batches").Value(); n != 0 {
		t.Errorf("warm sweep ran %d harness batches, want 0", n)
	}
	if n := reg.Counter("harness.samples").Value(); n != 0 {
		t.Errorf("warm sweep drew %d harness samples, want 0", n)
	}
	if hits := reg.Counter("cache.store.hits").Value(); hits == 0 {
		t.Error("warm sweep never hit the store")
	}
	assertSweepsIdentical(t, want, got)
}

// TestStoreProtocolKeysAreDisjoint: the same corpus swept under two
// protocols through one store must not cross-serve scores — the protocol
// is part of the measurement key.
func TestStoreProtocolKeysAreDisjoint(t *testing.T) {
	st, err := OpenStore(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	fast := FastProtocol()
	slow := fast
	slow.Seed ^= 0x9e3779b9 // different seed → different noise → different scores

	a := NewSession(WithProtocol(fast), WithStore(st))
	wantA, err := a.Sweep(persistHandles(t)[:1], nil)
	if err != nil {
		t.Fatal(err)
	}
	b := NewSession(WithProtocol(slow), WithStore(st))
	wantB, err := b.Sweep(persistHandles(t)[:1], nil)
	if err != nil {
		t.Fatal(err)
	}

	// Both protocols re-served from the same store, still disjoint.
	a2 := NewSession(WithProtocol(fast), WithStore(st))
	gotA, err := a2.Sweep(persistHandles(t)[:1], nil)
	if err != nil {
		t.Fatal(err)
	}
	b2 := NewSession(WithProtocol(slow), WithStore(st))
	gotB, err := b2.Sweep(persistHandles(t)[:1], nil)
	if err != nil {
		t.Fatal(err)
	}
	assertSweepsIdentical(t, wantA, gotA)
	assertSweepsIdentical(t, wantB, gotB)

	same := true
	for vendor, ns := range wantA.Results[0].OrigNS {
		if wantB.Results[0].OrigNS[vendor] != ns {
			same = false
		}
	}
	if same {
		t.Fatal("different protocols produced identical originals; disjointness test is vacuous")
	}
}
