package shaderopt

// The docs gate: every Go package in the repo must carry a package
// comment (so `go doc` is useful everywhere), and the markdown docs'
// relative links and anchors must resolve. Runs in the CI quick job.

import (
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// goPackageDirs returns every directory under the repo root that holds
// non-test Go files, skipping testdata and hidden directories.
func goPackageDirs(t *testing.T) []string {
	t.Helper()
	var dirs []string
	err := filepath.WalkDir(".", func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != "." && (strings.HasPrefix(name, ".") || name == "testdata") {
			return fs.SkipDir
		}
		entries, err := os.ReadDir(path)
		if err != nil {
			return err
		}
		for _, e := range entries {
			if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") && !strings.HasSuffix(e.Name(), "_test.go") {
				dirs = append(dirs, path)
				break
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return dirs
}

// TestPackageDocComments fails on any package whose non-test files all
// lack a package comment.
func TestPackageDocComments(t *testing.T) {
	for _, dir := range goPackageDirs(t) {
		fset := token.NewFileSet()
		pkgs, err := parser.ParseDir(fset, dir, func(fi fs.FileInfo) bool {
			return !strings.HasSuffix(fi.Name(), "_test.go")
		}, parser.PackageClauseOnly|parser.ParseComments)
		if err != nil {
			t.Fatalf("%s: %v", dir, err)
		}
		for name, pkg := range pkgs {
			documented := false
			for _, f := range pkg.Files {
				if f.Doc != nil && strings.TrimSpace(f.Doc.Text()) != "" {
					documented = true
					break
				}
			}
			if !documented {
				t.Errorf("package %s (%s) has no package comment on any file", name, dir)
			}
		}
	}
}

// mdLink matches inline markdown links: [text](target). Images and
// reference-style links are out of scope for this corpus of docs.
var mdLink = regexp.MustCompile(`\]\(([^)\s]+)\)`)

// slug reduces a markdown heading to its GitHub anchor form.
func slug(heading string) string {
	var sb strings.Builder
	for _, r := range strings.ToLower(strings.TrimSpace(heading)) {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9', r == '-':
			sb.WriteRune(r)
		case r == ' ':
			sb.WriteByte('-')
		}
	}
	return sb.String()
}

// anchorsOf returns the heading anchors a markdown file defines.
func anchorsOf(t *testing.T, path string) map[string]bool {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	anchors := map[string]bool{}
	inFence := false
	for _, line := range strings.Split(string(data), "\n") {
		if strings.HasPrefix(strings.TrimSpace(line), "```") {
			inFence = !inFence
			continue
		}
		if inFence || !strings.HasPrefix(line, "#") {
			continue
		}
		anchors[slug(strings.TrimLeft(line, "# "))] = true
	}
	return anchors
}

// TestMarkdownLinks checks that every relative link and anchor in the
// top-level docs resolves: linked files exist and linked headings are
// defined in their targets.
func TestMarkdownLinks(t *testing.T) {
	docs := []string{"README.md", "ARCHITECTURE.md", "ROADMAP.md"}
	for _, doc := range docs {
		data, err := os.ReadFile(doc)
		if err != nil {
			t.Fatalf("missing doc %s: %v", doc, err)
		}
		for _, m := range mdLink.FindAllStringSubmatch(string(data), -1) {
			target := m[1]
			if strings.Contains(target, "://") || strings.HasPrefix(target, "mailto:") {
				continue
			}
			file, anchor := target, ""
			if i := strings.IndexByte(target, '#'); i >= 0 {
				file, anchor = target[:i], target[i+1:]
			}
			if file == "" {
				file = doc // same-document anchor
			}
			if _, err := os.Stat(file); err != nil {
				t.Errorf("%s: broken link %q: %v", doc, target, err)
				continue
			}
			if anchor != "" && strings.HasSuffix(file, ".md") && !anchorsOf(t, file)[anchor] {
				t.Errorf("%s: link %q: no heading in %s slugs to %q", doc, target, file, anchor)
			}
		}
	}
}
