package shaderopt

import (
	"shaderopt/internal/core"
	"shaderopt/internal/exec"
	"shaderopt/internal/harness"
	"shaderopt/internal/ir"
	"shaderopt/internal/passes"
	"shaderopt/internal/search"
	"shaderopt/internal/sem"
	"shaderopt/internal/store"
)

// Option configures Compile and NewSession. Compile honors WithLang;
// NewSession honors all options.
type Option func(*options)

type options struct {
	lang       Lang
	cfg        Protocol
	workers    int
	cacheBound int
	platforms  []*Platform
	telemetry  *Telemetry
	store      *store.Store
}

func defaultOptions() options {
	return options{lang: LangAuto, cfg: DefaultProtocol()}
}

// WithLang pins the source language (the default auto-detects).
func WithLang(lang Lang) Option { return func(o *options) { o.lang = lang } }

// WithProtocol sets the session's measurement protocol (the default is
// DefaultProtocol).
func WithProtocol(cfg Protocol) Option { return func(o *options) { o.cfg = cfg } }

// WithWorkers bounds the session's parallelism (0 = GOMAXPROCS): the
// shader fan-out of Sweep and the shard width of the memoized variant
// enumeration.
func WithWorkers(n int) Option { return func(o *options) { o.workers = n } }

// DefaultCacheBound is the session cache budget WithCacheBound(0)
// selects: up to this many variants in the enumeration cache and the
// same number of programs in the driver-lowering cache.
const DefaultCacheBound = search.DefaultCacheBound

// WithCacheBound bounds the session's LRU caches: the variant-enumeration
// cache holds at most n variants (summed over cached shaders), the
// driver front-end cache at most n lowered programs, the driver-compile
// cache at most n compiles, and the measurement cache at most n scores.
// 0 uses DefaultCacheBound; a negative value disables eviction. Evicted
// entries are recomputed bit-identically on their next use, so the bound
// trades only time for memory. A single shader whose unique-variant count
// exceeds n is never admitted to the enumeration cache (admitting it
// would evict the entire cache), so its enumeration is memoized only on
// its own handle — keep n at least the 256 worst case per shader.
func WithCacheBound(n int) Option { return func(o *options) { o.cacheBound = n } }

// WithPlatforms sets the session's platform roster (the default is all
// five).
func WithPlatforms(platforms ...*Platform) Option {
	return func(o *options) { o.platforms = platforms }
}

// WithTelemetry attaches a telemetry registry: every pipeline layer the
// call drives reports into it — frontend parse spans and counters for
// Compile, plus enumeration, cache, driver-compile, and harness metrics
// for a NewSession sweep — and a tracer attached to the registry
// (Telemetry.SetTracer) receives the pipeline's spans. Instrumentation
// never changes results: a traced sweep's scores are byte-identical to
// an untraced one's. Without this option a session still keeps a private
// registry, readable through Session.Telemetry.
func WithTelemetry(reg *Telemetry) Option {
	return func(o *options) { o.telemetry = reg }
}

// Store is a persistent content-addressed on-disk cache (see
// internal/store): the durable layer WithStore slots under a session's
// in-memory caches, holding driver compiles keyed by (vendor, canonical
// IR fingerprint) and measurement scores keyed by (vendor, source hash,
// protocol). Open one with OpenStore.
type Store = store.Store

// OpenStore opens (creating if needed) a persistent store rooted at dir,
// bounded to maxBytes of on-disk entry data (<= 0 means unbounded).
// Stores are safe to share between sessions and processes.
func OpenStore(dir string, maxBytes int64) (*Store, error) {
	return store.Open(dir, maxBytes)
}

// WithStore layers a persistent store under the session's in-memory
// caches: memory miss → store read → compute → write-through. A session
// over a warm store re-serves previously computed driver compiles and
// measurement scores bit-identically with zero vendor-pipeline runs and
// zero harness sampling. Store traffic reports into the session's
// telemetry registry (cache.store.{hits,misses,evictions}, store.*).
func WithStore(st *Store) Option {
	return func(o *options) { o.store = st }
}

// Shader is a compiled handle: source parsed and lowered exactly once,
// with every later operation — optimization, variant enumeration,
// measurement, rendering — derived from the cached IR by
// clone-then-transform. Handles are safe for concurrent use.
type Shader struct {
	h *core.Shader
}

// Compile parses and lowers fragment shader source (GLSL, WGSL, or HLSL,
// auto-detected unless pinned with WithLang) once and returns the handle.
func Compile(src, name string, opts ...Option) (*Shader, error) {
	o := defaultOptions()
	for _, opt := range opts {
		opt(&o)
	}
	h, err := core.CompileT(o.telemetry, src, name, o.lang)
	if err != nil {
		return nil, err
	}
	return &Shader{h: h}, nil
}

// Name returns the shader's name.
func (s *Shader) Name() string { return s.h.Name }

// Lang returns the resolved (never LangAuto) source language.
func (s *Shader) Lang() Lang { return s.h.Lang }

// Source returns the original source text.
func (s *Shader) Source() string { return s.h.Source }

// SourceHash returns the content hash of the original source.
func (s *Shader) SourceHash() string { return s.h.Hash }

// Optimize runs the flagged passes on a clone of the cached IR and
// returns optimized desktop GLSL — the interchange form every simulated
// driver consumes.
func (s *Shader) Optimize(flags Flags) string { return s.h.Optimize(flags) }

// Variants enumerates all 256 flag combinations from the cached IR and
// deduplicates the distinct outputs (Fig. 4c). The walk is memoized over
// the pass trie, so each distinct intermediate IR is transformed once and
// codegen runs once per distinct result. The enumeration runs once per
// handle and is cached; callers share the result.
func (s *Shader) Variants() *VariantSet { return s.h.Variants() }

// VariantsT is Variants with a telemetry registry observing the
// enumeration: the walk that actually runs (the first per handle)
// records its span and the trie's node/merge/collapse counters.
func (s *Shader) VariantsT(reg *Telemetry) *VariantSet { return s.h.VariantsT(reg, 1) }

// ToGLSL returns the driver-visible desktop GLSL: the original text for
// GLSL input, or the cached unoptimized translation for WGSL and HLSL
// input.
func (s *Shader) ToGLSL() string { return s.h.GLSL() }

// Emit serializes the shader's unoptimized IR through the given codegen
// backend. Text backends (GLSL, MSL) return source bytes; BackendSPIRV
// returns a little-endian binary SPIR-V module.
func (s *Shader) Emit(b Backend) ([]byte, error) { return s.h.Emit(b) }

// EmitOptimized runs the flagged passes on a clone of the cached IR and
// serializes the result through the given backend.
func (s *Shader) EmitOptimized(flags Flags, b Backend) ([]byte, error) {
	return s.h.EmitOptimized(flags, b)
}

// Measure times the shader on a platform under the protocol, reusing the
// cached IR: GLSL input feeds the driver compiler directly from the
// lowered program, WGSL and HLSL input is measured via its cached GLSL
// translation (the text a driver would see). Scores are identical to the
// string facade's Measure.
func (s *Shader) Measure(pl *Platform, cfg Protocol) (*Measurement, error) {
	if s.h.GLSLIsSource() {
		return harness.MeasureProgram(pl, s.h.IR(), s.h.Source, cfg)
	}
	return harness.MeasureSource(pl, s.h.GLSL(), cfg)
}

// Render interprets the shader functionally for every pixel of a w×h
// image with default-initialized uniforms (0.5 floats, the patterned
// texture) and uv varying over [0,1]², reusing the cached IR. It returns
// RGBA rows — handy for visually confirming optimization equivalence,
// including across frontends.
func (s *Shader) Render(w, h int, flags Flags) ([][][4]float64, error) {
	prog := s.h.IR()
	if flags != NoFlags {
		passes.Run(prog, flags)
	}
	return renderProgram(prog, w, h)
}

func renderProgram(prog *ir.Program, w, h int) ([][][4]float64, error) {
	env := harness.DefaultEnv(prog)
	img := make([][][4]float64, h)
	for y := 0; y < h; y++ {
		img[y] = make([][4]float64, w)
		for x := 0; x < w; x++ {
			u := (float64(x) + 0.5) / float64(w)
			v := (float64(y) + 0.5) / float64(h)
			for _, in := range prog.Inputs {
				if in.Type.Equal(sem.Vec2) {
					env.Inputs[in.Name] = ir.FloatConst(u, v)
				}
			}
			res, err := exec.Run(prog, env)
			if err != nil {
				return nil, err
			}
			var px [4]float64
			if !res.Discarded {
				for _, out := range prog.Outputs {
					val := res.Outputs[out.Name]
					for i := 0; i < val.Len() && i < 4; i++ {
						px[i] = val.Float(i)
					}
					if val.Len() < 4 {
						px[3] = 1
					}
					break
				}
			}
			img[y][x] = px
		}
	}
	return img, nil
}

// Session owns the shared state of a measurement campaign: the protocol,
// the platform roster, worker parallelism, a concurrency-safe measurement
// cache keyed by (vendor, source hash, protocol), and a cached
// ES-conversion table. Reusing one Session across sweeps and shaders means
// each distinct variant is measured exactly once per platform per
// protocol, no matter how many flag sets or shaders generate it.
type Session struct {
	inner *search.Session
	lang  Lang
}

// NewSession creates a measurement session. Options: WithProtocol,
// WithWorkers, WithPlatforms, WithTelemetry, WithLang (the default
// language for Session.Compile).
func NewSession(opts ...Option) *Session {
	o := defaultOptions()
	for _, opt := range opts {
		opt(&o)
	}
	platforms := o.platforms
	if len(platforms) == 0 {
		platforms = Platforms()
	}
	return &Session{
		inner: search.NewSession(platforms, search.Options{
			Cfg:        o.cfg,
			Workers:    o.workers,
			CacheBound: o.cacheBound,
			Telemetry:  o.telemetry,
			Store:      o.store,
		}),
		lang: o.lang,
	}
}

// Compile parses and lowers source once under the session's default
// language (override per call with Compile and WithLang). The parse
// reports into the session's telemetry registry.
func (s *Session) Compile(src, name string) (*Shader, error) {
	return Compile(src, name, WithLang(s.lang), WithTelemetry(s.inner.Telemetry()))
}

// Protocol returns the session's measurement protocol.
func (s *Session) Protocol() Protocol { return s.inner.Config() }

// Platforms returns the session's platform roster.
func (s *Session) Platforms() []*Platform { return s.inner.Platforms() }

// Workers returns the session's worker-pool size.
func (s *Session) Workers() int { return s.inner.Workers() }

// CacheStats returns how many measurements the session served from cache
// and how many it actually ran.
func (s *Session) CacheStats() (hits, misses int64) { return s.inner.CacheStats() }

// MeasCacheStats reports the measurement-score cache: cached scores, the
// configured bound (0 = unbounded), and how many scores have been evicted
// since the session was created. Evicted scores are re-measured
// bit-identically on their next use.
func (s *Session) MeasCacheStats() (entries, bound int, evicted int64) {
	return s.inner.MeasCacheStats()
}

// CompileCacheStats reports the driver-compile cache keyed by (vendor, IR
// fingerprint): compiles served from cache vs run, occupancy, and bound
// (0 = unbounded). A hit means a variant's canonicalized lowering
// converged with an already-compiled variant's, so the vendor pipeline
// and cost model were skipped for it.
func (s *Session) CompileCacheStats() (hits, misses int64, entries, bound int) {
	return s.inner.CompileCacheStats()
}

// EnumCacheStats reports the enumeration cache's occupancy: cached
// enumerations, their summed variant count (the LRU eviction metric), and
// the configured bound (0 = unbounded).
func (s *Session) EnumCacheStats() (entries, variants, bound int) {
	return s.inner.EnumCacheStats()
}

// Telemetry returns the session's registry — the one passed through
// WithTelemetry, or the private registry the session created. All the
// *CacheStats accessors above are thin wrappers over its counters.
func (s *Session) Telemetry() *Telemetry { return s.inner.Telemetry() }

// Metrics refreshes the cache-occupancy gauges and snapshots the
// session's telemetry registry: every counter, gauge, and duration
// histogram the pipeline layers recorded. Render it with
// TelemetrySnapshot.Table.
func (s *Session) Metrics() *TelemetrySnapshot { return s.inner.Metrics() }

// Variants returns a shader's variant enumeration through the session's
// LRU cache, sharding the memoized trie walk across the session's worker
// pool on a miss. Results are independent of the worker count.
func (s *Session) Variants(sh *Shader) *VariantSet {
	vs, _ := s.inner.Variants(sh.h)
	return vs
}

// SweepEvent is one per-shader progress report streamed from a running
// sweep.
type SweepEvent = search.SweepEvent

// Sweep runs the exhaustive study (256 flag combinations per shader) over
// compiled handles on the session's platforms, measuring each distinct
// variant exactly once. Work is scheduled as (platform → batch of
// distinct compiled variants): per platform, a shader's uncached variants
// are driver-compiled through the session compile cache and sampled in
// one batched harness pass; scores are byte-identical to the per-variant
// pipeline. onEvent, when non-nil, receives per-shader progress as
// shaders complete (callbacks are serialized); pass nil to run silently.
func (s *Session) Sweep(shaders []*Shader, onEvent func(SweepEvent)) (*SweepResult, error) {
	handles := make([]*core.Shader, len(shaders))
	for i, sh := range shaders {
		handles[i] = sh.h
	}
	return s.inner.Sweep(handles, onEvent)
}
