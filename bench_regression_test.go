package shaderopt

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"
	"testing"
	"time"

	"shaderopt/internal/core"
	"shaderopt/internal/corpus"
	"shaderopt/internal/gpu"
	"shaderopt/internal/harness"
	"shaderopt/internal/search"
	"shaderopt/internal/telemetry"
)

// stepSummary appends a markdown fragment to the file named by
// $GITHUB_STEP_SUMMARY when running under GitHub Actions, so the
// benchmark gates' measured speedups surface on the workflow run page
// without digging through logs. A no-op everywhere else.
func stepSummary(t *testing.T, markdown string) {
	t.Helper()
	path := os.Getenv("GITHUB_STEP_SUMMARY")
	if path == "" {
		return
	}
	f, err := os.OpenFile(path, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		t.Logf("step summary: %v", err)
		return
	}
	defer f.Close()
	fmt.Fprint(f, markdown)
}

// gateSummary renders one benchmark gate's result as the markdown table
// the CI run page shows: measured speedup vs the committed baseline.
func gateSummary(gate string, legacy, fast time.Duration, speedup, committed float64) string {
	return fmt.Sprintf(
		"### %s\n\n| legacy | optimized | speedup | committed gate |\n|---|---|---|---|\n| %v | %v | %.2fx | %.1fx |\n\n",
		gate, legacy, fast, speedup, committed)
}

// cacheSummary renders the session caches' traffic from a telemetry
// snapshot as the markdown table the benchmark-gate step summary shows
// next to the speedup numbers: how much of the batched pipeline's win
// came from each cache.
func cacheSummary(snap *telemetry.Snapshot) string {
	var sb strings.Builder
	sb.WriteString("### Session cache hit rates (batched sweep)\n\n| cache | hits | misses | hit rate |\n|---|---|---|---|\n")
	for _, name := range []string{"enum", "lowered", "compile", "scores", "store"} {
		hits := snap.Counters["cache."+name+".hits"]
		misses := snap.Counters["cache."+name+".misses"]
		rate := 0.0
		if hits+misses > 0 {
			rate = 100 * float64(hits) / float64(hits+misses)
		}
		fmt.Fprintf(&sb, "| %s | %d | %d | %.1f%% |\n", name, hits, misses, rate)
	}
	sb.WriteString("\n")
	return sb.String()
}

// TestCacheSummaryTable pins the hit-rate table's shape and arithmetic.
func TestCacheSummaryTable(t *testing.T) {
	snap := &telemetry.Snapshot{Counters: map[string]int64{
		"cache.compile.hits":   30,
		"cache.compile.misses": 10,
	}}
	got := cacheSummary(snap)
	for _, want := range []string{"| cache | hits | misses | hit rate |", "| compile | 30 | 10 | 75.0% |", "| enum | 0 | 0 | 0.0% |"} {
		if !strings.Contains(got, want) {
			t.Errorf("cache summary missing %q:\n%s", want, got)
		}
	}
}

// TestStepSummaryWritesMarkdown pins the GitHub Actions plumbing: the
// helper appends (not truncates) to $GITHUB_STEP_SUMMARY and stays a
// no-op when the variable is unset.
func TestStepSummaryWritesMarkdown(t *testing.T) {
	path := t.TempDir() + "/summary.md"
	if err := os.WriteFile(path, []byte("existing\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Setenv("GITHUB_STEP_SUMMARY", path)
	stepSummary(t, gateSummary("Test gate", 2*time.Second, time.Second, 2.0, 1.5))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	got := string(data)
	for _, want := range []string{"existing\n", "### Test gate", "| 2s | 1s | 2.00x | 1.5x |"} {
		if !strings.Contains(got, want) {
			t.Errorf("summary missing %q:\n%s", want, got)
		}
	}
	t.Setenv("GITHUB_STEP_SUMMARY", "")
	stepSummary(t, "must not be written anywhere")
}

// enumBaseline mirrors testdata/enum_baseline.json: the committed
// expectations of the enumeration benchmark-regression gate.
type enumBaseline struct {
	MinSpeedup float64  `json:"min_speedup"`
	Shaders    []string `json:"shaders"`
	Repeats    int      `json:"repeats"`
}

// TestEnumerationSpeedupRegression is the CI benchmark-regression gate:
// it times the legacy clone-per-combination enumeration against the
// trie-memoized path on the committed shader list and fails if the
// memoized path does not beat the legacy path by the committed
// min_speedup factor. The threshold (2×) sits far below the speedup
// observed when the baseline was committed (~17×), so the gate trips on
// real regressions — a memoization break that silently falls back to
// per-combination work — not on machine noise. Timing both paths in one
// process on the same inputs keeps the comparison machine-independent.
func TestEnumerationSpeedupRegression(t *testing.T) {
	if testing.Short() {
		t.Skip("timing gate; runs in the dedicated CI step without -short")
	}
	raw, err := os.ReadFile("testdata/enum_baseline.json")
	if err != nil {
		t.Fatal(err)
	}
	var base enumBaseline
	if err := json.Unmarshal(raw, &base); err != nil {
		t.Fatal(err)
	}
	if base.MinSpeedup <= 1 || len(base.Shaders) == 0 || base.Repeats < 1 {
		t.Fatalf("implausible baseline: %+v", base)
	}

	all := corpus.MustLoad()
	var shaders []*corpus.Shader
	for _, n := range base.Shaders {
		s := corpus.ByName(all, n)
		if s == nil {
			t.Fatalf("baseline names missing corpus shader %s", n)
		}
		shaders = append(shaders, s)
	}

	compile := func(s *corpus.Shader) *core.Shader {
		h, err := core.Compile(s.Source, s.Name, s.Lang)
		if err != nil {
			t.Fatal(err)
		}
		return h
	}
	legacyPass := func() {
		for _, s := range shaders {
			compile(s).LegacyVariants()
		}
	}
	memoPass := func() {
		for _, s := range shaders {
			compile(s).VariantsN(1)
		}
	}

	// Warm both paths once (corpus templates, allocator), then take the
	// fastest of the committed repeat count per path.
	legacyPass()
	memoPass()
	best := func(pass func()) time.Duration {
		min := time.Duration(0)
		for i := 0; i < base.Repeats; i++ {
			start := time.Now()
			pass()
			if d := time.Since(start); min == 0 || d < min {
				min = d
			}
		}
		return min
	}
	legacy, memo := best(legacyPass), best(memoPass)
	speedup := float64(legacy) / float64(memo)
	t.Logf("legacy %v, memoized %v: %.1fx (gate %.1fx)", legacy, memo, speedup, base.MinSpeedup)
	stepSummary(t, gateSummary("Enumeration benchmark gate (memoized trie vs legacy)",
		legacy, memo, speedup, base.MinSpeedup))
	if speedup < base.MinSpeedup {
		t.Fatalf("memoized enumeration only %.2fx faster than legacy, below the committed %.1fx gate",
			speedup, base.MinSpeedup)
	}
}

// TestHarnessSpeedupRegression is the measurement-pipeline counterpart of
// the enumeration gate: it times a cold sweep — fresh session, every
// driver compile and every sample paid — through the batched,
// compile-memoized pipeline (Session.Sweep) against the legacy
// per-variant pipeline (Session.SweepLegacy, an independent
// harness.MeasureSource per variant × platform) on the committed shader
// list, and fails if the batched path does not win by the committed
// min_speedup factor. Scores are byte-identical between the two paths
// (the harness-equivalence suite pins that corpus-wide); this gate pins
// that the batching, the (vendor, IR fingerprint) compile cache, and the
// shared front end keep actually paying for themselves. Variant
// enumeration is hoisted into setup — it is identical in both paths and
// gated separately by TestEnumerationSpeedupRegression. Timing both
// paths in one process on the same inputs keeps the comparison
// machine-independent; single-threaded so it measures pipeline
// structure, not scheduling.
func TestHarnessSpeedupRegression(t *testing.T) {
	if testing.Short() {
		t.Skip("timing gate; runs in the dedicated CI step without -short")
	}
	raw, err := os.ReadFile("testdata/harness_baseline.json")
	if err != nil {
		t.Fatal(err)
	}
	var base enumBaseline // same schema as the enumeration baseline
	if err := json.Unmarshal(raw, &base); err != nil {
		t.Fatal(err)
	}
	if base.MinSpeedup <= 1 || len(base.Shaders) == 0 || base.Repeats < 1 {
		t.Fatalf("implausible baseline: %+v", base)
	}

	all := corpus.MustLoad()
	var shaders []*corpus.Shader
	for _, n := range base.Shaders {
		s := corpus.ByName(all, n)
		if s == nil {
			t.Fatalf("baseline names missing corpus shader %s", n)
		}
		shaders = append(shaders, s)
	}
	compileAll := func() []*core.Shader {
		handles := make([]*core.Shader, len(shaders))
		for i, s := range shaders {
			h, err := core.Compile(s.Source, s.Name, s.Lang)
			if err != nil {
				t.Fatal(err)
			}
			h.Variants() // hoist enumeration: both pipelines share it
			handles[i] = h
		}
		return handles
	}

	// lastBatched keeps the final batched pass's session so its registry
	// snapshot can feed the step summary's cache hit-rate table.
	var lastBatched *search.Session
	run := func(legacy bool) time.Duration {
		// Fresh handles and a fresh session per pass: the sweep itself is
		// cold, but handle compilation and enumeration stay outside the
		// timed window — they are identical in both pipelines.
		handles := compileAll()
		sess := search.NewSession(gpu.Platforms(), search.Options{Cfg: harness.FastConfig(), Workers: 1})
		if !legacy {
			lastBatched = sess
		}
		start := time.Now()
		var err error
		if legacy {
			_, err = sess.SweepLegacy(handles, nil)
		} else {
			_, err = sess.Sweep(handles, nil)
		}
		if err != nil {
			t.Fatal(err)
		}
		return time.Since(start)
	}

	// Warm both paths once (corpus templates, allocator), then take the
	// fastest of the committed repeat count per path.
	run(true)
	run(false)
	best := func(legacy bool) time.Duration {
		min := time.Duration(0)
		for i := 0; i < base.Repeats; i++ {
			if d := run(legacy); min == 0 || d < min {
				min = d
			}
		}
		return min
	}
	legacy, batched := best(true), best(false)
	speedup := float64(legacy) / float64(batched)
	t.Logf("legacy %v, batched %v: %.2fx (gate %.1fx)", legacy, batched, speedup, base.MinSpeedup)
	stepSummary(t, gateSummary("Harness benchmark gate (batched sweep vs per-variant legacy)",
		legacy, batched, speedup, base.MinSpeedup))
	stepSummary(t, cacheSummary(lastBatched.Metrics()))
	if speedup < base.MinSpeedup {
		t.Fatalf("batched measurement pipeline only %.2fx faster than per-variant legacy, below the committed %.1fx gate",
			speedup, base.MinSpeedup)
	}
}
