package shaderopt

import (
	"encoding/json"
	"os"
	"testing"
	"time"

	"shaderopt/internal/core"
	"shaderopt/internal/corpus"
)

// enumBaseline mirrors testdata/enum_baseline.json: the committed
// expectations of the enumeration benchmark-regression gate.
type enumBaseline struct {
	MinSpeedup float64  `json:"min_speedup"`
	Shaders    []string `json:"shaders"`
	Repeats    int      `json:"repeats"`
}

// TestEnumerationSpeedupRegression is the CI benchmark-regression gate:
// it times the legacy clone-per-combination enumeration against the
// trie-memoized path on the committed shader list and fails if the
// memoized path does not beat the legacy path by the committed
// min_speedup factor. The threshold (2×) sits far below the speedup
// observed when the baseline was committed (~17×), so the gate trips on
// real regressions — a memoization break that silently falls back to
// per-combination work — not on machine noise. Timing both paths in one
// process on the same inputs keeps the comparison machine-independent.
func TestEnumerationSpeedupRegression(t *testing.T) {
	if testing.Short() {
		t.Skip("timing gate; runs in the dedicated CI step without -short")
	}
	raw, err := os.ReadFile("testdata/enum_baseline.json")
	if err != nil {
		t.Fatal(err)
	}
	var base enumBaseline
	if err := json.Unmarshal(raw, &base); err != nil {
		t.Fatal(err)
	}
	if base.MinSpeedup <= 1 || len(base.Shaders) == 0 || base.Repeats < 1 {
		t.Fatalf("implausible baseline: %+v", base)
	}

	all := corpus.MustLoad()
	var shaders []*corpus.Shader
	for _, n := range base.Shaders {
		s := corpus.ByName(all, n)
		if s == nil {
			t.Fatalf("baseline names missing corpus shader %s", n)
		}
		shaders = append(shaders, s)
	}

	compile := func(s *corpus.Shader) *core.Shader {
		h, err := core.Compile(s.Source, s.Name, s.Lang)
		if err != nil {
			t.Fatal(err)
		}
		return h
	}
	legacyPass := func() {
		for _, s := range shaders {
			compile(s).LegacyVariants()
		}
	}
	memoPass := func() {
		for _, s := range shaders {
			compile(s).VariantsN(1)
		}
	}

	// Warm both paths once (corpus templates, allocator), then take the
	// fastest of the committed repeat count per path.
	legacyPass()
	memoPass()
	best := func(pass func()) time.Duration {
		min := time.Duration(0)
		for i := 0; i < base.Repeats; i++ {
			start := time.Now()
			pass()
			if d := time.Since(start); min == 0 || d < min {
				min = d
			}
		}
		return min
	}
	legacy, memo := best(legacyPass), best(memoPass)
	speedup := float64(legacy) / float64(memo)
	t.Logf("legacy %v, memoized %v: %.1fx (gate %.1fx)", legacy, memo, speedup, base.MinSpeedup)
	if speedup < base.MinSpeedup {
		t.Fatalf("memoized enumeration only %.2fx faster than legacy, below the committed %.1fx gate",
			speedup, base.MinSpeedup)
	}
}
