// Package harness is the paper's shader measurement framework (§IV-B): it
// isolates a fragment shader in its own context, auto-generates a matching
// vertex shader from the fragment inputs, initializes every uniform to a
// default via introspection (0.5 for floats, a colourfully-patterned
// texture for samplers), renders repeated full-screen draws front-to-back,
// and times them with (simulated) GL_TIME_ELAPSED queries over 100 frames
// × 5 repeats.
package harness

import (
	"fmt"
	"hash/fnv"
	"math"
	"sort"
	"strings"
	"time"

	"shaderopt/internal/crossc"
	"shaderopt/internal/exec"
	"shaderopt/internal/glsl"
	"shaderopt/internal/gpu"
	"shaderopt/internal/ir"
	"shaderopt/internal/sem"
	"shaderopt/internal/telemetry"
	"shaderopt/internal/timer"
)

// Config mirrors the paper's measurement protocol.
type Config struct {
	// Fragments per draw: full-screen triangles clipped to 500×500 quads.
	Fragments int
	// DrawsPerFrame: 1000 on desktop, 100 on mobile.
	DesktopDraws int
	MobileDraws  int
	// Frames per run and runs per variant.
	Frames  int
	Repeats int
	// Seed namespaces the deterministic noise streams.
	Seed int64
}

// DefaultConfig is the paper's protocol.
func DefaultConfig() Config {
	return Config{
		Fragments:    500 * 500,
		DesktopDraws: 1000,
		MobileDraws:  100,
		Frames:       100,
		Repeats:      5,
		Seed:         1,
	}
}

// FastConfig trades sample count for speed in tests and large sweeps; the
// noise aggregation behaves the same way, just with fewer samples.
func FastConfig() Config {
	c := DefaultConfig()
	c.Frames = 20
	c.Repeats = 3
	return c
}

// Measurement summarizes the frame samples for one shader variant on one
// platform.
type Measurement struct {
	Platform string
	// TrueNS is the noise-free model time per frame (for calibration
	// tests; the paper could not observe this).
	TrueNS float64
	// Samples are measured frame times (Frames × Repeats of them).
	Samples []float64
	// MedianNS/MeanNS/MinNS/StdDevNS aggregate the samples.
	MedianNS float64
	MeanNS   float64
	MinNS    float64
	StdDevNS float64
}

// Score is the robust statistic used for comparisons (median of frame
// times, like the paper's aggregation of noisy timer queries).
func (m *Measurement) Score() float64 { return m.MedianNS }

// MeasureSource compiles desktop GLSL on the platform (converting through
// the SPIR-V path first on mobile, §III-C(d)) and measures it under the
// protocol. The noise stream is seeded from (seed, platform, source hash):
// measurement order never affects results.
func MeasureSource(pl *gpu.Platform, src string, cfg Config) (*Measurement, error) {
	effective := src
	if pl.Mobile {
		es, err := crossc.ToES(src, "mobile")
		if err != nil {
			return nil, fmt.Errorf("mobile conversion: %w", err)
		}
		effective = es
	}
	compiled, err := pl.CompileSource(effective)
	if err != nil {
		return nil, err
	}
	return MeasureCompiled(pl, compiled, src, cfg), nil
}

// MeasureProgram measures an already-lowered program, skipping the driver
// GLSL front end on desktop platforms: the vendor pipeline consumes the
// program directly. Mobile platforms still receive the converted ES text
// through their own front end, exactly as MeasureSource does, because the
// paper's pipeline is textual past the conversion. srcForSeed must be the
// driver-visible source text so the noise stream matches MeasureSource.
//
// When prog is the lowering of srcForSeed, the result is identical to
// MeasureSource(pl, srcForSeed, cfg); for generated text whose re-parse
// would pick up interchange artefacts, measure the text instead. The
// driver pipeline transforms prog in place — pass a clone if it is shared.
func MeasureProgram(pl *gpu.Platform, prog *ir.Program, srcForSeed string, cfg Config) (*Measurement, error) {
	var compiled *gpu.Compiled
	if pl.Mobile {
		es, err := crossc.ESFromIR(prog, "mobile")
		if err != nil {
			return nil, fmt.Errorf("mobile conversion: %w", err)
		}
		compiled, err = pl.CompileSource(es)
		if err != nil {
			return nil, err
		}
	} else {
		compiled = pl.Compile(prog)
	}
	return MeasureCompiled(pl, compiled, srcForSeed, cfg), nil
}

// MeasureCompiled runs the timing protocol on an already-compiled shader.
// It is the per-variant reference path: every call derives its seed, sets
// up its noise stream, and allocates its sample and summary storage from
// scratch. Batch sweeps use MeasureBatch, which hoists that per-variant
// setup out of the inner loop; the two are field-identical (pinned by
// TestMeasureBatchMatchesPerVariant).
func MeasureCompiled(pl *gpu.Platform, compiled *gpu.Compiled, srcForSeed string, cfg Config) *Measurement {
	draws := cfg.DesktopDraws
	if pl.Mobile {
		draws = cfg.MobileDraws
	}
	trueFrame := compiled.DrawNS(cfg.Fragments) * float64(draws)

	q := timer.New(pl.NoiseSigma, pl.OverheadNS*float64(draws), pl.ResolutionNS, deriveSeed(cfg.Seed, pl.Vendor, srcForSeed))
	m := &Measurement{Platform: pl.Vendor, TrueNS: trueFrame}
	for rep := 0; rep < cfg.Repeats; rep++ {
		for f := 0; f < cfg.Frames; f++ {
			m.Samples = append(m.Samples, q.Measure(trueFrame))
		}
	}
	summarize(m)
	return m
}

// BatchItem is one compiled shader variant scheduled for measurement on a
// platform.
type BatchItem struct {
	// Compiled is the driver-compiled shader. It must have been compiled
	// by the platform the batch runs on (its cost model sets the modelled
	// frame time).
	Compiled *gpu.Compiled
	// SrcForSeed is the driver-visible desktop source text that namespaces
	// the variant's noise stream — the same text MeasureSource and
	// MeasureCompiled would hash, so batch membership never changes a
	// sample.
	SrcForSeed string
}

// MeasureBatch runs the timing protocol on a whole batch of compiled
// variants for one platform in a single pass. The per-variant setup that
// MeasureCompiled repeats — draw-count selection, the platform part of the
// seed derivation, noise-generator construction, and sample/summary
// allocation — is hoisted out of the Frames×Repeats inner loop: one seed
// prefix, one reseeded generator, one sample slab, and one sort scratch
// buffer serve the entire batch.
//
// Results are field-identical to calling MeasureCompiled once per item:
// every variant's noise stream is seeded independently from (protocol
// seed, vendor, source), so batch order and batch composition cannot
// affect any sample. The equivalence is pinned corpus-wide by
// TestMeasureBatchMatchesPerVariant.
func MeasureBatch(pl *gpu.Platform, items []BatchItem, cfg Config) []*Measurement {
	return MeasureBatchT(nil, pl, items, cfg)
}

// MeasureBatchT is MeasureBatch with a telemetry registry threaded in:
// the batch records a "measure <vendor>" span carrying the batch size,
// the harness.batches / harness.batch.items / harness.samples counters,
// and the wall-clock duration of the whole sample loop in the
// harness.sample_loop histogram. A nil registry records nothing; the
// noise streams (and so every sample) are untouched either way.
func MeasureBatchT(reg *telemetry.Registry, pl *gpu.Platform, items []BatchItem, cfg Config) []*Measurement {
	if len(items) == 0 {
		return nil
	}
	if reg != nil {
		span := reg.StartSpan("measure "+pl.Vendor, "harness").Arg("batch", len(items))
		start := time.Now()
		defer func() {
			reg.Histogram("harness.sample_loop").Observe(time.Since(start))
			span.End()
		}()
		reg.Counter("harness.batches").Inc()
		reg.Counter("harness.batch.items").Add(int64(len(items)))
		if cfg.Frames > 0 && cfg.Repeats > 0 {
			reg.Counter("harness.samples").Add(int64(len(items) * cfg.Frames * cfg.Repeats))
		}
	}
	draws := cfg.DesktopDraws
	if pl.Mobile {
		draws = cfg.MobileDraws
	}
	overheadNS := pl.OverheadNS * float64(draws)
	prefix := seedPrefix(pl.Vendor)

	samples := 0
	if cfg.Frames > 0 && cfg.Repeats > 0 {
		samples = cfg.Frames * cfg.Repeats
	}
	// One backing slab for every variant's samples and one shared sort
	// scratch; each Measurement gets a full-capacity sub-slice so later
	// appends by callers cannot alias a neighbour.
	slab := make([]float64, len(items)*samples)
	scratch := make([]float64, samples)
	q := timer.New(pl.NoiseSigma, overheadNS, pl.ResolutionNS, 0)

	out := make([]*Measurement, len(items))
	for i, it := range items {
		trueFrame := it.Compiled.DrawNS(cfg.Fragments) * float64(draws)
		m := &Measurement{Platform: pl.Vendor, TrueNS: trueFrame}
		if samples > 0 {
			q.Reseed(seedFrom(cfg.Seed, prefix, it.SrcForSeed))
			buf := slab[i*samples : (i+1)*samples : (i+1)*samples]
			for s := range buf {
				buf[s] = q.Measure(trueFrame)
			}
			m.Samples = buf
			summarizeInto(m, scratch)
		}
		out[i] = m
	}
	return out
}

func summarize(m *Measurement) {
	n := len(m.Samples)
	if n == 0 {
		return
	}
	summarizeInto(m, make([]float64, n))
}

// summarizeInto aggregates m.Samples using scratch (len >= len(m.Samples))
// as the sort buffer, so batch runs reuse one buffer across variants. The
// statistics are computed over the sorted copy in the same order as the
// original per-variant summarize, keeping every float operation — and so
// every Measurement field — bit-identical between the two paths.
func summarizeInto(m *Measurement, scratch []float64) {
	n := len(m.Samples)
	if n == 0 {
		return
	}
	sorted := scratch[:n]
	copy(sorted, m.Samples)
	sort.Float64s(sorted)
	m.MinNS = sorted[0]
	if n%2 == 1 {
		m.MedianNS = sorted[n/2]
	} else {
		m.MedianNS = (sorted[n/2-1] + sorted[n/2]) / 2
	}
	sum := 0.0
	for _, v := range sorted {
		sum += v
	}
	m.MeanNS = sum / float64(n)
	varAcc := 0.0
	for _, v := range sorted {
		d := v - m.MeanNS
		varAcc += d * d
	}
	m.StdDevNS = math.Sqrt(varAcc / float64(n))
}

func deriveSeed(base int64, parts ...string) int64 {
	h := fnv.New64a()
	for _, p := range parts {
		h.Write([]byte(p))
		h.Write([]byte{0})
	}
	return base ^ int64(h.Sum64())
}

// FNV-1a, hand-rolled so the batch path can hoist the (vendor, NUL)
// prefix of the hash state out of the per-variant loop. seedFrom(base,
// seedPrefix(vendor), src) == deriveSeed(base, vendor, src) for every
// input (pinned by TestSeedPrefixMatchesDeriveSeed): FNV folds bytes in
// strictly left-to-right order, so a partially-folded state is reusable.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// seedPrefix returns the FNV-1a state after folding the platform part of
// the noise-seed namespace: the vendor name and its NUL separator.
func seedPrefix(vendor string) uint64 {
	h := uint64(fnvOffset64)
	for i := 0; i < len(vendor); i++ {
		h ^= uint64(vendor[i])
		h *= fnvPrime64
	}
	// NUL separator: XOR with zero is the identity, the multiply is not.
	h *= fnvPrime64
	return h
}

// seedFrom completes a seedPrefix state with the variant's source text.
func seedFrom(base int64, prefix uint64, src string) int64 {
	h := prefix
	for i := 0; i < len(src); i++ {
		h ^= uint64(src[i])
		h *= fnvPrime64
	}
	h *= fnvPrime64 // trailing NUL separator
	return base ^ int64(h)
}

// Speedup returns the percentage speed-up of variant time b relative to
// baseline a: positive means b is faster, as the paper reports.
func Speedup(baselineNS, variantNS float64) float64 {
	if variantNS <= 0 {
		return 0
	}
	return (baselineNS/variantNS - 1) * 100
}

// --- §IV-B support: vertex shader autogen and uniform auto-init ---

// GenerateVertexShader builds the simplified matching vertex shader for a
// fragment shader: one flat-forwarded out per fragment in, a full-screen
// position from a vertex-index trick, and a depth uniform so front-to-back
// draw order is adjustable (§IV-B).
func GenerateVertexShader(fragSrc string) (string, error) {
	sh, err := glsl.Parse(fragSrc)
	if err != nil {
		return "", err
	}
	info, err := sem.Check(sh)
	if err != nil {
		return "", err
	}
	var sb strings.Builder
	version := sh.Version
	if version == "" {
		version = "330"
	}
	fmt.Fprintf(&sb, "#version %s\n", version)
	sb.WriteString("uniform float u_depth;\n")
	for _, in := range info.Inputs() {
		fmt.Fprintf(&sb, "out %s %s;\n", in.Type, in.Name)
	}
	sb.WriteString("void main()\n{\n")
	// Full-screen triangle from gl_VertexID-style constants; the subset has
	// no gl_VertexID, so we emit a canonical triangle via a uniform-less
	// trick kept simple: position covers the viewport.
	sb.WriteString("    vec2 pos = vec2(-1.0, -1.0);\n")
	for _, in := range info.Inputs() {
		fmt.Fprintf(&sb, "    %s = %s;\n", in.Name, defaultValueExpr(in.Type))
	}
	sb.WriteString("    gl_Position = vec4(pos, u_depth, 1.0);\n}\n")
	return sb.String(), nil
}

func defaultValueExpr(t sem.Type) string {
	switch {
	case t.Equal(sem.Float):
		return "0.5"
	case t.IsVector() && t.Kind == sem.KindFloat:
		return fmt.Sprintf("%s(0.5)", t)
	case t.Equal(sem.Int):
		return "0"
	case t.IsVector() && t.Kind == sem.KindInt:
		return fmt.Sprintf("%s(0)", t)
	default:
		return fmt.Sprintf("%s(0.5)", t)
	}
}

// DefaultEnv introspects a program's interface and initializes every
// uniform and input to the harness defaults: 0.5 for float scalars and
// vectors, 1 for integer counts, identity-ish matrices, and the
// colourfully-patterned procedural texture for samplers (§IV-B).
func DefaultEnv(p *ir.Program) *exec.Env {
	env := &exec.Env{
		Uniforms: map[string]*ir.ConstVal{},
		Inputs:   map[string]*ir.ConstVal{},
		Samplers: map[string]exec.Sampler{},
	}
	for _, u := range p.Uniforms {
		if u.Type.IsSampler() {
			env.Samplers[u.Name] = exec.DefaultSampler{}
			continue
		}
		env.Uniforms[u.Name] = defaultValue(u.Type)
	}
	for _, in := range p.Inputs {
		env.Inputs[in.Name] = defaultValue(in.Type)
	}
	return env
}

func defaultValue(t sem.Type) *ir.ConstVal {
	n := t.Components()
	switch t.Kind {
	case sem.KindInt:
		vals := make([]int64, n)
		for i := range vals {
			vals[i] = 1
		}
		return ir.IntConst(vals...)
	case sem.KindBool:
		vals := make([]bool, n)
		return ir.BoolConst(vals...)
	default:
		if t.IsMatrix() {
			// Identity matrix.
			f := make([]float64, n)
			for j := 0; j < t.Mat; j++ {
				f[j*t.Mat+j] = 1
			}
			return &ir.ConstVal{Kind: sem.KindFloat, F: f}
		}
		return ir.SplatFloat(0.5, n)
	}
}
