package harness

import (
	"reflect"
	"strings"
	"testing"

	"shaderopt/internal/core"
	"shaderopt/internal/exec"
	"shaderopt/internal/glsl"
	"shaderopt/internal/gpu"
	"shaderopt/internal/lower"
)

const testSrc = `#version 330
uniform sampler2D tex;
uniform vec4 tint;
uniform mat3 xform;
in vec2 uv;
in vec3 bary;
out vec4 color;
void main() {
    vec3 p = xform * bary;
    color = texture(tex, uv) * tint + vec4(p, 0.0);
}
`

func TestMeasureSourceAllPlatforms(t *testing.T) {
	cfg := FastConfig()
	for _, pl := range gpu.Platforms() {
		m, err := MeasureSource(pl, testSrc, cfg)
		if err != nil {
			t.Fatalf("%s: %v", pl.Vendor, err)
		}
		if len(m.Samples) != cfg.Frames*cfg.Repeats {
			t.Errorf("%s: %d samples, want %d", pl.Vendor, len(m.Samples), cfg.Frames*cfg.Repeats)
		}
		if m.MedianNS <= 0 || m.MeanNS <= 0 || m.MinNS <= 0 {
			t.Errorf("%s: non-positive aggregates %+v", pl.Vendor, m)
		}
		if m.MinNS > m.MedianNS || m.MedianNS > m.Samples[0]*10 {
			t.Errorf("%s: implausible aggregates", pl.Vendor)
		}
	}
}

func TestMeasureDeterministicAcrossOrder(t *testing.T) {
	cfg := FastConfig()
	pl := gpu.NewIntel()
	a, err := MeasureSource(pl, testSrc, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Measure something else in between; the seed derivation must make
	// results order-independent.
	if _, err := MeasureSource(pl, "#version 330\nout vec4 c;\nvoid main() { c = vec4(1.0); }", cfg); err != nil {
		t.Fatal(err)
	}
	b, err := MeasureSource(pl, testSrc, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.MedianNS != b.MedianNS {
		t.Error("measurement depends on order")
	}
}

func TestMobileUsesConversionAndFewerDraws(t *testing.T) {
	cfg := FastConfig()
	arm := gpu.NewARM()
	intel := gpu.NewIntel()
	ma, err := MeasureSource(arm, testSrc, cfg)
	if err != nil {
		t.Fatal(err)
	}
	mi, err := MeasureSource(intel, testSrc, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Mobile runs 100 draws/frame vs 1000 — true time ratio reflects that.
	if ma.TrueNS <= 0 || mi.TrueNS <= 0 {
		t.Fatal("missing true times")
	}
}

func TestNoiseMagnitudeTracksPlatform(t *testing.T) {
	cfg := DefaultConfig()
	intel, qc := gpu.NewIntel(), gpu.NewQualcomm()
	mi, err := MeasureSource(intel, testSrc, cfg)
	if err != nil {
		t.Fatal(err)
	}
	mq, err := MeasureSource(qc, testSrc, cfg)
	if err != nil {
		t.Fatal(err)
	}
	relI := mi.StdDevNS / mi.MeanNS
	relQ := mq.StdDevNS / mq.MeanNS
	if relI >= relQ {
		t.Errorf("Intel rel noise %.4f should be below Qualcomm %.4f", relI, relQ)
	}
}

func TestSpeedup(t *testing.T) {
	if s := Speedup(200, 100); s != 100 {
		t.Errorf("2x faster = %v%%, want 100%%", s)
	}
	if s := Speedup(100, 200); s != -50 {
		t.Errorf("2x slower = %v%%, want -50%%", s)
	}
	if Speedup(100, 0) != 0 {
		t.Error("zero variant time guarded")
	}
}

func TestGenerateVertexShader(t *testing.T) {
	vs, err := GenerateVertexShader(testSrc)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"#version 330", "out vec2 uv;", "out vec3 bary;", "uniform float u_depth;", "gl_Position"} {
		if !strings.Contains(vs, want) {
			t.Errorf("vertex shader missing %q:\n%s", want, vs)
		}
	}
}

func TestDefaultEnvInitialization(t *testing.T) {
	prog, err := core.Lower(testSrc, "env")
	if err != nil {
		t.Fatal(err)
	}
	env := DefaultEnv(prog)
	if env.Uniforms["tint"] == nil || !env.Uniforms["tint"].IsSplat() || env.Uniforms["tint"].F[0] != 0.5 {
		t.Errorf("tint default = %v, want 0.5 splat", env.Uniforms["tint"])
	}
	m := env.Uniforms["xform"]
	if m == nil || m.F[0] != 1 || m.F[1] != 0 || m.F[4] != 1 {
		t.Errorf("matrix default should be identity: %v", m)
	}
	if env.Samplers["tex"] == nil {
		t.Error("sampler default missing")
	}
	if env.Inputs["uv"] == nil || env.Inputs["bary"] == nil {
		t.Error("input defaults missing")
	}
	// The default env must actually run.
	if _, err := exec.Run(prog, env); err != nil {
		t.Fatalf("default env does not execute: %v", err)
	}
}

func TestMeasureErrorOnBadSource(t *testing.T) {
	if _, err := MeasureSource(gpu.NewIntel(), "garbage(", FastConfig()); err == nil {
		t.Error("want error")
	}
	if _, err := MeasureSource(gpu.NewARM(), "garbage(", FastConfig()); err == nil {
		t.Error("want error on mobile path too")
	}
}

func TestConfigs(t *testing.T) {
	d := DefaultConfig()
	if d.Fragments != 250000 || d.DesktopDraws != 1000 || d.MobileDraws != 100 || d.Frames != 100 || d.Repeats != 5 {
		t.Errorf("default config = %+v does not match the paper's protocol", d)
	}
	f := FastConfig()
	if f.Frames >= d.Frames {
		t.Error("fast config should reduce frames")
	}
}

// TestMeasureProgramMatchesMeasureSource: when the program is the lowering
// of the measured text, the IR entry point must produce byte-identical
// measurements to the string path on every platform — that equivalence is
// what lets compiled handles skip the driver front end for originals.
func TestMeasureProgramMatchesMeasureSource(t *testing.T) {
	src := `#version 330
uniform sampler2D tex;
uniform vec4 tint;
in vec2 uv;
out vec4 color;
void main() {
    vec4 a = texture(tex, uv) * tint;
    color = a * 2.0 + a / 4.0;
}
`
	sh, err := glsl.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := lower.Lower(sh, "eq")
	if err != nil {
		t.Fatal(err)
	}
	cfg := FastConfig()
	for _, pl := range gpu.Platforms() {
		want, err := MeasureSource(pl, src, cfg)
		if err != nil {
			t.Fatalf("%s: %v", pl.Vendor, err)
		}
		got, err := MeasureProgram(pl, prog.Clone(), src, cfg)
		if err != nil {
			t.Fatalf("%s: %v", pl.Vendor, err)
		}
		if got.TrueNS != want.TrueNS {
			t.Errorf("%s: TrueNS %v != %v", pl.Vendor, got.TrueNS, want.TrueNS)
		}
		if got.MedianNS != want.MedianNS || got.MeanNS != want.MeanNS {
			t.Errorf("%s: aggregates differ: %+v vs %+v", pl.Vendor, got, want)
		}
		for i := range want.Samples {
			if got.Samples[i] != want.Samples[i] {
				t.Fatalf("%s: sample %d differs", pl.Vendor, i)
			}
		}
	}
}

// TestMeasureProgramConsumesProgram: the driver pipeline transforms its
// input in place, so repeat measurements must come from fresh clones and
// still agree.
func TestMeasureProgramConsumesProgram(t *testing.T) {
	src := `#version 330
out vec4 color;
void main() { color = vec4(0.25); }
`
	prog, err := lower.Lower(glsl.MustParse(src), "c")
	if err != nil {
		t.Fatal(err)
	}
	pl := gpu.NewIntel()
	// Two measurements from two clones must agree even though the driver
	// pipeline transforms its input in place.
	a, err := MeasureProgram(pl, prog.Clone(), src, FastConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := MeasureProgram(pl, prog.Clone(), src, FastConfig())
	if err != nil {
		t.Fatal(err)
	}
	if a.MedianNS != b.MedianNS {
		t.Error("repeat measurement differs")
	}
}

// TestSeedPrefixMatchesDeriveSeed pins the hand-rolled FNV prefix the
// batch path hoists: completing a seedPrefix state with any source text
// must equal the reference deriveSeed for every (vendor, source, base).
func TestSeedPrefixMatchesDeriveSeed(t *testing.T) {
	vendors := []string{"", "Intel", "AMD", "NVIDIA", "ARM", "Qualcomm", "a\x00b"}
	sources := []string{"", "x", "void main() {}", strings.Repeat("s", 1000), "nul\x00embedded"}
	bases := []int64{0, 1, -1, 42, 1 << 40}
	for _, v := range vendors {
		prefix := seedPrefix(v)
		for _, src := range sources {
			for _, base := range bases {
				if got, want := seedFrom(base, prefix, src), deriveSeed(base, v, src); got != want {
					t.Fatalf("seedFrom(%d, prefix(%q), %q) = %d, deriveSeed = %d", base, v, src, got, want)
				}
			}
		}
	}
}

// TestMeasureBatchEdgeCases pins batch behaviour at the boundaries: an
// empty batch returns nil, and a zero-sample protocol produces the same
// nil-sample Measurement the per-variant path does.
func TestMeasureBatchEdgeCases(t *testing.T) {
	pl := gpu.NewIntel()
	if got := MeasureBatch(pl, nil, DefaultConfig()); got != nil {
		t.Fatalf("empty batch returned %v", got)
	}
	compiled, err := pl.CompileSource("#version 330\nout vec4 c;\nvoid main() { c = vec4(1.0); }")
	if err != nil {
		t.Fatal(err)
	}
	cfg := FastConfig()
	cfg.Repeats = 0
	batch := MeasureBatch(pl, []BatchItem{{Compiled: compiled, SrcForSeed: "s"}}, cfg)
	legacy := MeasureCompiled(pl, compiled, "s", cfg)
	if batch[0].Samples != nil || legacy.Samples != nil {
		t.Fatalf("zero-sample protocol should leave Samples nil: batch %v, legacy %v", batch[0].Samples, legacy.Samples)
	}
	if !reflect.DeepEqual(batch[0], legacy) {
		t.Fatalf("zero-sample measurements differ: batch %+v, legacy %+v", *batch[0], *legacy)
	}
}
