package wgsl

import "testing"

func kinds(t *testing.T, src string) []Token {
	t.Helper()
	toks, err := LexAll(src)
	if err != nil {
		t.Fatalf("LexAll(%q): %v", src, err)
	}
	return toks
}

func TestLexPunctuationAndArrow(t *testing.T) {
	toks := kinds(t, "fn f() -> vec4<f32> { }")
	want := []struct {
		kind Kind
		text string
	}{
		{Keyword, "fn"}, {Ident, "f"}, {Punct, "("}, {Punct, ")"},
		{Punct, "->"}, {Ident, "vec4"}, {Punct, "<"}, {Ident, "f32"},
		{Punct, ">"}, {Punct, "{"}, {Punct, "}"},
	}
	if len(toks) != len(want) {
		t.Fatalf("got %d tokens, want %d: %v", len(toks), len(want), toks)
	}
	for i, w := range want {
		if toks[i].Kind != w.kind || toks[i].Text != w.text {
			t.Errorf("tok %d = %v, want %s %q", i, toks[i], w.kind, w.text)
		}
	}
}

func TestLexAttributes(t *testing.T) {
	toks := kinds(t, "@fragment @location(0)")
	if toks[0].Text != "@" || toks[1].Text != "fragment" {
		t.Errorf("bad @fragment lexing: %v", toks[:2])
	}
	if toks[2].Text != "@" || toks[3].Text != "location" {
		t.Errorf("bad @location lexing: %v", toks[2:4])
	}
}

func TestLexNumberSuffixes(t *testing.T) {
	cases := []struct {
		src  string
		kind Kind
	}{
		{"1", IntLit},
		{"42i", IntLit},
		{"7u", IntLit},
		{"0x1Fu", IntLit},
		{"1.5", FloatLit},
		{"2f", FloatLit},   // integer digits + f suffix is a float in WGSL
		{"1.0h", FloatLit}, // half literal
		{".25", FloatLit},
		{"1e3", FloatLit},
		{"2.5e-2", FloatLit},
	}
	for _, c := range cases {
		toks := kinds(t, c.src)
		if len(toks) != 1 || toks[0].Kind != c.kind {
			t.Errorf("%q lexed as %v, want one %s", c.src, toks, c.kind)
		}
	}
}

func TestLexNestedBlockComment(t *testing.T) {
	toks := kinds(t, "a /* outer /* inner */ still comment */ b")
	if len(toks) != 2 || toks[0].Text != "a" || toks[1].Text != "b" {
		t.Fatalf("nested comment not skipped: %v", toks)
	}
}

func TestLexLineComment(t *testing.T) {
	toks := kinds(t, "let x = 1; // trailing\nlet y = 2;")
	for _, tok := range toks {
		if tok.Kind == Comment {
			t.Fatalf("comment leaked: %v", tok)
		}
	}
	if len(toks) != 10 {
		t.Fatalf("got %d tokens: %v", len(toks), toks)
	}
}

func TestLexKeywordsVsIdents(t *testing.T) {
	toks := kinds(t, "let var fn f32 vec4 texture_2d discard")
	wantKinds := []Kind{Keyword, Keyword, Keyword, Ident, Ident, Ident, Keyword}
	for i, k := range wantKinds {
		if toks[i].Kind != k {
			t.Errorf("tok %d (%q) = %s, want %s", i, toks[i].Text, toks[i].Kind, k)
		}
	}
}

func TestLexSwizzleAfterInt(t *testing.T) {
	// "v.x" after an index: ensure '.' then ident, not a malformed float.
	toks := kinds(t, "a[0].xy")
	texts := []string{"a", "[", "0", "]", ".", "xy"}
	if len(toks) != len(texts) {
		t.Fatalf("got %v", toks)
	}
	for i, w := range texts {
		if toks[i].Text != w {
			t.Errorf("tok %d = %q, want %q", i, toks[i].Text, w)
		}
	}
}

func TestLexErrorOnBadChar(t *testing.T) {
	if _, err := LexAll("let $ = 1;"); err == nil {
		t.Fatal("expected error on '$'")
	}
}
