// Package wgsl implements the WGSL (WebGPU Shading Language) frontend: a
// lexer, recursive-descent parser, WGSL AST, and a semantic
// binding/lowering stage that targets the optimizer IR shared with the
// GLSL frontend. The supported subset mirrors the GLSL subset used by the
// study corpus: @fragment entry points with @location/@builtin parameters,
// let/var declarations with type inference, vecN<f32>-family types,
// structured control flow (if/else, for, while), swizzles, constructors,
// array types, texture_2d/sampler pairs, and the builtin function library
// the interpreter evaluates.
//
// Architecturally the frontend is modeled on naga's wgsl package: a
// separate surface language lowered into one shared program form so the
// flag-controlled passes, the measurement harness, and the GPU cost models
// stay frontend-independent.
package wgsl

import "fmt"

// Kind identifies the lexical class of a token.
type Kind int

// Token kinds.
const (
	EOF Kind = iota
	Ident
	IntLit
	FloatLit
	BoolLit
	Keyword
	Punct
	Comment // only produced when lexer keeps comments
)

func (k Kind) String() string {
	switch k {
	case EOF:
		return "EOF"
	case Ident:
		return "identifier"
	case IntLit:
		return "int literal"
	case FloatLit:
		return "float literal"
	case BoolLit:
		return "bool literal"
	case Keyword:
		return "keyword"
	case Punct:
		return "punctuation"
	case Comment:
		return "comment"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Pos is a line/column source position (1-based).
type Pos struct {
	Line int
	Col  int
}

func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// Token is a single lexical token.
type Token struct {
	Kind Kind
	Text string
	Pos  Pos
}

func (t Token) String() string {
	if t.Kind == EOF {
		return "EOF"
	}
	return fmt.Sprintf("%s %q", t.Kind, t.Text)
}

// keywords is the set of reserved words in the supported subset. Type
// names (f32, vec4, texture_2d, ...) are ordinary identifiers in WGSL's
// grammar — the parser resolves them contextually — so they are not
// listed here.
var keywords = map[string]bool{
	"fn": true, "let": true, "var": true, "const": true, "override": true,
	"if": true, "else": true, "for": true, "while": true, "loop": true,
	"return": true, "discard": true, "break": true, "continue": true,
	"continuing": true, "switch": true, "case": true, "default": true,
	"struct": true, "alias": true, "enable": true, "requires": true,
	"diagnostic": true, "const_assert": true,
}

// IsKeyword reports whether s is a reserved word.
func IsKeyword(s string) bool { return keywords[s] }
