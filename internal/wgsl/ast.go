package wgsl

// Module is a parsed WGSL translation unit.
type Module struct {
	Decls []Decl
}

// Attr is a WGSL attribute such as @fragment, @location(0), @group(1), or
// @builtin(position). Args holds the raw argument tokens.
type Attr struct {
	Pos  Pos
	Name string
	Args []string
}

// TypeExpr is a syntactic type reference: a (possibly templated) type name.
// vec2<f32> has Name "vec2" and Elem f32; array<f32, 9> has Name "array",
// Elem f32, and Len 9; plain names (f32, vec4f, sampler) have Elem nil.
type TypeExpr struct {
	Pos  Pos
	Name string
	Elem *TypeExpr
	Len  int // array element count; 0 when absent
}

func (t *TypeExpr) String() string {
	if t == nil {
		return "<inferred>"
	}
	switch {
	case t.Name == "array" && t.Elem != nil:
		return "array<" + t.Elem.String() + ", " + itoa(t.Len) + ">"
	case t.Elem != nil:
		return t.Name + "<" + t.Elem.String() + ">"
	}
	return t.Name
}

// Decl is a module-scope declaration.
type Decl interface{ declNode() }

// GlobalVar is a module-scope `var` declaration. AddressSpace is the
// template argument ("uniform", "private", or "" for resource bindings
// like textures and samplers).
type GlobalVar struct {
	Pos          Pos
	Attrs        []Attr
	AddressSpace string
	Name         string
	Type         *TypeExpr // may be nil when Init determines the type
	Init         Expr      // may be nil
}

// ConstDecl is a module-scope `const` (or legacy module `let`) declaration.
type ConstDecl struct {
	Pos  Pos
	Name string
	Type *TypeExpr // may be nil (inferred)
	Init Expr
}

// Param is a function parameter, optionally attributed (@location(0),
// @builtin(position)) on entry points.
type Param struct {
	Attrs []Attr
	Name  string
	Type  *TypeExpr
}

// FnDecl is a function declaration. Entry points carry stage attributes
// (@fragment) and attributed return types.
type FnDecl struct {
	Pos      Pos
	Attrs    []Attr
	Name     string
	Params   []Param
	Ret      *TypeExpr // nil for no return value
	RetAttrs []Attr
	Body     *BlockStmt
}

func (*GlobalVar) declNode() {}
func (*ConstDecl) declNode() {}
func (*FnDecl) declNode()    {}

// Stmt is a statement node.
type Stmt interface{ stmtNode() }

// BlockStmt is a brace-delimited statement list.
type BlockStmt struct {
	Pos   Pos
	Stmts []Stmt
}

// LetStmt declares an immutable binding (`let` or function-scope `const`).
type LetStmt struct {
	Pos  Pos
	Name string
	Type *TypeExpr // may be nil (inferred from Init)
	Init Expr
}

// VarStmt declares a mutable function-scope variable.
type VarStmt struct {
	Pos  Pos
	Name string
	Type *TypeExpr // may be nil (inferred from Init)
	Init Expr      // may be nil only when Type is present
}

// AssignStmt assigns to an lvalue. Op is "=", "+=", "-=", "*=", "/=".
type AssignStmt struct {
	Pos Pos
	LHS Expr
	Op  string
	RHS Expr
}

// IfStmt is a conditional. Else is nil, a *BlockStmt, or a chained *IfStmt.
type IfStmt struct {
	Pos  Pos
	Cond Expr
	Then *BlockStmt
	Else Stmt
}

// ForStmt is a `for (init; cond; post) { ... }` loop; any header part may
// be nil.
type ForStmt struct {
	Pos  Pos
	Init Stmt
	Cond Expr
	Post Stmt
	Body *BlockStmt
}

// WhileStmt is a condition-only loop.
type WhileStmt struct {
	Pos  Pos
	Cond Expr
	Body *BlockStmt
}

// ReturnStmt returns from a function, with an optional result.
type ReturnStmt struct {
	Pos    Pos
	Result Expr // may be nil
}

// DiscardStmt abandons the current fragment.
type DiscardStmt struct{ Pos Pos }

// BreakStmt exits the innermost loop.
type BreakStmt struct{ Pos Pos }

// ContinueStmt continues the innermost loop.
type ContinueStmt struct{ Pos Pos }

// ExprStmt evaluates an expression for side effects (function calls).
type ExprStmt struct {
	Pos Pos
	X   Expr
}

func (*BlockStmt) stmtNode()    {}
func (*LetStmt) stmtNode()      {}
func (*VarStmt) stmtNode()      {}
func (*AssignStmt) stmtNode()   {}
func (*IfStmt) stmtNode()       {}
func (*ForStmt) stmtNode()      {}
func (*WhileStmt) stmtNode()    {}
func (*ReturnStmt) stmtNode()   {}
func (*DiscardStmt) stmtNode()  {}
func (*BreakStmt) stmtNode()    {}
func (*ContinueStmt) stmtNode() {}
func (*ExprStmt) stmtNode()     {}

// Expr is an expression node.
type Expr interface{ exprNode() }

// IdentExpr references a variable by name.
type IdentExpr struct {
	Pos  Pos
	Name string
}

// IntLitExpr is an integer literal (suffix already stripped).
type IntLitExpr struct {
	Pos   Pos
	Value int64
}

// FloatLitExpr is a floating point literal (suffix already stripped).
type FloatLitExpr struct {
	Pos   Pos
	Value float64
}

// BoolLitExpr is true or false.
type BoolLitExpr struct {
	Pos   Pos
	Value bool
}

// BinaryExpr applies a binary operator. Op is one of
// + - * / % < > <= >= == != && ||.
type BinaryExpr struct {
	Pos  Pos
	Op   string
	X, Y Expr
}

// UnaryExpr applies a prefix operator: "-" or "!".
type UnaryExpr struct {
	Pos Pos
	Op  string
	X   Expr
}

// CallExpr calls a builtin function, a type constructor, or a user
// function. Constructors spelled with template syntax (vec4<f32>(...),
// array<f32, 9>(...)) carry the resolved type in TypeArg; for plain calls
// TypeArg is nil and Callee holds the name.
type CallExpr struct {
	Pos     Pos
	Callee  string
	TypeArg *TypeExpr
	Args    []Expr
}

// IndexExpr subscripts an array, vector, or matrix.
type IndexExpr struct {
	Pos   Pos
	X     Expr
	Index Expr
}

// MemberExpr is a swizzle selection like v.xyz or v.r.
type MemberExpr struct {
	Pos  Pos
	X    Expr
	Name string
}

func (*IdentExpr) exprNode()    {}
func (*IntLitExpr) exprNode()   {}
func (*FloatLitExpr) exprNode() {}
func (*BoolLitExpr) exprNode()  {}
func (*BinaryExpr) exprNode()   {}
func (*UnaryExpr) exprNode()    {}
func (*CallExpr) exprNode()     {}
func (*IndexExpr) exprNode()    {}
func (*MemberExpr) exprNode()   {}

// HasAttr reports whether an attribute list contains name.
func HasAttr(attrs []Attr, name string) bool {
	for _, a := range attrs {
		if a.Name == name {
			return true
		}
	}
	return false
}

// FindAttr returns the named attribute, if present.
func FindAttr(attrs []Attr, name string) (Attr, bool) {
	for _, a := range attrs {
		if a.Name == name {
			return a, true
		}
	}
	return Attr{}, false
}

// Fns returns the function declarations in the module, in order.
func (m *Module) Fns() []*FnDecl {
	var out []*FnDecl
	for _, d := range m.Decls {
		if f, ok := d.(*FnDecl); ok {
			out = append(out, f)
		}
	}
	return out
}

// EntryPoint returns the @fragment entry function, or nil.
func (m *Module) EntryPoint() *FnDecl {
	for _, f := range m.Fns() {
		if HasAttr(f.Attrs, "fragment") {
			return f
		}
	}
	return nil
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	neg := n < 0
	if neg {
		n = -n
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}
