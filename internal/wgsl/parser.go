package wgsl

import (
	"fmt"
	"strconv"
	"strings"
)

// Parser is a recursive-descent parser for the WGSL subset.
type Parser struct {
	toks []Token
	pos  int
	errs []error
}

// Parse parses a complete WGSL module.
func Parse(src string) (*Module, error) {
	toks, err := LexAll(src)
	if err != nil {
		return nil, err
	}
	p := &Parser{toks: toks}
	m := &Module{}
	for p.cur().Kind != EOF {
		d := p.parseDecl()
		if d != nil {
			m.Decls = append(m.Decls, d)
		}
		if len(p.errs) > 8 {
			break
		}
	}
	if len(p.errs) > 0 {
		return nil, p.errs[0]
	}
	return m, nil
}

// MustParse parses src and panics on error. For tests and fixed sources.
func MustParse(src string) *Module {
	m, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return m
}

func (p *Parser) cur() Token {
	if p.pos >= len(p.toks) {
		return Token{Kind: EOF}
	}
	return p.toks[p.pos]
}

func (p *Parser) peekTok(off int) Token {
	if p.pos+off >= len(p.toks) {
		return Token{Kind: EOF}
	}
	return p.toks[p.pos+off]
}

func (p *Parser) next() Token {
	t := p.cur()
	if p.pos < len(p.toks) {
		p.pos++
	}
	return t
}

func (p *Parser) errorf(pos Pos, format string, args ...any) {
	p.errs = append(p.errs, fmt.Errorf("%s: %s", pos, fmt.Sprintf(format, args...)))
}

// accept consumes the next token if it is punctuation or keyword text.
func (p *Parser) accept(text string) bool {
	t := p.cur()
	if (t.Kind == Punct || t.Kind == Keyword) && t.Text == text {
		p.next()
		return true
	}
	return false
}

func (p *Parser) expect(text string) Token {
	t := p.cur()
	if (t.Kind == Punct || t.Kind == Keyword) && t.Text == text {
		return p.next()
	}
	p.errorf(t.Pos, "expected %q, found %s", text, t)
	return t
}

// sync skips tokens until after the next semicolon or closing brace.
func (p *Parser) sync() {
	for {
		t := p.cur()
		if t.Kind == EOF {
			return
		}
		p.next()
		if t.Kind == Punct && (t.Text == ";" || t.Text == "}") {
			return
		}
	}
}

// --- Declarations ---

func (p *Parser) parseDecl() Decl {
	t := p.cur()
	if t.Kind == Punct && t.Text == ";" {
		p.next()
		return nil
	}
	attrs := p.parseAttrs()
	t = p.cur()
	if t.Kind != Keyword {
		p.errorf(t.Pos, "expected declaration, found %s", t)
		p.sync()
		return nil
	}
	switch t.Text {
	case "enable", "requires", "diagnostic":
		// Directives are accepted and dropped; they do not affect the subset.
		p.sync()
		return nil
	case "fn":
		return p.parseFn(attrs)
	case "var":
		return p.parseGlobalVar(attrs)
	case "const", "let", "override":
		return p.parseConstDecl()
	case "struct", "alias", "const_assert":
		p.errorf(t.Pos, "%s declarations are outside the supported subset", t.Text)
		p.sync()
		return nil
	}
	p.errorf(t.Pos, "unexpected keyword %q at module scope", t.Text)
	p.sync()
	return nil
}

// parseAttrs parses a run of @name or @name(args) attributes.
func (p *Parser) parseAttrs() []Attr {
	var out []Attr
	for p.cur().Kind == Punct && p.cur().Text == "@" {
		at := p.next()
		nm := p.cur()
		if nm.Kind != Ident && nm.Kind != Keyword {
			p.errorf(nm.Pos, "expected attribute name after '@', found %s", nm)
			return out
		}
		p.next()
		a := Attr{Pos: at.Pos, Name: nm.Text}
		if p.accept("(") {
			for !p.accept(")") {
				if p.cur().Kind == EOF {
					p.errorf(p.cur().Pos, "unterminated attribute %q", a.Name)
					return out
				}
				tok := p.next()
				if tok.Kind == Punct && tok.Text == "," {
					continue
				}
				a.Args = append(a.Args, tok.Text)
			}
		}
		out = append(out, a)
	}
	return out
}

// parseGlobalVar parses `var<space> name: type = init;` at module scope.
func (p *Parser) parseGlobalVar(attrs []Attr) Decl {
	t := p.expect("var")
	space := ""
	if p.accept("<") {
		sp := p.cur()
		if sp.Kind != Ident && sp.Kind != Keyword {
			p.errorf(sp.Pos, "expected address space, found %s", sp)
		} else {
			space = sp.Text
			p.next()
		}
		// Optional access mode (var<storage, read> style).
		if p.accept(",") {
			p.next()
		}
		p.expect(">")
	}
	name := p.cur()
	if name.Kind != Ident {
		p.errorf(name.Pos, "expected variable name, found %s", name)
		p.sync()
		return nil
	}
	p.next()
	var ty *TypeExpr
	if p.accept(":") {
		ty = p.parseType()
	}
	var init Expr
	if p.accept("=") {
		init = p.parseExpr()
	}
	p.expect(";")
	return &GlobalVar{Pos: t.Pos, Attrs: attrs, AddressSpace: space, Name: name.Text, Type: ty, Init: init}
}

// parseConstDecl parses module-scope `const name [: type] = init;`.
func (p *Parser) parseConstDecl() Decl {
	t := p.next() // const / let / override
	name := p.cur()
	if name.Kind != Ident {
		p.errorf(name.Pos, "expected constant name, found %s", name)
		p.sync()
		return nil
	}
	p.next()
	var ty *TypeExpr
	if p.accept(":") {
		ty = p.parseType()
	}
	p.expect("=")
	init := p.parseExpr()
	p.expect(";")
	return &ConstDecl{Pos: t.Pos, Name: name.Text, Type: ty, Init: init}
}

func (p *Parser) parseFn(attrs []Attr) Decl {
	t := p.expect("fn")
	name := p.cur()
	if name.Kind != Ident {
		p.errorf(name.Pos, "expected function name, found %s", name)
		p.sync()
		return nil
	}
	p.next()
	fn := &FnDecl{Pos: t.Pos, Attrs: attrs, Name: name.Text}
	p.expect("(")
	if !p.accept(")") {
		for {
			prm, ok := p.parseParam()
			if !ok {
				p.sync()
				return nil
			}
			fn.Params = append(fn.Params, prm)
			if p.accept(")") {
				break
			}
			p.expect(",")
		}
	}
	if p.accept("->") {
		fn.RetAttrs = p.parseAttrs()
		fn.Ret = p.parseType()
	}
	fn.Body = p.parseBlock()
	return fn
}

func (p *Parser) parseParam() (Param, bool) {
	var prm Param
	prm.Attrs = p.parseAttrs()
	nm := p.cur()
	if nm.Kind != Ident {
		p.errorf(nm.Pos, "expected parameter name, found %s", nm)
		return prm, false
	}
	p.next()
	prm.Name = nm.Text
	p.expect(":")
	prm.Type = p.parseType()
	return prm, prm.Type != nil
}

// parseType parses a (possibly templated) type reference.
func (p *Parser) parseType() *TypeExpr {
	t := p.cur()
	if t.Kind != Ident {
		p.errorf(t.Pos, "expected type, found %s", t)
		return nil
	}
	p.next()
	te := &TypeExpr{Pos: t.Pos, Name: t.Text}
	if p.accept("<") {
		te.Elem = p.parseType()
		if p.accept(",") {
			n := p.cur()
			if n.Kind != IntLit {
				p.errorf(n.Pos, "expected array length, found %s", n)
			} else {
				v, err := strconv.Atoi(strings.TrimRight(n.Text, "iu"))
				if err != nil {
					p.errorf(n.Pos, "bad array length %q", n.Text)
				}
				te.Len = v
				p.next()
			}
		}
		p.expect(">")
	}
	return te
}

// --- Statements ---

func (p *Parser) parseBlock() *BlockStmt {
	open := p.expect("{")
	blk := &BlockStmt{Pos: open.Pos}
	for {
		t := p.cur()
		if t.Kind == EOF {
			p.errorf(t.Pos, "unterminated block")
			return blk
		}
		if t.Kind == Punct && t.Text == "}" {
			p.next()
			return blk
		}
		s := p.parseStmt()
		if s != nil {
			blk.Stmts = append(blk.Stmts, s)
		}
		if len(p.errs) > 8 {
			return blk
		}
	}
}

func (p *Parser) parseStmt() Stmt {
	t := p.cur()
	switch {
	case t.Kind == Punct && t.Text == "{":
		return p.parseBlock()
	case t.Kind == Punct && t.Text == ";":
		p.next()
		return nil
	case t.Kind == Keyword:
		switch t.Text {
		case "let", "const":
			return p.parseLet()
		case "var":
			return p.parseVar()
		case "if":
			return p.parseIf()
		case "for":
			return p.parseFor()
		case "while":
			return p.parseWhile()
		case "return":
			p.next()
			var res Expr
			if !(p.cur().Kind == Punct && p.cur().Text == ";") {
				res = p.parseExpr()
			}
			p.expect(";")
			return &ReturnStmt{Pos: t.Pos, Result: res}
		case "discard":
			p.next()
			p.expect(";")
			return &DiscardStmt{Pos: t.Pos}
		case "break":
			p.next()
			p.expect(";")
			return &BreakStmt{Pos: t.Pos}
		case "continue":
			p.next()
			p.expect(";")
			return &ContinueStmt{Pos: t.Pos}
		default:
			p.errorf(t.Pos, "unexpected keyword %q in statement", t.Text)
			p.sync()
			return nil
		}
	default:
		return p.parseSimpleStmtSemi()
	}
}

func (p *Parser) parseLet() Stmt {
	t := p.next() // let / const
	nm := p.cur()
	if nm.Kind != Ident {
		p.errorf(nm.Pos, "expected name after %q, found %s", t.Text, nm)
		p.sync()
		return nil
	}
	p.next()
	var ty *TypeExpr
	if p.accept(":") {
		ty = p.parseType()
	}
	p.expect("=")
	init := p.parseExpr()
	p.expect(";")
	return &LetStmt{Pos: t.Pos, Name: nm.Text, Type: ty, Init: init}
}

func (p *Parser) parseVar() Stmt {
	t := p.expect("var")
	nm := p.cur()
	if nm.Kind != Ident {
		p.errorf(nm.Pos, "expected name after var, found %s", nm)
		p.sync()
		return nil
	}
	p.next()
	var ty *TypeExpr
	if p.accept(":") {
		ty = p.parseType()
	}
	var init Expr
	if p.accept("=") {
		init = p.parseExpr()
	}
	if ty == nil && init == nil {
		p.errorf(t.Pos, "var %q needs a type or an initializer", nm.Text)
	}
	p.expect(";")
	return &VarStmt{Pos: t.Pos, Name: nm.Text, Type: ty, Init: init}
}

// parseSimpleStmt parses an assignment, inc/dec, or expression statement,
// without consuming a trailing semicolon (for `for` headers).
func (p *Parser) parseSimpleStmt() Stmt {
	t := p.cur()
	if t.Kind == Keyword && (t.Text == "let" || t.Text == "const") {
		return p.parseLet() // consumes ';' — only used by for-init handling
	}
	if t.Kind == Keyword && t.Text == "var" {
		return p.parseVar() // consumes ';'
	}
	lhs := p.parseExpr()
	cur := p.cur()
	if cur.Kind == Punct {
		switch cur.Text {
		case "=", "+=", "-=", "*=", "/=":
			p.next()
			rhs := p.parseExpr()
			return &AssignStmt{Pos: t.Pos, LHS: lhs, Op: cur.Text, RHS: rhs}
		case "++":
			p.next()
			return &AssignStmt{Pos: t.Pos, LHS: lhs, Op: "+=", RHS: &IntLitExpr{Pos: cur.Pos, Value: 1}}
		case "--":
			p.next()
			return &AssignStmt{Pos: t.Pos, LHS: lhs, Op: "-=", RHS: &IntLitExpr{Pos: cur.Pos, Value: 1}}
		}
	}
	return &ExprStmt{Pos: t.Pos, X: lhs}
}

func (p *Parser) parseSimpleStmtSemi() Stmt {
	s := p.parseSimpleStmt()
	p.expect(";")
	return s
}

func (p *Parser) parseIf() Stmt {
	t := p.expect("if")
	// WGSL allows both `if cond { }` and `if (cond) { }`.
	paren := p.accept("(")
	cond := p.parseExpr()
	if paren {
		p.expect(")")
	}
	then := p.parseBlock()
	var els Stmt
	if p.accept("else") {
		if p.cur().Kind == Keyword && p.cur().Text == "if" {
			els = p.parseIf()
		} else {
			els = p.parseBlock()
		}
	}
	return &IfStmt{Pos: t.Pos, Cond: cond, Then: then, Else: els}
}

func (p *Parser) parseFor() Stmt {
	t := p.expect("for")
	p.expect("(")
	var init Stmt
	if !(p.cur().Kind == Punct && p.cur().Text == ";") {
		switch {
		case p.cur().Kind == Keyword && p.cur().Text == "var":
			init = p.parseVar() // consumes ';'
		case p.cur().Kind == Keyword && (p.cur().Text == "let" || p.cur().Text == "const"):
			init = p.parseLet() // consumes ';'
		default:
			init = p.parseSimpleStmtSemi()
		}
	} else {
		p.next()
	}
	var cond Expr
	if !(p.cur().Kind == Punct && p.cur().Text == ";") {
		cond = p.parseExpr()
	}
	p.expect(";")
	var post Stmt
	if !(p.cur().Kind == Punct && p.cur().Text == ")") {
		post = p.parseSimpleStmt()
	}
	p.expect(")")
	body := p.parseBlock()
	return &ForStmt{Pos: t.Pos, Init: init, Cond: cond, Post: post, Body: body}
}

func (p *Parser) parseWhile() Stmt {
	t := p.expect("while")
	paren := p.accept("(")
	cond := p.parseExpr()
	if paren {
		p.expect(")")
	}
	body := p.parseBlock()
	return &WhileStmt{Pos: t.Pos, Cond: cond, Body: body}
}

// --- Expressions ---

// Binary operator precedence, higher binds tighter. WGSL has no ternary;
// selection is the select(f, t, cond) builtin.
var binPrec = map[string]int{
	"||": 1, "&&": 2,
	"==": 3, "!=": 3,
	"<": 4, ">": 4, "<=": 4, ">=": 4,
	"+": 5, "-": 5,
	"*": 6, "/": 6, "%": 6,
}

func (p *Parser) parseExpr() Expr { return p.parseBinary(1) }

func (p *Parser) parseBinary(minPrec int) Expr {
	lhs := p.parseUnary()
	for {
		t := p.cur()
		if t.Kind != Punct {
			return lhs
		}
		prec, ok := binPrec[t.Text]
		if !ok || prec < minPrec {
			return lhs
		}
		p.next()
		rhs := p.parseBinary(prec + 1)
		lhs = &BinaryExpr{Pos: t.Pos, Op: t.Text, X: lhs, Y: rhs}
	}
}

func (p *Parser) parseUnary() Expr {
	t := p.cur()
	if t.Kind == Punct {
		switch t.Text {
		case "-", "!":
			p.next()
			return &UnaryExpr{Pos: t.Pos, Op: t.Text, X: p.parseUnary()}
		case "+":
			p.next()
			return p.parseUnary()
		}
	}
	return p.parsePostfix()
}

func (p *Parser) parsePostfix() Expr {
	x := p.parsePrimary()
	for {
		t := p.cur()
		if t.Kind != Punct {
			return x
		}
		switch t.Text {
		case "[":
			p.next()
			idx := p.parseExpr()
			p.expect("]")
			x = &IndexExpr{Pos: t.Pos, X: x, Index: idx}
		case ".":
			p.next()
			nm := p.cur()
			if nm.Kind != Ident {
				p.errorf(nm.Pos, "expected member name after '.', found %s", nm)
				return x
			}
			p.next()
			x = &MemberExpr{Pos: t.Pos, X: x, Name: nm.Text}
		default:
			return x
		}
	}
}

func (p *Parser) parsePrimary() Expr {
	t := p.cur()
	switch t.Kind {
	case IntLit:
		p.next()
		text := strings.TrimRight(t.Text, "iu")
		var v int64
		if strings.HasPrefix(text, "0x") || strings.HasPrefix(text, "0X") {
			u, err := strconv.ParseUint(text[2:], 16, 64)
			if err != nil {
				p.errorf(t.Pos, "bad hex literal %q", t.Text)
			}
			v = int64(u)
		} else {
			var err error
			v, err = strconv.ParseInt(text, 10, 64)
			if err != nil {
				p.errorf(t.Pos, "bad int literal %q", t.Text)
			}
		}
		return &IntLitExpr{Pos: t.Pos, Value: v}
	case FloatLit:
		p.next()
		text := strings.TrimRight(t.Text, "fh")
		v, err := strconv.ParseFloat(text, 64)
		if err != nil {
			p.errorf(t.Pos, "bad float literal %q", t.Text)
		}
		return &FloatLitExpr{Pos: t.Pos, Value: v}
	case BoolLit:
		p.next()
		return &BoolLitExpr{Pos: t.Pos, Value: t.Text == "true"}
	case Ident:
		p.next()
		// Templated constructor: vec4<f32>(...), array<f32, 9>(...).
		if p.cur().Kind == Punct && p.cur().Text == "<" && isTemplatedName(t.Text) {
			p.pos-- // re-parse the full type reference
			ty := p.parseType()
			call := p.parseCallArgs(t.Pos, t.Text)
			call.TypeArg = ty
			return call
		}
		if p.cur().Kind == Punct && p.cur().Text == "(" {
			return p.parseCallArgs(t.Pos, t.Text)
		}
		return &IdentExpr{Pos: t.Pos, Name: t.Text}
	case Punct:
		if t.Text == "(" {
			p.next()
			e := p.parseExpr()
			p.expect(")")
			return e
		}
	}
	p.errorf(t.Pos, "unexpected token %s in expression", t)
	p.next()
	return &IntLitExpr{Pos: t.Pos, Value: 0}
}

// isTemplatedName reports whether an identifier followed by '<' starts a
// templated constructor rather than a less-than comparison. Only names
// that actually resolve as templated types qualify — a variable that
// merely starts with "mat" (matte, material) stays a comparison operand.
func isTemplatedName(name string) bool {
	switch name {
	case "array", "vec2", "vec3", "vec4":
		return true
	}
	_, ok := matName(name)
	return ok
}

func (p *Parser) parseCallArgs(pos Pos, callee string) *CallExpr {
	p.expect("(")
	call := &CallExpr{Pos: pos, Callee: callee}
	if p.accept(")") {
		return call
	}
	for {
		call.Args = append(call.Args, p.parseExpr())
		if p.accept(")") {
			return call
		}
		p.expect(",")
		if p.cur().Kind == EOF {
			p.errorf(p.cur().Pos, "unterminated call to %q", callee)
			return call
		}
	}
}
