package wgsl

import (
	"strings"
	"testing"

	"shaderopt/internal/exec"
	"shaderopt/internal/glsl"
	"shaderopt/internal/glslgen"
	"shaderopt/internal/harness"
	"shaderopt/internal/ir"
	"shaderopt/internal/lower"
	"shaderopt/internal/passes"
	"shaderopt/internal/sem"
)

func compile(t *testing.T, src string) *ir.Program {
	t.Helper()
	prog, err := Compile(src, "test")
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	return prog
}

func TestLowerInterface(t *testing.T) {
	prog := compile(t, miniShader)
	if len(prog.Uniforms) != 2 {
		t.Fatalf("uniforms = %d, want tex + tint", len(prog.Uniforms))
	}
	if prog.Uniforms[0].Name != "tex" || !prog.Uniforms[0].Type.IsSampler() {
		t.Errorf("uniform 0 = %s %s", prog.Uniforms[0].Name, prog.Uniforms[0].Type)
	}
	if prog.Uniforms[1].Name != "tint" || !prog.Uniforms[1].Type.Equal(sem.Vec4) {
		t.Errorf("uniform 1 = %s %s", prog.Uniforms[1].Name, prog.Uniforms[1].Type)
	}
	if len(prog.Inputs) != 1 || prog.Inputs[0].Name != "uv" || !prog.Inputs[0].Type.Equal(sem.Vec2) {
		t.Fatalf("inputs = %v", prog.Inputs)
	}
	if len(prog.Outputs) != 1 || prog.Outputs[0].Name != "fragColor" {
		t.Fatalf("outputs = %v", prog.Outputs)
	}
}

func TestLowerCountedLoopSurvives(t *testing.T) {
	// The WGSL for loop must reach the IR as a counted ir.Loop so Unroll
	// fires on WGSL input exactly as on GLSL.
	prog := compile(t, miniShader)
	found := false
	for _, n := range prog.Body.Items {
		if _, ok := n.(*ir.Loop); ok {
			found = true
		}
	}
	if !found {
		t.Fatal("no ir.Loop in lowered body — counted-loop shape lost in translation")
	}
	base := glslgen.Generate(prog, glslgen.Desktop)
	unrolled := prog.Clone()
	passes.Run(unrolled, passes.FlagUnroll|passes.DefaultFlags)
	if out := glslgen.Generate(unrolled, glslgen.Desktop); out == base {
		t.Fatal("unroll did not change WGSL-sourced code")
	}
}

func TestLowerGeneratedGLSLReparses(t *testing.T) {
	// The generated source must survive the mobile conversion path, which
	// re-parses it.
	prog := compile(t, miniShader)
	out := glslgen.Generate(prog, glslgen.Desktop)
	if _, err := glsl.Parse(out); err != nil {
		t.Fatalf("generated GLSL does not re-parse: %v\n%s", err, out)
	}
	if !strings.Contains(out, "uniform sampler2D tex;") {
		t.Errorf("texture binding not collapsed to a combined sampler:\n%s", out)
	}
}

func TestLowerTypeInference(t *testing.T) {
	prog := compile(t, `
var<uniform> scale: f32;
@fragment
fn main(@location(0) uv: vec2<f32>) -> @location(0) vec4<f32> {
    let a = 1.5;                      // f32
    let b = vec3<f32>(uv, a);         // vec3
    let c = b * scale;                // vec3
    let d = dot(c, b);                // f32
    let e = a < d;                    // bool
    var f = 2;                        // i32
    f += 1;
    let w = array<f32, 2>(0.25, 0.75);
    return select(vec4<f32>(w[0]), vec4<f32>(c, d), e);
}`)
	// Inference correctness is proven by the shared checker accepting the
	// translated AST; spot-check the slot types.
	wantTypes := map[string]sem.Type{
		"a": sem.Float, "b": sem.Vec3, "c": sem.Vec3, "d": sem.Float,
		"e": sem.Bool, "f": sem.Int, "w": sem.ArrayOf(sem.Float, 2),
	}
	seen := 0
	for _, v := range prog.Vars {
		if want, ok := wantTypes[v.Name]; ok {
			seen++
			if !v.Type.Equal(want) {
				t.Errorf("%s inferred as %s, want %s", v.Name, v.Type, want)
			}
		}
	}
	if seen != len(wantTypes) {
		t.Errorf("saw %d of %d inferred slots", seen, len(wantTypes))
	}
}

func TestLowerBuiltinRenames(t *testing.T) {
	prog := compile(t, `
@fragment
fn main(@location(0) uv: vec2<f32>) -> @location(0) vec4<f32> {
    let r = inverseSqrt(uv.x) + dpdx(uv.y) + atan2(uv.y, uv.x);
    return vec4<f32>(r);
}`)
	out := glslgen.Generate(prog, glslgen.Desktop)
	for _, want := range []string{"inversesqrt(", "dFdx(", "atan("} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %s in generated source:\n%s", want, out)
		}
	}
	for _, stale := range []string{"inverseSqrt", "dpdx", "atan2"} {
		if strings.Contains(out, stale) {
			t.Errorf("WGSL spelling %s leaked into generated source", stale)
		}
	}
}

func TestLowerHelperFunctionInlined(t *testing.T) {
	prog := compile(t, miniShader)
	// The shared lowering inlines helpers: the program has a single flat
	// body and the generated source must not contain a luma declaration.
	out := glslgen.Generate(prog, glslgen.Desktop)
	if strings.Contains(out, "float luma") {
		t.Errorf("helper not inlined:\n%s", out)
	}
}

func TestLowerIdentifierSanitization(t *testing.T) {
	// "sample" and "texture" are legal WGSL identifiers but collide with
	// GLSL's keyword/builtin namespace; the translator must rename them.
	prog := compile(t, `
var<uniform> texture: vec4<f32>;
@fragment
fn main(@location(0) uv: vec2<f32>) -> @location(0) vec4<f32> {
    let smooth = texture * uv.x;
    return smooth;
}`)
	out := glslgen.Generate(prog, glslgen.Desktop)
	if _, err := glsl.Parse(out); err != nil {
		t.Fatalf("sanitized source does not re-parse: %v\n%s", err, out)
	}
}

func TestLowerDiscardAndEntryReturn(t *testing.T) {
	prog := compile(t, `
@fragment
fn main(@location(0) uv: vec2<f32>) -> @location(0) vec4<f32> {
    if (uv.x > 0.5) {
        discard;
    }
    return vec4<f32>(uv, 0.0, 1.0);
}`)
	env := harness.DefaultEnv(prog)
	env.Inputs["uv"] = ir.FloatConst(0.75, 0.25)
	res, err := exec.Run(prog, env)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Discarded {
		t.Error("fragment at uv.x=0.75 should discard")
	}
	env.Inputs["uv"] = ir.FloatConst(0.25, 0.5)
	res, err = exec.Run(prog, env)
	if err != nil {
		t.Fatal(err)
	}
	if res.Discarded {
		t.Error("fragment at uv.x=0.25 should survive")
	}
	out := res.Outputs["fragColor"]
	if out.Len() != 4 || out.Float(0) != 0.25 || out.Float(1) != 0.5 || out.Float(3) != 1 {
		t.Errorf("output = %v", out)
	}
}

// TestLowerLocalFragColorDoesNotCaptureReturn pins that a function-local
// named fragColor cannot shadow the synthesized out variable: the entry
// return desugars into a store to that variable by name, and a capturing
// local would silently blank the shader's output.
func TestLowerLocalFragColorDoesNotCaptureReturn(t *testing.T) {
	prog := compile(t, `
@fragment
fn main(@location(0) uv: vec2<f32>) -> @location(0) vec4<f32> {
    var fragColor: vec4<f32> = vec4<f32>(uv, 0.25, 1.0);
    return fragColor;
}`)
	env := harness.DefaultEnv(prog)
	env.Inputs[prog.Inputs[0].Name] = ir.FloatConst(0.5, 0.75)
	res, err := exec.Run(prog, env)
	if err != nil {
		t.Fatal(err)
	}
	out := res.Outputs[prog.Outputs[0].Name]
	want := [4]float64{0.5, 0.75, 0.25, 1}
	for i, w := range want {
		if out.Float(i) != w {
			t.Fatalf("output = [%v %v %v %v], want %v — local fragColor captured the return store",
				out.Float(0), out.Float(1), out.Float(2), out.Float(3), want)
		}
	}
}

// TestLowerMatchesGLSLFrontend is the cross-frontend equivalence check:
// the same shader written in GLSL and WGSL must produce identical
// interpreter results on a grid of fragments.
func TestLowerMatchesGLSLFrontend(t *testing.T) {
	glslSrc := `#version 330
out vec4 fragColor;
in vec2 uv;
uniform sampler2D tex;
uniform vec4 tint;
void main() {
    vec4 c = texture(tex, uv) * tint;
    float l = dot(c.rgb, vec3(0.299, 0.587, 0.114));
    vec3 toned = mix(c.rgb, vec3(l), 0.5);
    fragColor = vec4(toned * sin(l * 3.14159), 1.0);
}
`
	wgslSrc := `
@group(0) @binding(0) var tex: texture_2d<f32>;
@group(0) @binding(1) var samp: sampler;
var<uniform> tint: vec4<f32>;

@fragment
fn main(@location(0) uv: vec2<f32>) -> @location(0) vec4<f32> {
    var c = textureSample(tex, samp, uv) * tint;
    let l = dot(c.rgb, vec3<f32>(0.299, 0.587, 0.114));
    let toned = mix(c.rgb, vec3<f32>(l), 0.5);
    return vec4<f32>(toned * sin(l * 3.14159), 1.0);
}
`
	gsh, err := glsl.Parse(glslSrc)
	if err != nil {
		t.Fatal(err)
	}
	gprog, err := lower.Lower(gsh, "pair-glsl")
	if err != nil {
		t.Fatal(err)
	}
	wprog := compile(t, wgslSrc)

	genv := harness.DefaultEnv(gprog)
	wenv := harness.DefaultEnv(wprog)
	for _, uvpt := range [][2]float64{{0.1, 0.1}, {0.5, 0.25}, {0.9, 0.7}, {0.33, 0.66}} {
		genv.Inputs["uv"] = ir.FloatConst(uvpt[0], uvpt[1])
		wenv.Inputs["uv"] = ir.FloatConst(uvpt[0], uvpt[1])
		gres, err := exec.Run(gprog, genv)
		if err != nil {
			t.Fatal(err)
		}
		wres, err := exec.Run(wprog, wenv)
		if err != nil {
			t.Fatal(err)
		}
		gout, wout := gres.Outputs["fragColor"], wres.Outputs["fragColor"]
		for i := 0; i < 4; i++ {
			if gout.Float(i) != wout.Float(i) {
				t.Errorf("uv=%v component %d: glsl %v != wgsl %v", uvpt, i, gout.Float(i), wout.Float(i))
			}
		}
	}
}

func TestLowerAllFlagCombinationsSucceed(t *testing.T) {
	prog := compile(t, miniShader)
	seen := map[string]bool{}
	for _, flags := range passes.AllCombinations() {
		p := prog.Clone()
		passes.Run(p, flags)
		seen[glslgen.Generate(p, glslgen.Desktop)] = true
	}
	if len(seen) < 2 {
		t.Errorf("only %d unique variants across 256 combinations", len(seen))
	}
}

func TestLowerErrors(t *testing.T) {
	cases := []struct {
		name, src, want string
	}{
		{"no entry", `fn helper() -> f32 { return 1.0; }`, "entry point"},
		{"unknown type", `@fragment fn main() -> @location(0) vec4<f32> { var x: q32 = 1.0; return vec4<f32>(0.0); }`, "unknown type"},
		{"undefined ident", `@fragment fn main() -> @location(0) vec4<f32> { return vec4<f32>(nope); }`, "undefined"},
		{"sampler as value", `
var s: sampler;
@fragment fn main() -> @location(0) vec4<f32> { let x = s; return vec4<f32>(0.0); }`, "sampler"},
		{"mixed arithmetic", `@fragment fn main() -> @location(0) vec4<f32> { let x = 1 + 2.0; return vec4<f32>(0.0); }`, "arithmetic"},
		{"bad swizzle", `@fragment fn main(@location(0) uv: vec2<f32>) -> @location(0) vec4<f32> { return vec4<f32>(uv.z); }`, "swizzle"},
		{"undeclared sampler arg", `
var tex: texture_2d<f32>;
@fragment fn main(@location(0) uv: vec2<f32>) -> @location(0) vec4<f32> {
    return textureSample(tex, tex, uv);
}`, "sampler"},
	}
	for _, c := range cases {
		m, err := Parse(c.src)
		if err == nil {
			_, err = Lower(m, c.name)
		}
		if err == nil {
			t.Errorf("%s: lowered successfully, want error containing %q", c.name, c.want)
			continue
		}
		if !strings.Contains(strings.ToLower(err.Error()), c.want) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.want)
		}
	}
}
