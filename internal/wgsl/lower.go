package wgsl

import (
	"fmt"

	"shaderopt/internal/glsl"
	"shaderopt/internal/ir"
	"shaderopt/internal/lower"
	"shaderopt/internal/naming"
	"shaderopt/internal/sem"
)

// Compile parses WGSL source and lowers it to an IR program.
func Compile(src, name string) (*ir.Program, error) {
	m, err := Parse(src)
	if err != nil {
		return nil, err
	}
	return Lower(m, name)
}

// Lower binds and lowers a parsed WGSL module into the optimizer IR. The
// module's @fragment entry point becomes the program body; helper
// functions are inlined by the shared lowering, exactly as for GLSL input,
// so every downstream stage (passes, codegen, harness, cost models) is
// frontend-independent.
func Lower(m *Module, name string) (*ir.Program, error) {
	sh, err := Translate(m)
	if err != nil {
		return nil, err
	}
	return lower.Lower(sh, name)
}

// Translate binds a WGSL module and desugars it into the compiler's
// canonical surface form (the checked GLSL AST): entry-point parameters
// become `in` interface globals, the attributed return value becomes an
// `out` global, texture/sampler pairs collapse into combined samplers, and
// WGSL builtins are renamed to their canonical equivalents. Type inference
// for `let`/`var` bindings happens here, against the sem type system.
func Translate(m *Module) (*glsl.Shader, error) {
	tr := &translator{
		names:    naming.New("_w"),
		fnRet:    map[string]sem.Type{},
		samplers: map[string]bool{},
	}
	return tr.module(m)
}

// translator carries the binding state of one module translation. Value
// scopes are keyed by the ORIGINAL WGSL name with the sanitized GLSL
// spelling riding along in each binding (see naming.Scopes), and all
// spelling decisions live in the shared naming.Namer with this
// frontend's "_w" escape suffix.
type translator struct {
	sh     *glsl.Shader
	scopes naming.Scopes // original WGSL name -> GLSL spelling + type
	names  *naming.Namer // module-scope renames and reservations

	fnRet    map[string]sem.Type // helper function return types
	samplers map[string]bool     // WGSL sampler bindings (dropped in GLSL)
	entry    *FnDecl
}

func (tr *translator) pushScope() { tr.scopes.Push() }
func (tr *translator) popScope()  { tr.scopes.Pop() }

func (tr *translator) bind(orig, glslName string, t sem.Type) {
	tr.scopes.Bind(orig, glslName, t)
}

func (tr *translator) lookup(orig string) (naming.Binding, bool) {
	return tr.scopes.Lookup(orig)
}

// rename maps a WGSL identifier to a GLSL-safe one: names that collide
// with GLSL keywords, type names, or builtin functions are suffixed so the
// generated source re-parses cleanly through the mobile conversion path.
func (tr *translator) rename(name string) string { return tr.names.Rename(name) }

// freshName reserves a GLSL-safe module-scope name for a synthesized
// variable (not a source identifier, so the rename map is bypassed — a
// user global that happens to share the base name keeps its own slot and
// the synthesized variable moves aside).
func (tr *translator) freshName(base string) string { return tr.names.Fresh(base) }

func errf(p Pos, format string, args ...any) error {
	return fmt.Errorf("%s: %s", p, fmt.Sprintf(format, args...))
}

// --- module-scope translation ---

func (tr *translator) module(m *Module) (*glsl.Shader, error) {
	tr.sh = &glsl.Shader{Version: "330"}
	tr.entry = m.EntryPoint()
	if tr.entry == nil {
		return nil, fmt.Errorf("module has no @fragment entry point")
	}
	tr.names.Reserve("main")
	tr.pushScope() // module scope
	defer tr.popScope()

	// Pre-bind helper signatures so calls ahead of the declaration and
	// let-inference across functions both resolve.
	for _, f := range m.Fns() {
		if f == tr.entry {
			continue
		}
		ret := sem.Void
		if f.Ret != nil {
			t, err := tr.resolveType(f.Ret)
			if err != nil {
				return nil, errf(f.Pos, "fn %s: %v", f.Name, err)
			}
			ret = t
		}
		tr.fnRet[tr.rename(f.Name)] = ret
	}

	for _, d := range m.Decls {
		switch d := d.(type) {
		case *GlobalVar:
			if err := tr.globalVar(d); err != nil {
				return nil, err
			}
		case *ConstDecl:
			if err := tr.constDecl(d); err != nil {
				return nil, err
			}
		case *FnDecl:
			if d == tr.entry {
				continue // translated last, once all globals are bound
			}
			if err := tr.helperFn(d); err != nil {
				return nil, err
			}
		}
	}
	if err := tr.entryFn(tr.entry); err != nil {
		return nil, err
	}
	return tr.sh, nil
}

func (tr *translator) globalVar(d *GlobalVar) error {
	if d.Type == nil {
		return errf(d.Pos, "module-scope var %q needs an explicit type", d.Name)
	}
	if d.Type.Name == "sampler" || d.Type.Name == "sampler_comparison" {
		// Separate sampler state collapses into the combined GLSL sampler;
		// the binding only legalizes textureSample call sites.
		tr.samplers[d.Name] = true
		return nil
	}
	t, err := tr.resolveType(d.Type)
	if err != nil {
		return errf(d.Pos, "var %s: %v", d.Name, err)
	}
	spec, err := semToSpec(t)
	if err != nil {
		return errf(d.Pos, "var %s: %v", d.Name, err)
	}
	name := tr.rename(d.Name)
	g := &glsl.GlobalVar{Type: spec, Name: name}
	switch d.AddressSpace {
	case "uniform":
		g.Qual = glsl.QualUniform
	case "", "private":
		if t.IsSampler() {
			g.Qual = glsl.QualUniform // texture binding
			break
		}
		g.Qual = glsl.QualNone
		if d.Init != nil {
			init, _, err := tr.expr(d.Init)
			if err != nil {
				return err
			}
			g.Init = init
		}
	default:
		return errf(d.Pos, "address space %q is outside the supported subset", d.AddressSpace)
	}
	if a, ok := FindAttr(d.Attrs, "binding"); ok && len(a.Args) == 1 {
		g.Layout = "binding = " + a.Args[0]
	}
	tr.sh.Decls = append(tr.sh.Decls, g)
	tr.bind(d.Name, name, t)
	return nil
}

func (tr *translator) constDecl(d *ConstDecl) error {
	init, it, err := tr.expr(d.Init)
	if err != nil {
		return err
	}
	t := it
	if d.Type != nil {
		if t, err = tr.resolveType(d.Type); err != nil {
			return errf(d.Pos, "const %s: %v", d.Name, err)
		}
	}
	spec, err := semToSpec(t)
	if err != nil {
		return errf(d.Pos, "const %s: %v", d.Name, err)
	}
	name := tr.rename(d.Name)
	tr.sh.Decls = append(tr.sh.Decls, &glsl.GlobalVar{
		Qual: glsl.QualConst, Type: spec, Name: name, Init: init,
	})
	tr.bind(d.Name, name, t)
	return nil
}

// helperFn translates a non-entry function into a GLSL function; the
// shared lowering inlines it at each call site.
func (tr *translator) helperFn(d *FnDecl) error {
	ret := glsl.Scalar("void")
	if d.Ret != nil {
		t, err := tr.resolveType(d.Ret)
		if err != nil {
			return errf(d.Pos, "fn %s: %v", d.Name, err)
		}
		if ret, err = semToSpec(t); err != nil {
			return errf(d.Pos, "fn %s: %v", d.Name, err)
		}
	}
	fn := &glsl.FuncDecl{Return: ret, Name: tr.rename(d.Name)}
	tr.pushScope()
	defer tr.popScope()
	for _, p := range d.Params {
		t, err := tr.resolveType(p.Type)
		if err != nil {
			return errf(d.Pos, "fn %s param %s: %v", d.Name, p.Name, err)
		}
		spec, err := semToSpec(t)
		if err != nil {
			return errf(d.Pos, "fn %s param %s: %v", d.Name, p.Name, err)
		}
		// Parameters shadow module names; bind without the module rename map.
		pn := tr.localName(p.Name)
		fn.Params = append(fn.Params, glsl.Param{Type: spec, Name: pn})
		tr.bind(p.Name, pn, t)
	}
	body, err := tr.block(d.Body, nil)
	if err != nil {
		return fmt.Errorf("fn %s: %w", d.Name, err)
	}
	fn.Body = body
	tr.sh.Decls = append(tr.sh.Decls, fn)
	return nil
}

// entryFn translates the @fragment entry point into void main():
// attributed parameters become `in` globals, the attributed return type
// becomes an `out` global, and valued returns store to it.
func (tr *translator) entryFn(d *FnDecl) error {
	var outVar string
	if d.Ret != nil {
		t, err := tr.resolveType(d.Ret)
		if err != nil {
			return errf(d.Pos, "entry return: %v", err)
		}
		spec, err := semToSpec(t)
		if err != nil {
			return errf(d.Pos, "entry return: %v", err)
		}
		// The synthesized out variable is not a source identifier: reserve
		// a fresh module-level name and keep it out of the value scopes
		// (only the return desugaring refers to it, by this exact
		// spelling — no WGSL expression can name it).
		outVar = tr.freshName("fragColor")
		g := &glsl.GlobalVar{Qual: glsl.QualOut, Type: spec, Name: outVar}
		if a, ok := FindAttr(d.RetAttrs, "location"); ok && len(a.Args) == 1 {
			g.Layout = "location = " + a.Args[0]
		}
		tr.sh.Decls = append(tr.sh.Decls, g)
	}
	tr.pushScope()
	defer tr.popScope()
	for _, p := range d.Params {
		t, err := tr.resolveType(p.Type)
		if err != nil {
			return errf(d.Pos, "entry param %s: %v", p.Name, err)
		}
		spec, err := semToSpec(t)
		if err != nil {
			return errf(d.Pos, "entry param %s: %v", p.Name, err)
		}
		name := tr.rename(p.Name)
		g := &glsl.GlobalVar{Qual: glsl.QualIn, Type: spec, Name: name}
		if a, ok := FindAttr(p.Attrs, "location"); ok && len(a.Args) == 1 {
			g.Layout = "location = " + a.Args[0]
		}
		tr.sh.Decls = append(tr.sh.Decls, g)
		tr.bind(p.Name, name, t)
	}
	body, err := tr.block(d.Body, &outVar)
	if err != nil {
		return fmt.Errorf("entry %s: %w", d.Name, err)
	}
	tr.sh.Decls = append(tr.sh.Decls, &glsl.FuncDecl{
		Return: glsl.Scalar("void"), Name: "main", Body: body,
	})
	return nil
}

// localName keeps function-local identifiers GLSL-safe and clear of
// every module-level spelling (see naming.Namer.Local for why that is a
// correctness requirement, not hygiene). Scopes are keyed by the
// original WGSL name, so the suffixed spelling rides along in the
// binding and shadowing still resolves by source semantics.
func (tr *translator) localName(name string) string { return tr.names.Local(name) }

// --- statements ---

// block translates a statement block. entryOut, when non-nil, is the name
// of the entry point's out variable: `return expr` desugars into a store
// to it followed by a bare return.
func (tr *translator) block(b *BlockStmt, entryOut *string) (*glsl.BlockStmt, error) {
	tr.pushScope()
	defer tr.popScope()
	out := &glsl.BlockStmt{Pos: pos(b.Pos)}
	for _, s := range b.Stmts {
		gs, err := tr.stmt(s, entryOut)
		if err != nil {
			return nil, err
		}
		out.Stmts = append(out.Stmts, gs...)
	}
	return out, nil
}

func (tr *translator) stmt(s Stmt, entryOut *string) ([]glsl.Stmt, error) {
	switch s := s.(type) {
	case *BlockStmt:
		b, err := tr.block(s, entryOut)
		if err != nil {
			return nil, err
		}
		return []glsl.Stmt{b}, nil
	case *LetStmt:
		d, err := tr.declStmt(s.Pos, s.Name, s.Type, s.Init, true)
		if err != nil {
			return nil, err
		}
		return []glsl.Stmt{d}, nil
	case *VarStmt:
		d, err := tr.declStmt(s.Pos, s.Name, s.Type, s.Init, false)
		if err != nil {
			return nil, err
		}
		return []glsl.Stmt{d}, nil
	case *AssignStmt:
		lhs, _, err := tr.expr(s.LHS)
		if err != nil {
			return nil, err
		}
		rhs, _, err := tr.expr(s.RHS)
		if err != nil {
			return nil, err
		}
		return []glsl.Stmt{&glsl.AssignStmt{Pos: pos(s.Pos), LHS: lhs, Op: s.Op, RHS: rhs}}, nil
	case *IfStmt:
		return tr.ifStmt(s, entryOut)
	case *ForStmt:
		return tr.forStmt(s, entryOut)
	case *WhileStmt:
		cond, _, err := tr.expr(s.Cond)
		if err != nil {
			return nil, err
		}
		body, err := tr.block(s.Body, entryOut)
		if err != nil {
			return nil, err
		}
		return []glsl.Stmt{&glsl.WhileStmt{Pos: pos(s.Pos), Cond: cond, Body: body}}, nil
	case *ReturnStmt:
		if s.Result == nil {
			return []glsl.Stmt{&glsl.ReturnStmt{Pos: pos(s.Pos)}}, nil
		}
		res, _, err := tr.expr(s.Result)
		if err != nil {
			return nil, err
		}
		if entryOut != nil {
			// Entry point: store the fragment output, then return void.
			if *entryOut == "" {
				return nil, errf(s.Pos, "entry point returns a value but declares no return type")
			}
			return []glsl.Stmt{
				&glsl.AssignStmt{Pos: pos(s.Pos), LHS: &glsl.IdentExpr{Name: *entryOut}, Op: "=", RHS: res},
				&glsl.ReturnStmt{Pos: pos(s.Pos)},
			}, nil
		}
		return []glsl.Stmt{&glsl.ReturnStmt{Pos: pos(s.Pos), Result: res}}, nil
	case *DiscardStmt:
		return []glsl.Stmt{&glsl.DiscardStmt{Pos: pos(s.Pos)}}, nil
	case *BreakStmt:
		return []glsl.Stmt{&glsl.BreakStmt{Pos: pos(s.Pos)}}, nil
	case *ContinueStmt:
		return []glsl.Stmt{&glsl.ContinueStmt{Pos: pos(s.Pos)}}, nil
	case *ExprStmt:
		x, _, err := tr.expr(s.X)
		if err != nil {
			return nil, err
		}
		return []glsl.Stmt{&glsl.ExprStmt{Pos: pos(s.Pos), X: x}}, nil
	}
	return nil, fmt.Errorf("unknown statement %T", s)
}

func (tr *translator) declStmt(p Pos, name string, ty *TypeExpr, init Expr, isLet bool) (*glsl.DeclStmt, error) {
	var gInit glsl.Expr
	var it sem.Type
	var err error
	if init != nil {
		gInit, it, err = tr.expr(init)
		if err != nil {
			return nil, err
		}
	}
	t := it
	if ty != nil {
		if t, err = tr.resolveType(ty); err != nil {
			return nil, errf(p, "%s %s: %v", kindWord(isLet), name, err)
		}
	} else if init == nil {
		return nil, errf(p, "%s %q needs a type or an initializer", kindWord(isLet), name)
	}
	spec, err := semToSpec(t)
	if err != nil {
		return nil, errf(p, "%s %s: %v", kindWord(isLet), name, err)
	}
	ln := tr.localName(name)
	tr.bind(name, ln, t)
	return &glsl.DeclStmt{Pos: pos(p), Const: isLet, Type: spec, Name: ln, Init: gInit}, nil
}

func kindWord(isLet bool) string {
	if isLet {
		return "let"
	}
	return "var"
}

func (tr *translator) ifStmt(s *IfStmt, entryOut *string) ([]glsl.Stmt, error) {
	cond, _, err := tr.expr(s.Cond)
	if err != nil {
		return nil, err
	}
	then, err := tr.block(s.Then, entryOut)
	if err != nil {
		return nil, err
	}
	out := &glsl.IfStmt{Pos: pos(s.Pos), Cond: cond, Then: then}
	switch els := s.Else.(type) {
	case nil:
	case *BlockStmt:
		b, err := tr.block(els, entryOut)
		if err != nil {
			return nil, err
		}
		out.Else = b
	case *IfStmt:
		chain, err := tr.ifStmt(els, entryOut)
		if err != nil {
			return nil, err
		}
		out.Else = chain[0]
	default:
		return nil, errf(s.Pos, "unsupported else form %T", s.Else)
	}
	return []glsl.Stmt{out}, nil
}

// forStmt translates WGSL `for`, keeping the canonical counted shape
// (`for (var i = 0; i < N; i++)`) intact so the shared lowering recognizes
// it and the Unroll pass can fire on WGSL loops exactly as on GLSL ones.
func (tr *translator) forStmt(s *ForStmt, entryOut *string) ([]glsl.Stmt, error) {
	tr.pushScope()
	defer tr.popScope()
	out := &glsl.ForStmt{Pos: pos(s.Pos)}
	if s.Init != nil {
		init, err := tr.stmt(s.Init, entryOut)
		if err != nil {
			return nil, err
		}
		if len(init) != 1 {
			return nil, errf(s.Pos, "unsupported for-loop initializer")
		}
		out.Init = init[0]
	}
	if s.Cond != nil {
		cond, _, err := tr.expr(s.Cond)
		if err != nil {
			return nil, err
		}
		out.Cond = cond
	}
	if s.Post != nil {
		post, err := tr.stmt(s.Post, entryOut)
		if err != nil {
			return nil, err
		}
		if len(post) != 1 {
			return nil, errf(s.Pos, "unsupported for-loop post statement")
		}
		out.Post = post[0]
	}
	body, err := tr.block(s.Body, entryOut)
	if err != nil {
		return nil, err
	}
	out.Body = body
	return []glsl.Stmt{out}, nil
}

func pos(p Pos) glsl.Pos { return glsl.Pos{Line: p.Line, Col: p.Col} }
