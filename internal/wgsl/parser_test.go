package wgsl

import "testing"

const miniShader = `
@group(0) @binding(0) var tex: texture_2d<f32>;
@group(0) @binding(1) var samp: sampler;
var<uniform> tint: vec4<f32>;

fn luma(c: vec3<f32>) -> f32 {
    return dot(c, vec3<f32>(0.299, 0.587, 0.114));
}

@fragment
fn main(@location(0) uv: vec2<f32>) -> @location(0) vec4<f32> {
    var acc = vec4<f32>(0.0);
    for (var i = 0; i < 4; i++) {
        acc += textureSample(tex, samp, uv) * 0.25;
    }
    let l = luma(acc.rgb);
    if (l < 0.1) {
        discard;
    }
    return acc * tint;
}
`

func TestParseModuleShape(t *testing.T) {
	m := MustParse(miniShader)
	if len(m.Decls) != 5 {
		t.Fatalf("decls = %d, want 5", len(m.Decls))
	}
	fns := m.Fns()
	if len(fns) != 2 || fns[0].Name != "luma" || fns[1].Name != "main" {
		t.Fatalf("fns = %v", fns)
	}
	ep := m.EntryPoint()
	if ep == nil || ep.Name != "main" {
		t.Fatal("no @fragment entry point found")
	}
	if ep.Ret == nil || ep.Ret.Name != "vec4" || ep.Ret.Elem.Name != "f32" {
		t.Fatalf("entry return = %v", ep.Ret)
	}
	if a, ok := FindAttr(ep.RetAttrs, "location"); !ok || len(a.Args) != 1 || a.Args[0] != "0" {
		t.Fatalf("entry return attrs = %v", ep.RetAttrs)
	}
}

func TestParseGlobalVars(t *testing.T) {
	m := MustParse(miniShader)
	g0, ok := m.Decls[0].(*GlobalVar)
	if !ok || g0.Name != "tex" || g0.Type.Name != "texture_2d" || g0.Type.Elem.Name != "f32" {
		t.Fatalf("decl 0 = %#v", m.Decls[0])
	}
	if a, ok := FindAttr(g0.Attrs, "binding"); !ok || a.Args[0] != "0" {
		t.Fatalf("tex attrs = %v", g0.Attrs)
	}
	g2, ok := m.Decls[2].(*GlobalVar)
	if !ok || g2.AddressSpace != "uniform" || g2.Name != "tint" {
		t.Fatalf("decl 2 = %#v", m.Decls[2])
	}
}

func TestParseEntryParams(t *testing.T) {
	m := MustParse(miniShader)
	ep := m.EntryPoint()
	if len(ep.Params) != 1 {
		t.Fatalf("params = %v", ep.Params)
	}
	p := ep.Params[0]
	if p.Name != "uv" || p.Type.Name != "vec2" {
		t.Fatalf("param = %#v", p)
	}
	if a, ok := FindAttr(p.Attrs, "location"); !ok || a.Args[0] != "0" {
		t.Fatalf("param attrs = %v", p.Attrs)
	}
}

func TestParseForLoopHeader(t *testing.T) {
	m := MustParse(miniShader)
	body := m.EntryPoint().Body
	f, ok := body.Stmts[1].(*ForStmt)
	if !ok {
		t.Fatalf("stmt 1 = %#v", body.Stmts[1])
	}
	if _, ok := f.Init.(*VarStmt); !ok {
		t.Errorf("for init = %#v", f.Init)
	}
	cond, ok := f.Cond.(*BinaryExpr)
	if !ok || cond.Op != "<" {
		t.Errorf("for cond = %#v", f.Cond)
	}
	post, ok := f.Post.(*AssignStmt)
	if !ok || post.Op != "+=" {
		t.Errorf("i++ should desugar to +=, got %#v", f.Post)
	}
}

func TestParseLetAndSwizzle(t *testing.T) {
	m := MustParse(miniShader)
	body := m.EntryPoint().Body
	let, ok := body.Stmts[2].(*LetStmt)
	if !ok || let.Name != "l" || let.Type != nil {
		t.Fatalf("stmt 2 = %#v", body.Stmts[2])
	}
	call, ok := let.Init.(*CallExpr)
	if !ok || call.Callee != "luma" {
		t.Fatalf("let init = %#v", let.Init)
	}
	mem, ok := call.Args[0].(*MemberExpr)
	if !ok || mem.Name != "rgb" {
		t.Fatalf("arg = %#v", call.Args[0])
	}
}

func TestParseIfWithoutParens(t *testing.T) {
	m := MustParse(`
@fragment fn main() -> @location(0) vec4<f32> {
    var x = 1.0;
    if x > 0.5 { x = 0.0; } else if x > 0.25 { x = 0.1; } else { x = 0.2; }
    return vec4<f32>(x);
}`)
	body := m.EntryPoint().Body
	ifs, ok := body.Stmts[1].(*IfStmt)
	if !ok {
		t.Fatalf("stmt 1 = %#v", body.Stmts[1])
	}
	chained, ok := ifs.Else.(*IfStmt)
	if !ok {
		t.Fatalf("else = %#v", ifs.Else)
	}
	if _, ok := chained.Else.(*BlockStmt); !ok {
		t.Fatalf("final else = %#v", chained.Else)
	}
}

func TestParseTemplatedArrayConstructor(t *testing.T) {
	m := MustParse(`
@fragment fn main() -> @location(0) vec4<f32> {
    let wts = array<f32, 3>(0.25, 0.5, 0.25);
    return vec4<f32>(wts[1]);
}`)
	body := m.EntryPoint().Body
	let := body.Stmts[0].(*LetStmt)
	call, ok := let.Init.(*CallExpr)
	if !ok || call.TypeArg == nil {
		t.Fatalf("init = %#v", let.Init)
	}
	if call.TypeArg.Name != "array" || call.TypeArg.Elem.Name != "f32" || call.TypeArg.Len != 3 {
		t.Fatalf("type arg = %v", call.TypeArg)
	}
	if len(call.Args) != 3 {
		t.Fatalf("args = %d", len(call.Args))
	}
}

func TestParseTemplatedLessThanAmbiguity(t *testing.T) {
	// `a < b` must stay a comparison even though `vec2<f32>` is a template.
	m := MustParse(`
@fragment fn main(@location(0) uv: vec2<f32>) -> @location(0) vec4<f32> {
    var x = 0.0;
    if (uv.x < uv.y) { x = 1.0; }
    return vec4<f32>(x);
}`)
	body := m.EntryPoint().Body
	ifs := body.Stmts[1].(*IfStmt)
	cond, ok := ifs.Cond.(*BinaryExpr)
	if !ok || cond.Op != "<" {
		t.Fatalf("cond = %#v", ifs.Cond)
	}
}

func TestParseMatPrefixedIdentComparison(t *testing.T) {
	// A variable merely starting with "mat" followed by '<' is a
	// comparison, not a templated constructor.
	m := MustParse(`
@fragment fn main(@location(0) uv: vec2<f32>) -> @location(0) vec4<f32> {
    let matte = uv.x;
    var c = 0.0;
    if (matte < 0.5) { c = 1.0; }
    let mm = mat2x2<f32>(1.0, 0.0, 0.0, 1.0);
    return vec4<f32>(c * mm[0].x);
}`)
	body := m.EntryPoint().Body
	ifs, ok := body.Stmts[2].(*IfStmt)
	if !ok {
		t.Fatalf("stmt 2 = %#v", body.Stmts[2])
	}
	cond, ok := ifs.Cond.(*BinaryExpr)
	if !ok || cond.Op != "<" {
		t.Fatalf("cond = %#v", ifs.Cond)
	}
	ctor := body.Stmts[3].(*LetStmt).Init.(*CallExpr)
	if ctor.TypeArg == nil || ctor.TypeArg.Name != "mat2x2" {
		t.Fatalf("mat ctor = %#v", ctor)
	}
}

func TestParsePrecedence(t *testing.T) {
	m := MustParse(`
@fragment fn main() -> @location(0) vec4<f32> {
    let x = 1.0 + 2.0 * 3.0;
    return vec4<f32>(x);
}`)
	let := m.EntryPoint().Body.Stmts[0].(*LetStmt)
	add, ok := let.Init.(*BinaryExpr)
	if !ok || add.Op != "+" {
		t.Fatalf("top op = %#v", let.Init)
	}
	mul, ok := add.Y.(*BinaryExpr)
	if !ok || mul.Op != "*" {
		t.Fatalf("rhs = %#v", add.Y)
	}
}

func TestParseModuleConst(t *testing.T) {
	m := MustParse(`
const gamma = 2.2;
const weights: vec3<f32> = vec3<f32>(0.299, 0.587, 0.114);
@fragment fn main() -> @location(0) vec4<f32> {
    return vec4<f32>(gamma);
}`)
	c0, ok := m.Decls[0].(*ConstDecl)
	if !ok || c0.Name != "gamma" || c0.Type != nil {
		t.Fatalf("decl 0 = %#v", m.Decls[0])
	}
	c1, ok := m.Decls[1].(*ConstDecl)
	if !ok || c1.Type == nil || c1.Type.Name != "vec3" {
		t.Fatalf("decl 1 = %#v", m.Decls[1])
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"fn f( { }",                            // bad parameter list
		"@fragment fn main() -> { }",           // missing return type
		"var x y;",                             // junk after name
		"fn f() { let = 3; }",                  // missing binding name
		"struct S { a: f32 }",                  // structs outside the subset
		"fn f() { for (var i = 0 i < 4;) {} }", // missing semicolon
	}
	for _, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		}
	}
}

func TestParseWhileAndBreak(t *testing.T) {
	m := MustParse(`
@fragment fn main() -> @location(0) vec4<f32> {
    var x = 0.0;
    while (x < 1.0) {
        x += 0.25;
        if (x > 0.8) { break; }
    }
    return vec4<f32>(x);
}`)
	body := m.EntryPoint().Body
	w, ok := body.Stmts[1].(*WhileStmt)
	if !ok {
		t.Fatalf("stmt 1 = %#v", body.Stmts[1])
	}
	inner := w.Body.Stmts[1].(*IfStmt)
	if _, ok := inner.Then.Stmts[0].(*BreakStmt); !ok {
		t.Fatalf("break not parsed: %#v", inner.Then.Stmts[0])
	}
}
