package wgsl

import (
	"fmt"

	"shaderopt/internal/glsl"
	"shaderopt/internal/sem"
)

// builtinRenames maps WGSL builtin spellings onto the canonical library
// names shared with the GLSL frontend. Identically-named builtins (sin,
// mix, dot, clamp, ...) pass through unchanged.
var builtinRenames = map[string]string{
	"inverseSqrt":  "inversesqrt",
	"dpdx":         "dFdx",
	"dpdy":         "dFdy",
	"dpdxCoarse":   "dFdx",
	"dpdyCoarse":   "dFdy",
	"dpdxFine":     "dFdx",
	"dpdyFine":     "dFdy",
	"fwidthCoarse": "fwidth",
	"fwidthFine":   "fwidth",
	"atan2":        "atan",
}

// expr translates a WGSL expression into the canonical AST, returning the
// translated node and its inferred sem type. Inference rides along with
// translation so `let` bindings and constructor desugarings never need a
// second pass.
func (tr *translator) expr(e Expr) (glsl.Expr, sem.Type, error) {
	switch e := e.(type) {
	case *IntLitExpr:
		return &glsl.IntLitExpr{Pos: pos(e.Pos), Value: e.Value}, sem.Int, nil
	case *FloatLitExpr:
		return &glsl.FloatLitExpr{Pos: pos(e.Pos), Value: e.Value}, sem.Float, nil
	case *BoolLitExpr:
		return &glsl.BoolLitExpr{Pos: pos(e.Pos), Value: e.Value}, sem.Bool, nil
	case *IdentExpr:
		return tr.identExpr(e)
	case *UnaryExpr:
		x, xt, err := tr.expr(e.X)
		if err != nil {
			return nil, sem.Void, err
		}
		return &glsl.UnaryExpr{Pos: pos(e.Pos), Op: e.Op, X: x}, xt, nil
	case *BinaryExpr:
		x, xt, err := tr.expr(e.X)
		if err != nil {
			return nil, sem.Void, err
		}
		y, yt, err := tr.expr(e.Y)
		if err != nil {
			return nil, sem.Void, err
		}
		rt, err := sem.BinaryResult(e.Op, xt, yt)
		if err != nil {
			return nil, sem.Void, errf(e.Pos, "%v", err)
		}
		return &glsl.BinaryExpr{Pos: pos(e.Pos), Op: e.Op, X: x, Y: y}, rt, nil
	case *CallExpr:
		return tr.callExpr(e)
	case *IndexExpr:
		return tr.indexExpr(e)
	case *MemberExpr:
		return tr.memberExpr(e)
	}
	return nil, sem.Void, fmt.Errorf("unknown expression %T", e)
}

func (tr *translator) identExpr(e *IdentExpr) (glsl.Expr, sem.Type, error) {
	if tr.samplers[e.Name] {
		return nil, sem.Void, errf(e.Pos, "sampler %q can only appear as a textureSample argument", e.Name)
	}
	// Scopes are keyed by the original WGSL name, innermost first, so
	// shadowing resolves by source semantics and each identifier carries
	// its own sanitized GLSL spelling.
	if b, ok := tr.lookup(e.Name); ok {
		return &glsl.IdentExpr{Pos: pos(e.Pos), Name: b.Name}, b.T, nil
	}
	return nil, sem.Void, errf(e.Pos, "undefined identifier %q", e.Name)
}

func (tr *translator) indexExpr(e *IndexExpr) (glsl.Expr, sem.Type, error) {
	x, xt, err := tr.expr(e.X)
	if err != nil {
		return nil, sem.Void, err
	}
	idx, it, err := tr.expr(e.Index)
	if err != nil {
		return nil, sem.Void, err
	}
	if it.Kind != sem.KindInt || !it.IsScalar() {
		return nil, sem.Void, errf(e.Pos, "index must be an integer scalar, got %s", it)
	}
	var rt sem.Type
	switch {
	case xt.IsArray():
		rt = xt.Elem()
	case xt.IsMatrix():
		rt = sem.VecType(sem.KindFloat, xt.Mat)
	case xt.IsVector():
		rt = xt.ScalarOf()
	default:
		return nil, sem.Void, errf(e.Pos, "cannot index %s", xt)
	}
	return &glsl.IndexExpr{Pos: pos(e.Pos), X: x, Index: idx}, rt, nil
}

func (tr *translator) memberExpr(e *MemberExpr) (glsl.Expr, sem.Type, error) {
	x, xt, err := tr.expr(e.X)
	if err != nil {
		return nil, sem.Void, err
	}
	if !xt.IsVector() {
		return nil, sem.Void, errf(e.Pos, "cannot swizzle %s", xt)
	}
	idx, err := sem.SwizzleIndices(e.Name, xt.Vec)
	if err != nil {
		return nil, sem.Void, errf(e.Pos, "%v", err)
	}
	rt := sem.VecType(xt.Kind, len(idx))
	return &glsl.FieldExpr{Pos: pos(e.Pos), X: x, Name: e.Name}, rt, nil
}

func (tr *translator) callExpr(e *CallExpr) (glsl.Expr, sem.Type, error) {
	// Templated constructors: vec4<f32>(...), array<f32, 9>(...).
	if e.TypeArg != nil {
		if e.TypeArg.Name == "array" {
			return tr.arrayCtor(e)
		}
		t, err := tr.resolveType(e.TypeArg)
		if err != nil {
			return nil, sem.Void, errf(e.Pos, "%v", err)
		}
		spec, err := semToSpec(t)
		if err != nil {
			return nil, sem.Void, errf(e.Pos, "%v", err)
		}
		return tr.ctorCall(e, spec.Name)
	}

	switch e.Callee {
	case "array":
		return tr.arrayCtor(e)
	case "select":
		// WGSL select(falseValue, trueValue, condition) is the ternary.
		if len(e.Args) != 3 {
			return nil, sem.Void, errf(e.Pos, "select needs 3 arguments, got %d", len(e.Args))
		}
		els, et, err := tr.expr(e.Args[0])
		if err != nil {
			return nil, sem.Void, err
		}
		thn, _, err := tr.expr(e.Args[1])
		if err != nil {
			return nil, sem.Void, err
		}
		cond, ct, err := tr.expr(e.Args[2])
		if err != nil {
			return nil, sem.Void, err
		}
		if !ct.Equal(sem.Bool) {
			return nil, sem.Void, errf(e.Pos, "select condition must be bool, got %s", ct)
		}
		return &glsl.CondExpr{Pos: pos(e.Pos), Cond: cond, Then: thn, Else: els}, et, nil
	case "textureSample", "textureSampleLevel":
		return tr.textureCall(e)
	}

	// Scalar/vector/matrix constructors spelled without templates:
	// vec3(...), vec4f(...), mat3x3(...), f32(x), i32(x).
	if name, ok := ctorName(e.Callee); ok {
		return tr.ctorCall(e, name)
	}

	name := e.Callee
	if nn, ok := builtinRenames[name]; ok {
		name = nn
	}
	if sem.IsBuiltin(name) {
		args, ats, err := tr.exprList(e.Args)
		if err != nil {
			return nil, sem.Void, err
		}
		rt, err := sem.ResolveBuiltin(name, ats)
		if err != nil {
			return nil, sem.Void, errf(e.Pos, "%v", err)
		}
		return &glsl.CallExpr{Pos: pos(e.Pos), Callee: name, Args: args}, rt, nil
	}

	// User-defined function.
	if nn, ok := tr.names.Renamed(e.Callee); ok {
		if rt, ok := tr.fnRet[nn]; ok {
			args, _, err := tr.exprList(e.Args)
			if err != nil {
				return nil, sem.Void, err
			}
			return &glsl.CallExpr{Pos: pos(e.Pos), Callee: nn, Args: args}, rt, nil
		}
	}
	return nil, sem.Void, errf(e.Pos, "call to undefined function %q", e.Callee)
}

// ctorName maps WGSL constructor spellings to GLSL constructor names.
func ctorName(callee string) (string, bool) {
	switch callee {
	case "f32", "f16":
		return "float", true
	case "i32":
		return "int", true
	case "u32":
		return "uint", true
	case "bool":
		return "bool", true
	case "vec2", "vec3", "vec4":
		return callee, true
	}
	if n, kind, ok := vecAlias(callee); ok {
		switch kind {
		case sem.KindFloat:
			return fmt.Sprintf("vec%d", n), true
		case sem.KindInt:
			return fmt.Sprintf("ivec%d", n), true
		}
	}
	if n, ok := matName(callee); ok {
		return fmt.Sprintf("mat%d", n), true
	}
	return "", false
}

func (tr *translator) ctorCall(e *CallExpr, glslName string) (glsl.Expr, sem.Type, error) {
	args, ats, err := tr.exprList(e.Args)
	if err != nil {
		return nil, sem.Void, err
	}
	rt, err := sem.ResolveConstructor(glslName, ats)
	if err != nil {
		return nil, sem.Void, errf(e.Pos, "%v", err)
	}
	return &glsl.CallExpr{Pos: pos(e.Pos), Callee: glslName, Args: args}, rt, nil
}

func (tr *translator) arrayCtor(e *CallExpr) (glsl.Expr, sem.Type, error) {
	args, ats, err := tr.exprList(e.Args)
	if err != nil {
		return nil, sem.Void, err
	}
	if len(args) == 0 {
		return nil, sem.Void, errf(e.Pos, "array constructor needs elements")
	}
	var elem sem.Type
	if e.TypeArg != nil && e.TypeArg.Elem != nil {
		elem, err = tr.resolveType(e.TypeArg.Elem)
		if err != nil {
			return nil, sem.Void, errf(e.Pos, "%v", err)
		}
		if n := e.TypeArg.Len; n > 0 && n != len(args) {
			return nil, sem.Void, errf(e.Pos, "array<%s, %d> constructed with %d elements", e.TypeArg.Elem, n, len(args))
		}
	} else {
		elem = ats[0]
	}
	for i, at := range ats {
		if !at.Equal(elem) {
			return nil, sem.Void, errf(e.Pos, "array element %d has type %s, want %s", i+1, at, elem)
		}
	}
	spec, err := semToSpec(elem)
	if err != nil {
		return nil, sem.Void, errf(e.Pos, "%v", err)
	}
	return &glsl.ArrayCtorExpr{Pos: pos(e.Pos), Elem: spec, Len: len(args), Elems: args},
		sem.ArrayOf(elem, len(args)), nil
}

// textureCall lowers WGSL's separate texture+sampler sampling onto the
// combined-sampler builtins: textureSample(t, s, uv) -> texture(t, uv) and
// textureSampleLevel(t, s, uv, lod) -> textureLod(t, uv, lod). The sampler
// argument must name a module-scope sampler binding; it carries no
// information the combined model needs, so it is dropped.
func (tr *translator) textureCall(e *CallExpr) (glsl.Expr, sem.Type, error) {
	want := 3
	target := "texture"
	if e.Callee == "textureSampleLevel" {
		want = 4
		target = "textureLod"
	}
	if len(e.Args) != want {
		return nil, sem.Void, errf(e.Pos, "%s needs %d arguments, got %d", e.Callee, want, len(e.Args))
	}
	sampArg, ok := e.Args[1].(*IdentExpr)
	if !ok || !tr.samplers[sampArg.Name] {
		return nil, sem.Void, errf(e.Pos, "%s: second argument must be a declared sampler binding", e.Callee)
	}
	rest := append([]Expr{e.Args[0]}, e.Args[2:]...)
	args, ats, err := tr.exprList(rest)
	if err != nil {
		return nil, sem.Void, err
	}
	rt, err := sem.ResolveBuiltin(target, ats)
	if err != nil {
		return nil, sem.Void, errf(e.Pos, "%s: %v", e.Callee, err)
	}
	return &glsl.CallExpr{Pos: pos(e.Pos), Callee: target, Args: args}, rt, nil
}

func (tr *translator) exprList(list []Expr) ([]glsl.Expr, []sem.Type, error) {
	args := make([]glsl.Expr, len(list))
	ats := make([]sem.Type, len(list))
	for i, a := range list {
		x, t, err := tr.expr(a)
		if err != nil {
			return nil, nil, err
		}
		args[i], ats[i] = x, t
	}
	return args, ats, nil
}
