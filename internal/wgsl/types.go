package wgsl

import (
	"fmt"
	"strings"

	"shaderopt/internal/glsl"
	"shaderopt/internal/naming"
	"shaderopt/internal/sem"
)

// resolveType maps a WGSL type reference onto the shared sem type system.
// Both the templated spellings (vec2<f32>, mat3x3<f32>, array<f32, 9>) and
// the predeclared aliases (vec2f, vec4i, mat3x3f) are accepted. f16
// resolves like f32 and u32 like i32 — the IR models one float and one int
// width, matching the GLSL frontend.
func (tr *translator) resolveType(te *TypeExpr) (sem.Type, error) {
	if te == nil {
		return sem.Void, fmt.Errorf("missing type")
	}
	switch te.Name {
	case "f32", "f16":
		return sem.Float, nil
	case "i32", "u32":
		return sem.Int, nil
	case "bool":
		return sem.Bool, nil
	case "array":
		if te.Elem == nil {
			return sem.Void, fmt.Errorf("array needs an element type")
		}
		if te.Len < 1 {
			return sem.Void, fmt.Errorf("runtime-sized arrays are outside the supported subset")
		}
		elem, err := tr.resolveType(te.Elem)
		if err != nil {
			return sem.Void, err
		}
		if elem.IsArray() || elem.IsSampler() {
			return sem.Void, fmt.Errorf("array of %s is outside the supported subset", elem)
		}
		return sem.ArrayOf(elem, te.Len), nil
	case "texture_2d":
		return sem.SamplerType("2D"), nil
	case "texture_3d":
		return sem.SamplerType("3D"), nil
	case "texture_cube":
		return sem.SamplerType("Cube"), nil
	case "texture_depth_2d":
		return sem.SamplerType("2DShadow"), nil
	case "texture_2d_array":
		return sem.SamplerType("2DArray"), nil
	case "sampler", "sampler_comparison":
		return sem.Void, fmt.Errorf("sampler bindings cannot be used as value types")
	case "vec2", "vec3", "vec4":
		n := int(te.Name[3] - '0')
		kind := sem.KindFloat
		if te.Elem != nil {
			k, err := scalarKind(te.Elem.Name)
			if err != nil {
				return sem.Void, fmt.Errorf("%s: %v", te.Name, err)
			}
			kind = k
		}
		return sem.VecType(kind, n), nil
	}
	// Predeclared aliases: vec2f / vec3i / vec4u / vec2h, mat2x2f, ...
	if n, kind, ok := vecAlias(te.Name); ok {
		return sem.VecType(kind, n), nil
	}
	if n, ok := matName(te.Name); ok {
		if te.Elem != nil {
			if _, err := scalarKind(te.Elem.Name); err != nil {
				return sem.Void, fmt.Errorf("%s: %v", te.Name, err)
			}
		}
		return sem.MatType(n), nil
	}
	return sem.Void, fmt.Errorf("unknown type %q", te.String())
}

func scalarKind(name string) (sem.Kind, error) {
	switch name {
	case "f32", "f16":
		return sem.KindFloat, nil
	case "i32", "u32":
		return sem.KindInt, nil
	case "bool":
		return sem.KindBool, nil
	}
	return sem.KindVoid, fmt.Errorf("unsupported element type %q", name)
}

// vecAlias resolves the vecNf / vecNi / vecNu / vecNh predeclared aliases.
func vecAlias(name string) (n int, kind sem.Kind, ok bool) {
	if len(name) != 5 || !strings.HasPrefix(name, "vec") {
		return 0, 0, false
	}
	n = int(name[3] - '0')
	if n < 2 || n > 4 {
		return 0, 0, false
	}
	switch name[4] {
	case 'f', 'h':
		return n, sem.KindFloat, true
	case 'i', 'u':
		return n, sem.KindInt, true
	}
	return 0, 0, false
}

// matName resolves matNxM names (with optional f/h suffix) to the square
// dimension; non-square matrices are outside the subset.
func matName(name string) (int, bool) {
	base := strings.TrimSuffix(strings.TrimSuffix(name, "f"), "h")
	if len(base) != 6 || !strings.HasPrefix(base, "mat") || base[4] != 'x' {
		return 0, false
	}
	n, m := int(base[3]-'0'), int(base[5]-'0')
	if n < 2 || n > 4 || n != m {
		return 0, false
	}
	return n, true
}

// semToSpec renders a sem type as a GLSL syntactic type reference for the
// canonical AST (the shared naming.SemToSpec spelling).
func semToSpec(t sem.Type) (glsl.TypeSpec, error) { return naming.SemToSpec(t) }
