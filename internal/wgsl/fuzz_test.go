package wgsl_test

// Native Go fuzz targets for the WGSL frontend. Three layers, each with
// its own invariant:
//
//   - FuzzLexer: LexAll never panics on arbitrary input.
//   - FuzzParser: Parse never panics; rejection is an error, not a crash.
//   - FuzzCompileRoundTrip: any input the full frontend accepts must
//     survive the study pipeline — the lowered IR verifies, and its
//     generated desktop GLSL re-parses and re-lowers cleanly (the
//     interchange form every simulated driver consumes must never be
//     rejected downstream).
//
// Seed corpora live under testdata/fuzz/<FuzzTarget>/ (checked in) and
// are topped up here with the native WGSL corpus shaders. CI runs a short
// -fuzztime smoke per target; `go test -fuzz FuzzX ./internal/wgsl` runs
// an open-ended campaign.

import (
	"testing"

	"shaderopt/internal/corpus"
	"shaderopt/internal/glsl"
	"shaderopt/internal/glslgen"
	"shaderopt/internal/lower"
	"shaderopt/internal/passes"
	"shaderopt/internal/wgsl"
)

// seedWGSL adds the native WGSL corpus plus grammar-corner snippets.
func seedWGSL(f *testing.F) {
	f.Helper()
	for _, s := range corpus.MustLoad() {
		if s.Lang.String() == "wgsl" {
			f.Add(s.Source)
		}
	}
	for _, s := range []string{
		"@fragment\nfn main() -> @location(0) vec4<f32> { return vec4<f32>(1.0); }",
		"var<uniform> k: f32;\n@fragment\nfn main(@location(0) uv: vec2<f32>) -> @location(0) vec4<f32> {\n  var acc: f32 = 0.0;\n  for (var i: i32 = 0; i < 4; i = i + 1) { acc = acc + f32(i) * k; }\n  if (acc > 1.0) { discard; }\n  return vec4<f32>(acc);\n}",
		"fn helper(x: f32) -> f32 { return select(x, 1.0 - x, x > 0.5); }",
		"const w = array<f32, 3>(0.25, 0.5, 0.25);",
		"// comment only",
		"@fragment fn main() -> @location(0) vec4<f32> { let v = vec3<f32>(1.0, 2.0, 3.0).xxy; return vec4<f32>(v, 1.0); }",
	} {
		f.Add(s)
	}
}

// FuzzLexer checks the lexer never panics: every input either tokenizes
// or fails with an error.
func FuzzLexer(f *testing.F) {
	seedWGSL(f)
	f.Fuzz(func(t *testing.T, src string) {
		wgsl.LexAll(src)
	})
}

// FuzzParser checks the recursive-descent parser never panics, no matter
// how malformed the token stream.
func FuzzParser(f *testing.F) {
	seedWGSL(f)
	f.Fuzz(func(t *testing.T, src string) {
		wgsl.Parse(src)
	})
}

// FuzzCompileRoundTrip checks the full-frontend invariant: accepted input
// lowers to verifiable IR whose generated GLSL re-parses and re-lowers
// cleanly.
func FuzzCompileRoundTrip(f *testing.F) {
	seedWGSL(f)
	f.Fuzz(func(t *testing.T, src string) {
		prog, err := wgsl.Compile(src, "fuzz")
		if err != nil {
			return // rejected inputs just must not panic
		}
		if err := prog.Verify(); err != nil {
			t.Fatalf("accepted WGSL lowered to invalid IR: %v\nsource:\n%s", err, src)
		}
		// The driver-visible translation: the unoptimized pipeline baseline.
		passes.Run(prog, passes.NoFlags)
		out := glslgen.Generate(prog, glslgen.Desktop)
		sh, err := glsl.Parse(out)
		if err != nil {
			t.Fatalf("generated GLSL does not re-parse: %v\nWGSL:\n%s\nGLSL:\n%s", err, src, out)
		}
		if _, err := lower.Lower(sh, "fuzz-reparse"); err != nil {
			t.Fatalf("generated GLSL does not re-lower: %v\nWGSL:\n%s\nGLSL:\n%s", err, src, out)
		}
	})
}
