// Package lru provides a small, concurrency-safe, cost-bounded LRU cache.
// Session-scale sweeps use it to bound the lowering and variant-enumeration
// caches by variant count, so a long-lived measurement service holds the
// hot working set without growing memory with corpus size (the ROADMAP's
// eviction open item).
package lru

import (
	"container/list"
	"sync"
)

// Cache is a cost-bounded LRU map. Each entry carries an explicit cost
// (e.g. a variant set costs its unique-variant count); when the summed
// cost exceeds the bound, least-recently-used entries are evicted. A
// non-positive bound disables eviction. All methods are safe for
// concurrent use.
type Cache[K comparable, V any] struct {
	mu       sync.Mutex
	max      int
	cost     int
	order    *list.List // front = most recently used; values are *entry[K, V]
	items    map[K]*list.Element
	hits     int64
	misses   int64
	evicted  int64
	rejected int64

	// Optional external event sinks (see Instrument); nil when the cache
	// is uninstrumented.
	hitSink, missSink, evictSink, rejectSink Counter
}

// Counter is the event-sink interface Instrument accepts: anything with
// an atomic Add, such as a telemetry registry counter. Keeping it an
// interface keeps this package dependency-free.
type Counter interface {
	Add(delta int64)
}

type entry[K comparable, V any] struct {
	key  K
	val  V
	cost int
}

// New creates a cache bounded by maxCost total cost. maxCost <= 0 means
// unbounded.
func New[K comparable, V any](maxCost int) *Cache[K, V] {
	return &Cache[K, V]{
		max:   maxCost,
		order: list.New(),
		items: make(map[K]*list.Element),
	}
}

// Instrument wires cache events to external counters — hits and misses
// on Get, evictions and oversized-entry rejections on Add — so a session
// can surface every cache's traffic uniformly through one telemetry
// registry. Any sink may be nil. Call before the cache is shared; sinks
// observe events from then on (the internal Stats counters keep counting
// from zero regardless).
func (c *Cache[K, V]) Instrument(hits, misses, evictions, rejections Counter) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.hitSink, c.missSink, c.evictSink, c.rejectSink = hits, misses, evictions, rejections
}

// Get returns the cached value and marks it most recently used.
func (c *Cache[K, V]) Get(key K) (V, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.order.MoveToFront(el)
		c.hits++
		if c.hitSink != nil {
			c.hitSink.Add(1)
		}
		return el.Value.(*entry[K, V]).val, true
	}
	c.misses++
	if c.missSink != nil {
		c.missSink.Add(1)
	}
	var zero V
	return zero, false
}

// Add inserts or refreshes an entry with the given cost, evicting the
// least-recently-used entries until the bound holds again. An entry whose
// own cost exceeds the bound is not stored at all: admitting it would
// either break the bound or immediately evict it, so the caller keeps the
// value unshared instead. Rejections are counted (Stats, and the
// Instrument rejection sink) — without that accounting, a bound smaller
// than the working set's largest entries reads as a 0%-hit mystery: the
// caller sees neither hit, miss, nor eviction, just a cache that never
// warms. Costs below 1 count as 1 so every entry makes eviction progress.
func (c *Cache[K, V]) Add(key K, val V, cost int) {
	if cost < 1 {
		cost = 1
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.max > 0 && cost > c.max {
		c.rejected++
		if c.rejectSink != nil {
			c.rejectSink.Add(1)
		}
		return
	}
	if el, ok := c.items[key]; ok {
		e := el.Value.(*entry[K, V])
		c.cost += cost - e.cost
		e.val, e.cost = val, cost
		c.order.MoveToFront(el)
	} else {
		c.items[key] = c.order.PushFront(&entry[K, V]{key: key, val: val, cost: cost})
		c.cost += cost
	}
	for c.max > 0 && c.cost > c.max {
		back := c.order.Back()
		if back == nil {
			break
		}
		e := back.Value.(*entry[K, V])
		c.order.Remove(back)
		delete(c.items, e.key)
		c.cost -= e.cost
		c.evicted++
		if c.evictSink != nil {
			c.evictSink.Add(1)
		}
	}
}

// Len returns the number of cached entries.
func (c *Cache[K, V]) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// Cost returns the summed cost of all cached entries.
func (c *Cache[K, V]) Cost() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.cost
}

// Bound returns the configured maximum cost (<= 0 means unbounded).
func (c *Cache[K, V]) Bound() int { return c.max }

// Stats returns cumulative hit, miss, eviction, and rejection counts
// (rejections being Adds refused because a single entry's cost exceeded
// the bound).
func (c *Cache[K, V]) Stats() (hits, misses, evicted, rejected int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, c.evicted, c.rejected
}
