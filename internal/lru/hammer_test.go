package lru

import (
	"sync"
	"sync/atomic"
	"testing"
)

type atomicCounter struct{ n int64 }

func (c *atomicCounter) Add(delta int64) { atomic.AddInt64(&c.n, delta) }

// TestHammerEvictionAccounting drives a small bounded cache from many
// goroutines (run under -race in CI) and checks the conservation law at
// quiescence: every distinct key ever admitted is either still resident
// or was evicted exactly once, so evictions == puts - len. Interleaved
// Gets shuffle recency to make the eviction order adversarial, and the
// instrumented sinks must agree with the internal counters — the
// telemetry registry reports whatever they observe.
func TestHammerEvictionAccounting(t *testing.T) {
	const (
		workers = 16
		puts    = 2000 // per worker, unique keys (refreshes would not insert)
		bound   = 128
	)
	c := New[int, int](bound)
	var hitSink, missSink, evictSink, rejectSink atomicCounter
	c.Instrument(&hitSink, &missSink, &evictSink, &rejectSink)

	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < puts; i++ {
				key := g*puts + i
				c.Add(key, key, 1)
				// Touch a stride of earlier keys so recency order churns
				// while other workers are mid-eviction.
				if i%7 == 0 {
					c.Get(g*puts + i/2)
				}
			}
		}(g)
	}
	wg.Wait()

	total := int64(workers * puts)
	_, _, evicted, rejected := c.Stats()
	if rejected != 0 || rejectSink.n != 0 {
		t.Errorf("rejected = %d (sink %d), want 0: every entry fits the bound", rejected, rejectSink.n)
	}
	if got, want := evicted, total-int64(c.Len()); got != want {
		t.Errorf("evictions = %d, want puts - len = %d - %d = %d", got, total, c.Len(), want)
	}
	if c.Cost() > bound {
		t.Errorf("cost %d exceeds bound %d at quiescence", c.Cost(), bound)
	}
	hits, misses, _, _ := c.Stats()
	if hitSink.n != hits || missSink.n != misses || evictSink.n != evicted {
		t.Errorf("instrumented sinks (h=%d m=%d e=%d) disagree with Stats (h=%d m=%d e=%d)",
			hitSink.n, missSink.n, evictSink.n, hits, misses, evicted)
	}
}
