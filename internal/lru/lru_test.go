package lru

import (
	"fmt"
	"sync"
	"testing"
)

func TestBasicGetAdd(t *testing.T) {
	c := New[string, int](10)
	if _, ok := c.Get("a"); ok {
		t.Fatal("hit on empty cache")
	}
	c.Add("a", 1, 3)
	if v, ok := c.Get("a"); !ok || v != 1 {
		t.Fatalf("Get(a) = %d, %v", v, ok)
	}
	if c.Len() != 1 || c.Cost() != 3 {
		t.Fatalf("len/cost = %d/%d, want 1/3", c.Len(), c.Cost())
	}
}

func TestEvictionOrderIsLRU(t *testing.T) {
	c := New[string, int](3)
	c.Add("a", 1, 1)
	c.Add("b", 2, 1)
	c.Add("c", 3, 1)
	c.Get("a") // refresh a: b is now least recently used
	c.Add("d", 4, 1)
	if _, ok := c.Get("b"); ok {
		t.Fatal("b should have been evicted (least recently used)")
	}
	for _, k := range []string{"a", "c", "d"} {
		if _, ok := c.Get(k); !ok {
			t.Fatalf("%s should have survived", k)
		}
	}
}

func TestCostNeverExceedsBound(t *testing.T) {
	c := New[int, string](100)
	for i := 0; i < 1000; i++ {
		c.Add(i, "v", 1+i%17)
		if c.Cost() > 100 {
			t.Fatalf("cost %d exceeds bound 100 after %d adds", c.Cost(), i+1)
		}
	}
	if c.Len() == 0 {
		t.Fatal("cache emptied itself")
	}
}

func TestOversizedEntryRejected(t *testing.T) {
	c := New[string, int](5)
	var rejects fakeCounter
	c.Instrument(nil, nil, nil, &rejects)
	c.Add("big", 1, 6)
	if _, ok := c.Get("big"); ok {
		t.Fatal("entry costlier than the whole bound must not be admitted")
	}
	if c.Cost() != 0 {
		t.Fatalf("cost = %d after rejected add", c.Cost())
	}
	// The refusal must be visible: neither a hit, miss, nor eviction
	// records it, so without the rejected counter a too-small bound looks
	// like a cache that never warms for no reason.
	if _, _, _, rejected := c.Stats(); rejected != 1 {
		t.Fatalf("rejected = %d, want 1", rejected)
	}
	if rejects.v != 1 {
		t.Fatalf("reject sink = %d, want 1", rejects.v)
	}
	c.Add("fits", 2, 5) // exactly at the bound: admitted, not a rejection
	if _, ok := c.Get("fits"); !ok {
		t.Fatal("entry at exactly the bound must be admitted")
	}
	if _, _, _, rejected := c.Stats(); rejected != 1 {
		t.Fatalf("rejected = %d after admissible add, want 1", rejected)
	}
}

func TestUpdateExistingAdjustsCost(t *testing.T) {
	c := New[string, int](10)
	c.Add("a", 1, 4)
	c.Add("a", 2, 6)
	if c.Len() != 1 || c.Cost() != 6 {
		t.Fatalf("len/cost = %d/%d, want 1/6", c.Len(), c.Cost())
	}
	if v, _ := c.Get("a"); v != 2 {
		t.Fatalf("Get(a) = %d, want 2", v)
	}
}

func TestUnboundedNeverEvicts(t *testing.T) {
	c := New[int, int](0)
	for i := 0; i < 500; i++ {
		c.Add(i, i, 100)
	}
	if c.Len() != 500 {
		t.Fatalf("len = %d, want 500 (unbounded)", c.Len())
	}
	if _, _, evicted, _ := c.Stats(); evicted != 0 {
		t.Fatalf("evicted = %d, want 0", evicted)
	}
}

func TestNonPositiveCostCountsAsOne(t *testing.T) {
	c := New[string, int](2)
	c.Add("a", 1, 0)
	c.Add("b", 2, -5)
	if c.Cost() != 2 {
		t.Fatalf("cost = %d, want 2 (each entry at least 1)", c.Cost())
	}
	c.Add("c", 3, 1)
	if c.Len() != 2 {
		t.Fatalf("len = %d after eviction, want 2", c.Len())
	}
}

func TestStats(t *testing.T) {
	c := New[string, int](1)
	c.Get("miss")
	c.Add("a", 1, 1)
	c.Get("a")
	c.Add("b", 2, 1) // evicts a
	hits, misses, evicted, rejected := c.Stats()
	if hits != 1 || misses != 1 || evicted != 1 || rejected != 0 {
		t.Fatalf("stats = %d/%d/%d/%d, want 1/1/1/0", hits, misses, evicted, rejected)
	}
}

// fakeCounter is a minimal stats sink for Instrument tests.
type fakeCounter struct{ v int64 }

func (f *fakeCounter) Add(delta int64) { f.v += delta }

func TestInstrumentSinks(t *testing.T) {
	c := New[string, int](1)
	var hits, misses, evicts, rejects fakeCounter
	c.Instrument(&hits, &misses, &evicts, &rejects)
	c.Get("miss")
	c.Add("a", 1, 1)
	c.Get("a")
	c.Add("b", 2, 1) // evicts a
	c.Add("big", 3, 2)
	if hits.v != 1 || misses.v != 1 || evicts.v != 1 || rejects.v != 1 {
		t.Fatalf("sinks = %d/%d/%d/%d, want 1/1/1/1", hits.v, misses.v, evicts.v, rejects.v)
	}
	// The internal stats count the same events, and nil sinks are allowed.
	if h, m, e, rj := c.Stats(); h != 1 || m != 1 || e != 1 || rj != 1 {
		t.Fatalf("stats = %d/%d/%d/%d, want 1/1/1/1", h, m, e, rj)
	}
	c.Instrument(nil, nil, nil, nil)
	c.Get("b")
	if hits.v != 1 {
		t.Fatalf("detached sink advanced: %d", hits.v)
	}
}

// TestConcurrentMixedUse drives the cache from many goroutines under -race
// and checks the bound holds throughout.
func TestConcurrentMixedUse(t *testing.T) {
	const bound = 64
	c := New[string, int](bound)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				k := fmt.Sprintf("k%d", (g*31+i)%100)
				if _, ok := c.Get(k); !ok {
					c.Add(k, i, 1+i%5)
				}
				if cost := c.Cost(); cost > bound {
					t.Errorf("cost %d exceeds bound %d", cost, bound)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}
