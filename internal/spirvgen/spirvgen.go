// Package spirvgen emits genuine SPIR-V 1.0 binary modules from the
// optimizer IR and decodes them back, closing the second leg of the
// multi-backend loop (GLSL text being the first, MSL text the third). The
// emitted stream uses the real SPIR-V instruction set — standard opcodes,
// GLSL.std.450 extended instructions, structured control flow with
// OpSelectionMerge/OpLoopMerge, and OpName debug instructions so the
// decoder recovers interface names exactly (unlike internal/spirv, the
// legacy compact encoding, which strips names by design).
//
// Where the IR's semantics do not line up with the SPIR-V spec the emitter
// takes documented liberties rather than inventing opcodes:
//
//   - floats and ints are 64-bit (OpTypeFloat 64 / OpTypeInt 64), matching
//     the interpreter's float64/int64 evaluation exactly; Float64/Int64
//     capabilities are always declared.
//   - componentwise matrix +, -, / reuse the scalar opcodes (OpFAdd &c.)
//     with matrix operand types.
//   - constructors are OpCompositeConstruct even when they convert kinds
//     (GLSL float(i)), where native SPIR-V would use OpConvertSToF.
//   - OpVectorExtractDynamic/InsertDynamic are also used for arrays.
//   - saturate() maps to the private extended-instruction number 1001
//     (GLSL.std.450 stops at 81); real compilers lower it to FClamp.
//   - while-loops carry their interpreter iteration bound as the
//     LoopControl MaxIterations literal (a SPIR-V 1.4 hint emitted in a
//     1.0 module); counted for-loops use LoopControl None, and the
//     decoder uses that bit to tell the two shapes apart.
//   - bool ^^ emits OpLogicalNotEqual and therefore decodes as !=, which
//     is the same function on booleans.
//
// Round-tripping Emit→Decode yields a program that renders bit-identically
// to its source; the backend-differential gate at the repository root
// enforces that corpus-wide.
package spirvgen

import (
	"fmt"

	"shaderopt/internal/sem"
)

// Magic is the SPIR-V magic number.
const Magic = 0x07230203

// Version is SPIR-V 1.0.
const Version = 0x00010000

// Generator is this tool's generator tag ("SHOP" in ASCII, shifted to the
// registered-tool-id half-word as unregistered vendor code).
const Generator = 0x53484F50

// SPIR-V opcodes (the subset this backend speaks).
const (
	opSource                 = 3
	opName                   = 5
	opExtInstImport          = 11
	opExtInst                = 12
	opMemoryModel            = 14
	opEntryPoint             = 15
	opExecutionMode          = 16
	opCapability             = 17
	opTypeVoid               = 19
	opTypeBool               = 20
	opTypeInt                = 21
	opTypeFloat              = 22
	opTypeVector             = 23
	opTypeMatrix             = 24
	opTypeImage              = 25
	opTypeSampledImage       = 27
	opTypeArray              = 28
	opTypePointer            = 32
	opTypeFunction           = 33
	opConstantTrue           = 41
	opConstantFalse          = 42
	opConstant               = 43
	opConstantComposite      = 44
	opFunction               = 54
	opFunctionEnd            = 56
	opVariable               = 59
	opLoad                   = 61
	opStore                  = 62
	opDecorate               = 71
	opVectorExtractDyn       = 77
	opVectorInsertDyn        = 78
	opVectorShuffle          = 79
	opCompositeConstruct     = 80
	opCompositeExtract       = 81
	opCompositeInsert        = 82
	opImageSampleImplicitLod = 87
	opImageSampleExplicitLod = 88
	opImageFetch             = 95
	opImage                  = 100
	opSNegate                = 126
	opFNegate                = 127
	opIAdd                   = 128
	opFAdd                   = 129
	opISub                   = 130
	opFSub                   = 131
	opIMul                   = 132
	opFMul                   = 133
	opSDiv                   = 135
	opFDiv                   = 136
	opSRem                   = 138
	opFMod                   = 141
	opVectorTimesScalar      = 142
	opMatrixTimesScalar      = 143
	opVectorTimesMatrix      = 144
	opMatrixTimesVector      = 145
	opMatrixTimesMatrix      = 146
	opDot                    = 148
	opLogicalEqual           = 164
	opLogicalNotEqual        = 165
	opLogicalOr              = 166
	opLogicalAnd             = 167
	opLogicalNot             = 168
	opSelect                 = 169
	opIEqual                 = 170
	opINotEqual              = 171
	opSGreaterThan           = 173
	opSGreaterThanEqual      = 175
	opSLessThan              = 177
	opSLessThanEqual         = 179
	opFOrdEqual              = 180
	opFUnordNotEqual         = 183
	opFOrdLessThan           = 184
	opFOrdGreaterThan        = 186
	opFOrdLessThanEqual      = 188
	opFOrdGreaterThanEqual   = 190
	opDPdx                   = 207
	opDPdy                   = 208
	opFwidth                 = 209
	opLoopMerge              = 246
	opSelectionMerge         = 247
	opLabel                  = 248
	opBranch                 = 249
	opBranchConditional      = 250
	opKill                   = 252
	opReturn                 = 253
)

// Enumerant values used by the module preamble.
const (
	capShader  = 1
	capFloat64 = 10
	capInt64   = 11

	addressingLogical = 0
	memoryGLSL450     = 1

	execModelFragment       = 4
	execModeOriginUpperLeft = 7

	sourceLangESSL = 1
	sourceLangGLSL = 2

	decorationLocation      = 30
	decorationBinding       = 33
	decorationDescriptorSet = 34

	storageUniformConstant = 0
	storageInput           = 1
	storageOutput          = 3
	storageFunction        = 7

	dim2D   = 1
	dim3D   = 2
	dimCube = 3

	imageOperandBias = 0x1
	imageOperandLod  = 0x2

	loopControlMaxIterations = 0x8
)

// glslStd450 is the extended instruction set name the module imports.
const glslStd450 = "GLSL.std.450"

// extSaturate is the private extended-instruction number used for
// saturate(); GLSL.std.450 proper has no saturate entry.
const extSaturate = 1001

// extInstNames maps GLSL.std.450 instruction numbers to IR builtin names.
// Both S- and F-variants decode to the same GLSL spelling; the subset's
// generic builtins are float-typed, so only the F-variants are emitted.
var extInstNames = map[uint32]string{
	4: "abs", 5: "abs", 6: "sign", 7: "sign", 8: "floor", 9: "ceil",
	10: "fract", 11: "radians", 12: "degrees", 13: "sin", 14: "cos",
	15: "tan", 16: "asin", 17: "acos", 18: "atan", 25: "atan", 26: "pow",
	27: "exp", 28: "log", 29: "exp2", 30: "log2", 31: "sqrt",
	32: "inversesqrt", 37: "min", 39: "min", 40: "max", 42: "max",
	43: "clamp", 45: "clamp", 46: "mix", 48: "step", 49: "smoothstep",
	66: "length", 67: "distance", 68: "cross", 69: "normalize",
	70: "faceforward", 71: "reflect", 72: "refract",
	extSaturate: "saturate",
}

// extInstNums maps IR builtin callees to GLSL.std.450 numbers. atan is
// handled separately (Atan 18 vs Atan2 25 by arity); texture ops, mod,
// dot, and derivatives use core opcodes.
var extInstNums = map[string]uint32{
	"abs": 4, "sign": 6, "floor": 8, "ceil": 9, "fract": 10,
	"radians": 11, "degrees": 12, "sin": 13, "cos": 14, "tan": 15,
	"asin": 16, "acos": 17, "pow": 26, "exp": 27, "log": 28, "exp2": 29,
	"log2": 30, "sqrt": 31, "inversesqrt": 32, "min": 37, "max": 40,
	"clamp": 43, "mix": 46, "step": 48, "smoothstep": 49, "length": 66,
	"distance": 67, "cross": 68, "normalize": 69, "faceforward": 70,
	"reflect": 71, "refract": 72, "saturate": extSaturate,
}

// dimOf maps the IR sampler dimension string to SPIR-V image type
// parameters (dim, depth, arrayed).
func dimOf(d string) (dim, depth, arrayed uint32, err error) {
	switch d {
	case "2D":
		return dim2D, 0, 0, nil
	case "3D":
		return dim3D, 0, 0, nil
	case "Cube":
		return dimCube, 0, 0, nil
	case "2DShadow":
		return dim2D, 1, 0, nil
	case "2DArray":
		return dim2D, 0, 1, nil
	}
	return 0, 0, 0, fmt.Errorf("spirvgen: unsupported sampler dim %q", d)
}

// dimName is the inverse of dimOf.
func dimName(dim, depth, arrayed uint32) (string, error) {
	switch {
	case dim == dim2D && depth == 0 && arrayed == 0:
		return "2D", nil
	case dim == dim3D:
		return "3D", nil
	case dim == dimCube:
		return "Cube", nil
	case dim == dim2D && depth == 1:
		return "2DShadow", nil
	case dim == dim2D && arrayed == 1:
		return "2DArray", nil
	}
	return "", fmt.Errorf("spirvgen: unsupported image shape dim=%d depth=%d arrayed=%d", dim, depth, arrayed)
}

// encodeString packs a string into NUL-terminated little-endian words.
func encodeString(s string) []uint32 {
	b := append([]byte(s), 0)
	for len(b)%4 != 0 {
		b = append(b, 0)
	}
	words := make([]uint32, 0, len(b)/4)
	for i := 0; i < len(b); i += 4 {
		words = append(words, uint32(b[i])|uint32(b[i+1])<<8|uint32(b[i+2])<<16|uint32(b[i+3])<<24)
	}
	return words
}

// decodeString reads a NUL-terminated string from words, returning the
// string and the number of words consumed.
func decodeString(words []uint32) (string, int) {
	var b []byte
	for i, w := range words {
		for s := 0; s < 32; s += 8 {
			c := byte(w >> s)
			if c == 0 {
				return string(b), i + 1
			}
			b = append(b, c)
		}
	}
	return string(b), len(words)
}

// typeKey returns a canonical dedup key for a sem.Type.
func typeKey(t sem.Type) string {
	if t.IsArray() {
		e := t
		e.ArrayLen = 0
		return fmt.Sprintf("arr[%d]%s", t.ArrayLen, typeKey(e))
	}
	switch {
	case t.Kind == sem.KindVoid:
		return "void"
	case t.IsSampler():
		return "samp:" + t.Dim
	case t.IsMatrix():
		return fmt.Sprintf("mat%d", t.Mat)
	case t.Vec > 1:
		return fmt.Sprintf("vec%d:%s", t.Vec, t.Kind.String())
	default:
		return t.Kind.String()
	}
}
