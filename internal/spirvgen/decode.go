package spirvgen

import (
	"encoding/binary"
	"fmt"
	"math"

	"shaderopt/internal/ir"
	"shaderopt/internal/sem"
)

// Decode reconstructs an IR program from a SPIR-V word stream produced by
// Emit. Interface names are recovered from OpName debug instructions;
// constants, which SPIR-V hoists to module scope and deduplicates, are
// re-materialized lazily at each use site so the decoded program satisfies
// the IR's block-scoped visibility rules.
func Decode(words []uint32, name string) (*ir.Program, error) {
	if len(words) < 5 {
		return nil, fmt.Errorf("spirvgen: module too short")
	}
	if words[0] != Magic {
		return nil, fmt.Errorf("spirvgen: bad magic %#x", words[0])
	}
	if words[1] != Version {
		return nil, fmt.Errorf("spirvgen: unsupported version %#x", words[1])
	}
	d := &decoder{
		p:       ir.NewProgram(name),
		types:   map[uint32]sem.Type{},
		ptrs:    map[uint32]ptrInfo{},
		consts:  map[uint32]constInfo{},
		names:   map[uint32]string{},
		globals: map[uint32]globalInfo{},
		vars:    map[uint32]*ir.Var{},
		vals:    map[uint32]*ir.Instr{},
		images:  map[uint32]*ir.Instr{},
		blocks:  map[uint32]*sblock{},
	}
	if err := d.module(words[5:]); err != nil {
		return nil, err
	}
	if d.entry == 0 {
		return nil, fmt.Errorf("spirvgen: module has no function body")
	}
	d.push(d.p.Body)
	if err := d.region(d.entry, 0); err != nil {
		return nil, err
	}
	d.pop()
	d.p.RenumberIDs()
	if err := d.p.Verify(); err != nil {
		return nil, fmt.Errorf("spirvgen: decoded module invalid: %w", err)
	}
	return d.p, nil
}

// DecodeBytes decodes a little-endian SPIR-V binary.
func DecodeBytes(b []byte, name string) (*ir.Program, error) {
	words, err := DecodeWords(b)
	if err != nil {
		return nil, err
	}
	return Decode(words, name)
}

// DecodeWords unpacks a little-endian SPIR-V byte stream into words —
// the inverse of EmitBytes' framing, without interpreting the module.
func DecodeWords(b []byte) ([]uint32, error) {
	if len(b)%4 != 0 {
		return nil, fmt.Errorf("spirvgen: byte length %d not word-aligned", len(b))
	}
	words := make([]uint32, len(b)/4)
	for i := range words {
		words[i] = binary.LittleEndian.Uint32(b[4*i:])
	}
	return words, nil
}

type ptrInfo struct {
	storage uint32
	t       sem.Type
}

type constInfo struct {
	t sem.Type
	c *ir.ConstVal
}

type globalInfo struct {
	g  *ir.Global
	op ir.Op // OpUniform or OpInput
}

// sblock is a raw SPIR-V basic block: instructions, an optional merge
// declaration, and a terminator. next is the sequentially following block,
// used to resume after OpKill.
type sblock struct {
	id     uint32
	instrs [][]uint32
	merge  []uint32
	term   []uint32
	next   uint32
}

type scope struct {
	b    *ir.Block
	memo map[uint32]*ir.Instr // constants materialized in this scope
}

type decoder struct {
	p       *ir.Program
	types   map[uint32]sem.Type
	ptrs    map[uint32]ptrInfo
	consts  map[uint32]constInfo
	names   map[uint32]string
	globals map[uint32]globalInfo
	vars    map[uint32]*ir.Var
	vals    map[uint32]*ir.Instr
	images  map[uint32]*ir.Instr // OpImage result → sampler load instr
	blocks  map[uint32]*sblock
	extSet  uint32
	entry   uint32
	scopes  []scope

	// lastBlock tracks emission order so OpKill can fall through to the
	// sequentially following (unreachable) resume block.
	lastBlock *sblock
}

func (d *decoder) push(b *ir.Block) {
	d.scopes = append(d.scopes, scope{b: b, memo: map[uint32]*ir.Instr{}})
}

func (d *decoder) pop() { d.scopes = d.scopes[:len(d.scopes)-1] }

func (d *decoder) cur() *scope { return &d.scopes[len(d.scopes)-1] }

func (d *decoder) name(id uint32, prefix string) string {
	if n, ok := d.names[id]; ok && n != "" {
		return n
	}
	return fmt.Sprintf("%s%d", prefix, id)
}

// module scans the module-level instructions, registering types,
// constants, and interface variables, and splits the function body into
// basic blocks.
func (d *decoder) module(words []uint32) error {
	pos := 0
	inFunction := false
	var blk *sblock
	endBlock := func(term []uint32) {
		blk.term = term
		blk = nil
	}
	for pos < len(words) {
		head := words[pos]
		wc := int(head >> 16)
		opc := head & 0xffff
		if wc == 0 || pos+wc > len(words) {
			return fmt.Errorf("spirvgen: truncated instruction at word %d", pos+5)
		}
		w := words[pos : pos+wc]
		pos += wc

		if inFunction {
			switch opc {
			case opFunctionEnd:
				inFunction = false
			case opLabel:
				if len(w) < 2 {
					return fmt.Errorf("spirvgen: short OpLabel")
				}
				nb := &sblock{id: w[1]}
				if blk != nil {
					return fmt.Errorf("spirvgen: label %d inside unterminated block", w[1])
				}
				if prev := d.lastBlock; prev != nil {
					prev.next = nb.id
				}
				d.blocks[nb.id] = nb
				d.lastBlock = nb
				if d.entry == 0 {
					d.entry = nb.id
				}
				blk = nb
			case opSelectionMerge, opLoopMerge:
				if blk == nil {
					return fmt.Errorf("spirvgen: merge outside block")
				}
				blk.merge = w
			case opBranch, opBranchConditional, opReturn, opKill:
				if blk == nil {
					return fmt.Errorf("spirvgen: terminator outside block")
				}
				endBlock(w)
			default:
				if blk == nil {
					return fmt.Errorf("spirvgen: instruction outside block")
				}
				blk.instrs = append(blk.instrs, w)
			}
			continue
		}

		switch opc {
		case opCapability, opMemoryModel, opEntryPoint, opExecutionMode, opDecorate:
			// Checked by Validate; not needed for reconstruction.
		case opSource:
			if len(w) >= 3 {
				if w[1] == sourceLangESSL {
					d.p.Version = fmt.Sprintf("%d es", w[2])
				} else {
					d.p.Version = fmt.Sprintf("%d", w[2])
				}
			}
		case opName:
			if len(w) >= 3 {
				s, _ := decodeString(w[2:])
				d.names[w[1]] = s
			}
		case opExtInstImport:
			if len(w) >= 3 {
				if s, _ := decodeString(w[2:]); s == glslStd450 {
					d.extSet = w[1]
				}
			}
		case opTypeVoid:
			d.types[w[1]] = sem.Void
		case opTypeBool:
			d.types[w[1]] = sem.Bool
		case opTypeInt:
			if len(w) < 4 || w[2] != 64 || w[3] != 1 {
				return fmt.Errorf("spirvgen: only signed 64-bit integers supported")
			}
			d.types[w[1]] = sem.Int
		case opTypeFloat:
			if len(w) < 3 || w[2] != 64 {
				return fmt.Errorf("spirvgen: only 64-bit floats supported")
			}
			d.types[w[1]] = sem.Float
		case opTypeVector:
			comp, ok := d.types[w[2]]
			if !ok || len(w) < 4 {
				return fmt.Errorf("spirvgen: bad vector type")
			}
			d.types[w[1]] = sem.VecType(comp.Kind, int(w[3]))
		case opTypeMatrix:
			col, ok := d.types[w[2]]
			if !ok || len(w) < 4 || !col.IsVector() {
				return fmt.Errorf("spirvgen: bad matrix type")
			}
			if int(w[3]) != col.Vec {
				return fmt.Errorf("spirvgen: only square matrices supported")
			}
			d.types[w[1]] = sem.MatType(col.Vec)
		case opTypeArray:
			elem, ok := d.types[w[2]]
			lenC, ok2 := d.consts[w[3]]
			if !ok || !ok2 || len(w) < 4 {
				return fmt.Errorf("spirvgen: bad array type")
			}
			t := elem
			t.ArrayLen = int(lenC.c.Int(0))
			d.types[w[1]] = t
		case opTypeImage:
			if len(w) < 9 {
				return fmt.Errorf("spirvgen: short OpTypeImage")
			}
			dim, err := dimName(w[3], w[4], w[5])
			if err != nil {
				return err
			}
			d.types[w[1]] = sem.SamplerType(dim)
		case opTypeSampledImage:
			img, ok := d.types[w[2]]
			if !ok {
				return fmt.Errorf("spirvgen: sampled image of unknown type")
			}
			d.types[w[1]] = img
		case opTypePointer:
			t, ok := d.types[w[3]]
			if !ok || len(w) < 4 {
				return fmt.Errorf("spirvgen: bad pointer type")
			}
			d.ptrs[w[1]] = ptrInfo{storage: w[2], t: t}
		case opTypeFunction:
			// void() — nothing to record.
		case opConstantTrue, opConstantFalse:
			t, ok := d.types[w[1]]
			if !ok {
				return fmt.Errorf("spirvgen: constant of unknown type")
			}
			d.consts[w[2]] = constInfo{t: t, c: ir.BoolConst(opc == opConstantTrue)}
		case opConstant:
			t, ok := d.types[w[1]]
			if !ok || len(w) < 5 {
				return fmt.Errorf("spirvgen: bad OpConstant")
			}
			bits := uint64(w[3]) | uint64(w[4])<<32
			var c *ir.ConstVal
			switch t.Kind {
			case sem.KindFloat:
				c = ir.FloatConst(math.Float64frombits(bits))
			case sem.KindInt:
				c = ir.IntConst(int64(bits))
			default:
				return fmt.Errorf("spirvgen: OpConstant of type %s", t)
			}
			d.consts[w[2]] = constInfo{t: t, c: c}
		case opConstantComposite:
			t, ok := d.types[w[1]]
			if !ok {
				return fmt.Errorf("spirvgen: composite constant of unknown type")
			}
			c := &ir.ConstVal{}
			for _, part := range w[3:] {
				pc, ok := d.consts[part]
				if !ok {
					return fmt.Errorf("spirvgen: composite references unknown constant %d", part)
				}
				c.Kind = pc.c.Kind
				c.F = append(c.F, pc.c.F...)
				c.I = append(c.I, pc.c.I...)
				c.B = append(c.B, pc.c.B...)
			}
			d.consts[w[2]] = constInfo{t: t, c: c}
		case opVariable:
			pi, ok := d.ptrs[w[1]]
			if !ok || len(w) < 4 {
				return fmt.Errorf("spirvgen: bad module variable")
			}
			id := w[2]
			switch w[3] {
			case storageUniformConstant:
				d.globals[id] = globalInfo{g: d.p.AddUniform(d.name(id, "u"), pi.t), op: ir.OpUniform}
			case storageInput:
				d.globals[id] = globalInfo{g: d.p.AddInput(d.name(id, "in"), pi.t), op: ir.OpInput}
			case storageOutput:
				d.vars[id] = d.p.AddOutput(d.name(id, "out"), pi.t)
			default:
				return fmt.Errorf("spirvgen: module variable with storage class %d", w[3])
			}
		case opFunction:
			inFunction = true
		default:
			return fmt.Errorf("spirvgen: unexpected module-level opcode %d", opc)
		}
	}
	if blk != nil {
		return fmt.Errorf("spirvgen: unterminated block %d", blk.id)
	}
	return nil
}

// resolve returns the instruction producing id, materializing module
// constants into the current block on first use within a scope.
func (d *decoder) resolve(id uint32) (*ir.Instr, error) {
	if in, ok := d.vals[id]; ok {
		return in, nil
	}
	for i := len(d.scopes) - 1; i >= 0; i-- {
		if in, ok := d.scopes[i].memo[id]; ok {
			return in, nil
		}
	}
	if ci, ok := d.consts[id]; ok {
		in := d.p.NewInstr(ir.OpConst, ci.t)
		in.Const = ci.c.Clone()
		s := d.cur()
		s.b.Append(in)
		s.memo[id] = in
		return in, nil
	}
	return nil, fmt.Errorf("spirvgen: unknown value id %d", id)
}

// region decodes basic blocks into the current IR block until control
// reaches stop (0 = decode to OpReturn).
func (d *decoder) region(bid, stop uint32) error {
	for {
		blk := d.blocks[bid]
		if blk == nil {
			return fmt.Errorf("spirvgen: branch to unknown block %d", bid)
		}
		for _, iw := range blk.instrs {
			if err := d.instr(iw); err != nil {
				return err
			}
		}
		t := blk.term
		switch t[0] & 0xffff {
		case opReturn:
			if stop != 0 {
				return fmt.Errorf("spirvgen: OpReturn inside structured region")
			}
			return nil
		case opKill:
			d.cur().b.Append(d.p.NewInstr(ir.OpDiscard, sem.Void))
			if blk.next == 0 {
				return fmt.Errorf("spirvgen: no block after OpKill")
			}
			bid = blk.next
		case opBranch:
			target := t[1]
			if target == stop {
				return nil
			}
			tb := d.blocks[target]
			if tb != nil && tb.merge != nil && tb.merge[0]&0xffff == opLoopMerge {
				merge, err := d.loop(target)
				if err != nil {
					return err
				}
				if merge == stop {
					return nil
				}
				bid = merge
			} else {
				bid = target
			}
		case opBranchConditional:
			if blk.merge == nil || blk.merge[0]&0xffff != opSelectionMerge {
				return fmt.Errorf("spirvgen: conditional branch without OpSelectionMerge")
			}
			merge := blk.merge[1]
			cond, err := d.resolve(t[1])
			if err != nil {
				return err
			}
			node := &ir.If{Cond: cond, Then: &ir.Block{}}
			d.cur().b.Append(node)
			d.push(node.Then)
			if err := d.region(t[2], merge); err != nil {
				return err
			}
			d.pop()
			if t[3] != merge {
				node.Else = &ir.Block{}
				d.push(node.Else)
				if err := d.region(t[3], merge); err != nil {
					return err
				}
				d.pop()
			}
			bid = merge
		default:
			return fmt.Errorf("spirvgen: unexpected terminator opcode %d", t[0]&0xffff)
		}
	}
}

// loop decodes a structured loop rooted at a header block carrying
// OpLoopMerge, returning the merge block id. LoopControl None marks the
// canonical counted shape; MaxIterations marks a while-loop.
func (d *decoder) loop(headerID uint32) (uint32, error) {
	hdr := d.blocks[headerID]
	mw := hdr.merge
	if len(mw) < 4 {
		return 0, fmt.Errorf("spirvgen: short OpLoopMerge")
	}
	merge, cont, control := mw[1], mw[2], mw[3]
	if hdr.term[0]&0xffff != opBranch {
		return 0, fmt.Errorf("spirvgen: loop header must end in OpBranch")
	}
	chk := d.blocks[hdr.term[1]]
	if chk == nil {
		return 0, fmt.Errorf("spirvgen: loop check block missing")
	}
	if chk.term[0]&0xffff != opBranchConditional || chk.term[3] != merge {
		return 0, fmt.Errorf("spirvgen: loop check block has unexpected terminator")
	}
	bodyID := chk.term[2]
	contBlk := d.blocks[cont]
	if contBlk == nil || contBlk.term[0]&0xffff != opBranch || contBlk.term[1] != headerID {
		return 0, fmt.Errorf("spirvgen: loop continue block must branch to header")
	}

	if control&loopControlMaxIterations != 0 {
		if len(mw) < 5 {
			return 0, fmt.Errorf("spirvgen: MaxIterations literal missing")
		}
		w := &ir.While{Cond: &ir.Block{}, Body: &ir.Block{}, MaxIter: int(mw[4])}
		d.cur().b.Append(w)
		d.push(w.Cond)
		for _, iw := range chk.instrs {
			if err := d.instr(iw); err != nil {
				return 0, err
			}
		}
		cv, err := d.resolve(chk.term[1])
		if err != nil {
			return 0, err
		}
		w.CondVal = cv
		d.pop()
		if len(contBlk.instrs) != 0 {
			return 0, fmt.Errorf("spirvgen: while continue block must be empty")
		}
		d.push(w.Body)
		if err := d.region(bodyID, cont); err != nil {
			return 0, err
		}
		d.pop()
		return merge, nil
	}

	// Counted loop: retract the init store from the parent block, then
	// recover End from the check block and Step from the continue block.
	cb := d.cur().b
	n := len(cb.Items)
	if n == 0 {
		return 0, fmt.Errorf("spirvgen: counted loop without init store")
	}
	store, ok := cb.Items[n-1].(*ir.Instr)
	if !ok || store.Op != ir.OpStore {
		return 0, fmt.Errorf("spirvgen: counted loop not preceded by counter store")
	}
	cb.Items = cb.Items[:n-1]
	ctr := store.Var

	if len(chk.instrs) != 2 {
		return 0, fmt.Errorf("spirvgen: counted loop check block has %d instructions, want 2", len(chk.instrs))
	}
	ldW, cmpW := chk.instrs[0], chk.instrs[1]
	if ldW[0]&0xffff != opLoad || len(ldW) < 4 || d.vars[ldW[3]] != ctr {
		return 0, fmt.Errorf("spirvgen: counted loop check does not load the counter")
	}
	if cmpW[0]&0xffff != opSLessThan || len(cmpW) < 5 || cmpW[3] != ldW[2] {
		return 0, fmt.Errorf("spirvgen: counted loop check is not counter < end")
	}
	end, err := d.resolve(cmpW[4])
	if err != nil {
		return 0, err
	}
	if len(contBlk.instrs) != 3 {
		return 0, fmt.Errorf("spirvgen: counted loop continue block has %d instructions, want 3", len(contBlk.instrs))
	}
	incW := contBlk.instrs[1]
	if incW[0]&0xffff != opIAdd || len(incW) < 5 {
		return 0, fmt.Errorf("spirvgen: counted loop increment is not OpIAdd")
	}
	step, err := d.resolve(incW[4])
	if err != nil {
		return 0, err
	}
	loop := &ir.Loop{Counter: ctr, Start: store.Args[0], End: end, Step: step, Body: &ir.Block{}}
	cb.Append(loop)
	d.push(loop.Body)
	if err := d.region(bodyID, cont); err != nil {
		return 0, err
	}
	d.pop()
	return merge, nil
}

// binDecode maps arithmetic/comparison opcodes back to IR binary
// operators. ^^ decodes as != (the same function on booleans).
var binDecode = map[uint32]string{
	opIAdd: "+", opFAdd: "+", opISub: "-", opFSub: "-",
	opIMul: "*", opFMul: "*", opSDiv: "/", opFDiv: "/", opSRem: "%",
	opVectorTimesScalar: "*", opMatrixTimesScalar: "*",
	opVectorTimesMatrix: "*", opMatrixTimesVector: "*", opMatrixTimesMatrix: "*",
	opIEqual: "==", opINotEqual: "!=",
	opSGreaterThan: ">", opSGreaterThanEqual: ">=",
	opSLessThan: "<", opSLessThanEqual: "<=",
	opFOrdEqual: "==", opFUnordNotEqual: "!=",
	opFOrdLessThan: "<", opFOrdGreaterThan: ">",
	opFOrdLessThanEqual: "<=", opFOrdGreaterThanEqual: ">=",
	opLogicalEqual: "==", opLogicalNotEqual: "!=",
	opLogicalOr: "||", opLogicalAnd: "&&",
}

// coreCalls maps single-opcode builtins back to their callee names.
var coreCalls = map[uint32]string{
	opFMod: "mod", opDot: "dot", opDPdx: "dFdx", opDPdy: "dFdy", opFwidth: "fwidth",
}

func (d *decoder) instr(w []uint32) error {
	opc := w[0] & 0xffff
	need := func(n int) error {
		if len(w) < n {
			return fmt.Errorf("spirvgen: opcode %d: want %d words, got %d", opc, n, len(w))
		}
		return nil
	}
	rt := func() (sem.Type, error) {
		t, ok := d.types[w[1]]
		if !ok {
			return sem.Void, fmt.Errorf("spirvgen: opcode %d references unknown type %d", opc, w[1])
		}
		return t, nil
	}
	// emitCall builds an OpCall instruction from resolved argument ids.
	emitCall := func(callee string, t sem.Type, args ...*ir.Instr) *ir.Instr {
		in := d.p.NewInstr(ir.OpCall, t, args...)
		in.Callee = callee
		return in
	}
	record := func(in *ir.Instr) {
		d.cur().b.Append(in)
		d.vals[w[2]] = in
	}

	if s, ok := binDecode[opc]; ok {
		if err := need(5); err != nil {
			return err
		}
		t, err := rt()
		if err != nil {
			return err
		}
		a, err := d.resolve(w[3])
		if err != nil {
			return err
		}
		b, err := d.resolve(w[4])
		if err != nil {
			return err
		}
		in := d.p.NewInstr(ir.OpBin, t, a, b)
		in.BinOp = s
		record(in)
		return nil
	}
	if callee, ok := coreCalls[opc]; ok {
		if err := need(4); err != nil {
			return err
		}
		t, err := rt()
		if err != nil {
			return err
		}
		args := make([]*ir.Instr, 0, len(w)-3)
		for _, aid := range w[3:] {
			a, err := d.resolve(aid)
			if err != nil {
				return err
			}
			args = append(args, a)
		}
		record(emitCall(callee, t, args...))
		return nil
	}

	switch opc {
	case opVariable:
		pi, ok := d.ptrs[w[1]]
		if err := need(4); err != nil {
			return err
		}
		if !ok || w[3] != storageFunction {
			return fmt.Errorf("spirvgen: function-scope variable with bad pointer/storage")
		}
		d.vars[w[2]] = d.p.AddVar(d.name(w[2], "v"), pi.t)
	case opLoad:
		if err := need(4); err != nil {
			return err
		}
		t, err := rt()
		if err != nil {
			return err
		}
		if gi, ok := d.globals[w[3]]; ok {
			in := d.p.NewInstr(gi.op, t)
			in.Global = gi.g
			record(in)
			return nil
		}
		v, ok := d.vars[w[3]]
		if !ok {
			return fmt.Errorf("spirvgen: load from unknown pointer %d", w[3])
		}
		in := d.p.NewInstr(ir.OpLoad, t)
		in.Var = v
		record(in)
	case opStore:
		if err := need(3); err != nil {
			return err
		}
		v, ok := d.vars[w[1]]
		if !ok {
			return fmt.Errorf("spirvgen: store to unknown pointer %d", w[1])
		}
		val, err := d.resolve(w[2])
		if err != nil {
			return err
		}
		in := d.p.NewInstr(ir.OpStore, sem.Void, val)
		in.Var = v
		d.cur().b.Append(in)
	case opSNegate, opFNegate, opLogicalNot:
		if err := need(4); err != nil {
			return err
		}
		t, err := rt()
		if err != nil {
			return err
		}
		a, err := d.resolve(w[3])
		if err != nil {
			return err
		}
		in := d.p.NewInstr(ir.OpUn, t, a)
		if opc == opLogicalNot {
			in.UnOp = "!"
		} else {
			in.UnOp = "-"
		}
		record(in)
	case opExtInst:
		if err := need(6); err != nil {
			return err
		}
		t, err := rt()
		if err != nil {
			return err
		}
		if w[3] != d.extSet {
			return fmt.Errorf("spirvgen: OpExtInst from unknown instruction set")
		}
		callee, ok := extInstNames[w[4]]
		if !ok {
			return fmt.Errorf("spirvgen: unknown GLSL.std.450 instruction %d", w[4])
		}
		args := make([]*ir.Instr, 0, len(w)-5)
		for _, aid := range w[5:] {
			a, err := d.resolve(aid)
			if err != nil {
				return err
			}
			args = append(args, a)
		}
		record(emitCall(callee, t, args...))
	case opCompositeConstruct:
		t, err := rt()
		if err != nil {
			return err
		}
		args := make([]*ir.Instr, 0, len(w)-3)
		for _, aid := range w[3:] {
			a, err := d.resolve(aid)
			if err != nil {
				return err
			}
			args = append(args, a)
		}
		record(d.p.NewInstr(ir.OpConstruct, t, args...))
	case opCompositeExtract:
		if err := need(5); err != nil {
			return err
		}
		if len(w) > 5 {
			return fmt.Errorf("spirvgen: multi-index OpCompositeExtract not supported")
		}
		t, err := rt()
		if err != nil {
			return err
		}
		a, err := d.resolve(w[3])
		if err != nil {
			return err
		}
		in := d.p.NewInstr(ir.OpExtract, t, a)
		in.Index = int(w[4])
		record(in)
	case opCompositeInsert:
		if err := need(6); err != nil {
			return err
		}
		t, err := rt()
		if err != nil {
			return err
		}
		obj, err := d.resolve(w[3])
		if err != nil {
			return err
		}
		agg, err := d.resolve(w[4])
		if err != nil {
			return err
		}
		in := d.p.NewInstr(ir.OpInsert, t, agg, obj)
		in.Index = int(w[5])
		record(in)
	case opVectorShuffle:
		if err := need(6); err != nil {
			return err
		}
		if w[3] != w[4] {
			return fmt.Errorf("spirvgen: OpVectorShuffle of two distinct vectors not supported")
		}
		t, err := rt()
		if err != nil {
			return err
		}
		a, err := d.resolve(w[3])
		if err != nil {
			return err
		}
		in := d.p.NewInstr(ir.OpSwizzle, t, a)
		for _, ix := range w[5:] {
			in.Indices = append(in.Indices, int(ix))
		}
		record(in)
	case opVectorExtractDyn:
		if err := need(5); err != nil {
			return err
		}
		t, err := rt()
		if err != nil {
			return err
		}
		agg, err := d.resolve(w[3])
		if err != nil {
			return err
		}
		idx, err := d.resolve(w[4])
		if err != nil {
			return err
		}
		record(d.p.NewInstr(ir.OpExtractDyn, t, agg, idx))
	case opVectorInsertDyn:
		if err := need(6); err != nil {
			return err
		}
		t, err := rt()
		if err != nil {
			return err
		}
		agg, err := d.resolve(w[3])
		if err != nil {
			return err
		}
		comp, err := d.resolve(w[4])
		if err != nil {
			return err
		}
		idx, err := d.resolve(w[5])
		if err != nil {
			return err
		}
		record(d.p.NewInstr(ir.OpInsertDyn, t, agg, idx, comp))
	case opSelect:
		if err := need(6); err != nil {
			return err
		}
		t, err := rt()
		if err != nil {
			return err
		}
		cond, err := d.resolve(w[3])
		if err != nil {
			return err
		}
		a, err := d.resolve(w[4])
		if err != nil {
			return err
		}
		b, err := d.resolve(w[5])
		if err != nil {
			return err
		}
		record(d.p.NewInstr(ir.OpSelect, t, cond, a, b))
	case opImage:
		if err := need(4); err != nil {
			return err
		}
		samp, ok := d.vals[w[3]]
		if !ok {
			return fmt.Errorf("spirvgen: OpImage of unknown sampled image %d", w[3])
		}
		d.images[w[2]] = samp
	case opImageSampleImplicitLod, opImageSampleExplicitLod:
		if err := need(5); err != nil {
			return err
		}
		t, err := rt()
		if err != nil {
			return err
		}
		samp, ok := d.vals[w[3]]
		if !ok {
			return fmt.Errorf("spirvgen: sample from unknown sampled image %d", w[3])
		}
		coord, err := d.resolve(w[4])
		if err != nil {
			return err
		}
		if opc == opImageSampleExplicitLod {
			if len(w) < 7 || w[5] != imageOperandLod {
				return fmt.Errorf("spirvgen: explicit-lod sample without Lod operand")
			}
			lod, err := d.resolve(w[6])
			if err != nil {
				return err
			}
			record(emitCall("textureLod", t, samp, coord, lod))
			return nil
		}
		if len(w) >= 7 && w[5] == imageOperandBias {
			bias, err := d.resolve(w[6])
			if err != nil {
				return err
			}
			record(emitCall("texture", t, samp, coord, bias))
			return nil
		}
		record(emitCall("texture", t, samp, coord))
	case opImageFetch:
		if err := need(7); err != nil {
			return err
		}
		t, err := rt()
		if err != nil {
			return err
		}
		samp, ok := d.images[w[3]]
		if !ok {
			return fmt.Errorf("spirvgen: fetch from unknown image %d", w[3])
		}
		coord, err := d.resolve(w[4])
		if err != nil {
			return err
		}
		if w[5] != imageOperandLod {
			return fmt.Errorf("spirvgen: OpImageFetch without Lod operand")
		}
		lod, err := d.resolve(w[6])
		if err != nil {
			return err
		}
		// The subset's texelFetch takes lod at coordinate width; rebuild
		// the splat the emitter collapsed to a scalar.
		lodArg := lod
		if n := coord.Type.Vec; n > 1 {
			parts := make([]*ir.Instr, n)
			for i := range parts {
				parts[i] = lod
			}
			lodArg = d.p.NewInstr(ir.OpConstruct, sem.VecType(sem.KindInt, n), parts...)
			d.cur().b.Append(lodArg)
		}
		record(emitCall("texelFetch", t, samp, coord, lodArg))
	default:
		return fmt.Errorf("spirvgen: unsupported function-body opcode %d", opc)
	}
	return nil
}
