package spirvgen_test

import (
	"strings"
	"testing"

	"shaderopt/internal/exec"
	"shaderopt/internal/glsl"
	"shaderopt/internal/harness"
	"shaderopt/internal/ir"
	"shaderopt/internal/lower"
	"shaderopt/internal/sem"
	"shaderopt/internal/spirvgen"
)

// render interprets a program over an 8×8 grid with harness-default
// uniforms, uv varying across the image.
func render(t *testing.T, p *ir.Program) [][4]float64 {
	t.Helper()
	env := harness.DefaultEnv(p)
	var img [][4]float64
	for y := 0; y < 8; y++ {
		for x := 0; x < 8; x++ {
			u := (float64(x) + 0.5) / 8
			v := (float64(y) + 0.5) / 8
			for _, in := range p.Inputs {
				if in.Type.Equal(sem.Vec2) {
					env.Inputs[in.Name] = ir.FloatConst(u, v)
				}
			}
			res, err := exec.Run(p, env)
			if err != nil {
				t.Fatalf("run: %v", err)
			}
			var px [4]float64
			if !res.Discarded {
				for _, out := range p.Outputs {
					val := res.Outputs[out.Name]
					for i := 0; i < val.Len() && i < 4; i++ {
						px[i] = val.Float(i)
					}
					break
				}
			}
			img = append(img, px)
		}
	}
	return img
}

// roundTrip lowers GLSL source, emits SPIR-V, validates it, decodes it
// back, and requires the two programs to render bit-identically.
func roundTrip(t *testing.T, src, name string) []uint32 {
	t.Helper()
	prog, err := lower.Lower(glsl.MustParse(src), name)
	if err != nil {
		t.Fatalf("lower: %v", err)
	}
	words, err := spirvgen.Emit(prog)
	if err != nil {
		t.Fatalf("emit: %v", err)
	}
	if err := spirvgen.Validate(words); err != nil {
		t.Fatalf("emitted module fails validation: %v\n%s", err, spirvgen.Disassemble(words))
	}
	back, err := spirvgen.Decode(words, name+"-rt")
	if err != nil {
		t.Fatalf("decode emitted SPIR-V: %v\n%s", err, spirvgen.Disassemble(words))
	}
	a, b := render(t, prog), render(t, back)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("pixel %d diverges: %v vs %v\n%s", i, a[i], b[i], spirvgen.Disassemble(words))
		}
	}
	return words
}

func TestRoundTripTextureLoop(t *testing.T) {
	words := roundTrip(t, `#version 330
uniform sampler2D tex;
uniform vec4 tint;
uniform float gain;
in vec2 uv;
out vec4 color;
void main() {
    vec4 acc = vec4(0.0);
    for (int i = 0; i < 4; i++) {
        acc += texture(tex, uv + vec2(float(i) * 0.01, 0.0));
    }
    if (gain > 0.5) { acc *= gain; }
    color = acc * tint / 4.0;
}
`, "texloop")
	dis := spirvgen.Disassemble(words)
	for _, want := range []string{
		"OpCapability Shader",
		"OpCapability Float64",
		`OpExtInstImport "GLSL.std.450"`,
		`OpEntryPoint Fragment`,
		`"main0"`,
		`OpName`,
		"OpTypeImage",
		"OpImageSampleImplicitLod",
		"OpLoopMerge",
		"OpSelectionMerge",
	} {
		if !strings.Contains(dis, want) {
			t.Errorf("disassembly missing %q:\n%s", want, dis)
		}
	}
}

func TestRoundTripMatrixAlgebra(t *testing.T) {
	roundTrip(t, `#version 330
uniform mat3 rot;
uniform vec3 axis;
in vec2 uv;
out vec4 color;
void main() {
    mat3 m = rot * mat3(vec3(1.0, 0.0, 0.0), vec3(0.0, 1.0, 0.0), axis);
    vec3 p = m * vec3(uv, 1.0);
    mat3 s = mat3(2.0 * p.x, 0.0, 0.0, 0.0, 2.0, 0.0, 0.0, 0.0, 2.0);
    color = vec4(s * p, 1.0);
}
`, "matalg")
}

func TestRoundTripArraysAndWhile(t *testing.T) {
	roundTrip(t, `#version 330
uniform float k;
in vec2 uv;
out vec4 color;
void main() {
    float wts[5] = float[](0.1, 0.2, 0.4, 0.2, 0.1);
    float s = 0.0;
    for (int i = 0; i < 5; i++) { s += wts[i] * uv.x; }
    float g = 1.0;
    while (g < k + s) { g = g * 2.0 + 0.125; }
    color = vec4(s, g, mod(g, 0.7), 1.0);
}
`, "arrwhile")
}

func TestRoundTripCubeDiscardSelect(t *testing.T) {
	roundTrip(t, `#version 330
uniform samplerCube sky;
uniform float cut;
in vec2 uv;
out vec4 color;
void main() {
    vec3 dir = normalize(vec3(uv * 2.0 - 1.0, 1.0));
    vec4 c = texture(sky, dir);
    if (c.r < cut * 0.1) { discard; }
    float m = c.g > 0.5 ? radians(c.g) : degrees(c.b) * 0.001;
    color = vec4(c.rgb, m);
}
`, "cube")
}

func TestRoundTripLodFetchBuiltins(t *testing.T) {
	words := roundTrip(t, `#version 330
uniform sampler2D tex;
in vec2 uv;
out vec4 color;
void main() {
    vec4 a = textureLod(tex, uv, 2.0);
    vec4 b = texelFetch(tex, ivec2(int(uv.x * 8.0), int(uv.y * 8.0)), ivec2(0));
    vec4 c = texture(tex, uv, 0.5);
    color = (a + b + c) * inversesqrt(2.0 + uv.x);
}
`, "lodfetch")
	dis := spirvgen.Disassemble(words)
	for _, want := range []string{"OpImageSampleExplicitLod", "OpImageFetch", "OpImage ", "inversesqrt"} {
		if !strings.Contains(dis, want) {
			t.Errorf("disassembly missing %q:\n%s", want, dis)
		}
	}
}

func TestRoundTripMultiOutput(t *testing.T) {
	roundTrip(t, `#version 330
uniform float gain;
in vec2 uv;
out vec4 albedo;
out vec4 bright;
void main() {
    albedo = vec4(uv, 0.5, 1.0);
    bright = vec4(uv.x * gain);
}
`, "mrt")
}

func TestRoundTripIntBoolOps(t *testing.T) {
	roundTrip(t, `#version 330
uniform int n;
in vec2 uv;
out vec4 color;
void main() {
    int acc = 0;
    for (int i = 0; i < n + 7; i++) { acc += i % 3; }
    bool a = uv.x > 0.5;
    bool b = uv.y > 0.5;
    float f = (a ^^ b) ? float(acc) * 0.01 : fract(uv.x * 7.0);
    color = vec4(f, clamp(f, 0.0, 1.0), step(0.3, f), 1.0);
}
`, "intbool")
}

// TestNameRecovery pins that interface names survive the binary round
// trip via OpName — the property the legacy compact encoding lacks.
func TestNameRecovery(t *testing.T) {
	src := `#version 300 es
precision highp float;
uniform sampler2D diffuseMap;
uniform float exposure;
in vec2 texCoord;
out vec4 fragColor;
void main() {
    fragColor = texture(diffuseMap, texCoord) * exposure;
}
`
	prog, err := lower.Lower(glsl.MustParse(src), "names")
	if err != nil {
		t.Fatalf("lower: %v", err)
	}
	words, err := spirvgen.Emit(prog)
	if err != nil {
		t.Fatalf("emit: %v", err)
	}
	back, err := spirvgen.Decode(words, "names-rt")
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if back.Version != "300 es" {
		t.Errorf("version = %q, want %q", back.Version, "300 es")
	}
	wantU := map[string]bool{"diffuseMap": false, "exposure": false}
	for _, g := range back.Uniforms {
		if _, ok := wantU[g.Name]; ok {
			wantU[g.Name] = true
		}
	}
	for name, seen := range wantU {
		if !seen {
			t.Errorf("uniform %q lost in round trip (got %v)", name, names(back))
		}
	}
	if len(back.Inputs) != 1 || back.Inputs[0].Name != "texCoord" {
		t.Errorf("input names = %v, want [texCoord]", names(back))
	}
	if len(back.Outputs) != 1 || back.Outputs[0].Name != "fragColor" {
		t.Errorf("output name lost: %v", names(back))
	}
}

func names(p *ir.Program) []string {
	var out []string
	for _, g := range p.Uniforms {
		out = append(out, "u:"+g.Name)
	}
	for _, g := range p.Inputs {
		out = append(out, "in:"+g.Name)
	}
	for _, v := range p.Vars {
		out = append(out, "v:"+v.Name)
	}
	return out
}

// TestBytesRoundTrip pins the little-endian byte serialization.
func TestBytesRoundTrip(t *testing.T) {
	src := `#version 330
in vec2 uv;
out vec4 color;
void main() { color = vec4(uv, 0.0, 1.0); }
`
	prog, err := lower.Lower(glsl.MustParse(src), "bytes")
	if err != nil {
		t.Fatalf("lower: %v", err)
	}
	b, err := spirvgen.EmitBytes(prog)
	if err != nil {
		t.Fatalf("emit: %v", err)
	}
	if len(b)%4 != 0 {
		t.Fatalf("byte length %d not word aligned", len(b))
	}
	// Magic little-endian: 0x03 0x02 0x23 0x07.
	if b[0] != 0x03 || b[1] != 0x02 || b[2] != 0x23 || b[3] != 0x07 {
		t.Fatalf("little-endian magic wrong: % x", b[:4])
	}
	back, err := spirvgen.DecodeBytes(b, "bytes-rt")
	if err != nil {
		t.Fatalf("decode bytes: %v", err)
	}
	a, c := render(t, prog), render(t, back)
	for i := range a {
		if a[i] != c[i] {
			t.Fatalf("pixel %d diverges after byte round trip", i)
		}
	}
}

// TestValidateRejects pins the structural validator's failure modes.
func TestValidateRejects(t *testing.T) {
	src := `#version 330
in vec2 uv;
out vec4 color;
void main() { color = vec4(uv, 0.0, 1.0); }
`
	prog, err := lower.Lower(glsl.MustParse(src), "val")
	if err != nil {
		t.Fatalf("lower: %v", err)
	}
	words, err := spirvgen.Emit(prog)
	if err != nil {
		t.Fatalf("emit: %v", err)
	}
	cases := []struct {
		name   string
		mutate func([]uint32) []uint32
	}{
		{"bad-magic", func(w []uint32) []uint32 { w[0] = 0xdeadbeef; return w }},
		{"bad-version", func(w []uint32) []uint32 { w[1] = 0x00020000; return w }},
		{"zero-bound", func(w []uint32) []uint32 { w[3] = 0; return w }},
		{"truncated", func(w []uint32) []uint32 { return w[:len(w)-1] }},
		{"unknown-opcode", func(w []uint32) []uint32 {
			return append(w, 1<<16|0x3fff)
		}},
		{"id-over-bound", func(w []uint32) []uint32 {
			// Shrinking the declared bound strands every result id
			// above it.
			w[3] = 2
			return w
		}},
	}
	for _, tc := range cases {
		mutated := tc.mutate(append([]uint32(nil), words...))
		if err := spirvgen.Validate(mutated); err == nil {
			t.Errorf("%s: Validate accepted a corrupted module", tc.name)
		}
	}
	// Decode independently rejects the header corruptions (it tolerates
	// bound damage by design — ids are resolved by map, not bound).
	for _, tc := range cases[:2] {
		mutated := tc.mutate(append([]uint32(nil), words...))
		if _, err := spirvgen.Decode(mutated, tc.name); err == nil {
			t.Errorf("%s: Decode accepted a corrupted module", tc.name)
		}
	}
}

// TestEmitDeterministic pins byte-for-byte determinism, which the
// snapshot tests and the content-addressed store both rely on.
func TestEmitDeterministic(t *testing.T) {
	src := `#version 330
uniform sampler2D tex;
uniform mat3 rot;
in vec2 uv;
out vec4 color;
void main() {
    vec3 p = rot * vec3(uv, 1.0);
    color = texture(tex, p.xy) + vec4(mod(p.z, 2.0));
}
`
	prog, err := lower.Lower(glsl.MustParse(src), "det")
	if err != nil {
		t.Fatalf("lower: %v", err)
	}
	a, err := spirvgen.Emit(prog)
	if err != nil {
		t.Fatalf("emit: %v", err)
	}
	b, err := spirvgen.Emit(prog)
	if err != nil {
		t.Fatalf("emit: %v", err)
	}
	if len(a) != len(b) {
		t.Fatalf("non-deterministic length %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("words diverge at %d: %#x vs %#x", i, a[i], b[i])
		}
	}
}
