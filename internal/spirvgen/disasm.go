package spirvgen

import (
	"fmt"
	"math"
	"strings"
)

// Disassemble renders a module as deterministic, diffable text in the
// spirv-dis idiom: one instruction per line, result ids on the left.
// Strings, extended-instruction names, and 64-bit constant payloads are
// rendered symbolically; remaining operands print as %id (SPIR-V operand
// streams do not distinguish ids from literals without per-opcode
// metadata, and this subset's remaining literals are small integers, so
// the ambiguity is harmless for snapshot diffing).
func Disassemble(words []uint32) string {
	var sb strings.Builder
	if len(words) < 5 {
		fmt.Fprintf(&sb, "; truncated module (%d words)\n", len(words))
		return sb.String()
	}
	fmt.Fprintf(&sb, "; SPIR-V %d.%d, generator %#x, bound %d\n",
		words[1]>>16, words[1]>>8&0xff, words[2], words[3])

	// Constant payload rendering needs scalar type kinds.
	kinds := map[uint32]byte{} // type id → 'f', 'i', 'b'
	names := map[uint32]string{}

	pos := 5
	for pos < len(words) {
		head := words[pos]
		wc := int(head >> 16)
		opc := head & 0xffff
		if wc == 0 || pos+wc > len(words) {
			fmt.Fprintf(&sb, "; truncated instruction at word %d\n", pos)
			return sb.String()
		}
		w := words[pos : pos+wc]
		pos += wc

		info, known := opTable[opc]
		if !known {
			fmt.Fprintf(&sb, "Op%d%s\n", opc, rawOperands(w[1:]))
			continue
		}
		switch opc {
		case opTypeFloat:
			kinds[w[1]] = 'f'
		case opTypeInt:
			kinds[w[1]] = 'i'
		case opTypeBool:
			kinds[w[1]] = 'b'
		case opName:
			if s, _ := decodeString(w[2:]); s != "" {
				names[w[1]] = s
			}
		}

		var line string
		switch opc {
		case opSource:
			lang := "GLSL"
			if w[1] == sourceLangESSL {
				lang = "ESSL"
			}
			line = fmt.Sprintf("OpSource %s %d", lang, w[2])
		case opName:
			s, _ := decodeString(w[2:])
			line = fmt.Sprintf("OpName %%%d %q", w[1], s)
		case opExtInstImport:
			s, _ := decodeString(w[2:])
			line = fmt.Sprintf("%%%d = OpExtInstImport %q", w[1], s)
		case opEntryPoint:
			s, n := decodeString(w[3:])
			line = fmt.Sprintf("OpEntryPoint Fragment %%%d %q%s", w[2], s, rawOperands(w[3+n:]))
		case opCapability:
			line = "OpCapability " + capName(w[1])
		case opMemoryModel:
			line = "OpMemoryModel Logical GLSL450"
		case opConstant:
			payload := uint64(w[3]) | uint64(w[4])<<32
			switch kinds[w[1]] {
			case 'f':
				line = fmt.Sprintf("%%%d = OpConstant %%%d %g", w[2], w[1], math.Float64frombits(payload))
			default:
				line = fmt.Sprintf("%%%d = OpConstant %%%d %d", w[2], w[1], int64(payload))
			}
		case opExtInst:
			name := fmt.Sprintf("!%d", w[4])
			if n, ok := extInstNames[w[4]]; ok {
				name = n
			} else if w[4] == 18 {
				name = "atan"
			} else if w[4] == 25 {
				name = "atan2"
			}
			line = fmt.Sprintf("%%%d = OpExtInst %%%d %%%d %s%s", w[2], w[1], w[3], name, rawOperands(w[5:]))
		default:
			rp := resultPos(opc)
			switch rp {
			case 0:
				line = info.name + rawOperands(w[1:])
			case 1:
				line = fmt.Sprintf("%%%d = %s%s", w[1], info.name, rawOperands(w[2:]))
			default:
				line = fmt.Sprintf("%%%d = %s %%%d%s", w[2], info.name, w[1], rawOperands(w[3:]))
			}
		}
		if rid := resultID(opc, w); rid != 0 {
			if n, ok := names[rid]; ok {
				line += "  ; " + n
			}
		}
		sb.WriteString(line)
		sb.WriteByte('\n')
	}
	return sb.String()
}

func resultID(opc uint32, w []uint32) uint32 {
	rp := resultPos(opc)
	if rp == 0 || rp >= len(w) {
		return 0
	}
	return w[rp]
}

func rawOperands(ops []uint32) string {
	var sb strings.Builder
	for _, o := range ops {
		fmt.Fprintf(&sb, " %%%d", o)
	}
	return sb.String()
}

func capName(c uint32) string {
	switch c {
	case capShader:
		return "Shader"
	case capFloat64:
		return "Float64"
	case capInt64:
		return "Int64"
	}
	return fmt.Sprintf("!%d", c)
}
