package spirvgen

import (
	"encoding/binary"
	"fmt"
	"math"
	"strconv"
	"strings"

	"shaderopt/internal/ir"
	"shaderopt/internal/sem"
)

// EntryName is the OpEntryPoint name of the emitted fragment function.
const EntryName = "main0"

// Emit serializes a program to a SPIR-V word stream.
func Emit(p *ir.Program) ([]uint32, error) {
	e := &emitter{
		p:       p,
		next:    1,
		types:   map[string]uint32{},
		images:  map[string]uint32{},
		consts:  map[string]uint32{},
		ptrs:    map[string]uint32{},
		instrID: map[*ir.Instr]uint32{},
		globVar: map[*ir.Global]uint32{},
		varVar:  map[*ir.Var]uint32{},
	}
	return e.run()
}

// EmitBytes serializes a program to little-endian SPIR-V bytes.
func EmitBytes(p *ir.Program) ([]byte, error) {
	words, err := Emit(p)
	if err != nil {
		return nil, err
	}
	out := make([]byte, 4*len(words))
	for i, w := range words {
		binary.LittleEndian.PutUint32(out[4*i:], w)
	}
	return out, nil
}

type emitter struct {
	p    *ir.Program
	next uint32

	// Sections, assembled in spec order at the end.
	debug []uint32 // OpSource, OpName
	decos []uint32 // OpDecorate
	tc    []uint32 // types, constants, module-scope variables
	fn    []uint32 // the single function

	types   map[string]uint32 // typeKey → id
	images  map[string]uint32 // sampler dim → bare image type id
	consts  map[string]uint32 // typeKey|payload → id
	ptrs    map[string]uint32 // storage:typeKey → pointer type id
	instrID map[*ir.Instr]uint32
	globVar map[*ir.Global]uint32
	varVar  map[*ir.Var]uint32

	extSet uint32 // OpExtInstImport result
	err    error
}

func (e *emitter) id() uint32 {
	id := e.next
	e.next++
	return id
}

// op appends one instruction to a section.
func op(sec *[]uint32, opcode uint32, operands ...uint32) {
	*sec = append(*sec, uint32(len(operands)+1)<<16|opcode)
	*sec = append(*sec, operands...)
}

func (e *emitter) fail(format string, args ...any) {
	if e.err == nil {
		e.err = fmt.Errorf("spirvgen: "+format, args...)
	}
}

func (e *emitter) run() ([]uint32, error) {
	e.extSet = e.id()
	mainID := e.id()

	// Debug info: source language and version.
	lang, ver := uint32(sourceLangGLSL), uint32(330)
	if v := strings.TrimSpace(e.p.Version); v != "" {
		if n, err := strconv.Atoi(strings.Fields(v)[0]); err == nil {
			ver = uint32(n)
		}
		if strings.HasSuffix(v, "es") {
			lang = sourceLangESSL
		}
	}
	op(&e.debug, opSource, lang, ver)

	// Interface globals. Value uniforms and samplers are UniformConstant
	// (legacy default-block uniforms, ARB_gl_spirv style); inputs and
	// outputs carry Location decorations and join the entry interface.
	var iface []uint32
	samplerSlot := uint32(0)
	for i, g := range e.p.Uniforms {
		vid := e.moduleVar(g.Type, storageUniformConstant, g.Name)
		e.globVar[g] = vid
		if g.Type.IsSampler() {
			op(&e.decos, opDecorate, vid, decorationBinding, samplerSlot)
			op(&e.decos, opDecorate, vid, decorationDescriptorSet, 0)
			samplerSlot++
		} else {
			op(&e.decos, opDecorate, vid, decorationLocation, uint32(i))
		}
	}
	for i, g := range e.p.Inputs {
		vid := e.moduleVar(g.Type, storageInput, g.Name)
		e.globVar[g] = vid
		op(&e.decos, opDecorate, vid, decorationLocation, uint32(i))
		iface = append(iface, vid)
	}
	outIdx := 0
	for _, v := range e.p.Vars {
		if !v.IsOutput {
			continue
		}
		vid := e.moduleVar(v.Type, storageOutput, v.Name)
		e.varVar[v] = vid
		op(&e.decos, opDecorate, vid, decorationLocation, uint32(outIdx))
		iface = append(iface, vid)
		outIdx++
	}

	// Function skeleton: void main0() with locals hoisted into the entry
	// block, per the SPIR-V block rules.
	voidT := e.typeID(sem.Void)
	fnT := e.id()
	op(&e.tc, opTypeFunction, fnT, voidT)
	op(&e.fn, opFunction, voidT, mainID, 0, fnT)
	op(&e.fn, opLabel, e.id())
	for _, v := range e.p.Vars {
		if v.IsOutput {
			continue
		}
		ptr := e.ptrID(storageFunction, v.Type)
		vid := e.id()
		op(&e.fn, opVariable, ptr, vid, storageFunction)
		op(&e.debug, opName, append([]uint32{vid}, encodeString(v.Name)...)...)
		e.varVar[v] = vid
	}
	e.block(e.p.Body)
	op(&e.fn, opReturn)
	op(&e.fn, opFunctionEnd)
	if e.err != nil {
		return nil, e.err
	}

	// Assemble: header, capabilities, imports, memory model, entry point,
	// execution modes, debug, decorations, types/constants/variables,
	// functions.
	var w []uint32
	w = append(w, Magic, Version, Generator, 0 /* bound, patched below */, 0)
	op(&w, opCapability, capShader)
	op(&w, opCapability, capFloat64)
	op(&w, opCapability, capInt64)
	op(&w, opExtInstImport, append([]uint32{e.extSet}, encodeString(glslStd450)...)...)
	op(&w, opMemoryModel, addressingLogical, memoryGLSL450)
	entry := append([]uint32{execModelFragment, mainID}, encodeString(EntryName)...)
	op(&w, opEntryPoint, append(entry, iface...)...)
	op(&w, opExecutionMode, mainID, execModeOriginUpperLeft)
	w = append(w, e.debug...)
	w = append(w, e.decos...)
	w = append(w, e.tc...)
	w = append(w, e.fn...)
	w[3] = e.next
	return w, nil
}

// moduleVar declares a module-scope variable with a debug name.
func (e *emitter) moduleVar(t sem.Type, storage uint32, name string) uint32 {
	ptr := e.ptrID(storage, t)
	vid := e.id()
	op(&e.tc, opVariable, ptr, vid, storage)
	op(&e.debug, opName, append([]uint32{vid}, encodeString(name)...)...)
	return vid
}

// typeID interns a type, emitting its declaration on first use. Samplers
// resolve to the OpTypeSampledImage id; the bare image type is kept for
// OpImage/OpImageFetch.
func (e *emitter) typeID(t sem.Type) uint32 {
	key := typeKey(t)
	if id, ok := e.types[key]; ok {
		return id
	}
	var id uint32
	switch {
	case t.IsArray():
		elem := t
		elem.ArrayLen = 0
		elemID := e.typeID(elem)
		lenID := e.intConst(int64(t.ArrayLen))
		id = e.id()
		op(&e.tc, opTypeArray, id, elemID, lenID)
	case t.IsSampler():
		dim, depth, arrayed, err := dimOf(t.Dim)
		if err != nil {
			e.fail("%v", err)
		}
		sampled := e.typeID(sem.Float)
		img := e.id()
		op(&e.tc, opTypeImage, img, sampled, dim, depth, arrayed, 0 /* ms */, 1 /* sampled */, 0 /* format */)
		e.images[t.Dim] = img
		id = e.id()
		op(&e.tc, opTypeSampledImage, id, img)
	case t.IsMatrix():
		col := e.typeID(sem.VecType(sem.KindFloat, t.Vec))
		id = e.id()
		op(&e.tc, opTypeMatrix, id, col, uint32(t.Mat))
	case t.Vec > 1:
		comp := e.typeID(sem.VecType(t.Kind, 1))
		id = e.id()
		op(&e.tc, opTypeVector, id, comp, uint32(t.Vec))
	default:
		id = e.id()
		switch t.Kind {
		case sem.KindVoid:
			op(&e.tc, opTypeVoid, id)
		case sem.KindBool:
			op(&e.tc, opTypeBool, id)
		case sem.KindInt:
			op(&e.tc, opTypeInt, id, 64, 1)
		case sem.KindFloat:
			op(&e.tc, opTypeFloat, id, 64)
		default:
			e.fail("cannot emit type %s", t)
		}
	}
	e.types[key] = id
	return id
}

func (e *emitter) ptrID(storage uint32, t sem.Type) uint32 {
	key := fmt.Sprintf("%d:%s", storage, typeKey(t))
	if id, ok := e.ptrs[key]; ok {
		return id
	}
	tid := e.typeID(t)
	id := e.id()
	op(&e.tc, opTypePointer, id, storage, tid)
	e.ptrs[key] = id
	return id
}

// constID interns a constant of the given type, emitting scalar leaves and
// composites bottom-up. 64-bit literals are encoded low word first.
func (e *emitter) constID(t sem.Type, c *ir.ConstVal) uint32 {
	key := typeKey(t) + "|" + constKeyOf(c)
	if id, ok := e.consts[key]; ok {
		return id
	}
	var id uint32
	switch {
	case t.IsArray():
		elem := t
		elem.ArrayLen = 0
		per := elem.Components()
		ids := make([]uint32, t.ArrayLen)
		for i := range ids {
			ids[i] = e.constID(elem, sliceConst(c, i*per, per))
		}
		id = e.composite(t, ids)
	case t.IsMatrix():
		col := sem.VecType(sem.KindFloat, t.Vec)
		ids := make([]uint32, t.Mat)
		for i := range ids {
			ids[i] = e.constID(col, sliceConst(c, i*t.Vec, t.Vec))
		}
		id = e.composite(t, ids)
	case t.Vec > 1:
		comp := sem.VecType(t.Kind, 1)
		ids := make([]uint32, t.Vec)
		for i := range ids {
			ids[i] = e.constID(comp, sliceConst(c, i, 1))
		}
		id = e.composite(t, ids)
	default:
		tid := e.typeID(t)
		id = e.id()
		switch t.Kind {
		case sem.KindBool:
			if c.B[0] {
				op(&e.tc, opConstantTrue, tid, id)
			} else {
				op(&e.tc, opConstantFalse, tid, id)
			}
		case sem.KindFloat:
			bits := math.Float64bits(c.F[0])
			op(&e.tc, opConstant, tid, id, uint32(bits), uint32(bits>>32))
		case sem.KindInt:
			bits := uint64(c.I[0])
			op(&e.tc, opConstant, tid, id, uint32(bits), uint32(bits>>32))
		default:
			e.fail("cannot emit constant of type %s", t)
		}
	}
	e.consts[key] = id
	return id
}

func (e *emitter) composite(t sem.Type, parts []uint32) uint32 {
	tid := e.typeID(t)
	id := e.id()
	op(&e.tc, opConstantComposite, append([]uint32{tid, id}, parts...)...)
	return id
}

func (e *emitter) intConst(v int64) uint32 {
	return e.constID(sem.Int, ir.IntConst(v))
}

func constKeyOf(c *ir.ConstVal) string {
	var sb strings.Builder
	for i := 0; i < c.Len(); i++ {
		switch c.Kind {
		case sem.KindFloat:
			fmt.Fprintf(&sb, "f%x,", math.Float64bits(c.F[i]))
		case sem.KindInt:
			fmt.Fprintf(&sb, "i%x,", uint64(c.I[i]))
		case sem.KindBool:
			fmt.Fprintf(&sb, "b%v,", c.B[i])
		}
	}
	return sb.String()
}

// sliceConst extracts components [off, off+n) as a new ConstVal.
func sliceConst(c *ir.ConstVal, off, n int) *ir.ConstVal {
	out := &ir.ConstVal{Kind: c.Kind}
	switch c.Kind {
	case sem.KindFloat:
		out.F = c.F[off : off+n]
	case sem.KindInt:
		out.I = c.I[off : off+n]
	case sem.KindBool:
		out.B = c.B[off : off+n]
	}
	return out
}

// val returns the id of an instruction's value. Constants resolve to
// module-level constant ids.
func (e *emitter) val(in *ir.Instr) uint32 {
	if in == nil {
		e.fail("nil operand")
		return 0
	}
	if in.Op == ir.OpConst {
		if id, ok := e.instrID[in]; ok {
			return id
		}
		id := e.constID(in.Type, in.Const)
		e.instrID[in] = id
		return id
	}
	id, ok := e.instrID[in]
	if !ok {
		e.fail("operand %%%d used before definition", in.ID)
	}
	return id
}

func (e *emitter) block(b *ir.Block) {
	for _, it := range b.Items {
		if e.err != nil {
			return
		}
		switch it := it.(type) {
		case *ir.Instr:
			e.instr(it)
		case *ir.If:
			e.ifNode(it)
		case *ir.Loop:
			e.loopNode(it)
		case *ir.While:
			e.whileNode(it)
		default:
			e.fail("unknown block item %T", it)
		}
	}
}

func (e *emitter) ifNode(n *ir.If) {
	cond := e.val(n.Cond)
	thenL, merge := e.id(), e.id()
	elseL := merge
	hasElse := n.Else != nil && len(n.Else.Items) > 0
	if hasElse {
		elseL = e.id()
	}
	op(&e.fn, opSelectionMerge, merge, 0)
	op(&e.fn, opBranchConditional, cond, thenL, elseL)
	op(&e.fn, opLabel, thenL)
	e.block(n.Then)
	op(&e.fn, opBranch, merge)
	if hasElse {
		op(&e.fn, opLabel, elseL)
		e.block(n.Else)
		op(&e.fn, opBranch, merge)
	}
	op(&e.fn, opLabel, merge)
}

// loopNode emits the canonical counted-loop shape. LoopControl None marks
// it; the decoder recovers Counter/Start/End/Step from the fixed
// store/check/continue pattern.
func (e *emitter) loopNode(n *ir.Loop) {
	ctr := e.varVar[n.Counter]
	if ctr == 0 {
		e.fail("loop counter %q not declared", n.Counter.Name)
		return
	}
	intT, boolT := e.typeID(sem.Int), e.typeID(sem.Bool)
	start, end, step := e.val(n.Start), e.val(n.End), e.val(n.Step)
	header, check, body, cont, merge := e.id(), e.id(), e.id(), e.id(), e.id()

	op(&e.fn, opStore, ctr, start)
	op(&e.fn, opBranch, header)
	op(&e.fn, opLabel, header)
	op(&e.fn, opLoopMerge, merge, cont, 0)
	op(&e.fn, opBranch, check)
	op(&e.fn, opLabel, check)
	ld := e.id()
	op(&e.fn, opLoad, intT, ld, ctr)
	cmp := e.id()
	op(&e.fn, opSLessThan, boolT, cmp, ld, end)
	op(&e.fn, opBranchConditional, cmp, body, merge)
	op(&e.fn, opLabel, body)
	e.block(n.Body)
	op(&e.fn, opBranch, cont)
	op(&e.fn, opLabel, cont)
	ld2 := e.id()
	op(&e.fn, opLoad, intT, ld2, ctr)
	next := e.id()
	op(&e.fn, opIAdd, intT, next, ld2, step)
	op(&e.fn, opStore, ctr, next)
	op(&e.fn, opBranch, header)
	op(&e.fn, opLabel, merge)
}

// whileNode emits a general loop; the condition block's instructions live
// in the check block and LoopControl carries MaxIterations.
func (e *emitter) whileNode(n *ir.While) {
	for _, it := range n.Cond.Items {
		if _, ok := it.(*ir.Instr); !ok {
			e.fail("while condition contains nested control flow (%T)", it)
			return
		}
	}
	header, check, body, cont, merge := e.id(), e.id(), e.id(), e.id(), e.id()
	op(&e.fn, opBranch, header)
	op(&e.fn, opLabel, header)
	op(&e.fn, opLoopMerge, merge, cont, loopControlMaxIterations, uint32(n.MaxIter))
	op(&e.fn, opBranch, check)
	op(&e.fn, opLabel, check)
	e.block(n.Cond)
	op(&e.fn, opBranchConditional, e.val(n.CondVal), body, merge)
	op(&e.fn, opLabel, body)
	e.block(n.Body)
	op(&e.fn, opBranch, cont)
	op(&e.fn, opLabel, cont)
	op(&e.fn, opBranch, header)
	op(&e.fn, opLabel, merge)
}

func (e *emitter) instr(in *ir.Instr) {
	switch in.Op {
	case ir.OpConst:
		e.instrID[in] = e.constID(in.Type, in.Const)
	case ir.OpUniform, ir.OpInput:
		vid, ok := e.globVar[in.Global]
		if !ok {
			e.fail("unregistered global %q", in.Global.Name)
			return
		}
		id := e.id()
		op(&e.fn, opLoad, e.typeID(in.Type), id, vid)
		e.instrID[in] = id
	case ir.OpLoad:
		vid, ok := e.varVar[in.Var]
		if !ok {
			e.fail("unregistered var %q", in.Var.Name)
			return
		}
		id := e.id()
		op(&e.fn, opLoad, e.typeID(in.Type), id, vid)
		e.instrID[in] = id
	case ir.OpStore:
		vid, ok := e.varVar[in.Var]
		if !ok {
			e.fail("unregistered var %q", in.Var.Name)
			return
		}
		op(&e.fn, opStore, vid, e.val(in.Args[0]))
	case ir.OpDiscard:
		// OpKill terminates the block; resume emission in a fresh
		// (unreachable, when the discard is unconditional) label.
		op(&e.fn, opKill)
		op(&e.fn, opLabel, e.id())
	case ir.OpBin:
		e.binInstr(in)
	case ir.OpUn:
		var opcode uint32
		switch {
		case in.UnOp == "!":
			opcode = opLogicalNot
		case in.Type.Kind == sem.KindInt:
			opcode = opSNegate
		default:
			opcode = opFNegate
		}
		e.simple(in, opcode, e.val(in.Args[0]))
	case ir.OpCall:
		e.callInstr(in)
	case ir.OpConstruct:
		ids := make([]uint32, len(in.Args))
		for i, a := range in.Args {
			ids[i] = e.val(a)
		}
		e.simple(in, opCompositeConstruct, ids...)
	case ir.OpExtract:
		e.simple(in, opCompositeExtract, e.val(in.Args[0]), uint32(in.Index))
	case ir.OpExtractDyn:
		e.simple(in, opVectorExtractDyn, e.val(in.Args[0]), e.val(in.Args[1]))
	case ir.OpSwizzle:
		src := e.val(in.Args[0])
		ids := []uint32{src, src}
		for _, ix := range in.Indices {
			ids = append(ids, uint32(ix))
		}
		e.simple(in, opVectorShuffle, ids...)
	case ir.OpInsert:
		// SPIR-V operand order is (Object, Composite, indices...).
		e.simple(in, opCompositeInsert, e.val(in.Args[1]), e.val(in.Args[0]), uint32(in.Index))
	case ir.OpInsertDyn:
		// SPIR-V operand order is (Vector, Component, Index).
		e.simple(in, opVectorInsertDyn, e.val(in.Args[0]), e.val(in.Args[2]), e.val(in.Args[1]))
	case ir.OpSelect:
		e.simple(in, opSelect, e.val(in.Args[0]), e.val(in.Args[1]), e.val(in.Args[2]))
	default:
		e.fail("unknown op %s", in.Op)
	}
}

// simple emits a result-producing instruction of the standard
// (result-type, result, operands...) shape.
func (e *emitter) simple(in *ir.Instr, opcode uint32, operands ...uint32) {
	id := e.id()
	op(&e.fn, opcode, append([]uint32{e.typeID(in.Type), id}, operands...)...)
	e.instrID[in] = id
}

func (e *emitter) binInstr(in *ir.Instr) {
	x, y := in.Args[0], in.Args[1]
	a, b := e.val(x), e.val(y)
	kind := x.Type.Kind
	var opcode uint32
	switch in.BinOp {
	case "+":
		opcode = pick(kind, opFAdd, opIAdd)
	case "-":
		opcode = pick(kind, opFSub, opISub)
	case "*":
		switch {
		case x.Type.IsMatrix() && y.Type.IsMatrix():
			opcode = opMatrixTimesMatrix
		case x.Type.IsMatrix() && y.Type.IsVector():
			opcode = opMatrixTimesVector
		case x.Type.IsVector() && y.Type.IsMatrix():
			opcode = opVectorTimesMatrix
		case x.Type.IsMatrix():
			opcode = opMatrixTimesScalar
		case y.Type.IsMatrix():
			// SPIR-V only has matrix×scalar; swap operands (float
			// multiplication is bitwise commutative).
			opcode, a, b = opMatrixTimesScalar, b, a
		default:
			opcode = pick(kind, opFMul, opIMul)
		}
	case "/":
		opcode = pick(kind, opFDiv, opSDiv)
	case "%":
		opcode = opSRem
	case "<":
		opcode = pick(kind, opFOrdLessThan, opSLessThan)
	case ">":
		opcode = pick(kind, opFOrdGreaterThan, opSGreaterThan)
	case "<=":
		opcode = pick(kind, opFOrdLessThanEqual, opSLessThanEqual)
	case ">=":
		opcode = pick(kind, opFOrdGreaterThanEqual, opSGreaterThanEqual)
	case "==":
		if kind == sem.KindBool {
			opcode = opLogicalEqual
		} else {
			opcode = pick(kind, opFOrdEqual, opIEqual)
		}
	case "!=":
		if kind == sem.KindBool {
			opcode = opLogicalNotEqual
		} else {
			// FUnord so that NaN != NaN holds, matching Go semantics.
			opcode = pick(kind, opFUnordNotEqual, opINotEqual)
		}
	case "&&":
		opcode = opLogicalAnd
	case "||":
		opcode = opLogicalOr
	case "^^":
		opcode = opLogicalNotEqual
	default:
		e.fail("unknown binary operator %q", in.BinOp)
		return
	}
	e.simple(in, opcode, a, b)
}

func pick(k sem.Kind, fop, iop uint32) uint32 {
	if k == sem.KindInt {
		return iop
	}
	return fop
}

func (e *emitter) callInstr(in *ir.Instr) {
	callee := in.Callee
	switch callee {
	case "texture", "texture2D", "textureCube", "textureLod", "texelFetch":
		e.textureInstr(in)
		return
	case "mod":
		e.simple(in, opFMod, e.val(in.Args[0]), e.val(in.Args[1]))
		return
	case "dot":
		e.simple(in, opDot, e.val(in.Args[0]), e.val(in.Args[1]))
		return
	case "dFdx":
		e.simple(in, opDPdx, e.val(in.Args[0]))
		return
	case "dFdy":
		e.simple(in, opDPdy, e.val(in.Args[0]))
		return
	case "fwidth":
		e.simple(in, opFwidth, e.val(in.Args[0]))
		return
	case "atan":
		num := uint32(18) // Atan
		if len(in.Args) == 2 {
			num = 25 // Atan2
		}
		e.extInst(in, num)
		return
	}
	num, ok := extInstNums[callee]
	if !ok {
		e.fail("builtin %q has no SPIR-V mapping", callee)
		return
	}
	e.extInst(in, num)
}

func (e *emitter) extInst(in *ir.Instr, num uint32) {
	ids := []uint32{e.extSet, num}
	for _, a := range in.Args {
		ids = append(ids, e.val(a))
	}
	e.simple(in, opExtInst, ids...)
}

func (e *emitter) textureInstr(in *ir.Instr) {
	samp := in.Args[0]
	if samp.Op != ir.OpUniform || !samp.Type.IsSampler() {
		e.fail("texture call %%%d: first argument is not a sampler uniform", in.ID)
		return
	}
	simg := e.val(samp)
	coord := e.val(in.Args[1])
	switch in.Callee {
	case "texture", "texture2D", "textureCube":
		// texture2D/textureCube are legacy spellings of the same
		// operation; both decode back as "texture".
		if len(in.Args) == 3 {
			e.simple(in, opImageSampleImplicitLod, simg, coord, imageOperandBias, e.val(in.Args[2]))
		} else {
			e.simple(in, opImageSampleImplicitLod, simg, coord)
		}
	case "textureLod":
		e.simple(in, opImageSampleExplicitLod, simg, coord, imageOperandLod, e.val(in.Args[2]))
	case "texelFetch":
		// Fetch goes through the bare image; the subset's lod argument is
		// an int vector at coordinate width, while SPIR-V takes a scalar
		// Lod — extract component 0 (the only one evaluation consults).
		imgT, ok := e.images[samp.Type.Dim]
		if !ok {
			e.fail("image type for %q not interned", samp.Type.Dim)
			return
		}
		img := e.id()
		op(&e.fn, opImage, imgT, img, simg)
		lodArg := in.Args[2]
		var lod uint32
		if lodArg.Type.IsVector() {
			lod = e.id()
			op(&e.fn, opCompositeExtract, e.typeID(sem.Int), lod, e.val(lodArg), 0)
		} else {
			lod = e.val(lodArg)
		}
		e.simple(in, opImageFetch, img, coord, imageOperandLod, lod)
	}
}
