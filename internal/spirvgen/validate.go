package spirvgen

import "fmt"

// opBounds gives the permitted word-count range for each opcode this
// backend speaks (including the opcode word itself). max 0 = unbounded.
type opBounds struct {
	name     string
	min, max int
}

var opTable = map[uint32]opBounds{
	opSource:                 {"OpSource", 3, 0},
	opName:                   {"OpName", 3, 0},
	opExtInstImport:          {"OpExtInstImport", 3, 0},
	opExtInst:                {"OpExtInst", 5, 0},
	opMemoryModel:            {"OpMemoryModel", 3, 3},
	opEntryPoint:             {"OpEntryPoint", 4, 0},
	opExecutionMode:          {"OpExecutionMode", 3, 0},
	opCapability:             {"OpCapability", 2, 2},
	opTypeVoid:               {"OpTypeVoid", 2, 2},
	opTypeBool:               {"OpTypeBool", 2, 2},
	opTypeInt:                {"OpTypeInt", 4, 4},
	opTypeFloat:              {"OpTypeFloat", 3, 3},
	opTypeVector:             {"OpTypeVector", 4, 4},
	opTypeMatrix:             {"OpTypeMatrix", 4, 4},
	opTypeImage:              {"OpTypeImage", 9, 10},
	opTypeSampledImage:       {"OpTypeSampledImage", 3, 3},
	opTypeArray:              {"OpTypeArray", 4, 4},
	opTypePointer:            {"OpTypePointer", 4, 4},
	opTypeFunction:           {"OpTypeFunction", 3, 0},
	opConstantTrue:           {"OpConstantTrue", 3, 3},
	opConstantFalse:          {"OpConstantFalse", 3, 3},
	opConstant:               {"OpConstant", 4, 5},
	opConstantComposite:      {"OpConstantComposite", 3, 0},
	opFunction:               {"OpFunction", 5, 5},
	opFunctionEnd:            {"OpFunctionEnd", 1, 1},
	opVariable:               {"OpVariable", 4, 5},
	opLoad:                   {"OpLoad", 4, 5},
	opStore:                  {"OpStore", 3, 4},
	opDecorate:               {"OpDecorate", 3, 0},
	opVectorExtractDyn:       {"OpVectorExtractDynamic", 5, 5},
	opVectorInsertDyn:        {"OpVectorInsertDynamic", 6, 6},
	opVectorShuffle:          {"OpVectorShuffle", 5, 0},
	opCompositeConstruct:     {"OpCompositeConstruct", 3, 0},
	opCompositeExtract:       {"OpCompositeExtract", 4, 0},
	opCompositeInsert:        {"OpCompositeInsert", 5, 0},
	opImageSampleImplicitLod: {"OpImageSampleImplicitLod", 5, 0},
	opImageSampleExplicitLod: {"OpImageSampleExplicitLod", 7, 0},
	opImageFetch:             {"OpImageFetch", 5, 0},
	opImage:                  {"OpImage", 4, 4},
	opSNegate:                {"OpSNegate", 4, 4},
	opFNegate:                {"OpFNegate", 4, 4},
	opIAdd:                   {"OpIAdd", 5, 5},
	opFAdd:                   {"OpFAdd", 5, 5},
	opISub:                   {"OpISub", 5, 5},
	opFSub:                   {"OpFSub", 5, 5},
	opIMul:                   {"OpIMul", 5, 5},
	opFMul:                   {"OpFMul", 5, 5},
	opSDiv:                   {"OpSDiv", 5, 5},
	opFDiv:                   {"OpFDiv", 5, 5},
	opSRem:                   {"OpSRem", 5, 5},
	opFMod:                   {"OpFMod", 5, 5},
	opVectorTimesScalar:      {"OpVectorTimesScalar", 5, 5},
	opMatrixTimesScalar:      {"OpMatrixTimesScalar", 5, 5},
	opVectorTimesMatrix:      {"OpVectorTimesMatrix", 5, 5},
	opMatrixTimesVector:      {"OpMatrixTimesVector", 5, 5},
	opMatrixTimesMatrix:      {"OpMatrixTimesMatrix", 5, 5},
	opDot:                    {"OpDot", 5, 5},
	opLogicalEqual:           {"OpLogicalEqual", 5, 5},
	opLogicalNotEqual:        {"OpLogicalNotEqual", 5, 5},
	opLogicalOr:              {"OpLogicalOr", 5, 5},
	opLogicalAnd:             {"OpLogicalAnd", 5, 5},
	opLogicalNot:             {"OpLogicalNot", 4, 4},
	opSelect:                 {"OpSelect", 6, 6},
	opIEqual:                 {"OpIEqual", 5, 5},
	opINotEqual:              {"OpINotEqual", 5, 5},
	opSGreaterThan:           {"OpSGreaterThan", 5, 5},
	opSGreaterThanEqual:      {"OpSGreaterThanEqual", 5, 5},
	opSLessThan:              {"OpSLessThan", 5, 5},
	opSLessThanEqual:         {"OpSLessThanEqual", 5, 5},
	opFOrdEqual:              {"OpFOrdEqual", 5, 5},
	opFUnordNotEqual:         {"OpFUnordNotEqual", 5, 5},
	opFOrdLessThan:           {"OpFOrdLessThan", 5, 5},
	opFOrdGreaterThan:        {"OpFOrdGreaterThan", 5, 5},
	opFOrdLessThanEqual:      {"OpFOrdLessThanEqual", 5, 5},
	opFOrdGreaterThanEqual:   {"OpFOrdGreaterThanEqual", 5, 5},
	opDPdx:                   {"OpDPdx", 4, 4},
	opDPdy:                   {"OpDPdy", 4, 4},
	opFwidth:                 {"OpFwidth", 4, 4},
	opLoopMerge:              {"OpLoopMerge", 4, 5},
	opSelectionMerge:         {"OpSelectionMerge", 3, 3},
	opLabel:                  {"OpLabel", 2, 2},
	opBranch:                 {"OpBranch", 2, 2},
	opBranchConditional:      {"OpBranchConditional", 4, 6},
	opKill:                   {"OpKill", 1, 1},
	opReturn:                 {"OpReturn", 1, 1},
}

// resultPos returns the operand index (1-based, relative to the
// instruction head) of the result id for result-bearing opcodes, or 0.
func resultPos(opc uint32) int {
	switch opc {
	case opExtInstImport, opLabel, opTypeVoid, opTypeBool, opTypeInt,
		opTypeFloat, opTypeVector, opTypeMatrix, opTypeImage,
		opTypeSampledImage, opTypeArray, opTypePointer, opTypeFunction:
		return 1
	case opSource, opName, opMemoryModel, opEntryPoint, opExecutionMode,
		opCapability, opDecorate, opStore, opBranch, opBranchConditional,
		opSelectionMerge, opLoopMerge, opKill, opReturn, opFunctionEnd:
		return 0
	default:
		// Everything else follows the (result-type, result, ...) shape.
		return 2
	}
}

// Validate structurally checks a SPIR-V word stream: header fields, the
// per-opcode word-count table, and id bounds. It does not type-check —
// Decode plus ir.Verify do that — but it catches truncation, bound
// violations, and opcodes outside the backend's vocabulary, which is what
// the CI gate needs to reject corrupted snapshots.
func Validate(words []uint32) error {
	if len(words) < 5 {
		return fmt.Errorf("spirvgen: module header truncated (%d words)", len(words))
	}
	if words[0] != Magic {
		return fmt.Errorf("spirvgen: bad magic %#x", words[0])
	}
	if words[1] != Version {
		return fmt.Errorf("spirvgen: unsupported version %#x", words[1])
	}
	bound := words[3]
	if bound == 0 {
		return fmt.Errorf("spirvgen: id bound is zero")
	}
	if words[4] != 0 {
		return fmt.Errorf("spirvgen: reserved schema word is %d", words[4])
	}
	var haveMemoryModel, haveEntryPoint bool
	functions := 0
	lastOp := uint32(0)
	pos := 5
	for pos < len(words) {
		head := words[pos]
		wc := int(head >> 16)
		opc := head & 0xffff
		if wc == 0 {
			return fmt.Errorf("spirvgen: zero word count at word %d", pos)
		}
		if pos+wc > len(words) {
			return fmt.Errorf("spirvgen: instruction at word %d overruns module", pos)
		}
		b, ok := opTable[opc]
		if !ok {
			return fmt.Errorf("spirvgen: unknown opcode %d at word %d", opc, pos)
		}
		if wc < b.min || (b.max != 0 && wc > b.max) {
			return fmt.Errorf("spirvgen: %s has %d words, want %d..%d", b.name, wc, b.min, b.max)
		}
		if rp := resultPos(opc); rp != 0 {
			id := words[pos+rp]
			if id == 0 {
				return fmt.Errorf("spirvgen: %s at word %d has zero result id", b.name, pos)
			}
			if id >= bound {
				return fmt.Errorf("spirvgen: %s result id %d exceeds bound %d", b.name, id, bound)
			}
			if rp == 2 {
				// The preceding word is a result type id.
				if tid := words[pos+1]; tid == 0 || tid >= bound {
					return fmt.Errorf("spirvgen: %s result type id %d out of range", b.name, tid)
				}
			}
		}
		switch opc {
		case opMemoryModel:
			haveMemoryModel = true
		case opEntryPoint:
			haveEntryPoint = true
		case opFunction:
			functions++
		}
		lastOp = opc
		pos += wc
	}
	if !haveMemoryModel {
		return fmt.Errorf("spirvgen: missing OpMemoryModel")
	}
	if !haveEntryPoint {
		return fmt.Errorf("spirvgen: missing OpEntryPoint")
	}
	if functions != 1 {
		return fmt.Errorf("spirvgen: module has %d functions, want 1", functions)
	}
	if lastOp != opFunctionEnd {
		return fmt.Errorf("spirvgen: module does not end with OpFunctionEnd")
	}
	return nil
}
