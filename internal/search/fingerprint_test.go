package search

import (
	"testing"

	"shaderopt/internal/core"
	"shaderopt/internal/corpus"
	"shaderopt/internal/gpu"
	"shaderopt/internal/harness"
)

// fingerprintHandles compiles the byte-identity corpus: the sweep subset
// in -short, every corpus shader otherwise (the switch to the
// name-insensitive compile key is corpus-wide, so the pin is too).
func fingerprintHandles(t *testing.T) []*core.Shader {
	t.Helper()
	if testing.Short() {
		return compileSubset(t)
	}
	all, err := corpus.Load()
	if err != nil {
		t.Fatal(err)
	}
	handles := make([]*core.Shader, len(all))
	for i, sh := range all {
		h, err := core.Compile(sh.Source, sh.Name, sh.Lang)
		if err != nil {
			t.Fatal(err)
		}
		handles[i] = h
	}
	return handles
}

// TestCanonicalFingerprintScoresMatchNameSensitive pins that switching
// the driver-compile key from the name-sensitive FingerprintIR to the
// alpha-renamed FingerprintCanonical changes no score: measurement noise
// is seeded from source text (untouched), and compiled artefacts are
// name-blind, so collapsing alpha-equivalent lowerings onto one compile
// must be observationally invisible. Any divergence here means a compile
// was shared between programs that were not structurally identical.
func TestCanonicalFingerprintScoresMatchNameSensitive(t *testing.T) {
	cfg := harness.FastConfig()
	canonical := NewSession(gpu.Platforms(), Options{Cfg: cfg})
	nameSensitive := NewSession(gpu.Platforms(), Options{Cfg: cfg})
	nameSensitive.fingerprint = core.FingerprintIR

	want, err := nameSensitive.Sweep(fingerprintHandles(t), nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := canonical.Sweep(fingerprintHandles(t), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Results) != len(want.Results) {
		t.Fatalf("result counts differ: %d vs %d", len(got.Results), len(want.Results))
	}
	for i, wr := range want.Results {
		gr := got.Results[i]
		if gr.Name() != wr.Name() {
			t.Fatalf("order differs at %d: %s vs %s", i, gr.Name(), wr.Name())
		}
		for _, pl := range gpu.Platforms() {
			if gr.OrigNS[pl.Vendor] != wr.OrigNS[pl.Vendor] {
				t.Errorf("%s orig on %s: canonical %v != name-sensitive %v",
					wr.Name(), pl.Vendor, gr.OrigNS[pl.Vendor], wr.OrigNS[pl.Vendor])
			}
			if len(gr.VariantNS[pl.Vendor]) != len(wr.VariantNS[pl.Vendor]) {
				t.Fatalf("%s on %s: variant counts differ", wr.Name(), pl.Vendor)
			}
			for hash, ns := range wr.VariantNS[pl.Vendor] {
				if gr.VariantNS[pl.Vendor][hash] != ns {
					t.Errorf("%s variant %s on %s: canonical %v != name-sensitive %v",
						wr.Name(), hash, pl.Vendor, gr.VariantNS[pl.Vendor][hash], ns)
				}
			}
		}
	}
}

// TestCanonicalFingerprintSharesRenamedCompiles: two sources that differ
// only in identifier spelling must converge to one driver compile per
// platform under the canonical fingerprint — the convergence the
// name-sensitive key cannot see.
func TestCanonicalFingerprintSharesRenamedCompiles(t *testing.T) {
	const a = `#version 330 core
uniform float gain;
in vec2 uv;
out vec4 fragColor;
void main() {
    float g = gain * uv.x + uv.y;
    fragColor = vec4(g, g, g, 1.0);
}`
	const b = `#version 330 core
uniform float intensity;
in vec2 texcoord;
out vec4 color_out;
void main() {
    float lum = intensity * texcoord.x + texcoord.y;
    color_out = vec4(lum, lum, lum, 1.0);
}`
	ha, err := core.Compile(a, "renamed/a", core.LangGLSL)
	if err != nil {
		t.Fatal(err)
	}
	hb, err := core.Compile(b, "renamed/b", core.LangGLSL)
	if err != nil {
		t.Fatal(err)
	}
	if core.FingerprintCanonical(ha.IR()) != core.FingerprintCanonical(hb.IR()) {
		t.Fatal("renamed twins have different canonical fingerprints")
	}
	if core.FingerprintIR(ha.IR()) == core.FingerprintIR(hb.IR()) {
		t.Fatal("renamed twins share the name-sensitive fingerprint; test is vacuous")
	}

	desktop := gpu.Platforms()[:1]
	sess := NewSession(desktop, Options{Cfg: harness.FastConfig(), Workers: 1})
	if _, err := sess.Sweep([]*core.Shader{ha, hb}, nil); err != nil {
		t.Fatal(err)
	}
	reg := sess.Telemetry()
	compiles := reg.Counter("gpu.compiles").Value()
	variants := int64(0)
	if vs, _ := sess.Variants(ha); vs != nil {
		variants = int64(vs.Unique())
	}
	// The twins enumerate identical variant structures; every one of b's
	// distinct lowerings must hit a's compiles, so the total compile
	// count is one shader's worth, not two.
	if compiles > variants+1 { // +1: the original baseline's lowering
		t.Fatalf("twin sweep ran %d driver compiles for %d distinct variants; renamed convergence missing",
			compiles, variants)
	}
}
