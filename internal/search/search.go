// Package search implements the paper's iterative-compilation study: the
// exhaustive evaluation of all 256 flag combinations for every corpus
// shader on every platform (§III-A), and the analyses behind Table I and
// Figures 3 and 5-9.
package search

import (
	"fmt"
	"runtime"
	"sort"
	"sync"

	"shaderopt/internal/core"
	"shaderopt/internal/corpus"
	"shaderopt/internal/gpu"
	"shaderopt/internal/harness"
	"shaderopt/internal/passes"
)

// ShaderResult holds one shader's exhaustive measurements.
type ShaderResult struct {
	Shader   *corpus.Shader
	Variants *core.VariantSet
	// OrigNS is the measured time of the unmodified original source per
	// platform vendor.
	OrigNS map[string]float64
	// VariantNS maps vendor -> variant hash -> measured time.
	VariantNS map[string]map[string]float64
}

// NSFor returns the measured time of the variant produced by flags.
func (r *ShaderResult) NSFor(vendor string, flags core.Flags) float64 {
	v := r.Variants.VariantFor(flags)
	return r.VariantNS[vendor][v.Hash]
}

// SpeedupFor returns the % speedup of the flags variant vs the original.
func (r *ShaderResult) SpeedupFor(vendor string, flags core.Flags) float64 {
	return harness.Speedup(r.OrigNS[vendor], r.NSFor(vendor, flags))
}

// BestVariant returns the fastest variant and its time.
func (r *ShaderResult) BestVariant(vendor string) (*core.Variant, float64) {
	var best *core.Variant
	bestNS := 0.0
	for _, v := range r.Variants.Variants {
		ns := r.VariantNS[vendor][v.Hash]
		if best == nil || ns < bestNS {
			best, bestNS = v, ns
		}
	}
	return best, bestNS
}

// BestSpeedup returns the best-per-shader % speedup vs the original.
func (r *ShaderResult) BestSpeedup(vendor string) float64 {
	_, ns := r.BestVariant(vendor)
	return harness.Speedup(r.OrigNS[vendor], ns)
}

// Sweep is the full study result.
type Sweep struct {
	Platforms []*gpu.Platform
	Results   []*ShaderResult
	Cfg       harness.Config
}

// Options configures a sweep run.
type Options struct {
	Cfg harness.Config
	// Workers bounds parallelism (0 = GOMAXPROCS).
	Workers int
}

// Run executes the exhaustive study over the given shaders and platforms.
// Results are deterministic: noise streams are seeded per (platform,
// shader, variant), independent of scheduling.
func Run(shaders []*corpus.Shader, platforms []*gpu.Platform, opts Options) (*Sweep, error) {
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	results := make([]*ShaderResult, len(shaders))
	errs := make([]error, len(shaders))

	var wg sync.WaitGroup
	sem := make(chan struct{}, workers)
	for i, sh := range shaders {
		wg.Add(1)
		go func(i int, sh *corpus.Shader) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			results[i], errs[i] = measureShader(sh, platforms, opts.Cfg)
		}(i, sh)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("%s: %w", shaders[i].Name, err)
		}
	}
	return &Sweep{Platforms: platforms, Results: results, Cfg: opts.Cfg}, nil
}

func measureShader(sh *corpus.Shader, platforms []*gpu.Platform, cfg harness.Config) (*ShaderResult, error) {
	vs, err := core.EnumerateVariantsLang(sh.Source, sh.Name, sh.Lang)
	if err != nil {
		return nil, err
	}
	// The unmodified-original baseline is the source the driver would see
	// without the offline optimizer: the author's GLSL text, or for WGSL
	// the frontend's unoptimized translation — which the enumeration just
	// produced as the all-flags-off variant.
	origSrc := sh.Source
	if sh.Lang.Resolve(sh.Source) == core.LangWGSL {
		origSrc = vs.VariantFor(core.NoFlags).Source
	}
	r := &ShaderResult{
		Shader:    sh,
		Variants:  vs,
		OrigNS:    map[string]float64{},
		VariantNS: map[string]map[string]float64{},
	}
	for _, pl := range platforms {
		m, err := harness.MeasureSource(pl, origSrc, cfg)
		if err != nil {
			return nil, fmt.Errorf("original on %s: %w", pl.Vendor, err)
		}
		r.OrigNS[pl.Vendor] = m.Score()
		perVariant := map[string]float64{}
		for _, v := range vs.Variants {
			vm, err := harness.MeasureSource(pl, v.Source, cfg)
			if err != nil {
				return nil, fmt.Errorf("variant %s on %s: %w", v.Hash, pl.Vendor, err)
			}
			perVariant[v.Hash] = vm.Score()
		}
		r.VariantNS[pl.Vendor] = perVariant
	}
	return r, nil
}

// --- Analyses ---

// BestStaticFlags returns the single flag combination maximizing the mean
// speedup across all shaders for the vendor (Table I).
func (s *Sweep) BestStaticFlags(vendor string) (core.Flags, float64) {
	bestFlags := core.NoFlags
	bestMean := -1e18
	for _, flags := range passes.AllCombinations() {
		sum := 0.0
		for _, r := range s.Results {
			sum += r.SpeedupFor(vendor, flags)
		}
		mean := sum / float64(len(s.Results))
		if mean > bestMean {
			bestMean, bestFlags = mean, flags
		}
	}
	return bestFlags, bestMean
}

// MeanSpeedups computes Figure 5's three bars for a vendor: best per
// shader, default LunarGlass flags, and the best static flag set.
type MeanSpeedups struct {
	Vendor     string
	Best       float64
	Default    float64
	BestStatic float64
	StaticSet  core.Flags
}

// MeanSpeedups returns the Fig. 5 aggregates for a vendor.
func (s *Sweep) MeanSpeedups(vendor string) MeanSpeedups {
	staticSet, staticMean := s.BestStaticFlags(vendor)
	out := MeanSpeedups{Vendor: vendor, BestStatic: staticMean, StaticSet: staticSet}
	for _, r := range s.Results {
		out.Best += r.BestSpeedup(vendor)
		out.Default += r.SpeedupFor(vendor, core.DefaultFlags)
	}
	n := float64(len(s.Results))
	out.Best /= n
	out.Default /= n
	return out
}

// PerShaderSpeedups returns, for each shader, (best, default, best-static)
// speedups on a vendor, sorted descending by best — the data behind
// Figures 6 and 7.
type PerShader struct {
	Name                      string
	Best, Default, BestStatic float64
}

// PerShaderSpeedups computes the per-shader series for a vendor.
func (s *Sweep) PerShaderSpeedups(vendor string) []PerShader {
	staticSet, _ := s.BestStaticFlags(vendor)
	out := make([]PerShader, 0, len(s.Results))
	for _, r := range s.Results {
		out = append(out, PerShader{
			Name:       r.Shader.Name,
			Best:       r.BestSpeedup(vendor),
			Default:    r.SpeedupFor(vendor, core.DefaultFlags),
			BestStatic: r.SpeedupFor(vendor, staticSet),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Best > out[j].Best })
	return out
}

// Top30Mean returns Figure 6's value: the mean best speedup over the 30
// most-improved shaders.
func (s *Sweep) Top30Mean(vendor string) float64 {
	per := s.PerShaderSpeedups(vendor)
	n := 30
	if len(per) < n {
		n = len(per)
	}
	sum := 0.0
	for _, p := range per[:n] {
		sum += p.Best
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// FlagApplicability is Figure 8's three bars for one flag.
type FlagApplicability struct {
	Flag core.Flags
	// Total shaders studied (blue).
	Total int
	// ChangesCode counts shaders where toggling the flag changes the
	// generated source for some setting of the other flags (red).
	ChangesCode int
	// InOptimalSet counts shaders where the flag is included in at least
	// half of the optimal 10% of variants (green).
	InOptimalSet map[string]int // per vendor
}

// FlagApplicabilities computes Fig. 8 for all flags.
func (s *Sweep) FlagApplicabilities() []FlagApplicability {
	var out []FlagApplicability
	for _, f := range passes.FlagList() {
		fa := FlagApplicability{Flag: f, Total: len(s.Results), InOptimalSet: map[string]int{}}
		for _, r := range s.Results {
			if r.Variants.FlagChangesOutput(f) {
				fa.ChangesCode++
			}
			for _, pl := range s.Platforms {
				if flagInOptimalTenth(r, pl.Vendor, f) {
					fa.InOptimalSet[pl.Vendor]++
				}
			}
		}
		out = append(out, fa)
	}
	return out
}

// flagInOptimalTenth implements the paper's Fig. 8 green criterion: the
// flag is included for at least half of the optimal 10% of variants for
// that shader.
func flagInOptimalTenth(r *ShaderResult, vendor string, f core.Flags) bool {
	variants := append([]*core.Variant(nil), r.Variants.Variants...)
	times := r.VariantNS[vendor]
	sort.Slice(variants, func(i, j int) bool {
		if times[variants[i].Hash] != times[variants[j].Hash] {
			return times[variants[i].Hash] < times[variants[j].Hash]
		}
		return variants[i].Hash < variants[j].Hash
	})
	n := (len(variants) + 9) / 10 // ceil(10%), at least 1
	if n < 1 {
		n = 1
	}
	withFlag := 0
	for _, v := range variants[:n] {
		// A variant corresponds to many flag settings; attribute the flag
		// if a majority of the settings that produce this variant set it.
		set := 0
		for _, fs := range v.FlagSets {
			if fs.Has(f) {
				set++
			}
		}
		if set*2 >= len(v.FlagSets) {
			withFlag++
		}
	}
	return withFlag*2 >= n
}

// FlagIsolation computes Figure 9: the speedup distribution of each flag
// alone relative to the all-off LunarGlass baseline (so codegen artefacts
// cancel out, §VI-D).
func (s *Sweep) FlagIsolation(vendor string) map[core.Flags][]float64 {
	out := map[core.Flags][]float64{}
	for _, f := range passes.FlagList() {
		var speeds []float64
		for _, r := range s.Results {
			base := r.NSFor(vendor, core.NoFlags)
			solo := r.NSFor(vendor, f)
			speeds = append(speeds, harness.Speedup(base, solo))
		}
		out[f] = speeds
	}
	return out
}

// SpeedupDistribution returns the per-shader speedups of one flag set vs
// the original across all shaders (Fig. 3 right: the Mali histogram).
func (s *Sweep) SpeedupDistribution(vendor string, flags core.Flags) []float64 {
	var out []float64
	for _, r := range s.Results {
		out = append(out, r.SpeedupFor(vendor, flags))
	}
	return out
}

// ResultFor returns the result for a named shader, or nil.
func (s *Sweep) ResultFor(name string) *ShaderResult {
	for _, r := range s.Results {
		if r.Shader.Name == name {
			return r
		}
	}
	return nil
}
