// Package search implements the paper's iterative-compilation study: the
// exhaustive evaluation of all 256 flag combinations for every corpus
// shader on every platform (§III-A), and the analyses behind Table I and
// Figures 3 and 5-9.
//
// The study is compile-once / measure-many, so it is built on compiled
// handles (core.Shader) and a Session: the handle caches the lowered IR
// and the deduplicated variant enumeration, and the Session owns a
// concurrency-safe measurement cache keyed by (vendor, source hash,
// protocol) plus a cached ES-conversion table, so each distinct variant
// is measured exactly once no matter how many shaders, flag sets, or
// sweeps share it.
package search

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"shaderopt/internal/core"
	"shaderopt/internal/corpus"
	"shaderopt/internal/crossc"
	"shaderopt/internal/gpu"
	"shaderopt/internal/harness"
	"shaderopt/internal/ir"
	"shaderopt/internal/lru"
	"shaderopt/internal/passes"
	"shaderopt/internal/store"
	"shaderopt/internal/telemetry"
)

// ShaderResult holds one shader's exhaustive measurements.
type ShaderResult struct {
	// Handle is the compiled shader the measurements were derived from.
	Handle *core.Shader
	// Shader is the corpus entry when the sweep came from Run; nil for
	// sweeps over raw handles.
	Shader   *corpus.Shader
	Variants *core.VariantSet
	// OrigNS is the measured time of the unmodified original source per
	// platform vendor.
	OrigNS map[string]float64
	// VariantNS maps vendor -> variant hash -> measured time.
	VariantNS map[string]map[string]float64
}

// Name returns the shader's study name.
func (r *ShaderResult) Name() string { return r.Handle.Name }

// Lang returns the shader's source language, read from the compiled
// handle — the attribution key of the per-language study split.
func (r *ShaderResult) Lang() core.Lang { return r.Handle.Lang }

// NSFor returns the measured time of the variant produced by flags.
func (r *ShaderResult) NSFor(vendor string, flags core.Flags) float64 {
	v := r.Variants.VariantFor(flags)
	return r.VariantNS[vendor][v.Hash]
}

// SpeedupFor returns the % speedup of the flags variant vs the original.
func (r *ShaderResult) SpeedupFor(vendor string, flags core.Flags) float64 {
	return harness.Speedup(r.OrigNS[vendor], r.NSFor(vendor, flags))
}

// BestVariant returns the fastest variant and its time.
func (r *ShaderResult) BestVariant(vendor string) (*core.Variant, float64) {
	var best *core.Variant
	bestNS := 0.0
	for _, v := range r.Variants.Variants {
		ns := r.VariantNS[vendor][v.Hash]
		if best == nil || ns < bestNS {
			best, bestNS = v, ns
		}
	}
	return best, bestNS
}

// BestSpeedup returns the best-per-shader % speedup vs the original.
func (r *ShaderResult) BestSpeedup(vendor string) float64 {
	_, ns := r.BestVariant(vendor)
	return harness.Speedup(r.OrigNS[vendor], ns)
}

// Sweep is the full study result.
type Sweep struct {
	Platforms []*gpu.Platform
	Results   []*ShaderResult
	Cfg       harness.Config
	// Stats aggregates where this sweep spent its time and what the
	// session caches absorbed, with a full telemetry snapshot attached.
	Stats PipelineStats

	// bestStatic memoizes BestStaticFlags per vendor: the argmax is a full
	// 256×shaders scan and every Fig. 5/6/7 analysis needs it.
	staticMu   sync.Mutex
	bestStatic map[string]staticBest
}

// PipelineStats is the aggregate observability summary of one sweep: the
// per-shader SweepEvent stream folded into totals, plus a point-in-time
// snapshot of the session's telemetry registry (cumulative over the
// session — reuse a session and the registry keeps counting, while the
// event-derived totals here are per sweep).
type PipelineStats struct {
	// Shaders is the number of handles swept.
	Shaders int
	// UniqueVariants sums each swept shader's deduplicated variant count.
	UniqueVariants int
	// Measured counts measurements this sweep ran; CacheHits counts the
	// ones the session measurement cache (or an in-flight wait) absorbed.
	Measured, CacheHits int64
	// CompileHits counts driver compiles served from the (vendor, IR
	// fingerprint) compile cache during this sweep.
	CompileHits int64
	// EnumMS and MeasureMS sum the per-shader enumeration and measurement
	// wall-clock milliseconds (summed across concurrently-swept shaders,
	// so they can exceed the sweep's wall-clock time).
	EnumMS, MeasureMS float64
	// Metrics is the session's telemetry snapshot taken as the sweep
	// finished: every counter, gauge, and histogram the pipeline layers
	// recorded (frontend parses, enumeration trie structure, per-cache
	// hits/misses/evictions, per-vendor compiles, harness batches).
	Metrics *telemetry.Snapshot
}

// HitRate returns the measurement-cache hit rate of the sweep in
// [0, 1] (0 when nothing was looked up).
func (p PipelineStats) HitRate() float64 {
	total := p.Measured + p.CacheHits
	if total == 0 {
		return 0
	}
	return float64(p.CacheHits) / float64(total)
}

// CompileMS returns the sweep's total driver-compile wall-clock
// milliseconds, read from the gpu.compile histogram of the telemetry
// snapshot (0 without a snapshot).
func (p PipelineStats) CompileMS() float64 {
	if p.Metrics == nil {
		return 0
	}
	return float64(p.Metrics.Histograms["gpu.compile"].Sum.Nanoseconds()) / 1e6
}

type staticBest struct {
	flags core.Flags
	mean  float64
}

// SweepEvent is one progress report from a running sweep, streamed through
// the Options.OnEvent / Session.Sweep callback as each shader completes.
type SweepEvent struct {
	// Shader is the completed shader's name.
	Shader string
	// Lang is the shader's source language ("glsl", "wgsl", ...), so a
	// mixed-corpus event stream attributes each line to its frontend and
	// consumers (progress renderers, the sweepd ndjson stream) can slice
	// progress per language without a corpus lookup.
	Lang string
	// Done and Total count completed shaders and the sweep size.
	Done, Total int
	// UniqueVariants is the shader's deduplicated variant count (Fig. 4c).
	UniqueVariants int
	// Measured counts the measurements this shader actually ran; CacheHits
	// counts the ones the session cache already had.
	Measured, CacheHits int
	// Workers is the session's worker-pool size — the shard width the
	// enumeration trie walk and the shader fan-out ran at.
	Workers int
	// EnumCached reports that the variant set came from the session's
	// enumeration cache instead of being enumerated for this event.
	EnumCached bool
	// EnumMS is the wall-clock milliseconds enumeration took for this
	// shader (~0 when EnumCached).
	EnumMS float64
	// CompileHits counts driver compiles this shader's measurements served
	// from the session compile cache — variants whose canonicalized
	// lowerings converged to an already-compiled (vendor, IR fingerprint)
	// — instead of running the vendor pipeline again.
	CompileHits int
	// MeasureMS is the wall-clock milliseconds the shader spent in the
	// measurement pipeline: driver compiles, the batched sampling passes,
	// and waits on measurements shared with concurrently-sweeping shaders.
	// Together with EnumMS it shows where a sweep spends its time.
	MeasureMS float64
}

// DefaultCacheBound is the session cache budget when Options.CacheBound
// is zero: the enumeration cache may hold this many variants (LRU by
// variant count) and the driver-lowering cache the same number of
// lowered programs. It is sized for a corpus-scale working set (64
// shaders at the full 256 combinations) while keeping a long-lived
// sweep service's memory flat.
const DefaultCacheBound = 64 * 256

// Options configures a sweep run.
type Options struct {
	Cfg harness.Config
	// Workers bounds parallelism (0 = GOMAXPROCS): the shader fan-out of
	// Sweep and the shard width of the memoized variant enumeration.
	Workers int
	// CacheBound bounds the session's enumeration cache (in variants) and
	// driver-lowering cache (in programs). 0 means DefaultCacheBound;
	// negative disables eviction.
	CacheBound int
	// OnEvent, when non-nil, receives a SweepEvent as each shader
	// completes. Callbacks are serialized.
	OnEvent func(SweepEvent)
	// Telemetry, when non-nil, is the registry every pipeline layer the
	// session drives reports into — frontend parses, enumeration trie
	// counters, per-cache hits/misses/evictions, per-vendor compile
	// spans and durations, harness batch sizes — and whose attached
	// tracer (if any) receives the sweep's spans. Nil makes the session
	// create a private registry, so the stats accessors and Sweep.Stats
	// always work; read it back through Session.Telemetry.
	Telemetry *telemetry.Registry
	// Store, when non-nil, layers a persistent on-disk cache under the
	// in-memory LRUs: memory miss → store read → compute → write-through,
	// for driver compiles (keyed vendor + canonical IR fingerprint),
	// measurement scores (keyed vendor + source hash + protocol), and
	// shared trie-node outcomes (keyed step + canonical parent
	// fingerprint). The session instruments the store's
	// hit/miss/eviction traffic into its telemetry registry
	// (cache.store.*, store.*). Sharing one store across sessions is
	// sound — entries are deterministic recomputations — but the sinks
	// belong to the last session that attached.
	Store *store.Store
	// SharedTrie, when non-nil, is the cross-shader enumeration table the
	// session's variant enumerations consult and feed (core.SharedTrie):
	// inject one to share transform work across sessions, as sweepd does
	// across its per-protocol sessions. Nil makes the session create a
	// private table (unless DisableSharedTrie). The session instruments
	// the table's usable-hit traffic into its registry
	// (enum.shared.{hits,misses}) and, when a Store is attached, wires
	// the table's persistent node layer; like Store sinks, both belong to
	// the last session that attached.
	SharedTrie *core.SharedTrie
	// DisableSharedTrie turns cross-shader enumeration sharing off: every
	// handle's trie walk runs private. The variant sets and scores are
	// byte-identical either way (sharing stays at the transform level);
	// the switch exists for A/B gates and benchmarks.
	DisableSharedTrie bool
}

// Session owns the shared state of a measurement campaign: the protocol,
// the platform roster, a concurrency-safe measurement-score cache keyed
// by (vendor, source hash, protocol), a cached ES-conversion table, and
// four LRU-bounded caches — variant enumerations (evicted by variant
// count), canonicalized driver-front-end lowerings, driver compiles keyed
// by (vendor, IR fingerprint), and the measurement scores themselves — so
// a long-lived sweep service's memory stays flat at corpus scale. All
// methods are safe for concurrent use; cached measurements are sound
// because the harness is deterministic per (vendor, source, protocol).
type Session struct {
	cfg       harness.Config
	workers   int
	platforms []*gpu.Platform

	// scores is the bounded cache of completed measurement scores;
	// inflight coordinates measurements currently being taken, so
	// concurrently-sweeping shaders that share a variant wait for one
	// batched measurement instead of repeating it. A key evicted from
	// scores is simply re-measured, bit-identically, on its next use
	// (the harness is deterministic), so eviction trades only time for
	// memory; likewise the narrow race between a scores miss and the
	// inflight reservation can at worst duplicate a deterministic
	// measurement.
	scores   *lru.Cache[measKey, float64]
	inflight sync.Map // measKey -> *measEntry

	// lowered caches the driver front end's work per distinct source text:
	// the canonicalized lowering, its IR fingerprint, and (for desktop
	// texts in a session with mobile platforms) the GLES conversion —
	// all derived from one parse. compiled caches vendor-pipeline results
	// per (vendor, fingerprint), so variants whose lowerings converge at
	// the canonicalization fixed point — common after ES conversion —
	// compile once per platform instead of once per (variant, platform);
	// enums caches variant enumerations per (lang, source hash). All are
	// LRU-evicted: on a racing miss two goroutines may redundantly compute
	// the same deterministic value, which is benign, unlike unbounded
	// growth.
	lowered  *lru.Cache[string, *frontEnd]
	compiled *lru.Cache[compiledKey, *gpu.Compiled]
	enums    *lru.Cache[enumKey, *core.VariantSet]

	// shared is the cross-shader trie-node table enumeration runs
	// through (Options.SharedTrie, or a session-private one); nil when
	// sharing is disabled. Sharing stays at the transform level, so every
	// result is byte-identical to a private walk.
	shared *core.SharedTrie

	// anyMobile records whether the roster has a mobile platform, so the
	// shared front end converts each desktop text to GLES eagerly, while
	// the raw (pre-canonicalization) lowering is still in hand.
	anyMobile bool

	// store, when non-nil, is the persistent layer under the LRUs (see
	// Options.Store); storeWriteErrs counts degraded write-throughs and
	// undecodable-but-checksummed payloads (store.write_errors).
	store          *store.Store
	storeWriteErrs *telemetry.Counter

	// fingerprint derives the program identity that keys driver compiles
	// (the compile cache and the persistent store). The default is the
	// name-insensitive core.FingerprintCanonical — sound because driver
	// pipelines and cost models are pure functions of program structure —
	// so structurally identical shaders from different frontends share
	// compiles; tests override it with core.FingerprintIR to pin that
	// scores are fingerprint-choice-independent.
	fingerprint func(*ir.Program) string

	// reg is the session's telemetry registry (Options.Telemetry, or a
	// private one), the single sink every pipeline layer reports into;
	// the counters below are its pre-resolved handles for the hot paths.
	// session.measure.{hits,misses} count measurement-cache traffic at
	// the session level (an inflight wait is a hit, though the scores
	// lru never saw it); cache.compile.{hits,misses} are fed by the
	// compile cache's lru sink, compiledFor being its only reader.
	reg                        *telemetry.Registry
	measHits, measMisses       *telemetry.Counter
	compileHits, compileMisses *telemetry.Counter
	scoreEvicts                *telemetry.Counter
}

// frontEnd is the driver front end's cached work for one distinct source
// text: the lowering at its canonicalization fixed point, the IR
// fingerprint that keys its driver compiles, and — for driver-visible
// desktop texts when the session has mobile platforms — the GLES
// conversion, produced from the same single parse (the conversion
// consumes the raw lowering, exactly what ToES does internally). All
// fields are immutable once cached; drivers receive clones.
type frontEnd struct {
	prog   *ir.Program
	fp     string
	es     string
	esHash string
}

// compiledKey identifies one driver compile: the vendor pipeline that ran
// and the fingerprint of the canonical program it consumed.
type compiledKey struct {
	vendor string
	fp     string
}

// enumKey identifies one enumeration: the resolved source language and
// the source content hash (the base IR is a pure function of both).
type enumKey struct {
	lang core.Lang
	hash string
}

type measKey struct {
	vendor string
	hash   string
	cfg    harness.Config
}

// measEntry is one in-flight measurement: the goroutine that wins the
// inflight reservation measures (as part of its platform batch) and
// closes done; everyone else waits on done and reads the result. Entries
// that fail keep their error and stay in the inflight map, so a failing
// key fails every later lookup the way the old once-per-key cache did.
type measEntry struct {
	done chan struct{}
	ns   float64
	err  error
}

// NewSession creates a measurement session for the given platforms.
func NewSession(platforms []*gpu.Platform, opts Options) *Session {
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	bound := opts.CacheBound
	switch {
	case bound == 0:
		bound = DefaultCacheBound
	case bound < 0:
		bound = 0 // lru treats 0 as unbounded
	}
	anyMobile := false
	for _, pl := range platforms {
		if pl.Mobile {
			anyMobile = true
		}
	}
	reg := opts.Telemetry
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	s := &Session{
		cfg:            opts.Cfg,
		workers:        workers,
		platforms:      platforms,
		anyMobile:      anyMobile,
		fingerprint:    core.FingerprintCanonical,
		scores:         lru.New[measKey, float64](bound),
		lowered:        lru.New[string, *frontEnd](bound),
		compiled:       lru.New[compiledKey, *gpu.Compiled](bound),
		enums:          lru.New[enumKey, *core.VariantSet](bound),
		reg:            reg,
		storeWriteErrs: reg.Counter("store.write_errors"),
		measHits:       reg.Counter("session.measure.hits"),
		measMisses:     reg.Counter("session.measure.misses"),
		compileHits:    reg.Counter("cache.compile.hits"),
		compileMisses:  reg.Counter("cache.compile.misses"),
		scoreEvicts:    reg.Counter("cache.scores.evictions"),
	}
	instrumentCache(s.scores, reg, "scores")
	instrumentCache(s.lowered, reg, "lowered")
	instrumentCache(s.compiled, reg, "compile")
	instrumentCache(s.enums, reg, "enum")
	if opts.Store != nil {
		s.store = opts.Store
		s.store.Instrument(
			reg.Counter("cache.store.hits"),
			reg.Counter("cache.store.misses"),
			reg.Counter("store.writes"),
			reg.Counter("cache.store.evictions"),
			reg.Counter("store.corrupt"),
		)
	}
	if !opts.DisableSharedTrie {
		s.shared = opts.SharedTrie
		if s.shared == nil {
			s.shared = core.NewSharedTrie(0)
		}
		s.shared.Instrument(reg.Counter("enum.shared.hits"), reg.Counter("enum.shared.misses"))
		if s.store != nil {
			s.shared.SetPersist(trieStore{st: s.store, writeErrs: s.storeWriteErrs})
		}
	}
	return s
}

// instrumentCache attaches one session cache's hit/miss/eviction/
// rejection sinks to the uniform cache.<name>.{hits,misses,evictions,
// rejected} registry counters.
func instrumentCache[K comparable, V any](c *lru.Cache[K, V], reg *telemetry.Registry, name string) {
	c.Instrument(
		reg.Counter("cache."+name+".hits"),
		reg.Counter("cache."+name+".misses"),
		reg.Counter("cache."+name+".evictions"),
		reg.Counter("cache."+name+".rejected"),
	)
}

// Telemetry returns the session's registry: Options.Telemetry when one
// was supplied, else the private registry the session created. Attach a
// tracer to it (telemetry.Registry.SetTracer) to capture the sweep's
// spans; call Metrics for a snapshot with occupancy gauges refreshed.
func (s *Session) Telemetry() *telemetry.Registry { return s.reg }

// Metrics refreshes the cache.<name>.{entries,cost,bound} occupancy
// gauges and returns a snapshot of the session's telemetry registry —
// the consolidated form of every per-layer counter and histogram the
// pipeline recorded, and the source of truth the legacy *CacheStats
// accessors now read through.
func (s *Session) Metrics() *telemetry.Snapshot {
	occupancy := func(name string, entries, cost, bound int) {
		s.reg.Gauge("cache." + name + ".entries").Set(int64(entries))
		s.reg.Gauge("cache." + name + ".cost").Set(int64(cost))
		s.reg.Gauge("cache." + name + ".bound").Set(int64(bound))
	}
	occupancy("scores", s.scores.Len(), s.scores.Cost(), s.scores.Bound())
	occupancy("lowered", s.lowered.Len(), s.lowered.Cost(), s.lowered.Bound())
	occupancy("compile", s.compiled.Len(), s.compiled.Cost(), s.compiled.Bound())
	occupancy("enum", s.enums.Len(), s.enums.Cost(), s.enums.Bound())
	return s.reg.Snapshot()
}

// Config returns the session's measurement protocol.
func (s *Session) Config() harness.Config { return s.cfg }

// Platforms returns the session's platform roster.
func (s *Session) Platforms() []*gpu.Platform { return s.platforms }

// Workers returns the session's worker-pool size: the shader fan-out of
// Sweep and the shard width of the memoized variant enumeration.
func (s *Session) Workers() int { return s.workers }

// CacheStats returns how many measurements the session served from cache
// (including waits on a measurement another shader had in flight) and how
// many it actually ran. Superseded by the telemetry registry — this is a
// thin wrapper over the session.measure.{hits,misses} counters, kept so
// existing callers read the same numbers from the consolidated source.
func (s *Session) CacheStats() (hits, misses int64) {
	return s.measHits.Value(), s.measMisses.Value()
}

// MeasCacheStats reports the measurement-score cache's occupancy: cached
// scores, the configured bound (0 = unbounded), and how many scores have
// been evicted since the session was created. An evicted score is
// re-measured bit-identically on its next use, so eviction never changes
// a result. Superseded by the telemetry registry — the eviction count is
// the cache.scores.evictions counter fed by the cache's stats sink.
func (s *Session) MeasCacheStats() (entries, bound int, evicted int64) {
	return s.scores.Len(), s.scores.Bound(), s.scoreEvicts.Value()
}

// CompileCacheStats reports the driver-compile cache: how many vendor
// compiles were served from cache vs run, its occupancy, and its bound
// (0 = unbounded). A hit means a variant's canonicalized lowering
// converged to a (vendor, IR fingerprint) pair some other variant already
// compiled, so the vendor pipeline and cost model were skipped entirely.
// Superseded by the telemetry registry — a thin wrapper over the
// cache.compile.{hits,misses} counters (compiledFor is that cache's only
// reader, so the lru-level sink counts exactly these events).
func (s *Session) CompileCacheStats() (hits, misses int64, entries, bound int) {
	return s.compileHits.Value(), s.compileMisses.Value(), s.compiled.Len(), s.compiled.Bound()
}

// EnumCacheStats reports the enumeration cache's occupancy: cached
// enumerations, their summed variant count (the eviction cost metric),
// and the configured bound (0 = unbounded).
func (s *Session) EnumCacheStats() (entries, variants, bound int) {
	return s.enums.Len(), s.enums.Cost(), s.enums.Bound()
}

// LoweredCacheStats reports the driver-lowering cache's occupancy and
// bound (0 = unbounded).
func (s *Session) LoweredCacheStats() (entries, bound int) {
	return s.lowered.Len(), s.lowered.Bound()
}

// Variants returns the handle's variant enumeration through the session's
// LRU cache, enumerating on a miss with the trie walk sharded across the
// session's worker pool. The bool reports a cache hit. Results are
// identical for any worker count, so sharing across callers is sound.
// An enumeration whose variant count exceeds the cache bound is computed
// but not admitted (it would evict everything else); it stays memoized on
// the handle itself, so only fresh handles for such a shader re-enumerate.
func (s *Session) Variants(h *core.Shader) (*core.VariantSet, bool) {
	key := enumKey{lang: h.Lang, hash: h.Hash}
	if vs, ok := s.enums.Get(key); ok {
		return vs, true
	}
	vs := h.VariantsSharedT(s.reg, s.workers, s.shared)
	s.enums.Add(key, vs, vs.Unique())
	return vs, false
}

// SharedTrie returns the cross-shader enumeration table the session's
// walks run through: Options.SharedTrie when one was injected, the
// session-private table otherwise, nil when DisableSharedTrie was set.
func (s *Session) SharedTrie() *core.SharedTrie { return s.shared }

// frontEndFor returns the cached driver-front-end work for one distinct
// source text: parsed and lowered once per cache residency across all
// platforms (the simulated drivers share one front end, as real drivers
// share Mesa's), converted to GLES while the raw lowering is in hand
// (desktop texts in a mobile-roster session — ToES is exactly ESFromIR of
// the text's lowering, so sharing the parse is output-identical), then
// taken through the vendor-independent first canonicalization fixed point
// every driver pipeline starts with, and fingerprinted once for the
// compile cache. Canonicalization is idempotent, so handing each driver a
// clone of the fixed point leaves its output bit-identical while the
// expensive multi-iteration run happens once instead of once per
// platform. handle, when non-nil, marks src as the exact text the
// handle's IR was lowered from, letting a miss clone the cached IR
// instead of re-parsing; generated text always goes through the driver
// front end so it keeps the paper's textual-interchange artefacts.
// convertES is false for texts that are themselves GLES conversions (the
// mobile drivers' effective sources — never converted again). Callers
// must clone fe.prog before handing it to a driver pipeline. The cache is
// LRU-bounded: after eviction (or on a racing miss) the work is redone,
// bit-identically, so eviction trades only time for memory.
func (s *Session) frontEndFor(src, hash string, handle *core.Shader, convertES bool) (*frontEnd, error) {
	if fe, ok := s.lowered.Get(hash); ok {
		return fe, nil
	}
	var prog *ir.Program
	var err error
	if handle != nil {
		prog = handle.IR()
	} else {
		prog, err = parseForDriver(src)
		if err != nil {
			return nil, err
		}
	}
	fe := &frontEnd{}
	if convertES && s.anyMobile {
		// Convert before canonicalizing: the conversion must consume the
		// raw lowering, the exact program ToES would hand it.
		fe.es, err = crossc.ESFromIR(prog, "mobile")
		if err != nil {
			return nil, fmt.Errorf("mobile conversion: %w", err)
		}
		fe.esHash = core.HashSource(fe.es)
	}
	passes.Canonicalize(prog)
	fe.prog, fe.fp = prog, s.fingerprint(prog)
	s.lowered.Add(hash, fe, 1)
	return fe, nil
}

// compiledFor returns the platform's driver compile of a canonical
// lowering through the session compile cache, keyed by (vendor, IR
// fingerprint). Sharing is sound: the vendor pipeline and cost model are
// pure functions of the program, equal fingerprints mean structurally
// identical programs, and a Compiled is immutable once built — so a
// variant whose canonicalized lowering converged with an already-compiled
// variant's reuses its compile, once per platform instead of once per
// (variant, platform). The opening canonicalization of the vendor
// pipeline is skipped (CompileCanonical): the input is already the fixed
// point. The bool reports a cache hit.
func (s *Session) compiledFor(pl *gpu.Platform, fe *frontEnd) (*gpu.Compiled, bool) {
	// Hit/miss accounting rides on the cache's lru stats sink
	// (cache.compile.{hits,misses}): this lookup is the cache's only
	// reader, so the sink counts exactly these events.
	key := compiledKey{vendor: pl.Vendor, fp: fe.fp}
	if c, ok := s.compiled.Get(key); ok {
		return c, true
	}
	if c, ok := s.storeGetCompiled(pl, fe.fp); ok {
		// Persistent-layer hit: another session (or a previous run of
		// this one) already ran this vendor compile. Promote it into the
		// memory cache; the vendor pipeline is skipped, so this is a hit.
		s.compiled.Add(key, c, 1)
		return c, true
	}
	c := pl.CompileCanonicalT(s.reg, fe.prog.Clone())
	s.compiled.Add(key, c, 1)
	s.storePutCompiled(pl, fe.fp, c)
	return c, false
}

func parseForDriver(src string) (*ir.Program, error) {
	prog, err := gpu.FrontEnd(src, "driver")
	if err != nil {
		return nil, fmt.Errorf("driver front end: %w", err)
	}
	return prog, nil
}

// resolveCompiled takes one driver-visible desktop text through the
// platform's front half: the shared front end (one parse serving the
// desktop lowering and the GLES conversion), the ES text's own front end
// on mobile, and the memoized vendor compile. handle, when non-nil, marks
// src as the exact text the handle's IR was lowered from.
func (s *Session) resolveCompiled(pl *gpu.Platform, src, hash string, handle *core.Shader) (*gpu.Compiled, bool, error) {
	fe, err := s.frontEndFor(src, hash, handle, true)
	if err != nil {
		return nil, false, fmt.Errorf("%s driver: %w", pl.Vendor, err)
	}
	if pl.Mobile {
		// The mobile driver consumes the converted ES text through its own
		// front end, exactly as MeasureSource does: the paper's pipeline
		// is textual past the conversion.
		fe, err = s.frontEndFor(fe.es, fe.esHash, nil, false)
		if err != nil {
			return nil, false, fmt.Errorf("%s driver: %w", pl.Vendor, err)
		}
	}
	compiled, hit := s.compiledFor(pl, fe)
	return compiled, hit, nil
}

// Sweep runs the exhaustive study over compiled handles: every distinct
// variant of every shader measured on every session platform, each
// distinct (vendor, source, protocol) measurement performed exactly once.
// Work is scheduled as (platform → batch of distinct compiled variants):
// per platform, a shader's session-cache misses are driver-compiled
// through the (vendor, IR fingerprint) compile cache and sampled in one
// harness.MeasureBatch pass. onEvent, when non-nil, receives per-shader
// progress (serialized). Results are deterministic: noise streams are
// seeded per (platform, source), independent of scheduling, batching, and
// caching — and byte-identical to the per-variant legacy pipeline
// (SweepLegacy), pinned corpus-wide by the harness-equivalence suite.
func (s *Session) Sweep(handles []*core.Shader, onEvent func(SweepEvent)) (*Sweep, error) {
	return s.SweepContext(context.Background(), handles, onEvent)
}

// SweepContext is Sweep under a cancellation context: when ctx is
// canceled the sweep stops starting new work — unclaimed shaders,
// per-platform measurement passes, and waits on other sweeps' in-flight
// measurements — and returns ctx's error. Cancellation never corrupts
// shared session state: a measurement batch this sweep has already
// reserved in the in-flight table runs to completion (it is what other
// concurrent sweeps may be waiting on), so a canceled client can never
// fail another client's measurements.
func (s *Session) SweepContext(ctx context.Context, handles []*core.Shader, onEvent func(SweepEvent)) (*Sweep, error) {
	return s.sweep(ctx, handles, onEvent, s.sweepShader)
}

// SweepLegacy runs the same study through the per-variant measurement
// pipeline: every (variant, platform) pair is measured by an independent
// harness.MeasureSource call — converted, parsed, lowered, canonicalized,
// vendor-compiled, and sampled from scratch, with none of the session's
// measurement caches. This is the original study loop (and what the
// string facade's Measure still does per call), not the immediately
// preceding Session.Sweep, which already shared front-end lowerings and
// scores across platforms; the batched pipeline subsumes that sharing
// and adds the compile cache, the single-parse front end, and the
// batched harness pass on top. It is kept as the differential-testing
// and benchmarking oracle for the batched pipeline (the LegacyVariants
// pattern): scores are byte-identical to Sweep, pinned corpus-wide by
// TestSweepBatchedMatchesLegacy, and the harness benchmark-regression
// gate (testdata/harness_baseline.json) fails CI if Sweep stops beating
// this path by the committed factor. Study code should use Sweep.
func (s *Session) SweepLegacy(handles []*core.Shader, onEvent func(SweepEvent)) (*Sweep, error) {
	return s.sweep(context.Background(), handles, onEvent, s.sweepShaderLegacy)
}

// sweep is the shared study driver: the shader fan-out across the worker
// pool, error collection, and the serialized event stream, parameterized
// by the per-shader measurement strategy. A canceled ctx stops shaders
// that have not started yet and is threaded into each per-shader run's
// own cancellation points.
func (s *Session) sweep(ctx context.Context, handles []*core.Shader, onEvent func(SweepEvent), perShader func(context.Context, *core.Shader) (*ShaderResult, SweepEvent, error)) (*Sweep, error) {
	results := make([]*ShaderResult, len(handles))
	errs := make([]error, len(handles))

	var wg sync.WaitGroup
	var done atomic.Int64
	var eventMu sync.Mutex
	var stats PipelineStats
	sem := make(chan struct{}, s.workers)
	for i, h := range handles {
		wg.Add(1)
		go func(i int, h *core.Shader) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			if err := ctx.Err(); err != nil {
				errs[i] = err
				return
			}
			var ev SweepEvent
			results[i], ev, errs[i] = perShader(ctx, h)
			if errs[i] == nil {
				eventMu.Lock()
				ev.Shader = h.Name
				ev.Lang = h.Lang.String()
				ev.Done = int(done.Add(1))
				ev.Total = len(handles)
				ev.Workers = s.workers
				stats.Shaders++
				stats.UniqueVariants += ev.UniqueVariants
				stats.Measured += int64(ev.Measured)
				stats.CacheHits += int64(ev.CacheHits)
				stats.CompileHits += int64(ev.CompileHits)
				stats.EnumMS += ev.EnumMS
				stats.MeasureMS += ev.MeasureMS
				if onEvent != nil {
					onEvent(ev)
				}
				eventMu.Unlock()
			}
		}(i, h)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("%s: %w", handles[i].Name, err)
		}
	}
	stats.Metrics = s.Metrics()
	return &Sweep{Platforms: s.platforms, Results: results, Cfg: s.cfg, Stats: stats}, nil
}

// origBaseline returns the unmodified-original baseline for a handle: the
// source the driver would see without the offline optimizer — the
// author's GLSL text, or for translated frontends (WGSL, HLSL) the
// unoptimized translation, which the enumeration produces as the
// all-flags-off variant (in that case the variant loop shares the
// measurement through the session cache). The returned handle is non-nil
// only when the text is exactly what the handle's IR was lowered from.
func origBaseline(h *core.Shader, vs *core.VariantSet) (src, hash string, handle *core.Shader) {
	if h.Lang != core.LangGLSL {
		v := vs.VariantFor(core.NoFlags)
		return v.Source, v.Hash, nil
	}
	return h.Source, h.Hash, h
}

// sweepShader measures one handle's original baseline and every distinct
// variant on every session platform, reporting per-shader sweep progress
// (variant counts, enumeration and measurement cost, cache traffic). Work
// is grouped per platform: each platform's uncached texts are compiled
// through the session compile cache and sampled in one batched harness
// pass. Cancellation is honored between platform passes, never inside
// one (a reserved in-flight batch always completes; see SweepContext).
func (s *Session) sweepShader(ctx context.Context, h *core.Shader) (r *ShaderResult, ev SweepEvent, err error) {
	span := s.reg.StartSpan("sweep "+h.Name, "sweep")
	defer span.End()
	enumStart := time.Now()
	vs, enumCached := s.Variants(h)
	ev.EnumCached = enumCached
	ev.EnumMS = float64(time.Since(enumStart).Nanoseconds()) / 1e6
	ev.UniqueVariants = vs.Unique()
	origSrc, origHash, origHandle := origBaseline(h, vs)
	r = &ShaderResult{
		Handle:    h,
		Variants:  vs,
		OrigNS:    map[string]float64{},
		VariantNS: map[string]map[string]float64{},
	}
	measStart := time.Now()
	for _, pl := range s.platforms {
		if err := ctx.Err(); err != nil {
			return nil, ev, err
		}
		origNS, perVariant, err := s.measurePlatform(ctx, pl, origSrc, origHash, origHandle, vs, &ev)
		if err != nil {
			return nil, ev, err
		}
		r.OrigNS[pl.Vendor] = origNS
		r.VariantNS[pl.Vendor] = perVariant
	}
	ev.MeasureMS = float64(time.Since(measStart).Nanoseconds()) / 1e6
	return r, ev, nil
}

// measurePlatform measures one shader's original plus every distinct
// variant on one platform, batching the session-cache misses into a
// single harness.MeasureBatch pass. Scores already cached — or being
// measured by a concurrently-sweeping shader — are reused; misses are
// reserved in the inflight map, resolved through the compile cache, and
// sampled together. Every reserved entry is completed exactly once, on
// success or failure, so waiters never block past this call. ctx is
// consulted only while waiting on entries *other* sweeps own: an entry
// this call reserved is always driven to completion regardless of
// cancellation, because concurrent sweeps may already be blocked on it.
func (s *Session) measurePlatform(ctx context.Context, pl *gpu.Platform, origSrc, origHash string, origHandle *core.Shader, vs *core.VariantSet, ev *SweepEvent) (float64, map[string]float64, error) {
	type slot struct {
		src    string
		hash   string
		handle *core.Shader
		entry  *measEntry // non-nil when owned or awaited
		owned  bool
		ns     float64
		done   bool
	}
	slots := make([]slot, 0, 1+len(vs.Variants))
	slots = append(slots, slot{src: origSrc, hash: origHash, handle: origHandle})
	for _, v := range vs.Variants {
		slots = append(slots, slot{src: v.Source, hash: v.Hash})
	}

	// Classify: cached score, our measurement to run, or someone else's
	// in-flight measurement to wait for (which counts as a cache hit, as
	// blocking on the old once-per-key entry did).
	var owned []int
	for i := range slots {
		sl := &slots[i]
		key := measKey{vendor: pl.Vendor, hash: sl.hash, cfg: s.cfg}
		if ns, ok := s.scores.Get(key); ok {
			sl.ns, sl.done = ns, true
			s.measHits.Inc()
			ev.CacheHits++
			continue
		}
		if ns, ok := s.storeGetScore(pl.Vendor, sl.hash); ok {
			// Persistent-layer hit: the score was measured by a previous
			// run under this exact (vendor, source, protocol) key, and
			// the harness is deterministic, so it is bit-identical to a
			// fresh measurement. Promote it so later lookups stay hot.
			s.scores.Add(key, ns, 1)
			sl.ns, sl.done = ns, true
			s.measHits.Inc()
			ev.CacheHits++
			continue
		}
		e, loaded := s.inflight.LoadOrStore(key, &measEntry{done: make(chan struct{})})
		sl.entry = e.(*measEntry)
		if loaded {
			s.measHits.Inc()
			ev.CacheHits++
			continue
		}
		sl.owned = true
		owned = append(owned, i)
		s.measMisses.Inc()
		ev.Measured++
	}

	// Resolve and compile the owned slots, then sample them as one batch.
	// A slot that fails to resolve completes its entry with the error (and
	// keeps it in the inflight map, failing later lookups the way the old
	// error-caching did); the rest of the batch still completes so other
	// shaders waiting on shared variants are never stranded.
	var firstErr error
	fail := func(sl *slot, err error) {
		if firstErr == nil {
			firstErr = err
		}
		sl.entry.err = err
		close(sl.entry.done)
	}
	items := make([]harness.BatchItem, 0, len(owned))
	live := make([]int, 0, len(owned))
	for _, i := range owned {
		sl := &slots[i]
		compiled, hit, err := s.resolveCompiled(pl, sl.src, sl.hash, sl.handle)
		if err != nil {
			if sl.handle != nil {
				err = fmt.Errorf("original on %s: %w", pl.Vendor, err)
			} else {
				err = fmt.Errorf("variant %s on %s: %w", sl.hash, pl.Vendor, err)
			}
			fail(sl, err)
			continue
		}
		if hit {
			ev.CompileHits++
		}
		items = append(items, harness.BatchItem{Compiled: compiled, SrcForSeed: sl.src})
		live = append(live, i)
	}
	for k, m := range harness.MeasureBatchT(s.reg, pl, items, s.cfg) {
		sl := &slots[live[k]]
		sl.ns, sl.done = m.Score(), true
		key := measKey{vendor: pl.Vendor, hash: sl.hash, cfg: s.cfg}
		s.scores.Add(key, sl.ns, 1)
		s.storePutScore(pl.Vendor, sl.hash, sl.ns)
		sl.entry.ns = sl.ns
		close(sl.entry.done)
		s.inflight.Delete(key)
	}

	// Collect measurements other sweeps (or earlier duplicate slots of
	// this one) had in flight. Our own batch is already complete, so this
	// cannot deadlock on ourselves. This wait is the one place
	// cancellation may interrupt measurement: the entries belong to other
	// sweeps, which complete them on their own schedule whether or not we
	// stop listening.
	for i := range slots {
		sl := &slots[i]
		if sl.done || sl.owned {
			continue
		}
		select {
		case <-sl.entry.done:
		case <-ctx.Done():
			if firstErr == nil {
				firstErr = ctx.Err()
			}
			continue
		}
		if sl.entry.err != nil {
			if firstErr == nil {
				firstErr = sl.entry.err
			}
			continue
		}
		sl.ns, sl.done = sl.entry.ns, true
	}
	if firstErr != nil {
		return 0, nil, firstErr
	}

	perVariant := make(map[string]float64, len(vs.Variants))
	for i, v := range vs.Variants {
		perVariant[v.Hash] = slots[1+i].ns
	}
	return slots[0].ns, perVariant, nil
}

// sweepShaderLegacy is the per-variant reference: the original baseline
// and every distinct variant measured per (variant, platform) through
// harness.MeasureSource, with no session measurement caching. Kept as
// the oracle sweepShader is differentially tested and benchmarked
// against; see SweepLegacy for what it does and does not represent.
func (s *Session) sweepShaderLegacy(ctx context.Context, h *core.Shader) (r *ShaderResult, ev SweepEvent, err error) {
	enumStart := time.Now()
	vs, enumCached := s.Variants(h)
	ev.EnumCached = enumCached
	ev.EnumMS = float64(time.Since(enumStart).Nanoseconds()) / 1e6
	ev.UniqueVariants = vs.Unique()
	origSrc, _, _ := origBaseline(h, vs)
	r = &ShaderResult{
		Handle:    h,
		Variants:  vs,
		OrigNS:    map[string]float64{},
		VariantNS: map[string]map[string]float64{},
	}
	measStart := time.Now()
	for _, pl := range s.platforms {
		if err := ctx.Err(); err != nil {
			return nil, ev, err
		}
		m, err := harness.MeasureSource(pl, origSrc, s.cfg)
		if err != nil {
			return nil, ev, fmt.Errorf("original on %s: %w", pl.Vendor, err)
		}
		ev.Measured++
		r.OrigNS[pl.Vendor] = m.Score()
		perVariant := make(map[string]float64, len(vs.Variants))
		for _, v := range vs.Variants {
			m, err := harness.MeasureSource(pl, v.Source, s.cfg)
			if err != nil {
				return nil, ev, fmt.Errorf("variant %s on %s: %w", v.Hash, pl.Vendor, err)
			}
			ev.Measured++
			perVariant[v.Hash] = m.Score()
		}
		r.VariantNS[pl.Vendor] = perVariant
	}
	ev.MeasureMS = float64(time.Since(measStart).Nanoseconds()) / 1e6
	return r, ev, nil
}

// Run executes the exhaustive study over the given corpus shaders and
// platforms: it compiles each shader to a handle (one frontend parse per
// shader) and sweeps them through a fresh Session. Results are
// deterministic: noise streams are seeded per (platform, shader, variant),
// independent of scheduling.
func Run(shaders []*corpus.Shader, platforms []*gpu.Platform, opts Options) (*Sweep, error) {
	handles := make([]*core.Shader, len(shaders))
	for i, sh := range shaders {
		h, err := core.Compile(sh.Source, sh.Name, sh.Lang)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", sh.Name, err)
		}
		handles[i] = h
	}
	sweep, err := NewSession(platforms, opts).Sweep(handles, opts.OnEvent)
	if err != nil {
		return nil, err
	}
	for i, r := range sweep.Results {
		r.Shader = shaders[i]
	}
	return sweep, nil
}

// --- Analyses ---

// BestStaticFlagsOver returns the single flag combination maximizing the
// mean speedup vs the original source across a subset of results for the
// vendor — Table I restricted to a result group, the primitive behind the
// per-language / per-backend study split (internal/analysis groups
// results by language and platforms by ingestion format and calls this
// per group). Ties resolve to the first combination in ascending
// flag-value order, so the result is deterministic for a fixed score set.
func BestStaticFlagsOver(results []*ShaderResult, vendor string) (core.Flags, float64) {
	bestFlags := core.NoFlags
	bestMean := -1e18
	for _, flags := range passes.AllCombinations() {
		sum := 0.0
		for _, r := range results {
			sum += r.SpeedupFor(vendor, flags)
		}
		mean := sum / float64(len(results))
		if mean > bestMean {
			bestMean, bestFlags = mean, flags
		}
	}
	return bestFlags, bestMean
}

// BestStaticFlags returns the single flag combination maximizing the mean
// speedup across all shaders for the vendor (Table I). The argmax is a
// full 256×shaders scan, so it is computed once per vendor and memoized;
// the memo is safe for concurrent use.
func (s *Sweep) BestStaticFlags(vendor string) (core.Flags, float64) {
	s.staticMu.Lock()
	defer s.staticMu.Unlock()
	if best, ok := s.bestStatic[vendor]; ok {
		return best.flags, best.mean
	}
	bestFlags, bestMean := BestStaticFlagsOver(s.Results, vendor)
	if s.bestStatic == nil {
		s.bestStatic = map[string]staticBest{}
	}
	s.bestStatic[vendor] = staticBest{flags: bestFlags, mean: bestMean}
	return bestFlags, bestMean
}

// MeanSpeedups computes Figure 5's three bars for a vendor: best per
// shader, default LunarGlass flags, and the best static flag set.
type MeanSpeedups struct {
	Vendor     string
	Best       float64
	Default    float64
	BestStatic float64
	StaticSet  core.Flags
}

// MeanSpeedups returns the Fig. 5 aggregates for a vendor.
func (s *Sweep) MeanSpeedups(vendor string) MeanSpeedups {
	staticSet, staticMean := s.BestStaticFlags(vendor)
	out := MeanSpeedups{Vendor: vendor, BestStatic: staticMean, StaticSet: staticSet}
	for _, r := range s.Results {
		out.Best += r.BestSpeedup(vendor)
		out.Default += r.SpeedupFor(vendor, core.DefaultFlags)
	}
	n := float64(len(s.Results))
	out.Best /= n
	out.Default /= n
	return out
}

// MeanSpeedupsOver computes the Fig. 5 aggregates for a vendor over a
// subset of results — the per-group form of MeanSpeedups, with the best
// static set learned on the same subset (unmemoized; group splits are
// computed once per report).
func MeanSpeedupsOver(results []*ShaderResult, vendor string) MeanSpeedups {
	staticSet, staticMean := BestStaticFlagsOver(results, vendor)
	out := MeanSpeedups{Vendor: vendor, BestStatic: staticMean, StaticSet: staticSet}
	for _, r := range results {
		out.Best += r.BestSpeedup(vendor)
		out.Default += r.SpeedupFor(vendor, core.DefaultFlags)
	}
	n := float64(len(results))
	out.Best /= n
	out.Default /= n
	return out
}

// PerShaderSpeedups returns, for each shader, (best, default, best-static)
// speedups on a vendor, sorted descending by best — the data behind
// Figures 6 and 7.
type PerShader struct {
	Name                      string
	Best, Default, BestStatic float64
}

// PerShaderSpeedups computes the per-shader series for a vendor.
func (s *Sweep) PerShaderSpeedups(vendor string) []PerShader {
	staticSet, _ := s.BestStaticFlags(vendor)
	out := make([]PerShader, 0, len(s.Results))
	for _, r := range s.Results {
		out = append(out, PerShader{
			Name:       r.Name(),
			Best:       r.BestSpeedup(vendor),
			Default:    r.SpeedupFor(vendor, core.DefaultFlags),
			BestStatic: r.SpeedupFor(vendor, staticSet),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Best > out[j].Best })
	return out
}

// Top30Mean returns Figure 6's value: the mean best speedup over the 30
// most-improved shaders.
func (s *Sweep) Top30Mean(vendor string) float64 {
	per := s.PerShaderSpeedups(vendor)
	n := 30
	if len(per) < n {
		n = len(per)
	}
	sum := 0.0
	for _, p := range per[:n] {
		sum += p.Best
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// FlagApplicability is Figure 8's three bars for one flag.
type FlagApplicability struct {
	Flag core.Flags
	// Total shaders studied (blue).
	Total int
	// ChangesCode counts shaders where toggling the flag changes the
	// generated source for some setting of the other flags (red).
	ChangesCode int
	// InOptimalSet counts shaders where the flag is included in at least
	// half of the optimal 10% of variants (green).
	InOptimalSet map[string]int // per vendor
}

// FlagApplicabilities computes Fig. 8 for all flags.
func (s *Sweep) FlagApplicabilities() []FlagApplicability {
	var out []FlagApplicability
	for _, f := range passes.FlagList() {
		fa := FlagApplicability{Flag: f, Total: len(s.Results), InOptimalSet: map[string]int{}}
		for _, r := range s.Results {
			if r.Variants.FlagChangesOutput(f) {
				fa.ChangesCode++
			}
			for _, pl := range s.Platforms {
				if flagInOptimalTenth(r, pl.Vendor, f) {
					fa.InOptimalSet[pl.Vendor]++
				}
			}
		}
		out = append(out, fa)
	}
	return out
}

// flagInOptimalTenth implements the paper's Fig. 8 green criterion: the
// flag is included for at least half of the optimal 10% of variants for
// that shader.
func flagInOptimalTenth(r *ShaderResult, vendor string, f core.Flags) bool {
	variants := append([]*core.Variant(nil), r.Variants.Variants...)
	times := r.VariantNS[vendor]
	sort.Slice(variants, func(i, j int) bool {
		if times[variants[i].Hash] != times[variants[j].Hash] {
			return times[variants[i].Hash] < times[variants[j].Hash]
		}
		return variants[i].Hash < variants[j].Hash
	})
	n := (len(variants) + 9) / 10 // ceil(10%), at least 1
	if n < 1 {
		n = 1
	}
	withFlag := 0
	for _, v := range variants[:n] {
		// A variant corresponds to many flag settings; attribute the flag
		// if a majority of the settings that produce this variant set it.
		set := 0
		for _, fs := range v.FlagSets {
			if fs.Has(f) {
				set++
			}
		}
		if set*2 >= len(v.FlagSets) {
			withFlag++
		}
	}
	return withFlag*2 >= n
}

// FlagIsolation computes Figure 9: the speedup distribution of each flag
// alone relative to the all-off LunarGlass baseline (so codegen artefacts
// cancel out, §VI-D).
func (s *Sweep) FlagIsolation(vendor string) map[core.Flags][]float64 {
	out := map[core.Flags][]float64{}
	for _, f := range passes.FlagList() {
		var speeds []float64
		for _, r := range s.Results {
			base := r.NSFor(vendor, core.NoFlags)
			solo := r.NSFor(vendor, f)
			speeds = append(speeds, harness.Speedup(base, solo))
		}
		out[f] = speeds
	}
	return out
}

// SpeedupDistribution returns the per-shader speedups of one flag set vs
// the original across all shaders (Fig. 3 right: the Mali histogram).
func (s *Sweep) SpeedupDistribution(vendor string, flags core.Flags) []float64 {
	var out []float64
	for _, r := range s.Results {
		out = append(out, r.SpeedupFor(vendor, flags))
	}
	return out
}

// ResultFor returns the result for a named shader, or nil.
func (s *Sweep) ResultFor(name string) *ShaderResult {
	for _, r := range s.Results {
		if r.Name() == name {
			return r
		}
	}
	return nil
}
