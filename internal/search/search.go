// Package search implements the paper's iterative-compilation study: the
// exhaustive evaluation of all 256 flag combinations for every corpus
// shader on every platform (§III-A), and the analyses behind Table I and
// Figures 3 and 5-9.
//
// The study is compile-once / measure-many, so it is built on compiled
// handles (core.Shader) and a Session: the handle caches the lowered IR
// and the deduplicated variant enumeration, and the Session owns a
// concurrency-safe measurement cache keyed by (vendor, source hash,
// protocol) plus a cached ES-conversion table, so each distinct variant
// is measured exactly once no matter how many shaders, flag sets, or
// sweeps share it.
package search

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"shaderopt/internal/core"
	"shaderopt/internal/corpus"
	"shaderopt/internal/crossc"
	"shaderopt/internal/gpu"
	"shaderopt/internal/harness"
	"shaderopt/internal/ir"
	"shaderopt/internal/lru"
	"shaderopt/internal/passes"
)

// ShaderResult holds one shader's exhaustive measurements.
type ShaderResult struct {
	// Handle is the compiled shader the measurements were derived from.
	Handle *core.Shader
	// Shader is the corpus entry when the sweep came from Run; nil for
	// sweeps over raw handles.
	Shader   *corpus.Shader
	Variants *core.VariantSet
	// OrigNS is the measured time of the unmodified original source per
	// platform vendor.
	OrigNS map[string]float64
	// VariantNS maps vendor -> variant hash -> measured time.
	VariantNS map[string]map[string]float64
}

// Name returns the shader's study name.
func (r *ShaderResult) Name() string { return r.Handle.Name }

// NSFor returns the measured time of the variant produced by flags.
func (r *ShaderResult) NSFor(vendor string, flags core.Flags) float64 {
	v := r.Variants.VariantFor(flags)
	return r.VariantNS[vendor][v.Hash]
}

// SpeedupFor returns the % speedup of the flags variant vs the original.
func (r *ShaderResult) SpeedupFor(vendor string, flags core.Flags) float64 {
	return harness.Speedup(r.OrigNS[vendor], r.NSFor(vendor, flags))
}

// BestVariant returns the fastest variant and its time.
func (r *ShaderResult) BestVariant(vendor string) (*core.Variant, float64) {
	var best *core.Variant
	bestNS := 0.0
	for _, v := range r.Variants.Variants {
		ns := r.VariantNS[vendor][v.Hash]
		if best == nil || ns < bestNS {
			best, bestNS = v, ns
		}
	}
	return best, bestNS
}

// BestSpeedup returns the best-per-shader % speedup vs the original.
func (r *ShaderResult) BestSpeedup(vendor string) float64 {
	_, ns := r.BestVariant(vendor)
	return harness.Speedup(r.OrigNS[vendor], ns)
}

// Sweep is the full study result.
type Sweep struct {
	Platforms []*gpu.Platform
	Results   []*ShaderResult
	Cfg       harness.Config

	// bestStatic memoizes BestStaticFlags per vendor: the argmax is a full
	// 256×shaders scan and every Fig. 5/6/7 analysis needs it.
	staticMu   sync.Mutex
	bestStatic map[string]staticBest
}

type staticBest struct {
	flags core.Flags
	mean  float64
}

// SweepEvent is one progress report from a running sweep, streamed through
// the Options.OnEvent / Session.Sweep callback as each shader completes.
type SweepEvent struct {
	// Shader is the completed shader's name.
	Shader string
	// Done and Total count completed shaders and the sweep size.
	Done, Total int
	// UniqueVariants is the shader's deduplicated variant count (Fig. 4c).
	UniqueVariants int
	// Measured counts the measurements this shader actually ran; CacheHits
	// counts the ones the session cache already had.
	Measured, CacheHits int
	// Workers is the session's worker-pool size — the shard width the
	// enumeration trie walk and the shader fan-out ran at.
	Workers int
	// EnumCached reports that the variant set came from the session's
	// enumeration cache instead of being enumerated for this event.
	EnumCached bool
	// EnumMS is the wall-clock milliseconds enumeration took for this
	// shader (~0 when EnumCached).
	EnumMS float64
}

// DefaultCacheBound is the session cache budget when Options.CacheBound
// is zero: the enumeration cache may hold this many variants (LRU by
// variant count) and the driver-lowering cache the same number of
// lowered programs. It is sized for a corpus-scale working set (64
// shaders at the full 256 combinations) while keeping a long-lived
// sweep service's memory flat.
const DefaultCacheBound = 64 * 256

// Options configures a sweep run.
type Options struct {
	Cfg harness.Config
	// Workers bounds parallelism (0 = GOMAXPROCS): the shader fan-out of
	// Sweep and the shard width of the memoized variant enumeration.
	Workers int
	// CacheBound bounds the session's enumeration cache (in variants) and
	// driver-lowering cache (in programs). 0 means DefaultCacheBound;
	// negative disables eviction.
	CacheBound int
	// OnEvent, when non-nil, receives a SweepEvent as each shader
	// completes. Callbacks are serialized.
	OnEvent func(SweepEvent)
}

// Session owns the shared state of a measurement campaign: the protocol,
// the platform roster, a concurrency-safe measurement cache keyed by
// (vendor, source hash, protocol), a cached ES-conversion table, and two
// LRU-bounded caches — variant enumerations (evicted by variant count)
// and canonicalized driver-front-end lowerings — so a long-lived sweep
// service's memory stays flat at corpus scale. All methods are safe for
// concurrent use; cached measurements are sound because the harness is
// deterministic per (vendor, source, protocol).
type Session struct {
	cfg       harness.Config
	workers   int
	platforms []*gpu.Platform

	meas sync.Map // measKey -> *measEntry
	es   sync.Map // desktop source hash -> *esEntry

	// lowered caches the canonicalized driver-front-end lowering per
	// distinct effective source; enums caches variant enumerations per
	// (lang, source hash). Both are LRU-evicted: on a racing miss two
	// goroutines may redundantly compute the same deterministic value,
	// which is benign, unlike unbounded growth.
	lowered *lru.Cache[string, *ir.Program]
	enums   *lru.Cache[enumKey, *core.VariantSet]

	hits, misses atomic.Int64
}

// enumKey identifies one enumeration: the resolved source language and
// the source content hash (the base IR is a pure function of both).
type enumKey struct {
	lang core.Lang
	hash string
}

type measKey struct {
	vendor string
	hash   string
	cfg    harness.Config
}

type measEntry struct {
	once sync.Once
	ns   float64
	err  error
}

type esEntry struct {
	once sync.Once
	src  string
	err  error
}

// NewSession creates a measurement session for the given platforms.
func NewSession(platforms []*gpu.Platform, opts Options) *Session {
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	bound := opts.CacheBound
	switch {
	case bound == 0:
		bound = DefaultCacheBound
	case bound < 0:
		bound = 0 // lru treats 0 as unbounded
	}
	return &Session{
		cfg:       opts.Cfg,
		workers:   workers,
		platforms: platforms,
		lowered:   lru.New[string, *ir.Program](bound),
		enums:     lru.New[enumKey, *core.VariantSet](bound),
	}
}

// Config returns the session's measurement protocol.
func (s *Session) Config() harness.Config { return s.cfg }

// Platforms returns the session's platform roster.
func (s *Session) Platforms() []*gpu.Platform { return s.platforms }

// Workers returns the session's worker-pool size: the shader fan-out of
// Sweep and the shard width of the memoized variant enumeration.
func (s *Session) Workers() int { return s.workers }

// CacheStats returns how many measurements the session served from cache
// and how many it actually ran.
func (s *Session) CacheStats() (hits, misses int64) {
	return s.hits.Load(), s.misses.Load()
}

// EnumCacheStats reports the enumeration cache's occupancy: cached
// enumerations, their summed variant count (the eviction cost metric),
// and the configured bound (0 = unbounded).
func (s *Session) EnumCacheStats() (entries, variants, bound int) {
	return s.enums.Len(), s.enums.Cost(), s.enums.Bound()
}

// LoweredCacheStats reports the driver-lowering cache's occupancy and
// bound (0 = unbounded).
func (s *Session) LoweredCacheStats() (entries, bound int) {
	return s.lowered.Len(), s.lowered.Bound()
}

// Variants returns the handle's variant enumeration through the session's
// LRU cache, enumerating on a miss with the trie walk sharded across the
// session's worker pool. The bool reports a cache hit. Results are
// identical for any worker count, so sharing across callers is sound.
// An enumeration whose variant count exceeds the cache bound is computed
// but not admitted (it would evict everything else); it stays memoized on
// the handle itself, so only fresh handles for such a shader re-enumerate.
func (s *Session) Variants(h *core.Shader) (*core.VariantSet, bool) {
	key := enumKey{lang: h.Lang, hash: h.Hash}
	if vs, ok := s.enums.Get(key); ok {
		return vs, true
	}
	vs := h.VariantsN(s.workers)
	s.enums.Add(key, vs, vs.Unique())
	return vs, false
}

// esFor returns the cached GLES conversion of desktop GLSL source,
// converting at most once per distinct source across all platforms and
// shaders. handle, when non-nil, marks src as the exact text the handle's
// IR was lowered from, letting a miss convert from the cached IR instead
// of re-parsing the text (identical output: ToES is ESFromIR of the
// text's lowering).
func (s *Session) esFor(src, hash string, handle *core.Shader) (string, error) {
	e, _ := s.es.LoadOrStore(hash, &esEntry{})
	entry := e.(*esEntry)
	entry.once.Do(func() {
		if handle != nil {
			entry.src, entry.err = crossc.ESFromIR(handle.IR(), "mobile")
			return
		}
		entry.src, entry.err = crossc.ToES(src, "mobile")
	})
	return entry.src, entry.err
}

// measure returns the cached score for (platform, source, protocol),
// measuring on a miss. handle, when non-nil, marks src as the exact text
// the handle's IR was lowered from, letting the driver consume the cached
// IR instead of re-parsing; generated text always goes through the driver
// front end so it keeps the paper's textual-interchange artefacts.
// The bool reports whether the value came from cache.
func (s *Session) measure(pl *gpu.Platform, src, hash string, handle *core.Shader) (float64, bool, error) {
	key := measKey{vendor: pl.Vendor, hash: hash, cfg: s.cfg}
	e, _ := s.meas.LoadOrStore(key, &measEntry{})
	entry := e.(*measEntry)
	hit := true
	entry.once.Do(func() {
		hit = false
		entry.ns, entry.err = s.measureMiss(pl, src, hash, handle)
	})
	if hit {
		s.hits.Add(1)
	} else {
		s.misses.Add(1)
	}
	return entry.ns, hit, entry.err
}

// loweredFor returns the cached, canonicalized driver-front-end lowering
// of one distinct source: parsed and lowered once per cache residency
// across all platforms (the simulated drivers share one front end, as
// real drivers share Mesa's), then taken through the vendor-independent
// first canonicalization fixed point every driver pipeline starts with.
// Canonicalization is idempotent, so handing each driver a clone of the
// fixed point leaves its output bit-identical while the expensive
// multi-iteration run happens once instead of once per platform. produce
// supplies the lowering on a miss; callers must clone the returned
// program before handing it to a driver pipeline. The cache is
// LRU-bounded: after eviction (or on a racing miss) the lowering is
// recomputed, bit-identically, so eviction trades only time for memory.
func (s *Session) loweredFor(hash string, produce func() (*ir.Program, error)) (*ir.Program, error) {
	if prog, ok := s.lowered.Get(hash); ok {
		return prog, nil
	}
	prog, err := produce()
	if err != nil {
		return nil, err
	}
	passes.Canonicalize(prog)
	s.lowered.Add(hash, prog, 1)
	return prog, nil
}

func parseForDriver(src string) (*ir.Program, error) {
	prog, err := gpu.FrontEnd(src, "driver")
	if err != nil {
		return nil, fmt.Errorf("driver front end: %w", err)
	}
	return prog, nil
}

func (s *Session) measureMiss(pl *gpu.Platform, src, hash string, handle *core.Shader) (float64, error) {
	effective, effHash := src, hash
	if pl.Mobile {
		es, err := s.esFor(src, hash, handle)
		if err != nil {
			return 0, fmt.Errorf("mobile conversion: %w", err)
		}
		effective, effHash = es, core.HashSource(es)
	}
	produce := func() (*ir.Program, error) { return parseForDriver(effective) }
	if handle != nil && !pl.Mobile {
		// src is the exact text the handle's IR was lowered from: on a
		// miss, clone the cached IR instead of re-parsing.
		produce = func() (*ir.Program, error) { return handle.IR(), nil }
	}
	base, err := s.loweredFor(effHash, produce)
	if err != nil {
		return 0, fmt.Errorf("%s driver: %w", pl.Vendor, err)
	}
	compiled := pl.Compile(base.Clone())
	return harness.MeasureCompiled(pl, compiled, src, s.cfg).Score(), nil
}

// Sweep runs the exhaustive study over compiled handles: every distinct
// variant of every shader measured on every session platform, each
// distinct (vendor, source, protocol) measurement performed exactly once.
// onEvent, when non-nil, receives per-shader progress (serialized).
// Results are deterministic: noise streams are seeded per (platform,
// source), independent of scheduling and caching.
func (s *Session) Sweep(handles []*core.Shader, onEvent func(SweepEvent)) (*Sweep, error) {
	results := make([]*ShaderResult, len(handles))
	errs := make([]error, len(handles))

	var wg sync.WaitGroup
	var done atomic.Int64
	var eventMu sync.Mutex
	sem := make(chan struct{}, s.workers)
	for i, h := range handles {
		wg.Add(1)
		go func(i int, h *core.Shader) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			var ev SweepEvent
			results[i], ev, errs[i] = s.sweepShader(h)
			if onEvent != nil && errs[i] == nil {
				eventMu.Lock()
				ev.Shader = h.Name
				ev.Done = int(done.Add(1))
				ev.Total = len(handles)
				ev.Workers = s.workers
				onEvent(ev)
				eventMu.Unlock()
			}
		}(i, h)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("%s: %w", handles[i].Name, err)
		}
	}
	return &Sweep{Platforms: s.platforms, Results: results, Cfg: s.cfg}, nil
}

// sweepShader measures one handle's original baseline and every distinct
// variant on every session platform, reporting per-shader sweep progress
// (variant counts, enumeration cost, measurement cache traffic).
func (s *Session) sweepShader(h *core.Shader) (r *ShaderResult, ev SweepEvent, err error) {
	enumStart := time.Now()
	vs, enumCached := s.Variants(h)
	ev.EnumCached = enumCached
	ev.EnumMS = float64(time.Since(enumStart).Nanoseconds()) / 1e6
	ev.UniqueVariants = vs.Unique()
	// The unmodified-original baseline is the source the driver would see
	// without the offline optimizer: the author's GLSL text, or for WGSL
	// the frontend's unoptimized translation — which the enumeration just
	// produced as the all-flags-off variant. In the WGSL case the variant
	// loop below shares the measurement through the session cache.
	origSrc, origHash, origHandle := h.Source, h.Hash, h
	if h.Lang == core.LangWGSL {
		v := vs.VariantFor(core.NoFlags)
		origSrc, origHash, origHandle = v.Source, v.Hash, nil
	}
	r = &ShaderResult{
		Handle:    h,
		Variants:  vs,
		OrigNS:    map[string]float64{},
		VariantNS: map[string]map[string]float64{},
	}
	count := func(hit bool) {
		if hit {
			ev.CacheHits++
		} else {
			ev.Measured++
		}
	}
	for _, pl := range s.platforms {
		ns, hit, err := s.measure(pl, origSrc, origHash, origHandle)
		if err != nil {
			return nil, ev, fmt.Errorf("original on %s: %w", pl.Vendor, err)
		}
		count(hit)
		r.OrigNS[pl.Vendor] = ns
		perVariant := map[string]float64{}
		for _, v := range vs.Variants {
			ns, hit, err := s.measure(pl, v.Source, v.Hash, nil)
			if err != nil {
				return nil, ev, fmt.Errorf("variant %s on %s: %w", v.Hash, pl.Vendor, err)
			}
			count(hit)
			perVariant[v.Hash] = ns
		}
		r.VariantNS[pl.Vendor] = perVariant
	}
	return r, ev, nil
}

// Run executes the exhaustive study over the given corpus shaders and
// platforms: it compiles each shader to a handle (one frontend parse per
// shader) and sweeps them through a fresh Session. Results are
// deterministic: noise streams are seeded per (platform, shader, variant),
// independent of scheduling.
func Run(shaders []*corpus.Shader, platforms []*gpu.Platform, opts Options) (*Sweep, error) {
	handles := make([]*core.Shader, len(shaders))
	for i, sh := range shaders {
		h, err := core.Compile(sh.Source, sh.Name, sh.Lang)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", sh.Name, err)
		}
		handles[i] = h
	}
	sweep, err := NewSession(platforms, opts).Sweep(handles, opts.OnEvent)
	if err != nil {
		return nil, err
	}
	for i, r := range sweep.Results {
		r.Shader = shaders[i]
	}
	return sweep, nil
}

// --- Analyses ---

// BestStaticFlags returns the single flag combination maximizing the mean
// speedup across all shaders for the vendor (Table I). The argmax is a
// full 256×shaders scan, so it is computed once per vendor and memoized;
// the memo is safe for concurrent use.
func (s *Sweep) BestStaticFlags(vendor string) (core.Flags, float64) {
	s.staticMu.Lock()
	defer s.staticMu.Unlock()
	if best, ok := s.bestStatic[vendor]; ok {
		return best.flags, best.mean
	}
	bestFlags := core.NoFlags
	bestMean := -1e18
	for _, flags := range passes.AllCombinations() {
		sum := 0.0
		for _, r := range s.Results {
			sum += r.SpeedupFor(vendor, flags)
		}
		mean := sum / float64(len(s.Results))
		if mean > bestMean {
			bestMean, bestFlags = mean, flags
		}
	}
	if s.bestStatic == nil {
		s.bestStatic = map[string]staticBest{}
	}
	s.bestStatic[vendor] = staticBest{flags: bestFlags, mean: bestMean}
	return bestFlags, bestMean
}

// MeanSpeedups computes Figure 5's three bars for a vendor: best per
// shader, default LunarGlass flags, and the best static flag set.
type MeanSpeedups struct {
	Vendor     string
	Best       float64
	Default    float64
	BestStatic float64
	StaticSet  core.Flags
}

// MeanSpeedups returns the Fig. 5 aggregates for a vendor.
func (s *Sweep) MeanSpeedups(vendor string) MeanSpeedups {
	staticSet, staticMean := s.BestStaticFlags(vendor)
	out := MeanSpeedups{Vendor: vendor, BestStatic: staticMean, StaticSet: staticSet}
	for _, r := range s.Results {
		out.Best += r.BestSpeedup(vendor)
		out.Default += r.SpeedupFor(vendor, core.DefaultFlags)
	}
	n := float64(len(s.Results))
	out.Best /= n
	out.Default /= n
	return out
}

// PerShaderSpeedups returns, for each shader, (best, default, best-static)
// speedups on a vendor, sorted descending by best — the data behind
// Figures 6 and 7.
type PerShader struct {
	Name                      string
	Best, Default, BestStatic float64
}

// PerShaderSpeedups computes the per-shader series for a vendor.
func (s *Sweep) PerShaderSpeedups(vendor string) []PerShader {
	staticSet, _ := s.BestStaticFlags(vendor)
	out := make([]PerShader, 0, len(s.Results))
	for _, r := range s.Results {
		out = append(out, PerShader{
			Name:       r.Name(),
			Best:       r.BestSpeedup(vendor),
			Default:    r.SpeedupFor(vendor, core.DefaultFlags),
			BestStatic: r.SpeedupFor(vendor, staticSet),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Best > out[j].Best })
	return out
}

// Top30Mean returns Figure 6's value: the mean best speedup over the 30
// most-improved shaders.
func (s *Sweep) Top30Mean(vendor string) float64 {
	per := s.PerShaderSpeedups(vendor)
	n := 30
	if len(per) < n {
		n = len(per)
	}
	sum := 0.0
	for _, p := range per[:n] {
		sum += p.Best
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// FlagApplicability is Figure 8's three bars for one flag.
type FlagApplicability struct {
	Flag core.Flags
	// Total shaders studied (blue).
	Total int
	// ChangesCode counts shaders where toggling the flag changes the
	// generated source for some setting of the other flags (red).
	ChangesCode int
	// InOptimalSet counts shaders where the flag is included in at least
	// half of the optimal 10% of variants (green).
	InOptimalSet map[string]int // per vendor
}

// FlagApplicabilities computes Fig. 8 for all flags.
func (s *Sweep) FlagApplicabilities() []FlagApplicability {
	var out []FlagApplicability
	for _, f := range passes.FlagList() {
		fa := FlagApplicability{Flag: f, Total: len(s.Results), InOptimalSet: map[string]int{}}
		for _, r := range s.Results {
			if r.Variants.FlagChangesOutput(f) {
				fa.ChangesCode++
			}
			for _, pl := range s.Platforms {
				if flagInOptimalTenth(r, pl.Vendor, f) {
					fa.InOptimalSet[pl.Vendor]++
				}
			}
		}
		out = append(out, fa)
	}
	return out
}

// flagInOptimalTenth implements the paper's Fig. 8 green criterion: the
// flag is included for at least half of the optimal 10% of variants for
// that shader.
func flagInOptimalTenth(r *ShaderResult, vendor string, f core.Flags) bool {
	variants := append([]*core.Variant(nil), r.Variants.Variants...)
	times := r.VariantNS[vendor]
	sort.Slice(variants, func(i, j int) bool {
		if times[variants[i].Hash] != times[variants[j].Hash] {
			return times[variants[i].Hash] < times[variants[j].Hash]
		}
		return variants[i].Hash < variants[j].Hash
	})
	n := (len(variants) + 9) / 10 // ceil(10%), at least 1
	if n < 1 {
		n = 1
	}
	withFlag := 0
	for _, v := range variants[:n] {
		// A variant corresponds to many flag settings; attribute the flag
		// if a majority of the settings that produce this variant set it.
		set := 0
		for _, fs := range v.FlagSets {
			if fs.Has(f) {
				set++
			}
		}
		if set*2 >= len(v.FlagSets) {
			withFlag++
		}
	}
	return withFlag*2 >= n
}

// FlagIsolation computes Figure 9: the speedup distribution of each flag
// alone relative to the all-off LunarGlass baseline (so codegen artefacts
// cancel out, §VI-D).
func (s *Sweep) FlagIsolation(vendor string) map[core.Flags][]float64 {
	out := map[core.Flags][]float64{}
	for _, f := range passes.FlagList() {
		var speeds []float64
		for _, r := range s.Results {
			base := r.NSFor(vendor, core.NoFlags)
			solo := r.NSFor(vendor, f)
			speeds = append(speeds, harness.Speedup(base, solo))
		}
		out[f] = speeds
	}
	return out
}

// SpeedupDistribution returns the per-shader speedups of one flag set vs
// the original across all shaders (Fig. 3 right: the Mali histogram).
func (s *Sweep) SpeedupDistribution(vendor string, flags core.Flags) []float64 {
	var out []float64
	for _, r := range s.Results {
		out = append(out, r.SpeedupFor(vendor, flags))
	}
	return out
}

// ResultFor returns the result for a named shader, or nil.
func (s *Sweep) ResultFor(name string) *ShaderResult {
	for _, r := range s.Results {
		if r.Name() == name {
			return r
		}
	}
	return nil
}
