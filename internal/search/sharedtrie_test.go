package search

import (
	"testing"

	"shaderopt/internal/core"
	"shaderopt/internal/gpu"
	"shaderopt/internal/harness"
	"shaderopt/internal/store"
)

// trieTwinSources are renamed twins: identical structure, every
// identifier spelled differently. They lower to alpha-equivalent IRs, so
// a shared-trie session must answer the second shader's enumeration from
// the first's transitions.
const trieTwinA = `#version 330 core
uniform float gain;
in vec2 uv;
out vec4 fragColor;
void main() {
    float g = gain * uv.x + uv.y;
    float acc = 0.0;
    for (int i = 0; i < 4; i++) { acc = acc + g * float(i); }
    if (acc > 1.0) { acc = acc * 0.5; }
    fragColor = vec4(acc, g, g * acc, 1.0);
}`

const trieTwinB = `#version 330 core
uniform float intensity;
in vec2 texcoord;
out vec4 color_out;
void main() {
    float lum = intensity * texcoord.x + texcoord.y;
    float total = 0.0;
    for (int k = 0; k < 4; k++) { total = total + lum * float(k); }
    if (total > 1.0) { total = total * 0.5; }
    color_out = vec4(total, lum, lum * total, 1.0);
}`

// compileTwins returns fresh handles for the renamed twins (fresh every
// call: handles memoize their variant set, so each session must
// enumerate its own pair).
func compileTwins(t *testing.T) (*core.Shader, *core.Shader) {
	t.Helper()
	ha, err := core.Compile(trieTwinA, "twin/a", core.LangGLSL)
	if err != nil {
		t.Fatal(err)
	}
	hb, err := core.Compile(trieTwinB, "twin/b", core.LangGLSL)
	if err != nil {
		t.Fatal(err)
	}
	if core.FingerprintCanonical(ha.IR()) != core.FingerprintCanonical(hb.IR()) {
		t.Fatal("twins are not alpha-equivalent; test is vacuous")
	}
	if core.FingerprintIR(ha.IR()) == core.FingerprintIR(hb.IR()) {
		t.Fatal("twins share the spelling-sensitive fingerprint; test is vacuous")
	}
	return ha, hb
}

// assertVariantSetsIdentical pins byte identity between two enumerations
// of the same shader: same variants, same order, same sources, same
// flag-set partition.
func assertVariantSetsIdentical(t *testing.T, label string, got, want *core.VariantSet) {
	t.Helper()
	if got.Unique() != want.Unique() {
		t.Fatalf("%s: %d unique variants, want %d", label, got.Unique(), want.Unique())
	}
	for i, wv := range want.Variants {
		gv := got.Variants[i]
		if gv.Hash != wv.Hash || gv.Source != wv.Source {
			t.Fatalf("%s: variant %d differs (%s vs %s)", label, i, gv.Hash, wv.Hash)
		}
		if len(gv.FlagSets) != len(wv.FlagSets) {
			t.Fatalf("%s: variant %d flag-set count %d, want %d", label, i, len(gv.FlagSets), len(wv.FlagSets))
		}
		for k, fl := range wv.FlagSets {
			if gv.FlagSets[k] != fl {
				t.Fatalf("%s: variant %d flag set %d = %v, want %v", label, i, k, gv.FlagSets[k], fl)
			}
		}
	}
}

// TestSharedTrieRenamedTwins is the sharing pin for the cross-shader
// node table: a session enumerating renamed twins must (a) answer part
// of the second walk from the first (enum.shared.hits > 0) and (b)
// produce variant sets and sweep scores byte-identical to a session
// with the table disabled — sharing lives strictly at the transform
// level.
func TestSharedTrieRenamedTwins(t *testing.T) {
	desktop := gpu.Platforms()[:1]
	sharedSess := NewSession(desktop, Options{Cfg: harness.FastConfig(), Workers: 1})
	privateSess := NewSession(desktop, Options{Cfg: harness.FastConfig(), Workers: 1, DisableSharedTrie: true})
	if sharedSess.SharedTrie() == nil {
		t.Fatal("default session has no shared trie")
	}
	if privateSess.SharedTrie() != nil {
		t.Fatal("DisableSharedTrie left a table attached")
	}

	sa, sb := compileTwins(t)
	pa, pb := compileTwins(t)
	sharedSweep, err := sharedSess.Sweep([]*core.Shader{sa, sb}, nil)
	if err != nil {
		t.Fatal(err)
	}
	privateSweep, err := privateSess.Sweep([]*core.Shader{pa, pb}, nil)
	if err != nil {
		t.Fatal(err)
	}

	svA, _ := sharedSess.Variants(sa)
	pvA, _ := privateSess.Variants(pa)
	assertVariantSetsIdentical(t, "twin/a", svA, pvA)
	svB, _ := sharedSess.Variants(sb)
	pvB, _ := privateSess.Variants(pb)
	assertVariantSetsIdentical(t, "twin/b", svB, pvB)

	hits := sharedSess.Telemetry().Counter("enum.shared.hits").Value()
	if hits == 0 {
		t.Error("enum.shared.hits = 0: the twins' walks shared nothing")
	}
	if n := privateSess.Telemetry().Counter("enum.shared.hits").Value(); n != 0 {
		t.Errorf("private session recorded %d shared hits", n)
	}
	if sharedSess.SharedTrie().Len() == 0 {
		t.Error("shared table is empty after two enumerations")
	}

	for i, wr := range privateSweep.Results {
		gr := sharedSweep.Results[i]
		for _, pl := range desktop {
			if gr.OrigNS[pl.Vendor] != wr.OrigNS[pl.Vendor] {
				t.Errorf("%s orig: shared %v != private %v", wr.Name(), gr.OrigNS[pl.Vendor], wr.OrigNS[pl.Vendor])
			}
			for hash, ns := range wr.VariantNS[pl.Vendor] {
				if gr.VariantNS[pl.Vendor][hash] != ns {
					t.Errorf("%s variant %s: shared %v != private %v", wr.Name(), hash, gr.VariantNS[pl.Vendor][hash], ns)
				}
			}
		}
	}
}

// TestSharedTriePersistsAcrossSessions pins the store-backed half: a
// fresh session over a warm store answers no-op transitions from
// persisted nodes (full hits — the pass is skipped) even though no IR
// survives a restart, and the variant sets stay byte-identical.
func TestSharedTriePersistsAcrossSessions(t *testing.T) {
	dir := t.TempDir()
	st1, err := store.Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	warm := NewSession(gpu.Platforms()[:1], Options{Cfg: harness.FastConfig(), Workers: 1, Store: st1})
	wa, _ := compileTwins(t)
	wv, _ := warm.Variants(wa)
	if err := st1.Sync(); err != nil {
		t.Fatal(err)
	}

	st2, err := store.Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	// A fresh session and a fresh handle: the only warmth is the store.
	cold := NewSession(gpu.Platforms()[:1], Options{Cfg: harness.FastConfig(), Workers: 1, Store: st2})
	ca, _ := compileTwins(t)
	cv, _ := cold.Variants(ca)
	assertVariantSetsIdentical(t, "warm-store twin/a", cv, wv)
	if hits := cold.Telemetry().Counter("enum.shared.hits").Value(); hits == 0 {
		t.Error("enum.shared.hits = 0 over a warm store: persisted no-op nodes not consulted")
	}
}
