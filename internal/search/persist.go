package search

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"math"

	"shaderopt/internal/gpu"
	"shaderopt/internal/isa"
	"shaderopt/internal/store"
	"shaderopt/internal/telemetry"
)

// This file is the session's persistence layer: the read-through /
// write-through glue between the in-memory LRUs and an optional
// internal/store on-disk cache (Options.Store). Two artefact families
// persist, exactly the two that dominate sweep cost and survive
// restarts soundly:
//
//   - driver compiles, keyed (vendor, ingestion format, canonical IR
//     fingerprint): a gpu.Compiled is a pure function of program
//     structure and the ingestion round trip at the pipeline's head,
//     and the canonical fingerprint is name-insensitive, so entries are
//     shared across sessions, processes, and frontends — and a platform
//     whose ingestion assignment changes can never read a stale entry
//     compiled under the old format;
//   - measurement scores, keyed (vendor, source hash, protocol): noise
//     streams are seeded from the source text, so the key must be the
//     text's hash — the same key the in-memory score cache uses — and
//     the protocol must be part of it, since every harness.Config field
//     changes the sampled score.
//
// Store payloads are deterministic recomputations; a corrupt or stale
// entry degrades to a miss inside the store, and a failed write-through
// degrades to not caching (counted on store.write_errors), so the
// persistent layer can only ever cost time, never correctness.

// storeCompilePrefix, storeMeasPrefix, and storeTriePrefix namespace the
// artefact families inside one store. Keys are hashed before hitting the
// disk, so the NUL separators are purely to make collisions impossible,
// not a file-naming concern.
const (
	storeCompilePrefix = "compile\x00"
	storeMeasPrefix    = "meas\x00"
	storeTriePrefix    = "trie\x00"
)

// storedCompiled is the serialized form of a gpu.Compiled: every field
// except the Platform pointer, which the reader re-attaches (the vendor
// is part of the store key, so an entry is only ever decoded for the
// platform that produced it).
type storedCompiled struct {
	Stats             isa.Stats
	Arith             float64
	LoadStore         float64
	Texture           float64
	Overhead          float64
	CyclesPerFragment float64
}

// protoKey renders the session's measurement protocol as a stable store
// key component. Every harness.Config field participates: two protocols
// differing in any knob sample different scores.
func (s *Session) protoKey() string {
	c := s.cfg
	return fmt.Sprintf("%d:%d:%d:%d:%d:%d",
		c.Fragments, c.DesktopDraws, c.MobileDraws, c.Frames, c.Repeats, c.Seed)
}

// compileStoreKey renders the store key for one driver compile: the
// vendor, its ingestion format, and the canonical fingerprint of the
// program the pipeline consumed.
func compileStoreKey(pl *gpu.Platform, fp string) string {
	return storeCompilePrefix + pl.Vendor + "\x00" + pl.Ingest + "\x00" + fp
}

// storeGetCompiled reads a persisted driver compile for (vendor,
// ingestion format, canonical fingerprint), re-attaching the platform.
// Absent store, any store miss, or an undecodable payload reports a
// miss.
func (s *Session) storeGetCompiled(pl *gpu.Platform, fp string) (*gpu.Compiled, bool) {
	if s.store == nil {
		return nil, false
	}
	payload, ok := s.store.Get(compileStoreKey(pl, fp))
	if !ok {
		return nil, false
	}
	var sc storedCompiled
	if err := json.Unmarshal(payload, &sc); err != nil {
		s.storeWriteErrs.Inc() // decode failure past the checksum: count, degrade to miss
		return nil, false
	}
	return &gpu.Compiled{
		Platform:          pl,
		Stats:             sc.Stats,
		Arith:             sc.Arith,
		LoadStore:         sc.LoadStore,
		Texture:           sc.Texture,
		Overhead:          sc.Overhead,
		CyclesPerFragment: sc.CyclesPerFragment,
	}, true
}

// storePutCompiled persists a driver compile. Write failures degrade to
// not caching.
func (s *Session) storePutCompiled(pl *gpu.Platform, fp string, c *gpu.Compiled) {
	if s.store == nil {
		return
	}
	payload, err := json.Marshal(storedCompiled{
		Stats:             c.Stats,
		Arith:             c.Arith,
		LoadStore:         c.LoadStore,
		Texture:           c.Texture,
		Overhead:          c.Overhead,
		CyclesPerFragment: c.CyclesPerFragment,
	})
	if err == nil {
		err = s.store.Put(compileStoreKey(pl, fp), payload)
	}
	if err != nil {
		s.storeWriteErrs.Inc()
	}
}

// storeGetScore reads a persisted measurement score for (vendor, source
// hash, protocol). The payload is the score's exact IEEE-754 bits, so a
// store round trip is bit-identical to the original measurement.
func (s *Session) storeGetScore(vendor, hash string) (float64, bool) {
	if s.store == nil {
		return 0, false
	}
	payload, ok := s.store.Get(storeMeasPrefix + vendor + "\x00" + hash + "\x00" + s.protoKey())
	if !ok || len(payload) != 8 {
		return 0, false
	}
	return math.Float64frombits(binary.BigEndian.Uint64(payload)), true
}

// storePutScore persists one measurement score.
func (s *Session) storePutScore(vendor, hash string, ns float64) {
	if s.store == nil {
		return
	}
	var payload [8]byte
	binary.BigEndian.PutUint64(payload[:], math.Float64bits(ns))
	if err := s.store.Put(storeMeasPrefix+vendor+"\x00"+hash+"\x00"+s.protoKey(), payload[:]); err != nil {
		s.storeWriteErrs.Inc()
	}
}

// trieStore is the third persisted artefact family: shared trie-node
// outcomes (core.TriePersist), keyed by the core-rendered transition key
// (step index + flag bit + canonical parent fingerprint — the step
// identity is in the key, so a reordered pipeline can never consume a
// stale entry). The payload is one no-op byte plus the child's canonical
// fingerprint; a no-op read back on a warm start skips the pass outright,
// and the usual degradation rules apply (corrupt entry → miss, failed
// write → not cached, both without affecting results).
type trieStore struct {
	st        *store.Store
	writeErrs *telemetry.Counter
}

func (t trieStore) GetNode(key string) (noop bool, childCFP string, ok bool) {
	payload, ok := t.st.Get(storeTriePrefix + key)
	if !ok || len(payload) < 1 || payload[0] > 1 {
		return false, "", false
	}
	return payload[0] == 1, string(payload[1:]), true
}

func (t trieStore) PutNode(key string, noop bool, childCFP string) {
	payload := make([]byte, 1+len(childCFP))
	if noop {
		payload[0] = 1
	}
	copy(payload[1:], childCFP)
	if err := t.st.Put(storeTriePrefix+key, payload); err != nil {
		t.writeErrs.Inc()
	}
}
