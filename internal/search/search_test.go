package search

import (
	"fmt"
	"sync"
	"testing"

	"shaderopt/internal/core"
	"shaderopt/internal/corpus"
	"shaderopt/internal/gpu"
	"shaderopt/internal/harness"
	"shaderopt/internal/passes"
)

// sweepNames is the behaviour-diverse study subset; -short trims it to
// the three shaders the property tests need (a loop shader for Unroll, a
// matrix shader for the scalarization artefact, and a WGSL shader for
// cross-frontend coverage).
func sweepNames() []string {
	if testing.Short() {
		return []string{"blur/v9", "projtex/compose", "wgsl/ripple"}
	}
	return []string{"blur/v9", "ui/flat", "simple/luma", "alu/d3", "projtex/compose", "relief/basic", "wgsl/ripple"}
}

func sweepSubset() ([]*corpus.Shader, error) {
	all, err := corpus.Load()
	if err != nil {
		return nil, err
	}
	var shaders []*corpus.Shader
	for _, name := range sweepNames() {
		s := corpus.ByName(all, name)
		if s == nil {
			return nil, fmt.Errorf("missing corpus shader %s", name)
		}
		shaders = append(shaders, s)
	}
	return shaders, nil
}

// The sweep is deterministic (and read-only for every assertion below),
// so the exhaustive study runs once and is shared across tests;
// TestSweepDeterministic still runs its own fresh sweeps.
var (
	sweepOnce   sync.Once
	cachedSweep *Sweep
	cachedErr   error
)

func miniSweep(t *testing.T) *Sweep {
	t.Helper()
	// No t.Fatal inside the Once: a Goexit would mark it done with both
	// cache slots nil and every later caller would panic instead of
	// reporting the original failure.
	sweepOnce.Do(func() {
		shaders, err := sweepSubset()
		if err != nil {
			cachedErr = err
			return
		}
		cachedSweep, cachedErr = Run(shaders, gpu.Platforms(), Options{Cfg: harness.FastConfig()})
	})
	if cachedErr != nil {
		t.Fatal(cachedErr)
	}
	return cachedSweep
}

func freshSweep(t *testing.T) *Sweep {
	t.Helper()
	shaders, err := sweepSubset()
	if err != nil {
		t.Fatal(err)
	}
	sweep, err := Run(shaders, gpu.Platforms(), Options{Cfg: harness.FastConfig()})
	if err != nil {
		t.Fatal(err)
	}
	return sweep
}

func TestSweepRunsAndIsComplete(t *testing.T) {
	sweep := miniSweep(t)
	if len(sweep.Results) != len(sweepNames()) {
		t.Fatalf("results = %d, want %d", len(sweep.Results), len(sweepNames()))
	}
	for _, r := range sweep.Results {
		for _, pl := range sweep.Platforms {
			if r.OrigNS[pl.Vendor] <= 0 {
				t.Errorf("%s on %s: no original time", r.Shader.Name, pl.Vendor)
			}
			for _, v := range r.Variants.Variants {
				if r.VariantNS[pl.Vendor][v.Hash] <= 0 {
					t.Errorf("%s on %s: missing variant time", r.Shader.Name, pl.Vendor)
				}
			}
		}
	}
}

func TestSweepDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("two fresh exhaustive sweeps are slow")
	}
	a := freshSweep(t)
	b := freshSweep(t)
	for i := range a.Results {
		for vendor, ns := range a.Results[i].OrigNS {
			if b.Results[i].OrigNS[vendor] != ns {
				t.Fatalf("nondeterministic sweep: %s %s", a.Results[i].Shader.Name, vendor)
			}
		}
	}
}

func TestBestSpeedupNeverNegative(t *testing.T) {
	// The best variant can always fall back to the all-off output, but the
	// BASELINE is the unmodified original, so best speedup can be negative
	// only when every variant (including all-off) is slower — the
	// artefact-dominated shaders. Check both cases exist in the subset.
	sweep := miniSweep(t)
	sawPositive := false
	for _, r := range sweep.Results {
		for _, pl := range sweep.Platforms {
			if r.BestSpeedup(pl.Vendor) > 1 {
				sawPositive = true
			}
		}
	}
	if !sawPositive {
		t.Error("no shader improved anywhere — sweep is broken")
	}
}

func TestMatrixShaderArtefactCanLose(t *testing.T) {
	// projtex/compose is matrix-heavy: the offline scalarization artefact
	// should make its all-off variant SLOWER than the original on at least
	// one desktop platform (§III-C: artefacts "could sometimes negatively
	// impact the code's performance").
	sweep := miniSweep(t)
	r := sweep.ResultFor("projtex/compose")
	lost := false
	for _, pl := range sweep.Platforms {
		if r.SpeedupFor(pl.Vendor, core.NoFlags) < -0.5 {
			lost = true
		}
	}
	if !lost {
		t.Error("matrix scalarization artefact shows no cost anywhere")
	}
}

func TestBestStaticFlags(t *testing.T) {
	sweep := miniSweep(t)
	flags, mean := sweep.BestStaticFlags("AMD")
	// The best static mean must be at least as good as any single flag set
	// we test by hand.
	for _, f := range []core.Flags{core.NoFlags, core.DefaultFlags, core.AllFlags} {
		sum := 0.0
		for _, r := range sweep.Results {
			sum += r.SpeedupFor("AMD", f)
		}
		if m := sum / float64(len(sweep.Results)); m > mean+1e-9 {
			t.Errorf("best static %v (%+.2f%%) beaten by %v (%+.2f%%)", flags, mean, f, m)
		}
	}
}

func TestMeanSpeedupsOrdering(t *testing.T) {
	sweep := miniSweep(t)
	for _, pl := range sweep.Platforms {
		ms := sweep.MeanSpeedups(pl.Vendor)
		if ms.Best < ms.BestStatic-1e-9 {
			t.Errorf("%s: best per shader %.3f below best static %.3f", pl.Vendor, ms.Best, ms.BestStatic)
		}
		if ms.BestStatic < ms.Default-1e-9 {
			t.Errorf("%s: best static %.3f below default %.3f", pl.Vendor, ms.BestStatic, ms.Default)
		}
	}
}

func TestPerShaderSpeedupsSorted(t *testing.T) {
	sweep := miniSweep(t)
	per := sweep.PerShaderSpeedups("ARM")
	for i := 1; i < len(per); i++ {
		if per[i].Best > per[i-1].Best {
			t.Error("per-shader list not sorted by best")
		}
	}
	if got := sweep.Top30Mean("ARM"); got < per[len(per)-1].Best {
		t.Error("top-30 mean below the weakest shader")
	}
}

func TestFlagApplicabilities(t *testing.T) {
	sweep := miniSweep(t)
	apps := sweep.FlagApplicabilities()
	if len(apps) != passes.NumFlags {
		t.Fatalf("apps = %d", len(apps))
	}
	byFlag := map[core.Flags]FlagApplicability{}
	for _, a := range apps {
		byFlag[a.Flag] = a
		if a.Total != len(sweep.Results) {
			t.Errorf("%v: total = %d", a.Flag, a.Total)
		}
		if a.ChangesCode > a.Total {
			t.Errorf("%v: changes > total", a.Flag)
		}
	}
	// §VI-D1: ADCE never changes the output.
	if byFlag[core.FlagADCE].ChangesCode != 0 {
		t.Errorf("ADCE changed code for %d shaders, paper says never", byFlag[core.FlagADCE].ChangesCode)
	}
	// Unroll must change the blur shader at least.
	if byFlag[core.FlagUnroll].ChangesCode == 0 {
		t.Error("unroll never changed code")
	}
}

func TestFlagIsolationBaselines(t *testing.T) {
	sweep := miniSweep(t)
	iso := sweep.FlagIsolation("Qualcomm")
	if len(iso) != passes.NumFlags {
		t.Fatalf("iso flags = %d", len(iso))
	}
	// ADCE-alone equals the all-off baseline modulo measurement noise.
	for _, v := range iso[core.FlagADCE] {
		if v > 1.5 || v < -1.5 {
			t.Errorf("ADCE isolated speedup %v%% should be measurement noise only", v)
		}
	}
	for f, speeds := range iso {
		if len(speeds) != len(sweep.Results) {
			t.Errorf("%v: %d samples", f, len(speeds))
		}
	}
}

func TestSpeedupDistribution(t *testing.T) {
	sweep := miniSweep(t)
	dist := sweep.SpeedupDistribution("ARM", core.AllFlags)
	if len(dist) != len(sweep.Results) {
		t.Fatalf("dist = %d", len(dist))
	}
}

func TestResultFor(t *testing.T) {
	sweep := miniSweep(t)
	if sweep.ResultFor("blur/v9") == nil {
		t.Error("blur/v9 missing")
	}
	if sweep.ResultFor("nope") != nil {
		t.Error("unexpected result")
	}
}

// --- Session / handle API ---

func compileSubset(t *testing.T) []*core.Shader {
	t.Helper()
	shaders, err := sweepSubset()
	if err != nil {
		t.Fatal(err)
	}
	handles := make([]*core.Shader, len(shaders))
	for i, sh := range shaders {
		h, err := core.Compile(sh.Source, sh.Name, sh.Lang)
		if err != nil {
			t.Fatal(err)
		}
		handles[i] = h
	}
	return handles
}

// TestSessionSweepMatchesLegacyMeasurement: the handle-based session sweep
// must produce byte-identical scores to the pre-handle semantics — every
// source measured through harness.MeasureSource, one call per (variant,
// platform) with no caching. The session's measurement cache, shared
// driver-front-end lowering, and IR-based measurement of originals must
// not change a single number.
func TestSessionSweepMatchesLegacyMeasurement(t *testing.T) {
	cfg := harness.FastConfig()
	sess := NewSession(gpu.Platforms(), Options{Cfg: cfg})
	got, err := sess.Sweep(compileSubset(t), nil)
	if err != nil {
		t.Fatal(err)
	}
	shaders, err := sweepSubset()
	if err != nil {
		t.Fatal(err)
	}
	for i, sh := range shaders {
		r := got.Results[i]
		if r.Name() != sh.Name {
			t.Fatalf("order differs: %s vs %s", r.Name(), sh.Name)
		}
		vs, err := core.EnumerateVariantsLang(sh.Source, sh.Name, sh.Lang)
		if err != nil {
			t.Fatal(err)
		}
		origSrc := sh.Source
		if sh.Lang.Resolve(sh.Source) == core.LangWGSL {
			origSrc = vs.VariantFor(core.NoFlags).Source
		}
		for _, pl := range gpu.Platforms() {
			m, err := harness.MeasureSource(pl, origSrc, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if r.OrigNS[pl.Vendor] != m.Score() {
				t.Errorf("%s orig on %s: %v != legacy %v", sh.Name, pl.Vendor, r.OrigNS[pl.Vendor], m.Score())
			}
			for _, v := range vs.Variants {
				vm, err := harness.MeasureSource(pl, v.Source, cfg)
				if err != nil {
					t.Fatal(err)
				}
				if r.VariantNS[pl.Vendor][v.Hash] != vm.Score() {
					t.Errorf("%s variant %s on %s: %v != legacy %v",
						sh.Name, v.Hash, pl.Vendor, r.VariantNS[pl.Vendor][v.Hash], vm.Score())
				}
			}
		}
	}
}

// TestSessionCacheAcrossSweeps: re-sweeping the same handles in one
// session must be served entirely from the measurement cache.
func TestSessionCacheAcrossSweeps(t *testing.T) {
	sess := NewSession(gpu.Platforms(), Options{Cfg: harness.FastConfig()})
	handles := compileSubset(t)
	if _, err := sess.Sweep(handles, nil); err != nil {
		t.Fatal(err)
	}
	_, missesBefore := sess.CacheStats()
	if missesBefore == 0 {
		t.Fatal("first sweep measured nothing")
	}
	if _, err := sess.Sweep(handles, nil); err != nil {
		t.Fatal(err)
	}
	_, missesAfter := sess.CacheStats()
	if missesAfter != missesBefore {
		t.Errorf("second sweep measured %d new variants, want 0", missesAfter-missesBefore)
	}
}

// TestSessionWGSLOriginalShared: a WGSL shader's original baseline is its
// all-flags-off translation, so the sweep must measure it once per
// platform, not twice.
func TestSessionWGSLOriginalShared(t *testing.T) {
	all, err := corpus.Load()
	if err != nil {
		t.Fatal(err)
	}
	ws := corpus.ByName(all, "wgsl/luma")
	if ws == nil {
		t.Fatal("missing wgsl/luma")
	}
	h, err := core.Compile(ws.Source, ws.Name, ws.Lang)
	if err != nil {
		t.Fatal(err)
	}
	sess := NewSession(gpu.Platforms(), Options{Cfg: harness.FastConfig()})
	sweep, err := sess.Sweep([]*core.Shader{h}, nil)
	if err != nil {
		t.Fatal(err)
	}
	hits, misses := sess.CacheStats()
	unique := sweep.Results[0].Variants.Unique()
	wantMisses := int64(unique * len(gpu.Platforms()))
	if misses != wantMisses {
		t.Errorf("misses = %d, want %d (one per variant per platform)", misses, wantMisses)
	}
	if hits != int64(len(gpu.Platforms())) {
		t.Errorf("hits = %d, want %d (original shared with all-off variant)", hits, len(gpu.Platforms()))
	}
}

// TestSweepEvents: one serialized event per shader with consistent
// bookkeeping.
func TestSweepEvents(t *testing.T) {
	sess := NewSession(gpu.Platforms(), Options{Cfg: harness.FastConfig()})
	handles := compileSubset(t)
	var events []SweepEvent
	if _, err := sess.Sweep(handles, func(ev SweepEvent) {
		events = append(events, ev)
	}); err != nil {
		t.Fatal(err)
	}
	if len(events) != len(handles) {
		t.Fatalf("events = %d, want %d", len(events), len(handles))
	}
	seen := map[string]bool{}
	for i, ev := range events {
		if ev.Total != len(handles) {
			t.Errorf("event %d: total = %d", i, ev.Total)
		}
		if ev.Done != i+1 {
			t.Errorf("event %d: done = %d, want %d", i, ev.Done, i+1)
		}
		if ev.UniqueVariants < 1 {
			t.Errorf("event %d: no variants", i)
		}
		if ev.Measured+ev.CacheHits < ev.UniqueVariants {
			t.Errorf("event %d: %d measured + %d cached < %d variants", i, ev.Measured, ev.CacheHits, ev.UniqueVariants)
		}
		seen[ev.Shader] = true
	}
	for _, h := range handles {
		if !seen[h.Name] {
			t.Errorf("no event for %s", h.Name)
		}
	}
}

// TestSweepSingleFrontendParsePerShader is the headline acceptance
// criterion: compiling N shaders costs N frontend parses, and the full
// exhaustive sweep over them costs zero more.
func TestSweepSingleFrontendParsePerShader(t *testing.T) {
	shaders, err := sweepSubset()
	if err != nil {
		t.Fatal(err)
	}
	before := core.FrontendParses()
	handles := make([]*core.Shader, len(shaders))
	for i, sh := range shaders {
		if handles[i], err = core.Compile(sh.Source, sh.Name, sh.Lang); err != nil {
			t.Fatal(err)
		}
	}
	if got := core.FrontendParses() - before; got != int64(len(shaders)) {
		t.Fatalf("compiling %d shaders performed %d parses", len(shaders), got)
	}
	sess := NewSession(gpu.Platforms(), Options{Cfg: harness.FastConfig()})
	if _, err := sess.Sweep(handles, nil); err != nil {
		t.Fatal(err)
	}
	if got := core.FrontendParses() - before; got != int64(len(shaders)) {
		t.Errorf("sweep re-parsed: %d total parses for %d shaders", got, len(shaders))
	}
}

// TestBestStaticFlagsMemoized: repeated analysis calls must agree (the
// memo) and remain consistent with a fresh scan on another vendor order.
func TestBestStaticFlagsMemoized(t *testing.T) {
	sweep := miniSweep(t)
	f1, m1 := sweep.BestStaticFlags("ARM")
	f2, m2 := sweep.BestStaticFlags("ARM")
	if f1 != f2 || m1 != m2 {
		t.Errorf("memoized result differs: %v/%v vs %v/%v", f1, m1, f2, m2)
	}
	// The memo must be per vendor.
	fi, _ := sweep.BestStaticFlags("Intel")
	f3, _ := sweep.BestStaticFlags("ARM")
	if f3 != f1 {
		t.Errorf("ARM result changed after Intel query: %v vs %v", f3, f1)
	}
	_ = fi
}

// --- sharded enumeration + LRU eviction ---

// TestSessionSweepWorkerInvariance pins the tentpole's scheduling
// independence at the session level: concurrent sweeps over one-worker and
// eight-worker sessions produce identical variant fingerprints and
// identical measurements for every shader.
func TestSessionSweepWorkerInvariance(t *testing.T) {
	shaders, err := sweepSubset()
	if err != nil {
		t.Fatal(err)
	}
	run := func(workers int) *Sweep {
		sweep, err := Run(shaders, gpu.Platforms(), Options{Cfg: harness.FastConfig(), Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		return sweep
	}
	one, eight := run(1), run(8)
	for i, r1 := range one.Results {
		r8 := eight.Results[i]
		if r1.Variants.Unique() != r8.Variants.Unique() {
			t.Fatalf("%s: unique %d vs %d across worker counts", r1.Name(), r1.Variants.Unique(), r8.Variants.Unique())
		}
		for j, v1 := range r1.Variants.Variants {
			if v8 := r8.Variants.Variants[j]; v8.Hash != v1.Hash {
				t.Fatalf("%s: variant %d hash %s vs %s across worker counts", r1.Name(), j, v1.Hash, v8.Hash)
			}
		}
		for _, pl := range one.Platforms {
			if r1.OrigNS[pl.Vendor] != r8.OrigNS[pl.Vendor] {
				t.Fatalf("%s: original time differs on %s across worker counts", r1.Name(), pl.Vendor)
			}
			for hash, ns := range r1.VariantNS[pl.Vendor] {
				if r8.VariantNS[pl.Vendor][hash] != ns {
					t.Fatalf("%s: variant %s time differs on %s across worker counts", r1.Name(), hash, pl.Vendor)
				}
			}
		}
	}
}

// TestConcurrentSessionVariants hammers one session's enumeration cache
// from many goroutines (exercised by the -race CI job) and checks every
// caller observes the same variant sets.
func TestConcurrentSessionVariants(t *testing.T) {
	shaders, err := sweepSubset()
	if err != nil {
		t.Fatal(err)
	}
	sess := NewSession(gpu.Platforms(), Options{Cfg: harness.FastConfig(), Workers: 4})
	handles := make([]*core.Shader, len(shaders))
	for i, s := range shaders {
		if handles[i], err = core.Compile(s.Source, s.Name, s.Lang); err != nil {
			t.Fatal(err)
		}
	}
	sets := make([][]*core.VariantSet, 6)
	var wg sync.WaitGroup
	for g := range sets {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			sets[g] = make([]*core.VariantSet, len(handles))
			for i, h := range handles {
				vs, _ := sess.Variants(h)
				sets[g][i] = vs
			}
		}(g)
	}
	wg.Wait()
	for g := 1; g < len(sets); g++ {
		for i := range handles {
			if sets[g][i].Unique() != sets[0][i].Unique() {
				t.Fatalf("goroutine %d saw %d variants for %s, goroutine 0 saw %d",
					g, sets[g][i].Unique(), handles[i].Name, sets[0][i].Unique())
			}
			for j, v := range sets[0][i].Variants {
				if sets[g][i].Variants[j].Hash != v.Hash {
					t.Fatalf("goroutine %d saw different variant %d for %s", g, j, handles[i].Name)
				}
			}
		}
	}
}

// TestEnumCacheNeverExceedsBound sweeps more variants than the configured
// cache budget through one session and checks the LRU invariant after
// every shader: the summed cached variant count stays at or below the
// bound, with older enumerations evicted rather than the bound stretched.
func TestEnumCacheNeverExceedsBound(t *testing.T) {
	shaders, err := sweepSubset()
	if err != nil {
		t.Fatal(err)
	}
	const bound = 12 // small enough that the subset must evict
	sess := NewSession(gpu.Platforms(), Options{Cfg: harness.FastConfig(), CacheBound: bound})
	for _, s := range shaders {
		h, err := core.Compile(s.Source, s.Name, s.Lang)
		if err != nil {
			t.Fatal(err)
		}
		sess.Variants(h)
		if _, variants, b := sess.EnumCacheStats(); b != bound || variants > bound {
			t.Fatalf("after %s: cached variants %d exceed bound %d", s.Name, variants, b)
		}
	}
	if entries, _, _ := sess.EnumCacheStats(); entries == 0 {
		t.Fatal("cache should retain the most recent enumerations")
	}
	if entries, b := sess.LoweredCacheStats(); b != DefaultCacheBound && entries > b {
		t.Fatalf("lowered cache %d entries exceeds bound %d", entries, b)
	}
}

// TestEnumCacheServesRepeats checks the session cache actually hits: a
// second handle for the same source gets the cached set without
// re-enumerating, and the sweep event stream reports it.
func TestEnumCacheServesRepeats(t *testing.T) {
	shaders, err := sweepSubset()
	if err != nil {
		t.Fatal(err)
	}
	s := shaders[0]
	sess := NewSession(gpu.Platforms(), Options{Cfg: harness.FastConfig()})
	h1, err := core.Compile(s.Source, s.Name, s.Lang)
	if err != nil {
		t.Fatal(err)
	}
	h2, err := core.Compile(s.Source, s.Name, s.Lang)
	if err != nil {
		t.Fatal(err)
	}
	vs1, hit1 := sess.Variants(h1)
	vs2, hit2 := sess.Variants(h2)
	if hit1 {
		t.Fatal("first enumeration reported as cache hit")
	}
	if !hit2 {
		t.Fatal("second handle for the same source should hit the session cache")
	}
	if vs1 != vs2 {
		t.Fatal("cache returned a different variant set for identical source")
	}

	// The event stream reports the hit when a sweep reuses the cache.
	var events []SweepEvent
	if _, err := sess.Sweep([]*core.Shader{h2}, func(ev SweepEvent) { events = append(events, ev) }); err != nil {
		t.Fatal(err)
	}
	if len(events) != 1 || !events[0].EnumCached {
		t.Fatalf("sweep event should report EnumCached, got %+v", events)
	}
	if events[0].Workers != sess.Workers() {
		t.Fatalf("event workers = %d, want %d", events[0].Workers, sess.Workers())
	}
}

// TestLoweredCacheBoundedUnderSweep runs a sweep with a tiny cache bound
// and checks measurements still come out byte-identical to an unbounded
// session: eviction must trade only time, never results.
func TestLoweredCacheBoundedUnderSweep(t *testing.T) {
	shaders, err := sweepSubset()
	if err != nil {
		t.Fatal(err)
	}
	bounded, err := Run(shaders, gpu.Platforms(), Options{Cfg: harness.FastConfig(), CacheBound: 4})
	if err != nil {
		t.Fatal(err)
	}
	unbounded, err := Run(shaders, gpu.Platforms(), Options{Cfg: harness.FastConfig(), CacheBound: -1})
	if err != nil {
		t.Fatal(err)
	}
	for i, rb := range bounded.Results {
		ru := unbounded.Results[i]
		for _, pl := range bounded.Platforms {
			if rb.OrigNS[pl.Vendor] != ru.OrigNS[pl.Vendor] {
				t.Fatalf("%s: original time differs between bounded and unbounded caches", rb.Name())
			}
			for hash, ns := range rb.VariantNS[pl.Vendor] {
				if ru.VariantNS[pl.Vendor][hash] != ns {
					t.Fatalf("%s: variant %s differs between bounded and unbounded caches", rb.Name(), hash)
				}
			}
		}
	}
}

// TestMeasCacheBoundedAndEvicts closes the ROADMAP's last unbounded-cache
// item: with a tiny CacheBound the measurement-score cache must stay
// within its bound, actually evict under a multi-shader sweep, and — the
// part that matters — re-measure evicted scores bit-identically, so a
// bounded session's sweep equals an unbounded one's. The compile cache
// rides the same bound and is checked alongside.
func TestMeasCacheBoundedAndEvicts(t *testing.T) {
	shaders, err := sweepSubset()
	if err != nil {
		t.Fatal(err)
	}
	const bound = 4 // far below the subset's distinct (vendor, text) count
	sess := NewSession(gpu.Platforms(), Options{Cfg: harness.FastConfig(), CacheBound: bound, Workers: 2})
	handles := make([]*core.Shader, len(shaders))
	for i, s := range shaders {
		h, err := core.Compile(s.Source, s.Name, s.Lang)
		if err != nil {
			t.Fatal(err)
		}
		handles[i] = h
	}
	bounded, err := sess.Sweep(handles, nil)
	if err != nil {
		t.Fatal(err)
	}
	entries, b, evicted := sess.MeasCacheStats()
	if b != bound {
		t.Fatalf("meas cache bound = %d, want %d", b, bound)
	}
	if entries > bound {
		t.Fatalf("meas cache holds %d scores, bound %d", entries, bound)
	}
	if evicted == 0 {
		t.Fatal("sweep across the subset should have evicted scores from a bound-4 cache")
	}
	if _, _, centries, cbound := sess.CompileCacheStats(); cbound != bound || centries > bound {
		t.Fatalf("compile cache %d entries exceeds bound %d", centries, cbound)
	}

	unbounded, err := NewSession(gpu.Platforms(), Options{Cfg: harness.FastConfig(), CacheBound: -1}).Sweep(handles, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i, rb := range bounded.Results {
		ru := unbounded.Results[i]
		for _, pl := range gpu.Platforms() {
			if rb.OrigNS[pl.Vendor] != ru.OrigNS[pl.Vendor] {
				t.Fatalf("%s: original differs under meas-cache eviction", rb.Name())
			}
			for hash, ns := range rb.VariantNS[pl.Vendor] {
				if ru.VariantNS[pl.Vendor][hash] != ns {
					t.Fatalf("%s: variant %s differs under meas-cache eviction", rb.Name(), hash)
				}
			}
		}
	}

	// A warm re-sweep on the bounded session still completes and still
	// matches: whatever was evicted is simply measured again.
	again, err := sess.Sweep(handles, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i, rb := range bounded.Results {
		ra := again.Results[i]
		for _, pl := range gpu.Platforms() {
			if rb.OrigNS[pl.Vendor] != ra.OrigNS[pl.Vendor] {
				t.Fatalf("%s: re-sweep changed a score under eviction", rb.Name())
			}
		}
	}
}
