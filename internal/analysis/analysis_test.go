package analysis

import (
	"testing"

	"shaderopt/internal/corpus"
)

func subset(t *testing.T, names ...string) []*corpus.Shader {
	t.Helper()
	all := corpus.MustLoad()
	var out []*corpus.Shader
	for _, n := range names {
		s := corpus.ByName(all, n)
		if s == nil {
			t.Fatalf("missing %s", n)
		}
		out = append(out, s)
	}
	return out
}

func TestLinesOfCode(t *testing.T) {
	shaders := subset(t, "ui/flat", "megapost/s80", "blur/v9")
	locs := LinesOfCode(shaders)
	if len(locs) != 3 {
		t.Fatal("count")
	}
	// Sorted descending.
	if locs[0].Name != "megapost/s80" || locs[2].Name != "ui/flat" {
		t.Errorf("order: %v", locs)
	}
	if locs[0].Lines <= locs[2].Lines {
		t.Error("not descending")
	}
}

func TestARMStaticCycles(t *testing.T) {
	shaders := subset(t, "ui/flat", "blur/v9", "pbr/l2_spec")
	cyc, err := ARMStaticCycles(shaders)
	if err != nil {
		t.Fatal(err)
	}
	if len(cyc) != 3 {
		t.Fatal("count")
	}
	for _, c := range cyc {
		if c.Total() <= 0 {
			t.Errorf("%s: total = %v", c.Name, c.Total())
		}
	}
	// Descending by total.
	for i := 1; i < len(cyc); i++ {
		if cyc[i].Total() > cyc[i-1].Total() {
			t.Error("not sorted")
		}
	}
	// The trivial shader must be cheapest.
	if cyc[len(cyc)-1].Name != "ui/flat" {
		t.Errorf("cheapest = %s, want ui/flat", cyc[len(cyc)-1].Name)
	}
	// Texture-sampling shaders must show texture-pipe cycles.
	if cyc[0].Texture <= 0 {
		t.Error("no texture cycles on the heaviest shader")
	}
}

func TestUniqueVariants(t *testing.T) {
	shaders := subset(t, "ui/flat", "blur/v9")
	uni, err := UniqueVariants(shaders)
	if err != nil {
		t.Fatal(err)
	}
	if len(uni) != 2 {
		t.Fatal("count")
	}
	// blur responds to flags, ui/flat doesn't.
	if uni[0].Name != "blur/v9" || uni[0].Unique < 2 {
		t.Errorf("blur variants: %+v", uni[0])
	}
	if uni[1].Unique != 1 {
		t.Errorf("ui/flat variants = %d, want 1", uni[1].Unique)
	}
	for _, u := range uni {
		if u.MaxSets != 256 {
			t.Error("max sets")
		}
	}
}
