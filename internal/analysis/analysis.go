// Package analysis computes the paper's static corpus characterizations
// — the lines-of-code distribution (Fig. 4a), the ARM static-analyser
// cycle counts (Fig. 4b), and the unique-variant counts from the
// exhaustive flag enumeration (Fig. 4c) — plus the comparative study
// layer: sweep results grouped by source language and by driver
// ingestion format (LangGroupMeans, BackendGroupMeans) and the
// cross-language / cross-backend transfer matrices (LangTransferMatrix,
// BackendTransferMatrix), which apply the best static flag set learned
// on one group to every other and report the fraction of the win kept.
package analysis

import (
	"fmt"
	"sort"

	"shaderopt/internal/core"
	"shaderopt/internal/corpus"
	"shaderopt/internal/crossc"
	"shaderopt/internal/gpu"
)

// LoC is one shader's Fig. 4a data point.
type LoC struct {
	Name  string
	Lines int
}

// LinesOfCode returns per-shader post-preprocessing line counts, sorted
// descending (the paper's presentation order).
func LinesOfCode(shaders []*corpus.Shader) []LoC {
	out := make([]LoC, 0, len(shaders))
	for _, s := range shaders {
		out = append(out, LoC{Name: s.Name, Lines: s.Lines})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Lines != out[j].Lines {
			return out[i].Lines > out[j].Lines
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// StaticCycles is one shader's Fig. 4b data point: the Mali offline
// analyser's cycle decomposition on the longest execution path.
type StaticCycles struct {
	Name      string
	Arith     float64
	LoadStore float64
	Texture   float64
}

// Total returns the summed cycles (the plotted metric).
func (s StaticCycles) Total() float64 { return s.Arith + s.LoadStore + s.Texture }

// ARMStaticCycles compiles each shader with the ARM platform's driver
// (through the mobile conversion path, like the real Mali offline
// compiler's input) and reports the per-pipe cycle counts, sorted
// descending by total.
func ARMStaticCycles(shaders []*corpus.Shader) ([]StaticCycles, error) {
	arm := gpu.PlatformByVendor("ARM")
	out := make([]StaticCycles, 0, len(shaders))
	for _, s := range shaders {
		src, err := core.ToGLSL(s.Source, s.Name, s.Lang)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", s.Name, err)
		}
		es, err := crossc.ToES(src, s.Name)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", s.Name, err)
		}
		c, err := arm.CompileSource(es)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", s.Name, err)
		}
		out = append(out, StaticCycles{
			Name:      s.Name,
			Arith:     c.Arith,
			LoadStore: c.LoadStore,
			Texture:   c.Texture,
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Total() != out[j].Total() {
			return out[i].Total() > out[j].Total()
		}
		return out[i].Name < out[j].Name
	})
	return out, nil
}

// Uniqueness is one shader's Fig. 4c data point.
type Uniqueness struct {
	Name    string
	Unique  int
	MaxSets int // always 256
}

// UniqueVariants enumerates all flag combinations per shader and counts
// distinct outputs, sorted descending.
func UniqueVariants(shaders []*corpus.Shader) ([]Uniqueness, error) {
	out := make([]Uniqueness, 0, len(shaders))
	for _, s := range shaders {
		vs, err := core.EnumerateVariantsLang(s.Source, s.Name, s.Lang)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", s.Name, err)
		}
		out = append(out, Uniqueness{Name: s.Name, Unique: vs.Unique(), MaxSets: 256})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Unique != out[j].Unique {
			return out[i].Unique > out[j].Unique
		}
		return out[i].Name < out[j].Name
	})
	return out, nil
}
