package analysis_test

// Golden-file test for the raw static-characterization data (the numbers
// behind Fig. 4): a stable text dump of LinesOfCode, ARMStaticCycles, and
// UniqueVariants over a fixed corpus subset, compared byte-for-byte
// against testdata/characterization.golden. Regenerate after an
// intentional change with:
//
//	go test ./internal/analysis -run TestGolden -update
import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"shaderopt/internal/analysis"
	"shaderopt/internal/corpus"
)

var update = flag.Bool("update", false, "rewrite golden files with current output")

func TestGoldenCharacterization(t *testing.T) {
	all, err := corpus.Load()
	if err != nil {
		t.Fatal(err)
	}
	var shaders []*corpus.Shader
	for _, n := range []string{"blur/v9", "projtex/compose", "ui/flat", "simple/luma", "wgsl/ripple"} {
		s := corpus.ByName(all, n)
		if s == nil {
			t.Fatalf("missing corpus shader %s", n)
		}
		shaders = append(shaders, s)
	}

	var sb strings.Builder
	sb.WriteString("# lines of code (fig 4a), descending\n")
	for _, l := range analysis.LinesOfCode(shaders) {
		fmt.Fprintf(&sb, "%-20s %d\n", l.Name, l.Lines)
	}
	cyc, err := analysis.ARMStaticCycles(shaders)
	if err != nil {
		t.Fatal(err)
	}
	sb.WriteString("\n# ARM static cycles (fig 4b): arith / load-store / texture, descending by total\n")
	for _, c := range cyc {
		fmt.Fprintf(&sb, "%-20s %.2f / %.2f / %.2f = %.2f\n", c.Name, c.Arith, c.LoadStore, c.Texture, c.Total())
	}
	uni, err := analysis.UniqueVariants(shaders)
	if err != nil {
		t.Fatal(err)
	}
	sb.WriteString("\n# unique variants of 256 combinations (fig 4c), descending\n")
	for _, u := range uni {
		fmt.Fprintf(&sb, "%-20s %d/%d\n", u.Name, u.Unique, u.MaxSets)
	}

	path := filepath.Join("testdata", "characterization.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(sb.String()), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden %s (run with -update to create): %v", path, err)
	}
	if sb.String() != string(want) {
		t.Errorf("characterization differs from golden; rerun with -update after reviewing.\n--- got ---\n%s\n--- want ---\n%s", sb.String(), want)
	}
}
