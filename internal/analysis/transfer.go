package analysis

// The comparative study layer: sweep results aggregated by source
// language and by driver ingestion format, and the transfer matrix that
// asks the paper's core question of the whole 4-frontend × 3-backend
// grid at once — does a flag set learned offline on one language (or
// ingestion format) keep its win when applied to another?
//
// Wins here are measured against the all-off variant baseline (the
// paper's §VI-D framing), not the original source: the all-off variant
// is a member of every shader's enumerated set, so win(NoFlags) is zero
// by construction, the self-win of a learned set is never negative, and
// codegen artefacts of a frontend's original text cancel out of the
// cross-language comparison. The grouped Table I / Fig. 5 rows keep the
// original-source baseline, matching the ungrouped renderers.

import (
	"math"
	"sort"
	"strings"

	"shaderopt/internal/core"
	"shaderopt/internal/crossc"
	"shaderopt/internal/harness"
	"shaderopt/internal/passes"
	"shaderopt/internal/search"
)

// TransferCell is one matrix entry: the best static flag set learned on
// the From group, applied to the To group.
type TransferCell struct {
	From, To    string
	Flags       core.Flags // best static set learned on From (vs all-off)
	SelfWin     float64    // From's mean win with its own best set, %
	TransferWin float64    // To's mean win under From's set, %
	Retention   float64    // fraction of SelfWin kept (1.0 = 100%)
	Exact       bool       // computed on the pinned twin-family pairing
}

// TransferMatrix is the full grid for one comparison axis. Cells[i][j]
// transfers the set learned on Groups[i] to Groups[j]; the diagonal is
// the self-transfer (retention 1 by definition).
type TransferMatrix struct {
	Axis   string // "language" or "backend"
	Groups []string
	Cells  [][]TransferCell
}

// group is one side of a transfer: a result subset scored on a vendor
// subset. The language axis splits results and keeps all vendors; the
// backend axis keeps all results and splits vendors by ingestion format.
type group struct {
	name    string
	results []*search.ShaderResult
	vendors []string
}

// winOver returns the mean speed-up of one flag combination against the
// all-off variant baseline over the group's result × vendor grid.
func winOver(g group, flags core.Flags) float64 {
	if len(g.results) == 0 || len(g.vendors) == 0 {
		return 0
	}
	sum := 0.0
	for _, r := range g.results {
		for _, v := range g.vendors {
			sum += harness.Speedup(r.NSFor(v, core.NoFlags), r.NSFor(v, flags))
		}
	}
	return sum / float64(len(g.results)*len(g.vendors))
}

// bestWinOver returns the flag combination maximising winOver, ties
// resolved to the first combination in ascending flag-value order — the
// all-off set itself is combination zero, so the returned win is never
// negative and a group with no headroom deterministically learns NoFlags.
func bestWinOver(g group) (core.Flags, float64) {
	bestFlags, bestWin := core.NoFlags, math.Inf(-1)
	for _, flags := range passes.AllCombinations() {
		if w := winOver(g, flags); w > bestWin {
			bestFlags, bestWin = flags, w
		}
	}
	return bestFlags, bestWin
}

// retention maps (self win, transferred win) to the fraction kept. A
// group with zero headroom (SelfWin == 0, i.e. it learned the all-off
// set) retains everything exactly when the transfer also wins nothing.
func retention(selfWin, transferWin float64) float64 {
	if selfWin > 0 {
		return transferWin / selfWin
	}
	if transferWin == 0 {
		return 1
	}
	return 0
}

// cellBetween learns the best set on from and scores it on to.
func cellBetween(from, to group, exact bool) TransferCell {
	flags, selfWin := bestWinOver(from)
	transferWin := winOver(to, flags)
	return TransferCell{
		From: from.name, To: to.name, Flags: flags,
		SelfWin: selfWin, TransferWin: transferWin,
		Retention: retention(selfWin, transferWin), Exact: exact,
	}
}

// twinPrefix names the corpus family that is a pinned instance-for-
// instance port in the given language: the GLSL tonemap family and its
// HLSL twin share identical 256-entry flag→variant partitions, so
// transfer between them is computed exactly on the paired subsets
// instead of best-effort on the full groups.
func twinPrefix(lang string) string {
	switch lang {
	case core.LangGLSL.String():
		return "tonemap/"
	case core.LangHLSL.String():
		return "hlsl/"
	}
	return ""
}

// twinSlices returns the instance-paired twin subsets of two language
// groups, aligned index-for-index, or ok=false when the pair has no
// pinned twins (same language, non-twin languages, or no shared
// instances in the sweep — e.g. a filtered corpus).
func twinSlices(from, to group) (fromTwins, toTwins []*search.ShaderResult, ok bool) {
	fp, tp := twinPrefix(from.name), twinPrefix(to.name)
	if from.name == to.name || fp == "" || tp == "" {
		return nil, nil, false
	}
	fromByInst := instanceMap(from.results, fp)
	toByInst := instanceMap(to.results, tp)
	var insts []string
	for inst := range fromByInst {
		if _, present := toByInst[inst]; present {
			insts = append(insts, inst)
		}
	}
	if len(insts) == 0 {
		return nil, nil, false
	}
	sort.Strings(insts)
	for _, inst := range insts {
		fromTwins = append(fromTwins, fromByInst[inst])
		toTwins = append(toTwins, toByInst[inst])
	}
	return fromTwins, toTwins, true
}

// instanceMap indexes a family's results by instance name (the part
// after the family prefix).
func instanceMap(results []*search.ShaderResult, prefix string) map[string]*search.ShaderResult {
	m := map[string]*search.ShaderResult{}
	for _, r := range results {
		if strings.HasPrefix(r.Handle.Name, prefix) {
			m[strings.TrimPrefix(r.Handle.Name, prefix)] = r
		}
	}
	return m
}

// langGroups splits the sweep's results by source language, in order of
// first appearance (deterministic: result order is corpus order).
func langGroups(s *search.Sweep) []group {
	vendors := make([]string, len(s.Platforms))
	for i, p := range s.Platforms {
		vendors[i] = p.Vendor
	}
	var order []string
	byLang := map[string][]*search.ShaderResult{}
	for _, r := range s.Results {
		l := r.Lang().String()
		if _, seen := byLang[l]; !seen {
			order = append(order, l)
		}
		byLang[l] = append(byLang[l], r)
	}
	groups := make([]group, len(order))
	for i, l := range order {
		groups[i] = group{name: l, results: byLang[l], vendors: vendors}
	}
	return groups
}

// ingestGroups splits the sweep's vendor roster by driver ingestion
// format, in roster order; every group scores the full result set.
func ingestGroups(s *search.Sweep) []group {
	var order []string
	byIngest := map[string][]string{}
	for _, p := range s.Platforms {
		ing := p.Ingest
		if ing == "" {
			ing = crossc.IngestGLSL
		}
		if _, seen := byIngest[ing]; !seen {
			order = append(order, ing)
		}
		byIngest[ing] = append(byIngest[ing], p.Vendor)
	}
	groups := make([]group, len(order))
	for i, ing := range order {
		groups[i] = group{name: ing, results: s.Results, vendors: byIngest[ing]}
	}
	return groups
}

// LangTransferMatrix builds the language×language transfer matrix: the
// best static set learned on each source language (all vendors), applied
// to every other language. The GLSL↔HLSL cells are computed exactly on
// the pinned tonemap twin pairing when both sides are present.
func LangTransferMatrix(s *search.Sweep) *TransferMatrix {
	groups := langGroups(s)
	m := &TransferMatrix{Axis: "language"}
	for _, g := range groups {
		m.Groups = append(m.Groups, g.name)
	}
	for _, from := range groups {
		var row []TransferCell
		for _, to := range groups {
			if ft, tt, ok := twinSlices(from, to); ok {
				row = append(row, cellBetween(
					group{name: from.name, results: ft, vendors: from.vendors},
					group{name: to.name, results: tt, vendors: to.vendors},
					true))
				continue
			}
			row = append(row, cellBetween(from, to, false))
		}
		m.Cells = append(m.Cells, row)
	}
	return m
}

// BackendTransferMatrix builds the backend×backend transfer matrix: the
// best static set learned on the vendors ingesting one format (all
// shaders), applied to the vendors ingesting every other format.
func BackendTransferMatrix(s *search.Sweep) *TransferMatrix {
	groups := ingestGroups(s)
	m := &TransferMatrix{Axis: "backend"}
	for _, g := range groups {
		m.Groups = append(m.Groups, g.name)
	}
	for _, from := range groups {
		var row []TransferCell
		for _, to := range groups {
			row = append(row, cellBetween(from, to, false))
		}
		m.Cells = append(m.Cells, row)
	}
	return m
}

// BestCross returns the off-diagonal cell with the highest retention —
// the matrix's headline number (how well the best-transferring pair
// holds up). Ties resolve to the first cell in row-major order; ok is
// false for a single-group matrix.
func (m *TransferMatrix) BestCross() (TransferCell, bool) {
	var best TransferCell
	found := false
	for i, row := range m.Cells {
		for j, c := range row {
			if i == j {
				continue
			}
			if !found || c.Retention > best.Retention {
				best, found = c, true
			}
		}
	}
	return best, found
}

// GroupMeans is one comparison group's slice of the study: its label,
// size, and the per-vendor Table I / Fig. 5 aggregates computed over the
// group alone (original-source baseline, like the ungrouped reports).
type GroupMeans struct {
	Group   string
	Shaders int
	Rows    []search.MeanSpeedups
}

// LangGroupMeans computes the grouped Table I / Fig. 5 rows per source
// language: every vendor's best static set re-learned on just that
// language's shaders.
func LangGroupMeans(s *search.Sweep) []GroupMeans {
	var out []GroupMeans
	for _, g := range langGroups(s) {
		gm := GroupMeans{Group: g.name, Shaders: len(g.results)}
		for _, v := range g.vendors {
			gm.Rows = append(gm.Rows, search.MeanSpeedupsOver(g.results, v))
		}
		out = append(out, gm)
	}
	return out
}

// BackendGroupMeans computes the grouped Table I / Fig. 5 rows per
// driver ingestion format: the full corpus, with the roster's vendors
// regrouped by what their driver ingests.
func BackendGroupMeans(s *search.Sweep) []GroupMeans {
	var out []GroupMeans
	for _, g := range ingestGroups(s) {
		gm := GroupMeans{Group: g.name, Shaders: len(g.results)}
		for _, v := range g.vendors {
			gm.Rows = append(gm.Rows, search.MeanSpeedupsOver(g.results, v))
		}
		out = append(out, gm)
	}
	return out
}
