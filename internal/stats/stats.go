// Package stats provides the small statistics toolkit used by the
// evaluation: robust summaries, quantiles, histograms, and the five-number
// violin summaries the report package renders.
package stats

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// GeoMean returns the geometric mean of positive values.
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		if x <= 0 {
			return 0
		}
		s += math.Log(x)
	}
	return math.Exp(s / float64(len(xs)))
}

// StdDev returns the population standard deviation.
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	acc := 0.0
	for _, x := range xs {
		d := x - m
		acc += d * d
	}
	return math.Sqrt(acc / float64(len(xs)))
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) using linear interpolation.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Median returns the 0.5 quantile.
func Median(xs []float64) float64 { return Quantile(xs, 0.5) }

// Min returns the smallest value (0 for empty).
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the largest value (0 for empty).
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Summary is a five-number violin summary plus the mean.
type Summary struct {
	Min, P25, Median, P75, Max, Mean float64
	N                                int
}

// Summarize computes a Summary.
func Summarize(xs []float64) Summary {
	return Summary{
		Min:    Min(xs),
		P25:    Quantile(xs, 0.25),
		Median: Median(xs),
		P75:    Quantile(xs, 0.75),
		Max:    Max(xs),
		Mean:   Mean(xs),
		N:      len(xs),
	}
}

// Histogram bins values into n equal-width bins over [lo, hi].
type Histogram struct {
	Lo, Hi float64
	Counts []int
}

// NewHistogram builds a histogram; values outside [lo, hi] clamp to the
// edge bins.
func NewHistogram(xs []float64, lo, hi float64, bins int) *Histogram {
	h := &Histogram{Lo: lo, Hi: hi, Counts: make([]int, bins)}
	if hi <= lo || bins == 0 {
		return h
	}
	w := (hi - lo) / float64(bins)
	for _, x := range xs {
		i := int((x - lo) / w)
		if i < 0 {
			i = 0
		}
		if i >= bins {
			i = bins - 1
		}
		h.Counts[i]++
	}
	return h
}

// BinCenter returns the midpoint of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	w := (h.Hi - h.Lo) / float64(len(h.Counts))
	return h.Lo + w*(float64(i)+0.5)
}

// MaxCount returns the largest bin count.
func (h *Histogram) MaxCount() int {
	m := 0
	for _, c := range h.Counts {
		if c > m {
			m = c
		}
	}
	return m
}
