package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMeanMedian(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 10}
	if Mean(xs) != 4 {
		t.Errorf("mean = %v", Mean(xs))
	}
	if Median(xs) != 3 {
		t.Errorf("median = %v", Median(xs))
	}
	if Mean(nil) != 0 || Median(nil) != 0 {
		t.Error("empty input should give 0")
	}
	if Median([]float64{1, 2}) != 1.5 {
		t.Error("even median")
	}
}

func TestQuantiles(t *testing.T) {
	xs := []float64{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if Quantile(xs, 0) != 0 || Quantile(xs, 1) != 10 {
		t.Error("extremes")
	}
	if Quantile(xs, 0.5) != 5 {
		t.Errorf("p50 = %v", Quantile(xs, 0.5))
	}
	if got := Quantile(xs, 0.25); math.Abs(got-2.5) > 1e-12 {
		t.Errorf("p25 = %v", got)
	}
}

func TestMinMaxStdDev(t *testing.T) {
	xs := []float64{3, 1, 4, 1, 5}
	if Min(xs) != 1 || Max(xs) != 5 {
		t.Error("min/max")
	}
	if StdDev([]float64{5, 5, 5}) != 0 {
		t.Error("stddev of constant should be 0")
	}
	if StdDev([]float64{1}) != 0 {
		t.Error("stddev of singleton")
	}
	sd := StdDev([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if math.Abs(sd-2) > 1e-12 {
		t.Errorf("stddev = %v, want 2", sd)
	}
}

func TestGeoMean(t *testing.T) {
	if g := GeoMean([]float64{1, 100}); math.Abs(g-10) > 1e-9 {
		t.Errorf("geomean = %v", g)
	}
	if GeoMean([]float64{1, -1}) != 0 {
		t.Error("non-positive input should give 0")
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.Min != 1 || s.Max != 5 || s.Median != 3 || s.Mean != 3 || s.N != 5 {
		t.Errorf("summary = %+v", s)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram([]float64{-100, -5, 0, 5, 100}, -10, 10, 4)
	// -100 clamps to bin 0; -5 lands in bin 1; 100 clamps to bin 3.
	if h.Counts[0] != 1 || h.Counts[1] != 1 {
		t.Errorf("bins = %v", h.Counts)
	}
	if h.Counts[3] != 2 {
		t.Errorf("bin3 = %d", h.Counts[3])
	}
	if h.MaxCount() != 2 {
		t.Errorf("max = %d", h.MaxCount())
	}
	if c := h.BinCenter(0); math.Abs(c-(-7.5)) > 1e-12 {
		t.Errorf("center0 = %v", c)
	}
}

// Property: quantile is monotone in q.
func TestQuantileMonotone(t *testing.T) {
	err := quick.Check(func(raw []float64) bool {
		var xs []float64
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				xs = append(xs, v)
			}
		}
		if len(xs) < 2 {
			return true
		}
		prev := Quantile(xs, 0)
		for q := 0.1; q <= 1.0; q += 0.1 {
			cur := Quantile(xs, q)
			if cur < prev {
				return false
			}
			prev = cur
		}
		return true
	}, &quick.Config{MaxCount: 200})
	if err != nil {
		t.Error(err)
	}
}

// Property: mean is between min and max.
func TestMeanBounded(t *testing.T) {
	err := quick.Check(func(raw []float64) bool {
		var xs []float64
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) && math.Abs(v) < 1e12 {
				xs = append(xs, v)
			}
		}
		if len(xs) == 0 {
			return true
		}
		m := Mean(xs)
		return m >= Min(xs)-1e-6 && m <= Max(xs)+1e-6
	}, &quick.Config{MaxCount: 200})
	if err != nil {
		t.Error(err)
	}
}
