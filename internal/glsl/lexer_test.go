package glsl

import (
	"strings"
	"testing"
)

func kinds(toks []Token) []Kind {
	out := make([]Kind, len(toks))
	for i, t := range toks {
		out[i] = t.Kind
	}
	return out
}

func TestLexBasicTokens(t *testing.T) {
	toks, err := LexAll("vec4 color = texture(tex, uv) * 2.0;")
	if err != nil {
		t.Fatal(err)
	}
	want := []struct {
		kind Kind
		text string
	}{
		{TypeName, "vec4"}, {Ident, "color"}, {Punct, "="},
		{Ident, "texture"}, {Punct, "("}, {Ident, "tex"}, {Punct, ","},
		{Ident, "uv"}, {Punct, ")"}, {Punct, "*"}, {FloatLit, "2.0"},
		{Punct, ";"},
	}
	if len(toks) != len(want) {
		t.Fatalf("got %d tokens, want %d: %v", len(toks), len(want), toks)
	}
	for i, w := range want {
		if toks[i].Kind != w.kind || toks[i].Text != w.text {
			t.Errorf("token %d = %v, want %s %q", i, toks[i], w.kind, w.text)
		}
	}
}

func TestLexNumberForms(t *testing.T) {
	cases := []struct {
		src  string
		kind Kind
	}{
		{"0", IntLit},
		{"42", IntLit},
		{"0x1F", IntLit},
		{"7u", IntLit},
		{"1.0", FloatLit},
		{".5", FloatLit},
		{"3.", FloatLit},
		{"1e5", FloatLit},
		{"1.5e-3", FloatLit},
		{"2.0f", FloatLit},
		{"1E+2", FloatLit},
	}
	for _, c := range cases {
		toks, err := LexAll(c.src)
		if err != nil {
			t.Fatalf("%q: %v", c.src, err)
		}
		if len(toks) != 1 {
			t.Fatalf("%q: got %d tokens %v", c.src, len(toks), toks)
		}
		if toks[0].Kind != c.kind {
			t.Errorf("%q: kind = %v, want %v", c.src, toks[0].Kind, c.kind)
		}
	}
}

func TestLexFloatDotFieldAmbiguity(t *testing.T) {
	// "v.x" must not lex ".x" as a number start.
	toks, err := LexAll("v.xyz")
	if err != nil {
		t.Fatal(err)
	}
	if len(toks) != 3 || toks[1].Text != "." || toks[2].Text != "xyz" {
		t.Fatalf("got %v", toks)
	}
}

func TestLexComments(t *testing.T) {
	toks, err := LexAll("a // line comment\nb /* block\ncomment */ c")
	if err != nil {
		t.Fatal(err)
	}
	if len(toks) != 3 {
		t.Fatalf("got %v", toks)
	}
	for i, want := range []string{"a", "b", "c"} {
		if toks[i].Text != want {
			t.Errorf("token %d = %q, want %q", i, toks[i].Text, want)
		}
	}
}

func TestLexUnterminatedComment(t *testing.T) {
	_, err := LexAll("a /* never closed")
	if err == nil {
		t.Fatal("want error for unterminated block comment")
	}
}

func TestLexDirectives(t *testing.T) {
	src := "#version 330\n#define FOO 1\nfloat x;"
	toks, err := LexAll(src)
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Kind != PPLine || !strings.HasPrefix(toks[0].Text, "#version") {
		t.Fatalf("token 0 = %v", toks[0])
	}
	if toks[1].Kind != PPLine || !strings.HasPrefix(toks[1].Text, "#define") {
		t.Fatalf("token 1 = %v", toks[1])
	}
	if toks[2].Kind != TypeName {
		t.Fatalf("token 2 = %v", toks[2])
	}
}

func TestLexDirectiveContinuation(t *testing.T) {
	src := "#define ADD(a,b) a + \\\n  b\nfloat x;"
	toks, err := LexAll(src)
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Kind != PPLine || !strings.Contains(toks[0].Text, "b") {
		t.Fatalf("continuation not merged: %v", toks[0])
	}
}

func TestLexDirectiveMidLineHash(t *testing.T) {
	// '#' not at start of line is an error even in KeepDirectives mode... the
	// lexer only treats line-leading '#' as a directive.
	_, err := LexAll("float x; # bogus")
	if err == nil {
		t.Fatal("want error for mid-line '#'")
	}
}

func TestLexMultiCharOps(t *testing.T) {
	toks, err := LexAll("a += b; c <= d; e && f; g != h; i++")
	if err != nil {
		t.Fatal(err)
	}
	var ops []string
	for _, tok := range toks {
		if tok.Kind == Punct && len(tok.Text) > 1 {
			ops = append(ops, tok.Text)
		}
	}
	want := []string{"+=", "<=", "&&", "!=", "++"}
	if len(ops) != len(want) {
		t.Fatalf("ops = %v, want %v", ops, want)
	}
	for i := range want {
		if ops[i] != want[i] {
			t.Errorf("op %d = %q, want %q", i, ops[i], want[i])
		}
	}
}

func TestLexPositions(t *testing.T) {
	toks, err := LexAll("a\n  bb\n   ccc")
	if err != nil {
		t.Fatal(err)
	}
	wantPos := []Pos{{1, 1}, {2, 3}, {3, 4}}
	for i, w := range wantPos {
		if toks[i].Pos != w {
			t.Errorf("token %d pos = %v, want %v", i, toks[i].Pos, w)
		}
	}
}

func TestLexErrorWithoutDirectiveMode(t *testing.T) {
	l := NewLexer("#define X 1\n")
	tok := l.Next()
	// Without KeepDirectives the token is still produced but an error is set.
	if tok.Kind != PPLine {
		t.Fatalf("kind = %v", tok.Kind)
	}
	if l.Err() == nil {
		t.Fatal("want error when directives not kept")
	}
}

func TestLexKindString(t *testing.T) {
	for k := EOF; k <= Comment; k++ {
		if k.String() == "" {
			t.Errorf("kind %d has empty string", k)
		}
	}
}
