package glsl

import (
	"fmt"
	"strings"
)

// Lexer tokenizes GLSL source text. Preprocessor directives are returned as
// single PPLine tokens when KeepDirectives is set (the parser rejects them;
// the pp package consumes them). Comments are skipped unless KeepComments.
type Lexer struct {
	src  string
	pos  int
	line int
	col  int

	// KeepDirectives causes '#' lines to be emitted as PPLine tokens
	// instead of raising an error.
	KeepDirectives bool
	// KeepComments causes comments to be emitted as Comment tokens.
	KeepComments bool

	err error
}

// NewLexer returns a lexer over src.
func NewLexer(src string) *Lexer {
	return &Lexer{src: src, line: 1, col: 1}
}

// Err returns the first error encountered while lexing, if any.
func (l *Lexer) Err() error { return l.err }

func (l *Lexer) errorf(p Pos, format string, args ...any) {
	if l.err == nil {
		l.err = fmt.Errorf("%s: %s", p, fmt.Sprintf(format, args...))
	}
}

func (l *Lexer) peek() byte {
	if l.pos >= len(l.src) {
		return 0
	}
	return l.src[l.pos]
}

func (l *Lexer) peekAt(off int) byte {
	if l.pos+off >= len(l.src) {
		return 0
	}
	return l.src[l.pos+off]
}

func (l *Lexer) advance() byte {
	c := l.src[l.pos]
	l.pos++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

func isSpace(c byte) bool  { return c == ' ' || c == '\t' || c == '\r' || c == '\n' }
func isDigit(c byte) bool  { return c >= '0' && c <= '9' }
func isAlpha(c byte) bool  { return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') }
func isAlnum(c byte) bool  { return isAlpha(c) || isDigit(c) }
func isHexDig(c byte) bool { return isDigit(c) || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F') }

// atLineStart reports whether only whitespace precedes pos on its line.
func (l *Lexer) atLineStart() bool {
	for i := l.pos - 1; i >= 0; i-- {
		c := l.src[i]
		if c == '\n' {
			return true
		}
		if c != ' ' && c != '\t' && c != '\r' {
			return false
		}
	}
	return true
}

// Next returns the next token.
func (l *Lexer) Next() Token {
	for {
		// Skip whitespace.
		for l.pos < len(l.src) && isSpace(l.peek()) {
			l.advance()
		}
		if l.pos >= len(l.src) {
			return Token{Kind: EOF, Pos: Pos{l.line, l.col}}
		}
		start := Pos{l.line, l.col}
		c := l.peek()

		// Comments.
		if c == '/' && l.peekAt(1) == '/' {
			begin := l.pos
			for l.pos < len(l.src) && l.peek() != '\n' {
				l.advance()
			}
			if l.KeepComments {
				return Token{Kind: Comment, Text: l.src[begin:l.pos], Pos: start}
			}
			continue
		}
		if c == '/' && l.peekAt(1) == '*' {
			begin := l.pos
			l.advance()
			l.advance()
			closed := false
			for l.pos < len(l.src) {
				if l.peek() == '*' && l.peekAt(1) == '/' {
					l.advance()
					l.advance()
					closed = true
					break
				}
				l.advance()
			}
			if !closed {
				l.errorf(start, "unterminated block comment")
			}
			if l.KeepComments {
				return Token{Kind: Comment, Text: l.src[begin:l.pos], Pos: start}
			}
			continue
		}

		// Preprocessor directive: '#' at start of line, consumes the whole
		// logical line (honouring backslash continuations).
		if c == '#' && l.atLineStart() {
			begin := l.pos
			for l.pos < len(l.src) {
				if l.peek() == '\n' {
					// Check for backslash continuation.
					j := l.pos - 1
					for j >= 0 && (l.src[j] == ' ' || l.src[j] == '\t' || l.src[j] == '\r') {
						j--
					}
					if j >= 0 && l.src[j] == '\\' {
						l.advance()
						continue
					}
					break
				}
				l.advance()
			}
			text := l.src[begin:l.pos]
			if !l.KeepDirectives {
				l.errorf(start, "unexpected preprocessor directive %q (run the preprocessor first)", firstLine(text))
			}
			return Token{Kind: PPLine, Text: text, Pos: start}
		}

		// Numbers.
		if isDigit(c) || (c == '.' && isDigit(l.peekAt(1))) {
			return l.lexNumber(start)
		}

		// Identifiers / keywords / type names.
		if isAlpha(c) {
			begin := l.pos
			for l.pos < len(l.src) && isAlnum(l.peek()) {
				l.advance()
			}
			word := l.src[begin:l.pos]
			switch {
			case word == "true" || word == "false":
				return Token{Kind: BoolLit, Text: word, Pos: start}
			case IsTypeName(word):
				return Token{Kind: TypeName, Text: word, Pos: start}
			case IsKeyword(word):
				return Token{Kind: Keyword, Text: word, Pos: start}
			default:
				return Token{Kind: Ident, Text: word, Pos: start}
			}
		}

		// Operators and punctuation, longest match first.
		for _, op := range multiCharOps {
			if strings.HasPrefix(l.src[l.pos:], op) {
				for range op {
					l.advance()
				}
				return Token{Kind: Punct, Text: op, Pos: start}
			}
		}
		if strings.IndexByte("+-*/%<>=!&|^?:;,.(){}[]~", c) >= 0 {
			l.advance()
			return Token{Kind: Punct, Text: string(c), Pos: start}
		}

		l.errorf(start, "unexpected character %q", string(c))
		l.advance()
	}
}

// multiCharOps are matched before single-char operators; order matters only
// within a shared prefix, so longer ops come first.
var multiCharOps = []string{
	"<<=", ">>=",
	"==", "!=", "<=", ">=", "&&", "||", "^^",
	"+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=",
	"++", "--", "<<", ">>",
}

func (l *Lexer) lexNumber(start Pos) Token {
	begin := l.pos
	isFloat := false

	// Hex integer.
	if l.peek() == '0' && (l.peekAt(1) == 'x' || l.peekAt(1) == 'X') {
		l.advance()
		l.advance()
		for l.pos < len(l.src) && isHexDig(l.peek()) {
			l.advance()
		}
		if l.peek() == 'u' || l.peek() == 'U' {
			l.advance()
		}
		return Token{Kind: IntLit, Text: l.src[begin:l.pos], Pos: start}
	}

	for l.pos < len(l.src) && isDigit(l.peek()) {
		l.advance()
	}
	if l.peek() == '.' {
		isFloat = true
		l.advance()
		for l.pos < len(l.src) && isDigit(l.peek()) {
			l.advance()
		}
	}
	if l.peek() == 'e' || l.peek() == 'E' {
		// Exponent only if followed by digits (or sign then digits).
		off := 1
		if l.peekAt(off) == '+' || l.peekAt(off) == '-' {
			off++
		}
		if isDigit(l.peekAt(off)) {
			isFloat = true
			l.advance() // e
			if l.peek() == '+' || l.peek() == '-' {
				l.advance()
			}
			for l.pos < len(l.src) && isDigit(l.peek()) {
				l.advance()
			}
		}
	}
	// Suffixes.
	switch l.peek() {
	case 'f', 'F':
		isFloat = true
		l.advance()
	case 'u', 'U':
		if !isFloat {
			l.advance()
		}
	case 'l', 'L':
		if l.peekAt(1) == 'f' || l.peekAt(1) == 'F' {
			isFloat = true
			l.advance()
			l.advance()
		}
	}
	text := l.src[begin:l.pos]
	if isFloat {
		return Token{Kind: FloatLit, Text: text, Pos: start}
	}
	return Token{Kind: IntLit, Text: text, Pos: start}
}

// LexAll tokenizes the whole input, returning tokens up to and excluding EOF.
func LexAll(src string) ([]Token, error) {
	l := NewLexer(src)
	l.KeepDirectives = true
	var toks []Token
	for {
		t := l.Next()
		if t.Kind == EOF {
			break
		}
		toks = append(toks, t)
	}
	return toks, l.Err()
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}
