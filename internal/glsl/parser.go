package glsl

import (
	"fmt"
	"strconv"
	"strings"
)

// Parser is a recursive-descent parser for the GLSL subset. Input must be
// preprocessed (no directives except an optional leading #version, which the
// parser records on the Shader).
type Parser struct {
	toks []Token
	pos  int
	errs []error
}

// Parse parses a complete shader source.
func Parse(src string) (*Shader, error) {
	toks, err := LexAll(src)
	if err != nil {
		return nil, err
	}
	p := &Parser{toks: toks}
	sh := &Shader{}
	for p.cur().Kind == PPLine {
		line := strings.TrimSpace(p.cur().Text)
		switch {
		case strings.HasPrefix(line, "#version"):
			sh.Version = strings.TrimSpace(strings.TrimPrefix(line, "#version"))
		case strings.HasPrefix(line, "#extension"), strings.HasPrefix(line, "#pragma"):
			// Accepted and dropped; they do not affect the subset semantics.
		default:
			return nil, fmt.Errorf("%s: unpreprocessed directive %q", p.cur().Pos, firstLine(line))
		}
		p.next()
	}
	for p.cur().Kind != EOF {
		d := p.parseDecl()
		if d != nil {
			sh.Decls = append(sh.Decls, d)
		}
		if len(p.errs) > 8 {
			break
		}
	}
	if len(p.errs) > 0 {
		return nil, p.errs[0]
	}
	return sh, nil
}

// MustParse parses src and panics on error. For tests and fixed templates.
func MustParse(src string) *Shader {
	sh, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return sh
}

func (p *Parser) cur() Token {
	if p.pos >= len(p.toks) {
		return Token{Kind: EOF}
	}
	return p.toks[p.pos]
}

func (p *Parser) peekTok(off int) Token {
	if p.pos+off >= len(p.toks) {
		return Token{Kind: EOF}
	}
	return p.toks[p.pos+off]
}

func (p *Parser) next() Token {
	t := p.cur()
	if p.pos < len(p.toks) {
		p.pos++
	}
	return t
}

func (p *Parser) errorf(pos Pos, format string, args ...any) {
	p.errs = append(p.errs, fmt.Errorf("%s: %s", pos, fmt.Sprintf(format, args...)))
}

// accept consumes the next token if it is punctuation or keyword text.
func (p *Parser) accept(text string) bool {
	t := p.cur()
	if (t.Kind == Punct || t.Kind == Keyword) && t.Text == text {
		p.next()
		return true
	}
	return false
}

func (p *Parser) expect(text string) Token {
	t := p.cur()
	if (t.Kind == Punct || t.Kind == Keyword) && t.Text == text {
		return p.next()
	}
	p.errorf(t.Pos, "expected %q, found %s", text, t)
	return t
}

// sync skips tokens until after the next semicolon or closing brace, to
// recover from a parse error.
func (p *Parser) sync() {
	for {
		t := p.cur()
		if t.Kind == EOF {
			return
		}
		p.next()
		if t.Kind == Punct && (t.Text == ";" || t.Text == "}") {
			return
		}
	}
}

// --- Declarations ---

func (p *Parser) parseDecl() Decl {
	t := p.cur()
	if t.Kind == Punct && t.Text == ";" {
		p.next()
		return nil
	}

	// precision mediump float;
	if t.Kind == Keyword && t.Text == "precision" {
		p.next()
		prec := p.parsePrecision()
		ty := p.cur()
		if ty.Kind != TypeName {
			p.errorf(ty.Pos, "expected type in precision declaration, found %s", ty)
			p.sync()
			return nil
		}
		p.next()
		p.expect(";")
		return &PrecisionDecl{Pos: t.Pos, Precision: prec, Type: ty.Text}
	}

	layout := ""
	if t.Kind == Keyword && t.Text == "layout" {
		p.next()
		layout = p.parseLayoutBody()
		t = p.cur()
	}

	qual := QualNone
	// Interpolation qualifiers are parsed and dropped.
	for p.cur().Kind == Keyword {
		switch p.cur().Text {
		case "flat", "smooth", "noperspective", "centroid", "invariant":
			p.next()
			continue
		}
		break
	}
	switch p.cur().Text {
	case "const":
		qual = QualConst
		p.next()
	case "uniform":
		qual = QualUniform
		p.next()
	case "in", "varying", "attribute":
		qual = QualIn
		p.next()
	case "out":
		qual = QualOut
		p.next()
	}
	prec := p.parsePrecision()

	ty := p.cur()
	if ty.Kind != TypeName {
		p.errorf(ty.Pos, "expected type name, found %s", ty)
		p.sync()
		return nil
	}
	p.next()
	spec := p.parseArraySuffix(Scalar(ty.Text))

	name := p.cur()
	if name.Kind != Ident {
		p.errorf(name.Pos, "expected identifier, found %s", name)
		p.sync()
		return nil
	}
	p.next()

	// Function definition or prototype.
	if p.cur().Text == "(" && p.cur().Kind == Punct {
		return p.parseFuncRest(ty, spec, name)
	}

	spec = p.parseArraySuffix(spec)
	var init Expr
	if p.accept("=") {
		init = p.parseExpr()
	}
	p.expect(";")
	return &GlobalVar{
		Pos: t.Pos, Qual: qual, Precision: prec, Layout: layout,
		Type: spec, Name: name.Text, Init: init,
	}
}

func (p *Parser) parsePrecision() string {
	t := p.cur()
	if t.Kind == Keyword && (t.Text == "highp" || t.Text == "mediump" || t.Text == "lowp") {
		p.next()
		return t.Text
	}
	return ""
}

func (p *Parser) parseLayoutBody() string {
	p.expect("(")
	depth := 1
	var sb strings.Builder
	for depth > 0 {
		t := p.cur()
		if t.Kind == EOF {
			p.errorf(t.Pos, "unterminated layout(...)")
			break
		}
		p.next()
		if t.Kind == Punct && t.Text == "(" {
			depth++
		}
		if t.Kind == Punct && t.Text == ")" {
			depth--
			if depth == 0 {
				break
			}
		}
		if sb.Len() > 0 {
			sb.WriteByte(' ')
		}
		sb.WriteString(t.Text)
	}
	return sb.String()
}

// parseArraySuffix parses zero or more "[N]" or "[]" suffixes onto spec.
func (p *Parser) parseArraySuffix(spec TypeSpec) TypeSpec {
	for p.cur().Kind == Punct && p.cur().Text == "[" {
		// Only treat as array suffix if followed by int literal or ']'.
		nt := p.peekTok(1)
		if nt.Kind == IntLit {
			p.next()
			n, _ := strconv.Atoi(nt.Text)
			p.next()
			p.expect("]")
			spec.ArrayLen = n
		} else if nt.Kind == Punct && nt.Text == "]" {
			p.next()
			p.next()
			spec.ArrayLen = 0
		} else {
			break
		}
	}
	return spec
}

func (p *Parser) parseFuncRest(retTok Token, ret TypeSpec, name Token) Decl {
	p.expect("(")
	var params []Param
	if !p.accept(")") {
		for {
			prm, ok := p.parseParam()
			if !ok {
				p.sync()
				return nil
			}
			if prm.Type.Name != "void" {
				params = append(params, prm)
			}
			if p.accept(")") {
				break
			}
			p.expect(",")
		}
	}
	if p.accept(";") {
		return &FuncDecl{Pos: retTok.Pos, Return: ret, Name: name.Text, Params: params}
	}
	body := p.parseBlock()
	return &FuncDecl{Pos: retTok.Pos, Return: ret, Name: name.Text, Params: params, Body: body}
}

func (p *Parser) parseParam() (Param, bool) {
	var prm Param
	for p.cur().Kind == Keyword {
		switch p.cur().Text {
		case "in":
			prm.Qual = QualIn
			p.next()
			continue
		case "out":
			prm.Qual = QualOut
			p.next()
			continue
		case "inout":
			prm.Qual = QualInOut
			p.next()
			continue
		case "const", "highp", "mediump", "lowp":
			p.next()
			continue
		}
		break
	}
	ty := p.cur()
	if ty.Kind != TypeName {
		p.errorf(ty.Pos, "expected parameter type, found %s", ty)
		return prm, false
	}
	p.next()
	prm.Type = p.parseArraySuffix(Scalar(ty.Text))
	if prm.Type.Name == "void" {
		return prm, true
	}
	nm := p.cur()
	if nm.Kind != Ident {
		p.errorf(nm.Pos, "expected parameter name, found %s", nm)
		return prm, false
	}
	p.next()
	prm.Name = nm.Text
	prm.Type = p.parseArraySuffix(prm.Type)
	return prm, true
}

// --- Statements ---

func (p *Parser) parseBlock() *BlockStmt {
	open := p.expect("{")
	blk := &BlockStmt{Pos: open.Pos}
	for {
		t := p.cur()
		if t.Kind == EOF {
			p.errorf(t.Pos, "unterminated block")
			return blk
		}
		if t.Kind == Punct && t.Text == "}" {
			p.next()
			return blk
		}
		s := p.parseStmt()
		if s != nil {
			blk.Stmts = append(blk.Stmts, s)
		}
		if len(p.errs) > 8 {
			return blk
		}
	}
}

func (p *Parser) parseStmt() Stmt {
	t := p.cur()
	switch {
	case t.Kind == Punct && t.Text == "{":
		return p.parseBlock()
	case t.Kind == Punct && t.Text == ";":
		p.next()
		return nil
	case t.Kind == Keyword:
		switch t.Text {
		case "if":
			return p.parseIf()
		case "for":
			return p.parseFor()
		case "while":
			return p.parseWhile()
		case "return":
			p.next()
			var res Expr
			if !(p.cur().Kind == Punct && p.cur().Text == ";") {
				res = p.parseExpr()
			}
			p.expect(";")
			return &ReturnStmt{Pos: t.Pos, Result: res}
		case "discard":
			p.next()
			p.expect(";")
			return &DiscardStmt{Pos: t.Pos}
		case "break":
			p.next()
			p.expect(";")
			return &BreakStmt{Pos: t.Pos}
		case "continue":
			p.next()
			p.expect(";")
			return &ContinueStmt{Pos: t.Pos}
		case "const", "highp", "mediump", "lowp":
			return p.parseDeclStmt()
		default:
			p.errorf(t.Pos, "unexpected keyword %q in statement", t.Text)
			p.sync()
			return nil
		}
	case t.Kind == TypeName:
		// Type name followed by identifier: declaration. Otherwise it's a
		// constructor expression statement (rare but legal).
		if p.peekTok(1).Kind == Ident {
			return p.parseDeclStmt()
		}
		return p.parseSimpleStmtSemi()
	default:
		return p.parseSimpleStmtSemi()
	}
}

func (p *Parser) parseDeclStmt() Stmt {
	t := p.cur()
	isConst := false
	for p.cur().Kind == Keyword {
		switch p.cur().Text {
		case "const":
			isConst = true
			p.next()
			continue
		case "highp", "mediump", "lowp":
			p.next()
			continue
		}
		break
	}
	ty := p.cur()
	if ty.Kind != TypeName {
		p.errorf(ty.Pos, "expected type in declaration, found %s", ty)
		p.sync()
		return nil
	}
	p.next()
	spec := p.parseArraySuffix(Scalar(ty.Text))
	nm := p.cur()
	if nm.Kind != Ident {
		p.errorf(nm.Pos, "expected name in declaration, found %s", nm)
		p.sync()
		return nil
	}
	p.next()
	spec = p.parseArraySuffix(spec)
	var init Expr
	if p.accept("=") {
		init = p.parseExpr()
	}
	p.expect(";")
	return &DeclStmt{Pos: t.Pos, Const: isConst, Type: spec, Name: nm.Text, Init: init}
}

// parseSimpleStmt parses an assignment, inc/dec, or expression statement,
// without consuming a trailing semicolon.
func (p *Parser) parseSimpleStmt() Stmt {
	t := p.cur()
	lhs := p.parseExpr()
	cur := p.cur()
	if cur.Kind == Punct {
		switch cur.Text {
		case "=", "+=", "-=", "*=", "/=":
			p.next()
			rhs := p.parseExpr()
			return &AssignStmt{Pos: t.Pos, LHS: lhs, Op: cur.Text, RHS: rhs}
		case "++":
			p.next()
			return &AssignStmt{Pos: t.Pos, LHS: lhs, Op: "+=", RHS: &IntLitExpr{Pos: cur.Pos, Value: 1}}
		case "--":
			p.next()
			return &AssignStmt{Pos: t.Pos, LHS: lhs, Op: "-=", RHS: &IntLitExpr{Pos: cur.Pos, Value: 1}}
		}
	}
	return &ExprStmt{Pos: t.Pos, X: lhs}
}

func (p *Parser) parseSimpleStmtSemi() Stmt {
	s := p.parseSimpleStmt()
	p.expect(";")
	return s
}

func (p *Parser) parseIf() Stmt {
	t := p.expect("if")
	p.expect("(")
	cond := p.parseExpr()
	p.expect(")")
	then := p.parseBranchBody()
	var els Stmt
	if p.accept("else") {
		if p.cur().Kind == Keyword && p.cur().Text == "if" {
			els = p.parseIf()
		} else {
			els = p.parseBranchBody()
		}
	}
	return &IfStmt{Pos: t.Pos, Cond: cond, Then: then, Else: els}
}

// parseBranchBody parses either a block or a single statement wrapped into
// a block, so downstream code only ever sees blocks.
func (p *Parser) parseBranchBody() *BlockStmt {
	if p.cur().Kind == Punct && p.cur().Text == "{" {
		return p.parseBlock()
	}
	s := p.parseStmt()
	blk := &BlockStmt{Pos: p.cur().Pos}
	if s != nil {
		blk.Stmts = append(blk.Stmts, s)
	}
	return blk
}

func (p *Parser) parseFor() Stmt {
	t := p.expect("for")
	p.expect("(")
	var init Stmt
	if !(p.cur().Kind == Punct && p.cur().Text == ";") {
		if p.cur().Kind == TypeName || (p.cur().Kind == Keyword && p.cur().Text == "const") {
			init = p.parseDeclStmt() // consumes ';'
		} else {
			init = p.parseSimpleStmtSemi()
		}
	} else {
		p.next()
	}
	var cond Expr
	if !(p.cur().Kind == Punct && p.cur().Text == ";") {
		cond = p.parseExpr()
	}
	p.expect(";")
	var post Stmt
	if !(p.cur().Kind == Punct && p.cur().Text == ")") {
		post = p.parseSimpleStmt()
	}
	p.expect(")")
	body := p.parseBranchBody()
	return &ForStmt{Pos: t.Pos, Init: init, Cond: cond, Post: post, Body: body}
}

func (p *Parser) parseWhile() Stmt {
	t := p.expect("while")
	p.expect("(")
	cond := p.parseExpr()
	p.expect(")")
	body := p.parseBranchBody()
	return &WhileStmt{Pos: t.Pos, Cond: cond, Body: body}
}

// --- Expressions ---

// Binary operator precedence, higher binds tighter.
var binPrec = map[string]int{
	"||": 1, "^^": 2, "&&": 3,
	"==": 4, "!=": 4,
	"<": 5, ">": 5, "<=": 5, ">=": 5,
	"+": 6, "-": 6,
	"*": 7, "/": 7, "%": 7,
}

func (p *Parser) parseExpr() Expr { return p.parseTernary() }

func (p *Parser) parseTernary() Expr {
	cond := p.parseBinary(1)
	if p.cur().Kind == Punct && p.cur().Text == "?" {
		q := p.next()
		thn := p.parseExpr()
		p.expect(":")
		els := p.parseTernary()
		return &CondExpr{Pos: q.Pos, Cond: cond, Then: thn, Else: els}
	}
	return cond
}

func (p *Parser) parseBinary(minPrec int) Expr {
	lhs := p.parseUnary()
	for {
		t := p.cur()
		if t.Kind != Punct {
			return lhs
		}
		prec, ok := binPrec[t.Text]
		if !ok || prec < minPrec {
			return lhs
		}
		p.next()
		rhs := p.parseBinary(prec + 1)
		lhs = &BinaryExpr{Pos: t.Pos, Op: t.Text, X: lhs, Y: rhs}
	}
}

func (p *Parser) parseUnary() Expr {
	t := p.cur()
	if t.Kind == Punct {
		switch t.Text {
		case "-", "!":
			p.next()
			return &UnaryExpr{Pos: t.Pos, Op: t.Text, X: p.parseUnary()}
		case "+":
			p.next()
			return p.parseUnary()
		case "++", "--":
			// Pre-increment used as expression is outside the subset; parse
			// operand and report.
			p.errorf(t.Pos, "prefix %q not supported as expression", t.Text)
			p.next()
			return p.parseUnary()
		}
	}
	return p.parsePostfix()
}

func (p *Parser) parsePostfix() Expr {
	x := p.parsePrimary()
	for {
		t := p.cur()
		if t.Kind != Punct {
			return x
		}
		switch t.Text {
		case "[":
			p.next()
			idx := p.parseExpr()
			p.expect("]")
			x = &IndexExpr{Pos: t.Pos, X: x, Index: idx}
		case ".":
			p.next()
			nm := p.cur()
			if nm.Kind != Ident && nm.Kind != Keyword {
				p.errorf(nm.Pos, "expected field name after '.', found %s", nm)
				return x
			}
			p.next()
			x = &FieldExpr{Pos: t.Pos, X: x, Name: nm.Text}
		default:
			return x
		}
	}
}

func (p *Parser) parsePrimary() Expr {
	t := p.cur()
	switch t.Kind {
	case IntLit:
		p.next()
		text := strings.TrimRight(t.Text, "uU")
		var v int64
		if strings.HasPrefix(text, "0x") || strings.HasPrefix(text, "0X") {
			u, err := strconv.ParseUint(text[2:], 16, 64)
			if err != nil {
				p.errorf(t.Pos, "bad hex literal %q", t.Text)
			}
			v = int64(u)
		} else {
			var err error
			v, err = strconv.ParseInt(text, 10, 64)
			if err != nil {
				p.errorf(t.Pos, "bad int literal %q", t.Text)
			}
		}
		return &IntLitExpr{Pos: t.Pos, Value: v}
	case FloatLit:
		p.next()
		text := strings.TrimRight(t.Text, "fFlL")
		v, err := strconv.ParseFloat(text, 64)
		if err != nil {
			p.errorf(t.Pos, "bad float literal %q", t.Text)
		}
		return &FloatLitExpr{Pos: t.Pos, Value: v}
	case BoolLit:
		p.next()
		return &BoolLitExpr{Pos: t.Pos, Value: t.Text == "true"}
	case Ident:
		p.next()
		if p.cur().Kind == Punct && p.cur().Text == "(" {
			return p.parseCallArgs(t.Pos, t.Text)
		}
		return &IdentExpr{Pos: t.Pos, Name: t.Text}
	case TypeName:
		p.next()
		// Array constructor: vec2[3](...) or vec2[](...).
		if p.cur().Kind == Punct && p.cur().Text == "[" {
			spec := p.parseArraySuffix(Scalar(t.Text))
			call := p.parseCallArgs(t.Pos, t.Text)
			c := call.(*CallExpr)
			n := spec.ArrayLen
			if n == 0 {
				n = len(c.Args)
			}
			return &ArrayCtorExpr{Pos: t.Pos, Elem: Scalar(t.Text), Len: n, Elems: c.Args}
		}
		return p.parseCallArgs(t.Pos, t.Text)
	case Punct:
		if t.Text == "(" {
			p.next()
			e := p.parseExpr()
			p.expect(")")
			return e
		}
	}
	p.errorf(t.Pos, "unexpected token %s in expression", t)
	p.next()
	return &IntLitExpr{Pos: t.Pos, Value: 0}
}

func (p *Parser) parseCallArgs(pos Pos, callee string) Expr {
	p.expect("(")
	call := &CallExpr{Pos: pos, Callee: callee}
	if p.accept(")") {
		return call
	}
	for {
		call.Args = append(call.Args, p.parseExpr())
		if p.accept(")") {
			return call
		}
		p.expect(",")
		if p.cur().Kind == EOF {
			p.errorf(p.cur().Pos, "unterminated call to %q", callee)
			return call
		}
	}
}
