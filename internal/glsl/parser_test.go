package glsl

import (
	"strings"
	"testing"
	"testing/quick"
)

const blurShader = `#version 330
out vec4 fragColor;
in vec2 uv;
uniform sampler2D tex;
uniform vec4 ambient;
void main() {
    const vec4 weights[9] = vec4[](vec4(0.01), vec4(0.05), vec4(0.14),
        vec4(0.21), vec4(0.61), vec4(0.21), vec4(0.14), vec4(0.05), vec4(0.01));
    const vec2 offsets[9] = vec2[](vec2(-0.0083), vec2(-0.0062), vec2(-0.0042),
        vec2(-0.0021), vec2(0.0), vec2(0.0021), vec2(0.0042), vec2(0.0062), vec2(0.0083));
    float weightTotal = 0.0;
    fragColor = vec4(0.0);
    for (int i = 0; i < 9; i++) {
        weightTotal += weights[i][0];
        fragColor += weights[i] * texture(tex, uv + offsets[i]) * 3.0 * ambient;
    }
    fragColor /= weightTotal;
}
`

func TestParseBlurShader(t *testing.T) {
	sh, err := Parse(blurShader)
	if err != nil {
		t.Fatal(err)
	}
	if sh.Version != "330" {
		t.Errorf("version = %q", sh.Version)
	}
	if got := len(sh.Globals()); got != 4 {
		t.Errorf("globals = %d, want 4", got)
	}
	mainFn := sh.Func("main")
	if mainFn == nil {
		t.Fatal("no main")
	}
	if len(mainFn.Body.Stmts) != 6 {
		t.Errorf("main stmts = %d, want 6", len(mainFn.Body.Stmts))
	}
	forStmt, ok := mainFn.Body.Stmts[4].(*ForStmt)
	if !ok {
		t.Fatalf("stmt 4 is %T, want *ForStmt", mainFn.Body.Stmts[4])
	}
	if forStmt.Post == nil || forStmt.Cond == nil || forStmt.Init == nil {
		t.Error("for parts missing")
	}
	post, ok := forStmt.Post.(*AssignStmt)
	if !ok || post.Op != "+=" {
		t.Errorf("i++ should parse to AssignStmt{+=}, got %#v", forStmt.Post)
	}
}

func TestParseQualifiers(t *testing.T) {
	src := `#version 330
layout(location = 0) out vec4 color;
uniform highp float scale;
flat in int mode;
const float PI = 3.14159;
void main() { color = vec4(scale); }
`
	sh, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	g := sh.Globals()
	if g[0].Qual != QualOut || g[0].Layout == "" {
		t.Errorf("g0 = %+v", g[0])
	}
	if g[1].Qual != QualUniform || g[1].Precision != "highp" {
		t.Errorf("g1 = %+v", g[1])
	}
	if g[2].Qual != QualIn {
		t.Errorf("g2 = %+v", g[2])
	}
	if g[3].Qual != QualConst || g[3].Init == nil {
		t.Errorf("g3 = %+v", g[3])
	}
}

func TestParsePrecisionDecl(t *testing.T) {
	src := "precision mediump float;\nvoid main() {}\n"
	sh, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	pd, ok := sh.Decls[0].(*PrecisionDecl)
	if !ok || pd.Precision != "mediump" || pd.Type != "float" {
		t.Fatalf("decl = %#v", sh.Decls[0])
	}
}

func TestParseFunctions(t *testing.T) {
	src := `
float sq(float x) { return x * x; }
vec3 shade(vec3 n, vec3 l, float k) {
    float d = max(dot(n, l), 0.0);
    return vec3(d * k);
}
void main() { }
`
	sh, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	fns := sh.Funcs()
	if len(fns) != 3 {
		t.Fatalf("funcs = %d", len(fns))
	}
	if fns[1].Name != "shade" || len(fns[1].Params) != 3 {
		t.Errorf("shade = %+v", fns[1])
	}
}

func TestParsePrototypeAndVoidParam(t *testing.T) {
	src := "float f(void);\nfloat f(void) { return 1.0; }\nvoid main() {}\n"
	sh, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	fns := sh.Funcs()
	if len(fns) != 3 {
		t.Fatalf("funcs = %d", len(fns))
	}
	if fns[0].Body != nil {
		t.Error("prototype should have nil body")
	}
	if len(fns[0].Params) != 0 || len(fns[1].Params) != 0 {
		t.Error("void params should be dropped")
	}
}

func TestParseControlFlow(t *testing.T) {
	src := `
void main() {
    float x = 0.0;
    if (x > 1.0) { x = 2.0; } else if (x > 0.5) { x = 1.0; } else { x = 0.0; }
    while (x < 10.0) { x += 1.0; }
    for (int i = 0; i < 4; i += 2) x += float(i);
    if (x > 100.0) discard;
}
`
	sh, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	body := sh.Func("main").Body
	ifs, ok := body.Stmts[1].(*IfStmt)
	if !ok {
		t.Fatalf("stmt1 = %T", body.Stmts[1])
	}
	chained, ok := ifs.Else.(*IfStmt)
	if !ok {
		t.Fatalf("else = %T", ifs.Else)
	}
	if _, ok := chained.Else.(*BlockStmt); !ok {
		t.Fatalf("chained else = %T", chained.Else)
	}
	if _, ok := body.Stmts[2].(*WhileStmt); !ok {
		t.Fatalf("stmt2 = %T", body.Stmts[2])
	}
	fs, ok := body.Stmts[3].(*ForStmt)
	if !ok {
		t.Fatalf("stmt3 = %T", body.Stmts[3])
	}
	if len(fs.Body.Stmts) != 1 {
		t.Error("single-statement for body should be wrapped in a block")
	}
	lastIf, ok := body.Stmts[4].(*IfStmt)
	if !ok {
		t.Fatalf("stmt4 = %T", body.Stmts[4])
	}
	if _, ok := lastIf.Then.Stmts[0].(*DiscardStmt); !ok {
		t.Error("discard not parsed")
	}
}

func TestParseExpressionPrecedence(t *testing.T) {
	src := "void main() { float x = 1.0 + 2.0 * 3.0 - 4.0 / 2.0; }"
	sh, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	d := sh.Func("main").Body.Stmts[0].(*DeclStmt)
	// ((1 + (2*3)) - (4/2))
	top, ok := d.Init.(*BinaryExpr)
	if !ok || top.Op != "-" {
		t.Fatalf("top = %#v", d.Init)
	}
	add, ok := top.X.(*BinaryExpr)
	if !ok || add.Op != "+" {
		t.Fatalf("lhs = %#v", top.X)
	}
	mul, ok := add.Y.(*BinaryExpr)
	if !ok || mul.Op != "*" {
		t.Fatalf("add rhs = %#v", add.Y)
	}
	div, ok := top.Y.(*BinaryExpr)
	if !ok || div.Op != "/" {
		t.Fatalf("top rhs = %#v", top.Y)
	}
}

func TestParseTernaryAndLogical(t *testing.T) {
	src := "void main() { float x = a > 0.0 && b < 1.0 ? c : d; }"
	sh, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	d := sh.Func("main").Body.Stmts[0].(*DeclStmt)
	cond, ok := d.Init.(*CondExpr)
	if !ok {
		t.Fatalf("init = %#v", d.Init)
	}
	land, ok := cond.Cond.(*BinaryExpr)
	if !ok || land.Op != "&&" {
		t.Fatalf("cond = %#v", cond.Cond)
	}
}

func TestParseSwizzleIndexChain(t *testing.T) {
	src := "void main() { float x = m[2].xyz.y; }"
	sh, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	d := sh.Func("main").Body.Stmts[0].(*DeclStmt)
	f1, ok := d.Init.(*FieldExpr)
	if !ok || f1.Name != "y" {
		t.Fatalf("init = %#v", d.Init)
	}
	f2, ok := f1.X.(*FieldExpr)
	if !ok || f2.Name != "xyz" {
		t.Fatalf("inner = %#v", f1.X)
	}
	if _, ok := f2.X.(*IndexExpr); !ok {
		t.Fatalf("base = %#v", f2.X)
	}
}

func TestParseArrayCtor(t *testing.T) {
	src := "void main() { float w[3] = float[](0.1, 0.2, 0.3); vec2 o[2] = vec2[2](vec2(0.0), vec2(1.0)); }"
	sh, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	d0 := sh.Func("main").Body.Stmts[0].(*DeclStmt)
	ac, ok := d0.Init.(*ArrayCtorExpr)
	if !ok || ac.Len != 3 || len(ac.Elems) != 3 {
		t.Fatalf("ctor = %#v", d0.Init)
	}
	d1 := sh.Func("main").Body.Stmts[1].(*DeclStmt)
	ac1, ok := d1.Init.(*ArrayCtorExpr)
	if !ok || ac1.Len != 2 || ac1.Elem.Name != "vec2" {
		t.Fatalf("ctor1 = %#v", d1.Init)
	}
}

func TestParseCompoundAssignOps(t *testing.T) {
	src := "void main() { x += 1.0; y -= 2.0; z *= 3.0; w /= 4.0; v.x = 5.0; }"
	sh, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	ops := []string{"+=", "-=", "*=", "/=", "="}
	for i, want := range ops {
		as, ok := sh.Func("main").Body.Stmts[i].(*AssignStmt)
		if !ok || as.Op != want {
			t.Errorf("stmt %d: %#v", i, sh.Func("main").Body.Stmts[i])
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"void main() { float = 1.0; }",
		"void main() { if x { } }",
		"void main() { return 1.0 }",
		"banana main() {}",
		"void main() { x = (1.0; }",
	}
	for _, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		}
	}
}

func TestParseUnterminatedCall(t *testing.T) {
	if _, err := Parse("void main() { x = f(1.0, 2.0; }"); err == nil {
		t.Fatal("want error")
	}
}

// TestPrintParseRoundTrip checks that printing a parsed shader and parsing
// it again yields the same printed form (print∘parse is idempotent).
func TestPrintParseRoundTrip(t *testing.T) {
	srcs := []string{blurShader, `
#version 330
uniform sampler2D albedo;
uniform vec3 lightDir;
in vec2 uv;
in vec3 normal;
out vec4 color;
float lambert(vec3 n, vec3 l) { return max(dot(normalize(n), l), 0.0); }
void main() {
    vec4 base = texture(albedo, uv);
    float d = lambert(normal, lightDir);
    color = d > 0.5 ? base * d : base * 0.5;
    color.a = 1.0;
}
`}
	for i, src := range srcs {
		sh, err := Parse(src)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		once := Print(sh)
		sh2, err := Parse(once)
		if err != nil {
			t.Fatalf("case %d reparse: %v\n%s", i, err, once)
		}
		twice := Print(sh2)
		if once != twice {
			t.Errorf("case %d: print not idempotent:\n--- once ---\n%s\n--- twice ---\n%s", i, once, twice)
		}
	}
}

// TestFormatFloatRoundTrip property: formatted floats re-lex as a single
// float token and parse back to the same value.
func TestFormatFloatRoundTrip(t *testing.T) {
	f := func(v float64) bool {
		s := FormatFloat(v)
		toks, err := LexAll(s)
		if err != nil {
			return false
		}
		// Negative values lex as '-' followed by a literal.
		idx := 0
		neg := false
		if toks[0].Kind == Punct && toks[0].Text == "-" {
			neg = true
			idx = 1
		}
		if len(toks) != idx+1 || toks[idx].Kind != FloatLit {
			return false
		}
		sh, err := Parse("void main() { float x = " + s + "; }")
		if err != nil {
			return false
		}
		init := sh.Func("main").Body.Stmts[0].(*DeclStmt).Init
		var got float64
		switch e := init.(type) {
		case *FloatLitExpr:
			got = e.Value
		case *UnaryExpr:
			got = -e.X.(*FloatLitExpr).Value
		default:
			return false
		}
		_ = neg
		return got == v
	}
	cfg := &quick.Config{MaxCount: 300}
	if err := quick.Check(func(v float64) bool {
		if v != v || v > 1e37 || v < -1e37 { // skip NaN / out-of-GLSL-range
			return true
		}
		return f(v)
	}, cfg); err != nil {
		t.Error(err)
	}
}

func TestCountLines(t *testing.T) {
	sh := MustParse(blurShader)
	n := CountLines(sh)
	// 2 const arrays + 2 decls + assignment + for + 2 loop body + final: 8-ish
	if n < 6 || n > 12 {
		t.Errorf("CountLines = %d, want around 8", n)
	}
}

func TestCountLinesIgnoresInterface(t *testing.T) {
	sh := MustParse(`#version 330
uniform vec4 u0;
uniform vec4 u1;
in vec2 uv;
out vec4 c;
void main() { c = u0 + u1; }
`)
	if n := CountLines(sh); n != 1 {
		t.Errorf("CountLines = %d, want 1", n)
	}
}

func TestTypeSpecString(t *testing.T) {
	if got := Scalar("vec3").String(); got != "vec3" {
		t.Error(got)
	}
	if got := (TypeSpec{Name: "float", ArrayLen: 4}).String(); got != "float[4]" {
		t.Error(got)
	}
	if got := (TypeSpec{Name: "float", ArrayLen: 0}).String(); got != "float[]" {
		t.Error(got)
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustParse should panic on bad input")
		}
	}()
	MustParse("not a shader @@@")
}

func TestExprString(t *testing.T) {
	src := "void main() { x = (a + b) * c - d / (e - f); }"
	sh, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	as := sh.Func("main").Body.Stmts[0].(*AssignStmt)
	got := ExprString(as.RHS)
	want := "(a + b) * c - d / (e - f)"
	if got != want {
		t.Errorf("ExprString = %q, want %q", got, want)
	}
	if !strings.Contains(Print(sh), want) {
		t.Error("Print should contain canonical expression")
	}
}
