// Package glsl implements a lexer, parser, AST, and printer for the subset
// of the OpenGL Shading Language used by GFXBench-style fragment shaders.
//
// The subset covers desktop GLSL 330-era and OpenGL ES 3.0-era fragment
// shaders: scalar/vector/matrix types, samplers, const arrays, user-defined
// functions, structured control flow (if/else and canonical for loops),
// swizzles, constructors, and the common builtin function library.
package glsl

import "fmt"

// Kind identifies the lexical class of a token.
type Kind int

// Token kinds.
const (
	EOF Kind = iota
	Ident
	IntLit
	FloatLit
	BoolLit
	Keyword
	TypeName
	Punct   // single or multi char punctuation/operator
	PPLine  // a raw preprocessor line (only produced when lexer keeps directives)
	Comment // only produced when lexer keeps comments
)

func (k Kind) String() string {
	switch k {
	case EOF:
		return "EOF"
	case Ident:
		return "identifier"
	case IntLit:
		return "int literal"
	case FloatLit:
		return "float literal"
	case BoolLit:
		return "bool literal"
	case Keyword:
		return "keyword"
	case TypeName:
		return "type name"
	case Punct:
		return "punctuation"
	case PPLine:
		return "preprocessor line"
	case Comment:
		return "comment"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Pos is a line/column source position (1-based).
type Pos struct {
	Line int
	Col  int
}

func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// Token is a single lexical token.
type Token struct {
	Kind Kind
	Text string
	Pos  Pos
}

func (t Token) String() string {
	if t.Kind == EOF {
		return "EOF"
	}
	return fmt.Sprintf("%s %q", t.Kind, t.Text)
}

// keywords is the set of reserved words that are not type names.
var keywords = map[string]bool{
	"const": true, "uniform": true, "in": true, "out": true, "inout": true,
	"varying": true, "attribute": true,
	"if": true, "else": true, "for": true, "while": true, "do": true,
	"return": true, "discard": true, "break": true, "continue": true,
	"struct": true, "layout": true, "precision": true,
	"highp": true, "mediump": true, "lowp": true,
	"flat": true, "smooth": true, "noperspective": true, "centroid": true,
	"invariant": true,
}

// typeNames is the set of builtin type names in the supported subset.
var typeNames = map[string]bool{
	"void": true, "bool": true, "int": true, "uint": true, "float": true,
	"vec2": true, "vec3": true, "vec4": true,
	"ivec2": true, "ivec3": true, "ivec4": true,
	"uvec2": true, "uvec3": true, "uvec4": true,
	"bvec2": true, "bvec3": true, "bvec4": true,
	"mat2": true, "mat3": true, "mat4": true,
	"sampler2D": true, "sampler3D": true, "samplerCube": true,
	"sampler2DShadow": true, "sampler2DArray": true,
}

// IsKeyword reports whether s is a reserved (non-type) keyword.
func IsKeyword(s string) bool { return keywords[s] }

// IsTypeName reports whether s names a builtin type in the subset.
func IsTypeName(s string) bool { return typeNames[s] }
