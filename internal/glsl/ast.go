package glsl

// TypeSpec is a syntactic type reference: a builtin type name plus an
// optional array length. ArrayLen < 0 means "not an array"; ArrayLen == 0
// means an unsized array ("float[]"), which is only legal with an
// initializer that determines the size.
type TypeSpec struct {
	Name     string
	ArrayLen int
}

// Scalar returns the TypeSpec for a non-array type name.
func Scalar(name string) TypeSpec { return TypeSpec{Name: name, ArrayLen: -1} }

// IsArray reports whether the spec denotes an array type.
func (t TypeSpec) IsArray() bool { return t.ArrayLen >= 0 }

func (t TypeSpec) String() string {
	if !t.IsArray() {
		return t.Name
	}
	if t.ArrayLen == 0 {
		return t.Name + "[]"
	}
	return t.Name + "[" + itoa(t.ArrayLen) + "]"
}

// Shader is a parsed translation unit.
type Shader struct {
	Version string // contents of the #version directive, e.g. "330" or "300 es"
	Decls   []Decl
}

// Decl is a top-level declaration.
type Decl interface{ declNode() }

// Qualifier is a storage qualifier for globals and parameters.
type Qualifier int

// Storage qualifiers.
const (
	QualNone Qualifier = iota
	QualConst
	QualUniform
	QualIn
	QualOut
	QualInOut
)

func (q Qualifier) String() string {
	switch q {
	case QualConst:
		return "const"
	case QualUniform:
		return "uniform"
	case QualIn:
		return "in"
	case QualOut:
		return "out"
	case QualInOut:
		return "inout"
	}
	return ""
}

// GlobalVar is a module-scope variable declaration: uniforms, shader inputs
// and outputs, and global constants.
type GlobalVar struct {
	Pos       Pos
	Qual      Qualifier
	Precision string // "", "lowp", "mediump", "highp"
	Layout    string // raw layout(...) contents, e.g. "location = 0"
	Type      TypeSpec
	Name      string
	Init      Expr // may be nil
}

// PrecisionDecl is a "precision mediump float;" statement.
type PrecisionDecl struct {
	Pos       Pos
	Precision string
	Type      string
}

// Param is a function parameter.
type Param struct {
	Qual Qualifier // QualNone, QualIn, QualOut, QualInOut
	Type TypeSpec
	Name string
}

// FuncDecl is a function definition. Prototypes (no body) have Body == nil.
type FuncDecl struct {
	Pos    Pos
	Return TypeSpec
	Name   string
	Params []Param
	Body   *BlockStmt
}

func (*GlobalVar) declNode()     {}
func (*PrecisionDecl) declNode() {}
func (*FuncDecl) declNode()      {}

// Stmt is a statement node.
type Stmt interface{ stmtNode() }

// BlockStmt is a brace-delimited statement list.
type BlockStmt struct {
	Pos   Pos
	Stmts []Stmt
}

// DeclStmt declares a local variable, optionally const, optionally array.
type DeclStmt struct {
	Pos   Pos
	Const bool
	Type  TypeSpec
	Name  string
	Init  Expr // may be nil
}

// AssignStmt assigns to an lvalue. Op is "=", "+=", "-=", "*=", "/=".
type AssignStmt struct {
	Pos Pos
	LHS Expr
	Op  string
	RHS Expr
}

// IfStmt is a conditional. Else is nil, a *BlockStmt, or a chained *IfStmt.
type IfStmt struct {
	Pos  Pos
	Cond Expr
	Then *BlockStmt
	Else Stmt
}

// ForStmt is a canonical counted loop:
//
//	for (Init; Cond; Post) Body
//
// Init and Post may be nil (but the corpus always uses the canonical form).
type ForStmt struct {
	Pos  Pos
	Init Stmt // *DeclStmt or *AssignStmt
	Cond Expr
	Post Stmt // *AssignStmt
	Body *BlockStmt
}

// WhileStmt is a condition-only loop.
type WhileStmt struct {
	Pos  Pos
	Cond Expr
	Body *BlockStmt
}

// ReturnStmt returns from a function, with an optional result.
type ReturnStmt struct {
	Pos    Pos
	Result Expr // may be nil
}

// DiscardStmt abandons the current fragment.
type DiscardStmt struct{ Pos Pos }

// BreakStmt exits the innermost loop.
type BreakStmt struct{ Pos Pos }

// ContinueStmt continues the innermost loop.
type ContinueStmt struct{ Pos Pos }

// ExprStmt evaluates an expression for side effects (function calls).
type ExprStmt struct {
	Pos Pos
	X   Expr
}

func (*BlockStmt) stmtNode()    {}
func (*DeclStmt) stmtNode()     {}
func (*AssignStmt) stmtNode()   {}
func (*IfStmt) stmtNode()       {}
func (*ForStmt) stmtNode()      {}
func (*WhileStmt) stmtNode()    {}
func (*ReturnStmt) stmtNode()   {}
func (*DiscardStmt) stmtNode()  {}
func (*BreakStmt) stmtNode()    {}
func (*ContinueStmt) stmtNode() {}
func (*ExprStmt) stmtNode()     {}

// Expr is an expression node.
type Expr interface{ exprNode() }

// IdentExpr references a variable by name.
type IdentExpr struct {
	Pos  Pos
	Name string
}

// IntLitExpr is an integer literal.
type IntLitExpr struct {
	Pos   Pos
	Value int64
}

// FloatLitExpr is a floating point literal.
type FloatLitExpr struct {
	Pos   Pos
	Value float64
}

// BoolLitExpr is true or false.
type BoolLitExpr struct {
	Pos   Pos
	Value bool
}

// BinaryExpr applies a binary operator. Op is one of
// + - * / % < > <= >= == != && || ^^.
type BinaryExpr struct {
	Pos  Pos
	Op   string
	X, Y Expr
}

// UnaryExpr applies a prefix operator: "-" or "!".
type UnaryExpr struct {
	Pos Pos
	Op  string
	X   Expr
}

// CondExpr is the ternary ?: operator.
type CondExpr struct {
	Pos        Pos
	Cond       Expr
	Then, Else Expr
}

// CallExpr calls a builtin function, a type constructor (vec4(...)), or a
// user-defined function.
type CallExpr struct {
	Pos    Pos
	Callee string
	Args   []Expr
}

// ArrayCtorExpr is a GLSL array constructor: float[3](a, b, c) or
// vec2[](x, y). Len == 0 means the length comes from len(Elems).
type ArrayCtorExpr struct {
	Pos   Pos
	Elem  TypeSpec
	Len   int
	Elems []Expr
}

// IndexExpr subscripts an array, vector, or matrix.
type IndexExpr struct {
	Pos   Pos
	X     Expr
	Index Expr
}

// FieldExpr is a swizzle selection like v.xyz or v.r.
type FieldExpr struct {
	Pos  Pos
	X    Expr
	Name string
}

func (*IdentExpr) exprNode()     {}
func (*IntLitExpr) exprNode()    {}
func (*FloatLitExpr) exprNode()  {}
func (*BoolLitExpr) exprNode()   {}
func (*BinaryExpr) exprNode()    {}
func (*UnaryExpr) exprNode()     {}
func (*CondExpr) exprNode()      {}
func (*CallExpr) exprNode()      {}
func (*ArrayCtorExpr) exprNode() {}
func (*IndexExpr) exprNode()     {}
func (*FieldExpr) exprNode()     {}

// Funcs returns the function declarations in the shader, in order.
func (s *Shader) Funcs() []*FuncDecl {
	var out []*FuncDecl
	for _, d := range s.Decls {
		if f, ok := d.(*FuncDecl); ok {
			out = append(out, f)
		}
	}
	return out
}

// Func returns the function with the given name, or nil.
func (s *Shader) Func(name string) *FuncDecl {
	for _, d := range s.Decls {
		if f, ok := d.(*FuncDecl); ok && f.Name == name {
			return f
		}
	}
	return nil
}

// Globals returns the global variable declarations in order.
func (s *Shader) Globals() []*GlobalVar {
	var out []*GlobalVar
	for _, d := range s.Decls {
		if g, ok := d.(*GlobalVar); ok {
			out = append(out, g)
		}
	}
	return out
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	neg := n < 0
	if neg {
		n = -n
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}
