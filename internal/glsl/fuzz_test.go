package glsl_test

// Native Go fuzz targets for the desktop GLSL frontend, the PR 3 WGSL
// fuzzers' missing sibling:
//
//   - FuzzLexer: LexAll never panics on arbitrary input.
//   - FuzzParse: the recursive-descent parser never panics; rejection is
//     an error, not a crash.
//
// The full-pipeline round trip (parse → lower → generate → re-parse)
// lives in internal/core's FuzzGLSLCompileRoundTrip, which can reach the
// lowering and codegen layers without an import cycle.
//
// Seed corpora live under testdata/fuzz/<FuzzTarget>/ (checked in) and
// are topped up here with grammar-corner snippets. CI runs a short
// -fuzztime smoke per target.

import (
	"testing"

	"shaderopt/internal/glsl"
)

func seedGLSL(f *testing.F) {
	f.Helper()
	for _, s := range []string{
		"#version 330\nin vec2 uv;\nout vec4 c;\nvoid main() { c = vec4(uv, 0.0, 1.0); }",
		"#version 330\nuniform sampler2D t;\nin vec2 uv;\nout vec4 c;\nvoid main() {\n  vec4 a = texture(t, uv);\n  for (int i = 0; i < 4; ++i) { a += a * 0.5; }\n  if (a.x > 1.0) { discard; }\n  c = a;\n}",
		"#version 330\nuniform mat3 m;\nin vec3 p;\nout vec4 c;\nvoid main() { c = vec4(m * p, 1.0); }",
		"float helper(float x) { return x * 2.0; }",
		"void main() { int i = 08; }",
		"void main() { vec4 v = vec4(1.0).xyzw.wzyx; }",
		"while (true) { }",
		"void main() { /* unterminated",
		"#version 330\n#define NOT_PREPROCESSED 1\nvoid main() { }",
		"",
	} {
		f.Add(s)
	}
}

// FuzzLexer checks the lexer never panics: every input either tokenizes
// or fails with an error.
func FuzzLexer(f *testing.F) {
	seedGLSL(f)
	f.Fuzz(func(t *testing.T, src string) {
		glsl.LexAll(src)
	})
}

// FuzzParse checks the parser never panics, no matter how malformed the
// token stream, and that acceptance is deterministic.
func FuzzParse(f *testing.F) {
	seedGLSL(f)
	f.Fuzz(func(t *testing.T, src string) {
		sh1, err1 := glsl.Parse(src)
		sh2, err2 := glsl.Parse(src)
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("parse acceptance is not deterministic: %v vs %v", err1, err2)
		}
		if err1 == nil && (sh1 == nil) != (sh2 == nil) {
			t.Fatal("parse returned nil shader without error")
		}
	})
}
