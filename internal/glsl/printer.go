package glsl

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Print renders a shader AST back to GLSL source.
func Print(sh *Shader) string {
	var pr printer
	if sh.Version != "" {
		pr.linef("#version %s", sh.Version)
	}
	for _, d := range sh.Decls {
		pr.decl(d)
	}
	return pr.sb.String()
}

type printer struct {
	sb     strings.Builder
	indent int
}

func (p *printer) linef(format string, args ...any) {
	for i := 0; i < p.indent; i++ {
		p.sb.WriteString("    ")
	}
	fmt.Fprintf(&p.sb, format, args...)
	p.sb.WriteByte('\n')
}

func (p *printer) decl(d Decl) {
	switch d := d.(type) {
	case *PrecisionDecl:
		p.linef("precision %s %s;", d.Precision, d.Type)
	case *GlobalVar:
		var parts []string
		if d.Layout != "" {
			parts = append(parts, "layout("+strings.ReplaceAll(d.Layout, " ", "")+")")
		}
		if q := d.Qual.String(); q != "" {
			parts = append(parts, q)
		}
		if d.Precision != "" {
			parts = append(parts, d.Precision)
		}
		parts = append(parts, d.Type.Name, d.Name+arraySuffix(d.Type))
		line := strings.Join(parts, " ")
		if d.Init != nil {
			line += " = " + ExprString(d.Init)
		}
		p.linef("%s;", line)
	case *FuncDecl:
		var ps []string
		for _, prm := range d.Params {
			s := prm.Type.Name + " " + prm.Name + arraySuffix(prm.Type)
			if q := prm.Qual.String(); q != "" && prm.Qual != QualIn {
				s = q + " " + s
			}
			ps = append(ps, s)
		}
		if d.Body == nil {
			p.linef("%s %s(%s);", d.Return, d.Name, strings.Join(ps, ", "))
			return
		}
		p.linef("%s %s(%s)", d.Return, d.Name, strings.Join(ps, ", "))
		p.block(d.Body)
	}
}

func arraySuffix(t TypeSpec) string {
	if !t.IsArray() {
		return ""
	}
	if t.ArrayLen == 0 {
		return "[]"
	}
	return "[" + strconv.Itoa(t.ArrayLen) + "]"
}

func (p *printer) block(b *BlockStmt) {
	p.linef("{")
	p.indent++
	for _, s := range b.Stmts {
		p.stmt(s)
	}
	p.indent--
	p.linef("}")
}

func (p *printer) stmt(s Stmt) {
	switch s := s.(type) {
	case *BlockStmt:
		p.block(s)
	case *DeclStmt:
		prefix := ""
		if s.Const {
			prefix = "const "
		}
		line := prefix + s.Type.Name + " " + s.Name + arraySuffix(s.Type)
		if s.Init != nil {
			line += " = " + ExprString(s.Init)
		}
		p.linef("%s;", line)
	case *AssignStmt:
		p.linef("%s %s %s;", ExprString(s.LHS), s.Op, ExprString(s.RHS))
	case *IfStmt:
		p.linef("if (%s)", ExprString(s.Cond))
		p.block(s.Then)
		switch e := s.Else.(type) {
		case nil:
		case *BlockStmt:
			if len(e.Stmts) > 0 {
				p.linef("else")
				p.block(e)
			}
		case *IfStmt:
			p.linef("else")
			p.indent++
			p.stmt(e)
			p.indent--
		}
	case *ForStmt:
		init := strings.TrimSuffix(p.inlineStmt(s.Init), ";")
		post := strings.TrimSuffix(p.inlineStmt(s.Post), ";")
		cond := ""
		if s.Cond != nil {
			cond = ExprString(s.Cond)
		}
		p.linef("for (%s; %s; %s)", init, cond, post)
		p.block(s.Body)
	case *WhileStmt:
		p.linef("while (%s)", ExprString(s.Cond))
		p.block(s.Body)
	case *ReturnStmt:
		if s.Result == nil {
			p.linef("return;")
		} else {
			p.linef("return %s;", ExprString(s.Result))
		}
	case *DiscardStmt:
		p.linef("discard;")
	case *BreakStmt:
		p.linef("break;")
	case *ContinueStmt:
		p.linef("continue;")
	case *ExprStmt:
		p.linef("%s;", ExprString(s.X))
	}
}

// inlineStmt renders a simple statement without indentation or newline, for
// use inside for(...) headers.
func (p *printer) inlineStmt(s Stmt) string {
	switch s := s.(type) {
	case nil:
		return ""
	case *DeclStmt:
		prefix := ""
		if s.Const {
			prefix = "const "
		}
		out := prefix + s.Type.Name + " " + s.Name + arraySuffix(s.Type)
		if s.Init != nil {
			out += " = " + ExprString(s.Init)
		}
		return out
	case *AssignStmt:
		return ExprString(s.LHS) + " " + s.Op + " " + ExprString(s.RHS)
	case *ExprStmt:
		return ExprString(s.X)
	}
	return ""
}

// ExprString renders an expression with minimal parentheses.
func ExprString(e Expr) string {
	return exprPrec(e, 0)
}

// opPrec mirrors the parser's precedence; primary expressions use 100.
func exprOpPrec(e Expr) int {
	switch e := e.(type) {
	case *BinaryExpr:
		return binPrec[e.Op]
	case *CondExpr:
		return 0
	case *UnaryExpr:
		return 8
	default:
		return 100
	}
}

func exprPrec(e Expr, min int) string {
	s, prec := exprRender(e)
	if prec < min {
		return "(" + s + ")"
	}
	return s
}

func exprRender(e Expr) (string, int) {
	switch e := e.(type) {
	case *IdentExpr:
		return e.Name, 100
	case *IntLitExpr:
		return strconv.FormatInt(e.Value, 10), 100
	case *FloatLitExpr:
		return FormatFloat(e.Value), 100
	case *BoolLitExpr:
		if e.Value {
			return "true", 100
		}
		return "false", 100
	case *BinaryExpr:
		prec := binPrec[e.Op]
		lhs := exprPrec(e.X, prec)
		// Right operand needs strictly higher precedence for - / % which are
		// not associative; doing it for all ops keeps output canonical.
		rhs := exprPrec(e.Y, prec+1)
		return lhs + " " + e.Op + " " + rhs, prec
	case *UnaryExpr:
		return e.Op + exprPrec(e.X, 9), 8
	case *CondExpr:
		return exprPrec(e.Cond, 1) + " ? " + exprPrec(e.Then, 1) + " : " + exprPrec(e.Else, 0), 0
	case *CallExpr:
		args := make([]string, len(e.Args))
		for i, a := range e.Args {
			args[i] = ExprString(a)
		}
		return e.Callee + "(" + strings.Join(args, ", ") + ")", 100
	case *ArrayCtorExpr:
		elems := make([]string, len(e.Elems))
		for i, a := range e.Elems {
			elems[i] = ExprString(a)
		}
		return e.Elem.Name + "[](" + strings.Join(elems, ", ") + ")", 100
	case *IndexExpr:
		return exprPrec(e.X, 100) + "[" + ExprString(e.Index) + "]", 100
	case *FieldExpr:
		return exprPrec(e.X, 100) + "." + e.Name, 100
	}
	return "/*?*/", 100
}

// FormatFloat renders a float GLSL-style: always with a decimal point or
// exponent so it lexes as a float literal.
func FormatFloat(v float64) string {
	if math.IsInf(v, 1) {
		return "1e38"
	}
	if math.IsInf(v, -1) {
		return "-1e38"
	}
	if math.IsNaN(v) {
		return "(0.0 / 0.0)"
	}
	s := strconv.FormatFloat(v, 'g', -1, 64)
	if !strings.ContainsAny(s, ".eE") {
		s += ".0"
	}
	// "1e+06" -> "1e6" style cleanup for GLSL friendliness.
	s = strings.ReplaceAll(s, "e+0", "e")
	s = strings.ReplaceAll(s, "e-0", "e-")
	s = strings.ReplaceAll(s, "e+", "e")
	return s
}

// CountLines counts executable lines the way the paper's Fig. 4a metric
// does: statements and declarations, ignoring blank lines, comments, lone
// braces, and pure declarations of inputs/uniforms.
func CountLines(sh *Shader) int {
	n := 0
	for _, d := range sh.Decls {
		if f, ok := d.(*FuncDecl); ok && f.Body != nil {
			n += countBlockLines(f.Body)
		}
		if g, ok := d.(*GlobalVar); ok && g.Qual == QualConst {
			n++ // global constant tables count as executable content
		}
	}
	return n
}

func countBlockLines(b *BlockStmt) int {
	n := 0
	for _, s := range b.Stmts {
		n += countStmtLines(s)
	}
	return n
}

func countStmtLines(s Stmt) int {
	switch s := s.(type) {
	case *BlockStmt:
		return countBlockLines(s)
	case *IfStmt:
		n := 1 + countBlockLines(s.Then)
		switch e := s.Else.(type) {
		case *BlockStmt:
			n += countBlockLines(e)
		case *IfStmt:
			n += countStmtLines(e)
		}
		return n
	case *ForStmt:
		return 1 + countBlockLines(s.Body)
	case *WhileStmt:
		return 1 + countBlockLines(s.Body)
	case nil:
		return 0
	default:
		return 1
	}
}
