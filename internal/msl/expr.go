package msl

import (
	"fmt"
	"strconv"

	"shaderopt/internal/glsl"
	"shaderopt/internal/sem"
)

// intrinsicRenames maps MSL intrinsic spellings onto the canonical
// library names shared with the GLSL frontend. Identically-named
// intrinsics (sin, dot, clamp, pow, saturate, mix, fract, ...) pass
// through unchanged. The glsl_ names are this backend's own helper
// prelude: they map straight back onto the IR builtins without their
// template bodies ever being translated, so a round trip reconstructs
// the same call with the interpreter's exact float64 semantics.
var intrinsicRenames = map[string]string{
	"rsqrt":        "inversesqrt",
	"atan2":        "atan",
	"dfdx":         "dFdx",
	"dfdy":         "dFdy",
	"glsl_mod":     "mod",
	"glsl_radians": "radians",
	"glsl_degrees": "degrees",
}

// promote applies MSL's implicit scalar int→float conversion: when the
// expression is an int scalar and the expected type is float-kind, it is
// wrapped in an explicit float() conversion so the generated GLSL stays
// well-typed under the subset's strict checker.
func (tr *translator) promote(x glsl.Expr, xt sem.Type, want sem.Type) (glsl.Expr, sem.Type) {
	if xt.Equal(sem.Int) && want.Kind == sem.KindFloat {
		return &glsl.CallExpr{Callee: "float", Args: []glsl.Expr{x}}, sem.Float
	}
	return x, xt
}

// expr translates an MSL expression into the canonical AST, returning
// the translated node and its inferred sem type.
func (tr *translator) expr(e Expr) (glsl.Expr, sem.Type, error) {
	switch e := e.(type) {
	case *IntLitExpr:
		v, err := strconv.ParseInt(e.Text, 10, 64)
		if err != nil {
			return nil, sem.Void, errf(e.Pos, "bad int literal %q", e.Text)
		}
		return &glsl.IntLitExpr{Pos: pos(e.Pos), Value: v}, sem.Int, nil
	case *FloatLitExpr:
		v, err := strconv.ParseFloat(e.Text, 64)
		if err != nil {
			return nil, sem.Void, errf(e.Pos, "bad float literal %q", e.Text)
		}
		return &glsl.FloatLitExpr{Pos: pos(e.Pos), Value: v}, sem.Float, nil
	case *BoolLitExpr:
		return &glsl.BoolLitExpr{Pos: pos(e.Pos), Value: e.Value}, sem.Bool, nil
	case *IdentExpr:
		return tr.identExpr(e)
	case *UnaryExpr:
		x, xt, err := tr.expr(e.X)
		if err != nil {
			return nil, sem.Void, err
		}
		return &glsl.UnaryExpr{Pos: pos(e.Pos), Op: e.Op, X: x}, xt, nil
	case *BinaryExpr:
		return tr.binaryExpr(e)
	case *CondExpr:
		return tr.condExpr(e)
	case *CallExpr:
		return tr.callExpr(e)
	case *MethodCallExpr:
		return tr.methodCall(e)
	case *IndexExpr:
		return tr.indexExpr(e)
	case *MemberExpr:
		return tr.memberExpr(e)
	case *ArrayLitExpr:
		return tr.arrayLit(e)
	}
	return nil, sem.Void, fmt.Errorf("unknown expression %T", e)
}

// arrayLit translates array<T, N>{...} in expression position.
func (tr *translator) arrayLit(e *ArrayLitExpr) (glsl.Expr, sem.Type, error) {
	if e.Elem == nil {
		return nil, sem.Void, errf(e.Pos, "brace initializers are only legal as array initializers")
	}
	elem, err := tr.resolveType(e.Elem)
	if err != nil {
		return nil, sem.Void, errf(e.Pos, "%v", err)
	}
	if elem.IsArray() || elem.IsSampler() {
		return nil, sem.Void, errf(e.Pos, "array of %s is outside the supported subset", elem)
	}
	n := e.Len
	if n <= 0 {
		n = len(e.Elems)
	}
	if n != len(e.Elems) {
		return nil, sem.Void, errf(e.Pos, "array<%s, %d> initialized with %d elements", elem, n, len(e.Elems))
	}
	return tr.initializer(&ArrayLitExpr{Pos: e.Pos, Elems: e.Elems}, sem.ArrayOf(elem, n))
}

func (tr *translator) binaryExpr(e *BinaryExpr) (glsl.Expr, sem.Type, error) {
	x, xt, err := tr.expr(e.X)
	if err != nil {
		return nil, sem.Void, err
	}
	y, yt, err := tr.expr(e.Y)
	if err != nil {
		return nil, sem.Void, err
	}
	// MSL promotes int scalars in mixed arithmetic; the subset's IR does
	// not, so make the conversion explicit on the int side.
	if xt.Kind == sem.KindFloat || yt.Kind == sem.KindFloat {
		x, xt = tr.promote(x, xt, sem.Float)
		y, yt = tr.promote(y, yt, sem.Float)
	}
	rt, err := sem.BinaryResult(e.Op, xt, yt)
	if err != nil {
		return nil, sem.Void, errf(e.Pos, "%v", err)
	}
	return &glsl.BinaryExpr{Pos: pos(e.Pos), Op: e.Op, X: x, Y: y}, rt, nil
}

func (tr *translator) condExpr(e *CondExpr) (glsl.Expr, sem.Type, error) {
	cond, ct, err := tr.expr(e.Cond)
	if err != nil {
		return nil, sem.Void, err
	}
	if !ct.Equal(sem.Bool) {
		return nil, sem.Void, errf(e.Pos, "ternary condition must be bool, got %s", ct)
	}
	thn, tt, err := tr.expr(e.X)
	if err != nil {
		return nil, sem.Void, err
	}
	els, et, err := tr.expr(e.Y)
	if err != nil {
		return nil, sem.Void, err
	}
	if tt.Kind == sem.KindFloat || et.Kind == sem.KindFloat {
		thn, tt = tr.promote(thn, tt, sem.Float)
		els, et = tr.promote(els, et, sem.Float)
	}
	if !tt.Equal(et) {
		return nil, sem.Void, errf(e.Pos, "ternary arms have mismatched types %s and %s", tt, et)
	}
	return &glsl.CondExpr{Pos: pos(e.Pos), Cond: cond, Then: thn, Else: els}, tt, nil
}

func (tr *translator) identExpr(e *IdentExpr) (glsl.Expr, sem.Type, error) {
	if tr.samplers[e.Name] {
		return nil, sem.Void, errf(e.Pos, "sampler %q can only appear as a .sample argument", e.Name)
	}
	if tr.instances[e.Name] != nil {
		return nil, sem.Void, errf(e.Pos, "interface struct %q can only be accessed through its members", e.Name)
	}
	if tr.outInsts[e.Name] {
		return nil, sem.Void, errf(e.Pos, "output struct %q can only be assigned through its members and returned", e.Name)
	}
	if b, ok := tr.lookup(e.Name); ok {
		return &glsl.IdentExpr{Pos: pos(e.Pos), Name: b.Name}, b.T, nil
	}
	return nil, sem.Void, errf(e.Pos, "undefined identifier %q", e.Name)
}

func (tr *translator) indexExpr(e *IndexExpr) (glsl.Expr, sem.Type, error) {
	x, xt, err := tr.expr(e.X)
	if err != nil {
		return nil, sem.Void, err
	}
	idx, it, err := tr.expr(e.Index)
	if err != nil {
		return nil, sem.Void, err
	}
	if it.Kind != sem.KindInt || !it.IsScalar() {
		return nil, sem.Void, errf(e.Pos, "index must be an integer scalar, got %s", it)
	}
	var rt sem.Type
	switch {
	case xt.IsArray():
		rt = xt.Elem()
	case xt.IsMatrix():
		rt = sem.VecType(sem.KindFloat, xt.Mat)
	case xt.IsVector():
		rt = xt.ScalarOf()
	default:
		return nil, sem.Void, errf(e.Pos, "cannot index %s", xt)
	}
	return &glsl.IndexExpr{Pos: pos(e.Pos), X: x, Index: idx}, rt, nil
}

// memberExpr resolves interface-struct member access (in.uv, u.scale) to
// the flattened globals, and vector swizzles otherwise.
func (tr *translator) memberExpr(e *MemberExpr) (glsl.Expr, sem.Type, error) {
	if id, ok := e.X.(*IdentExpr); ok {
		if fields := tr.instances[id.Name]; fields != nil {
			b, ok := fields[e.Name]
			if !ok {
				return nil, sem.Void, errf(e.Pos, "struct %q has no member %q", id.Name, e.Name)
			}
			return &glsl.IdentExpr{Pos: pos(e.Pos), Name: b.Name}, b.T, nil
		}
	}
	x, xt, err := tr.expr(e.X)
	if err != nil {
		return nil, sem.Void, err
	}
	if !xt.IsVector() {
		return nil, sem.Void, errf(e.Pos, "cannot swizzle %s", xt)
	}
	idx, err := sem.SwizzleIndices(e.Name, xt.Vec)
	if err != nil {
		return nil, sem.Void, errf(e.Pos, "%v", err)
	}
	rt := sem.VecType(xt.Kind, len(idx))
	return &glsl.FieldExpr{Pos: pos(e.Pos), X: x, Name: e.Name}, rt, nil
}

func (tr *translator) callExpr(e *CallExpr) (glsl.Expr, sem.Type, error) {
	// Type constructors: float4(...), float3x3(...), uint(x), int(x).
	if name, ok := ctorName(e.Callee); ok {
		return tr.ctorCall(e, name)
	}

	name := e.Callee
	if nn, ok := intrinsicRenames[name]; ok {
		name = nn
	}
	if sem.IsBuiltin(name) {
		args, ats, err := tr.exprList(e.Args)
		if err != nil {
			return nil, sem.Void, err
		}
		rt, err := sem.ResolveBuiltin(name, ats)
		if err != nil {
			// MSL promotes int scalar arguments (pow(x, 2), max(v, 0));
			// retry with the conversions made explicit.
			promoted := false
			for i := range args {
				if ats[i].Equal(sem.Int) {
					args[i], ats[i] = tr.promote(args[i], ats[i], sem.Float)
					promoted = true
				}
			}
			if promoted {
				rt, err = sem.ResolveBuiltin(name, ats)
			}
			if err != nil {
				return nil, sem.Void, errf(e.Pos, "%v", err)
			}
		}
		return &glsl.CallExpr{Pos: pos(e.Pos), Callee: name, Args: args}, rt, nil
	}

	// User-defined function.
	if nn, ok := tr.names.Renamed(e.Callee); ok {
		if rt, ok := tr.fnRet[nn]; ok {
			args, _, err := tr.exprList(e.Args)
			if err != nil {
				return nil, sem.Void, err
			}
			return &glsl.CallExpr{Pos: pos(e.Pos), Callee: nn, Args: args}, rt, nil
		}
	}
	return nil, sem.Void, errf(e.Pos, "call to undefined function %q", e.Callee)
}

// ctorName maps MSL constructor spellings to GLSL constructor names.
func ctorName(callee string) (string, bool) {
	switch callee {
	case "float", "half":
		return "float", true
	case "int", "uint":
		return "int", true
	case "bool":
		return "bool", true
	}
	if n, kind, ok := vecName(callee); ok {
		switch kind {
		case sem.KindFloat:
			return fmt.Sprintf("vec%d", n), true
		case sem.KindInt:
			return fmt.Sprintf("ivec%d", n), true
		case sem.KindBool:
			return fmt.Sprintf("bvec%d", n), true
		}
	}
	if n, ok := matName(callee); ok {
		return fmt.Sprintf("mat%d", n), true
	}
	return "", false
}

func (tr *translator) ctorCall(e *CallExpr, glslName string) (glsl.Expr, sem.Type, error) {
	args, ats, err := tr.exprList(e.Args)
	if err != nil {
		return nil, sem.Void, err
	}
	// Float-family constructors promote int scalar components
	// (float3(1, 0, 0) is idiomatic MSL); conversions become explicit.
	if len(args) > 1 && (glslName == "float" || glslName[0] == 'v' || glslName[0] == 'm') {
		for i := range args {
			args[i], ats[i] = tr.promote(args[i], ats[i], sem.Float)
		}
	}
	rt, err := sem.ResolveConstructor(glslName, ats)
	if err != nil {
		return nil, sem.Void, errf(e.Pos, "%v", err)
	}
	return &glsl.CallExpr{Pos: pos(e.Pos), Callee: glslName, Args: args}, rt, nil
}

// methodCall lowers MSL's separate texture+sampler object model back onto
// the combined-sampler builtins:
//
//	t.sample(s, c)            → texture(t, c)
//	t.sample(s, c, bias(b))   → texture(t, c, b)
//	t.sample(s, c, level(l))  → textureLod(t, c, l)
//	t.sample(s, c, uint(a))   → texture(t, vec3(c, float(a)))   [2d array]
//	t.sample_compare(s, c, d) → texture(t, vec3(c, d))          [depth2d]
//	t.read(uint2(c), l)       → texelFetch(t, c, l)
//
// The sampler-state argument must name a declared sampler parameter; it
// carries no information the combined model needs, so it is dropped.
func (tr *translator) methodCall(e *MethodCallExpr) (glsl.Expr, sem.Type, error) {
	recv, rt, err := tr.expr(e.Recv)
	if err != nil {
		return nil, sem.Void, err
	}
	if !rt.IsSampler() {
		return nil, sem.Void, errf(e.Pos, ".%s receiver must be a texture binding, got %s", e.Method, rt)
	}
	switch e.Method {
	case "sample":
		return tr.sampleCall(e, recv, rt)
	case "sample_compare":
		return tr.sampleCompareCall(e, recv, rt)
	case "read":
		return tr.readCall(e, recv, rt)
	}
	return nil, sem.Void, errf(e.Pos, "method .%s is outside the supported subset", e.Method)
}

// samplerArg checks that the first argument of a sampling method names a
// declared sampler parameter.
func (tr *translator) samplerArg(e *MethodCallExpr) error {
	if len(e.Args) == 0 {
		return errf(e.Pos, ".%s needs a sampler argument", e.Method)
	}
	id, ok := e.Args[0].(*IdentExpr)
	if !ok || !tr.samplers[id.Name] {
		return errf(e.Pos, ".%s: first argument must be a declared sampler parameter", e.Method)
	}
	return nil
}

func (tr *translator) sampleCall(e *MethodCallExpr, recv glsl.Expr, rt sem.Type) (glsl.Expr, sem.Type, error) {
	if err := tr.samplerArg(e); err != nil {
		return nil, sem.Void, err
	}
	if len(e.Args) < 2 || len(e.Args) > 3 {
		return nil, sem.Void, errf(e.Pos, ".sample needs 2 or 3 arguments, got %d", len(e.Args))
	}
	coord, ct, err := tr.expr(e.Args[1])
	if err != nil {
		return nil, sem.Void, err
	}
	coord, ct = tr.promote(coord, ct, sem.Float)

	if rt.Dim == "2DArray" {
		// The layer argument rejoins the coordinate as the z component.
		if len(e.Args) != 3 {
			return nil, sem.Void, errf(e.Pos, ".sample on a texture2d_array needs a layer argument")
		}
		layer, lt, err := tr.expr(e.Args[2])
		if err != nil {
			return nil, sem.Void, err
		}
		layer, _ = tr.promote(layer, lt, sem.Float)
		full := &glsl.CallExpr{Pos: pos(e.Pos), Callee: "vec3", Args: []glsl.Expr{coord, layer}}
		return tr.textureResult(e, "texture", []glsl.Expr{recv, full}, []sem.Type{rt, sem.Vec3})
	}

	args := []glsl.Expr{recv, coord}
	ats := []sem.Type{rt, ct}
	target := "texture"
	if len(e.Args) == 3 {
		wrap, ok := e.Args[2].(*CallExpr)
		if !ok || (wrap.Callee != "bias" && wrap.Callee != "level") || len(wrap.Args) != 1 {
			return nil, sem.Void, errf(e.Pos, ".sample: third argument must be bias(b) or level(l)")
		}
		x, xt, err := tr.expr(wrap.Args[0])
		if err != nil {
			return nil, sem.Void, err
		}
		x, xt = tr.promote(x, xt, sem.Float)
		args = append(args, x)
		ats = append(ats, xt)
		if wrap.Callee == "level" {
			target = "textureLod"
		}
	}
	return tr.textureResult(e, target, args, ats)
}

func (tr *translator) sampleCompareCall(e *MethodCallExpr, recv glsl.Expr, rt sem.Type) (glsl.Expr, sem.Type, error) {
	if err := tr.samplerArg(e); err != nil {
		return nil, sem.Void, err
	}
	if len(e.Args) != 3 {
		return nil, sem.Void, errf(e.Pos, ".sample_compare needs 3 arguments, got %d", len(e.Args))
	}
	coord, ct, err := tr.expr(e.Args[1])
	if err != nil {
		return nil, sem.Void, err
	}
	if !ct.Equal(sem.Vec2) {
		return nil, sem.Void, errf(e.Pos, ".sample_compare coordinate must be float2, got %s", ct)
	}
	dref, dt, err := tr.expr(e.Args[2])
	if err != nil {
		return nil, sem.Void, err
	}
	dref, _ = tr.promote(dref, dt, sem.Float)
	full := &glsl.CallExpr{Pos: pos(e.Pos), Callee: "vec3", Args: []glsl.Expr{coord, dref}}
	return tr.textureResult(e, "texture", []glsl.Expr{recv, full}, []sem.Type{rt, sem.Vec3})
}

func (tr *translator) readCall(e *MethodCallExpr, recv glsl.Expr, rt sem.Type) (glsl.Expr, sem.Type, error) {
	if len(e.Args) != 2 {
		return nil, sem.Void, errf(e.Pos, ".read needs 2 arguments, got %d", len(e.Args))
	}
	// The coordinate is spelled uintN(c) around an integer vector;
	// unwrapping the cast recovers the texelFetch coordinate exactly.
	wrap, ok := e.Args[0].(*CallExpr)
	if !ok {
		return nil, sem.Void, errf(e.Pos, ".read coordinate must be a uint2/uint3 cast of an integer vector")
	}
	var inner Expr
	switch wrap.Callee {
	case "uint2", "uint3", "int2", "int3":
		if len(wrap.Args) != 1 {
			return nil, sem.Void, errf(e.Pos, ".read coordinate cast takes one argument")
		}
		inner = wrap.Args[0]
	default:
		return nil, sem.Void, errf(e.Pos, ".read coordinate must be a uint2/uint3 cast of an integer vector")
	}
	coord, ct, err := tr.expr(inner)
	if err != nil {
		return nil, sem.Void, err
	}
	if !ct.IsVector() || ct.Kind != sem.KindInt {
		return nil, sem.Void, errf(e.Pos, ".read coordinate must be an integer vector, got %s", ct)
	}
	lod, lt, err := tr.expr(e.Args[1])
	if err != nil {
		return nil, sem.Void, err
	}
	if !lt.Equal(sem.Int) {
		return nil, sem.Void, errf(e.Pos, ".read level must be an int, got %s", lt)
	}
	// The subset's texelFetch wants the lod at the coordinate's width
	// (only the first component is consulted); splat the scalar back up.
	lodVec := &glsl.CallExpr{Pos: pos(e.Pos), Callee: fmt.Sprintf("ivec%d", ct.Vec), Args: []glsl.Expr{lod}}
	return tr.textureResult(e, "texelFetch", []glsl.Expr{recv, coord, lodVec}, []sem.Type{rt, ct, ct})
}

func (tr *translator) textureResult(e *MethodCallExpr, target string, args []glsl.Expr, ats []sem.Type) (glsl.Expr, sem.Type, error) {
	out, err := sem.ResolveBuiltin(target, ats)
	if err != nil {
		return nil, sem.Void, errf(e.Pos, ".%s: %v", e.Method, err)
	}
	return &glsl.CallExpr{Pos: pos(e.Pos), Callee: target, Args: args}, out, nil
}

func (tr *translator) exprList(list []Expr) ([]glsl.Expr, []sem.Type, error) {
	args := make([]glsl.Expr, len(list))
	ats := make([]sem.Type, len(list))
	for i, a := range list {
		x, t, err := tr.expr(a)
		if err != nil {
			return nil, nil, err
		}
		args[i], ats[i] = x, t
	}
	return args, ats, nil
}
