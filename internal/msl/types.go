package msl

import (
	"fmt"

	"shaderopt/internal/glsl"
	"shaderopt/internal/naming"
	"shaderopt/internal/sem"
)

// typeNames records every intrinsic type name the parser resolves
// contextually. As in the HLSL frontend, type names are identifiers, not
// keywords: the parser uses membership to disambiguate C-style
// declarations (`float3 x = ...`) from expression statements.
var typeNames = map[string]bool{}

func init() {
	scalars := []string{"float", "half", "int", "uint", "bool", "void"}
	for _, s := range scalars {
		typeNames[s] = true
	}
	for _, base := range []string{"float", "half", "int", "uint", "bool"} {
		for n := '2'; n <= '4'; n++ {
			typeNames[base+string(n)] = true
		}
	}
	for _, base := range []string{"float", "half"} {
		for n := '2'; n <= '4'; n++ {
			typeNames[fmt.Sprintf("%s%cx%c", base, n, n)] = true
		}
	}
	for _, r := range []string{
		"texture2d", "texture3d", "texturecube", "depth2d",
		"texture2d_array", "sampler", "array",
	} {
		typeNames[r] = true
	}
}

// IsTypeName reports whether s names an intrinsic type in the subset.
func IsTypeName(s string) bool { return typeNames[s] }

// mslBuiltins is the function-name vocabulary the emitter may produce,
// beyond type names — used by the emitter's uniquer so locals never
// shadow an intrinsic spelling.
var mslBuiltins = map[string]bool{
	"abs": true, "acos": true, "asin": true, "atan": true, "atan2": true,
	"ceil": true, "clamp": true, "cos": true, "cross": true,
	"dfdx": true, "dfdy": true, "distance": true, "dot": true,
	"exp": true, "exp2": true, "faceforward": true, "floor": true,
	"fract": true, "fwidth": true, "length": true, "log": true,
	"log2": true, "max": true, "min": true, "mix": true,
	"normalize": true, "pow": true, "reflect": true, "refract": true,
	"rsqrt": true, "saturate": true, "sign": true, "sin": true,
	"smoothstep": true, "sqrt": true, "step": true, "tan": true,
	"discard_fragment": true, "level": true, "bias": true,
	"glsl_mod": true, "glsl_radians": true, "glsl_degrees": true,
}

// reservedWord reports whether name cannot be claimed as an identifier in
// emitted MSL: keywords, type names, and the intrinsic functions the
// emitter may spell.
func reservedWord(name string) bool {
	return IsKeyword(name) || IsTypeName(name) || mslBuiltins[name]
}

// resolveType maps an MSL type reference onto the shared sem type system.
// half resolves like float and uint like int — the IR models one float
// and one int width, matching the other frontends.
func (tr *translator) resolveType(te *TypeExpr) (sem.Type, error) {
	if te == nil {
		return sem.Void, fmt.Errorf("missing type")
	}
	switch te.Name {
	case "float", "half":
		return sem.Float, nil
	case "int", "uint":
		return sem.Int, nil
	case "bool":
		return sem.Bool, nil
	case "void":
		return sem.Void, nil
	case "texture2d":
		return sem.SamplerType("2D"), nil
	case "texture3d":
		return sem.SamplerType("3D"), nil
	case "texturecube":
		return sem.SamplerType("Cube"), nil
	case "depth2d":
		return sem.SamplerType("2DShadow"), nil
	case "texture2d_array":
		return sem.SamplerType("2DArray"), nil
	case "sampler":
		return sem.Void, fmt.Errorf("sampler state cannot be used as a value type")
	case "array":
		elem, err := tr.resolveType(te.Elem)
		if err != nil {
			return sem.Void, err
		}
		if te.Len <= 0 {
			return sem.Void, fmt.Errorf("array type needs a positive length")
		}
		if elem.IsArray() || elem.IsSampler() {
			return sem.Void, fmt.Errorf("array of %s is outside the supported subset", elem)
		}
		return sem.ArrayOf(elem, te.Len), nil
	}
	if n, kind, ok := vecName(te.Name); ok {
		return sem.VecType(kind, n), nil
	}
	if n, ok := matName(te.Name); ok {
		return sem.MatType(n), nil
	}
	return sem.Void, fmt.Errorf("unknown type %q", te.String())
}

// vecName resolves floatN / halfN / intN / uintN / boolN vector names.
func vecName(name string) (n int, kind sem.Kind, ok bool) {
	base := ""
	switch {
	case len(name) == 6 && name[:5] == "float":
		base, n = "float", int(name[5]-'0')
	case len(name) == 5 && name[:4] == "half":
		base, n = "half", int(name[4]-'0')
	case len(name) == 4 && name[:3] == "int":
		base, n = "int", int(name[3]-'0')
	case len(name) == 5 && name[:4] == "uint":
		base, n = "uint", int(name[4]-'0')
	case len(name) == 5 && name[:4] == "bool":
		base, n = "bool", int(name[4]-'0')
	default:
		return 0, 0, false
	}
	if n < 2 || n > 4 {
		return 0, 0, false
	}
	switch base {
	case "float", "half":
		return n, sem.KindFloat, true
	case "int", "uint":
		return n, sem.KindInt, true
	default:
		return n, sem.KindBool, true
	}
}

// matName resolves floatNxN / halfNxN names to the square dimension;
// non-square matrices are outside the subset.
func matName(name string) (int, bool) {
	var base string
	switch {
	case len(name) == 8 && name[:5] == "float":
		base = name[5:]
	case len(name) == 7 && name[:4] == "half":
		base = name[4:]
	default:
		return 0, false
	}
	if len(base) != 3 || base[1] != 'x' {
		return 0, false
	}
	n, m := int(base[0]-'0'), int(base[2]-'0')
	if n < 2 || n > 4 || n != m {
		return 0, false
	}
	return n, true
}

// semToSpec renders a sem type as a GLSL syntactic type reference for the
// canonical AST (the shared naming.SemToSpec spelling).
func semToSpec(t sem.Type) (glsl.TypeSpec, error) { return naming.SemToSpec(t) }
