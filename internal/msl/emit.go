// Package msl is the Metal Shading Language backend and frontend: Emit
// renders an IR program as an MSL fragment function (the naga/SPIRV-Cross
// shape: a [[stage_in]] struct, a constant uniform buffer struct, paired
// texture/sampler arguments, and a wrapped entry point named main0), and
// Compile parses that dialect back into the shared IR through the checked
// GLSL AST like the WGSL and HLSL frontends.
//
// The emitter mirrors internal/glslgen's walk — one temporary per
// instruction, splatted constants, element-insert chains — so the §III-C
// verbosity artefacts survive translation. GLSL builtins without an exact
// native MSL spelling (mod, radians, degrees — GLSL mod is floor-based
// where C++ fmod truncates) are emitted as glsl_-prefixed template
// helpers; the frontend maps those helper names straight back onto the IR
// builtins without translating their bodies, so a round trip reconstructs
// the same call and renders bit-identically.
package msl

import (
	"fmt"
	"strconv"
	"strings"

	"shaderopt/internal/glsl"
	"shaderopt/internal/ir"
	"shaderopt/internal/sem"
)

// EntryName is the generated fragment function name, after naga's main0.
const EntryName = "main0"

// Emit renders the program as MSL source.
func Emit(p *ir.Program) (string, error) {
	g := &mslgen{
		p:        p,
		names:    map[any]string{},
		used:     map[string]bool{},
		smpNames: map[*ir.Global]string{},
		isInput:  map[*ir.Global]bool{},
	}
	out := g.run()
	if g.err != nil {
		return "", g.err
	}
	return out, nil
}

type mslgen struct {
	p      *ir.Program
	sb     strings.Builder
	indent int
	err    error

	names    map[any]string // *ir.Var / *ir.Global / *ir.Instr -> MSL name
	used     map[string]bool
	smpNames map[*ir.Global]string // sampler uniform -> sampler-state arg name
	isInput  map[*ir.Global]bool

	inVar, uVar, outVar string
	inStruct, uStruct   string
	outStruct           string
}

func (g *mslgen) fail(format string, args ...any) {
	if g.err == nil {
		g.err = fmt.Errorf("msl: "+format, args...)
	}
}

func (g *mslgen) run() string {
	for _, in := range g.p.Inputs {
		g.isInput[in] = true
	}

	// Claim interface names first so struct members keep the IR spellings
	// and the synthesized instance/entry names move aside instead.
	var texGlobals, valGlobals []*ir.Global
	for _, u := range g.p.Uniforms {
		g.globalName(u)
		if u.Type.IsSampler() {
			texGlobals = append(texGlobals, u)
			g.smpNames[u] = g.unique(g.names[u] + "Smp")
		} else {
			valGlobals = append(valGlobals, u)
		}
	}
	for _, in := range g.p.Inputs {
		g.globalName(in)
	}
	for _, v := range g.p.Vars {
		g.varName(v)
	}
	g.inStruct = g.unique(EntryName + "_in")
	g.uStruct = g.unique(EntryName + "_uniforms")
	g.outStruct = g.unique(EntryName + "_out")
	g.inVar = g.unique("in")
	g.uVar = g.unique("u")
	g.outVar = g.unique("out0")

	g.line("#include <metal_stdlib>")
	g.line("#include <simd/simd.h>")
	g.line("")
	g.line("using namespace metal;")

	g.helperPrelude()

	if len(g.p.Inputs) > 0 {
		g.line("")
		g.line("struct %s", g.inStruct)
		g.line("{")
		g.indent++
		for i, in := range g.p.Inputs {
			g.line("%s [[user(locn%d)]];", g.declString(g.names[in], in.Type), i)
		}
		g.indent--
		g.line("};")
	}
	if len(valGlobals) > 0 {
		g.line("")
		g.line("struct %s", g.uStruct)
		g.line("{")
		g.indent++
		for _, u := range valGlobals {
			g.line("%s;", g.declString(g.names[u], u.Type))
		}
		g.indent--
		g.line("};")
	}
	multiOut := len(g.p.Outputs) > 1
	if multiOut {
		g.line("")
		g.line("struct %s", g.outStruct)
		g.line("{")
		g.indent++
		for i, v := range g.p.Outputs {
			g.line("%s [[color(%d)]];", g.declString(g.names[v]+"_0", v.Type), i)
		}
		g.indent--
		g.line("};")
	}

	// Entry signature.
	var params []string
	if len(g.p.Inputs) > 0 {
		params = append(params, fmt.Sprintf("%s %s [[stage_in]]", g.inStruct, g.inVar))
	}
	if len(valGlobals) > 0 {
		params = append(params, fmt.Sprintf("constant %s& %s [[buffer(0)]]", g.uStruct, g.uVar))
	}
	for i, t := range texGlobals {
		params = append(params, fmt.Sprintf("%s %s [[texture(%d)]]", g.textureType(t.Type), g.names[t], i))
		params = append(params, fmt.Sprintf("sampler %s [[sampler(%d)]]", g.smpNames[t], i))
	}
	ret := "void"
	switch {
	case multiOut:
		ret = g.outStruct
	case len(g.p.Outputs) == 1:
		ret = g.typeName(g.p.Outputs[0].Type)
	}
	g.line("")
	g.line("fragment %s %s(%s)", ret, EntryName, strings.Join(params, ", "))
	g.line("{")
	g.indent++

	counters := map[*ir.Var]bool{}
	g.p.Body.WalkBlocks(func(b *ir.Block) {
		for _, it := range b.Items {
			if l, ok := it.(*ir.Loop); ok {
				counters[l.Counter] = true
			}
		}
	})
	for _, v := range g.p.Vars {
		if counters[v] {
			continue
		}
		g.line("%s;", g.declString(g.names[v], v.Type))
	}

	g.block(g.p.Body)

	switch {
	case multiOut:
		g.line("%s %s;", g.outStruct, g.outVar)
		for _, v := range g.p.Outputs {
			g.line("%s.%s_0 = %s;", g.outVar, g.names[v], g.names[v])
		}
		g.line("return %s;", g.outVar)
	case len(g.p.Outputs) == 1:
		g.line("return %s;", g.names[g.p.Outputs[0]])
	}

	g.indent--
	g.line("}")
	return g.sb.String()
}

// helperPrelude emits template helpers for the GLSL builtins the body uses
// that have no exact native MSL spelling. The frontend skips template
// definitions and maps the glsl_ names back to IR builtins, so helper
// bodies are documentation for a real Metal compiler, not part of the
// round trip.
func (g *mslgen) helperPrelude() {
	need := map[string]bool{}
	g.p.Body.WalkInstrs(func(in *ir.Instr) {
		if in.Op == ir.OpCall {
			switch in.Callee {
			case "mod", "radians", "degrees":
				need[in.Callee] = true
			}
		}
	})
	if need["mod"] {
		g.line("")
		g.line("template <typename T, typename U>")
		g.line("static inline T glsl_mod(T x, U y) { return x - y * floor(x / y); }")
	}
	if need["radians"] {
		g.line("")
		g.line("template <typename T>")
		g.line("static inline T glsl_radians(T v) { return (v * 3.14159265358979323846) / 180.0; }")
	}
	if need["degrees"] {
		g.line("")
		g.line("template <typename T>")
		g.line("static inline T glsl_degrees(T v) { return (v * 180.0) / 3.14159265358979323846; }")
	}
}

func (g *mslgen) line(format string, args ...any) {
	for i := 0; i < g.indent; i++ {
		g.sb.WriteString("    ")
	}
	fmt.Fprintf(&g.sb, format, args...)
	g.sb.WriteByte('\n')
}

// --- naming ---

func (g *mslgen) unique(base string) string {
	if base == "" {
		base = "v"
	}
	name := base
	for i := 2; g.used[name] || reservedWord(name); i++ {
		name = base + "_" + strconv.Itoa(i)
	}
	g.used[name] = true
	return name
}

func (g *mslgen) globalName(gl *ir.Global) string {
	if n, ok := g.names[gl]; ok {
		return n
	}
	n := g.unique(gl.Name)
	g.names[gl] = n
	return n
}

func (g *mslgen) varName(v *ir.Var) string {
	if n, ok := g.names[v]; ok {
		return n
	}
	n := g.unique(v.Name)
	g.names[v] = n
	return n
}

func (g *mslgen) tempName(in *ir.Instr) string {
	if n, ok := g.names[in]; ok {
		return n
	}
	n := g.unique("t" + strconv.Itoa(in.ID))
	g.names[in] = n
	return n
}

// globalRef renders a read of an interface global: struct member access
// for stage_in inputs and buffer uniforms, the bare argument name for
// textures.
func (g *mslgen) globalRef(gl *ir.Global) string {
	name := g.globalName(gl)
	switch {
	case g.isInput[gl]:
		return g.inVar + "." + name
	case gl.Type.IsSampler():
		return name
	default:
		return g.uVar + "." + name
	}
}

// --- types ---

// typeName renders the MSL spelling of a sem type.
func (g *mslgen) typeName(t sem.Type) string {
	if t.IsArray() {
		return fmt.Sprintf("array<%s, %d>", g.typeName(t.Elem()), t.ArrayLen)
	}
	switch {
	case t.IsSampler():
		return g.textureType(t)
	case t.IsMatrix():
		return fmt.Sprintf("float%dx%d", t.Mat, t.Mat)
	case t.IsVector():
		switch t.Kind {
		case sem.KindFloat:
			return fmt.Sprintf("float%d", t.Vec)
		case sem.KindInt:
			return fmt.Sprintf("int%d", t.Vec)
		case sem.KindBool:
			return fmt.Sprintf("bool%d", t.Vec)
		}
	case t.IsScalar():
		switch t.Kind {
		case sem.KindFloat:
			return "float"
		case sem.KindInt:
			return "int"
		case sem.KindBool:
			return "bool"
		}
	}
	g.fail("type %s has no MSL spelling", t)
	return "float"
}

// textureType renders the MSL texture type for a sampler dimensionality.
func (g *mslgen) textureType(t sem.Type) string {
	switch t.Dim {
	case "2D":
		return "texture2d<float>"
	case "3D":
		return "texture3d<float>"
	case "Cube":
		return "texturecube<float>"
	case "2DShadow":
		return "depth2d<float>"
	case "2DArray":
		return "texture2d_array<float>"
	}
	g.fail("sampler dimensionality %q has no MSL texture type", t.Dim)
	return "texture2d<float>"
}

func (g *mslgen) declString(name string, t sem.Type) string {
	return g.typeName(t) + " " + name
}

// --- blocks & statements (mirroring glslgen's walk) ---

func (g *mslgen) block(b *ir.Block) {
	for _, item := range b.Items {
		switch item := item.(type) {
		case *ir.Instr:
			g.instr(item)
		case *ir.If:
			g.line("if (%s)", g.ref(item.Cond))
			g.line("{")
			g.indent++
			g.block(item.Then)
			g.indent--
			if item.Else != nil && len(item.Else.Items) > 0 {
				g.line("}")
				g.line("else")
				g.line("{")
				g.indent++
				g.block(item.Else)
				g.indent--
			}
			g.line("}")
		case *ir.Loop:
			cn := g.varName(item.Counter)
			g.line("for (int %s = %s; %s < %s; %s += %s)", cn, g.ref(item.Start), cn, g.ref(item.End), cn, g.ref(item.Step))
			g.line("{")
			g.indent++
			g.block(item.Body)
			g.indent--
			g.line("}")
		case *ir.While:
			g.while(item)
		}
	}
}

func (g *mslgen) while(w *ir.While) {
	pure := true
	w.Cond.WalkInstrs(func(in *ir.Instr) {
		if in.Op == ir.OpStore || in.Op == ir.OpDiscard {
			pure = false
		}
	})
	if pure && !w.Cond.HasControlFlow() {
		g.line("while (%s)", g.inlineExpr(w.CondVal, w.Cond))
		g.line("{")
		g.indent++
		g.block(w.Body)
		g.indent--
		g.line("}")
		return
	}
	guard := g.unique("wcond")
	g.line("bool %s = true;", guard)
	g.line("while (%s)", guard)
	g.line("{")
	g.indent++
	g.block(w.Cond)
	g.line("%s = %s;", guard, g.ref(w.CondVal))
	g.line("if (%s)", guard)
	g.line("{")
	g.indent++
	g.block(w.Body)
	g.indent--
	g.line("}")
	g.indent--
	g.line("}")
}

func (g *mslgen) instr(in *ir.Instr) {
	switch in.Op {
	case ir.OpConst, ir.OpUniform, ir.OpInput:
		return // rendered inline at each use
	case ir.OpStore:
		g.line("%s = %s;", g.varName(in.Var), g.ref(in.Args[0]))
		return
	case ir.OpDiscard:
		g.line("discard_fragment();")
		return
	case ir.OpLoad:
		g.line("%s = %s;", g.declString(g.tempName(in), in.Type), g.varName(in.Var))
		return
	case ir.OpInsert, ir.OpInsertDyn:
		name := g.tempName(in)
		g.line("%s = %s;", g.declString(name, in.Type), g.ref(in.Args[0]))
		if in.Op == ir.OpInsert {
			g.line("%s%s = %s;", name, g.elemSuffix(in.Type, in.Index), g.ref(in.Args[1]))
		} else {
			g.line("%s[%s] = %s;", name, g.ref(in.Args[1]), g.ref(in.Args[2]))
		}
		return
	}
	g.line("%s = %s;", g.declString(g.tempName(in), in.Type), g.exprFor(in))
}

func (g *mslgen) elemSuffix(t sem.Type, idx int) string {
	if t.IsVector() {
		return "." + string("xyzw"[idx])
	}
	return "[" + strconv.Itoa(idx) + "]"
}

// --- expressions ---

func (g *mslgen) ref(in *ir.Instr) string {
	switch in.Op {
	case ir.OpConst:
		return g.constExpr(in.Type, in.Const)
	case ir.OpUniform, ir.OpInput:
		return g.globalRef(in.Global)
	}
	return g.tempName(in)
}

func (g *mslgen) exprFor(in *ir.Instr) string {
	return g.expr(in, nil)
}

func (g *mslgen) inlineExpr(val *ir.Instr, scope *ir.Block) string {
	inScope := map[*ir.Instr]bool{}
	scope.WalkInstrs(func(i *ir.Instr) { inScope[i] = true })
	return g.expr(val, inScope)
}

// operand renders a use of a value with parentheses when the rendering is
// non-atomic (shared by expr and the texture coordinate splitters).
func (g *mslgen) operand(a *ir.Instr, inline map[*ir.Instr]bool) string {
	var s string
	if inline != nil && inline[a] {
		if a.Op == ir.OpLoad {
			return g.varName(a.Var)
		}
		s = g.expr(a, inline)
		if !isAtomicExpr(a) {
			return "(" + s + ")"
		}
	} else {
		s = g.ref(a)
	}
	if strings.HasPrefix(s, "-") {
		return "(" + s + ")"
	}
	return s
}

func (g *mslgen) expr(in *ir.Instr, inline map[*ir.Instr]bool) string {
	operand := func(a *ir.Instr) string { return g.operand(a, inline) }

	switch in.Op {
	case ir.OpConst:
		return g.constExpr(in.Type, in.Const)
	case ir.OpUniform, ir.OpInput:
		return g.globalRef(in.Global)
	case ir.OpLoad:
		return g.varName(in.Var)
	case ir.OpBin:
		op := in.BinOp
		if op == "^^" {
			op = "!=" // C++ has no ^^; != is exact XOR on bools
		}
		return fmt.Sprintf("%s %s %s", operand(in.Args[0]), op, operand(in.Args[1]))
	case ir.OpUn:
		return in.UnOp + operand(in.Args[0])
	case ir.OpCall:
		return g.callExpr(in, inline)
	case ir.OpConstruct:
		return g.constructExpr(in, inline)
	case ir.OpExtract:
		src := in.Args[0]
		if src.Type.IsVector() {
			return operand(src) + "." + string("xyzw"[in.Index])
		}
		return operand(src) + "[" + strconv.Itoa(in.Index) + "]"
	case ir.OpExtractDyn:
		return operand(in.Args[0]) + "[" + g.argString(in.Args[1], inline) + "]"
	case ir.OpSwizzle:
		var sw strings.Builder
		for _, ix := range in.Indices {
			sw.WriteByte("xyzw"[ix])
		}
		return operand(in.Args[0]) + "." + sw.String()
	case ir.OpSelect:
		return fmt.Sprintf("%s ? %s : %s", operand(in.Args[0]), operand(in.Args[1]), operand(in.Args[2]))
	}
	g.fail("cannot render op %s", in.Op)
	return "0.0"
}

func (g *mslgen) argString(a *ir.Instr, inline map[*ir.Instr]bool) string {
	if inline != nil && inline[a] {
		return g.expr(a, inline)
	}
	return g.ref(a)
}

func isAtomicExpr(in *ir.Instr) bool {
	switch in.Op {
	case ir.OpCall, ir.OpConstruct, ir.OpUniform, ir.OpInput, ir.OpLoad, ir.OpConst:
		return true
	}
	return false
}

// callExpr renders a builtin call with its MSL spelling: native where the
// semantics line up 1:1, a glsl_ helper otherwise, and the texture method
// forms for sampling ops.
func (g *mslgen) callExpr(in *ir.Instr, inline map[*ir.Instr]bool) string {
	switch in.Callee {
	case "texture", "texture2D", "textureCube", "textureLod", "texelFetch":
		return g.textureExpr(in, inline)
	}
	name := in.Callee
	switch in.Callee {
	case "inversesqrt":
		name = "rsqrt"
	case "dFdx":
		name = "dfdx"
	case "dFdy":
		name = "dfdy"
	case "atan":
		if len(in.Args) == 2 {
			name = "atan2"
		}
	case "mod":
		name = "glsl_mod"
	case "radians":
		name = "glsl_radians"
	case "degrees":
		name = "glsl_degrees"
	}
	args := make([]string, len(in.Args))
	for i, a := range in.Args {
		args[i] = g.argString(a, inline)
	}
	return name + "(" + strings.Join(args, ", ") + ")"
}

// textureExpr renders sampling ops as texture method calls.
func (g *mslgen) textureExpr(in *ir.Instr, inline map[*ir.Instr]bool) string {
	samp := in.Args[0]
	if samp.Op != ir.OpUniform || !samp.Type.IsSampler() {
		g.fail("texture call %%%d does not sample a uniform sampler", in.ID)
		return "float4(0.0)"
	}
	tex := g.globalName(samp.Global)
	smp := g.smpNames[samp.Global]
	coord := g.argString(in.Args[1], inline)
	co := g.operand(in.Args[1], inline)
	dim := samp.Type.Dim

	switch in.Callee {
	case "texelFetch":
		// The subset's texelFetch carries the lod at the coordinate's
		// width; Metal's read takes a scalar, so emit the first component
		// (the only one the semantics consult).
		lod := g.argString(in.Args[2], inline)
		if in.Args[2].Type.IsVector() {
			lod = g.operand(in.Args[2], inline) + ".x"
		}
		uvec := "uint2"
		if in.Args[1].Type.IsVector() && in.Args[1].Type.Vec == 3 {
			uvec = "uint3"
		}
		return fmt.Sprintf("%s.read(%s(%s), %s)", tex, uvec, coord, lod)
	case "textureLod":
		lod := g.argString(in.Args[2], inline)
		return fmt.Sprintf("%s.sample(%s, %s, level(%s))", tex, smp, coord, lod)
	}
	// texture / texture2D / textureCube
	switch dim {
	case "2DShadow":
		return fmt.Sprintf("%s.sample_compare(%s, %s.xy, %s.z)", tex, smp, co, co)
	case "2DArray":
		return fmt.Sprintf("%s.sample(%s, %s.xy, uint(%s.z))", tex, smp, co, co)
	}
	if len(in.Args) == 3 {
		return fmt.Sprintf("%s.sample(%s, %s, bias(%s))", tex, smp, coord, g.argString(in.Args[2], inline))
	}
	return fmt.Sprintf("%s.sample(%s, %s)", tex, smp, coord)
}

// constructExpr renders OpConstruct. Vector splats collapse to the
// single-scalar constructor; matrices are grouped into column vectors
// (MSL matrices construct from columns, not flat scalar lists).
func (g *mslgen) constructExpr(in *ir.Instr, inline map[*ir.Instr]bool) string {
	t := in.Type
	if t.IsVector() && len(in.Args) == t.Vec {
		same := true
		for _, a := range in.Args[1:] {
			if a != in.Args[0] {
				same = false
			}
		}
		if same {
			return fmt.Sprintf("%s(%s)", g.typeName(t), g.argString(in.Args[0], inline))
		}
	}
	if t.IsMatrix() {
		return g.matrixConstruct(in, inline)
	}
	args := make([]string, len(in.Args))
	for i, a := range in.Args {
		args[i] = g.argString(a, inline)
	}
	joined := strings.Join(args, ", ")
	if t.IsArray() {
		return fmt.Sprintf("%s{%s}", g.typeName(t), joined)
	}
	return fmt.Sprintf("%s(%s)", g.typeName(t), joined)
}

// matrixConstruct renders a matrix constructor from column vectors. Args
// that are full columns pass through; scalar runs and misaligned vectors
// are split into components (operand renderings are refs, so duplication
// is safe).
func (g *mslgen) matrixConstruct(in *ir.Instr, inline map[*ir.Instr]bool) string {
	n := in.Type.Mat
	colType := g.typeName(sem.VecType(sem.KindFloat, n))

	// Fast path: args are exactly the n column vectors.
	if len(in.Args) == n {
		direct := true
		for _, a := range in.Args {
			if !(a.Type.IsVector() && a.Type.Vec == n) {
				direct = false
			}
		}
		if direct {
			args := make([]string, len(in.Args))
			for i, a := range in.Args {
				args[i] = g.argString(a, inline)
			}
			return fmt.Sprintf("%s(%s)", g.typeName(in.Type), strings.Join(args, ", "))
		}
	}

	// General path: flatten every argument to scalar component renderings,
	// then regroup into columns.
	var comps []string
	for _, a := range in.Args {
		switch {
		case a.Type.IsScalar():
			comps = append(comps, g.argString(a, inline))
		case a.Type.IsVector():
			base := g.operand(a, inline)
			for j := 0; j < a.Type.Vec; j++ {
				comps = append(comps, base+"."+string("xyzw"[j]))
			}
		default:
			g.fail("matrix constructor argument of type %s", a.Type)
			return g.typeName(in.Type) + "(0.0)"
		}
	}
	if len(comps) != n*n {
		g.fail("matrix constructor with %d components, want %d", len(comps), n*n)
		return g.typeName(in.Type) + "(0.0)"
	}
	cols := make([]string, n)
	for c := 0; c < n; c++ {
		cols[c] = fmt.Sprintf("%s(%s)", colType, strings.Join(comps[c*n:(c+1)*n], ", "))
	}
	return fmt.Sprintf("%s(%s)", g.typeName(in.Type), strings.Join(cols, ", "))
}

// constExpr renders a constant literal.
func (g *mslgen) constExpr(t sem.Type, c *ir.ConstVal) string {
	if t.IsScalar() {
		return scalarLit(t.Kind, c, 0)
	}
	if t.IsVector() {
		if c.IsSplat() {
			return fmt.Sprintf("%s(%s)", g.typeName(t), scalarLit(t.Kind, c, 0))
		}
		parts := make([]string, c.Len())
		for i := range parts {
			parts[i] = scalarLit(t.Kind, c, i)
		}
		return fmt.Sprintf("%s(%s)", g.typeName(t), strings.Join(parts, ", "))
	}
	if t.IsMatrix() {
		n := t.Mat
		colType := g.typeName(sem.VecType(sem.KindFloat, n))
		cols := make([]string, n)
		for ci := 0; ci < n; ci++ {
			parts := make([]string, n)
			for j := 0; j < n; j++ {
				parts[j] = scalarLit(t.Kind, c, ci*n+j)
			}
			cols[ci] = fmt.Sprintf("%s(%s)", colType, strings.Join(parts, ", "))
		}
		return fmt.Sprintf("%s(%s)", g.typeName(t), strings.Join(cols, ", "))
	}
	if t.IsArray() {
		elem := t.Elem()
		parts := make([]string, t.ArrayLen)
		for i := range parts {
			parts[i] = g.constExpr(elem, ir.EvalExtract(t, c, i))
		}
		return fmt.Sprintf("%s{%s}", g.typeName(t), strings.Join(parts, ", "))
	}
	g.fail("constant of type %s", t)
	return "0.0"
}

func scalarLit(k sem.Kind, c *ir.ConstVal, i int) string {
	switch k {
	case sem.KindFloat:
		return glsl.FormatFloat(c.F[i])
	case sem.KindInt:
		return strconv.FormatInt(c.I[i], 10)
	case sem.KindBool:
		return strconv.FormatBool(c.B[i])
	}
	return "0"
}
