package msl

import "fmt"

// Kind classifies a token.
type Kind int

// Token kinds.
const (
	EOF Kind = iota
	Ident
	IntLit
	FloatLit
	BoolLit
	Keyword
	Punct
)

func (k Kind) String() string {
	switch k {
	case EOF:
		return "EOF"
	case Ident:
		return "identifier"
	case IntLit:
		return "int literal"
	case FloatLit:
		return "float literal"
	case BoolLit:
		return "bool literal"
	case Keyword:
		return "keyword"
	case Punct:
		return "punctuation"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Pos is a source position.
type Pos struct {
	Line, Col int
}

func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// Token is one lexical token.
type Token struct {
	Kind Kind
	Text string
	Pos  Pos
}

// keywords is the MSL keyword subset the parser dispatches on. Type names
// (float3, texture2d, ...) are contextual identifiers, as in the HLSL
// frontend; address-space and function qualifiers are keywords.
var keywords = map[string]bool{
	"struct": true, "return": true, "if": true, "else": true, "for": true,
	"while": true, "do": true, "break": true, "continue": true,
	"const": true, "static": true, "inline": true, "template": true,
	"typename": true, "using": true, "namespace": true,
	"fragment": true, "vertex": true, "kernel": true,
	"constant": true, "device": true, "thread": true, "threadgroup": true,
}

// IsKeyword reports whether s is an MSL keyword in the subset.
func IsKeyword(s string) bool { return keywords[s] }
