package msl

import "fmt"

// Lexer tokenizes MSL source. Preprocessor directives (#include lines)
// are skipped whole: the emitted dialect only uses them for the standard
// headers, which the frontend models directly.
type Lexer struct {
	src  string
	pos  int
	line int
	col  int
	err  error
}

// NewLexer returns a lexer over src.
func NewLexer(src string) *Lexer {
	return &Lexer{src: src, line: 1, col: 1}
}

// Err returns the first lexing error.
func (lx *Lexer) Err() error { return lx.err }

func (lx *Lexer) errorf(p Pos, format string, args ...any) {
	if lx.err == nil {
		lx.err = fmt.Errorf("msl: %s: %s", p, fmt.Sprintf(format, args...))
	}
}

func (lx *Lexer) peek() byte {
	if lx.pos >= len(lx.src) {
		return 0
	}
	return lx.src[lx.pos]
}

func (lx *Lexer) peekAt(n int) byte {
	if lx.pos+n >= len(lx.src) {
		return 0
	}
	return lx.src[lx.pos+n]
}

func (lx *Lexer) advance() byte {
	c := lx.src[lx.pos]
	lx.pos++
	if c == '\n' {
		lx.line++
		lx.col = 1
	} else {
		lx.col++
	}
	return c
}

func (lx *Lexer) here() Pos { return Pos{Line: lx.line, Col: lx.col} }

// Next returns the next token.
func (lx *Lexer) Next() Token {
	for lx.pos < len(lx.src) {
		c := lx.peek()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			lx.advance()
		case c == '#':
			// Preprocessor directive: skip to end of line.
			for lx.pos < len(lx.src) && lx.peek() != '\n' {
				lx.advance()
			}
		case c == '/' && lx.peekAt(1) == '/':
			for lx.pos < len(lx.src) && lx.peek() != '\n' {
				lx.advance()
			}
		case c == '/' && lx.peekAt(1) == '*':
			p := lx.here()
			lx.advance()
			lx.advance()
			closed := false
			for lx.pos < len(lx.src) {
				if lx.peek() == '*' && lx.peekAt(1) == '/' {
					lx.advance()
					lx.advance()
					closed = true
					break
				}
				lx.advance()
			}
			if !closed {
				lx.errorf(p, "unterminated block comment")
				return Token{Kind: EOF, Pos: lx.here()}
			}
		default:
			goto tokens
		}
	}
	return Token{Kind: EOF, Pos: lx.here()}

tokens:
	p := lx.here()
	c := lx.peek()
	switch {
	case isDigit(c) || (c == '.' && isDigit(lx.peekAt(1))):
		return lx.lexNumber(p)
	case isIdentStart(c):
		start := lx.pos
		for lx.pos < len(lx.src) && isIdentByte(lx.peek()) {
			lx.advance()
		}
		text := lx.src[start:lx.pos]
		switch {
		case text == "true" || text == "false":
			return Token{Kind: BoolLit, Text: text, Pos: p}
		case IsKeyword(text):
			return Token{Kind: Keyword, Text: text, Pos: p}
		}
		return Token{Kind: Ident, Text: text, Pos: p}
	}

	// Multi-character operators, longest first.
	for _, op := range []string{"<<=", ">>=", "==", "!=", "<=", ">=", "&&", "||", "+=", "-=", "*=", "/=", "%=", "++", "--", "::"} {
		if lx.hasPrefix(op) {
			for range op {
				lx.advance()
			}
			return Token{Kind: Punct, Text: op, Pos: p}
		}
	}
	if isPunct(c) {
		lx.advance()
		return Token{Kind: Punct, Text: string(c), Pos: p}
	}
	lx.errorf(p, "unexpected character %q", string(c))
	lx.advance()
	return Token{Kind: EOF, Pos: p}
}

func (lx *Lexer) hasPrefix(s string) bool {
	return lx.pos+len(s) <= len(lx.src) && lx.src[lx.pos:lx.pos+len(s)] == s
}

func (lx *Lexer) lexNumber(p Pos) Token {
	start := lx.pos
	isFloat := false
	if lx.peek() == '0' && (lx.peekAt(1) == 'x' || lx.peekAt(1) == 'X') {
		lx.advance()
		lx.advance()
		for lx.pos < len(lx.src) && isHexDigit(lx.peek()) {
			lx.advance()
		}
	} else {
		for lx.pos < len(lx.src) && isDigit(lx.peek()) {
			lx.advance()
		}
		if lx.peek() == '.' {
			isFloat = true
			lx.advance()
			for lx.pos < len(lx.src) && isDigit(lx.peek()) {
				lx.advance()
			}
		}
		if lx.peek() == 'e' || lx.peek() == 'E' {
			next := lx.peekAt(1)
			if isDigit(next) || ((next == '+' || next == '-') && isDigit(lx.peekAt(2))) {
				isFloat = true
				lx.advance()
				if lx.peek() == '+' || lx.peek() == '-' {
					lx.advance()
				}
				for lx.pos < len(lx.src) && isDigit(lx.peek()) {
					lx.advance()
				}
			}
		}
	}
	text := lx.src[start:lx.pos]
	// Suffixes: f/F/h/H mark floats, u/U ints; drop them from the text.
	switch lx.peek() {
	case 'f', 'F', 'h', 'H':
		isFloat = true
		lx.advance()
	case 'u', 'U', 'l', 'L':
		lx.advance()
	}
	if isFloat {
		return Token{Kind: FloatLit, Text: text, Pos: p}
	}
	return Token{Kind: IntLit, Text: text, Pos: p}
}

// LexAll tokenizes the whole source.
func LexAll(src string) ([]Token, error) {
	lx := NewLexer(src)
	var toks []Token
	for {
		t := lx.Next()
		toks = append(toks, t)
		if t.Kind == EOF {
			break
		}
	}
	return toks, lx.Err()
}

func isDigit(c byte) bool    { return c >= '0' && c <= '9' }
func isHexDigit(c byte) bool { return isDigit(c) || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F') }
func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}
func isIdentByte(c byte) bool { return isIdentStart(c) || isDigit(c) }
func isPunct(c byte) bool {
	switch c {
	case '+', '-', '*', '/', '%', '<', '>', '=', '!', '&', '|', '^', '~', '?', ':', ';', ',', '.', '(', ')', '{', '}', '[', ']':
		return true
	}
	return false
}
