package msl

import (
	"fmt"
	"strings"
)

// Module is a parsed MSL translation unit.
type Module struct {
	Decls []Decl
}

// Decl is a module-scope declaration.
type Decl interface{ declNode() }

func (*StructDecl) declNode() {}
func (*GlobalVar) declNode()  {}
func (*FnDecl) declNode()     {}

// Attr is one [[...]] attribute: a name plus an optional integer argument
// ([[stage_in]], [[buffer(0)]], [[user(locn2)]], [[color(0)]]).
type Attr struct {
	Name string
	Arg  int // -1 when absent; for user(locnN) the N
}

// TypeExpr is a syntactic type reference. Template arguments cover the
// texture types (texture2d<float>) and array<T, N>.
type TypeExpr struct {
	Pos  Pos
	Name string
	Elem *TypeExpr // template element type, nil if none
	Len  int       // array<T, N> length; -1 if none
}

func (t *TypeExpr) String() string {
	if t == nil {
		return "<nil>"
	}
	switch {
	case t.Name == "array" && t.Elem != nil:
		return fmt.Sprintf("array<%s, %d>", t.Elem, t.Len)
	case t.Elem != nil:
		return fmt.Sprintf("%s<%s>", t.Name, t.Elem)
	}
	return t.Name
}

// StructField is one attributed member of a struct declaration.
type StructField struct {
	Type *TypeExpr
	Name string
	Attr Attr // zero Name when unattributed
}

// StructDecl is a struct type declaration (stage_in, uniform buffer, and
// output structs in the emitted dialect).
type StructDecl struct {
	Pos    Pos
	Name   string
	Fields []StructField
}

// GlobalVar is a module-scope constant (`constant float kPi = 3.14;`).
type GlobalVar struct {
	Pos  Pos
	Type *TypeExpr
	Name string
	Init Expr
}

// Param is one function parameter.
type Param struct {
	Space string // "constant", "device", "thread", or "" for plain values
	Type  *TypeExpr
	Ref   bool // & reference
	Name  string
	Attr  Attr
}

// FnDecl is a function definition. Fragment is set for the entry point.
type FnDecl struct {
	Pos      Pos
	Fragment bool
	Ret      *TypeExpr
	Name     string
	Params   []Param
	Body     *BlockStmt
}

// Fns returns the function declarations in order.
func (m *Module) Fns() []*FnDecl {
	var fns []*FnDecl
	for _, d := range m.Decls {
		if fn, ok := d.(*FnDecl); ok {
			fns = append(fns, fn)
		}
	}
	return fns
}

// Structs returns the struct declarations in order.
func (m *Module) Structs() []*StructDecl {
	var sts []*StructDecl
	for _, d := range m.Decls {
		if st, ok := d.(*StructDecl); ok {
			sts = append(sts, st)
		}
	}
	return sts
}

// EntryPoint returns the fragment entry function, or nil.
func (m *Module) EntryPoint() *FnDecl {
	for _, fn := range m.Fns() {
		if fn.Fragment {
			return fn
		}
	}
	return nil
}

// --- statements ---

// Stmt is a statement node.
type Stmt interface{ stmtNode() }

func (*BlockStmt) stmtNode()    {}
func (*DeclStmt) stmtNode()     {}
func (*AssignStmt) stmtNode()   {}
func (*IfStmt) stmtNode()       {}
func (*ForStmt) stmtNode()      {}
func (*WhileStmt) stmtNode()    {}
func (*ReturnStmt) stmtNode()   {}
func (*BreakStmt) stmtNode()    {}
func (*ContinueStmt) stmtNode() {}
func (*ExprStmt) stmtNode()     {}

// BlockStmt is a braced statement list.
type BlockStmt struct {
	Pos   Pos
	Stmts []Stmt
}

// DeclStmt declares a local variable.
type DeclStmt struct {
	Pos   Pos
	Const bool
	Type  *TypeExpr
	Name  string
	Init  Expr // may be nil
}

// AssignStmt assigns to an lvalue with = or a compound operator.
type AssignStmt struct {
	Pos Pos
	LHS Expr
	Op  string
	RHS Expr
}

// IfStmt is a conditional.
type IfStmt struct {
	Pos  Pos
	Cond Expr
	Then *BlockStmt
	Else Stmt // *BlockStmt, *IfStmt, or nil
}

// ForStmt is a C-style for loop.
type ForStmt struct {
	Pos  Pos
	Init Stmt // *DeclStmt or *AssignStmt, may be nil
	Cond Expr
	Post Stmt // *AssignStmt, may be nil
	Body *BlockStmt
}

// WhileStmt is a while loop.
type WhileStmt struct {
	Pos  Pos
	Cond Expr
	Body *BlockStmt
}

// ReturnStmt returns from a function.
type ReturnStmt struct {
	Pos   Pos
	Value Expr // may be nil
}

// BreakStmt breaks a loop.
type BreakStmt struct{ Pos Pos }

// ContinueStmt continues a loop.
type ContinueStmt struct{ Pos Pos }

// ExprStmt evaluates an expression for effect (discard_fragment()).
type ExprStmt struct {
	Pos Pos
	X   Expr
}

// --- expressions ---

// Expr is an expression node.
type Expr interface{ exprNode() }

func (*IdentExpr) exprNode()      {}
func (*IntLitExpr) exprNode()     {}
func (*FloatLitExpr) exprNode()   {}
func (*BoolLitExpr) exprNode()    {}
func (*BinaryExpr) exprNode()     {}
func (*UnaryExpr) exprNode()      {}
func (*CondExpr) exprNode()       {}
func (*CallExpr) exprNode()       {}
func (*MethodCallExpr) exprNode() {}
func (*IndexExpr) exprNode()      {}
func (*MemberExpr) exprNode()     {}
func (*ArrayLitExpr) exprNode()   {}

// IdentExpr references a name.
type IdentExpr struct {
	Pos  Pos
	Name string
}

// IntLitExpr is an integer literal.
type IntLitExpr struct {
	Pos  Pos
	Text string
}

// FloatLitExpr is a float literal.
type FloatLitExpr struct {
	Pos  Pos
	Text string
}

// BoolLitExpr is true/false.
type BoolLitExpr struct {
	Pos   Pos
	Value bool
}

// BinaryExpr applies an infix operator.
type BinaryExpr struct {
	Pos  Pos
	Op   string
	X, Y Expr
}

// UnaryExpr applies a prefix operator ("-" or "!").
type UnaryExpr struct {
	Pos Pos
	Op  string
	X   Expr
}

// CondExpr is the ?: ternary.
type CondExpr struct {
	Pos        Pos
	Cond, X, Y Expr
}

// CallExpr calls a named function or type constructor.
type CallExpr struct {
	Pos    Pos
	Callee string
	Args   []Expr
}

// MethodCallExpr calls a method on a receiver (tex.sample(...)).
type MethodCallExpr struct {
	Pos    Pos
	Recv   Expr
	Method string
	Args   []Expr
}

// IndexExpr subscripts an aggregate.
type IndexExpr struct {
	Pos   Pos
	X     Expr
	Index Expr
}

// MemberExpr accesses a member or swizzle.
type MemberExpr struct {
	Pos  Pos
	X    Expr
	Name string
}

// ArrayLitExpr is the array<T, N>{...} braced constructor.
type ArrayLitExpr struct {
	Pos   Pos
	Elem  *TypeExpr
	Len   int
	Elems []Expr
}

// exprString is a debugging aid for error messages.
func exprString(e Expr) string {
	switch e := e.(type) {
	case *IdentExpr:
		return e.Name
	case *MemberExpr:
		return exprString(e.X) + "." + e.Name
	case *IndexExpr:
		return exprString(e.X) + "[...]"
	default:
		return strings.TrimPrefix(fmt.Sprintf("%T", e), "*msl.")
	}
}
