package msl_test

import (
	"strings"
	"testing"

	"shaderopt/internal/exec"
	"shaderopt/internal/glsl"
	"shaderopt/internal/harness"
	"shaderopt/internal/ir"
	"shaderopt/internal/lower"
	"shaderopt/internal/msl"
	"shaderopt/internal/sem"
)

// render interprets a program over an 8×8 grid with harness-default
// uniforms, uv varying across the image.
func render(t *testing.T, p *ir.Program) [][4]float64 {
	t.Helper()
	env := harness.DefaultEnv(p)
	var img [][4]float64
	for y := 0; y < 8; y++ {
		for x := 0; x < 8; x++ {
			u := (float64(x) + 0.5) / 8
			v := (float64(y) + 0.5) / 8
			for _, in := range p.Inputs {
				if in.Type.Equal(sem.Vec2) {
					env.Inputs[in.Name] = ir.FloatConst(u, v)
				}
			}
			res, err := exec.Run(p, env)
			if err != nil {
				t.Fatalf("run: %v", err)
			}
			var px [4]float64
			if !res.Discarded {
				for _, out := range p.Outputs {
					val := res.Outputs[out.Name]
					for i := 0; i < val.Len() && i < 4; i++ {
						px[i] = val.Float(i)
					}
					break
				}
			}
			img = append(img, px)
		}
	}
	return img
}

// roundTrip lowers GLSL source, emits MSL, re-parses the MSL through the
// frontend, and requires the two programs to render bit-identically.
func roundTrip(t *testing.T, src, name string) string {
	t.Helper()
	prog, err := lower.Lower(glsl.MustParse(src), name)
	if err != nil {
		t.Fatalf("lower: %v", err)
	}
	text, err := msl.Emit(prog)
	if err != nil {
		t.Fatalf("emit: %v", err)
	}
	back, err := msl.Compile(text, name+"-rt")
	if err != nil {
		t.Fatalf("re-parse emitted MSL: %v\n%s", err, text)
	}
	a, b := render(t, prog), render(t, back)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("pixel %d diverges: %v vs %v\n%s", i, a[i], b[i], text)
		}
	}
	return text
}

func TestRoundTripTextureLoop(t *testing.T) {
	text := roundTrip(t, `#version 330
uniform sampler2D tex;
uniform vec4 tint;
uniform float gain;
in vec2 uv;
out vec4 color;
void main() {
    vec4 acc = vec4(0.0);
    for (int i = 0; i < 4; i++) {
        acc += texture(tex, uv + vec2(float(i) * 0.01, 0.0));
    }
    if (gain > 0.5) { acc *= gain; }
    color = acc * tint / 4.0;
}
`, "texloop")
	for _, want := range []string{
		"#include <metal_stdlib>",
		"using namespace metal;",
		"[[stage_in]]",
		"[[texture(0)]]",
		"[[sampler(0)]]",
		"constant ",
		"fragment float4 main0(",
		".sample(",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("emitted MSL missing %q:\n%s", want, text)
		}
	}
}

func TestRoundTripMatrixAlgebra(t *testing.T) {
	roundTrip(t, `#version 330
uniform mat3 rot;
uniform vec3 axis;
in vec2 uv;
out vec4 color;
void main() {
    mat3 m = rot * mat3(vec3(1.0, 0.0, 0.0), vec3(0.0, 1.0, 0.0), axis);
    vec3 p = m * vec3(uv, 1.0);
    mat3 s = mat3(2.0 * p.x, 0.0, 0.0, 0.0, 2.0, 0.0, 0.0, 0.0, 2.0);
    color = vec4(s * p, 1.0);
}
`, "matalg")
}

func TestRoundTripArraysAndWhile(t *testing.T) {
	roundTrip(t, `#version 330
uniform float k;
in vec2 uv;
out vec4 color;
void main() {
    float wts[5] = float[](0.1, 0.2, 0.4, 0.2, 0.1);
    float s = 0.0;
    for (int i = 0; i < 5; i++) { s += wts[i] * uv.x; }
    float g = 1.0;
    while (g < k + s) { g = g * 2.0 + 0.125; }
    color = vec4(s, g, mod(g, 0.7), 1.0);
}
`, "arrwhile")
}

func TestRoundTripCubeDiscardSelect(t *testing.T) {
	roundTrip(t, `#version 330
uniform samplerCube sky;
uniform float cut;
in vec2 uv;
out vec4 color;
void main() {
    vec3 dir = normalize(vec3(uv * 2.0 - 1.0, 1.0));
    vec4 c = texture(sky, dir);
    if (c.r < cut * 0.1) { discard; }
    float m = c.g > 0.5 ? radians(c.g) : degrees(c.b) * 0.001;
    color = vec4(c.rgb, m);
}
`, "cube")
}

func TestRoundTripLodFetchBuiltins(t *testing.T) {
	roundTrip(t, `#version 330
uniform sampler2D tex;
in vec2 uv;
out vec4 color;
void main() {
    vec4 a = textureLod(tex, uv, 2.0);
    vec4 b = texelFetch(tex, ivec2(int(uv.x * 8.0), int(uv.y * 8.0)), ivec2(0));
    vec4 c = texture(tex, uv, 0.5);
    color = (a + b + c) * inversesqrt(2.0 + uv.x);
}
`, "lodfetch")
}

func TestRoundTripMultiOutput(t *testing.T) {
	text := roundTrip(t, `#version 330
uniform float gain;
in vec2 uv;
out vec4 albedo;
out vec4 bright;
void main() {
    albedo = vec4(uv, 0.5, 1.0);
    bright = vec4(uv.x * gain);
}
`, "mrt")
	for _, want := range []string{"[[color(0)]]", "[[color(1)]]", "struct main0_out"} {
		if !strings.Contains(text, want) {
			t.Errorf("emitted MSL missing %q:\n%s", want, text)
		}
	}
}

func TestRoundTripIntBoolOps(t *testing.T) {
	roundTrip(t, `#version 330
uniform int n;
in vec2 uv;
out vec4 color;
void main() {
    int acc = 0;
    for (int i = 0; i < n + 7; i++) { acc += i % 3; }
    bool a = uv.x > 0.5;
    bool b = uv.y > 0.5;
    float f = (a ^^ b) ? float(acc) * 0.01 : fract(uv.x * 7.0);
    color = vec4(f, clamp(f, 0.0, 1.0), step(0.3, f), 1.0);
}
`, "intbool")
}

// TestEmitReservedNameCollision exercises the uniquer: IR names that
// collide with MSL spellings must move aside without breaking the round
// trip.
func TestEmitReservedNameCollision(t *testing.T) {
	text := roundTrip(t, `#version 330
uniform float fragment;
uniform vec2 in0;
in vec2 uv;
out vec4 color;
void main() {
    vec2 device = uv * fragment + in0;
    color = vec4(device, 0.0, 1.0);
}
`, "reserved")
	if strings.Contains(text, "float fragment;") {
		t.Errorf("reserved word leaked as member name:\n%s", text)
	}
}

// TestFrontendRejectsOutsideSubset pins a few diagnostics.
func TestFrontendRejectsOutsideSubset(t *testing.T) {
	cases := []struct{ name, src string }{
		{"no-entry", `static float f() { return 1.0; }`},
		{"vertex", `vertex float4 main0() { return float4(0.0); }`},
		{"bad-sampler", `
fragment float4 main0(texture2d<float> tex [[texture(0)]])
{
    return tex.sample(tex, float2(0.5));
}`},
		{"undefined", `fragment float4 main0() { return float4(nope); }`},
	}
	for _, tc := range cases {
		if _, err := msl.Compile(tc.src, tc.name); err == nil {
			t.Errorf("%s: want error, got none", tc.name)
		}
	}
}

// TestHelperPreludeOnlyWhenUsed verifies glsl_ helpers appear exactly
// when the body calls the corresponding builtin.
func TestHelperPreludeOnlyWhenUsed(t *testing.T) {
	with := roundTrip(t, `#version 330
in vec2 uv;
out vec4 color;
void main() { color = vec4(mod(uv.x, 0.3)); }
`, "withmod")
	if !strings.Contains(with, "glsl_mod") {
		t.Errorf("glsl_mod helper missing:\n%s", with)
	}
	without := roundTrip(t, `#version 330
in vec2 uv;
out vec4 color;
void main() { color = vec4(uv, 0.0, 1.0); }
`, "nomod")
	if strings.Contains(without, "glsl_mod") {
		t.Errorf("unused glsl_mod helper emitted:\n%s", without)
	}
}
