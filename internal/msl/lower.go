package msl

import (
	"fmt"

	"shaderopt/internal/glsl"
	"shaderopt/internal/ir"
	"shaderopt/internal/lower"
	"shaderopt/internal/naming"
	"shaderopt/internal/sem"
)

// Compile parses MSL source and lowers it to an IR program.
func Compile(src, name string) (*ir.Program, error) {
	m, err := Parse(src)
	if err != nil {
		return nil, err
	}
	return Lower(m, name)
}

// Lower binds and lowers a parsed MSL module into the optimizer IR. The
// fragment entry point becomes the program body; helper functions are
// inlined by the shared lowering, exactly as for GLSL, WGSL, and HLSL
// input, so every downstream stage is frontend-independent.
func Lower(m *Module, name string) (*ir.Program, error) {
	sh, err := Translate(m)
	if err != nil {
		return nil, err
	}
	return lower.Lower(sh, name)
}

// Translate binds an MSL module and desugars it into the compiler's
// canonical surface form (the checked GLSL AST). The [[stage_in]] struct
// flattens into `in` interface globals, the constant buffer struct into
// loose uniforms, texture/sampler argument pairs collapse into combined
// samplers, the entry return value (scalar or output struct) becomes
// `out` globals, and MSL intrinsic spellings (rsqrt, atan2, dfdx, the
// glsl_ helper names) rename to their canonical equivalents.
func Translate(m *Module) (*glsl.Shader, error) {
	tr := &translator{
		names:     naming.New("_m"),
		fnRet:     map[string]sem.Type{},
		samplers:  map[string]bool{},
		structs:   map[string]*StructDecl{},
		instances: map[string]map[string]naming.Binding{},
		outInsts:  map[string]bool{},
		outFields: map[string]string{},
	}
	return tr.module(m)
}

// translator carries the binding state of one module translation. Value
// scopes are keyed by the ORIGINAL MSL name with the sanitized GLSL
// spelling riding along in each binding (see naming.Scopes), and all
// spelling decisions live in the shared naming.Namer with this frontend's
// "_m" escape suffix.
type translator struct {
	sh     *glsl.Shader
	scopes naming.Scopes
	names  *naming.Namer

	fnRet    map[string]sem.Type // helper function return types
	samplers map[string]bool     // sampler-state parameter names (dropped)
	structs  map[string]*StructDecl

	// instances maps a struct-typed interface parameter (the stage_in and
	// buffer arguments) to its field bindings: `in.uv` resolves through
	// here to the flattened interface global.
	instances map[string]map[string]naming.Binding

	// Output-struct state for a multi-output entry: retStruct names the
	// declared return struct, outFields maps its field names to the
	// synthesized out globals, outInsts tracks locals declared with the
	// struct type (their member stores assign the out globals directly and
	// returning one desugars to a bare return).
	retStruct string
	outFields map[string]string
	outInsts  map[string]bool

	entry    *FnDecl
	curRet   sem.Type
	entryOut string // synthesized out global of a value-returning entry
}

func (tr *translator) pushScope() { tr.scopes.Push() }
func (tr *translator) popScope()  { tr.scopes.Pop() }

func (tr *translator) bind(orig, glslName string, t sem.Type) {
	tr.scopes.Bind(orig, glslName, t)
}

func (tr *translator) lookup(orig string) (naming.Binding, bool) {
	return tr.scopes.Lookup(orig)
}

func (tr *translator) rename(name string) string    { return tr.names.Rename(name) }
func (tr *translator) freshName(base string) string { return tr.names.Fresh(base) }
func (tr *translator) localName(name string) string { return tr.names.Local(name) }

func errf(p Pos, format string, args ...any) error {
	return fmt.Errorf("%s: %s", p, fmt.Sprintf(format, args...))
}

// --- module-scope translation ---

func (tr *translator) module(m *Module) (*glsl.Shader, error) {
	tr.sh = &glsl.Shader{Version: "330"}
	for _, st := range m.Structs() {
		tr.structs[st.Name] = st
	}
	tr.entry = m.EntryPoint()
	if tr.entry == nil {
		return nil, fmt.Errorf("module has no fragment entry point")
	}
	tr.names.Reserve("main")
	tr.pushScope()
	defer tr.popScope()

	// Pre-bind helper signatures so calls ahead of the declaration resolve.
	for _, f := range m.Fns() {
		if f == tr.entry {
			continue
		}
		ret := sem.Void
		if f.Ret != nil && f.Ret.Name != "void" {
			t, err := tr.resolveType(f.Ret)
			if err != nil {
				return nil, errf(f.Pos, "function %s: %v", f.Name, err)
			}
			ret = t
		}
		tr.fnRet[tr.rename(f.Name)] = ret
	}

	for _, d := range m.Decls {
		switch d := d.(type) {
		case *GlobalVar:
			if err := tr.globalVar(d); err != nil {
				return nil, err
			}
		case *FnDecl:
			if d == tr.entry {
				continue // translated last, once all globals are bound
			}
			if err := tr.helperFn(d); err != nil {
				return nil, err
			}
		}
	}
	if err := tr.entryFn(tr.entry); err != nil {
		return nil, err
	}
	return tr.sh, nil
}

// globalVar translates a module-scope `constant` definition into a const
// global.
func (tr *translator) globalVar(d *GlobalVar) error {
	t, err := tr.resolveType(d.Type)
	if err != nil {
		return errf(d.Pos, "constant %s: %v", d.Name, err)
	}
	if d.Init == nil {
		return errf(d.Pos, "constant %s needs an initializer", d.Name)
	}
	spec, err := semToSpec(t)
	if err != nil {
		return errf(d.Pos, "constant %s: %v", d.Name, err)
	}
	init, it, err := tr.initializer(d.Init, t)
	if err != nil {
		return err
	}
	init, it = tr.promote(init, it, t)
	if !it.Equal(t) {
		return errf(d.Pos, "cannot initialize %s %s with %s", t, d.Name, it)
	}
	name := tr.rename(d.Name)
	tr.sh.Decls = append(tr.sh.Decls, &glsl.GlobalVar{Qual: glsl.QualConst, Type: spec, Name: name, Init: init})
	tr.bind(d.Name, name, t)
	return nil
}

// helperFn translates a non-entry function into a GLSL function; the
// shared lowering inlines it at each call site.
func (tr *translator) helperFn(d *FnDecl) error {
	ret := glsl.Scalar("void")
	if d.Ret != nil && d.Ret.Name != "void" {
		t, err := tr.resolveType(d.Ret)
		if err != nil {
			return errf(d.Pos, "function %s: %v", d.Name, err)
		}
		if ret, err = semToSpec(t); err != nil {
			return errf(d.Pos, "function %s: %v", d.Name, err)
		}
	}
	fn := &glsl.FuncDecl{Return: ret, Name: tr.rename(d.Name)}
	tr.curRet = tr.fnRet[fn.Name]
	tr.pushScope()
	defer tr.popScope()
	for _, p := range d.Params {
		if p.Space != "" || p.Ref || p.Attr.Name != "" {
			return errf(d.Pos, "function %s: qualified parameters are only legal on the entry point", d.Name)
		}
		t, err := tr.resolveType(p.Type)
		if err != nil {
			return errf(d.Pos, "function %s param %s: %v", d.Name, p.Name, err)
		}
		if t.IsSampler() {
			return errf(d.Pos, "function %s param %s: texture parameters are outside the supported subset", d.Name, p.Name)
		}
		spec, err := semToSpec(t)
		if err != nil {
			return errf(d.Pos, "function %s param %s: %v", d.Name, p.Name, err)
		}
		pn := tr.localName(p.Name)
		fn.Params = append(fn.Params, glsl.Param{Type: spec, Name: pn})
		tr.bind(p.Name, pn, t)
	}
	body, err := tr.block(d.Body, false)
	if err != nil {
		return fmt.Errorf("function %s: %w", d.Name, err)
	}
	fn.Body = body
	tr.sh.Decls = append(tr.sh.Decls, fn)
	return nil
}

// entryFn translates the fragment entry point into void main(). The
// stage_in struct parameter flattens into `in` globals, the constant
// buffer into uniforms, texture/sampler pairs into combined samplers, and
// the return value (direct or via the output struct) into `out` globals.
func (tr *translator) entryFn(d *FnDecl) error {
	entryOut := ""
	if d.Ret == nil || d.Ret.Name == "void" {
		return errf(d.Pos, "entry point %s must return the fragment color", d.Name)
	}
	if st, ok := tr.structs[d.Ret.Name]; ok {
		// Multi-output entry: the return struct's [[color(i)]] members
		// become out globals in declaration order.
		tr.retStruct = st.Name
		for _, f := range st.Fields {
			t, err := tr.resolveType(f.Type)
			if err != nil {
				return errf(st.Pos, "output %s.%s: %v", st.Name, f.Name, err)
			}
			spec, err := semToSpec(t)
			if err != nil {
				return errf(st.Pos, "output %s.%s: %v", st.Name, f.Name, err)
			}
			name := tr.rename(f.Name)
			tr.sh.Decls = append(tr.sh.Decls, &glsl.GlobalVar{Qual: glsl.QualOut, Type: spec, Name: name})
			tr.outFields[f.Name] = name
		}
		tr.curRet = sem.Void
	} else {
		t, err := tr.resolveType(d.Ret)
		if err != nil {
			return errf(d.Pos, "entry return: %v", err)
		}
		spec, err := semToSpec(t)
		if err != nil {
			return errf(d.Pos, "entry return: %v", err)
		}
		entryOut = tr.freshName("fragColor")
		tr.sh.Decls = append(tr.sh.Decls, &glsl.GlobalVar{Qual: glsl.QualOut, Type: spec, Name: entryOut})
		tr.curRet = t
	}

	tr.pushScope()
	defer tr.popScope()
	for _, p := range d.Params {
		if err := tr.entryParam(d, p); err != nil {
			return err
		}
	}
	tr.entryOut = entryOut
	body, err := tr.block(d.Body, true)
	if err != nil {
		return fmt.Errorf("entry %s: %w", d.Name, err)
	}
	tr.sh.Decls = append(tr.sh.Decls, &glsl.FuncDecl{
		Return: glsl.Scalar("void"), Name: "main", Body: body,
	})
	return nil
}

func (tr *translator) entryParam(d *FnDecl, p Param) error {
	switch {
	case p.Attr.Name == "stage_in":
		st, ok := tr.structs[p.Type.Name]
		if !ok {
			return errf(d.Pos, "stage_in parameter %s: unknown struct %q", p.Name, p.Type.Name)
		}
		fields := map[string]naming.Binding{}
		for _, f := range st.Fields {
			t, err := tr.resolveType(f.Type)
			if err != nil {
				return errf(st.Pos, "input %s.%s: %v", st.Name, f.Name, err)
			}
			spec, err := semToSpec(t)
			if err != nil {
				return errf(st.Pos, "input %s.%s: %v", st.Name, f.Name, err)
			}
			name := tr.rename(f.Name)
			tr.sh.Decls = append(tr.sh.Decls, &glsl.GlobalVar{Qual: glsl.QualIn, Type: spec, Name: name})
			fields[f.Name] = naming.Binding{Name: name, T: t}
		}
		tr.instances[p.Name] = fields
		return nil
	case p.Space == "constant" && p.Ref:
		st, ok := tr.structs[p.Type.Name]
		if !ok {
			return errf(d.Pos, "buffer parameter %s: unknown struct %q", p.Name, p.Type.Name)
		}
		fields := map[string]naming.Binding{}
		for _, f := range st.Fields {
			t, err := tr.resolveType(f.Type)
			if err != nil {
				return errf(st.Pos, "uniform %s.%s: %v", st.Name, f.Name, err)
			}
			spec, err := semToSpec(t)
			if err != nil {
				return errf(st.Pos, "uniform %s.%s: %v", st.Name, f.Name, err)
			}
			name := tr.rename(f.Name)
			tr.sh.Decls = append(tr.sh.Decls, &glsl.GlobalVar{Qual: glsl.QualUniform, Type: spec, Name: name})
			fields[f.Name] = naming.Binding{Name: name, T: t}
		}
		tr.instances[p.Name] = fields
		return nil
	case p.Type.Name == "sampler":
		// Separate sampler state collapses into the combined GLSL sampler;
		// the binding only legalizes .sample call sites.
		tr.samplers[p.Name] = true
		return nil
	}
	t, err := tr.resolveType(p.Type)
	if err != nil {
		return errf(d.Pos, "entry param %s: %v", p.Name, err)
	}
	if !t.IsSampler() {
		return errf(d.Pos, "entry param %s: plain value parameters are outside the supported subset", p.Name)
	}
	spec, err := semToSpec(t)
	if err != nil {
		return errf(d.Pos, "entry param %s: %v", p.Name, err)
	}
	name := tr.rename(p.Name)
	tr.sh.Decls = append(tr.sh.Decls, &glsl.GlobalVar{Qual: glsl.QualUniform, Type: spec, Name: name})
	tr.bind(p.Name, name, t)
	return nil
}

// --- statements ---

// block translates a statement block. inEntry marks the entry body, where
// valued returns desugar into out-global stores.
func (tr *translator) block(b *BlockStmt, inEntry bool) (*glsl.BlockStmt, error) {
	tr.pushScope()
	defer tr.popScope()
	out := &glsl.BlockStmt{Pos: pos(b.Pos)}
	for _, s := range b.Stmts {
		gs, err := tr.stmt(s, inEntry)
		if err != nil {
			return nil, err
		}
		out.Stmts = append(out.Stmts, gs...)
	}
	return out, nil
}

func (tr *translator) stmt(s Stmt, inEntry bool) ([]glsl.Stmt, error) {
	switch s := s.(type) {
	case *BlockStmt:
		b, err := tr.block(s, inEntry)
		if err != nil {
			return nil, err
		}
		return []glsl.Stmt{b}, nil
	case *DeclStmt:
		return tr.declStmt(s, inEntry)
	case *AssignStmt:
		return tr.assignStmt(s)
	case *IfStmt:
		return tr.ifStmt(s, inEntry)
	case *ForStmt:
		return tr.forStmt(s, inEntry)
	case *WhileStmt:
		cond, ct, err := tr.expr(s.Cond)
		if err != nil {
			return nil, err
		}
		if !ct.Equal(sem.Bool) {
			return nil, errf(s.Pos, "while condition must be bool, got %s", ct)
		}
		body, err := tr.block(s.Body, inEntry)
		if err != nil {
			return nil, err
		}
		return []glsl.Stmt{&glsl.WhileStmt{Pos: pos(s.Pos), Cond: cond, Body: body}}, nil
	case *ReturnStmt:
		return tr.returnStmt(s, inEntry)
	case *BreakStmt:
		return []glsl.Stmt{&glsl.BreakStmt{Pos: pos(s.Pos)}}, nil
	case *ContinueStmt:
		return []glsl.Stmt{&glsl.ContinueStmt{Pos: pos(s.Pos)}}, nil
	case *ExprStmt:
		if call, ok := s.X.(*CallExpr); ok && call.Callee == "discard_fragment" {
			if len(call.Args) != 0 {
				return nil, errf(s.Pos, "discard_fragment takes no arguments")
			}
			return []glsl.Stmt{&glsl.DiscardStmt{Pos: pos(s.Pos)}}, nil
		}
		x, _, err := tr.expr(s.X)
		if err != nil {
			return nil, err
		}
		return []glsl.Stmt{&glsl.ExprStmt{Pos: pos(s.Pos), X: x}}, nil
	}
	return nil, fmt.Errorf("unknown statement %T", s)
}

func (tr *translator) returnStmt(s *ReturnStmt, inEntry bool) ([]glsl.Stmt, error) {
	if s.Value == nil {
		return []glsl.Stmt{&glsl.ReturnStmt{Pos: pos(s.Pos)}}, nil
	}
	// Returning an output-struct instance: its member stores already
	// assigned the out globals, so the return itself carries no value.
	if id, ok := s.Value.(*IdentExpr); ok && tr.outInsts[id.Name] {
		return []glsl.Stmt{&glsl.ReturnStmt{Pos: pos(s.Pos)}}, nil
	}
	res, rt, err := tr.expr(s.Value)
	if err != nil {
		return nil, err
	}
	res, _ = tr.promote(res, rt, tr.curRet)
	if inEntry && tr.entryOut != "" {
		return []glsl.Stmt{
			&glsl.AssignStmt{Pos: pos(s.Pos), LHS: &glsl.IdentExpr{Name: tr.entryOut}, Op: "=", RHS: res},
			&glsl.ReturnStmt{Pos: pos(s.Pos)},
		}, nil
	}
	return []glsl.Stmt{&glsl.ReturnStmt{Pos: pos(s.Pos), Result: res}}, nil
}

func (tr *translator) declStmt(s *DeclStmt, inEntry bool) ([]glsl.Stmt, error) {
	// Declaring the output struct (`main0_out out0;`): register the
	// instance; its member stores assign the out globals directly.
	if inEntry && tr.retStruct != "" && s.Type.Name == tr.retStruct {
		if s.Init != nil {
			return nil, errf(s.Pos, "output struct %s cannot be initialized", s.Name)
		}
		tr.outInsts[s.Name] = true
		return nil, nil
	}
	t, err := tr.resolveType(s.Type)
	if err != nil {
		return nil, errf(s.Pos, "%s: %v", s.Name, err)
	}
	var gInit glsl.Expr
	if s.Init != nil {
		init, it, err := tr.initializer(s.Init, t)
		if err != nil {
			return nil, err
		}
		init, it = tr.promote(init, it, t)
		if !it.Equal(t) {
			return nil, errf(s.Pos, "cannot initialize %s %s with %s", t, s.Name, it)
		}
		gInit = init
	}
	spec, err := semToSpec(t)
	if err != nil {
		return nil, errf(s.Pos, "%s: %v", s.Name, err)
	}
	ln := tr.localName(s.Name)
	tr.bind(s.Name, ln, t)
	return []glsl.Stmt{&glsl.DeclStmt{Pos: pos(s.Pos), Const: s.Const, Type: spec, Name: ln, Init: gInit}}, nil
}

// initializer translates a declaration initializer: an array<T, N>{...}
// or bare brace list becomes a GLSL array constructor checked against the
// declared type; any other expression translates normally.
func (tr *translator) initializer(e Expr, declared sem.Type) (glsl.Expr, sem.Type, error) {
	lst, ok := e.(*ArrayLitExpr)
	if !ok {
		return tr.expr(e)
	}
	if !declared.IsArray() {
		return nil, sem.Void, errf(lst.Pos, "brace initializers are only supported for arrays")
	}
	elem := declared.Elem()
	if declared.ArrayLen != len(lst.Elems) {
		return nil, sem.Void, errf(lst.Pos, "%s initialized with %d elements", declared, len(lst.Elems))
	}
	spec, err := semToSpec(elem)
	if err != nil {
		return nil, sem.Void, errf(lst.Pos, "%v", err)
	}
	elems := make([]glsl.Expr, len(lst.Elems))
	for i, el := range lst.Elems {
		x, xt, err := tr.expr(el)
		if err != nil {
			return nil, sem.Void, err
		}
		x, xt = tr.promote(x, xt, elem)
		if !xt.Equal(elem) {
			return nil, sem.Void, errf(lst.Pos, "initializer element %d has type %s, want %s", i+1, xt, elem)
		}
		elems[i] = x
	}
	return &glsl.ArrayCtorExpr{Pos: pos(lst.Pos), Elem: spec, Len: len(elems), Elems: elems},
		declared, nil
}

func (tr *translator) assignStmt(s *AssignStmt) ([]glsl.Stmt, error) {
	// Output-struct member store: assign the corresponding out global.
	if mem, ok := s.LHS.(*MemberExpr); ok {
		if id, ok := mem.X.(*IdentExpr); ok && tr.outInsts[id.Name] {
			out, ok := tr.outFields[mem.Name]
			if !ok {
				return nil, errf(s.Pos, "output struct has no member %q", mem.Name)
			}
			rhs, _, err := tr.expr(s.RHS)
			if err != nil {
				return nil, err
			}
			return []glsl.Stmt{&glsl.AssignStmt{Pos: pos(s.Pos), LHS: &glsl.IdentExpr{Name: out}, Op: s.Op, RHS: rhs}}, nil
		}
	}
	lhs, lt, err := tr.expr(s.LHS)
	if err != nil {
		return nil, err
	}
	rhs, rt, err := tr.expr(s.RHS)
	if err != nil {
		return nil, err
	}
	rhs, rt = tr.promote(rhs, rt, lt)
	if s.Op == "=" && !rt.Equal(lt) {
		return nil, errf(s.Pos, "cannot assign %s to %s", rt, lt)
	}
	return []glsl.Stmt{&glsl.AssignStmt{Pos: pos(s.Pos), LHS: lhs, Op: s.Op, RHS: rhs}}, nil
}

func (tr *translator) ifStmt(s *IfStmt, inEntry bool) ([]glsl.Stmt, error) {
	cond, ct, err := tr.expr(s.Cond)
	if err != nil {
		return nil, err
	}
	if !ct.Equal(sem.Bool) {
		return nil, errf(s.Pos, "if condition must be bool, got %s", ct)
	}
	then, err := tr.block(s.Then, inEntry)
	if err != nil {
		return nil, err
	}
	out := &glsl.IfStmt{Pos: pos(s.Pos), Cond: cond, Then: then}
	switch els := s.Else.(type) {
	case nil:
	case *BlockStmt:
		b, err := tr.block(els, inEntry)
		if err != nil {
			return nil, err
		}
		out.Else = b
	case *IfStmt:
		chain, err := tr.ifStmt(els, inEntry)
		if err != nil {
			return nil, err
		}
		out.Else = chain[0]
	default:
		return nil, errf(s.Pos, "unsupported else form %T", s.Else)
	}
	return []glsl.Stmt{out}, nil
}

// forStmt translates `for`, keeping the canonical counted shape intact so
// the shared lowering recognizes it and the Unroll pass can fire on MSL
// loops exactly as on the other frontends.
func (tr *translator) forStmt(s *ForStmt, inEntry bool) ([]glsl.Stmt, error) {
	tr.pushScope()
	defer tr.popScope()
	out := &glsl.ForStmt{Pos: pos(s.Pos)}
	if s.Init != nil {
		init, err := tr.stmt(s.Init, inEntry)
		if err != nil {
			return nil, err
		}
		if len(init) != 1 {
			return nil, errf(s.Pos, "unsupported for-loop initializer")
		}
		out.Init = init[0]
	}
	if s.Cond != nil {
		cond, ct, err := tr.expr(s.Cond)
		if err != nil {
			return nil, err
		}
		if !ct.Equal(sem.Bool) {
			return nil, errf(s.Pos, "for condition must be bool, got %s", ct)
		}
		out.Cond = cond
	}
	if s.Post != nil {
		post, err := tr.stmt(s.Post, inEntry)
		if err != nil {
			return nil, err
		}
		if len(post) != 1 {
			return nil, errf(s.Pos, "unsupported for-loop post statement")
		}
		out.Post = post[0]
	}
	body, err := tr.block(s.Body, inEntry)
	if err != nil {
		return nil, err
	}
	out.Body = body
	return []glsl.Stmt{out}, nil
}

func pos(p Pos) glsl.Pos { return glsl.Pos{Line: p.Line, Col: p.Col} }
