package msl

import (
	"fmt"
	"strconv"
	"strings"
)

// Parser is a recursive-descent parser over the token stream.
type Parser struct {
	toks []Token
	pos  int
	errs []error
}

// Parse parses an MSL module.
func Parse(src string) (*Module, error) {
	toks, err := LexAll(src)
	if err != nil {
		return nil, err
	}
	p := &Parser{toks: toks}
	m := &Module{}
	for p.cur().Kind != EOF {
		if len(p.errs) > 8 {
			break
		}
		d := p.parseDecl()
		if d != nil {
			m.Decls = append(m.Decls, d)
		}
	}
	if len(p.errs) > 0 {
		return nil, p.errs[0]
	}
	return m, nil
}

func (p *Parser) cur() Token { return p.toks[p.pos] }

func (p *Parser) peekTok(n int) Token {
	if p.pos+n >= len(p.toks) {
		return p.toks[len(p.toks)-1]
	}
	return p.toks[p.pos+n]
}

func (p *Parser) next() Token {
	t := p.toks[p.pos]
	if p.pos < len(p.toks)-1 {
		p.pos++
	}
	return t
}

func (p *Parser) accept(kind Kind, text string) bool {
	if p.cur().Kind == kind && p.cur().Text == text {
		p.next()
		return true
	}
	return false
}

func (p *Parser) expect(kind Kind, text string) Token {
	if p.cur().Kind == kind && p.cur().Text == text {
		return p.next()
	}
	p.errorf("expected %q, found %q", text, p.cur().Text)
	return p.cur()
}

func (p *Parser) errorf(format string, args ...any) {
	p.errs = append(p.errs, fmt.Errorf("msl: %s: %s", p.cur().Pos, fmt.Sprintf(format, args...)))
	p.sync()
}

// sync skips to the next ; or } so one error does not cascade.
func (p *Parser) sync() {
	for p.cur().Kind != EOF {
		if p.cur().Kind == Punct && (p.cur().Text == ";" || p.cur().Text == "}") {
			p.next()
			return
		}
		p.next()
	}
}

// --- declarations ---

func (p *Parser) parseDecl() Decl {
	t := p.cur()
	if t.Kind == Keyword {
		switch t.Text {
		case "using":
			// using namespace metal;
			for p.cur().Kind != EOF && !(p.cur().Kind == Punct && p.cur().Text == ";") {
				p.next()
			}
			p.accept(Punct, ";")
			return nil
		case "template":
			// Template helper (the glsl_ prelude): skip the whole definition.
			p.skipTemplate()
			return nil
		case "struct":
			return p.parseStruct()
		case "constant":
			return p.parseGlobalVar()
		case "static", "inline", "fragment", "vertex", "kernel":
			return p.parseFn()
		}
		p.errorf("unexpected keyword %q at module scope", t.Text)
		return nil
	}
	if t.Kind == Ident {
		// A plain function definition: Type Name ( ...
		return p.parseFn()
	}
	p.errorf("unexpected token %q at module scope", t.Text)
	return nil
}

// skipTemplate consumes a template function definition by skipping to the
// first { and matching braces.
func (p *Parser) skipTemplate() {
	for p.cur().Kind != EOF && !(p.cur().Kind == Punct && p.cur().Text == "{") {
		p.next()
	}
	depth := 0
	for p.cur().Kind != EOF {
		t := p.next()
		if t.Kind == Punct && t.Text == "{" {
			depth++
		}
		if t.Kind == Punct && t.Text == "}" {
			depth--
			if depth == 0 {
				return
			}
		}
	}
}

func (p *Parser) parseStruct() *StructDecl {
	pos := p.cur().Pos
	p.expect(Keyword, "struct")
	name := p.ident("struct name")
	st := &StructDecl{Pos: pos, Name: name}
	p.expect(Punct, "{")
	for p.cur().Kind != EOF && !(p.cur().Kind == Punct && p.cur().Text == "}") {
		ft := p.parseType()
		fname := p.ident("field name")
		f := StructField{Type: ft, Name: fname, Attr: Attr{Arg: -1}}
		if p.cur().Kind == Punct && p.cur().Text == "[" && p.peekTok(1).Text == "[" {
			f.Attr = p.parseAttr()
		} else if p.accept(Punct, "[") {
			// C-style array member: rewrite onto the type.
			n := p.intLit("array length")
			p.expect(Punct, "]")
			f.Type = &TypeExpr{Pos: ft.Pos, Name: "array", Elem: ft, Len: n}
		}
		p.expect(Punct, ";")
		st.Fields = append(st.Fields, f)
	}
	p.expect(Punct, "}")
	p.expect(Punct, ";")
	return st
}

func (p *Parser) parseGlobalVar() *GlobalVar {
	pos := p.cur().Pos
	p.expect(Keyword, "constant")
	ty := p.parseType()
	name := p.ident("constant name")
	g := &GlobalVar{Pos: pos, Type: ty, Name: name}
	if p.accept(Punct, "=") {
		g.Init = p.parseExpr()
	}
	p.expect(Punct, ";")
	return g
}

func (p *Parser) parseFn() *FnDecl {
	pos := p.cur().Pos
	fn := &FnDecl{Pos: pos}
	for p.cur().Kind == Keyword {
		switch p.cur().Text {
		case "static", "inline":
			p.next()
			continue
		case "fragment":
			fn.Fragment = true
			p.next()
			continue
		case "vertex", "kernel":
			p.errorf("%s functions are outside the fragment-shader subset", p.cur().Text)
			return nil
		}
		break
	}
	fn.Ret = p.parseType()
	fn.Name = p.ident("function name")
	p.expect(Punct, "(")
	for p.cur().Kind != EOF && !(p.cur().Kind == Punct && p.cur().Text == ")") {
		fn.Params = append(fn.Params, p.parseParam())
		if !p.accept(Punct, ",") {
			break
		}
	}
	p.expect(Punct, ")")
	fn.Body = p.parseBlock()
	return fn
}

func (p *Parser) parseParam() Param {
	var pr Param
	if p.cur().Kind == Keyword {
		switch p.cur().Text {
		case "constant", "device", "thread":
			pr.Space = p.next().Text
		case "const":
			p.next()
		}
	}
	pr.Type = p.parseType()
	if p.accept(Punct, "&") {
		pr.Ref = true
	}
	pr.Name = p.ident("parameter name")
	pr.Attr = Attr{Arg: -1}
	if p.cur().Kind == Punct && p.cur().Text == "[" && p.peekTok(1).Text == "[" {
		pr.Attr = p.parseAttr()
	}
	return pr
}

// parseAttr parses one [[name]] or [[name(arg)]] attribute. user(locnN)
// arguments resolve to N.
func (p *Parser) parseAttr() Attr {
	p.expect(Punct, "[")
	p.expect(Punct, "[")
	name := p.ident("attribute name")
	a := Attr{Name: name, Arg: -1}
	if p.accept(Punct, "(") {
		switch p.cur().Kind {
		case IntLit:
			a.Arg, _ = strconv.Atoi(p.next().Text)
		case Ident:
			arg := p.next().Text
			if n, err := strconv.Atoi(strings.TrimPrefix(arg, "locn")); err == nil {
				a.Arg = n
			}
		default:
			p.errorf("bad attribute argument %q", p.cur().Text)
		}
		p.expect(Punct, ")")
	}
	p.expect(Punct, "]")
	p.expect(Punct, "]")
	return a
}

// parseType parses a type reference: Name, Name<Elem>, array<Elem, N>.
func (p *Parser) parseType() *TypeExpr {
	t := p.cur()
	if t.Kind != Ident {
		p.errorf("expected type, found %q", t.Text)
		return &TypeExpr{Pos: t.Pos, Name: "float", Len: -1}
	}
	p.next()
	te := &TypeExpr{Pos: t.Pos, Name: t.Text, Len: -1}
	if templatedType(t.Text) && p.accept(Punct, "<") {
		te.Elem = p.parseType()
		if te.Name == "array" {
			p.expect(Punct, ",")
			te.Len = p.intLit("array length")
		}
		p.expect(Punct, ">")
	}
	return te
}

// templatedType reports whether a type name takes template arguments in
// the subset — texture types and array. Keeping this contextual avoids
// misparsing comparisons like `a < b`.
func templatedType(name string) bool {
	switch name {
	case "array", "texture2d", "texture3d", "texturecube", "depth2d", "texture2d_array":
		return true
	}
	return false
}

func (p *Parser) ident(what string) string {
	t := p.cur()
	if t.Kind != Ident {
		p.errorf("expected %s, found %q", what, t.Text)
		return "_"
	}
	p.next()
	return t.Text
}

func (p *Parser) intLit(what string) int {
	t := p.cur()
	if t.Kind != IntLit {
		p.errorf("expected %s, found %q", what, t.Text)
		return 0
	}
	p.next()
	n, _ := strconv.Atoi(t.Text)
	return n
}

// --- statements ---

func (p *Parser) parseBlock() *BlockStmt {
	pos := p.cur().Pos
	p.expect(Punct, "{")
	b := &BlockStmt{Pos: pos}
	for p.cur().Kind != EOF && !(p.cur().Kind == Punct && p.cur().Text == "}") {
		if s := p.parseStmt(); s != nil {
			b.Stmts = append(b.Stmts, s)
		}
	}
	p.expect(Punct, "}")
	return b
}

func (p *Parser) parseStmt() Stmt {
	t := p.cur()
	if t.Kind == Keyword {
		switch t.Text {
		case "if":
			return p.parseIf()
		case "for":
			return p.parseFor()
		case "while":
			return p.parseWhile()
		case "return":
			pos := p.next().Pos
			r := &ReturnStmt{Pos: pos}
			if !(p.cur().Kind == Punct && p.cur().Text == ";") {
				r.Value = p.parseExpr()
			}
			p.expect(Punct, ";")
			return r
		case "break":
			pos := p.next().Pos
			p.expect(Punct, ";")
			return &BreakStmt{Pos: pos}
		case "continue":
			pos := p.next().Pos
			p.expect(Punct, ";")
			return &ContinueStmt{Pos: pos}
		case "const":
			return p.parseLocalDecl(true)
		}
		p.errorf("unexpected keyword %q in statement", t.Text)
		return nil
	}
	if p.startsDecl() {
		return p.parseLocalDecl(true)
	}
	return p.parseSimpleStmt(true)
}

// startsDecl reports whether the upcoming tokens are a local declaration:
// a type name followed by an identifier (not an open paren, which would be
// a constructor-call expression). Struct types (the output struct) are not
// in the intrinsic table, so any `Ident Ident ;/=/[` run is a declaration
// too — no expression has two adjacent identifiers.
func (p *Parser) startsDecl() bool {
	t := p.cur()
	if t.Kind != Ident {
		return false
	}
	if IsTypeName(t.Text) {
		if templatedType(t.Text) && p.peekTok(1).Kind == Punct && p.peekTok(1).Text == "<" {
			return true
		}
		return p.peekTok(1).Kind == Ident
	}
	if p.peekTok(1).Kind != Ident {
		return false
	}
	nn := p.peekTok(2)
	return nn.Kind == Punct && (nn.Text == ";" || nn.Text == "=" || nn.Text == "[")
}

func (p *Parser) parseLocalDecl(semi bool) Stmt {
	pos := p.cur().Pos
	isConst := p.accept(Keyword, "const")
	ty := p.parseType()
	name := p.ident("variable name")
	d := &DeclStmt{Pos: pos, Const: isConst, Type: ty, Name: name}
	if p.accept(Punct, "[") {
		n := p.intLit("array length")
		p.expect(Punct, "]")
		d.Type = &TypeExpr{Pos: ty.Pos, Name: "array", Elem: ty, Len: n}
	}
	if p.accept(Punct, "=") {
		d.Init = p.parseInitializer()
	}
	if semi {
		p.expect(Punct, ";")
	}
	return d
}

// parseInitializer parses an initializer expression, allowing a bare
// brace list ({} or {a, b, c}) for aggregate types.
func (p *Parser) parseInitializer() Expr {
	if p.cur().Kind == Punct && p.cur().Text == "{" {
		pos := p.next().Pos
		lit := &ArrayLitExpr{Pos: pos, Len: -1}
		for p.cur().Kind != EOF && !(p.cur().Kind == Punct && p.cur().Text == "}") {
			lit.Elems = append(lit.Elems, p.parseExpr())
			if !p.accept(Punct, ",") {
				break
			}
		}
		p.expect(Punct, "}")
		return lit
	}
	return p.parseExpr()
}

// parseSimpleStmt parses an assignment or expression statement.
// Prefix/postfix ++/-- normalize to compound assignments.
func (p *Parser) parseSimpleStmt(semi bool) Stmt {
	pos := p.cur().Pos
	if p.cur().Kind == Punct && (p.cur().Text == "++" || p.cur().Text == "--") {
		op := p.next().Text
		lhs := p.parseUnary()
		s := &AssignStmt{Pos: pos, LHS: lhs, Op: string(op[0]) + "=", RHS: &IntLitExpr{Pos: pos, Text: "1"}}
		if semi {
			p.expect(Punct, ";")
		}
		return s
	}
	lhs := p.parseExpr()
	t := p.cur()
	if t.Kind == Punct {
		switch t.Text {
		case "=", "+=", "-=", "*=", "/=", "%=":
			op := p.next().Text
			rhs := p.parseExpr()
			s := &AssignStmt{Pos: pos, LHS: lhs, Op: op, RHS: rhs}
			if semi {
				p.expect(Punct, ";")
			}
			return s
		case "++", "--":
			op := p.next().Text
			s := &AssignStmt{Pos: pos, LHS: lhs, Op: string(op[0]) + "=", RHS: &IntLitExpr{Pos: pos, Text: "1"}}
			if semi {
				p.expect(Punct, ";")
			}
			return s
		}
	}
	s := &ExprStmt{Pos: pos, X: lhs}
	if semi {
		p.expect(Punct, ";")
	}
	return s
}

func (p *Parser) parseIf() *IfStmt {
	pos := p.cur().Pos
	p.expect(Keyword, "if")
	p.expect(Punct, "(")
	cond := p.parseExpr()
	p.expect(Punct, ")")
	s := &IfStmt{Pos: pos, Cond: cond, Then: p.parseStmtAsBlock()}
	if p.accept(Keyword, "else") {
		if p.cur().Kind == Keyword && p.cur().Text == "if" {
			s.Else = p.parseIf()
		} else {
			s.Else = p.parseStmtAsBlock()
		}
	}
	return s
}

// parseStmtAsBlock parses a block, wrapping an unbraced single statement.
func (p *Parser) parseStmtAsBlock() *BlockStmt {
	if p.cur().Kind == Punct && p.cur().Text == "{" {
		return p.parseBlock()
	}
	pos := p.cur().Pos
	b := &BlockStmt{Pos: pos}
	if s := p.parseStmt(); s != nil {
		b.Stmts = append(b.Stmts, s)
	}
	return b
}

func (p *Parser) parseFor() *ForStmt {
	pos := p.cur().Pos
	p.expect(Keyword, "for")
	p.expect(Punct, "(")
	s := &ForStmt{Pos: pos}
	if !(p.cur().Kind == Punct && p.cur().Text == ";") {
		if p.startsDecl() || (p.cur().Kind == Keyword && p.cur().Text == "const") {
			s.Init = p.parseLocalDecl(false)
		} else {
			s.Init = p.parseSimpleStmt(false)
		}
	}
	p.expect(Punct, ";")
	if !(p.cur().Kind == Punct && p.cur().Text == ";") {
		s.Cond = p.parseExpr()
	}
	p.expect(Punct, ";")
	if !(p.cur().Kind == Punct && p.cur().Text == ")") {
		s.Post = p.parseSimpleStmt(false)
	}
	p.expect(Punct, ")")
	s.Body = p.parseStmtAsBlock()
	return s
}

func (p *Parser) parseWhile() *WhileStmt {
	pos := p.cur().Pos
	p.expect(Keyword, "while")
	p.expect(Punct, "(")
	cond := p.parseExpr()
	p.expect(Punct, ")")
	return &WhileStmt{Pos: pos, Cond: cond, Body: p.parseStmtAsBlock()}
}

// --- expressions ---

var binPrec = map[string]int{
	"||": 1,
	"&&": 2,
	"==": 3, "!=": 3,
	"<": 4, ">": 4, "<=": 4, ">=": 4,
	"+": 5, "-": 5,
	"*": 6, "/": 6, "%": 6,
}

func (p *Parser) parseExpr() Expr { return p.parseTernary() }

func (p *Parser) parseTernary() Expr {
	cond := p.parseBinary(1)
	if p.cur().Kind == Punct && p.cur().Text == "?" {
		pos := p.next().Pos
		x := p.parseExpr()
		p.expect(Punct, ":")
		y := p.parseTernary()
		return &CondExpr{Pos: pos, Cond: cond, X: x, Y: y}
	}
	return cond
}

func (p *Parser) parseBinary(minPrec int) Expr {
	x := p.parseUnary()
	for {
		t := p.cur()
		if t.Kind != Punct {
			return x
		}
		prec, ok := binPrec[t.Text]
		if !ok || prec < minPrec {
			return x
		}
		p.next()
		y := p.parseBinary(prec + 1)
		x = &BinaryExpr{Pos: t.Pos, Op: t.Text, X: x, Y: y}
	}
}

func (p *Parser) parseUnary() Expr {
	t := p.cur()
	if t.Kind == Punct {
		switch t.Text {
		case "-", "!":
			p.next()
			return &UnaryExpr{Pos: t.Pos, Op: t.Text, X: p.parseUnary()}
		case "+":
			p.next()
			return p.parseUnary()
		}
	}
	return p.parsePostfix()
}

func (p *Parser) parsePostfix() Expr {
	x := p.parsePrimary()
	for {
		t := p.cur()
		if t.Kind != Punct {
			return x
		}
		switch t.Text {
		case "[":
			p.next()
			idx := p.parseExpr()
			p.expect(Punct, "]")
			x = &IndexExpr{Pos: t.Pos, X: x, Index: idx}
		case ".":
			p.next()
			name := p.ident("member name")
			if p.cur().Kind == Punct && p.cur().Text == "(" {
				p.next()
				args := p.parseCallArgs()
				x = &MethodCallExpr{Pos: t.Pos, Recv: x, Method: name, Args: args}
			} else {
				x = &MemberExpr{Pos: t.Pos, X: x, Name: name}
			}
		default:
			return x
		}
	}
}

func (p *Parser) parsePrimary() Expr {
	t := p.cur()
	switch t.Kind {
	case IntLit:
		p.next()
		if strings.HasPrefix(t.Text, "0x") || strings.HasPrefix(t.Text, "0X") {
			n, err := strconv.ParseInt(t.Text[2:], 16, 64)
			if err != nil {
				p.errorf("bad hex literal %q", t.Text)
			}
			return &IntLitExpr{Pos: t.Pos, Text: strconv.FormatInt(n, 10)}
		}
		return &IntLitExpr{Pos: t.Pos, Text: t.Text}
	case FloatLit:
		p.next()
		return &FloatLitExpr{Pos: t.Pos, Text: t.Text}
	case BoolLit:
		p.next()
		return &BoolLitExpr{Pos: t.Pos, Value: t.Text == "true"}
	case Ident:
		// array<T, N>{...} braced constructor.
		if templatedType(t.Text) && p.peekTok(1).Kind == Punct && p.peekTok(1).Text == "<" {
			te := p.parseType()
			if te.Name != "array" {
				p.errorf("texture type %q cannot be constructed", te.Name)
				return &IdentExpr{Pos: t.Pos, Name: "_"}
			}
			p.expect(Punct, "{")
			lit := &ArrayLitExpr{Pos: t.Pos, Elem: te.Elem, Len: te.Len}
			for p.cur().Kind != EOF && !(p.cur().Kind == Punct && p.cur().Text == "}") {
				lit.Elems = append(lit.Elems, p.parseExpr())
				if !p.accept(Punct, ",") {
					break
				}
			}
			p.expect(Punct, "}")
			return lit
		}
		p.next()
		if p.cur().Kind == Punct && p.cur().Text == "(" {
			p.next()
			args := p.parseCallArgs()
			return &CallExpr{Pos: t.Pos, Callee: t.Text, Args: args}
		}
		return &IdentExpr{Pos: t.Pos, Name: t.Text}
	case Punct:
		if t.Text == "(" {
			p.next()
			x := p.parseExpr()
			p.expect(Punct, ")")
			return x
		}
	}
	p.errorf("unexpected token %q in expression", t.Text)
	return &IdentExpr{Pos: t.Pos, Name: "_"}
}

func (p *Parser) parseCallArgs() []Expr {
	var args []Expr
	for p.cur().Kind != EOF && !(p.cur().Kind == Punct && p.cur().Text == ")") {
		args = append(args, p.parseExpr())
		if !p.accept(Punct, ",") {
			break
		}
	}
	p.expect(Punct, ")")
	return args
}
