// Package telemetry is the pipeline's observability substrate: a
// dependency-free, concurrency-safe metrics registry (counters, gauges,
// and fixed-bucket duration histograms with mergeable snapshots) plus a
// span tracer that emits Chrome trace-event JSON (see trace.go). Every
// layer of the sweep pipeline — frontends, the enumeration trie, the
// session caches, the vendor driver compilers, and the measurement
// harness — records into one Registry threaded down from the Session, so
// a 256-combination sweep can say exactly where its time and cache
// traffic went.
//
// The package is built for zero-cost-when-disabled instrumentation: every
// method is safe on a nil receiver and does nothing, so call sites read
//
//	reg.Counter("cache.compile.hits").Inc()
//	span := reg.StartSpan("compile Intel", "gpu")
//	defer span.End()
//
// unconditionally, with a nil *Registry turning the whole line into a few
// predictable branches. Instrumentation never feeds back into results:
// metrics observe the pipeline, they do not steer it (a traced sweep's
// scores are pinned byte-identical to an untraced one).
package telemetry

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing event count. The zero value is
// ready to use; all methods are safe for concurrent use and on a nil
// receiver (no-ops, reading zero).
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by delta.
func (c *Counter) Add(delta int64) {
	if c != nil {
		c.v.Add(delta)
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (zero on a nil counter).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a last-write-wins instantaneous value (cache occupancy, pool
// size). The zero value is ready to use; all methods are safe for
// concurrent use and on a nil receiver.
type Gauge struct {
	v atomic.Int64
}

// Set records the current value.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Value returns the last recorded value (zero on a nil gauge).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// DefaultBuckets are the histogram bucket upper bounds used when none are
// given: exponential decades from 1µs to 10s, bracketing everything from
// a single driver compile to a full-corpus measurement pass.
func DefaultBuckets() []time.Duration {
	return []time.Duration{
		time.Microsecond, 10 * time.Microsecond, 100 * time.Microsecond,
		time.Millisecond, 10 * time.Millisecond, 100 * time.Millisecond,
		time.Second, 10 * time.Second,
	}
}

// Histogram is a fixed-bucket duration histogram: observations are
// counted into the first bucket whose upper bound is >= the value, with
// one implicit overflow bucket past the last bound. Count, sum, min, and
// max are tracked exactly. All methods are safe for concurrent use and on
// a nil receiver.
type Histogram struct {
	bounds []time.Duration // sorted ascending, immutable after creation
	counts []atomic.Int64  // len(bounds)+1; last is the overflow bucket
	count  atomic.Int64
	sum    atomic.Int64 // nanoseconds
	min    atomic.Int64 // valid when count > 0
	max    atomic.Int64
}

func newHistogram(bounds []time.Duration) *Histogram {
	if len(bounds) == 0 {
		bounds = DefaultBuckets()
	}
	bounds = append([]time.Duration(nil), bounds...)
	sort.Slice(bounds, func(i, j int) bool { return bounds[i] < bounds[j] })
	return &Histogram{bounds: bounds, counts: make([]atomic.Int64, len(bounds)+1)}
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	i := sort.Search(len(h.bounds), func(i int) bool { return h.bounds[i] >= d })
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sum.Add(int64(d))
	atomicMin(&h.min, int64(d))
	atomicMax(&h.max, int64(d))
}

// atomicMin lowers dst to v unless an observation at least as low is
// already recorded. The first observation always wins the CAS against the
// zero value via the count==0 convention handled in Observe's callers:
// min is only read when count > 0, and the race between the first two
// observations settles to the true minimum because both loop.
func atomicMin(dst *atomic.Int64, v int64) {
	for {
		cur := dst.Load()
		if cur != 0 && cur <= v {
			return
		}
		if dst.CompareAndSwap(cur, v) {
			return
		}
	}
}

// atomicMax raises dst to v; durations are non-negative, so the zero
// initial value is a valid floor.
func atomicMax(dst *atomic.Int64, v int64) {
	for {
		cur := dst.Load()
		if v <= cur {
			return
		}
		if dst.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Registry is a named collection of counters, gauges, and histograms,
// with an optionally attached span Tracer so one handle threads both
// metrics and tracing through the pipeline. Instruments are created on
// first use and shared by name. All methods are safe for concurrent use
// and on a nil receiver (returning nil instruments, whose methods no-op).
type Registry struct {
	mu     sync.Mutex
	ctrs   map[string]*Counter
	gauges map[string]*Gauge
	hists  map[string]*Histogram
	tracer atomic.Pointer[Tracer]
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		ctrs:   map[string]*Counter{},
		gauges: map[string]*Gauge{},
		hists:  map[string]*Histogram{},
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.ctrs[name]
	if !ok {
		c = &Counter{}
		r.ctrs[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given
// bucket upper bounds (DefaultBuckets when none) on first use. Later
// calls return the existing histogram regardless of bounds.
func (r *Registry) Histogram(name string, bounds ...time.Duration) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = newHistogram(bounds)
		r.hists[name] = h
	}
	return h
}

// SetTracer attaches (or, with nil, detaches) the span tracer StartSpan
// delegates to.
func (r *Registry) SetTracer(t *Tracer) {
	if r != nil {
		r.tracer.Store(t)
	}
}

// Tracer returns the attached span tracer, or nil.
func (r *Registry) Tracer() *Tracer {
	if r == nil {
		return nil
	}
	return r.tracer.Load()
}

// StartSpan opens a span on the attached tracer. With no tracer attached
// (or a nil registry) it returns a nil span whose methods no-op, so call
// sites need no conditional.
func (r *Registry) StartSpan(name, category string) *Span {
	return r.Tracer().Start(name, category)
}

// HistogramSnapshot is one histogram's state at snapshot time.
type HistogramSnapshot struct {
	// Bounds are the bucket upper bounds; Counts has one extra trailing
	// element, the overflow bucket.
	Bounds []time.Duration
	Counts []int64
	Count  int64
	Sum    time.Duration
	Min    time.Duration
	Max    time.Duration
}

// Mean returns the mean observed duration (zero when empty).
func (h HistogramSnapshot) Mean() time.Duration {
	if h.Count == 0 {
		return 0
	}
	return h.Sum / time.Duration(h.Count)
}

// Snapshot is a point-in-time copy of a registry, safe to read, merge,
// and render while the registry keeps counting. Snapshots from sharded or
// sequential runs merge with Merge.
type Snapshot struct {
	Counters   map[string]int64
	Gauges     map[string]int64
	Histograms map[string]HistogramSnapshot
}

// Snapshot copies the registry's current state. On a nil registry it
// returns an empty snapshot.
func (r *Registry) Snapshot() *Snapshot {
	s := &Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]int64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, c := range r.ctrs {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.hists {
		hs := HistogramSnapshot{
			Bounds: append([]time.Duration(nil), h.bounds...),
			Counts: make([]int64, len(h.counts)),
			Count:  h.count.Load(),
			Sum:    time.Duration(h.sum.Load()),
			Min:    time.Duration(h.min.Load()),
			Max:    time.Duration(h.max.Load()),
		}
		for i := range h.counts {
			hs.Counts[i] = h.counts[i].Load()
		}
		s.Histograms[name] = hs
	}
	return s
}

// Merge folds another snapshot into this one: counters and histogram
// buckets add (histograms must share bucket bounds; mismatched bounds
// keep the receiver's buckets and merge only the exact aggregates),
// gauges take the maximum (they are instantaneous values, and for the
// occupancy gauges the registry publishes, the high-water mark is the
// useful aggregate).
func (s *Snapshot) Merge(o *Snapshot) {
	if o == nil {
		return
	}
	for name, v := range o.Counters {
		s.Counters[name] += v
	}
	for name, v := range o.Gauges {
		if v > s.Gauges[name] {
			s.Gauges[name] = v
		}
	}
	for name, oh := range o.Histograms {
		sh, ok := s.Histograms[name]
		if !ok {
			s.Histograms[name] = cloneHistSnapshot(oh)
			continue
		}
		sh.Count += oh.Count
		sh.Sum += oh.Sum
		if oh.Count > 0 && (sh.Min == 0 || (oh.Min != 0 && oh.Min < sh.Min)) {
			sh.Min = oh.Min
		}
		if oh.Max > sh.Max {
			sh.Max = oh.Max
		}
		if len(sh.Bounds) == len(oh.Bounds) && boundsEqual(sh.Bounds, oh.Bounds) {
			for i := range sh.Counts {
				sh.Counts[i] += oh.Counts[i]
			}
		}
		s.Histograms[name] = sh
	}
}

func cloneHistSnapshot(h HistogramSnapshot) HistogramSnapshot {
	h.Bounds = append([]time.Duration(nil), h.Bounds...)
	h.Counts = append([]int64(nil), h.Counts...)
	return h
}

func boundsEqual(a, b []time.Duration) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Table renders the snapshot as an aligned, name-sorted text table — the
// -metrics output of cmd/sweep. Counters and gauges print their value;
// histograms print count, total, mean, min, and max. The rendering is a
// pure function of the snapshot, so goldens can pin it.
func (s *Snapshot) Table() string {
	type row struct{ name, kind, value string }
	var rows []row
	for name, v := range s.Counters {
		rows = append(rows, row{name, "counter", fmt.Sprintf("%d", v)})
	}
	for name, v := range s.Gauges {
		rows = append(rows, row{name, "gauge", fmt.Sprintf("%d", v)})
	}
	for name, h := range s.Histograms {
		rows = append(rows, row{name, "histogram", fmt.Sprintf(
			"count %d, total %s, mean %s, min %s, max %s",
			h.Count, fmtDur(h.Sum), fmtDur(h.Mean()), fmtDur(h.Min), fmtDur(h.Max))})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].name < rows[j].name })
	nameW, kindW := 0, 0
	for _, r := range rows {
		if len(r.name) > nameW {
			nameW = len(r.name)
		}
		if len(r.kind) > kindW {
			kindW = len(r.kind)
		}
	}
	var sb strings.Builder
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-*s  %-*s  %s\n", nameW, r.name, kindW, r.kind, r.value)
	}
	return sb.String()
}

// fmtDur renders a duration with millisecond-scale readability: exact Go
// formatting truncated to microsecond precision so tables stay narrow.
func fmtDur(d time.Duration) string {
	return d.Truncate(time.Microsecond).String()
}
