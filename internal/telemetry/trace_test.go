package telemetry

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

var update = flag.Bool("update", false, "rewrite golden files with current output")

// fakeClock advances a fixed step per reading, making every timestamp —
// and so the whole exported trace — deterministic.
func fakeClock(step time.Duration) func() time.Duration {
	var now time.Duration
	return func() time.Duration {
		now += step
		return now
	}
}

// TestGoldenTrace pins the Chrome trace-event export byte-for-byte: a
// fixed span scenario on a deterministic clock must serialize to
// testdata/trace.golden. Regenerate after an intentional format change
// with:
//
//	go test ./internal/telemetry -run TestGoldenTrace -update
func TestGoldenTrace(t *testing.T) {
	tr := NewTracerClock(fakeClock(100 * time.Microsecond))

	sweep := tr.Start("sweep blur/v9", "sweep").Arg("variants", 11)
	parse := tr.Start("parse glsl", "frontend").Arg("shader", "blur/v9")
	parse.End()
	enum := tr.Start("enumerate", "enum").Arg("workers", 4)
	enum.End()
	for _, vendor := range []string{"Intel", "ARM"} {
		c := tr.Start("compile "+vendor, "gpu")
		m := tr.Start("measure "+vendor, "harness").Arg("batch", 12)
		c.End()
		m.End()
	}
	sweep.End()

	var sb []byte
	{
		var buf bytesBuffer
		if err := tr.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		sb = buf.b
	}

	// The export must be valid JSON that Perfetto's loader accepts:
	// a traceEvents array of complete events.
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(sb, &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) != 7 {
		t.Fatalf("trace has %d events, want 7", len(doc.TraceEvents))
	}
	for _, ev := range doc.TraceEvents {
		if ev["ph"] != "X" || ev["name"] == "" {
			t.Errorf("malformed event: %v", ev)
		}
	}

	path := filepath.Join("testdata", "trace.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, sb, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden %s (run with -update to create): %v", path, err)
	}
	if string(sb) != string(want) {
		t.Errorf("trace differs from golden; rerun with -update after reviewing.\n--- got ---\n%s\n--- want ---\n%s", sb, want)
	}
}

type bytesBuffer struct{ b []byte }

func (w *bytesBuffer) Write(p []byte) (int, error) {
	w.b = append(w.b, p...)
	return len(p), nil
}

// TestTracerTracks pins the track-allocation rule: overlapping spans get
// distinct tids, and a track is reusable once its span ends.
func TestTracerTracks(t *testing.T) {
	tr := NewTracerClock(fakeClock(time.Microsecond))
	a := tr.Start("a", "t")
	b := tr.Start("b", "t") // overlaps a -> new track
	a.End()
	c := tr.Start("c", "t") // a's track is free again
	b.End()
	c.End()

	tids := map[string]int{}
	for _, ev := range tr.events {
		tids[ev.Name] = ev.TID
	}
	if tids["a"] == tids["b"] {
		t.Errorf("overlapping spans share track %d", tids["a"])
	}
	if tids["c"] != tids["a"] {
		t.Errorf("freed track not reused: a=%d c=%d", tids["a"], tids["c"])
	}
}

// TestTracerConcurrent hammers the tracer from many goroutines under
// -race; every span must land exactly once with a unique id.
func TestTracerConcurrent(t *testing.T) {
	tr := NewTracer()
	const workers = 8
	const perWorker = 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				s := tr.Start("work", "t").Arg("i", i)
				s.End()
				s.End() // double End must be safe
			}
		}()
	}
	wg.Wait()
	if len(tr.events) != workers*perWorker {
		t.Fatalf("%d events, want %d", len(tr.events), workers*perWorker)
	}
	seen := map[int64]bool{}
	for _, ev := range tr.events {
		if seen[ev.ID] {
			t.Fatalf("duplicate span id %d", ev.ID)
		}
		seen[ev.ID] = true
	}
}
