package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"
)

// Tracer records spans and exports them as Chrome trace-event JSON — the
// format chrome://tracing and Perfetto load directly — so a sweep's
// parse, enumeration, compile, and measurement phases are browsable on a
// timeline. Span ids are deterministic (sequential in start order) and
// the clock is injected, so tests can pin golden traces byte-for-byte;
// the default clock is the process monotonic clock. All methods are safe
// for concurrent use and on a nil receiver (no-ops), so a nil *Tracer is
// the disabled state.
//
// Concurrent spans are laid out on tracks: each span takes the lowest
// free track id for its lifetime, so overlapping spans never share a
// Perfetto row and a single-threaded run uses exactly one row.
type Tracer struct {
	mu     sync.Mutex
	clock  func() time.Duration
	events []traceEvent
	tracks []bool // tracks[i]: track i occupied by an open span
	nextID int64
}

// traceEvent is one completed span in Chrome trace-event form ("ph":"X",
// a complete event with timestamp and duration in microseconds).
type traceEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`
	Dur  float64        `json:"dur"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	ID   int64          `json:"id"`
	Args map[string]any `json:"args,omitempty"`
}

// NewTracer creates a tracer on the process monotonic clock.
func NewTracer() *Tracer {
	start := time.Now()
	return NewTracerClock(func() time.Duration { return time.Since(start) })
}

// NewTracerClock creates a tracer on an injected monotonic clock: clock()
// must be non-decreasing and is read under the tracer's lock, so a test
// clock that advances a fixed step per call yields a fully deterministic
// trace.
func NewTracerClock(clock func() time.Duration) *Tracer {
	return &Tracer{clock: clock}
}

// Span is one open interval on the trace timeline. End completes it;
// Arg attaches a key/value to the completed event. A nil span (from a
// nil tracer or registry) no-ops.
type Span struct {
	mu    sync.Mutex
	t     *Tracer
	id    int64
	name  string
	cat   string
	start time.Duration
	tid   int
	args  map[string]any
}

// Start opens a span. name is the timeline label (e.g. "compile Intel"),
// cat the Chrome trace category used for filtering (e.g. "gpu").
func (t *Tracer) Start(name, cat string) *Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	id := t.nextID
	t.nextID++
	tid := 0
	for tid < len(t.tracks) && t.tracks[tid] {
		tid++
	}
	if tid == len(t.tracks) {
		t.tracks = append(t.tracks, false)
	}
	t.tracks[tid] = true
	start := t.clock()
	t.mu.Unlock()
	return &Span{t: t, id: id, name: name, cat: cat, start: start, tid: tid}
}

// Arg attaches a key/value pair to the span's trace event (shown in the
// Perfetto details pane). It returns the span for chaining and no-ops
// after End.
func (s *Span) Arg(key string, value any) *Span {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.t == nil {
		return s
	}
	if s.args == nil {
		s.args = map[string]any{}
	}
	s.args[key] = value
	return s
}

// End completes the span and records its trace event. Multiple End calls
// are safe; only the first records.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	t := s.t
	s.t = nil
	s.mu.Unlock()
	if t == nil {
		return
	}
	t.mu.Lock()
	end := t.clock()
	t.events = append(t.events, traceEvent{
		Name: s.name,
		Cat:  s.cat,
		Ph:   "X",
		TS:   micros(s.start),
		Dur:  micros(end - s.start),
		PID:  1,
		TID:  s.tid + 1,
		ID:   s.id,
		Args: s.args,
	})
	t.tracks[s.tid] = false
	t.mu.Unlock()
}

func micros(d time.Duration) float64 {
	return float64(d.Nanoseconds()) / 1e3
}

// WriteJSON writes the completed spans as a Chrome trace-event JSON
// object, one event per line, ordered by (timestamp, id) so the output
// is deterministic for a deterministic clock. Open spans are not
// written. Map-valued args marshal with sorted keys (encoding/json), so
// the whole document is byte-stable.
func (t *Tracer) WriteJSON(w io.Writer) error {
	if t == nil {
		_, err := io.WriteString(w, `{"traceEvents":[]}`+"\n")
		return err
	}
	t.mu.Lock()
	events := append([]traceEvent(nil), t.events...)
	t.mu.Unlock()
	sort.SliceStable(events, func(i, j int) bool {
		if events[i].TS != events[j].TS {
			return events[i].TS < events[j].TS
		}
		return events[i].ID < events[j].ID
	})
	if _, err := io.WriteString(w, "{\"traceEvents\":[\n"); err != nil {
		return err
	}
	for i, ev := range events {
		b, err := json.Marshal(ev)
		if err != nil {
			return err
		}
		sep := ",\n"
		if i == len(events)-1 {
			sep = "\n"
		}
		if _, err := fmt.Fprintf(w, "%s%s", b, sep); err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, "],\"displayTimeUnit\":\"ms\"}\n")
	return err
}
