package telemetry

import (
	"strings"
	"sync"
	"testing"
	"time"
)

// TestRegistryConcurrentHammer drives counters, gauges, and histograms
// from a worker pool the way a sweep's shader fan-out does, and checks
// the totals are exact. Run under -race in CI, this is the
// concurrency-safety pin for the whole registry.
func TestRegistryConcurrentHammer(t *testing.T) {
	reg := NewRegistry()
	const workers = 16
	const perWorker = 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				reg.Counter("hammer.count").Inc()
				reg.Counter("hammer.bulk").Add(3)
				reg.Gauge("hammer.gauge").Set(int64(w))
				reg.Histogram("hammer.hist").Observe(time.Duration(i%7) * time.Millisecond)
			}
		}(w)
	}
	wg.Wait()

	if got := reg.Counter("hammer.count").Value(); got != workers*perWorker {
		t.Errorf("counter = %d, want %d", got, workers*perWorker)
	}
	if got := reg.Counter("hammer.bulk").Value(); got != 3*workers*perWorker {
		t.Errorf("bulk counter = %d, want %d", got, 3*workers*perWorker)
	}
	snap := reg.Snapshot()
	h := snap.Histograms["hammer.hist"]
	if h.Count != workers*perWorker {
		t.Errorf("histogram count = %d, want %d", h.Count, workers*perWorker)
	}
	var bucketSum int64
	for _, c := range h.Counts {
		bucketSum += c
	}
	if bucketSum != h.Count {
		t.Errorf("bucket sum %d != count %d", bucketSum, h.Count)
	}
	if h.Max != 6*time.Millisecond {
		t.Errorf("max = %v, want 6ms", h.Max)
	}
	if g := snap.Gauges["hammer.gauge"]; g < 0 || g >= workers {
		t.Errorf("gauge = %d, want one of the worker ids", g)
	}
}

// TestNilSafety pins the disabled state: every method on a nil registry,
// nil instruments, nil tracer, and nil span must be a no-op, because
// uninstrumented call sites rely on it.
func TestNilSafety(t *testing.T) {
	var reg *Registry
	reg.Counter("x").Inc()
	reg.Gauge("x").Set(5)
	reg.Histogram("x").Observe(time.Second)
	if v := reg.Counter("x").Value(); v != 0 {
		t.Errorf("nil counter = %d", v)
	}
	span := reg.StartSpan("nope", "test")
	span.Arg("k", "v")
	span.End()
	if snap := reg.Snapshot(); len(snap.Counters) != 0 {
		t.Errorf("nil registry snapshot not empty: %+v", snap)
	}
	var tr *Tracer
	s := tr.Start("nope", "test")
	s.End()
	var sb strings.Builder
	if err := tr.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `"traceEvents":[]`) {
		t.Errorf("nil tracer JSON = %q", sb.String())
	}
}

// TestHistogramBuckets pins the bucketing rule: an observation lands in
// the first bucket whose bound is >= the value, with one overflow bucket.
func TestHistogramBuckets(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("b", time.Millisecond, 10*time.Millisecond)
	h.Observe(time.Millisecond)      // first bucket (inclusive bound)
	h.Observe(2 * time.Millisecond)  // second bucket
	h.Observe(20 * time.Millisecond) // overflow
	hs := reg.Snapshot().Histograms["b"]
	want := []int64{1, 1, 1}
	if len(hs.Counts) != 3 {
		t.Fatalf("counts = %v, want 3 buckets", hs.Counts)
	}
	for i, w := range want {
		if hs.Counts[i] != w {
			t.Errorf("bucket %d = %d, want %d", i, hs.Counts[i], w)
		}
	}
	if hs.Min != time.Millisecond || hs.Max != 20*time.Millisecond {
		t.Errorf("min/max = %v/%v", hs.Min, hs.Max)
	}
	if hs.Mean() != (23*time.Millisecond)/3 {
		t.Errorf("mean = %v", hs.Mean())
	}
}

// TestSnapshotMerge pins the merge semantics sharded runs rely on:
// counters and matching-bounds histograms add, gauges take the maximum.
func TestSnapshotMerge(t *testing.T) {
	a := NewRegistry()
	a.Counter("c").Add(2)
	a.Gauge("g").Set(5)
	a.Histogram("h", time.Millisecond).Observe(time.Millisecond)
	b := NewRegistry()
	b.Counter("c").Add(3)
	b.Counter("only_b").Add(1)
	b.Gauge("g").Set(3)
	b.Histogram("h", time.Millisecond).Observe(4 * time.Millisecond)

	snap := a.Snapshot()
	snap.Merge(b.Snapshot())
	if snap.Counters["c"] != 5 || snap.Counters["only_b"] != 1 {
		t.Errorf("counters = %+v", snap.Counters)
	}
	if snap.Gauges["g"] != 5 {
		t.Errorf("gauge = %d, want max 5", snap.Gauges["g"])
	}
	h := snap.Histograms["h"]
	if h.Count != 2 || h.Sum != 5*time.Millisecond {
		t.Errorf("histogram = %+v", h)
	}
	if h.Min != time.Millisecond || h.Max != 4*time.Millisecond {
		t.Errorf("min/max = %v/%v", h.Min, h.Max)
	}
	if h.Counts[0] != 1 || h.Counts[1] != 1 {
		t.Errorf("bucket counts = %v", h.Counts)
	}
}

// TestSnapshotTable pins the -metrics rendering shape: sorted by name,
// aligned, one line per instrument.
func TestSnapshotTable(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("b.counter").Add(7)
	reg.Gauge("a.gauge").Set(42)
	reg.Histogram("c.hist", time.Millisecond).Observe(500 * time.Microsecond)
	table := reg.Snapshot().Table()
	lines := strings.Split(strings.TrimRight(table, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("table has %d lines:\n%s", len(lines), table)
	}
	if !strings.HasPrefix(lines[0], "a.gauge") || !strings.HasPrefix(lines[1], "b.counter") || !strings.HasPrefix(lines[2], "c.hist") {
		t.Errorf("table not name-sorted:\n%s", table)
	}
	if !strings.Contains(lines[1], "7") || !strings.Contains(lines[2], "count 1") {
		t.Errorf("table values wrong:\n%s", table)
	}
}
