package ir

import (
	"strings"
	"testing"

	"shaderopt/internal/sem"
)

// buildAlphaProg constructs one fixed program structure — uniforms,
// inputs, a local, an output, a loop, an if, and a store — with every
// identifier drawn from names and with idGap extra discarded instruction
// IDs allocated up front, so two calls differing only in names/idGap are
// alpha-equivalent but print differently under the name-sensitive Print.
func buildAlphaProg(names map[string]string, idGap int) *Program {
	p := NewProgram(names["prog"])
	for i := 0; i < idGap; i++ {
		p.NewInstr(OpConst, sem.Float) // burn IDs; never inserted
	}
	scale := p.AddUniform(names["scale"], sem.Float)
	uv := p.AddInput(names["uv"], sem.Vec2)
	acc := p.AddVar(names["acc"], sem.Float)
	out := p.AddOutput(names["out"], sem.Vec4)

	zero := p.NewInstr(OpConst, sem.Float)
	zero.Const = FloatConst(0)
	init := p.NewInstr(OpStore, sem.Float, zero)
	init.Var = acc

	start := p.NewInstr(OpConst, sem.Int)
	start.Const = IntConst(0)
	end := p.NewInstr(OpConst, sem.Int)
	end.Const = IntConst(4)
	step := p.NewInstr(OpConst, sem.Int)
	step.Const = IntConst(1)

	counter := &Var{Name: names["i"], Type: sem.Int}
	ld := p.NewInstr(OpLoad, sem.Float)
	ld.Var = acc
	s := p.NewInstr(OpUniform, sem.Float)
	s.Global = scale
	sum := p.NewInstr(OpBin, sem.Float, ld, s)
	sum.BinOp = "+"
	wr := p.NewInstr(OpStore, sem.Float, sum)
	wr.Var = acc
	body := &Block{}
	body.Append(ld, s, sum, wr)

	loop := &Loop{Counter: counter, Start: start, End: end, Step: step, Body: body}

	in := p.NewInstr(OpInput, sem.Vec2)
	in.Global = uv
	x := p.NewInstr(OpExtract, sem.Float, in)
	cond := p.NewInstr(OpBin, sem.Bool, x, zero)
	cond.BinOp = ">"
	final := p.NewInstr(OpLoad, sem.Float)
	final.Var = acc
	v4 := p.NewInstr(OpConstruct, sem.Vec4, final, final, final, final)
	emit := p.NewInstr(OpStore, sem.Vec4, v4)
	emit.Var = out
	then := &Block{}
	then.Append(final, v4, emit)

	p.Body.Append(zero, init, start, end, step, loop, in, x, cond,
		&If{Cond: cond, Then: then})
	return p
}

func alphaText(p *Program) string {
	var sb strings.Builder
	p.PrintAlpha(&sb)
	return sb.String()
}

func TestPrintAlphaCollapsesRenamings(t *testing.T) {
	a := buildAlphaProg(map[string]string{
		"prog": "main", "scale": "u_scale", "uv": "v_uv",
		"acc": "acc", "out": "fragColor", "i": "i",
	}, 0)
	b := buildAlphaProg(map[string]string{
		"prog": "ps_main", "scale": "intensity", "uv": "texcoord0",
		"acc": "total_h", "out": "out_color", "i": "loop_idx",
	}, 7)

	if a.String() == b.String() {
		t.Fatal("renamed programs print identically under the name-sensitive Print; test is vacuous")
	}
	if got, want := alphaText(a), alphaText(b); got != want {
		t.Fatalf("alpha-equivalent programs diverge under PrintAlpha:\n--- a ---\n%s--- b ---\n%s", got, want)
	}
}

func TestPrintAlphaSeparatesStructure(t *testing.T) {
	names := map[string]string{
		"prog": "main", "scale": "u_scale", "uv": "v_uv",
		"acc": "acc", "out": "fragColor", "i": "i",
	}
	base := buildAlphaProg(names, 0)

	// Changing an operator is a structural difference and must change
	// the alpha print even though no name differs.
	mut := buildAlphaProg(names, 0)
	mut.Body.WalkInstrs(func(in *Instr) {
		if in.Op == OpBin && in.BinOp == "+" {
			in.BinOp = "*"
		}
	})
	if alphaText(base) == alphaText(mut) {
		t.Fatal("PrintAlpha ignored a BinOp change")
	}

	// So must swapping declaration order of two same-typed uniforms.
	two := NewProgram("p")
	ua := two.AddUniform("a", sem.Float)
	ub := two.AddUniform("b", sem.Float)
	la := two.NewInstr(OpUniform, sem.Float)
	la.Global = ua
	lb := two.NewInstr(OpUniform, sem.Float)
	lb.Global = ub
	d := two.NewInstr(OpBin, sem.Float, la, lb)
	d.BinOp = "-"
	two.Body.Append(la, lb, d)

	swapped := NewProgram("p")
	sb2 := swapped.AddUniform("b", sem.Float)
	sa := swapped.AddUniform("a", sem.Float)
	l2a := swapped.NewInstr(OpUniform, sem.Float)
	l2a.Global = sa
	l2b := swapped.NewInstr(OpUniform, sem.Float)
	l2b.Global = sb2
	d2 := swapped.NewInstr(OpBin, sem.Float, l2a, l2b)
	d2.BinOp = "-"
	swapped.Body.Append(l2a, l2b, d2)

	if alphaText(two) == alphaText(swapped) {
		t.Fatal("PrintAlpha ignored uniform declaration-order difference")
	}
}

// TestPrintAlphaMirrorsPrintShape pins that PrintAlpha stays structurally
// in lockstep with Print: modulo identifier tokens and ID numbering, the
// two renderings of one program must have the same line count and the
// same leading keyword on every line. A new construct added to Print but
// forgotten in PrintAlpha fails here.
func TestPrintAlphaMirrorsPrintShape(t *testing.T) {
	p := buildAlphaProg(map[string]string{
		"prog": "main", "scale": "u_scale", "uv": "v_uv",
		"acc": "acc", "out": "fragColor", "i": "i",
	}, 0)
	plain := strings.Split(strings.TrimRight(p.String(), "\n"), "\n")
	alpha := strings.Split(strings.TrimRight(alphaText(p), "\n"), "\n")
	if len(plain) != len(alpha) {
		t.Fatalf("line counts diverge: Print %d, PrintAlpha %d", len(plain), len(alpha))
	}
	shape := func(line string) string {
		trimmed := strings.TrimLeft(line, " ")
		indent := len(line) - len(trimmed)
		word, _, _ := strings.Cut(trimmed, " ")
		if i := strings.IndexByte(word, '%'); i >= 0 {
			word = "%"
		}
		return strings.Repeat(" ", indent) + word
	}
	for i := range plain {
		if shape(plain[i]) != shape(alpha[i]) {
			t.Fatalf("line %d shape diverges:\n  print: %q\n  alpha: %q", i, plain[i], alpha[i])
		}
	}
}
