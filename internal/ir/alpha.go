package ir

import (
	"fmt"
	"io"
	"strconv"
	"strings"
)

// PrintAlpha writes the program as alpha-renamed canonical text IR: the
// same structure Print emits, with every name-bearing element replaced
// by a canonical token — the program name by "@", uniforms by u0, u1, …
// and inputs by i0, i1, … in declaration order, variable slots by v0,
// v1, … (declaration order, then first appearance for synthesized slots
// such as loop counters), and instruction IDs renumbered densely in
// print order. Two programs that differ only in identifier spelling or
// in ID numbering therefore print identically, while any structural
// difference — opcode, type, argument wiring, region shape, declaration
// order — still changes the output.
//
// This is the name-insensitive program identity behind
// core.FingerprintCanonical: driver compiles and cost models are pure
// functions of program structure (isa.Analyze never reads a name), so
// alpha-equivalent programs may share one compiled artefact — which is
// what lets structurally identical shaders arriving from different
// frontends share persistent store entries. It is NOT the identity the
// variant-enumeration trie merges by: enumeration must key generated
// *text*, where spelling matters, so it stays on the name-sensitive
// print (see core.FingerprintIR).
func (p *Program) PrintAlpha(w io.Writer) {
	a := &alphaPrinter{
		w:       w,
		globals: make(map[*Global]string, len(p.Uniforms)+len(p.Inputs)),
		vars:    make(map[*Var]string, len(p.Vars)),
		ids:     make(map[*Instr]int),
	}
	io.WriteString(w, "program @\n")
	for i, g := range p.Uniforms {
		a.globals[g] = "u" + strconv.Itoa(i)
		fmt.Fprintf(w, "  uniform %s u%d\n", g.Type, i)
	}
	for i, g := range p.Inputs {
		a.globals[g] = "i" + strconv.Itoa(i)
		fmt.Fprintf(w, "  input %s i%d\n", g.Type, i)
	}
	for _, v := range p.Vars {
		kind := "var"
		if v.IsOutput {
			kind = "output"
		}
		fmt.Fprintf(w, "  %s %s %s\n", kind, v.Type, a.varName(v))
	}
	a.block(p.Body, 1)
}

// alphaPrinter carries the canonical renaming state of one PrintAlpha
// run: the maps are filled in deterministic declaration/print order, so
// the output is a pure function of program structure.
type alphaPrinter struct {
	w       io.Writer
	globals map[*Global]string
	vars    map[*Var]string
	nextVar int
	ids     map[*Instr]int
	nextID  int
}

// varName returns the slot's canonical token, assigning the next one on
// first sight (loop counters introduced by passes may not be in
// p.Vars; they are named at first appearance, which is deterministic).
func (a *alphaPrinter) varName(v *Var) string {
	if n, ok := a.vars[v]; ok {
		return n
	}
	n := "v" + strconv.Itoa(a.nextVar)
	a.nextVar++
	a.vars[v] = n
	return n
}

// id returns the instruction's dense print-order ID, assigning at the
// definition site. A reference that somehow precedes its definition
// still gets a deterministic number (assignment order is print order).
func (a *alphaPrinter) id(in *Instr) int {
	if n, ok := a.ids[in]; ok {
		return n
	}
	n := a.nextID
	a.nextID++
	a.ids[in] = n
	return n
}

func (a *alphaPrinter) block(b *Block, depth int) {
	ind := strings.Repeat("  ", depth)
	for _, it := range b.Items {
		switch it := it.(type) {
		case *Instr:
			io.WriteString(a.w, ind)
			a.instr(it)
			io.WriteString(a.w, "\n")
		case *If:
			fmt.Fprintf(a.w, "%sif %%%d {\n", ind, a.id(it.Cond))
			a.block(it.Then, depth+1)
			if it.Else != nil && len(it.Else.Items) > 0 {
				fmt.Fprintf(a.w, "%s} else {\n", ind)
				a.block(it.Else, depth+1)
			}
			fmt.Fprintf(a.w, "%s}\n", ind)
		case *Loop:
			fmt.Fprintf(a.w, "%sloop %s = %%%d; < %%%d; += %%%d {\n", ind,
				a.varName(it.Counter), a.id(it.Start), a.id(it.End), a.id(it.Step))
			a.block(it.Body, depth+1)
			fmt.Fprintf(a.w, "%s}\n", ind)
		case *While:
			fmt.Fprintf(a.w, "%swhile {\n", ind)
			a.block(it.Cond, depth+1)
			fmt.Fprintf(a.w, "%s} %%%d {\n", ind, a.id(it.CondVal))
			a.block(it.Body, depth+1)
			fmt.Fprintf(a.w, "%s}\n", ind)
		}
	}
}

// instr mirrors Instr.print with canonical tokens substituted for every
// name and ID.
func (a *alphaPrinter) instr(in *Instr) {
	if in.HasResult() {
		fmt.Fprintf(a.w, "%%%d:%s = ", a.id(in), in.Type)
	}
	writeArgs := func() {
		for i, arg := range in.Args {
			if i > 0 {
				io.WriteString(a.w, ", ")
			}
			io.WriteString(a.w, "%")
			io.WriteString(a.w, strconv.Itoa(a.id(arg)))
		}
	}
	switch in.Op {
	case OpConst:
		io.WriteString(a.w, "const ")
		in.Const.print(a.w)
	case OpUniform:
		io.WriteString(a.w, "uniform ")
		io.WriteString(a.w, a.globals[in.Global])
	case OpInput:
		io.WriteString(a.w, "input ")
		io.WriteString(a.w, a.globals[in.Global])
	case OpBin:
		fmt.Fprintf(a.w, "bin %q ", in.BinOp)
		writeArgs()
	case OpUn:
		fmt.Fprintf(a.w, "un %q ", in.UnOp)
		writeArgs()
	case OpCall:
		fmt.Fprintf(a.w, "call %s(", in.Callee)
		writeArgs()
		io.WriteString(a.w, ")")
	case OpConstruct:
		fmt.Fprintf(a.w, "construct %s(", in.Type)
		writeArgs()
		io.WriteString(a.w, ")")
	case OpExtract:
		io.WriteString(a.w, "extract ")
		writeArgs()
		fmt.Fprintf(a.w, "[%d]", in.Index)
	case OpExtractDyn:
		io.WriteString(a.w, "extractdyn ")
		writeArgs()
	case OpSwizzle:
		io.WriteString(a.w, "swizzle ")
		writeArgs()
		fmt.Fprintf(a.w, "%v", in.Indices)
	case OpInsert:
		io.WriteString(a.w, "insert ")
		writeArgs()
		fmt.Fprintf(a.w, " at %d", in.Index)
	case OpInsertDyn:
		io.WriteString(a.w, "insertdyn ")
		writeArgs()
	case OpSelect:
		io.WriteString(a.w, "select ")
		writeArgs()
	case OpLoad:
		io.WriteString(a.w, "load ")
		io.WriteString(a.w, a.varName(in.Var))
	case OpStore:
		fmt.Fprintf(a.w, "store %s <- ", a.varName(in.Var))
		writeArgs()
	case OpDiscard:
		io.WriteString(a.w, "discard")
	default:
		io.WriteString(a.w, in.Op.String())
		io.WriteString(a.w, " ")
		writeArgs()
	}
}
