package ir

// Clone deep-copies the whole program. Interface globals and Var slots are
// shared (they are identity-keyed and never mutated by passes; passes only
// add new ones), while every instruction and block is duplicated, so the
// clone can be optimized independently of the original.
func (p *Program) Clone() *Program {
	np := &Program{
		Name:     p.Name,
		Version:  p.Version,
		Uniforms: append([]*Global(nil), p.Uniforms...),
		Inputs:   append([]*Global(nil), p.Inputs...),
		Outputs:  append([]*Var(nil), p.Outputs...),
		Vars:     append([]*Var(nil), p.Vars...),
		nextID:   p.nextID,
	}
	np.Body = np.CloneBlock(p.Body, map[*Instr]*Instr{}, map[*Var]*Var{})
	np.RenumberIDs()
	return np
}

// CloneBlock deep-copies a block tree. Instructions defined inside the
// block are duplicated with fresh IDs; operand references to instructions
// defined outside the block (per the subst map) are preserved, and the
// subst map can pre-seed replacements (unrolling substitutes the loop
// counter's loads this way, by mapping the counter Var in varSubst).
//
// subst maps original instruction -> replacement for instructions defined
// outside the cloned region. varSubst maps Vars to replacement Vars (nil
// entries keep the original).
func (p *Program) CloneBlock(b *Block, subst map[*Instr]*Instr, varSubst map[*Var]*Var) *Block {
	c := &cloner{p: p, subst: subst, varSubst: varSubst}
	return c.block(b)
}

type cloner struct {
	p        *Program
	subst    map[*Instr]*Instr
	varSubst map[*Var]*Var
}

func (c *cloner) resolve(in *Instr) *Instr {
	if r, ok := c.subst[in]; ok {
		return r
	}
	return in
}

func (c *cloner) variable(v *Var) *Var {
	if r, ok := c.varSubst[v]; ok && r != nil {
		return r
	}
	return v
}

func (c *cloner) block(b *Block) *Block {
	out := &Block{Items: make([]Item, 0, len(b.Items))}
	for _, it := range b.Items {
		switch it := it.(type) {
		case *Instr:
			ni := c.instr(it)
			out.Items = append(out.Items, ni)
		case *If:
			ni := &If{Cond: c.resolve(it.Cond), Then: c.block(it.Then)}
			if it.Else != nil {
				ni.Else = c.block(it.Else)
			}
			out.Items = append(out.Items, ni)
		case *Loop:
			ni := &Loop{
				Counter: c.variable(it.Counter),
				Start:   c.resolve(it.Start),
				End:     c.resolve(it.End),
				Step:    c.resolve(it.Step),
				Body:    c.block(it.Body),
			}
			out.Items = append(out.Items, ni)
		case *While:
			cond := c.block(it.Cond)
			ni := &While{
				Cond:    cond,
				CondVal: c.resolve(it.CondVal),
				Body:    c.block(it.Body),
				MaxIter: it.MaxIter,
			}
			out.Items = append(out.Items, ni)
		}
	}
	return out
}

func (c *cloner) instr(in *Instr) *Instr {
	ni := c.p.NewInstr(in.Op, in.Type)
	ni.BinOp = in.BinOp
	ni.UnOp = in.UnOp
	ni.Callee = in.Callee
	ni.Index = in.Index
	ni.Indices = append([]int(nil), in.Indices...)
	if in.Var != nil {
		ni.Var = c.variable(in.Var)
	}
	ni.Global = in.Global
	if in.Const != nil {
		ni.Const = in.Const.Clone()
	}
	ni.Args = make([]*Instr, len(in.Args))
	for i, a := range in.Args {
		ni.Args[i] = c.resolve(a)
	}
	c.subst[in] = ni
	return ni
}
