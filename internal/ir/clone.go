package ir

// Clone deep-copies the whole program. Interface globals and Var slots are
// shared (they are identity-keyed and never mutated by passes; passes only
// add new ones), while every instruction and block is duplicated, so the
// clone can be optimized independently of the original.
func (p *Program) Clone() *Program {
	np := &Program{
		Name:     p.Name,
		Version:  p.Version,
		Uniforms: append([]*Global(nil), p.Uniforms...),
		Inputs:   append([]*Global(nil), p.Inputs...),
		Outputs:  append([]*Var(nil), p.Outputs...),
		Vars:     append([]*Var(nil), p.Vars...),
		nextID:   p.nextID,
	}
	np.Body = np.CloneBlock(p.Body, map[*Instr]*Instr{}, map[*Var]*Var{})
	np.RenumberIDs()
	return np
}

// CloneBlock deep-copies a block tree. Instructions defined inside the
// block are duplicated with fresh IDs; operand references to instructions
// defined outside the block (per the subst map) are preserved, and the
// subst map can pre-seed replacements (unrolling substitutes the loop
// counter's loads this way, by mapping the counter Var in varSubst).
//
// subst maps original instruction -> replacement for instructions defined
// outside the cloned region. varSubst maps Vars to replacement Vars (nil
// entries keep the original).
func (p *Program) CloneBlock(b *Block, subst map[*Instr]*Instr, varSubst map[*Var]*Var) *Block {
	c := &cloner{p: p, subst: subst, varSubst: varSubst}
	return c.block(b)
}

// CloneRemapped deep-copies the program while substituting every Global
// and Var reference through the given maps: the declaration lists and
// every instruction operand are rewritten to the mapped slots, and IDs
// are renumbered densely in program order. It exists for cross-shader
// trie transport: when two alpha-equivalent programs differ only in
// interface spellings, a transform result computed for one becomes the
// result for the other by mapping each slot positionally onto the
// other's. The substitution is strict — a Global or Var the program
// declares or references that is absent from its map (e.g. one a pass
// synthesized after the maps were built) fails the clone, returning
// (nil, false) so the caller recomputes instead of transporting a
// wrongly-named slot. Name and Version still carry the receiver's
// values; the caller overwrites them with the adopting program's.
func (p *Program) CloneRemapped(globals map[*Global]*Global, vars map[*Var]*Var) (*Program, bool) {
	np := &Program{Name: p.Name, Version: p.Version}
	c := &cloner{p: np, subst: map[*Instr]*Instr{}, varSubst: vars, globalSubst: globals, strict: true}
	np.Uniforms = make([]*Global, len(p.Uniforms))
	for i, g := range p.Uniforms {
		np.Uniforms[i] = c.globalRef(g)
	}
	np.Inputs = make([]*Global, len(p.Inputs))
	for i, g := range p.Inputs {
		np.Inputs[i] = c.globalRef(g)
	}
	np.Vars = make([]*Var, len(p.Vars))
	for i, v := range p.Vars {
		np.Vars[i] = c.variable(v)
	}
	np.Outputs = make([]*Var, len(p.Outputs))
	for i, v := range p.Outputs {
		np.Outputs[i] = c.variable(v)
	}
	np.Body = c.block(p.Body)
	if c.failed {
		return nil, false
	}
	np.RenumberIDs()
	return np, true
}

type cloner struct {
	p        *Program
	subst    map[*Instr]*Instr
	varSubst map[*Var]*Var

	// globalSubst, strict, and failed serve CloneRemapped: globalSubst
	// rewrites interface-global references the way varSubst rewrites
	// Vars, and strict turns any unmapped Global or Var into a recorded
	// failure instead of a silent pass-through.
	globalSubst map[*Global]*Global
	strict      bool
	failed      bool
}

func (c *cloner) resolve(in *Instr) *Instr {
	if r, ok := c.subst[in]; ok {
		return r
	}
	return in
}

func (c *cloner) variable(v *Var) *Var {
	if r, ok := c.varSubst[v]; ok && r != nil {
		return r
	}
	if c.strict {
		c.failed = true
	}
	return v
}

func (c *cloner) globalRef(g *Global) *Global {
	if g == nil || c.globalSubst == nil {
		return g
	}
	if r, ok := c.globalSubst[g]; ok && r != nil {
		return r
	}
	if c.strict {
		c.failed = true
	}
	return g
}

func (c *cloner) block(b *Block) *Block {
	out := &Block{Items: make([]Item, 0, len(b.Items))}
	for _, it := range b.Items {
		switch it := it.(type) {
		case *Instr:
			ni := c.instr(it)
			out.Items = append(out.Items, ni)
		case *If:
			ni := &If{Cond: c.resolve(it.Cond), Then: c.block(it.Then)}
			if it.Else != nil {
				ni.Else = c.block(it.Else)
			}
			out.Items = append(out.Items, ni)
		case *Loop:
			ni := &Loop{
				Counter: c.variable(it.Counter),
				Start:   c.resolve(it.Start),
				End:     c.resolve(it.End),
				Step:    c.resolve(it.Step),
				Body:    c.block(it.Body),
			}
			out.Items = append(out.Items, ni)
		case *While:
			cond := c.block(it.Cond)
			ni := &While{
				Cond:    cond,
				CondVal: c.resolve(it.CondVal),
				Body:    c.block(it.Body),
				MaxIter: it.MaxIter,
			}
			out.Items = append(out.Items, ni)
		}
	}
	return out
}

func (c *cloner) instr(in *Instr) *Instr {
	ni := c.p.NewInstr(in.Op, in.Type)
	ni.BinOp = in.BinOp
	ni.UnOp = in.UnOp
	ni.Callee = in.Callee
	ni.Index = in.Index
	ni.Indices = append([]int(nil), in.Indices...)
	if in.Var != nil {
		ni.Var = c.variable(in.Var)
	}
	ni.Global = c.globalRef(in.Global)
	if in.Const != nil {
		ni.Const = in.Const.Clone()
	}
	ni.Args = make([]*Instr, len(in.Args))
	for i, a := range in.Args {
		ni.Args[i] = c.resolve(a)
	}
	c.subst[in] = ni
	return ni
}
