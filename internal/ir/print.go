package ir

import (
	"fmt"
	"strconv"
	"strings"
)

// String renders the program as readable text IR for tests and debugging.
func (p *Program) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "program %s\n", p.Name)
	for _, g := range p.Uniforms {
		fmt.Fprintf(&sb, "  uniform %s %s\n", g.Type, g.Name)
	}
	for _, g := range p.Inputs {
		fmt.Fprintf(&sb, "  input %s %s\n", g.Type, g.Name)
	}
	for _, v := range p.Vars {
		kind := "var"
		if v.IsOutput {
			kind = "output"
		}
		fmt.Fprintf(&sb, "  %s %s %s\n", kind, v.Type, v.Name)
	}
	writeBlock(&sb, p.Body, 1)
	return sb.String()
}

func writeBlock(sb *strings.Builder, b *Block, depth int) {
	ind := strings.Repeat("  ", depth)
	for _, it := range b.Items {
		switch it := it.(type) {
		case *Instr:
			fmt.Fprintf(sb, "%s%s\n", ind, it.String())
		case *If:
			fmt.Fprintf(sb, "%sif %%%d {\n", ind, it.Cond.ID)
			writeBlock(sb, it.Then, depth+1)
			if it.Else != nil && len(it.Else.Items) > 0 {
				fmt.Fprintf(sb, "%s} else {\n", ind)
				writeBlock(sb, it.Else, depth+1)
			}
			fmt.Fprintf(sb, "%s}\n", ind)
		case *Loop:
			fmt.Fprintf(sb, "%sloop %s = %%%d; < %%%d; += %%%d {\n", ind,
				it.Counter.Name, it.Start.ID, it.End.ID, it.Step.ID)
			writeBlock(sb, it.Body, depth+1)
			fmt.Fprintf(sb, "%s}\n", ind)
		case *While:
			fmt.Fprintf(sb, "%swhile {\n", ind)
			writeBlock(sb, it.Cond, depth+1)
			fmt.Fprintf(sb, "%s} %%%d {\n", ind, it.CondVal.ID)
			writeBlock(sb, it.Body, depth+1)
			fmt.Fprintf(sb, "%s}\n", ind)
		}
	}
}

// String renders one instruction.
func (in *Instr) String() string {
	lhs := ""
	if in.HasResult() {
		lhs = fmt.Sprintf("%%%d:%s = ", in.ID, in.Type)
	}
	args := make([]string, len(in.Args))
	for i, a := range in.Args {
		args[i] = "%" + strconv.Itoa(a.ID)
	}
	argList := strings.Join(args, ", ")
	switch in.Op {
	case OpConst:
		return lhs + "const " + in.Const.String()
	case OpUniform:
		return lhs + "uniform " + in.Global.Name
	case OpInput:
		return lhs + "input " + in.Global.Name
	case OpBin:
		return lhs + fmt.Sprintf("bin %q %s", in.BinOp, argList)
	case OpUn:
		return lhs + fmt.Sprintf("un %q %s", in.UnOp, argList)
	case OpCall:
		return lhs + fmt.Sprintf("call %s(%s)", in.Callee, argList)
	case OpConstruct:
		return lhs + fmt.Sprintf("construct %s(%s)", in.Type, argList)
	case OpExtract:
		return lhs + fmt.Sprintf("extract %s[%d]", argList, in.Index)
	case OpExtractDyn:
		return lhs + fmt.Sprintf("extractdyn %s", argList)
	case OpSwizzle:
		return lhs + fmt.Sprintf("swizzle %s%v", argList, in.Indices)
	case OpInsert:
		return lhs + fmt.Sprintf("insert %s at %d", argList, in.Index)
	case OpInsertDyn:
		return lhs + fmt.Sprintf("insertdyn %s", argList)
	case OpSelect:
		return lhs + fmt.Sprintf("select %s", argList)
	case OpLoad:
		return lhs + "load " + in.Var.Name
	case OpStore:
		return fmt.Sprintf("store %s <- %s", in.Var.Name, argList)
	case OpDiscard:
		return "discard"
	}
	return lhs + in.Op.String() + " " + argList
}

// String renders a constant value.
func (c *ConstVal) String() string {
	parts := make([]string, 0, c.Len())
	for i := 0; i < c.Len(); i++ {
		switch {
		case c.F != nil:
			parts = append(parts, strconv.FormatFloat(c.F[i], 'g', -1, 64))
		case c.I != nil:
			parts = append(parts, strconv.FormatInt(c.I[i], 10))
		case c.B != nil:
			parts = append(parts, strconv.FormatBool(c.B[i]))
		}
	}
	if len(parts) == 1 {
		return parts[0]
	}
	return "(" + strings.Join(parts, ", ") + ")"
}
