package ir

import (
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Print writes the program as readable text IR to w — the same bytes
// String returns. Fingerprinting streams this straight into a hash
// instead of materializing the whole program text, so the writer path is
// the single source of truth and String delegates to it. Write errors
// are ignored: the printer serves diagnostics and fingerprinting, and w
// is expected to be an infallible sink (strings.Builder, a hash); wrap
// fallible writers in a buffer and check its Flush error instead.
func (p *Program) Print(w io.Writer) {
	fmt.Fprintf(w, "program %s\n", p.Name)
	for _, g := range p.Uniforms {
		fmt.Fprintf(w, "  uniform %s %s\n", g.Type, g.Name)
	}
	for _, g := range p.Inputs {
		fmt.Fprintf(w, "  input %s %s\n", g.Type, g.Name)
	}
	for _, v := range p.Vars {
		kind := "var"
		if v.IsOutput {
			kind = "output"
		}
		fmt.Fprintf(w, "  %s %s %s\n", kind, v.Type, v.Name)
	}
	writeBlock(w, p.Body, 1)
}

// String renders the program as readable text IR for tests and debugging.
func (p *Program) String() string {
	var sb strings.Builder
	p.Print(&sb)
	return sb.String()
}

func writeBlock(w io.Writer, b *Block, depth int) {
	ind := strings.Repeat("  ", depth)
	for _, it := range b.Items {
		switch it := it.(type) {
		case *Instr:
			io.WriteString(w, ind)
			it.print(w)
			io.WriteString(w, "\n")
		case *If:
			fmt.Fprintf(w, "%sif %%%d {\n", ind, it.Cond.ID)
			writeBlock(w, it.Then, depth+1)
			if it.Else != nil && len(it.Else.Items) > 0 {
				fmt.Fprintf(w, "%s} else {\n", ind)
				writeBlock(w, it.Else, depth+1)
			}
			fmt.Fprintf(w, "%s}\n", ind)
		case *Loop:
			fmt.Fprintf(w, "%sloop %s = %%%d; < %%%d; += %%%d {\n", ind,
				it.Counter.Name, it.Start.ID, it.End.ID, it.Step.ID)
			writeBlock(w, it.Body, depth+1)
			fmt.Fprintf(w, "%s}\n", ind)
		case *While:
			fmt.Fprintf(w, "%swhile {\n", ind)
			writeBlock(w, it.Cond, depth+1)
			fmt.Fprintf(w, "%s} %%%d {\n", ind, it.CondVal.ID)
			writeBlock(w, it.Body, depth+1)
			fmt.Fprintf(w, "%s}\n", ind)
		}
	}
}

// String renders one instruction.
func (in *Instr) String() string {
	var sb strings.Builder
	in.print(&sb)
	return sb.String()
}

// print writes one instruction (no trailing newline) to w.
func (in *Instr) print(w io.Writer) {
	if in.HasResult() {
		fmt.Fprintf(w, "%%%d:%s = ", in.ID, in.Type)
	}
	writeArgs := func() {
		for i, a := range in.Args {
			if i > 0 {
				io.WriteString(w, ", ")
			}
			io.WriteString(w, "%")
			io.WriteString(w, strconv.Itoa(a.ID))
		}
	}
	switch in.Op {
	case OpConst:
		io.WriteString(w, "const ")
		in.Const.print(w)
	case OpUniform:
		io.WriteString(w, "uniform ")
		io.WriteString(w, in.Global.Name)
	case OpInput:
		io.WriteString(w, "input ")
		io.WriteString(w, in.Global.Name)
	case OpBin:
		fmt.Fprintf(w, "bin %q ", in.BinOp)
		writeArgs()
	case OpUn:
		fmt.Fprintf(w, "un %q ", in.UnOp)
		writeArgs()
	case OpCall:
		fmt.Fprintf(w, "call %s(", in.Callee)
		writeArgs()
		io.WriteString(w, ")")
	case OpConstruct:
		fmt.Fprintf(w, "construct %s(", in.Type)
		writeArgs()
		io.WriteString(w, ")")
	case OpExtract:
		io.WriteString(w, "extract ")
		writeArgs()
		fmt.Fprintf(w, "[%d]", in.Index)
	case OpExtractDyn:
		io.WriteString(w, "extractdyn ")
		writeArgs()
	case OpSwizzle:
		io.WriteString(w, "swizzle ")
		writeArgs()
		fmt.Fprintf(w, "%v", in.Indices)
	case OpInsert:
		io.WriteString(w, "insert ")
		writeArgs()
		fmt.Fprintf(w, " at %d", in.Index)
	case OpInsertDyn:
		io.WriteString(w, "insertdyn ")
		writeArgs()
	case OpSelect:
		io.WriteString(w, "select ")
		writeArgs()
	case OpLoad:
		io.WriteString(w, "load ")
		io.WriteString(w, in.Var.Name)
	case OpStore:
		fmt.Fprintf(w, "store %s <- ", in.Var.Name)
		writeArgs()
	case OpDiscard:
		io.WriteString(w, "discard")
	default:
		io.WriteString(w, in.Op.String())
		io.WriteString(w, " ")
		writeArgs()
	}
}

// String renders a constant value.
func (c *ConstVal) String() string {
	var sb strings.Builder
	c.print(&sb)
	return sb.String()
}

func (c *ConstVal) print(w io.Writer) {
	n := c.Len()
	if n != 1 {
		io.WriteString(w, "(")
	}
	for i := 0; i < n; i++ {
		if i > 0 {
			io.WriteString(w, ", ")
		}
		switch {
		case c.F != nil:
			io.WriteString(w, strconv.FormatFloat(c.F[i], 'g', -1, 64))
		case c.I != nil:
			io.WriteString(w, strconv.FormatInt(c.I[i], 10))
		case c.B != nil:
			io.WriteString(w, strconv.FormatBool(c.B[i]))
		}
	}
	if n != 1 {
		io.WriteString(w, ")")
	}
}
