package ir

import (
	"fmt"

	"shaderopt/internal/sem"
)

// Program is a lowered fragment shader: interface globals, mutable slots,
// and a single structured body (user functions are fully inlined by the
// lowering stage, as in LunarGlass).
type Program struct {
	Name     string
	Version  string // source #version, propagated to codegen
	Uniforms []*Global
	Inputs   []*Global
	Outputs  []*Var // subset of Vars with IsOutput
	Vars     []*Var

	Body *Block

	nextID int
}

// NewProgram returns an empty program.
func NewProgram(name string) *Program {
	return &Program{Name: name, Body: &Block{}}
}

// NewInstr allocates an instruction with a fresh ID. The instruction is not
// inserted into any block.
func (p *Program) NewInstr(op Op, t sem.Type, args ...*Instr) *Instr {
	p.nextID++
	return &Instr{ID: p.nextID, Op: op, Type: t, Args: args}
}

// AddUniform registers a uniform global.
func (p *Program) AddUniform(name string, t sem.Type) *Global {
	g := &Global{Name: name, Type: t}
	p.Uniforms = append(p.Uniforms, g)
	return g
}

// AddInput registers a shader input.
func (p *Program) AddInput(name string, t sem.Type) *Global {
	g := &Global{Name: name, Type: t}
	p.Inputs = append(p.Inputs, g)
	return g
}

// AddOutput registers a shader output slot.
func (p *Program) AddOutput(name string, t sem.Type) *Var {
	v := &Var{Name: name, Type: t, IsOutput: true}
	p.Outputs = append(p.Outputs, v)
	p.Vars = append(p.Vars, v)
	return v
}

// AddVar registers a local mutable slot.
func (p *Program) AddVar(name string, t sem.Type) *Var {
	v := &Var{Name: name, Type: t}
	p.Vars = append(p.Vars, v)
	return v
}

// RenumberIDs reassigns dense instruction IDs in program order. Passes call
// this after structural rewrites so printing stays deterministic.
func (p *Program) RenumberIDs() {
	id := 0
	p.Body.WalkInstrs(func(in *Instr) {
		id++
		in.ID = id
	})
	p.nextID = id
}

// UseCounts returns the number of times each instruction's value is used as
// an operand anywhere in the program (loop bounds included).
func (p *Program) UseCounts() map[*Instr]int {
	uses := make(map[*Instr]int)
	var walk func(b *Block)
	walk = func(b *Block) {
		for _, it := range b.Items {
			switch it := it.(type) {
			case *Instr:
				for _, a := range it.Args {
					uses[a]++
				}
			case *If:
				uses[it.Cond]++
				walk(it.Then)
				if it.Else != nil {
					walk(it.Else)
				}
			case *Loop:
				uses[it.Start]++
				uses[it.End]++
				uses[it.Step]++
				walk(it.Body)
			case *While:
				walk(it.Cond)
				uses[it.CondVal]++
				walk(it.Body)
			}
		}
	}
	walk(p.Body)
	return uses
}

// Verify checks structural invariants:
//   - every operand is an instruction visible at its use site (defined
//     earlier in the same block or in an enclosing block before the region)
//   - operand and result types obey each opcode's typing rule
//   - Load/Store reference registered Vars; globals are registered
//
// It returns the first violation found.
func (p *Program) Verify() error {
	vars := make(map[*Var]bool, len(p.Vars))
	for _, v := range p.Vars {
		vars[v] = true
	}
	globals := make(map[*Global]bool, len(p.Uniforms)+len(p.Inputs))
	for _, g := range p.Uniforms {
		globals[g] = true
	}
	for _, g := range p.Inputs {
		globals[g] = true
	}
	v := &verifier{vars: vars, globals: globals, visible: map[*Instr]bool{}}
	return v.block(p.Body)
}

type verifier struct {
	vars    map[*Var]bool
	globals map[*Global]bool
	visible map[*Instr]bool
}

func (v *verifier) block(b *Block) error {
	// Track which instructions this block defined, to remove visibility on
	// exit (siblings of an If arm must not see its definitions).
	var defined []*Instr
	defer func() {
		for _, in := range defined {
			delete(v.visible, in)
		}
	}()
	for _, it := range b.Items {
		switch it := it.(type) {
		case *Instr:
			if err := v.instr(it); err != nil {
				return err
			}
			v.visible[it] = true
			defined = append(defined, it)
		case *If:
			if !v.visible[it.Cond] {
				return fmt.Errorf("if condition %%%d not visible", it.Cond.ID)
			}
			if !it.Cond.Type.Equal(sem.Bool) {
				return fmt.Errorf("if condition %%%d has type %s", it.Cond.ID, it.Cond.Type)
			}
			if err := v.block(it.Then); err != nil {
				return err
			}
			if it.Else != nil {
				if err := v.block(it.Else); err != nil {
					return err
				}
			}
		case *Loop:
			for _, bound := range []*Instr{it.Start, it.End, it.Step} {
				if !v.visible[bound] {
					return fmt.Errorf("loop bound %%%d not visible", bound.ID)
				}
				if !bound.Type.Equal(sem.Int) {
					return fmt.Errorf("loop bound %%%d has type %s, want int", bound.ID, bound.Type)
				}
			}
			if !v.vars[it.Counter] {
				return fmt.Errorf("loop counter %q not a registered var", it.Counter.Name)
			}
			if err := v.block(it.Body); err != nil {
				return err
			}
		case *While:
			if err := v.block(it.Cond); err != nil {
				return err
			}
			// CondVal must be defined inside Cond; approximate by checking
			// it is an instruction of that block tree.
			found := false
			it.Cond.WalkInstrs(func(in *Instr) {
				if in == it.CondVal {
					found = true
				}
			})
			if !found {
				return fmt.Errorf("while condition value %%%d not inside cond block", it.CondVal.ID)
			}
			if !it.CondVal.Type.Equal(sem.Bool) {
				return fmt.Errorf("while condition %%%d has type %s", it.CondVal.ID, it.CondVal.Type)
			}
			if err := v.block(it.Body); err != nil {
				return err
			}
		default:
			return fmt.Errorf("unknown block item %T", it)
		}
	}
	return nil
}

func (v *verifier) instr(in *Instr) error {
	for _, a := range in.Args {
		if a == nil {
			return fmt.Errorf("%%%d %s: nil operand", in.ID, in.Op)
		}
		if !v.visible[a] {
			return fmt.Errorf("%%%d %s: operand %%%d not visible at use", in.ID, in.Op, a.ID)
		}
		if !a.HasResult() {
			return fmt.Errorf("%%%d %s: operand %%%d produces no value", in.ID, in.Op, a.ID)
		}
	}
	nargs := func(n int) error {
		if len(in.Args) != n {
			return fmt.Errorf("%%%d %s: want %d args, got %d", in.ID, in.Op, n, len(in.Args))
		}
		return nil
	}
	switch in.Op {
	case OpConst:
		if err := nargs(0); err != nil {
			return err
		}
		if in.Const == nil {
			return fmt.Errorf("%%%d const: missing payload", in.ID)
		}
		if in.Const.Len() != in.Type.Components() {
			return fmt.Errorf("%%%d const: %d components for type %s", in.ID, in.Const.Len(), in.Type)
		}
	case OpUniform, OpInput:
		if err := nargs(0); err != nil {
			return err
		}
		if in.Global == nil || !v.globals[in.Global] {
			return fmt.Errorf("%%%d %s: unregistered global", in.ID, in.Op)
		}
		if !in.Type.Equal(in.Global.Type) {
			return fmt.Errorf("%%%d %s: type %s != global %s", in.ID, in.Op, in.Type, in.Global.Type)
		}
	case OpBin:
		if err := nargs(2); err != nil {
			return err
		}
		x, y := in.Args[0].Type, in.Args[1].Type
		if x.IsMatrix() || y.IsMatrix() {
			// Matrix algebra keeps GLSL's mixed-operand forms; the offline
			// scalarization pass removes them before codegen.
			res, err := sem.BinaryResult(in.BinOp, x, y)
			if err != nil {
				return fmt.Errorf("%%%d bin %q: %v", in.ID, in.BinOp, err)
			}
			if !in.Type.Equal(res) {
				return fmt.Errorf("%%%d bin %q: result %s, want %s", in.ID, in.BinOp, in.Type, res)
			}
			return nil
		}
		if !x.Equal(y) {
			return fmt.Errorf("%%%d bin %q: operand types %s and %s differ", in.ID, in.BinOp, x, y)
		}
		switch in.BinOp {
		case "+", "-", "*", "/", "%":
			if !in.Type.Equal(x) {
				return fmt.Errorf("%%%d bin %q: result %s != operand %s", in.ID, in.BinOp, in.Type, x)
			}
		case "<", ">", "<=", ">=", "==", "!=", "&&", "||", "^^":
			if !in.Type.Equal(sem.Bool) {
				return fmt.Errorf("%%%d bin %q: result %s, want bool", in.ID, in.BinOp, in.Type)
			}
		default:
			return fmt.Errorf("%%%d bin: unknown operator %q", in.ID, in.BinOp)
		}
	case OpUn:
		if err := nargs(1); err != nil {
			return err
		}
		if !in.Type.Equal(in.Args[0].Type) {
			return fmt.Errorf("%%%d un %q: result %s != operand %s", in.ID, in.UnOp, in.Type, in.Args[0].Type)
		}
	case OpCall:
		if !sem.IsBuiltin(in.Callee) {
			return fmt.Errorf("%%%d call: unknown builtin %q", in.ID, in.Callee)
		}
		argTypes := make([]sem.Type, len(in.Args))
		for i, a := range in.Args {
			argTypes[i] = a.Type
		}
		res, err := sem.ResolveBuiltin(in.Callee, argTypes)
		if err != nil {
			return fmt.Errorf("%%%d call %s: %v", in.ID, in.Callee, err)
		}
		if !res.Equal(in.Type) {
			return fmt.Errorf("%%%d call %s: result %s, want %s", in.ID, in.Callee, in.Type, res)
		}
	case OpConstruct:
		total := 0
		for _, a := range in.Args {
			total += a.Type.Components()
		}
		if total != in.Type.Components() {
			return fmt.Errorf("%%%d construct %s: %d components provided", in.ID, in.Type, total)
		}
	case OpExtract:
		if err := nargs(1); err != nil {
			return err
		}
		if err := checkExtract(in.Args[0].Type, in.Index, in.Type); err != nil {
			return fmt.Errorf("%%%d extract: %v", in.ID, err)
		}
	case OpExtractDyn:
		if err := nargs(2); err != nil {
			return err
		}
		if !in.Args[1].Type.Equal(sem.Int) {
			return fmt.Errorf("%%%d extractdyn: index type %s", in.ID, in.Args[1].Type)
		}
		if err := checkExtract(in.Args[0].Type, 0, in.Type); err != nil {
			return fmt.Errorf("%%%d extractdyn: %v", in.ID, err)
		}
	case OpSwizzle:
		if err := nargs(1); err != nil {
			return err
		}
		src := in.Args[0].Type
		if !src.IsVector() {
			return fmt.Errorf("%%%d swizzle of non-vector %s", in.ID, src)
		}
		if len(in.Indices) < 2 || len(in.Indices) > 4 {
			return fmt.Errorf("%%%d swizzle width %d (use extract for scalars)", in.ID, len(in.Indices))
		}
		for _, ix := range in.Indices {
			if ix < 0 || ix >= src.Vec {
				return fmt.Errorf("%%%d swizzle index %d out of range", in.ID, ix)
			}
		}
		want := sem.VecType(src.Kind, len(in.Indices))
		if !in.Type.Equal(want) {
			return fmt.Errorf("%%%d swizzle: result %s, want %s", in.ID, in.Type, want)
		}
	case OpInsert:
		if err := nargs(2); err != nil {
			return err
		}
		if !in.Type.Equal(in.Args[0].Type) {
			return fmt.Errorf("%%%d insert: result %s != aggregate %s", in.ID, in.Type, in.Args[0].Type)
		}
		var elem sem.Type
		if err := func() error {
			var err error
			elem, err = extractType(in.Args[0].Type)
			return err
		}(); err != nil {
			return fmt.Errorf("%%%d insert: %v", in.ID, err)
		}
		if !in.Args[1].Type.Equal(elem) {
			return fmt.Errorf("%%%d insert: element %s, want %s", in.ID, in.Args[1].Type, elem)
		}
	case OpInsertDyn:
		if err := nargs(3); err != nil {
			return err
		}
		if !in.Args[1].Type.Equal(sem.Int) {
			return fmt.Errorf("%%%d insertdyn: index type %s", in.ID, in.Args[1].Type)
		}
		if !in.Type.Equal(in.Args[0].Type) {
			return fmt.Errorf("%%%d insertdyn: result %s != aggregate %s", in.ID, in.Type, in.Args[0].Type)
		}
	case OpSelect:
		if err := nargs(3); err != nil {
			return err
		}
		if !in.Args[0].Type.Equal(sem.Bool) {
			return fmt.Errorf("%%%d select: condition type %s", in.ID, in.Args[0].Type)
		}
		if !in.Args[1].Type.Equal(in.Args[2].Type) || !in.Type.Equal(in.Args[1].Type) {
			return fmt.Errorf("%%%d select: arm types %s/%s result %s", in.ID, in.Args[1].Type, in.Args[2].Type, in.Type)
		}
	case OpLoad:
		if err := nargs(0); err != nil {
			return err
		}
		if in.Var == nil || !v.vars[in.Var] {
			return fmt.Errorf("%%%d load: unregistered var", in.ID)
		}
		if !in.Type.Equal(in.Var.Type) {
			return fmt.Errorf("%%%d load: type %s != var %s", in.ID, in.Type, in.Var.Type)
		}
	case OpStore:
		if err := nargs(1); err != nil {
			return err
		}
		if in.Var == nil || !v.vars[in.Var] {
			return fmt.Errorf("%%%d store: unregistered var", in.ID)
		}
		if !in.Args[0].Type.Equal(in.Var.Type) {
			return fmt.Errorf("%%%d store: value %s != var %s", in.ID, in.Args[0].Type, in.Var.Type)
		}
	case OpDiscard:
		return nargs(0)
	default:
		return fmt.Errorf("%%%d: unknown op %d", in.ID, int(in.Op))
	}
	return nil
}

// extractType returns the element type produced by extracting from t.
func extractType(t sem.Type) (sem.Type, error) {
	switch {
	case t.IsArray():
		return t.Elem(), nil
	case t.IsMatrix():
		return sem.VecType(sem.KindFloat, t.Mat), nil
	case t.IsVector():
		return t.ScalarOf(), nil
	}
	return sem.Void, fmt.Errorf("cannot extract from %s", t)
}

func checkExtract(src sem.Type, idx int, res sem.Type) error {
	elem, err := extractType(src)
	if err != nil {
		return err
	}
	n := src.Vec
	if src.IsMatrix() {
		n = src.Mat
	}
	if src.IsArray() {
		n = src.ArrayLen
	}
	if idx < 0 || idx >= n {
		return fmt.Errorf("index %d out of range for %s", idx, src)
	}
	if !res.Equal(elem) {
		return fmt.Errorf("result %s, want %s", res, elem)
	}
	return nil
}
