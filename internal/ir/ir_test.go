package ir

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"shaderopt/internal/sem"
)

func TestConstValHelpers(t *testing.T) {
	c := FloatConst(1, 2, 3)
	if c.Len() != 3 || c.Float(2) != 3 {
		t.Error("FloatConst")
	}
	if !SplatFloat(0.5, 4).IsSplat() {
		t.Error("SplatFloat should be splat")
	}
	if FloatConst(1, 2).IsSplat() {
		t.Error("(1,2) is not splat")
	}
	if !SplatFloat(0, 3).AllEqual(0) || SplatFloat(1, 3).AllEqual(0) {
		t.Error("AllEqual")
	}
	if !IntConst(7).Equal(IntConst(7)) || IntConst(7).Equal(IntConst(8)) {
		t.Error("Equal int")
	}
	if IntConst(1).Equal(FloatConst(1)) {
		t.Error("kinds differ")
	}
	if BoolConst(true).Int(0) != 1 || BoolConst(false).Float(0) != 0 {
		t.Error("bool conversions")
	}
	cl := c.Clone()
	cl.F[0] = 99
	if c.F[0] == 99 {
		t.Error("Clone should deep-copy")
	}
}

func TestEvalBinFloatVector(t *testing.T) {
	x := FloatConst(1, 2, 3, 4)
	y := FloatConst(4, 3, 2, 1)
	sum, ok := EvalBin("+", x, y)
	if !ok || !sum.Equal(FloatConst(5, 5, 5, 5)) {
		t.Errorf("+: %v %v", sum, ok)
	}
	prod, ok := EvalBin("*", x, y)
	if !ok || !prod.Equal(FloatConst(4, 6, 6, 4)) {
		t.Errorf("*: %v", prod)
	}
	q, ok := EvalBin("/", FloatConst(1), FloatConst(0))
	if !ok || !math.IsInf(q.F[0], 1) {
		t.Errorf("float div by zero should give +inf, got %v", q)
	}
}

func TestEvalBinInt(t *testing.T) {
	d, ok := EvalBin("/", IntConst(7), IntConst(2))
	if !ok || d.I[0] != 3 {
		t.Errorf("int div: %v", d)
	}
	if _, ok := EvalBin("/", IntConst(1), IntConst(0)); ok {
		t.Error("int div by zero must not fold")
	}
	if _, ok := EvalBin("%", IntConst(1), IntConst(0)); ok {
		t.Error("int mod by zero must not fold")
	}
	m, ok := EvalBin("%", IntConst(7), IntConst(3))
	if !ok || m.I[0] != 1 {
		t.Errorf("mod: %v", m)
	}
}

func TestEvalBinComparisons(t *testing.T) {
	lt, ok := EvalBin("<", FloatConst(1), FloatConst(2))
	if !ok || !lt.B[0] {
		t.Error("1 < 2")
	}
	eq, ok := EvalBin("==", FloatConst(1, 2), FloatConst(1, 2))
	if !ok || !eq.B[0] {
		t.Error("vec eq")
	}
	ne, ok := EvalBin("!=", FloatConst(1, 2), FloatConst(1, 3))
	if !ok || !ne.B[0] {
		t.Error("vec ne")
	}
	and, ok := EvalBin("&&", BoolConst(true), BoolConst(false))
	if !ok || and.B[0] {
		t.Error("&&")
	}
	if _, ok := EvalBin("<", FloatConst(1, 2), FloatConst(1, 2)); ok {
		t.Error("vector < must not evaluate")
	}
}

func TestEvalUn(t *testing.T) {
	n, ok := EvalUn("-", FloatConst(1, -2))
	if !ok || !n.Equal(FloatConst(-1, 2)) {
		t.Error("neg")
	}
	ni, ok := EvalUn("-", IntConst(5))
	if !ok || ni.I[0] != -5 {
		t.Error("neg int")
	}
	nb, ok := EvalUn("!", BoolConst(false))
	if !ok || !nb.B[0] {
		t.Error("not")
	}
}

func TestEvalConstruct(t *testing.T) {
	v := EvalConstruct(sem.Vec4, []*ConstVal{FloatConst(1, 2), FloatConst(3), FloatConst(4)})
	if !v.Equal(FloatConst(1, 2, 3, 4)) {
		t.Errorf("construct: %v", v)
	}
	// Kind conversion int -> float.
	f := EvalConstruct(sem.Float, []*ConstVal{IntConst(3)})
	if !f.Equal(FloatConst(3)) {
		t.Errorf("int->float: %v", f)
	}
	i := EvalConstruct(sem.Int, []*ConstVal{FloatConst(3.7)})
	if i.I[0] != 3 {
		t.Errorf("float->int should truncate: %v", i)
	}
	b := EvalConstruct(sem.Bool, []*ConstVal{FloatConst(2)})
	if !b.B[0] {
		t.Errorf("float->bool: %v", b)
	}
}

func TestEvalExtractSwizzleInsert(t *testing.T) {
	v := FloatConst(10, 20, 30, 40)
	if got := EvalExtract(sem.Vec4, v, 2); !got.Equal(FloatConst(30)) {
		t.Errorf("extract: %v", got)
	}
	m := FloatConst(1, 2, 3, 4) // mat2 columns (1,2) and (3,4)
	if got := EvalExtract(sem.Mat2, m, 1); !got.Equal(FloatConst(3, 4)) {
		t.Errorf("mat column: %v", got)
	}
	arr := FloatConst(1, 2, 3, 4, 5, 6)
	if got := EvalExtract(sem.ArrayOf(sem.Vec2, 3), arr, 1); !got.Equal(FloatConst(3, 4)) {
		t.Errorf("array elem: %v", got)
	}
	if got := EvalSwizzle(v, []int{3, 0, 0}); !got.Equal(FloatConst(40, 10, 10)) {
		t.Errorf("swizzle: %v", got)
	}
	ins := EvalInsert(sem.Vec4, v, FloatConst(99), 1)
	if !ins.Equal(FloatConst(10, 99, 30, 40)) {
		t.Errorf("insert: %v", ins)
	}
	if !v.Equal(FloatConst(10, 20, 30, 40)) {
		t.Error("insert must not mutate source")
	}
}

func TestEvalBuiltins(t *testing.T) {
	cases := []struct {
		name string
		args []*ConstVal
		want *ConstVal
	}{
		{"abs", []*ConstVal{FloatConst(-2, 3)}, FloatConst(2, 3)},
		{"floor", []*ConstVal{FloatConst(1.7)}, FloatConst(1)},
		{"fract", []*ConstVal{FloatConst(1.25)}, FloatConst(0.25)},
		{"min", []*ConstVal{FloatConst(1, 5), FloatConst(3)}, FloatConst(1, 3)},
		{"max", []*ConstVal{FloatConst(1, 5), FloatConst(3)}, FloatConst(3, 5)},
		{"clamp", []*ConstVal{FloatConst(-1, 0.5, 2), FloatConst(0), FloatConst(1)}, FloatConst(0, 0.5, 1)},
		{"mix", []*ConstVal{FloatConst(0), FloatConst(10), FloatConst(0.25)}, FloatConst(2.5)},
		{"step", []*ConstVal{FloatConst(0.5), FloatConst(0.2, 0.7)}, FloatConst(0, 1)},
		{"dot", []*ConstVal{FloatConst(1, 2, 3), FloatConst(4, 5, 6)}, FloatConst(32)},
		{"length", []*ConstVal{FloatConst(3, 4)}, FloatConst(5)},
		{"distance", []*ConstVal{FloatConst(1, 1), FloatConst(4, 5)}, FloatConst(5)},
		{"cross", []*ConstVal{FloatConst(1, 0, 0), FloatConst(0, 1, 0)}, FloatConst(0, 0, 1)},
		{"pow", []*ConstVal{FloatConst(2), FloatConst(10)}, FloatConst(1024)},
		{"sqrt", []*ConstVal{FloatConst(16)}, FloatConst(4)},
		{"inversesqrt", []*ConstVal{FloatConst(4)}, FloatConst(0.5)},
		{"sign", []*ConstVal{FloatConst(-3, 0, 9)}, FloatConst(-1, 0, 1)},
		{"mod", []*ConstVal{FloatConst(5.5), FloatConst(2)}, FloatConst(1.5)},
		{"reflect", []*ConstVal{FloatConst(1, -1), FloatConst(0, 1)}, FloatConst(1, 1)},
	}
	for _, c := range cases {
		got, ok := EvalBuiltin(c.name, c.args)
		if !ok {
			t.Errorf("%s: not evaluable", c.name)
			continue
		}
		if got.Len() != c.want.Len() {
			t.Errorf("%s: got %v want %v", c.name, got, c.want)
			continue
		}
		for i := 0; i < got.Len(); i++ {
			if math.Abs(got.F[i]-c.want.F[i]) > 1e-12 {
				t.Errorf("%s[%d]: got %v want %v", c.name, i, got.F[i], c.want.F[i])
			}
		}
	}
}

func TestEvalBuiltinNormalize(t *testing.T) {
	got, ok := EvalBuiltin("normalize", []*ConstVal{FloatConst(3, 0, 4)})
	if !ok || math.Abs(got.F[0]-0.6) > 1e-12 || math.Abs(got.F[2]-0.8) > 1e-12 {
		t.Errorf("normalize: %v", got)
	}
}

func TestEvalBuiltinNotFoldable(t *testing.T) {
	for _, name := range []string{"texture", "textureLod", "dFdx", "fwidth", "texelFetch"} {
		if _, ok := EvalBuiltin(name, nil); ok {
			t.Errorf("%s should not be constant-evaluable", name)
		}
	}
}

func TestEvalSmoothstepProperties(t *testing.T) {
	err := quick.Check(func(x float64) bool {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return true
		}
		got, ok := EvalBuiltin("smoothstep", []*ConstVal{FloatConst(0), FloatConst(1), FloatConst(x)})
		return ok && got.F[0] >= 0 && got.F[0] <= 1
	}, &quick.Config{MaxCount: 200})
	if err != nil {
		t.Error(err)
	}
}

// Property: float + is commutative under evaluation.
func TestEvalBinAddCommutative(t *testing.T) {
	err := quick.Check(func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) {
			return true
		}
		x, ok1 := EvalBin("+", FloatConst(a), FloatConst(b))
		y, ok2 := EvalBin("+", FloatConst(b), FloatConst(a))
		return ok1 && ok2 && x.Equal(y)
	}, &quick.Config{MaxCount: 500})
	if err != nil {
		t.Error(err)
	}
}

// --- Program / verifier ---

// buildSimple constructs: out = input.xy * uniform scalar, splatted.
func buildSimple() *Program {
	p := NewProgram("test")
	uvG := p.AddInput("uv", sem.Vec2)
	kG := p.AddUniform("k", sem.Float)
	out := p.AddOutput("color", sem.Vec4)

	uv := p.NewInstr(OpInput, sem.Vec2)
	uv.Global = uvG
	k := p.NewInstr(OpUniform, sem.Float)
	k.Global = kG
	splat := p.NewInstr(OpConstruct, sem.Vec2, k, k)
	mul := p.NewInstr(OpBin, sem.Vec2, uv, splat)
	mul.BinOp = "*"
	one := p.NewInstr(OpConst, sem.Float)
	one.Const = FloatConst(1)
	vec := p.NewInstr(OpConstruct, sem.Vec4, mul, one, one)
	st := p.NewInstr(OpStore, sem.Void, vec)
	st.Var = out
	p.Body.Append(uv, k, splat, mul, one, vec, st)
	return p
}

func TestVerifyOK(t *testing.T) {
	p := buildSimple()
	if err := p.Verify(); err != nil {
		t.Fatalf("Verify: %v\n%s", err, p)
	}
}

func TestVerifyCatchesBadTypes(t *testing.T) {
	p := buildSimple()
	// Corrupt: make the mul result type wrong.
	p.Body.Items[3].(*Instr).Type = sem.Vec3
	if err := p.Verify(); err == nil {
		t.Fatal("want verify error for wrong bin type")
	}
}

func TestVerifyCatchesInvisibleOperand(t *testing.T) {
	p := buildSimple()
	// Move the store before its operand.
	items := p.Body.Items
	items[0], items[6] = items[6], items[0]
	if err := p.Verify(); err == nil {
		t.Fatal("want verify error for use before def")
	}
}

func TestVerifyCatchesIfScopeLeak(t *testing.T) {
	p := NewProgram("scope")
	out := p.AddOutput("c", sem.Float)
	cond := p.NewInstr(OpConst, sem.Bool)
	cond.Const = BoolConst(true)
	inner := p.NewInstr(OpConst, sem.Float)
	inner.Const = FloatConst(1)
	ifItem := &If{Cond: cond, Then: &Block{Items: []Item{inner}}}
	// Illegal: store uses a value defined inside the if arm.
	st := p.NewInstr(OpStore, sem.Void, inner)
	st.Var = out
	p.Body.Append(cond, ifItem, st)
	if err := p.Verify(); err == nil {
		t.Fatal("want verify error for scope leak")
	}
}

func TestVerifyUnregisteredVar(t *testing.T) {
	p := NewProgram("bad")
	rogue := &Var{Name: "rogue", Type: sem.Float}
	v := p.NewInstr(OpConst, sem.Float)
	v.Const = FloatConst(1)
	st := p.NewInstr(OpStore, sem.Void, v)
	st.Var = rogue
	p.Body.Append(v, st)
	if err := p.Verify(); err == nil {
		t.Fatal("want verify error for unregistered var")
	}
}

func TestTripCount(t *testing.T) {
	p := NewProgram("loop")
	mk := func(v int64) *Instr {
		in := p.NewInstr(OpConst, sem.Int)
		in.Const = IntConst(v)
		return in
	}
	l := &Loop{Counter: p.AddVar("i", sem.Int), Start: mk(0), End: mk(9), Step: mk(1), Body: &Block{}}
	if n, ok := l.TripCount(); !ok || n != 9 {
		t.Errorf("TripCount = %d, %v", n, ok)
	}
	l2 := &Loop{Counter: l.Counter, Start: mk(0), End: mk(10), Step: mk(3), Body: &Block{}}
	if n, ok := l2.TripCount(); !ok || n != 4 {
		t.Errorf("TripCount = %d, %v", n, ok)
	}
	l3 := &Loop{Counter: l.Counter, Start: mk(0), End: mk(10), Step: mk(0), Body: &Block{}}
	if _, ok := l3.TripCount(); ok {
		t.Error("zero step must not be unrollable")
	}
	dyn := p.NewInstr(OpUniform, sem.Int)
	l4 := &Loop{Counter: l.Counter, Start: mk(0), End: dyn, Step: mk(1), Body: &Block{}}
	if _, ok := l4.TripCount(); ok {
		t.Error("dynamic bound must not be unrollable")
	}
}

func TestUseCounts(t *testing.T) {
	p := buildSimple()
	uses := p.UseCounts()
	k := p.Body.Items[1].(*Instr)
	if uses[k] != 2 {
		t.Errorf("k used %d times, want 2", uses[k])
	}
	st := p.Body.Items[6].(*Instr)
	if uses[st] != 0 {
		t.Error("store should have no uses")
	}
}

func TestCloneBlock(t *testing.T) {
	p := buildSimple()
	orig := p.Body.CountInstrs()
	clone := p.CloneBlock(p.Body, map[*Instr]*Instr{}, map[*Var]*Var{})
	if clone.CountInstrs() != orig {
		t.Fatalf("clone has %d instrs, want %d", clone.CountInstrs(), orig)
	}
	// Mutating the clone must not affect the original.
	clone.Items[4].(*Instr).Const.F[0] = 42
	if p.Body.Items[4].(*Instr).Const.F[0] == 42 {
		t.Error("clone shares constant storage")
	}
	// Cloned instructions must have fresh identities.
	if clone.Items[0] == p.Body.Items[0] {
		t.Error("clone shares instruction pointers")
	}
}

func TestCloneBlockVarSubst(t *testing.T) {
	p := NewProgram("vs")
	a := p.AddVar("a", sem.Float)
	b := p.AddVar("b", sem.Float)
	c := p.NewInstr(OpConst, sem.Float)
	c.Const = FloatConst(1)
	st := p.NewInstr(OpStore, sem.Void, c)
	st.Var = a
	p.Body.Append(c, st)
	clone := p.CloneBlock(p.Body, map[*Instr]*Instr{}, map[*Var]*Var{a: b})
	if clone.Items[1].(*Instr).Var != b {
		t.Error("var substitution not applied")
	}
}

func TestProgramString(t *testing.T) {
	p := buildSimple()
	s := p.String()
	for _, want := range []string{"program test", "input vec2 uv", "uniform float k", "output vec4 color", "store color"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() missing %q:\n%s", want, s)
		}
	}
}

func TestRenumberIDs(t *testing.T) {
	p := buildSimple()
	p.RenumberIDs()
	want := 1
	p.Body.WalkInstrs(func(in *Instr) {
		if in.ID != want {
			t.Errorf("ID = %d, want %d", in.ID, want)
		}
		want++
	})
}

func TestWalkAndCounts(t *testing.T) {
	p := buildSimple()
	if got := p.Body.CountInstrs(); got != 7 {
		t.Errorf("CountInstrs = %d", got)
	}
	if p.Body.HasControlFlow() {
		t.Error("no control flow expected")
	}
	blocks := 0
	p.Body.WalkBlocks(func(*Block) { blocks++ })
	if blocks != 1 {
		t.Errorf("blocks = %d", blocks)
	}
}
