// Package ir defines the optimizer's intermediate representation: a typed
// value DAG inside structured control flow, in the style of LunarGlass's
// LLVM-based middle end but with the structure the GLSL backend needs
// preserved. Cross-region dataflow goes through mutable Var slots with
// explicit Load/Store (the LLVM-alloca analog); straight-line dataflow is
// pure SSA-style instruction references.
package ir

import (
	"fmt"

	"shaderopt/internal/sem"
)

// Op is an instruction opcode.
type Op int

// Opcodes.
const (
	OpConst      Op = iota // materialize ConstVal
	OpUniform              // read a uniform (Global)
	OpInput                // read a shader input (Global)
	OpBin                  // binary operator; both operands have equal types
	OpUn                   // unary operator: "-" or "!"
	OpCall                 // builtin function call
	OpConstruct            // build vector/matrix/array from components
	OpExtract              // constant-index extract: vec→scalar, mat→column, array→elem
	OpExtractDyn           // dynamic-index extract (args: agg, int index)
	OpSwizzle              // vector swizzle (width ≥ 2 result)
	OpInsert               // constant-index insert (args: agg, elem) → new agg
	OpInsertDyn            // dynamic-index insert (args: agg, index, elem)
	OpSelect               // args: bool cond, a, b
	OpLoad                 // read a Var
	OpStore                // args: value; writes a Var; produces no value
	OpDiscard              // abandon fragment
)

var opNames = [...]string{
	OpConst: "const", OpUniform: "uniform", OpInput: "input", OpBin: "bin",
	OpUn: "un", OpCall: "call", OpConstruct: "construct", OpExtract: "extract",
	OpExtractDyn: "extractdyn", OpSwizzle: "swizzle", OpInsert: "insert",
	OpInsertDyn: "insertdyn", OpSelect: "select", OpLoad: "load",
	OpStore: "store", OpDiscard: "discard",
}

func (o Op) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", int(o))
}

// Global is a read-only interface variable: a uniform or shader input.
type Global struct {
	Name string
	Type sem.Type
}

// Var is a mutable slot: a local variable, loop counter, or shader output.
type Var struct {
	Name     string
	Type     sem.Type
	IsOutput bool
}

// Instr is an instruction. Instructions are identified by pointer; ID is a
// stable ordinal for printing and deterministic iteration.
type Instr struct {
	ID   int
	Op   Op
	Type sem.Type // result type; Void for store/discard
	Args []*Instr

	BinOp   string    // OpBin
	UnOp    string    // OpUn
	Callee  string    // OpCall
	Index   int       // OpExtract / OpInsert
	Indices []int     // OpSwizzle
	Var     *Var      // OpLoad / OpStore
	Global  *Global   // OpUniform / OpInput
	Const   *ConstVal // OpConst
}

// HasResult reports whether the instruction produces a value.
func (in *Instr) HasResult() bool { return in.Op != OpStore && in.Op != OpDiscard }

// IsPure reports whether the instruction can be removed when unused and
// merged with identical instructions. Texture sampling and derivatives are
// deterministic within a fragment, so calls are pure here; only memory and
// control effects are impure.
func (in *Instr) IsPure() bool {
	switch in.Op {
	case OpStore, OpDiscard, OpLoad:
		return false
	}
	return true
}

// ConstVal is a compile-time constant: scalar, vector, matrix
// (column-major), or array (element-major). Exactly one payload slice is
// non-nil, selected by Kind.
type ConstVal struct {
	Kind sem.Kind
	F    []float64
	I    []int64
	B    []bool
}

// Len returns the number of scalar components.
func (c *ConstVal) Len() int {
	switch c.Kind {
	case sem.KindFloat:
		return len(c.F)
	case sem.KindInt:
		return len(c.I)
	case sem.KindBool:
		return len(c.B)
	}
	return 0
}

// Clone returns a deep copy.
func (c *ConstVal) Clone() *ConstVal {
	out := &ConstVal{Kind: c.Kind}
	out.F = append([]float64(nil), c.F...)
	out.I = append([]int64(nil), c.I...)
	out.B = append([]bool(nil), c.B...)
	return out
}

// Equal reports bitwise equality of two constants.
func (c *ConstVal) Equal(o *ConstVal) bool {
	if c.Kind != o.Kind || c.Len() != o.Len() {
		return false
	}
	switch c.Kind {
	case sem.KindFloat:
		for i := range c.F {
			if c.F[i] != o.F[i] {
				return false
			}
		}
	case sem.KindInt:
		for i := range c.I {
			if c.I[i] != o.I[i] {
				return false
			}
		}
	case sem.KindBool:
		for i := range c.B {
			if c.B[i] != o.B[i] {
				return false
			}
		}
	}
	return true
}

// Float returns component i as a float64.
func (c *ConstVal) Float(i int) float64 {
	switch c.Kind {
	case sem.KindFloat:
		return c.F[i]
	case sem.KindInt:
		return float64(c.I[i])
	case sem.KindBool:
		if c.B[i] {
			return 1
		}
		return 0
	}
	return 0
}

// Int returns component i as an int64.
func (c *ConstVal) Int(i int) int64 {
	switch c.Kind {
	case sem.KindInt:
		return c.I[i]
	case sem.KindFloat:
		return int64(c.F[i])
	case sem.KindBool:
		if c.B[i] {
			return 1
		}
		return 0
	}
	return 0
}

// AllEqual reports whether every component equals the scalar value v
// (float constants only).
func (c *ConstVal) AllEqual(v float64) bool {
	if c.Kind != sem.KindFloat || len(c.F) == 0 {
		return false
	}
	for _, f := range c.F {
		if f != v {
			return false
		}
	}
	return true
}

// IsSplat reports whether all components are identical.
func (c *ConstVal) IsSplat() bool {
	n := c.Len()
	if n <= 1 {
		return true
	}
	for i := 1; i < n; i++ {
		switch c.Kind {
		case sem.KindFloat:
			if c.F[i] != c.F[0] {
				return false
			}
		case sem.KindInt:
			if c.I[i] != c.I[0] {
				return false
			}
		case sem.KindBool:
			if c.B[i] != c.B[0] {
				return false
			}
		}
	}
	return true
}

// FloatConst builds a float constant from components.
func FloatConst(vals ...float64) *ConstVal {
	return &ConstVal{Kind: sem.KindFloat, F: append([]float64(nil), vals...)}
}

// SplatFloat builds an n-wide float constant with every component v.
func SplatFloat(v float64, n int) *ConstVal {
	f := make([]float64, n)
	for i := range f {
		f[i] = v
	}
	return &ConstVal{Kind: sem.KindFloat, F: f}
}

// IntConst builds an int constant.
func IntConst(vals ...int64) *ConstVal {
	return &ConstVal{Kind: sem.KindInt, I: append([]int64(nil), vals...)}
}

// BoolConst builds a bool constant.
func BoolConst(vals ...bool) *ConstVal {
	return &ConstVal{Kind: sem.KindBool, B: append([]bool(nil), vals...)}
}
