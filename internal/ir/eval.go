package ir

import (
	"math"

	"shaderopt/internal/sem"
)

// This file is the functional semantics of the IR: evaluation of every pure
// opcode on constant values. The constant-folding pass and the shader
// interpreter share it, so "fold" and "run" can never disagree.

// EvalBinTyped evaluates a binary operation given the operand types,
// routing matrix algebra to EvalMatBin and everything else to the
// componentwise EvalBin.
func EvalBinTyped(op string, xt, yt sem.Type, x, y *ConstVal) (*ConstVal, bool) {
	if xt.IsMatrix() || yt.IsMatrix() {
		return EvalMatBin(op, xt, yt, x, y)
	}
	if xt.Components() != yt.Components() {
		return nil, false
	}
	return EvalBin(op, x, y)
}

// EvalMatBin evaluates matrix algebra: mat*mat, mat*vec, vec*mat, mat±mat,
// mat*scalar, scalar*mat, mat/scalar. Matrices are column-major.
func EvalMatBin(op string, xt, yt sem.Type, x, y *ConstVal) (*ConstVal, bool) {
	switch {
	case op == "*" && xt.IsMatrix() && yt.IsMatrix():
		n := xt.Mat
		out := make([]float64, n*n)
		for j := 0; j < n; j++ {
			for i := 0; i < n; i++ {
				s := 0.0
				for k := 0; k < n; k++ {
					s += x.F[k*n+i] * y.F[j*n+k]
				}
				out[j*n+i] = s
			}
		}
		return &ConstVal{Kind: sem.KindFloat, F: out}, true
	case op == "*" && xt.IsMatrix() && yt.IsVector():
		n := xt.Mat
		out := make([]float64, n)
		for i := 0; i < n; i++ {
			s := 0.0
			for j := 0; j < n; j++ {
				s += x.F[j*n+i] * y.F[j]
			}
			out[i] = s
		}
		return &ConstVal{Kind: sem.KindFloat, F: out}, true
	case op == "*" && xt.IsVector() && yt.IsMatrix():
		n := yt.Mat
		out := make([]float64, n)
		for j := 0; j < n; j++ {
			s := 0.0
			for i := 0; i < n; i++ {
				s += x.F[i] * y.F[j*n+i]
			}
			out[j] = s
		}
		return &ConstVal{Kind: sem.KindFloat, F: out}, true
	case (op == "+" || op == "-") && xt.IsMatrix() && yt.IsMatrix():
		return EvalBin(op, x, y) // componentwise
	case op == "*" && xt.IsMatrix() && yt.IsScalar():
		return scaleMat(x, y.Float(0)), true
	case op == "*" && xt.IsScalar() && yt.IsMatrix():
		return scaleMat(y, x.Float(0)), true
	case op == "/" && xt.IsMatrix() && yt.IsScalar():
		return scaleMat(x, 1/y.Float(0)), true
	}
	return nil, false
}

func scaleMat(m *ConstVal, s float64) *ConstVal {
	out := make([]float64, len(m.F))
	for i, v := range m.F {
		out[i] = v * s
	}
	return &ConstVal{Kind: sem.KindFloat, F: out}
}

// EvalBin evaluates a binary operation on equal-shaped operands. ok is
// false when the operation cannot be evaluated (e.g. integer division by
// zero, which must not be folded away).
func EvalBin(op string, x, y *ConstVal) (*ConstVal, bool) {
	switch op {
	case "+", "-", "*", "/":
		if x.Kind == sem.KindFloat {
			n := x.Len()
			out := make([]float64, n)
			for i := 0; i < n; i++ {
				a, b := x.F[i], y.F[i]
				switch op {
				case "+":
					out[i] = a + b
				case "-":
					out[i] = a - b
				case "*":
					out[i] = a * b
				case "/":
					out[i] = a / b // GLSL: undefined, platforms give inf; match IEEE
				}
			}
			return &ConstVal{Kind: sem.KindFloat, F: out}, true
		}
		if x.Kind == sem.KindInt {
			n := x.Len()
			out := make([]int64, n)
			for i := 0; i < n; i++ {
				a, b := x.I[i], y.I[i]
				switch op {
				case "+":
					out[i] = a + b
				case "-":
					out[i] = a - b
				case "*":
					out[i] = a * b
				case "/":
					if b == 0 {
						return nil, false
					}
					out[i] = a / b
				}
			}
			return &ConstVal{Kind: sem.KindInt, I: out}, true
		}
		return nil, false
	case "%":
		if x.Kind != sem.KindInt {
			return nil, false
		}
		n := x.Len()
		out := make([]int64, n)
		for i := 0; i < n; i++ {
			if y.I[i] == 0 {
				return nil, false
			}
			out[i] = x.I[i] % y.I[i]
		}
		return &ConstVal{Kind: sem.KindInt, I: out}, true
	case "<", ">", "<=", ">=":
		if x.Len() != 1 {
			return nil, false
		}
		a, b := x.Float(0), y.Float(0)
		var r bool
		switch op {
		case "<":
			r = a < b
		case ">":
			r = a > b
		case "<=":
			r = a <= b
		case ">=":
			r = a >= b
		}
		return BoolConst(r), true
	case "==":
		return BoolConst(x.Equal(y)), true
	case "!=":
		return BoolConst(!x.Equal(y)), true
	case "&&":
		return BoolConst(x.B[0] && y.B[0]), true
	case "||":
		return BoolConst(x.B[0] || y.B[0]), true
	case "^^":
		return BoolConst(x.B[0] != y.B[0]), true
	}
	return nil, false
}

// EvalUn evaluates a unary operation.
func EvalUn(op string, x *ConstVal) (*ConstVal, bool) {
	switch op {
	case "-":
		switch x.Kind {
		case sem.KindFloat:
			out := make([]float64, len(x.F))
			for i, v := range x.F {
				out[i] = -v
			}
			return &ConstVal{Kind: sem.KindFloat, F: out}, true
		case sem.KindInt:
			out := make([]int64, len(x.I))
			for i, v := range x.I {
				out[i] = -v
			}
			return &ConstVal{Kind: sem.KindInt, I: out}, true
		}
	case "!":
		if x.Kind == sem.KindBool && len(x.B) == 1 {
			return BoolConst(!x.B[0]), true
		}
	}
	return nil, false
}

// EvalConstruct concatenates argument components, converting to the target
// type's kind.
func EvalConstruct(t sem.Type, args []*ConstVal) *ConstVal {
	n := t.Components()
	switch t.Kind {
	case sem.KindFloat:
		out := make([]float64, 0, n)
		for _, a := range args {
			for i := 0; i < a.Len(); i++ {
				out = append(out, a.Float(i))
			}
		}
		return &ConstVal{Kind: sem.KindFloat, F: out[:n]}
	case sem.KindInt:
		out := make([]int64, 0, n)
		for _, a := range args {
			for i := 0; i < a.Len(); i++ {
				switch a.Kind {
				case sem.KindFloat:
					out = append(out, int64(a.F[i])) // truncate toward zero
				default:
					out = append(out, a.Int(i))
				}
			}
		}
		return &ConstVal{Kind: sem.KindInt, I: out[:n]}
	case sem.KindBool:
		out := make([]bool, 0, n)
		for _, a := range args {
			for i := 0; i < a.Len(); i++ {
				out = append(out, a.Float(i) != 0)
			}
		}
		return &ConstVal{Kind: sem.KindBool, B: out[:n]}
	}
	return nil
}

// EvalExtract returns components [idx*size, idx*size+size) of agg, where
// size is the element width of the source type.
func EvalExtract(srcType sem.Type, agg *ConstVal, idx int) *ConstVal {
	size := 1
	switch {
	case srcType.IsArray():
		size = srcType.Elem().Components()
	case srcType.IsMatrix():
		size = srcType.Mat
	}
	return slice(agg, idx*size, size)
}

// EvalSwizzle selects components of a vector constant.
func EvalSwizzle(agg *ConstVal, indices []int) *ConstVal {
	out := &ConstVal{Kind: agg.Kind}
	for _, i := range indices {
		switch agg.Kind {
		case sem.KindFloat:
			out.F = append(out.F, agg.F[i])
		case sem.KindInt:
			out.I = append(out.I, agg.I[i])
		case sem.KindBool:
			out.B = append(out.B, agg.B[i])
		}
	}
	return out
}

// EvalInsert replaces element idx of agg with elem.
func EvalInsert(aggType sem.Type, agg, elem *ConstVal, idx int) *ConstVal {
	size := 1
	switch {
	case aggType.IsArray():
		size = aggType.Elem().Components()
	case aggType.IsMatrix():
		size = aggType.Mat
	}
	out := agg.Clone()
	for i := 0; i < size; i++ {
		switch out.Kind {
		case sem.KindFloat:
			out.F[idx*size+i] = elem.Float(i)
		case sem.KindInt:
			out.I[idx*size+i] = elem.Int(i)
		case sem.KindBool:
			out.B[idx*size+i] = elem.Float(i) != 0
		}
	}
	return out
}

func slice(c *ConstVal, off, n int) *ConstVal {
	out := &ConstVal{Kind: c.Kind}
	switch c.Kind {
	case sem.KindFloat:
		out.F = append([]float64(nil), c.F[off:off+n]...)
	case sem.KindInt:
		out.I = append([]int64(nil), c.I[off:off+n]...)
	case sem.KindBool:
		out.B = append([]bool(nil), c.B[off:off+n]...)
	}
	return out
}

// broadcast widens a 1-component constant to n components.
func broadcast(c *ConstVal, n int) *ConstVal {
	if c.Len() == n {
		return c
	}
	out := &ConstVal{Kind: c.Kind}
	for i := 0; i < n; i++ {
		switch c.Kind {
		case sem.KindFloat:
			out.F = append(out.F, c.F[0])
		case sem.KindInt:
			out.I = append(out.I, c.I[0])
		case sem.KindBool:
			out.B = append(out.B, c.B[0])
		}
	}
	return out
}

// EvalBuiltin evaluates a pure math builtin on constants. ok is false for
// builtins that depend on execution context (texturing, derivatives).
func EvalBuiltin(name string, args []*ConstVal) (*ConstVal, bool) {
	switch name {
	case "texture", "texture2D", "textureCube", "textureLod", "texelFetch",
		"dFdx", "dFdy", "fwidth":
		return nil, false
	}
	// Determine result width: max arg width among float args.
	width := 1
	for _, a := range args {
		if a.Len() > width {
			width = a.Len()
		}
	}
	at := func(i int) *ConstVal { return broadcast(args[i], width) }

	cw1 := func(f func(float64) float64) (*ConstVal, bool) {
		x := at(0)
		out := make([]float64, width)
		for i := 0; i < width; i++ {
			out[i] = f(x.Float(i))
		}
		return &ConstVal{Kind: sem.KindFloat, F: out}, true
	}
	cw2 := func(f func(a, b float64) float64) (*ConstVal, bool) {
		x, y := at(0), at(1)
		out := make([]float64, width)
		for i := 0; i < width; i++ {
			out[i] = f(x.Float(i), y.Float(i))
		}
		return &ConstVal{Kind: sem.KindFloat, F: out}, true
	}
	cw3 := func(f func(a, b, c float64) float64) (*ConstVal, bool) {
		x, y, z := at(0), at(1), at(2)
		out := make([]float64, width)
		for i := 0; i < width; i++ {
			out[i] = f(x.Float(i), y.Float(i), z.Float(i))
		}
		return &ConstVal{Kind: sem.KindFloat, F: out}, true
	}
	dotf := func(a, b *ConstVal) float64 {
		s := 0.0
		for i := 0; i < a.Len(); i++ {
			s += a.Float(i) * b.Float(i)
		}
		return s
	}

	switch name {
	case "abs":
		return cw1(math.Abs)
	case "sign":
		return cw1(func(v float64) float64 {
			switch {
			case v > 0:
				return 1
			case v < 0:
				return -1
			}
			return 0
		})
	case "floor":
		return cw1(math.Floor)
	case "ceil":
		return cw1(math.Ceil)
	case "fract":
		return cw1(func(v float64) float64 { return v - math.Floor(v) })
	case "radians":
		return cw1(func(v float64) float64 { return v * math.Pi / 180 })
	case "degrees":
		return cw1(func(v float64) float64 { return v * 180 / math.Pi })
	case "saturate":
		return cw1(func(v float64) float64 { return math.Max(0, math.Min(1, v)) })
	case "sin":
		return cw1(math.Sin)
	case "cos":
		return cw1(math.Cos)
	case "tan":
		return cw1(math.Tan)
	case "asin":
		return cw1(math.Asin)
	case "acos":
		return cw1(math.Acos)
	case "atan":
		if len(args) == 2 {
			return cw2(math.Atan2)
		}
		return cw1(math.Atan)
	case "exp":
		return cw1(math.Exp)
	case "log":
		return cw1(math.Log)
	case "exp2":
		return cw1(math.Exp2)
	case "log2":
		return cw1(math.Log2)
	case "sqrt":
		return cw1(math.Sqrt)
	case "inversesqrt":
		return cw1(func(v float64) float64 { return 1 / math.Sqrt(v) })
	case "pow":
		return cw2(math.Pow)
	case "mod":
		return cw2(func(a, b float64) float64 { return a - b*math.Floor(a/b) })
	case "min":
		return cw2(math.Min)
	case "max":
		return cw2(math.Max)
	case "step":
		return cw2(func(edge, x float64) float64 {
			if x < edge {
				return 0
			}
			return 1
		})
	case "clamp":
		return cw3(func(x, lo, hi float64) float64 { return math.Max(lo, math.Min(hi, x)) })
	case "mix":
		return cw3(func(a, b, t float64) float64 { return a*(1-t) + b*t })
	case "smoothstep":
		return cw3(func(e0, e1, x float64) float64 {
			t := (x - e0) / (e1 - e0)
			t = math.Max(0, math.Min(1, t))
			return t * t * (3 - 2*t)
		})
	case "dot":
		return FloatConst(dotf(args[0], args[1])), true
	case "length":
		return FloatConst(math.Sqrt(dotf(args[0], args[0]))), true
	case "distance":
		s := 0.0
		for i := 0; i < args[0].Len(); i++ {
			d := args[0].Float(i) - args[1].Float(i)
			s += d * d
		}
		return FloatConst(math.Sqrt(s)), true
	case "normalize":
		l := math.Sqrt(dotf(args[0], args[0]))
		out := make([]float64, args[0].Len())
		for i := range out {
			out[i] = args[0].Float(i) / l
		}
		return &ConstVal{Kind: sem.KindFloat, F: out}, true
	case "cross":
		a, b := args[0], args[1]
		return FloatConst(
			a.Float(1)*b.Float(2)-a.Float(2)*b.Float(1),
			a.Float(2)*b.Float(0)-a.Float(0)*b.Float(2),
			a.Float(0)*b.Float(1)-a.Float(1)*b.Float(0),
		), true
	case "reflect":
		i, n := args[0], args[1]
		d := dotf(n, i)
		out := make([]float64, i.Len())
		for k := range out {
			out[k] = i.Float(k) - 2*d*n.Float(k)
		}
		return &ConstVal{Kind: sem.KindFloat, F: out}, true
	case "refract":
		i, n, eta := args[0], args[1], args[2].Float(0)
		d := dotf(n, i)
		k := 1 - eta*eta*(1-d*d)
		out := make([]float64, i.Len())
		if k >= 0 {
			sq := math.Sqrt(k)
			for j := range out {
				out[j] = eta*i.Float(j) - (eta*d+sq)*n.Float(j)
			}
		}
		return &ConstVal{Kind: sem.KindFloat, F: out}, true
	case "faceforward":
		n, i, nref := args[0], args[1], args[2]
		out := make([]float64, n.Len())
		if dotf(nref, i) < 0 {
			for k := range out {
				out[k] = n.Float(k)
			}
		} else {
			for k := range out {
				out[k] = -n.Float(k)
			}
		}
		return &ConstVal{Kind: sem.KindFloat, F: out}, true
	}
	return nil, false
}
