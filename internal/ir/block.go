package ir

// Item is an element of a Block: an instruction or a structured control
// flow region.
type Item interface{ itemNode() }

func (*Instr) itemNode() {}
func (*If) itemNode()    {}
func (*Loop) itemNode()  {}
func (*While) itemNode() {}

// Block is an ordered list of items.
type Block struct {
	Items []Item
}

// Append adds items to the end of the block.
func (b *Block) Append(items ...Item) {
	b.Items = append(b.Items, items...)
}

// If is a structured conditional. Else may be nil or empty.
type If struct {
	Cond *Instr // bool scalar, defined before this item
	Then *Block
	Else *Block // may be nil
}

// Loop is a canonical counted loop:
//
//	for (Counter = Start; Counter < End; Counter += Step) Body
//
// Start, End, and Step are int scalar instructions defined before the loop.
// The body reads the counter with OpLoad. A loop is statically unrollable
// when Start, End, and Step are OpConst and Step > 0.
type Loop struct {
	Counter          *Var
	Start, End, Step *Instr
	Body             *Block
}

// TripCount returns the constant iteration count, or -1 if not static.
func (l *Loop) TripCount() (int, bool) {
	if l.Start.Op != OpConst || l.End.Op != OpConst || l.Step.Op != OpConst {
		return -1, false
	}
	start, end, step := l.Start.Const.Int(0), l.End.Const.Int(0), l.Step.Const.Int(0)
	if step <= 0 {
		return -1, false
	}
	n := 0
	for i := start; i < end; i += step {
		n++
		if n > 1<<16 {
			return -1, false
		}
	}
	return n, true
}

// While is a general loop: each iteration evaluates the Cond block, tests
// CondVal, and runs Body if true. MaxIter bounds interpretation.
type While struct {
	Cond    *Block
	CondVal *Instr // bool scalar defined inside Cond
	Body    *Block
	MaxIter int
}

// WalkInstrs calls fn for every instruction in the block, in order,
// descending into nested regions (including loop bound instructions, which
// live in parent blocks and are not revisited).
func (b *Block) WalkInstrs(fn func(*Instr)) {
	for _, it := range b.Items {
		switch it := it.(type) {
		case *Instr:
			fn(it)
		case *If:
			it.Then.WalkInstrs(fn)
			if it.Else != nil {
				it.Else.WalkInstrs(fn)
			}
		case *Loop:
			it.Body.WalkInstrs(fn)
		case *While:
			it.Cond.WalkInstrs(fn)
			it.Body.WalkInstrs(fn)
		}
	}
}

// WalkBlocks calls fn for this block and every nested block, pre-order.
func (b *Block) WalkBlocks(fn func(*Block)) {
	fn(b)
	for _, it := range b.Items {
		switch it := it.(type) {
		case *If:
			it.Then.WalkBlocks(fn)
			if it.Else != nil {
				it.Else.WalkBlocks(fn)
			}
		case *Loop:
			it.Body.WalkBlocks(fn)
		case *While:
			it.Cond.WalkBlocks(fn)
			it.Body.WalkBlocks(fn)
		}
	}
}

// HasControlFlow reports whether the block contains any nested region.
func (b *Block) HasControlFlow() bool {
	for _, it := range b.Items {
		switch it.(type) {
		case *If, *Loop, *While:
			return true
		}
	}
	return false
}

// CountInstrs returns the number of instructions in the region tree.
func (b *Block) CountInstrs() int {
	n := 0
	b.WalkInstrs(func(*Instr) { n++ })
	return n
}
