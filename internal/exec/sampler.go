package exec

import "math"

// DefaultSampler is the harness's stand-in texture: a smooth, colourful,
// opaque procedural pattern (§IV-B initialises texture bindings to "a
// colourfully-patterned opaque power-of-two image"). The pattern is smooth
// (Lipschitz-continuous) so small floating-point coordinate differences
// from unsafe optimizations produce proportionally small colour
// differences.
type DefaultSampler struct{}

// Sample implements Sampler with a band-limited sinusoidal plasma.
func (DefaultSampler) Sample(coords []float64, lod float64) [4]float64 {
	u, v := 0.0, 0.0
	if len(coords) > 0 {
		u = coords[0]
	}
	if len(coords) > 1 {
		v = coords[1]
	}
	w := 0.0
	if len(coords) > 2 {
		w = coords[2]
	}
	// Mip level fades the pattern toward its mean, like a real mip chain.
	fade := 1.0
	if lod > 0 {
		fade = math.Exp2(-lod)
	}
	r := 0.5 + 0.5*math.Sin(2*math.Pi*(u*3+w))*fade
	g := 0.5 + 0.5*math.Sin(2*math.Pi*(v*5+u*2))*fade
	b := 0.5 + 0.5*math.Sin(2*math.Pi*((u+v)*4-w*2))*fade
	return [4]float64{r, g, b, 1}
}

// CheckerSampler is a hard-edged checkerboard; useful for tests that need
// visible structure.
type CheckerSampler struct {
	// Cells per unit uv; 8 when zero.
	Cells int
}

// Sample implements Sampler.
func (s CheckerSampler) Sample(coords []float64, _ float64) [4]float64 {
	cells := s.Cells
	if cells == 0 {
		cells = 8
	}
	u, v := 0.0, 0.0
	if len(coords) > 0 {
		u = coords[0]
	}
	if len(coords) > 1 {
		v = coords[1]
	}
	iu := int(math.Floor(u * float64(cells)))
	iv := int(math.Floor(v * float64(cells)))
	if (iu+iv)%2 == 0 {
		return [4]float64{0.9, 0.9, 0.9, 1}
	}
	return [4]float64{0.1, 0.1, 0.1, 1}
}

// ConstSampler returns a fixed colour regardless of coordinates.
type ConstSampler struct {
	RGBA [4]float64
}

// Sample implements Sampler.
func (s ConstSampler) Sample([]float64, float64) [4]float64 { return s.RGBA }
