package exec

import (
	"math"
	"testing"
	"testing/quick"

	"shaderopt/internal/glsl"
	"shaderopt/internal/ir"
	"shaderopt/internal/lower"
)

func TestDefaultSamplerProperties(t *testing.T) {
	s := DefaultSampler{}
	// Opaque everywhere, channels in [0,1].
	err := quick.Check(func(u, v float64) bool {
		if math.IsNaN(u) || math.IsNaN(v) || math.Abs(u) > 1e6 || math.Abs(v) > 1e6 {
			return true
		}
		px := s.Sample([]float64{u, v}, -1)
		if px[3] != 1 {
			return false
		}
		for c := 0; c < 3; c++ {
			if px[c] < 0 || px[c] > 1 {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 300})
	if err != nil {
		t.Error(err)
	}
	// Smooth: nearby coordinates give nearby colours (needed for the unsafe
	// FP tolerance tests).
	a := s.Sample([]float64{0.3, 0.7}, -1)
	b := s.Sample([]float64{0.3 + 1e-7, 0.7}, -1)
	for c := 0; c < 4; c++ {
		if math.Abs(a[c]-b[c]) > 1e-5 {
			t.Errorf("sampler not smooth at channel %d", c)
		}
	}
	// Colourful: channels differ somewhere.
	px := s.Sample([]float64{0.13, 0.29}, -1)
	if px[0] == px[1] && px[1] == px[2] {
		t.Error("pattern is grayscale at a generic point")
	}
}

func TestDefaultSamplerMipFade(t *testing.T) {
	s := DefaultSampler{}
	sharp := s.Sample([]float64{0.13, 0.29}, 0)
	blurred := s.Sample([]float64{0.13, 0.29}, 8)
	// High mip levels fade toward the 0.5 mean.
	for c := 0; c < 3; c++ {
		if math.Abs(blurred[c]-0.5) > math.Abs(sharp[c]-0.5)+1e-9 {
			t.Errorf("channel %d did not fade toward mean: %v vs %v", c, sharp[c], blurred[c])
		}
	}
}

func TestCheckerSampler(t *testing.T) {
	s := CheckerSampler{Cells: 2}
	a := s.Sample([]float64{0.1, 0.1}, -1)
	b := s.Sample([]float64{0.6, 0.1}, -1)
	if a == b {
		t.Error("adjacent cells should differ")
	}
	if (CheckerSampler{}).Sample([]float64{0, 0}, -1)[3] != 1 {
		t.Error("alpha")
	}
}

func TestConstSampler(t *testing.T) {
	s := ConstSampler{RGBA: [4]float64{0.1, 0.2, 0.3, 0.4}}
	if s.Sample([]float64{9, 9}, 3) != [4]float64{0.1, 0.2, 0.3, 0.4} {
		t.Error("const sampler")
	}
}

func TestRunMissingUniform(t *testing.T) {
	sh := glsl.MustParse("uniform float k;\nout vec4 c;\nvoid main() { c = vec4(k); }")
	prog, err := lower.Lower(sh, "m")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(prog, &Env{}); err == nil {
		t.Error("want error for missing uniform")
	}
}

func TestRunStepLimit(t *testing.T) {
	sh := glsl.MustParse(`
out vec4 c;
void main() {
    float s = 0.0;
    for (int i = 0; i < 30000; i++) { s += 1.0; }
    c = vec4(s);
}
`)
	prog, err := lower.Lower(sh, "limit")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(prog, &Env{MaxSteps: 1000}); err == nil {
		t.Error("want step-limit error")
	}
	if _, err := Run(prog, &Env{}); err != nil {
		t.Errorf("default budget should suffice: %v", err)
	}
}

func TestRunWhileGuard(t *testing.T) {
	sh := glsl.MustParse(`
out vec4 c;
void main() {
    float s = 1.0;
    while (s > 0.0) { s = s + 1.0; }
    c = vec4(s);
}
`)
	prog, err := lower.Lower(sh, "inf")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(prog, &Env{}); err == nil {
		t.Error("runaway while must hit the guard")
	}
}

func TestDynamicIndexClamped(t *testing.T) {
	sh := glsl.MustParse(`
uniform int idx;
out vec4 c;
void main() {
    const float w[3] = float[](1.0, 2.0, 3.0);
    c = vec4(w[idx]);
}
`)
	prog, err := lower.Lower(sh, "oob")
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(prog, &Env{Uniforms: map[string]*ir.ConstVal{"idx": ir.IntConst(99)}})
	if err != nil {
		t.Fatal(err)
	}
	// GLSL robust-access style clamp to the last element.
	if res.Outputs["c"].F[0] != 3 {
		t.Errorf("out-of-bounds index not clamped: %v", res.Outputs["c"])
	}
}

func TestDerivativesAreZero(t *testing.T) {
	sh := glsl.MustParse(`
in vec2 uv;
out vec4 c;
void main() { c = vec4(dFdx(uv.x), dFdy(uv.y), fwidth(uv.x), 1.0); }
`)
	prog, err := lower.Lower(sh, "deriv")
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(prog, &Env{Inputs: map[string]*ir.ConstVal{"uv": ir.FloatConst(0.5, 0.5)}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Outputs["c"].F[0] != 0 || res.Outputs["c"].F[1] != 0 {
		t.Error("derivatives of constant harness inputs should be zero")
	}
}

func TestStepsCounted(t *testing.T) {
	sh := glsl.MustParse("out vec4 c;\nvoid main() { c = vec4(1.0); }")
	prog, err := lower.Lower(sh, "steps")
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(prog, &Env{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Steps <= 0 {
		t.Error("steps not counted")
	}
}
