// Package exec executes IR programs: a functional interpreter (used for
// optimizer correctness testing and image rendering) and texture samplers,
// including the harness's default "colourfully-patterned opaque" procedural
// texture (§IV-B).
package exec

import (
	"errors"
	"fmt"

	"shaderopt/internal/ir"
	"shaderopt/internal/sem"
)

// Sampler provides texel data for texture builtins.
type Sampler interface {
	// Sample returns RGBA at the given coordinates (2 for 2D, 3 for cube)
	// and explicit LOD (negative for automatic).
	Sample(coords []float64, lod float64) [4]float64
}

// Env supplies runtime inputs for one shader invocation.
type Env struct {
	Uniforms map[string]*ir.ConstVal
	Inputs   map[string]*ir.ConstVal
	Samplers map[string]Sampler
	// MaxSteps bounds execution; 0 means the default (10M).
	MaxSteps int
}

// Result holds the outputs of one invocation.
type Result struct {
	Outputs   map[string]*ir.ConstVal
	Discarded bool
	Steps     int
}

// errDiscard unwinds execution on discard.
var errDiscard = errors.New("discard")

// errStepLimit aborts runaway loops.
var errStepLimit = errors.New("step limit exceeded")

// Run interprets the program under env.
func Run(p *ir.Program, env *Env) (*Result, error) {
	maxSteps := env.MaxSteps
	if maxSteps == 0 {
		maxSteps = 10_000_000
	}
	it := &interp{
		p:        p,
		env:      env,
		values:   make(map[*ir.Instr]*ir.ConstVal),
		vars:     make(map[*ir.Var]*ir.ConstVal),
		maxSteps: maxSteps,
	}
	// Default-initialize vars to zero (defensive; well-formed shaders store
	// before loading).
	for _, v := range p.Vars {
		it.vars[v] = zeroValue(v.Type)
	}
	err := it.block(p.Body)
	res := &Result{Outputs: map[string]*ir.ConstVal{}, Steps: it.steps}
	if errors.Is(err, errDiscard) {
		res.Discarded = true
		err = nil
	}
	if err != nil {
		return nil, err
	}
	for _, out := range p.Outputs {
		res.Outputs[out.Name] = it.vars[out]
	}
	return res, nil
}

type interp struct {
	p        *ir.Program
	env      *Env
	values   map[*ir.Instr]*ir.ConstVal
	vars     map[*ir.Var]*ir.ConstVal
	steps    int
	maxSteps int
}

func zeroValue(t sem.Type) *ir.ConstVal {
	n := t.Components()
	switch t.Kind {
	case sem.KindInt:
		return &ir.ConstVal{Kind: sem.KindInt, I: make([]int64, n)}
	case sem.KindBool:
		return &ir.ConstVal{Kind: sem.KindBool, B: make([]bool, n)}
	default:
		return &ir.ConstVal{Kind: sem.KindFloat, F: make([]float64, n)}
	}
}

func (it *interp) block(b *ir.Block) error {
	for _, item := range b.Items {
		switch item := item.(type) {
		case *ir.Instr:
			if err := it.instr(item); err != nil {
				return err
			}
		case *ir.If:
			c := it.values[item.Cond]
			if c == nil {
				return fmt.Errorf("if condition %%%d unevaluated", item.Cond.ID)
			}
			if c.B[0] {
				if err := it.block(item.Then); err != nil {
					return err
				}
			} else if item.Else != nil {
				if err := it.block(item.Else); err != nil {
					return err
				}
			}
		case *ir.Loop:
			start := it.values[item.Start].Int(0)
			end := it.values[item.End].Int(0)
			step := it.values[item.Step].Int(0)
			if step <= 0 {
				return fmt.Errorf("non-positive loop step %d", step)
			}
			for i := start; i < end; i += step {
				it.vars[item.Counter] = ir.IntConst(i)
				if err := it.block(item.Body); err != nil {
					return err
				}
			}
		case *ir.While:
			guard := item.MaxIter
			if guard <= 0 {
				guard = 4096
			}
			for iter := 0; ; iter++ {
				if iter >= guard {
					return fmt.Errorf("while loop exceeded %d iterations", guard)
				}
				if err := it.block(item.Cond); err != nil {
					return err
				}
				if !it.values[item.CondVal].B[0] {
					break
				}
				if err := it.block(item.Body); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

func (it *interp) instr(in *ir.Instr) error {
	it.steps++
	if it.steps > it.maxSteps {
		return errStepLimit
	}
	arg := func(i int) *ir.ConstVal { return it.values[in.Args[i]] }
	switch in.Op {
	case ir.OpConst:
		it.values[in] = in.Const
	case ir.OpUniform:
		v, ok := it.env.Uniforms[in.Global.Name]
		if !ok {
			if in.Global.Type.IsSampler() {
				// Sampler uniforms carry no value; texture calls resolve the
				// sampler by global name.
				it.values[in] = ir.IntConst(0)
				return nil
			}
			return fmt.Errorf("uniform %q not provided", in.Global.Name)
		}
		it.values[in] = v
	case ir.OpInput:
		v, ok := it.env.Inputs[in.Global.Name]
		if !ok {
			return fmt.Errorf("input %q not provided", in.Global.Name)
		}
		it.values[in] = v
	case ir.OpBin:
		r, ok := ir.EvalBinTyped(in.BinOp, in.Args[0].Type, in.Args[1].Type, arg(0), arg(1))
		if !ok {
			return fmt.Errorf("%%%d: cannot evaluate %q on %s", in.ID, in.BinOp, arg(0))
		}
		it.values[in] = r
	case ir.OpUn:
		r, ok := ir.EvalUn(in.UnOp, arg(0))
		if !ok {
			return fmt.Errorf("%%%d: cannot evaluate unary %q", in.ID, in.UnOp)
		}
		it.values[in] = r
	case ir.OpCall:
		return it.call(in)
	case ir.OpConstruct:
		args := make([]*ir.ConstVal, len(in.Args))
		for i := range in.Args {
			args[i] = arg(i)
		}
		it.values[in] = ir.EvalConstruct(in.Type, args)
	case ir.OpExtract:
		it.values[in] = ir.EvalExtract(in.Args[0].Type, arg(0), in.Index)
	case ir.OpExtractDyn:
		idx := int(arg(1).Int(0))
		n := aggLen(in.Args[0].Type)
		if idx < 0 || idx >= n {
			idx = clamp(idx, 0, n-1) // GLSL out-of-bounds: robust access
		}
		it.values[in] = ir.EvalExtract(in.Args[0].Type, arg(0), idx)
	case ir.OpSwizzle:
		it.values[in] = ir.EvalSwizzle(arg(0), in.Indices)
	case ir.OpInsert:
		it.values[in] = ir.EvalInsert(in.Args[0].Type, arg(0), arg(1), in.Index)
	case ir.OpInsertDyn:
		idx := int(arg(1).Int(0))
		n := aggLen(in.Args[0].Type)
		idx = clamp(idx, 0, n-1)
		it.values[in] = ir.EvalInsert(in.Args[0].Type, arg(0), arg(2), idx)
	case ir.OpSelect:
		if arg(0).B[0] {
			it.values[in] = arg(1)
		} else {
			it.values[in] = arg(2)
		}
	case ir.OpLoad:
		v, ok := it.vars[in.Var]
		if !ok {
			return fmt.Errorf("load of uninitialized var %q", in.Var.Name)
		}
		it.values[in] = v
	case ir.OpStore:
		it.vars[in.Var] = arg(0)
	case ir.OpDiscard:
		return errDiscard
	default:
		return fmt.Errorf("unknown op %v", in.Op)
	}
	return nil
}

func aggLen(t sem.Type) int {
	switch {
	case t.IsArray():
		return t.ArrayLen
	case t.IsMatrix():
		return t.Mat
	default:
		return t.Vec
	}
}

func clamp(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func (it *interp) call(in *ir.Instr) error {
	switch in.Callee {
	case "texture", "texture2D", "textureCube", "textureLod", "texelFetch":
		sampName := ""
		if in.Args[0].Op == ir.OpUniform {
			sampName = in.Args[0].Global.Name
		}
		s := it.env.Samplers[sampName]
		if s == nil {
			s = DefaultSampler{}
		}
		coordsVal := it.values[in.Args[1]]
		coords := make([]float64, coordsVal.Len())
		for i := range coords {
			coords[i] = coordsVal.Float(i)
		}
		lod := -1.0
		if len(in.Args) == 3 {
			lod = it.values[in.Args[2]].Float(0)
		}
		rgba := s.Sample(coords, lod)
		it.values[in] = ir.FloatConst(rgba[0], rgba[1], rgba[2], rgba[3])
		return nil
	case "dFdx", "dFdy", "fwidth":
		// Constant harness inputs have zero screen-space derivatives.
		n := in.Type.Components()
		it.values[in] = &ir.ConstVal{Kind: sem.KindFloat, F: make([]float64, n)}
		return nil
	}
	args := make([]*ir.ConstVal, len(in.Args))
	for i := range in.Args {
		args[i] = it.values[in.Args[i]]
	}
	r, ok := ir.EvalBuiltin(in.Callee, args)
	if !ok {
		return fmt.Errorf("%%%d: cannot evaluate builtin %q", in.ID, in.Callee)
	}
	it.values[in] = r
	return nil
}
