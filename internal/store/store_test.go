package store

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// testCounter is a minimal Counter sink.
type testCounter struct{ v atomic.Int64 }

func (c *testCounter) Add(d int64) { c.v.Add(d) }
func (c *testCounter) Value() int64 {
	return c.v.Load()
}

func open(t *testing.T, maxBytes int64) *Store {
	t.Helper()
	s, err := Open(t.TempDir(), maxBytes)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestPutGetRoundTrip(t *testing.T) {
	s := open(t, 0)
	keys := []string{"a", "", "key with\x00nul and\nnewline", "vendor\x00fp\x00proto"}
	for i, k := range keys {
		payload := []byte(fmt.Sprintf("payload-%d", i))
		if err := s.Put(k, payload); err != nil {
			t.Fatalf("put %q: %v", k, err)
		}
		got, ok := s.Get(k)
		if !ok || string(got) != string(payload) {
			t.Fatalf("get %q = %q, %v; want %q", k, got, ok, payload)
		}
	}
	if _, ok := s.Get("absent"); ok {
		t.Fatal("absent key reported a hit")
	}
	if n := s.Len(); n != len(keys) {
		t.Fatalf("Len = %d, want %d", n, len(keys))
	}
}

func TestReopenServesWarmEntries(t *testing.T) {
	dir := t.TempDir()
	s1, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := s1.Put("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	if err := s1.Sync(); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := s2.Get("k")
	if !ok || string(got) != "v" {
		t.Fatalf("warm reopen Get = %q, %v; want \"v\"", got, ok)
	}
	if s2.SizeBytes() != s1.SizeBytes() {
		t.Fatalf("reopen size %d != writer size %d", s2.SizeBytes(), s1.SizeBytes())
	}
}

// entryPath locates the single on-disk entry file for key.
func entryPath(t *testing.T, s *Store, key string) string {
	t.Helper()
	sum := sha256.Sum256([]byte(key))
	name := hex.EncodeToString(sum[:])
	return filepath.Join(s.Dir(), name[:2], name[2:]+entryExt)
}

// corruptions maps a name to a mutation of a valid on-disk entry. Every
// mutation must degrade to a cache miss — never an error, never a wrong
// payload — and the corrupt entry must be dropped so the slot heals.
var corruptions = map[string]func([]byte) []byte{
	"truncated header": func(raw []byte) []byte { return raw[:headerSize/2] },
	"truncated payload": func(raw []byte) []byte {
		return raw[:len(raw)-1]
	},
	"bad checksum": func(raw []byte) []byte {
		raw[len(raw)-1] ^= 0xff
		return raw
	},
	"wrong version": func(raw []byte) []byte {
		raw[7] ^= 0xff
		return raw
	},
	"bad magic": func(raw []byte) []byte {
		raw[0] = 'X'
		return raw
	},
	"empty file": func([]byte) []byte { return nil },
	"extra trailing bytes": func(raw []byte) []byte {
		return append(raw, 0xAA)
	},
}

func TestCorruptEntriesDegradeToMiss(t *testing.T) {
	for name, mutate := range corruptions {
		t.Run(name, func(t *testing.T) {
			s := open(t, 0)
			var hits, misses, corrupt testCounter
			s.Instrument(&hits, &misses, nil, nil, &corrupt)
			if err := s.Put("k", []byte("payload")); err != nil {
				t.Fatal(err)
			}
			path := entryPath(t, s, "k")
			raw, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, mutate(raw), 0o644); err != nil {
				t.Fatal(err)
			}
			if got, ok := s.Get("k"); ok {
				t.Fatalf("corrupt entry returned a hit: %q", got)
			}
			if _, err := os.Stat(path); !os.IsNotExist(err) {
				t.Fatalf("corrupt entry not dropped: stat err = %v", err)
			}
			if corrupt.Value() != 1 || misses.Value() != 1 || hits.Value() != 0 {
				t.Fatalf("counters corrupt=%d misses=%d hits=%d, want 1, 1, 0",
					corrupt.Value(), misses.Value(), hits.Value())
			}
			// The slot heals: a rewrite serves again.
			if err := s.Put("k", []byte("fresh")); err != nil {
				t.Fatal(err)
			}
			if got, ok := s.Get("k"); !ok || string(got) != "fresh" {
				t.Fatalf("healed slot Get = %q, %v; want \"fresh\"", got, ok)
			}
		})
	}
}

func TestEvictionKeepsRecentlyUsed(t *testing.T) {
	// Each entry is headerSize + 8 payload bytes; bound to ~4 entries.
	entry := int64(headerSize + 8)
	s := open(t, 4*entry)
	var evictions testCounter
	s.Instrument(nil, nil, nil, &evictions, nil)

	put := func(k string) {
		t.Helper()
		if err := s.Put(k, []byte("8bytes!!")); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 4; i++ {
		put(fmt.Sprintf("k%d", i))
		// File mtimes order the LRU queue; space the writes out so
		// coarse filesystem timestamps still distinguish them.
		time.Sleep(5 * time.Millisecond)
	}
	// Touch k0 so k1 becomes the eviction victim.
	if _, ok := s.Get("k0"); !ok {
		t.Fatal("k0 missing before eviction")
	}
	time.Sleep(5 * time.Millisecond)
	put("k4")

	if _, ok := s.Get("k1"); ok {
		t.Fatal("least-recently-used entry k1 survived eviction")
	}
	for _, k := range []string{"k0", "k2", "k3", "k4"} {
		if _, ok := s.Get(k); !ok {
			t.Fatalf("entry %s evicted out of LRU order", k)
		}
	}
	if evictions.Value() == 0 {
		t.Fatal("eviction sink never fired")
	}
	if s.SizeBytes() > s.Bound() {
		t.Fatalf("footprint %d exceeds bound %d after eviction", s.SizeBytes(), s.Bound())
	}
}

func TestOversizeStoreIsUnboundedWhenZero(t *testing.T) {
	s := open(t, 0)
	for i := 0; i < 50; i++ {
		if err := s.Put(fmt.Sprintf("k%d", i), make([]byte, 1024)); err != nil {
			t.Fatal(err)
		}
	}
	if n := s.Len(); n != 50 {
		t.Fatalf("unbounded store evicted: Len = %d, want 50", n)
	}
}

// TestConcurrentReadersWritersRace hammers one store with overlapping
// readers, writers, and corruptors under -race: every Get must return
// either a complete payload for the key or a miss — never an error, a
// torn read, or another key's payload.
func TestConcurrentReadersWritersRace(t *testing.T) {
	s := open(t, 64*1024)
	var wg sync.WaitGroup
	const keys = 16
	payloadFor := func(k int) []byte {
		return []byte(fmt.Sprintf("key-%d-payload-%032d", k, k))
	}
	iters := 200
	if testing.Short() {
		iters = 50
	}
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				k := (g + i) % keys
				key := fmt.Sprintf("k%d", k)
				switch {
				case g%4 == 3 && i%17 == 0:
					// Corrupt the on-disk entry out from underneath
					// the readers; they must degrade to a miss.
					path := entryPath(t, s, key)
					os.WriteFile(path, []byte("torn"), 0o644)
				case g%2 == 0:
					if err := s.Put(key, payloadFor(k)); err != nil {
						t.Errorf("put: %v", err)
						return
					}
				default:
					if got, ok := s.Get(key); ok {
						if string(got) != string(payloadFor(k)) {
							t.Errorf("Get(%s) returned wrong payload %q", key, got)
							return
						}
					}
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestWriteDuringEvictKeepsAccounting drives a bounded store with
// concurrent writers so evictions run while Puts land mid-walk — the
// interleaving whose naive size resync (s.size = walk total) silently
// shed the concurrent writers' bytes from the accounting. After the
// storm settles, the tracked footprint must match a fresh scan of the
// directory: no leak, no phantom bytes. Run under -race.
func TestWriteDuringEvictKeepsAccounting(t *testing.T) {
	dir := t.TempDir()
	// Bound small enough that almost every Put triggers an evict pass.
	s, err := Open(dir, 4096)
	if err != nil {
		t.Fatal(err)
	}
	payload := make([]byte, 512)
	iters := 120
	if testing.Short() {
		iters = 30
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				key := fmt.Sprintf("g%d-i%d", g, i)
				if err := s.Put(key, payload); err != nil {
					t.Errorf("put: %v", err)
					return
				}
				s.Get(key)
			}
		}(g)
	}
	wg.Wait()

	// One quiescent evict pass resyncs size to the directory contents.
	s.evict()
	tracked := s.SizeBytes()
	onDisk, err := s.scanSize()
	if err != nil {
		t.Fatal(err)
	}
	if tracked != onDisk {
		t.Fatalf("tracked size %d diverges from on-disk footprint %d", tracked, onDisk)
	}
	if max := s.Bound(); onDisk > max {
		t.Fatalf("footprint %d exceeds bound %d after eviction settled", onDisk, max)
	}
}

// TestStaleTempCleanup pins the orphan sweep: a crashed writer's old
// put-*.tmp file is deleted at Open and by evict passes, while a fresh
// temp file (a Put possibly still in flight) survives.
func TestStaleTempCleanup(t *testing.T) {
	dir := t.TempDir()
	shard := filepath.Join(dir, "ab")
	if err := os.MkdirAll(shard, 0o755); err != nil {
		t.Fatal(err)
	}
	stale := filepath.Join(shard, "put-crashed.tmp")
	fresh := filepath.Join(shard, "put-inflight.tmp")
	for _, p := range []string{stale, fresh} {
		if err := os.WriteFile(p, []byte("partial"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	old := time.Now().Add(-2 * tmpMaxAge)
	if err := os.Chtimes(stale, old, old); err != nil {
		t.Fatal(err)
	}

	if _, err := Open(dir, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(stale); !os.IsNotExist(err) {
		t.Errorf("stale temp file survived Open: %v", err)
	}
	if _, err := os.Stat(fresh); err != nil {
		t.Errorf("fresh temp file was swept: %v", err)
	}
}

// TestEvictorsAreSerialized pins that a second goroutine hitting the
// over-bound check while an evict walk runs does not start a second
// walk: TryLock makes it leave, and the running evictor's delta resync
// covers the bytes it wrote. The observable here is simply that heavy
// contention settles to a consistent, bounded store (the lock itself is
// unobservable), complementing the accounting test above.
func TestEvictorsAreSerialized(t *testing.T) {
	s := open(t, 2048)
	payload := make([]byte, 700) // ~3 entries fit; every Put evicts
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				if err := s.Put(fmt.Sprintf("s%d-%d", g, i), payload); err != nil {
					t.Errorf("put: %v", err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	s.evict()
	if size, max := s.SizeBytes(), s.Bound(); size > max {
		t.Fatalf("size %d over bound %d after settling", size, max)
	}
}
