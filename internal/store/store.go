// Package store is a persistent, content-addressed on-disk cache: the
// durable layer under a measurement session's in-memory LRUs, so driver
// compiles and measurement scores survive process restarts and are shared
// across sessions (and across the sweepd daemon's clients). Keys are
// arbitrary strings; the store addresses each entry by the SHA-256 of its
// key, sharded into subdirectories by hash prefix so no single directory
// grows with the corpus.
//
// Durability and integrity come before freshness: writes go to a
// temporary file in the entry's shard and are renamed into place
// atomically, every entry carries a versioned header with a payload
// checksum, and any entry that fails validation — truncated, corrupted,
// or written by a different format version — is deleted and reported as
// a miss, never as an error or a wrong value. The cached artefacts are
// deterministic recomputations, so degrading to a miss only costs time.
//
// The store is size-bounded: when the on-disk footprint exceeds the
// bound, least-recently-accessed entries are evicted. Access recency is
// tracked by touching an entry's file times on every hit (classic atime
// is unreliable under noatime mounts, so the store maintains its own
// clock via Chtimes).
package store

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"
)

// Version is the on-disk entry format version. Entries with any other
// version are dropped as corrupt (a format change never misreads old
// state, it just recomputes).
const Version = 1

// magic opens every entry file; a file without it was never a complete
// store entry.
var magic = [4]byte{'S', 'O', 'P', 'T'}

// headerSize is the fixed entry prologue: magic, version (uint32 BE),
// payload length (uint64 BE), and the payload's SHA-256.
const headerSize = 4 + 4 + 8 + sha256.Size

// entryExt marks complete entries; temporary files use a different
// suffix so a crashed half-written temp file is never read as an entry.
const entryExt = ".sop"

// Counter is the event-sink interface Instrument accepts (anything with
// an atomic Add, such as a telemetry registry counter); keeping it an
// interface keeps this package dependency-free, mirroring internal/lru.
type Counter interface {
	Add(delta int64)
}

// Store is a size-bounded persistent key→blob cache. All methods are
// safe for concurrent use, including by multiple goroutines of multiple
// processes sharing the directory (writes are atomic renames; the only
// cross-process race is benign duplicated recomputation).
type Store struct {
	dir string
	max int64 // bound on summed file bytes; <= 0 means unbounded

	mu   sync.Mutex
	size int64 // tracked on-disk footprint (headers + payloads)

	// evictMu serializes evictors: without it two goroutines passing the
	// over-bound check together would walk and resync concurrently, each
	// clobbering the other's accounting.
	evictMu sync.Mutex

	hits, misses, writes, evictions, corrupt Counter
}

// tmpMaxAge is how old an orphaned put-*.tmp file must be before the
// eviction sweep deletes it. A live Put holds its temp file for
// milliseconds; anything this old was left by a crashed writer. The
// threshold keeps the sweep from racing a concurrent Put's rename.
const tmpMaxAge = time.Hour

// Open opens (creating if needed) a store rooted at dir, bounded to
// maxBytes of on-disk entry data (<= 0 means unbounded). The existing
// footprint is measured once at open; entries written by other processes
// afterwards are still readable but are not counted against this
// handle's bound until they are rewritten through it.
func Open(dir string, maxBytes int64) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	s := &Store{dir: dir, max: maxBytes}
	size, err := s.scanSize()
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	s.size = size
	// A previous process may have crashed mid-Put; heal its orphaned
	// temp files now rather than waiting for eviction pressure.
	s.sweepStaleTemps(time.Now().Add(-tmpMaxAge))
	return s, nil
}

// Instrument wires store events to external counters — hits and misses
// on Get, completed writes on Put, evicted entries, and corrupt entries
// dropped — so a session surfaces store traffic uniformly through its
// telemetry registry. Any sink may be nil. Call before the store is
// shared; sinks observe events from then on.
func (s *Store) Instrument(hits, misses, writes, evictions, corrupt Counter) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.hits, s.misses, s.writes, s.evictions, s.corrupt = hits, misses, writes, evictions, corrupt
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// Bound returns the configured maximum on-disk footprint in bytes
// (<= 0 means unbounded).
func (s *Store) Bound() int64 { return s.max }

// SizeBytes returns the tracked on-disk footprint of complete entries.
func (s *Store) SizeBytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.size
}

// Len walks the store and counts complete entries. It is an O(entries)
// directory walk, intended for tests and diagnostics, not hot paths.
func (s *Store) Len() int {
	n := 0
	s.walkEntries(func(string, fs.FileInfo) { n++ })
	return n
}

// pathFor maps a key to its entry file: the hex SHA-256 of the key,
// sharded by its first two characters. The key itself never appears on
// disk, so keys may contain separators, NULs, or whole source texts.
func (s *Store) pathFor(key string) (shardDir, path string) {
	sum := sha256.Sum256([]byte(key))
	name := hex.EncodeToString(sum[:])
	shardDir = filepath.Join(s.dir, name[:2])
	return shardDir, filepath.Join(shardDir, name[2:]+entryExt)
}

// Get returns the payload stored for key. Any validation failure —
// missing file, short header, bad magic, wrong version, truncated
// payload, checksum mismatch — deletes the entry (if present) and
// reports a miss. A hit refreshes the entry's access time so eviction
// keeps the warm working set.
func (s *Store) Get(key string) ([]byte, bool) {
	_, path := s.pathFor(key)
	raw, err := os.ReadFile(path)
	if err != nil {
		s.count(s.misses)
		return nil, false
	}
	payload, ok := decodeEntry(raw)
	if !ok {
		// Corrupt or foreign-format entry: drop it so the slot heals on
		// the next write, and account the freed bytes.
		s.dropFile(path, int64(len(raw)))
		s.count(s.corrupt)
		s.count(s.misses)
		return nil, false
	}
	now := time.Now()
	_ = os.Chtimes(path, now, now) // LRU clock; best-effort
	s.count(s.hits)
	return payload, true
}

// Put stores payload under key, atomically: the entry is assembled in a
// temporary file in the destination shard and renamed into place, so
// concurrent readers see either the old complete entry or the new one,
// never a partial write. When the store exceeds its size bound, the
// least-recently-accessed entries are evicted after the write.
func (s *Store) Put(key string, payload []byte) error {
	shardDir, path := s.pathFor(key)
	if err := os.MkdirAll(shardDir, 0o755); err != nil {
		return fmt.Errorf("store put: %w", err)
	}
	entry := encodeEntry(payload)

	tmp, err := os.CreateTemp(shardDir, "put-*.tmp")
	if err != nil {
		return fmt.Errorf("store put: %w", err)
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(entry); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("store put: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("store put: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("store put: %w", err)
	}

	// Account for an overwrite before the rename clobbers the old entry.
	var prev int64
	if fi, err := os.Stat(path); err == nil {
		prev = fi.Size()
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("store put: %w", err)
	}
	s.count(s.writes)

	s.mu.Lock()
	s.size += int64(len(entry)) - prev
	over := s.max > 0 && s.size > s.max
	s.mu.Unlock()
	if over {
		s.evict()
	}
	return nil
}

// Sync flushes the store's root directory entry, pushing the rename
// journal of recent writes to disk — the daemon calls it on graceful
// shutdown so a warm restart sees every completed entry.
func (s *Store) Sync() error {
	d, err := os.Open(s.dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// evict deletes least-recently-accessed entries until the footprint is
// back under the bound. Recency is the file mtime, which Get refreshes
// on every hit. One goroutine evicts at a time (evictMu; a second
// arrival leaves immediately — the running evictor's resync already
// accounts the bytes it added). The walk tolerates entries disappearing
// underneath it (another process). The sweep also removes orphaned
// temp files old enough that no live Put can still own them.
func (s *Store) evict() {
	if !s.evictMu.TryLock() {
		return
	}
	defer s.evictMu.Unlock()

	s.mu.Lock()
	if s.max <= 0 || s.size <= s.max {
		s.mu.Unlock()
		return
	}
	// Snapshot the tracked size before walking: the resync below must
	// preserve accounting deltas posted while the walk runs.
	walkStart := s.size
	s.mu.Unlock()

	s.sweepStaleTemps(time.Now().Add(-tmpMaxAge))

	type cand struct {
		path  string
		size  int64
		atime time.Time
	}
	var cands []cand
	s.walkEntries(func(path string, fi fs.FileInfo) {
		cands = append(cands, cand{path: path, size: fi.Size(), atime: fi.ModTime()})
	})
	sort.Slice(cands, func(i, j int) bool {
		if !cands[i].atime.Equal(cands[j].atime) {
			return cands[i].atime.Before(cands[j].atime)
		}
		return cands[i].path < cands[j].path
	})

	// Resync the tracked footprint to what the walk actually saw, so
	// cross-process writes neither leak accounting nor over-evict — but
	// keep the deltas concurrent Puts and drops posted since the walk
	// began (s.size - walkStart): those entries landed after the walk
	// read their shards, so they are real bytes the walk's total missed.
	// Overwriting with the bare total would silently shed them from the
	// accounting and let the store grow past its bound for good.
	total := int64(0)
	for _, c := range cands {
		total += c.size
	}
	s.mu.Lock()
	s.size = total + (s.size - walkStart)
	if s.size < 0 {
		s.size = 0
	}
	s.mu.Unlock()

	for _, c := range cands {
		s.mu.Lock()
		done := s.size <= s.max
		s.mu.Unlock()
		if done {
			break
		}
		if err := os.Remove(c.path); err == nil {
			s.mu.Lock()
			s.size -= c.size
			s.mu.Unlock()
			s.count(s.evictions)
		}
	}
}

// sweepStaleTemps removes put-*.tmp files last modified before cutoff:
// the half-written leftovers of crashed writers. They are invisible to
// Get and to the entry walk (wrong extension) but occupy disk forever if
// nothing deletes them. Temp bytes were never added to the tracked size,
// so removal adjusts no accounting.
func (s *Store) sweepStaleTemps(cutoff time.Time) {
	shards, err := os.ReadDir(s.dir)
	if err != nil {
		return
	}
	for _, shard := range shards {
		if !shard.IsDir() {
			continue
		}
		files, err := os.ReadDir(filepath.Join(s.dir, shard.Name()))
		if err != nil {
			continue
		}
		for _, f := range files {
			if f.IsDir() || filepath.Ext(f.Name()) != ".tmp" {
				continue
			}
			fi, err := f.Info()
			if err != nil || !fi.ModTime().Before(cutoff) {
				continue
			}
			_ = os.Remove(filepath.Join(s.dir, shard.Name(), f.Name()))
		}
	}
}

// dropFile removes a corrupt entry and releases its accounted bytes.
func (s *Store) dropFile(path string, size int64) {
	if err := os.Remove(path); err == nil {
		s.mu.Lock()
		s.size -= size
		if s.size < 0 {
			s.size = 0
		}
		s.mu.Unlock()
	}
}

// walkEntries visits every complete entry file under the store root.
func (s *Store) walkEntries(fn func(path string, fi fs.FileInfo)) {
	shards, err := os.ReadDir(s.dir)
	if err != nil {
		return
	}
	for _, shard := range shards {
		if !shard.IsDir() {
			continue
		}
		files, err := os.ReadDir(filepath.Join(s.dir, shard.Name()))
		if err != nil {
			continue
		}
		for _, f := range files {
			if f.IsDir() || filepath.Ext(f.Name()) != entryExt {
				continue
			}
			fi, err := f.Info()
			if err != nil {
				continue
			}
			fn(filepath.Join(s.dir, shard.Name(), f.Name()), fi)
		}
	}
}

func (s *Store) scanSize() (int64, error) {
	total := int64(0)
	s.walkEntries(func(_ string, fi fs.FileInfo) { total += fi.Size() })
	return total, nil
}

func (s *Store) count(c Counter) {
	if c != nil {
		c.Add(1)
	}
}

// encodeEntry frames a payload with the store header: magic, version,
// payload length, and the payload's SHA-256.
func encodeEntry(payload []byte) []byte {
	buf := make([]byte, headerSize+len(payload))
	copy(buf[0:4], magic[:])
	binary.BigEndian.PutUint32(buf[4:8], Version)
	binary.BigEndian.PutUint64(buf[8:16], uint64(len(payload)))
	sum := sha256.Sum256(payload)
	copy(buf[16:16+sha256.Size], sum[:])
	copy(buf[headerSize:], payload)
	return buf
}

// decodeEntry validates a raw entry file and returns its payload. Every
// failure mode reports !ok: the caller treats the entry as absent.
func decodeEntry(raw []byte) ([]byte, bool) {
	if len(raw) < headerSize {
		return nil, false
	}
	if [4]byte(raw[0:4]) != magic {
		return nil, false
	}
	if binary.BigEndian.Uint32(raw[4:8]) != Version {
		return nil, false
	}
	n := binary.BigEndian.Uint64(raw[8:16])
	if n != uint64(len(raw)-headerSize) {
		return nil, false
	}
	payload := raw[headerSize:]
	sum := sha256.Sum256(payload)
	if sum != [sha256.Size]byte(raw[16:16+sha256.Size]) {
		return nil, false
	}
	return payload, true
}
