// Package isa lowers IR programs to vendor-neutral instruction statistics:
// dynamic operation counts by execution-resource class, static instruction
// footprint, and a linear-scan register pressure model. The per-vendor cost
// models in internal/gpu convert these statistics into cycle estimates.
package isa

import (
	"shaderopt/internal/ir"
	"shaderopt/internal/sem"
)

// Stats summarizes a compiled shader for cost modelling. "Scalar ops"
// count per-component work (a vec4 add is 4); "vector slots" count
// SIMD-issue slots on 128-bit vector machines (a vec4 add is 1, and a
// lone scalar add also burns 1).
type Stats struct {
	ALUScalarOps float64 // arithmetic, per component
	ALUVecSlots  float64 // arithmetic, per vector issue slot
	SFUScalarOps float64 // transcendental/division, per component
	MovScalarOps float64 // shuffles, constructs, swizzles
	TextureOps   float64 // sampling operations
	VaryingOps   float64 // shader input interpolation reads
	OutputOps    float64 // colour writes
	BranchOps    float64 // dynamic branch/loop-iteration overhead events
	SpillBytes   float64 // dynamic spill traffic (bytes)

	StaticInstrs  int // static instruction count (I-cache footprint)
	PeakRegisters int // peak live scalar registers (4 bytes each)
	UsedUniforms  int // scalar uniform components referenced
}

// Config controls the dynamic-weight analysis.
type Config struct {
	// DynamicLoopIters is the assumed trip count for loops whose bounds are
	// not compile-time constants.
	DynamicLoopIters float64
	// BranchDivergence is the fraction of the not-taken arm that still
	// costs execution time (SIMT divergence / predication): 0 = perfect
	// branching, 1 = both sides always execute.
	BranchDivergence float64
}

// DefaultConfig matches a mid-ground GPU.
var DefaultConfig = Config{DynamicLoopIters: 16, BranchDivergence: 0.5}

// builtinCost gives per-component (alu, sfu) weights for builtins; texture
// and derivative classes are handled separately.
var builtinCost = map[string]struct{ alu, sfu float64 }{
	"abs": {0.5, 0}, "sign": {1, 0}, "floor": {1, 0}, "ceil": {1, 0},
	"fract": {1, 0}, "radians": {1, 0}, "degrees": {1, 0}, "saturate": {0.5, 0},
	"mod": {2, 0}, "min": {1, 0}, "max": {1, 0}, "step": {1, 0},
	"clamp": {2, 0}, "mix": {2, 0}, "smoothstep": {5, 0},
	"reflect": {3, 0}, "refract": {4, 2}, "faceforward": {2, 0},
	"sin": {0, 1}, "cos": {0, 1}, "tan": {0, 2}, "asin": {0, 2}, "acos": {0, 2},
	"atan": {0, 2}, "pow": {0, 2}, "exp": {0, 1}, "log": {0, 1},
	"exp2": {0, 1}, "log2": {0, 1}, "sqrt": {0, 1}, "inversesqrt": {0, 1},
	"normalize": {1, 1}, "dot": {1, 0}, "length": {1, 1}, "distance": {2, 1},
	"cross": {3, 0},
	"dFdx":  {1, 0}, "dFdy": {1, 0}, "fwidth": {2, 0},
}

// Analyze computes instruction statistics for a program.
func Analyze(p *ir.Program, cfg Config) Stats {
	a := &analyzer{cfg: cfg}
	a.block(p.Body, 1)
	s := a.stats
	s.StaticInstrs = staticInstrs(p)
	s.PeakRegisters = peakRegisters(p)
	s.UsedUniforms = usedUniformComponents(p)
	s.VaryingOps = float64(usedInputComponents(p))
	s.OutputOps = float64(writtenOutputs(p))
	return s
}

// writtenOutputs counts output variables stored at least once — each is
// one colour export at fragment end.
func writtenOutputs(p *ir.Program) int {
	seen := map[*ir.Var]bool{}
	p.Body.WalkInstrs(func(in *ir.Instr) {
		if in.Op == ir.OpStore && in.Var.IsOutput {
			seen[in.Var] = true
		}
	})
	return len(seen)
}

// usedInputComponents counts scalar input components read at least once —
// the per-fragment interpolation workload.
func usedInputComponents(p *ir.Program) int {
	seen := map[*ir.Global]bool{}
	n := 0
	p.Body.WalkInstrs(func(in *ir.Instr) {
		if in.Op == ir.OpInput && !seen[in.Global] {
			seen[in.Global] = true
			n += in.Global.Type.Components()
		}
	})
	return n
}

type analyzer struct {
	cfg   Config
	stats Stats
}

func (a *analyzer) block(b *ir.Block, weight float64) {
	for _, it := range b.Items {
		switch it := it.(type) {
		case *ir.Instr:
			a.instr(it, weight)
		case *ir.If:
			thenCost := measure(a.cfg, it.Then)
			var elseCost Stats
			if it.Else != nil {
				elseCost = measure(a.cfg, it.Else)
			}
			// Heavier side executes; lighter side costs its share scaled by
			// divergence.
			heavy, light := thenCost, elseCost
			if scalarWork(elseCost) > scalarWork(thenCost) {
				heavy, light = elseCost, thenCost
			}
			a.stats.add(heavy, weight)
			a.stats.add(light, weight*a.cfg.BranchDivergence)
			a.stats.BranchOps += weight
		case *ir.Loop:
			iters := a.cfg.DynamicLoopIters
			if n, ok := it.TripCount(); ok {
				iters = float64(n)
			}
			a.stats.BranchOps += weight * (iters + 1)
			a.stats.ALUScalarOps += weight * iters // counter increment
			a.stats.ALUVecSlots += weight * iters
			a.block(it.Body, weight*iters)
		case *ir.While:
			iters := a.cfg.DynamicLoopIters
			a.stats.BranchOps += weight * (iters + 1)
			a.block(it.Cond, weight*(iters+1))
			a.block(it.Body, weight*iters)
		}
	}
}

// measure runs a sub-analysis on a block with weight 1.
func measure(cfg Config, b *ir.Block) Stats {
	sub := &analyzer{cfg: cfg}
	sub.block(b, 1)
	return sub.stats
}

func scalarWork(s Stats) float64 {
	return s.ALUScalarOps + 4*s.SFUScalarOps + 8*s.TextureOps + s.MovScalarOps
}

// add accumulates sub-stats scaled by weight (dynamic fields only).
func (s *Stats) add(o Stats, w float64) {
	s.ALUScalarOps += o.ALUScalarOps * w
	s.ALUVecSlots += o.ALUVecSlots * w
	s.SFUScalarOps += o.SFUScalarOps * w
	s.MovScalarOps += o.MovScalarOps * w
	s.TextureOps += o.TextureOps * w
	s.VaryingOps += o.VaryingOps * w
	s.OutputOps += o.OutputOps * w
	s.BranchOps += o.BranchOps * w
	s.SpillBytes += o.SpillBytes * w
}

func (a *analyzer) instr(in *ir.Instr, w float64) {
	width := float64(in.Type.Components())
	switch in.Op {
	case ir.OpConst, ir.OpUniform, ir.OpInput:
		// Constant-bank reads are free; varying interpolation is counted
		// once per fragment in Analyze, not per read.
	case ir.OpBin:
		if xt, yt := in.Args[0].Type, in.Args[1].Type; xt.IsMatrix() || yt.IsMatrix() {
			// Native matrix algebra: drivers map these to FMA chains.
			n := xt.Mat
			if n == 0 {
				n = yt.Mat
			}
			nn := float64(n * n)
			switch {
			case in.BinOp == "*" && xt.IsMatrix() && yt.IsMatrix():
				a.stats.ALUScalarOps += w * nn * float64(n)
				a.stats.ALUVecSlots += w * nn
			case in.BinOp == "*" && (xt.IsVector() || yt.IsVector()):
				a.stats.ALUScalarOps += w * nn
				a.stats.ALUVecSlots += w * float64(n)
			default: // mat±mat, mat*scalar, mat/scalar
				a.stats.ALUScalarOps += w * nn
				a.stats.ALUVecSlots += w * float64(n)
			}
			return
		}
		switch in.BinOp {
		case "/":
			if in.Type.Kind == sem.KindFloat {
				// rcp per component + multiply.
				a.stats.SFUScalarOps += w * width
				a.stats.ALUScalarOps += w * width
			} else {
				a.stats.SFUScalarOps += w * width * 2
			}
			a.stats.ALUVecSlots += w * 2
		case "%":
			a.stats.SFUScalarOps += w * width * 2
			a.stats.ALUVecSlots += w * 2
		default:
			a.stats.ALUScalarOps += w * width
			a.stats.ALUVecSlots += w
		}
	case ir.OpUn:
		a.stats.ALUScalarOps += w * width * 0.5 // usually folds into modifiers
		a.stats.ALUVecSlots += w * 0.5
	case ir.OpSelect:
		a.stats.ALUScalarOps += w * width
		a.stats.ALUVecSlots += w
	case ir.OpCall:
		cls, _ := sem.BuiltinClassOf(in.Callee)
		switch cls {
		case sem.ClassTexture:
			a.stats.TextureOps += w
		default:
			c, ok := builtinCost[in.Callee]
			if !ok {
				c = struct{ alu, sfu float64 }{1, 0}
			}
			// Reductions (dot/length/...) work over the argument width.
			n := width
			if len(in.Args) > 0 && float64(in.Args[0].Type.Components()) > n {
				n = float64(in.Args[0].Type.Components())
			}
			a.stats.ALUScalarOps += w * c.alu * n
			a.stats.SFUScalarOps += w * c.sfu * n
			a.stats.ALUVecSlots += w * (c.alu + c.sfu)
		}
	case ir.OpConstruct, ir.OpSwizzle, ir.OpInsert, ir.OpInsertDyn,
		ir.OpExtract, ir.OpExtractDyn:
		// Data movement; scalar machines mostly fold these into source
		// modifiers, vector machines pay shuffle slots.
		a.stats.MovScalarOps += w * width * 0.5
	case ir.OpLoad, ir.OpStore:
		// Register-allocated locals: free; spill cost added by the vendor
		// model from PeakRegisters. Colour exports are counted once per
		// written output in Analyze, not per store.
	case ir.OpDiscard:
		a.stats.BranchOps += w
	}
}

// staticInstrs counts instructions that occupy instruction memory.
func staticInstrs(p *ir.Program) int {
	n := 0
	p.Body.WalkInstrs(func(in *ir.Instr) {
		switch in.Op {
		case ir.OpConst, ir.OpUniform:
			return
		}
		n++
	})
	// Region control costs instructions too.
	p.Body.WalkBlocks(func(b *ir.Block) {
		for _, it := range b.Items {
			switch it.(type) {
			case *ir.If, *ir.Loop, *ir.While:
				n += 2
			}
		}
	})
	return n
}

// peakRegisters runs a linear-scan live-interval approximation over the
// flattened program and returns the peak number of simultaneously live
// scalar components (values + variable slots).
func peakRegisters(p *ir.Program) int {
	// Assign linear positions.
	pos := map[*ir.Instr]int{}
	order := []*ir.Instr{}
	p.Body.WalkInstrs(func(in *ir.Instr) {
		pos[in] = len(order)
		order = append(order, in)
	})

	type interval struct {
		start, end, width int
	}
	var intervals []interval

	// Value intervals: def to last use.
	lastUse := map[*ir.Instr]int{}
	useAt := func(v *ir.Instr, at int) {
		if at > lastUse[v] {
			lastUse[v] = at
		}
	}
	var regionEnd func(b *ir.Block) int
	regionEnd = func(b *ir.Block) int {
		end := 0
		b.WalkInstrs(func(in *ir.Instr) {
			if pos[in] > end {
				end = pos[in]
			}
		})
		return end
	}
	var walkUses func(b *ir.Block)
	walkUses = func(b *ir.Block) {
		for _, it := range b.Items {
			switch it := it.(type) {
			case *ir.Instr:
				for _, a := range it.Args {
					useAt(a, pos[it])
				}
			case *ir.If:
				useAt(it.Cond, pos[it.Cond]+1)
				end := regionEnd(it.Then)
				if it.Else != nil {
					if e := regionEnd(it.Else); e > end {
						end = e
					}
				}
				useAt(it.Cond, end)
				walkUses(it.Then)
				if it.Else != nil {
					walkUses(it.Else)
				}
			case *ir.Loop:
				end := regionEnd(it.Body)
				useAt(it.Start, end)
				useAt(it.End, end)
				useAt(it.Step, end)
				walkUses(it.Body)
			case *ir.While:
				end := regionEnd(it.Body)
				if e := regionEnd(it.Cond); e > end {
					end = e
				}
				useAt(it.CondVal, end)
				walkUses(it.Cond)
				walkUses(it.Body)
			}
		}
	}
	walkUses(p.Body)

	for in, end := range lastUse {
		if !in.HasResult() {
			continue
		}
		w := in.Type.Components()
		if in.Type.IsSampler() {
			w = 0
		}
		if in.Op == ir.OpConst && in.Type.Components() <= 4 {
			// Small immediates rematerialize; don't hold registers.
			continue
		}
		intervals = append(intervals, interval{pos[in], end, w})
	}

	// Variable slot intervals: first touch to last touch.
	firstTouch := map[*ir.Var]int{}
	lastTouch := map[*ir.Var]int{}
	p.Body.WalkInstrs(func(in *ir.Instr) {
		if in.Op != ir.OpLoad && in.Op != ir.OpStore {
			return
		}
		v := in.Var
		if _, ok := firstTouch[v]; !ok {
			firstTouch[v] = pos[in]
		}
		lastTouch[v] = pos[in]
	})
	for _, v := range p.Vars {
		f, ok := firstTouch[v]
		if !ok {
			continue
		}
		intervals = append(intervals, interval{f, lastTouch[v], v.Type.Components()})
	}

	// Sweep.
	if len(intervals) == 0 {
		return 0
	}
	deltas := map[int]int{}
	for _, iv := range intervals {
		deltas[iv.start] += iv.width
		deltas[iv.end+1] -= iv.width
	}
	peak, cur := 0, 0
	maxPos := len(order) + 2
	for i := 0; i <= maxPos; i++ {
		cur += deltas[i]
		if cur > peak {
			peak = cur
		}
	}
	return peak
}

func usedUniformComponents(p *ir.Program) int {
	seen := map[*ir.Global]bool{}
	n := 0
	p.Body.WalkInstrs(func(in *ir.Instr) {
		if in.Op == ir.OpUniform && !seen[in.Global] {
			seen[in.Global] = true
			if !in.Global.Type.IsSampler() {
				n += in.Global.Type.Components()
			}
		}
	})
	return n
}
