package isa

import (
	"testing"

	"shaderopt/internal/glsl"
	"shaderopt/internal/lower"
	"shaderopt/internal/passes"
)

func analyze(t *testing.T, src string, cfg Config) Stats {
	t.Helper()
	sh, err := glsl.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := lower.Lower(sh, "isa-test")
	if err != nil {
		t.Fatal(err)
	}
	passes.Canonicalize(prog)
	return Analyze(prog, cfg)
}

func TestAnalyzeSimpleCounts(t *testing.T) {
	s := analyze(t, `
uniform sampler2D tex;
in vec2 uv;
out vec4 c;
void main() { c = texture(tex, uv) * 2.0; }
`, DefaultConfig)
	if s.TextureOps != 1 {
		t.Errorf("tex ops = %v", s.TextureOps)
	}
	if s.VaryingOps != 2 {
		t.Errorf("varying ops = %v, want 2 (vec2 uv)", s.VaryingOps)
	}
	if s.OutputOps != 1 {
		t.Errorf("output ops = %v", s.OutputOps)
	}
	if s.ALUScalarOps != 4 { // vec4 * splat
		t.Errorf("alu = %v, want 4", s.ALUScalarOps)
	}
	if s.ALUVecSlots != 1 {
		t.Errorf("slots = %v, want 1", s.ALUVecSlots)
	}
}

func TestAnalyzeLoopWeighting(t *testing.T) {
	s := analyze(t, `
out vec4 c;
uniform float k;
void main() {
    float acc = 0.0;
    for (int i = 0; i < 10; i++) { acc += k; }
    c = vec4(acc);
}
`, DefaultConfig)
	// The body add runs 10 times (plus counter increments).
	if s.ALUScalarOps < 10 || s.ALUScalarOps > 30 {
		t.Errorf("alu = %v, want ~10-30 for 10 iterations", s.ALUScalarOps)
	}
	if s.BranchOps < 10 {
		t.Errorf("branch ops = %v", s.BranchOps)
	}
}

func TestAnalyzeDynamicLoopUsesConfig(t *testing.T) {
	src := `
uniform int n;
uniform float k;
out vec4 c;
void main() {
    float acc = 0.0;
    for (int i = 0; i < n; i++) { acc += k; }
    c = vec4(acc);
}
`
	low := analyze(t, src, Config{DynamicLoopIters: 4, BranchDivergence: 0.5})
	high := analyze(t, src, Config{DynamicLoopIters: 64, BranchDivergence: 0.5})
	if high.ALUScalarOps <= low.ALUScalarOps {
		t.Errorf("dynamic iteration assumption ignored: %v vs %v", low.ALUScalarOps, high.ALUScalarOps)
	}
}

func TestAnalyzeBranchDivergence(t *testing.T) {
	src := `
uniform float k;
out vec4 c;
void main() {
    vec4 v = vec4(0.0);
    if (k > 0.5) { v = vec4(k * 2.0); } else { v = vec4(sin(k)); }
    c = v;
}
`
	perfect := analyze(t, src, Config{DynamicLoopIters: 16, BranchDivergence: 0})
	simt := analyze(t, src, Config{DynamicLoopIters: 16, BranchDivergence: 1})
	if simt.SFUScalarOps <= perfect.SFUScalarOps && simt.ALUScalarOps <= perfect.ALUScalarOps {
		t.Errorf("divergence should add the light arm's cost: %+v vs %+v", perfect, simt)
	}
}

func TestAnalyzeSFUClassification(t *testing.T) {
	s := analyze(t, `
uniform float k;
out vec4 c;
void main() { c = vec4(sin(k), pow(k, 2.0), sqrt(k), k / 3.0); }
`, DefaultConfig)
	if s.SFUScalarOps < 4 {
		t.Errorf("sfu ops = %v, want >= 4 (sin, pow, sqrt, rcp)", s.SFUScalarOps)
	}
}

func TestAnalyzeMatrixNative(t *testing.T) {
	s := analyze(t, `
uniform mat4 m;
in vec3 p;
out vec4 c;
void main() { c = m * vec4(p, 1.0); }
`, DefaultConfig)
	// Native mat4*vec4: 16 scalar FMAs, 4 vector slots.
	if s.ALUScalarOps < 16 || s.ALUScalarOps > 24 {
		t.Errorf("matrix alu = %v, want ~16", s.ALUScalarOps)
	}
}

func TestAnalyzeScalarizedCostsMore(t *testing.T) {
	src := `
uniform mat4 m;
in vec3 p;
out vec4 c;
void main() { c = m * vec4(p, 1.0); }
`
	sh := glsl.MustParse(src)
	native, err := lower.Lower(sh, "native")
	if err != nil {
		t.Fatal(err)
	}
	passes.Canonicalize(native)
	scal, err := lower.Lower(sh, "scal")
	if err != nil {
		t.Fatal(err)
	}
	passes.ScalarizeMatrices(scal)
	passes.Canonicalize(scal)
	sn := Analyze(native, DefaultConfig)
	ss := Analyze(scal, DefaultConfig)
	if ss.ALUScalarOps <= sn.ALUScalarOps {
		t.Errorf("scalarized form should cost more ALU: %v vs %v", ss.ALUScalarOps, sn.ALUScalarOps)
	}
	if ss.MovScalarOps <= sn.MovScalarOps {
		t.Errorf("scalarized form should add movs: %v vs %v", ss.MovScalarOps, sn.MovScalarOps)
	}
}

func TestPeakRegistersGrowWithLiveValues(t *testing.T) {
	narrow := analyze(t, `
uniform sampler2D tex;
in vec2 uv;
out vec4 c;
void main() {
    vec4 acc = texture(tex, uv);
    acc += texture(tex, uv * 2.0);
    acc += texture(tex, uv * 3.0);
    c = acc;
}
`, DefaultConfig)
	wide := analyze(t, `
uniform sampler2D tex;
in vec2 uv;
out vec4 c;
void main() {
    vec4 a = texture(tex, uv);
    vec4 b = texture(tex, uv * 2.0);
    vec4 d = texture(tex, uv * 3.0);
    vec4 e = texture(tex, uv * 4.0);
    vec4 f = texture(tex, uv * 5.0);
    vec4 g = texture(tex, uv * 6.0);
    c = ((a + b) + (d + e)) + (f + g);
}
`, DefaultConfig)
	if wide.PeakRegisters <= narrow.PeakRegisters {
		t.Errorf("peak registers: wide %d <= narrow %d", wide.PeakRegisters, narrow.PeakRegisters)
	}
}

func TestStaticInstrsGrowWithUnroll(t *testing.T) {
	src := `
uniform sampler2D tex;
in vec2 uv;
out vec4 c;
void main() {
    vec4 acc = vec4(0.0);
    for (int i = 0; i < 16; i++) { acc += texture(tex, uv + vec2(float(i), 0.0)); }
    c = acc;
}
`
	sh := glsl.MustParse(src)
	rolled, err := lower.Lower(sh, "rolled")
	if err != nil {
		t.Fatal(err)
	}
	passes.Canonicalize(rolled)
	unrolled, err := lower.Lower(sh, "unrolled")
	if err != nil {
		t.Fatal(err)
	}
	passes.Canonicalize(unrolled)
	passes.Unroll(unrolled)
	passes.Canonicalize(unrolled)
	sr := Analyze(rolled, DefaultConfig)
	su := Analyze(unrolled, DefaultConfig)
	if su.StaticInstrs <= sr.StaticInstrs {
		t.Errorf("unrolled static instrs %d <= rolled %d", su.StaticInstrs, sr.StaticInstrs)
	}
	if su.BranchOps >= sr.BranchOps {
		t.Errorf("unrolled branches %v >= rolled %v", su.BranchOps, sr.BranchOps)
	}
}

func TestUniformComponentCount(t *testing.T) {
	s := analyze(t, `
uniform vec4 a;
uniform float b;
uniform sampler2D tex;
in vec2 uv;
out vec4 c;
void main() { c = a * b + texture(tex, uv); }
`, DefaultConfig)
	if s.UsedUniforms != 5 {
		t.Errorf("uniform components = %d, want 5 (vec4 + float; samplers excluded)", s.UsedUniforms)
	}
}
