// Package timer models GL_TIME_ELAPSED timer queries. Real queries are
// noisy and add profiling overhead (§IV-B: "these queries can be noisy and
// introduce profiling overhead"); the model injects deterministic,
// seed-driven multiplicative jitter, additive query overhead, and clock
// quantization so the harness's repeat-and-aggregate protocol has real work
// to do, and so per-platform noise differences (Intel cleanest, Qualcomm
// noisiest — §VI-D7/8) reproduce.
package timer

import (
	"math"
	"math/rand"
)

// Query models one platform's GL_TIME_ELAPSED behaviour.
type Query struct {
	// Sigma is the relative standard deviation of multiplicative noise.
	Sigma float64
	// OverheadNS is the mean additive measurement overhead per query.
	OverheadNS float64
	// ResolutionNS is the clock tick; measurements quantize to it.
	ResolutionNS float64
	// TailProb is the probability of a slow-frame outlier (scheduler
	// preemption, thermal event) multiplying the time by TailScale.
	TailProb  float64
	TailScale float64

	rng *rand.Rand
}

// New returns a query model seeded deterministically.
func New(sigma, overheadNS, resolutionNS float64, seed int64) *Query {
	return &Query{
		Sigma:        sigma,
		OverheadNS:   overheadNS,
		ResolutionNS: resolutionNS,
		TailProb:     0.005,
		TailScale:    1.5,
		rng:          rand.New(rand.NewSource(seed)),
	}
}

// Measure returns the measured value for a true elapsed time of trueNS.
func (q *Query) Measure(trueNS float64) float64 {
	noise := 1 + q.rng.NormFloat64()*q.Sigma
	if noise < 0.5 {
		noise = 0.5
	}
	t := trueNS*noise + q.OverheadNS*(1+0.25*q.rng.Float64())
	if q.TailProb > 0 && q.rng.Float64() < q.TailProb {
		t *= q.TailScale
	}
	if q.ResolutionNS > 0 {
		t = math.Round(t/q.ResolutionNS) * q.ResolutionNS
	}
	return t
}

// Reseed resets the noise stream in place (each shader measurement run
// uses a derived seed so experiment order does not perturb results). The
// stream after Reseed(seed) is identical to a fresh New(..., seed) query's,
// so batched harness runs reuse one Query across a whole batch of variants
// without re-allocating the generator per measurement.
func (q *Query) Reseed(seed int64) {
	q.rng.Seed(seed)
}
