package timer

import (
	"math"
	"testing"
)

func TestMeasureDeterministic(t *testing.T) {
	a := New(0.01, 100, 10, 42)
	b := New(0.01, 100, 10, 42)
	for i := 0; i < 100; i++ {
		if a.Measure(1e6) != b.Measure(1e6) {
			t.Fatal("same seed must give identical noise streams")
		}
	}
}

func TestMeasureSeedsDiffer(t *testing.T) {
	a := New(0.01, 100, 10, 1)
	b := New(0.01, 100, 10, 2)
	same := 0
	for i := 0; i < 50; i++ {
		if a.Measure(1e6) == b.Measure(1e6) {
			same++
		}
	}
	if same > 5 {
		t.Errorf("different seeds produced %d/50 identical samples", same)
	}
}

func TestMeasureStatistics(t *testing.T) {
	q := New(0.01, 0, 0, 7)
	q.TailProb = 0
	trueNS := 1e6
	n := 5000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += q.Measure(trueNS)
	}
	mean := sum / float64(n)
	if math.Abs(mean-trueNS)/trueNS > 0.01 {
		t.Errorf("mean %.0f deviates from true %.0f", mean, trueNS)
	}
}

func TestMeasureOverheadAdditive(t *testing.T) {
	q := New(0, 500, 0, 1)
	q.TailProb = 0
	m := q.Measure(1e6)
	if m < 1e6+500 || m > 1e6+500*1.25 {
		t.Errorf("overhead not applied: %v", m)
	}
}

func TestMeasureQuantization(t *testing.T) {
	q := New(0, 0, 1000, 1)
	q.TailProb = 0
	m := q.Measure(123456)
	if math.Mod(m, 1000) != 0 {
		t.Errorf("measurement %v not quantized to 1000ns", m)
	}
}

func TestTailOutliers(t *testing.T) {
	q := New(0, 0, 0, 3)
	q.TailProb = 0.5
	q.TailScale = 2
	outliers := 0
	for i := 0; i < 1000; i++ {
		if q.Measure(100) > 150 {
			outliers++
		}
	}
	if outliers < 300 || outliers > 700 {
		t.Errorf("tail outliers = %d/1000, want ~500", outliers)
	}
}

func TestReseedRestartsStream(t *testing.T) {
	q := New(0.05, 0, 0, 9)
	first := []float64{q.Measure(1e6), q.Measure(1e6)}
	q.Reseed(9)
	second := []float64{q.Measure(1e6), q.Measure(1e6)}
	if first[0] != second[0] || first[1] != second[1] {
		t.Error("reseed must restart the stream")
	}
}

// TestReseedMatchesFreshQuery pins the invariant the batched harness
// depends on: reusing one Query across variants via Reseed(seed) yields
// exactly the stream a fresh New(..., seed) query would, even after the
// generator has been pulled from under a different seed.
func TestReseedMatchesFreshQuery(t *testing.T) {
	reused := New(0.05, 100, 10, 1)
	for i := 0; i < 17; i++ { // advance the stream before reseeding
		reused.Measure(1e6)
	}
	for _, seed := range []int64{0, 1, 42, -7, 1 << 40} {
		reused.Reseed(seed)
		fresh := New(0.05, 100, 10, seed)
		for i := 0; i < 25; i++ {
			if got, want := reused.Measure(1e6), fresh.Measure(1e6); got != want {
				t.Fatalf("seed %d sample %d: reseeded query gave %v, fresh query %v", seed, i, got, want)
			}
		}
	}
}

func TestNoiseNeverNegative(t *testing.T) {
	q := New(0.5, 0, 0, 11) // absurdly noisy
	for i := 0; i < 1000; i++ {
		if q.Measure(100) <= 0 {
			t.Fatal("measurement went non-positive")
		}
	}
}
