package passes

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"

	"shaderopt/internal/ir"
	"shaderopt/internal/sem"
)

// Canonicalize runs the always-on cleanup pipeline to a fixed point:
// constant folding and instruction simplification, store-to-load
// forwarding, local common subexpression elimination, dead store removal,
// and trivially-dead instruction elimination. LunarGlass keeps these
// enabled for every flag combination ("some were necessary passes to
// canonicalize instructions", §III-A); all measurements are relative to
// output that has been through this pipeline.
func Canonicalize(p *ir.Program) {
	for i := 0; i < 16; i++ {
		changed := false
		if foldBlock(p, p.Body) {
			changed = true
		}
		if forwardLoads(p, p.Body, map[*ir.Var]*ir.Instr{}) {
			changed = true
		}
		if localCSE(p) {
			changed = true
		}
		if removeDeadStores(p) {
			changed = true
		}
		if trivialDCE(p) {
			changed = true
		}
		if simplifyRegions(p) {
			changed = true
		}
		if !changed {
			break
		}
	}
	p.RenumberIDs()
}

// --- constant folding & instruction simplification ---

func foldBlock(p *ir.Program, b *ir.Block) bool {
	changed := false
	for _, it := range b.Items {
		switch it := it.(type) {
		case *ir.Instr:
			if foldInstr(p, it) {
				changed = true
			}
		case *ir.If:
			if foldBlock(p, it.Then) {
				changed = true
			}
			if it.Else != nil && foldBlock(p, it.Else) {
				changed = true
			}
		case *ir.Loop:
			if foldBlock(p, it.Body) {
				changed = true
			}
		case *ir.While:
			if foldBlock(p, it.Cond) {
				changed = true
			}
			if foldBlock(p, it.Body) {
				changed = true
			}
		}
	}
	return changed
}

func allConst(args []*ir.Instr) bool {
	for _, a := range args {
		if a.Op != ir.OpConst {
			return false
		}
	}
	return true
}

func constArgs(args []*ir.Instr) []*ir.ConstVal {
	out := make([]*ir.ConstVal, len(args))
	for i, a := range args {
		out[i] = a.Const
	}
	return out
}

// foldInstr folds or simplifies one instruction in place. It returns true
// when something changed.
func foldInstr(p *ir.Program, in *ir.Instr) bool {
	switch in.Op {
	case ir.OpBin:
		// Canonical commutative order: constant second, else lower ID first.
		// Matrix multiplication does not commute; leave matrix forms alone.
		if isCommutative(in.BinOp) &&
			!in.Args[0].Type.IsMatrix() && !in.Args[1].Type.IsMatrix() {
			x, y := in.Args[0], in.Args[1]
			if (x.Op == ir.OpConst && y.Op != ir.OpConst) ||
				(x.Op != ir.OpConst && y.Op != ir.OpConst && x.ID > y.ID) {
				in.Args[0], in.Args[1] = y, x
				return true
			}
		}
		if allConst(in.Args) {
			if v, ok := ir.EvalBinTyped(in.BinOp, in.Args[0].Type, in.Args[1].Type, in.Args[0].Const, in.Args[1].Const); ok {
				makeConst(in, v)
				return true
			}
		}
	case ir.OpUn:
		if allConst(in.Args) {
			if v, ok := ir.EvalUn(in.UnOp, in.Args[0].Const); ok {
				makeConst(in, v)
				return true
			}
		}
		// Double negation.
		if a := in.Args[0]; a.Op == ir.OpUn && a.UnOp == in.UnOp {
			replaceUses(p, in, a.Args[0])
			return true
		}
	case ir.OpCall:
		if allConst(in.Args) {
			if v, ok := ir.EvalBuiltin(in.Callee, constArgs(in.Args)); ok {
				makeConst(in, v)
				return true
			}
		}
	case ir.OpConstruct:
		if allConst(in.Args) && !in.Type.IsSampler() {
			makeConst(in, ir.EvalConstruct(in.Type, constArgs(in.Args)))
			return true
		}
		// construct T(x) where x already has type T is a copy.
		if len(in.Args) == 1 && in.Args[0].Type.Equal(in.Type) {
			replaceUses(p, in, in.Args[0])
			return true
		}
		// Reconstruction of a whole vector from its own components in
		// order: vecN(v.x, v.y, ...) -> v.
		if in.Type.IsVector() && len(in.Args) == in.Type.Vec {
			src := reconstructSource(in)
			if src != nil {
				replaceUses(p, in, src)
				return true
			}
		}
	case ir.OpExtract:
		src := in.Args[0]
		switch {
		case src.Op == ir.OpConst:
			makeConst(in, ir.EvalExtract(src.Type, src.Const, in.Index))
			return true
		case src.Op == ir.OpConstruct:
			// Map the component through the construct operands.
			if arg, off, exact := constructComponent(src, in.Index, elemWidth(src.Type)); exact {
				replaceUses(p, in, arg)
				return true
			} else if arg != nil && arg.Type.IsVector() && elemWidth(src.Type) == 1 {
				in.Args[0] = arg
				in.Index = off
				return true
			}
		case src.Op == ir.OpSwizzle:
			in.Args[0] = src.Args[0]
			in.Index = src.Indices[in.Index]
			return true
		case src.Op == ir.OpInsert:
			if src.Index == in.Index {
				if src.Args[1].Type.Equal(in.Type) {
					replaceUses(p, in, src.Args[1])
					return true
				}
			} else {
				in.Args[0] = src.Args[0]
				return true
			}
		case src.Op == ir.OpSelect && src.Args[1].Op == ir.OpConst && src.Args[2].Op == ir.OpConst:
			// extract(select(c, k1, k2)) -> select(c, k1[i], k2[i])
			a := newConst(p, in.Type, ir.EvalExtract(src.Type, src.Args[1].Const, in.Index))
			bc := newConst(p, in.Type, ir.EvalExtract(src.Type, src.Args[2].Const, in.Index))
			insertBefore(p.Body, in, a, bc)
			in.Op = ir.OpSelect
			in.Args = []*ir.Instr{src.Args[0], a, bc}
			in.Index = 0
			return true
		}
	case ir.OpExtractDyn:
		if in.Args[1].Op == ir.OpConst {
			idx := int(in.Args[1].Const.Int(0))
			n := aggLen(in.Args[0].Type)
			if idx < 0 {
				idx = 0
			}
			if idx >= n {
				idx = n - 1
			}
			in.Op = ir.OpExtract
			in.Index = idx
			in.Args = in.Args[:1]
			return true
		}
	case ir.OpInsertDyn:
		if in.Args[1].Op == ir.OpConst {
			idx := int(in.Args[1].Const.Int(0))
			n := aggLen(in.Args[0].Type)
			if idx < 0 {
				idx = 0
			}
			if idx >= n {
				idx = n - 1
			}
			in.Op = ir.OpInsert
			in.Index = idx
			in.Args = []*ir.Instr{in.Args[0], in.Args[2]}
			return true
		}
	case ir.OpSwizzle:
		src := in.Args[0]
		switch {
		case src.Op == ir.OpConst:
			makeConst(in, ir.EvalSwizzle(src.Const, in.Indices))
			return true
		case src.Op == ir.OpSwizzle:
			composed := make([]int, len(in.Indices))
			for i, ix := range in.Indices {
				composed[i] = src.Indices[ix]
			}
			in.Args[0] = src.Args[0]
			in.Indices = composed
			return true
		}
		// Identity swizzle.
		if len(in.Indices) == src.Type.Vec {
			id := true
			for i, ix := range in.Indices {
				if ix != i {
					id = false
				}
			}
			if id {
				replaceUses(p, in, src)
				return true
			}
		}
	case ir.OpSelect:
		if in.Args[0].Op == ir.OpConst {
			if in.Args[0].Const.B[0] {
				replaceUses(p, in, in.Args[1])
			} else {
				replaceUses(p, in, in.Args[2])
			}
			return true
		}
		if in.Args[1] == in.Args[2] {
			replaceUses(p, in, in.Args[1])
			return true
		}
	}
	return false
}

// reconstructSource detects vecN(v[0], v[1], ..., v[n-1]) and returns v.
func reconstructSource(in *ir.Instr) *ir.Instr {
	var src *ir.Instr
	for i, a := range in.Args {
		if a.Op != ir.OpExtract || a.Index != i {
			return nil
		}
		if src == nil {
			src = a.Args[0]
		} else if src != a.Args[0] {
			return nil
		}
	}
	if src != nil && src.Type.Equal(in.Type) {
		return src
	}
	return nil
}

// constructComponent maps flat component idx of a construct to the operand
// covering it. exact is true when the operand is exactly that component.
func constructComponent(c *ir.Instr, idx, width int) (arg *ir.Instr, off int, exact bool) {
	flat := idx * width
	for _, a := range c.Args {
		n := a.Type.Components()
		if flat < n {
			if n == width {
				return a, 0, true
			}
			if width == 1 && a.Type.IsVector() {
				return a, flat, false
			}
			return nil, 0, false
		}
		flat -= n
	}
	return nil, 0, false
}

func elemWidth(t sem.Type) int {
	switch {
	case t.IsArray():
		return t.Elem().Components()
	case t.IsMatrix():
		return t.Mat
	default:
		return 1
	}
}

func aggLen(t sem.Type) int {
	switch {
	case t.IsArray():
		return t.ArrayLen
	case t.IsMatrix():
		return t.Mat
	default:
		return t.Vec
	}
}

// insertBefore places new instructions immediately before target in the
// block tree rooted at b. Panics if target is not found (internal error).
func insertBefore(b *ir.Block, target *ir.Instr, newItems ...*ir.Instr) {
	if tryInsertBefore(b, target, newItems) {
		return
	}
	panic(fmt.Sprintf("insertBefore: target %%%d not found", target.ID))
}

func tryInsertBefore(b *ir.Block, target *ir.Instr, newItems []*ir.Instr) bool {
	for i, it := range b.Items {
		switch it := it.(type) {
		case *ir.Instr:
			if it == target {
				items := make([]ir.Item, 0, len(b.Items)+len(newItems))
				items = append(items, b.Items[:i]...)
				for _, ni := range newItems {
					items = append(items, ni)
				}
				items = append(items, b.Items[i:]...)
				b.Items = items
				return true
			}
		case *ir.If:
			if tryInsertBefore(it.Then, target, newItems) {
				return true
			}
			if it.Else != nil && tryInsertBefore(it.Else, target, newItems) {
				return true
			}
		case *ir.Loop:
			if tryInsertBefore(it.Body, target, newItems) {
				return true
			}
		case *ir.While:
			if tryInsertBefore(it.Cond, target, newItems) {
				return true
			}
			if tryInsertBefore(it.Body, target, newItems) {
				return true
			}
		}
	}
	return false
}

// --- store-to-load forwarding ---

// forwardLoads replaces loads with the most recent stored value when that
// value is known on every path, walking the region tree with appropriate
// invalidation.
func forwardLoads(p *ir.Program, b *ir.Block, known map[*ir.Var]*ir.Instr) bool {
	changed := false
	for _, item := range b.Items {
		switch item := item.(type) {
		case *ir.Instr:
			switch item.Op {
			case ir.OpLoad:
				if v, ok := known[item.Var]; ok && v != nil {
					replaceUses(p, item, v)
					changed = true
				}
			case ir.OpStore:
				known[item.Var] = item.Args[0]
			}
		case *ir.If:
			thenKnown := copyMap(known)
			if forwardLoads(p, item.Then, thenKnown) {
				changed = true
			}
			if item.Else != nil {
				elseKnown := copyMap(known)
				if forwardLoads(p, item.Else, elseKnown) {
					changed = true
				}
			}
			for v := range storedVars(item.Then) {
				delete(known, v)
			}
			if item.Else != nil {
				for v := range storedVars(item.Else) {
					delete(known, v)
				}
			}
		case *ir.Loop:
			bodyStores := storedVars(item.Body)
			bodyKnown := copyMap(known)
			delete(bodyKnown, item.Counter)
			for v := range bodyStores {
				delete(bodyKnown, v)
			}
			if forwardLoads(p, item.Body, bodyKnown) {
				changed = true
			}
			for v := range bodyStores {
				delete(known, v)
			}
			delete(known, item.Counter)
		case *ir.While:
			stores := storedVars(item.Body)
			for v := range storedVars(item.Cond) {
				stores[v] = true
			}
			innerKnown := copyMap(known)
			for v := range stores {
				delete(innerKnown, v)
			}
			if forwardLoads(p, item.Cond, copyMap(innerKnown)) {
				changed = true
			}
			if forwardLoads(p, item.Body, innerKnown) {
				changed = true
			}
			for v := range stores {
				delete(known, v)
			}
		}
	}
	return changed
}

func copyMap(m map[*ir.Var]*ir.Instr) map[*ir.Var]*ir.Instr {
	out := make(map[*ir.Var]*ir.Instr, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// --- local CSE ---

// localCSE merges identical pure instructions within each straight-line
// block (the always-on subset of value numbering; the GVN flag extends it
// across nested regions).
func localCSE(p *ir.Program) bool {
	changed := false
	p.Body.WalkBlocks(func(b *ir.Block) {
		seen := map[vnKey]*ir.Instr{}
		for _, it := range b.Items {
			in, ok := it.(*ir.Instr)
			if !ok || !in.IsPure() || !in.HasResult() {
				continue
			}
			key := instrKey(in)
			if prev, dup := seen[key]; dup {
				replaceUses(p, in, prev)
				changed = true
			} else {
				seen[key] = in
			}
		}
	})
	return changed
}

// vnKey is the structural value-numbering key: two pure instructions with
// equal keys compute the same value. It is a comparable struct rather
// than a formatted string because key construction sits on the hottest
// path of the study (256 canonicalizations per shader enumeration).
type vnKey struct {
	op     ir.Op
	typ    sem.Type
	binUn  string
	callee string
	index  int
	global *ir.Global
	// extra packs the variable-length fields (swizzle indices, constant
	// payload, operand IDs) as length-prefixed varints, so distinct field
	// combinations can never collide.
	extra string
}

// instrKey builds the structural key for value numbering.
func instrKey(in *ir.Instr) vnKey {
	k := vnKey{
		op:     in.Op,
		typ:    in.Type,
		binUn:  in.BinOp + in.UnOp,
		callee: in.Callee,
		index:  in.Index,
		global: in.Global,
	}
	buf := make([]byte, 0, 32)
	buf = binary.AppendUvarint(buf, uint64(len(in.Indices)))
	for _, ix := range in.Indices {
		buf = binary.AppendVarint(buf, int64(ix))
	}
	if c := in.Const; c != nil {
		buf = append(buf, 1)
		buf = binary.AppendUvarint(buf, uint64(len(c.F)))
		for _, f := range c.F {
			buf = binary.AppendUvarint(buf, math.Float64bits(f))
		}
		buf = binary.AppendUvarint(buf, uint64(len(c.I)))
		for _, v := range c.I {
			buf = binary.AppendVarint(buf, v)
		}
		buf = binary.AppendUvarint(buf, uint64(len(c.B)))
		for _, v := range c.B {
			if v {
				buf = append(buf, 1)
			} else {
				buf = append(buf, 0)
			}
		}
	} else {
		buf = append(buf, 0)
	}
	buf = binary.AppendUvarint(buf, uint64(len(in.Args)))
	for _, a := range in.Args {
		buf = binary.AppendVarint(buf, int64(a.ID))
	}
	k.extra = string(buf)
	return k
}

// --- dead store & dead code elimination ---

// removeDeadStores drops stores to non-output vars that are never loaded,
// and stores immediately overwritten within the same block.
func removeDeadStores(p *ir.Program) bool {
	loaded := loadedVars(p.Body)
	changed := false
	p.Body.WalkBlocks(func(b *ir.Block) {
		var out []ir.Item
		for i, it := range b.Items {
			in, ok := it.(*ir.Instr)
			if !ok || in.Op != ir.OpStore {
				out = append(out, it)
				continue
			}
			if !in.Var.IsOutput && !loaded[in.Var] {
				changed = true
				continue
			}
			// Overwritten before any possible read: scan forward within the
			// block for a store to the same var with no load of it or
			// region in between.
			dead := false
			for j := i + 1; j < len(b.Items); j++ {
				next, ok := b.Items[j].(*ir.Instr)
				if !ok {
					break // region: anything may read
				}
				if next.Op == ir.OpLoad && next.Var == in.Var {
					break
				}
				if next.Op == ir.OpDiscard {
					break
				}
				if next.Op == ir.OpStore && next.Var == in.Var {
					dead = true
					break
				}
			}
			if dead {
				changed = true
				continue
			}
			out = append(out, it)
		}
		b.Items = out
	})
	return changed
}

// trivialDCE removes pure instructions with no uses, iterating to a fixed
// point (LLVM's isTriviallyDead loop — always on, which is why the ADCE
// flag never changes the output in practice, §VI-D1).
func trivialDCE(p *ir.Program) bool {
	changed := false
	for {
		uses := p.UseCounts()
		removed := false
		p.Body.WalkBlocks(func(b *ir.Block) {
			var out []ir.Item
			for _, it := range b.Items {
				if in, ok := it.(*ir.Instr); ok && in.IsPure() && in.HasResult() && uses[in] == 0 {
					removed = true
					continue
				}
				out = append(out, it)
			}
			b.Items = out
		})
		// Loads with no uses are also trivially dead (reads have no side
		// effects).
		usesAfter := p.UseCounts()
		p.Body.WalkBlocks(func(b *ir.Block) {
			var out []ir.Item
			for _, it := range b.Items {
				if in, ok := it.(*ir.Instr); ok && in.Op == ir.OpLoad && usesAfter[in] == 0 {
					removed = true
					continue
				}
				out = append(out, it)
			}
			b.Items = out
		})
		if !removed {
			break
		}
		changed = true
	}
	return changed
}

// simplifyRegions folds constant-condition ifs, removes empty regions, and
// deletes zero-trip loops.
func simplifyRegions(p *ir.Program) bool {
	changed := false
	var walk func(b *ir.Block) bool
	walk = func(b *ir.Block) bool {
		local := false
		var out []ir.Item
		for _, it := range b.Items {
			switch item := it.(type) {
			case *ir.If:
				if walk(item.Then) {
					local = true
				}
				if item.Else != nil && walk(item.Else) {
					local = true
				}
				if item.Cond.Op == ir.OpConst {
					if item.Cond.Const.B[0] {
						out = append(out, item.Then.Items...)
					} else if item.Else != nil {
						out = append(out, item.Else.Items...)
					}
					local = true
					continue
				}
				emptyThen := len(item.Then.Items) == 0
				emptyElse := item.Else == nil || len(item.Else.Items) == 0
				if emptyThen && emptyElse {
					local = true
					continue
				}
				if emptyThen && !emptyElse {
					// Invert: if(!c) else-branch.
					neg := p.NewInstr(ir.OpUn, sem.Bool, item.Cond)
					neg.UnOp = "!"
					out = append(out, neg)
					item.Cond = neg
					item.Then = item.Else
					item.Else = nil
					local = true
					out = append(out, item)
					continue
				}
				out = append(out, item)
			case *ir.Loop:
				if walk(item.Body) {
					local = true
				}
				if n, ok := item.TripCount(); ok && n == 0 {
					local = true
					continue
				}
				if len(item.Body.Items) == 0 {
					local = true
					continue
				}
				out = append(out, item)
			case *ir.While:
				if walk(item.Cond) {
					local = true
				}
				if walk(item.Body) {
					local = true
				}
				condPure := len(storedVars(item.Cond)) == 0 && !hasDiscard(item.Cond)
				if item.CondVal.Op == ir.OpConst && !item.CondVal.Const.B[0] && condPure {
					local = true
					continue
				}
				out = append(out, item)
			default:
				out = append(out, it)
			}
		}
		b.Items = out
		return local
	}
	for walk(p.Body) {
		changed = true
	}
	return changed
}

// sortedVarsByName is a helper for deterministic iteration in passes.
func sortedVarsByName(m map[*ir.Var]bool) []*ir.Var {
	out := make([]*ir.Var, 0, len(m))
	for v := range m {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
