package passes

import (
	"shaderopt/internal/ir"
	"shaderopt/internal/sem"
)

// Hoist flattens conditionals: an if/else whose arms contain only pure
// computation and variable assignments becomes straight-line code with
// select instructions ("changing assignments inside 'if' blocks into
// 'select' instructions", §III-A). Like LunarGlass it applies without a
// size budget, which is how the "very large basic blocks" artefact arises.
func Hoist(p *ir.Program) bool {
	return HoistWithBudget(p, 1<<30)
}

// HoistWithBudget flattens only conditionals whose combined arm size stays
// within maxArmOps instructions. Driver models use small budgets (JITs
// if-convert conservatively); the offline pass uses no budget, which is
// where the pathological large-block cases come from.
func HoistWithBudget(p *ir.Program, maxArmOps int) bool {
	changed := false
	var walk func(b *ir.Block) bool
	walk = func(b *ir.Block) bool {
		local := false
		var out []ir.Item
		for _, it := range b.Items {
			switch item := it.(type) {
			case *ir.If:
				// Innermost-first: flatten nested ifs so outer ones become
				// eligible.
				if walk(item.Then) {
					local = true
				}
				if item.Else != nil && walk(item.Else) {
					local = true
				}
				if item.Then.CountInstrs()+elseCount(item) <= maxArmOps {
					if flat, ok := flattenIf(p, item); ok {
						out = append(out, flat...)
						local = true
						continue
					}
				}
				out = append(out, item)
			case *ir.Loop:
				if walk(item.Body) {
					local = true
				}
				out = append(out, item)
			case *ir.While:
				if walk(item.Cond) {
					local = true
				}
				if walk(item.Body) {
					local = true
				}
				out = append(out, item)
			default:
				out = append(out, it)
			}
		}
		b.Items = out
		return local
	}
	for walk(p.Body) {
		changed = true
	}
	if changed {
		p.RenumberIDs()
	}
	return changed
}

func elseCount(item *ir.If) int {
	if item.Else == nil {
		return 0
	}
	return item.Else.CountInstrs()
}

// flattenIf converts one if/else into hoisted items + selects. It succeeds
// only when both arms are straight-line, side-effect-free except for var
// stores, and no arm loads a var after storing it (canonicalization's
// forwarding guarantees that shape).
func flattenIf(p *ir.Program, item *ir.If) ([]ir.Item, bool) {
	if !armHoistable(item.Then) {
		return nil, false
	}
	if item.Else != nil && !armHoistable(item.Else) {
		return nil, false
	}

	var out []ir.Item
	thenVals := map[*ir.Var]*ir.Instr{}
	elseVals := map[*ir.Var]*ir.Instr{}

	hoistArm := func(b *ir.Block, vals map[*ir.Var]*ir.Instr) {
		for _, it := range b.Items {
			in := it.(*ir.Instr)
			if in.Op == ir.OpStore {
				vals[in.Var] = in.Args[0]
				continue
			}
			out = append(out, in)
		}
	}
	hoistArm(item.Then, thenVals)
	if item.Else != nil {
		hoistArm(item.Else, elseVals)
	}

	// Stored vars in deterministic order.
	varSet := map[*ir.Var]bool{}
	for v := range thenVals {
		varSet[v] = true
	}
	for v := range elseVals {
		varSet[v] = true
	}
	for _, v := range sortedVarsByName(varSet) {
		tv, ev := thenVals[v], elseVals[v]
		if tv == nil || ev == nil {
			// One arm keeps the old value: load it before the select.
			ld := p.NewInstr(ir.OpLoad, v.Type)
			ld.Var = v
			out = append(out, ld)
			if tv == nil {
				tv = ld
			} else {
				ev = ld
			}
		}
		sel := p.NewInstr(ir.OpSelect, v.Type, item.Cond, tv, ev)
		st := p.NewInstr(ir.OpStore, sem.Void, sel)
		st.Var = v
		out = append(out, sel, st)
	}
	return out, true
}

// armHoistable reports whether a block is straight-line pure computation
// plus var stores, with no load-after-store hazards and at most one store
// per var.
func armHoistable(b *ir.Block) bool {
	if b.HasControlFlow() {
		return false
	}
	stored := map[*ir.Var]bool{}
	for _, it := range b.Items {
		in, ok := it.(*ir.Instr)
		if !ok {
			return false
		}
		switch in.Op {
		case ir.OpDiscard:
			return false
		case ir.OpStore:
			if stored[in.Var] {
				return false // double store: order matters
			}
			stored[in.Var] = true
		case ir.OpLoad:
			if stored[in.Var] {
				return false // would read the conditional value unconditionally
			}
		}
	}
	return true
}
