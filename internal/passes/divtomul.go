package passes

import (
	"shaderopt/internal/ir"
	"shaderopt/internal/sem"
)

// DivToMul changes float division by constant operands into multiplication
// by the operand's inverse, "which could be determined at compile time"
// (§III-B). The reciprocal is rounded to float64, so results can differ in
// the last bits — an unsafe transform no conformant driver may perform,
// which is exactly why it lives in the offline optimizer.
func DivToMul(p *ir.Program) bool {
	changed := false
	p.Body.WalkInstrs(func(in *ir.Instr) {
		if in.Op != ir.OpBin || in.BinOp != "/" || in.Type.Kind != sem.KindFloat {
			return
		}
		den := in.Args[1]
		if den.Op != ir.OpConst {
			return
		}
		for i := range den.Const.F {
			if den.Const.F[i] == 0 {
				return // keep the division (and its inf) intact
			}
		}
		inv := make([]float64, len(den.Const.F))
		for i, v := range den.Const.F {
			inv[i] = 1 / v
		}
		c := newConst(p, den.Type, &ir.ConstVal{Kind: sem.KindFloat, F: inv})
		insertBefore(p.Body, in, c)
		in.BinOp = "*"
		in.Args[1] = c
		changed = true
	})
	if changed {
		p.RenumberIDs()
	}
	return changed
}
