package passes

import (
	"sort"

	"shaderopt/internal/ir"
	"shaderopt/internal/sem"
)

// Reassociate is the LunarGlass default integer reassociation pass:
// integer add/sub trees are flattened into linear combinations, constants
// folded together, and identical terms combined or cancelled
// (a+b-a -> b). It also performs the safe-ish float identity
// simplifications LLVM's reassociate applies ("or some floating-point
// expressions like f × 0", §III-A): x+0 -> x, x*1 -> x, x*0 -> 0.
// Integers are rare in shaders, so — matching the paper §VI-D3 — its main
// visible effect on the corpus is the float identity cleanup.
func Reassociate(p *ir.Program) bool {
	changed := false
	if reassocIntSums(p) {
		changed = true
	}
	if floatIdentities(p) {
		changed = true
	}
	if changed {
		trivialDCE(p)
		p.RenumberIDs()
	}
	return changed
}

// reassocIntSums rewrites scalar-int +/- trees as canonical linear sums.
func reassocIntSums(p *ir.Program) bool {
	changed := false
	uses := p.UseCounts()

	var roots []*ir.Instr
	users := userMap(p)
	p.Body.WalkInstrs(func(in *ir.Instr) {
		if !isIntAddSub(in) {
			return
		}
		// Roots: not consumed solely by another int add/sub (those are
		// interior nodes of the same tree).
		interior := len(users[in]) == 1 && isIntAddSub(users[in][0]) && uses[in] == 1
		if !interior {
			roots = append(roots, in)
		}
	})

	for _, root := range roots {
		terms := map[*ir.Instr]int64{}
		var constant int64
		var order []*ir.Instr
		count := 0
		var flatten func(in *ir.Instr, sign int64)
		flatten = func(in *ir.Instr, sign int64) {
			count++
			switch {
			case in.Op == ir.OpConst:
				constant += sign * in.Const.Int(0)
				return
			case isIntAddSub(in) && (in == root || uses[in] == 1):
				flatten(in.Args[0], sign)
				if in.BinOp == "+" {
					flatten(in.Args[1], sign)
				} else {
					flatten(in.Args[1], -sign)
				}
				return
			case in.Op == ir.OpUn && in.UnOp == "-" && in.Type.Equal(sem.Int) && uses[in] == 1:
				flatten(in.Args[0], -sign)
				return
			case in.Op == ir.OpBin && in.BinOp == "*" && in.Type.Equal(sem.Int) &&
				in.Args[1].Op == ir.OpConst && uses[in] == 1:
				flatten(in.Args[0], sign*in.Args[1].Const.Int(0))
				return
			}
			if _, seen := terms[in]; !seen {
				order = append(order, in)
			}
			terms[in] += sign
		}
		flatten(root, 1)
		if count <= 1 || len(order) > 64 {
			continue
		}

		// Rebuild canonically: terms by ascending ID, constant last.
		sort.Slice(order, func(i, j int) bool { return order[i].ID < order[j].ID })
		var emitted []*ir.Instr
		var total *ir.Instr
		add := func(v *ir.Instr, coeff int64) {
			if coeff == 0 {
				return
			}
			term := v
			switch coeff {
			case 1:
			case -1:
				if total == nil {
					neg := p.NewInstr(ir.OpUn, sem.Int, v)
					neg.UnOp = "-"
					emitted = append(emitted, neg)
					term = neg
				} else {
					sub := p.NewInstr(ir.OpBin, sem.Int, total, v)
					sub.BinOp = "-"
					emitted = append(emitted, sub)
					total = sub
					return
				}
			default:
				c := newConst(p, sem.Int, ir.IntConst(abs64(coeff)))
				mul := p.NewInstr(ir.OpBin, sem.Int, v, c)
				mul.BinOp = "*"
				emitted = append(emitted, c, mul)
				term = mul
				if coeff < 0 {
					if total != nil {
						sub := p.NewInstr(ir.OpBin, sem.Int, total, mul)
						sub.BinOp = "-"
						emitted = append(emitted, sub)
						total = sub
						return
					}
					neg := p.NewInstr(ir.OpUn, sem.Int, mul)
					neg.UnOp = "-"
					emitted = append(emitted, neg)
					term = neg
				}
			}
			if total == nil {
				total = term
			} else {
				sum := p.NewInstr(ir.OpBin, sem.Int, total, term)
				sum.BinOp = "+"
				emitted = append(emitted, sum)
				total = sum
			}
		}
		for _, v := range order {
			add(v, terms[v])
		}
		if constant != 0 || total == nil {
			c := newConst(p, sem.Int, ir.IntConst(constant))
			emitted = append(emitted, c)
			if total == nil {
				total = c
			} else {
				sum := p.NewInstr(ir.OpBin, sem.Int, total, c)
				sum.BinOp = "+"
				emitted = append(emitted, sum)
				total = sum
			}
		}
		// Only rewrite when the canonical form is no larger.
		if len(emitted) >= count {
			continue
		}
		if len(emitted) > 0 {
			insertBefore(p.Body, root, emitted...)
		}
		replaceUses(p, root, total)
		changed = true
	}
	return changed
}

func isIntAddSub(in *ir.Instr) bool {
	return in.Op == ir.OpBin && (in.BinOp == "+" || in.BinOp == "-") && in.Type.Equal(sem.Int)
}

func abs64(v int64) int64 {
	if v < 0 {
		return -v
	}
	return v
}

// floatIdentities removes x+0, x-0, x*1 and rewrites x*0 to 0.
func floatIdentities(p *ir.Program) bool {
	changed := false
	p.Body.WalkInstrs(func(in *ir.Instr) {
		if in.Op != ir.OpBin || in.Type.Kind != sem.KindFloat || in.Type.IsMatrix() {
			return
		}
		if in.Args[0].Type.IsMatrix() || in.Args[1].Type.IsMatrix() {
			return
		}
		x, y := in.Args[0], in.Args[1]
		xc, xok := splatConstOf(x)
		yc, yok := splatConstOf(y)
		switch in.BinOp {
		case "+":
			if yok && yc == 0 {
				replaceUses(p, in, x)
				changed = true
			} else if xok && xc == 0 {
				replaceUses(p, in, y)
				changed = true
			}
		case "-":
			if yok && yc == 0 {
				replaceUses(p, in, x)
				changed = true
			}
		case "*":
			switch {
			case yok && yc == 1:
				replaceUses(p, in, x)
				changed = true
			case xok && xc == 1:
				replaceUses(p, in, y)
				changed = true
			case yok && yc == 0:
				makeConst(in, ir.SplatFloat(0, in.Type.Components()))
				changed = true
			case xok && xc == 0:
				makeConst(in, ir.SplatFloat(0, in.Type.Components()))
				changed = true
			}
		case "/":
			if yok && yc == 1 {
				replaceUses(p, in, x)
				changed = true
			}
		}
	})
	return changed
}
