package passes

import (
	"shaderopt/internal/ir"
)

// ADCE is aggressive dead code elimination: assume everything dead, mark
// live from observable effects (output stores and discards), then sweep.
// Because the always-on canonicalization already removes trivially dead
// instructions and dead stores, this pass "in practice never changes the
// source output" (§VI-D1) — exactly the paper's observation — but it is a
// real mark-sweep implementation and does fire on IR that has not been
// canonicalized.
func ADCE(p *ir.Program) bool {
	live := map[*ir.Instr]bool{}
	liveVars := map[*ir.Var]bool{}
	for _, out := range p.Outputs {
		liveVars[out] = true
	}

	// Iterate to a fixed point: effects and everything they need.
	for {
		grew := false
		mark := func(in *ir.Instr) {
			if !live[in] {
				live[in] = true
				grew = true
			}
		}
		var walkBlock func(b *ir.Block, condLive bool, conds []*ir.Instr)
		walkBlock = func(b *ir.Block, condLive bool, conds []*ir.Instr) {
			markConds := func() {
				for _, c := range conds {
					mark(c)
				}
			}
			for _, it := range b.Items {
				switch it := it.(type) {
				case *ir.Instr:
					switch it.Op {
					case ir.OpDiscard:
						mark(it)
						markConds()
					case ir.OpStore:
						if liveVars[it.Var] {
							mark(it)
							markConds()
						}
					}
					if live[it] {
						for _, a := range it.Args {
							mark(a)
						}
						if it.Op == ir.OpLoad && !liveVars[it.Var] {
							liveVars[it.Var] = true
							grew = true
						}
					}
				case *ir.If:
					walkBlock(it.Then, condLive, append(conds, it.Cond))
					if it.Else != nil {
						walkBlock(it.Else, condLive, append(conds, it.Cond))
					}
				case *ir.Loop:
					liveVars[it.Counter] = liveVars[it.Counter] // counter only live if loaded
					walkBlock(it.Body, condLive, append(conds, it.Start, it.End, it.Step))
				case *ir.While:
					// Loop trip count is control-dependent on the cond value.
					walkBlock(it.Body, condLive, append(conds, it.CondVal))
					// If anything in the body is live, the cond chain is too;
					// handled by the conds propagation on live items inside.
					walkBlock(it.Cond, condLive, conds)
				}
			}
		}
		walkBlock(p.Body, false, nil)
		if !grew {
			break
		}
	}

	// Sweep: remove non-live pure instructions and dead stores; drop empty
	// regions.
	changed := false
	var sweep func(b *ir.Block)
	sweep = func(b *ir.Block) {
		var out []ir.Item
		for _, it := range b.Items {
			switch it := it.(type) {
			case *ir.Instr:
				keep := live[it]
				if !keep {
					changed = true
					continue
				}
				out = append(out, it)
			case *ir.If:
				sweep(it.Then)
				if it.Else != nil {
					sweep(it.Else)
				}
				if len(it.Then.Items) == 0 && (it.Else == nil || len(it.Else.Items) == 0) {
					changed = true
					continue
				}
				out = append(out, it)
			case *ir.Loop:
				sweep(it.Body)
				if len(it.Body.Items) == 0 {
					changed = true
					continue
				}
				out = append(out, it)
			case *ir.While:
				sweep(it.Body)
				// Keep the cond block intact: its value controls
				// termination and is marked live transitively.
				keepCond := make([]ir.Item, 0, len(it.Cond.Items))
				for _, ci := range it.Cond.Items {
					if in, ok := ci.(*ir.Instr); ok && !live[in] && in != it.CondVal {
						changed = true
						continue
					}
					keepCond = append(keepCond, ci)
				}
				it.Cond.Items = keepCond
				out = append(out, it)
			}
		}
		b.Items = out
	}
	// The while cond value must always be live.
	p.Body.WalkBlocks(func(b *ir.Block) {
		for _, it := range b.Items {
			if w, ok := it.(*ir.While); ok {
				live[w.CondVal] = true
				var markTree func(in *ir.Instr)
				markTree = func(in *ir.Instr) {
					live[in] = true
					for _, a := range in.Args {
						markTree(a)
					}
				}
				markTree(w.CondVal)
			}
		}
	})
	sweep(p.Body)
	if changed {
		p.RenumberIDs()
	}
	return changed
}
