package passes

import (
	"shaderopt/internal/ir"
	"shaderopt/internal/sem"
)

// ScalarizeMatrices expands matrix algebra into per-component scalar
// arithmetic — LunarGlass artefact §III-C(a): "instead of 2 lines of
// matrix-vector calculations, tens of lines worth of scalarized
// calculations will be generated". The offline pipeline always applies it
// (LLVM's middle end has no matrix types); vendor drivers do NOT, which is
// why running a shader through the offline optimizer can be a net loss
// even before any optional pass runs.
func ScalarizeMatrices(p *ir.Program) bool {
	changed := false
	for {
		var target *ir.Instr
		p.Body.WalkInstrs(func(in *ir.Instr) {
			if target != nil {
				return
			}
			switch in.Op {
			case ir.OpBin:
				if in.Args[0].Type.IsMatrix() || in.Args[1].Type.IsMatrix() {
					target = in
				}
			case ir.OpUn:
				if in.Type.IsMatrix() {
					target = in
				}
			}
		})
		if target == nil {
			break
		}
		expandMatrixOp(p, target)
		changed = true
	}
	if changed {
		p.RenumberIDs()
	}
	return changed
}

// expandMatrixOp rewrites one matrix instruction into scalar sequences
// inserted before it.
func expandMatrixOp(p *ir.Program, root *ir.Instr) {
	e := &expander{p: p}
	var result *ir.Instr
	if root.Op == ir.OpUn {
		result = e.negate(root.Args[0])
	} else {
		x, y := root.Args[0], root.Args[1]
		xt, yt := x.Type, y.Type
		switch {
		case root.BinOp == "*" && xt.IsMatrix() && yt.IsVector():
			result = e.matVec(x, y)
		case root.BinOp == "*" && xt.IsVector() && yt.IsMatrix():
			result = e.vecMat(x, y)
		case root.BinOp == "*" && xt.IsMatrix() && yt.IsMatrix():
			result = e.matMat(x, y)
		case (root.BinOp == "+" || root.BinOp == "-") && xt.IsMatrix():
			result = e.colwise(root.BinOp, x, y)
		case root.BinOp == "*" && xt.IsMatrix() && yt.IsScalar():
			result = e.scale("*", x, y)
		case root.BinOp == "/" && xt.IsMatrix() && yt.IsScalar():
			result = e.scale("/", x, y)
		case root.BinOp == "*" && xt.IsScalar() && yt.IsMatrix():
			result = e.scale("*", y, x)
		default:
			return // leave unknown forms intact (verifier rejects them anyway)
		}
	}
	insertBefore(p.Body, root, e.emitted...)
	replaceUses(p, root, result)
	// Neutralize the old instruction in place (it may still be referenced
	// as this walk's cursor): a single-operand construct is a plain copy,
	// which canonicalization folds away.
	root.Op = ir.OpConstruct
	root.Args = []*ir.Instr{result}
	root.BinOp = ""
	root.UnOp = ""
}

type expander struct {
	p       *ir.Program
	emitted []*ir.Instr
}

func (e *expander) emit(in *ir.Instr) *ir.Instr {
	e.emitted = append(e.emitted, in)
	return in
}

func (e *expander) extract(agg *ir.Instr, idx int) *ir.Instr {
	var t sem.Type
	switch {
	case agg.Type.IsMatrix():
		t = sem.VecType(sem.KindFloat, agg.Type.Mat)
	case agg.Type.IsVector():
		t = agg.Type.ScalarOf()
	default:
		t = agg.Type
	}
	in := e.p.NewInstr(ir.OpExtract, t, agg)
	in.Index = idx
	return e.emit(in)
}

func (e *expander) bin(op string, t sem.Type, x, y *ir.Instr) *ir.Instr {
	in := e.p.NewInstr(ir.OpBin, t, x, y)
	in.BinOp = op
	return e.emit(in)
}

func (e *expander) construct(t sem.Type, args ...*ir.Instr) *ir.Instr {
	return e.emit(e.p.NewInstr(ir.OpConstruct, t, args...))
}

// matVec: out_i = Σ_j m[j][i] * v[j], fully scalar.
func (e *expander) matVec(m, v *ir.Instr) *ir.Instr {
	n := m.Type.Mat
	cols := make([]*ir.Instr, n)
	elems := make([]*ir.Instr, n)
	for j := 0; j < n; j++ {
		cols[j] = e.extract(m, j)
		elems[j] = e.extract(v, j)
	}
	comps := make([]*ir.Instr, n)
	for i := 0; i < n; i++ {
		var sum *ir.Instr
		for j := 0; j < n; j++ {
			prod := e.bin("*", sem.Float, e.extract(cols[j], i), elems[j])
			if sum == nil {
				sum = prod
			} else {
				sum = e.bin("+", sem.Float, sum, prod)
			}
		}
		comps[i] = sum
	}
	return e.construct(sem.VecType(sem.KindFloat, n), comps...)
}

// vecMat: out_j = Σ_i v[i] * m[j][i].
func (e *expander) vecMat(v, m *ir.Instr) *ir.Instr {
	n := m.Type.Mat
	elems := make([]*ir.Instr, n)
	for i := 0; i < n; i++ {
		elems[i] = e.extract(v, i)
	}
	comps := make([]*ir.Instr, n)
	for j := 0; j < n; j++ {
		col := e.extract(m, j)
		var sum *ir.Instr
		for i := 0; i < n; i++ {
			prod := e.bin("*", sem.Float, elems[i], e.extract(col, i))
			if sum == nil {
				sum = prod
			} else {
				sum = e.bin("+", sem.Float, sum, prod)
			}
		}
		comps[j] = sum
	}
	return e.construct(sem.VecType(sem.KindFloat, n), comps...)
}

// matMat: out[j][i] = Σ_k m1[k][i] * m2[j][k].
func (e *expander) matMat(m1, m2 *ir.Instr) *ir.Instr {
	n := m1.Type.Mat
	cols1 := make([]*ir.Instr, n)
	cols2 := make([]*ir.Instr, n)
	for k := 0; k < n; k++ {
		cols1[k] = e.extract(m1, k)
		cols2[k] = e.extract(m2, k)
	}
	outCols := make([]*ir.Instr, n)
	for j := 0; j < n; j++ {
		comps := make([]*ir.Instr, n)
		for i := 0; i < n; i++ {
			var sum *ir.Instr
			for k := 0; k < n; k++ {
				prod := e.bin("*", sem.Float, e.extract(cols1[k], i), e.extract(cols2[j], k))
				if sum == nil {
					sum = prod
				} else {
					sum = e.bin("+", sem.Float, sum, prod)
				}
			}
			comps[i] = sum
		}
		outCols[j] = e.construct(sem.VecType(sem.KindFloat, n), comps...)
	}
	return e.construct(m1.Type, outCols...)
}

// colwise: componentwise matrix add/sub via column vectors.
func (e *expander) colwise(op string, x, y *ir.Instr) *ir.Instr {
	n := x.Type.Mat
	cols := make([]*ir.Instr, n)
	for j := 0; j < n; j++ {
		cols[j] = e.bin(op, sem.VecType(sem.KindFloat, n), e.extract(x, j), e.extract(y, j))
	}
	return e.construct(x.Type, cols...)
}

// scale: matrix × scalar (or ÷) via splatted columns.
func (e *expander) scale(op string, m, s *ir.Instr) *ir.Instr {
	n := m.Type.Mat
	args := make([]*ir.Instr, n)
	for i := range args {
		args[i] = s
	}
	splat := e.construct(sem.VecType(sem.KindFloat, n), args...)
	cols := make([]*ir.Instr, n)
	for j := 0; j < n; j++ {
		cols[j] = e.bin(op, sem.VecType(sem.KindFloat, n), e.extract(m, j), splat)
	}
	return e.construct(m.Type, cols...)
}

// negate: columnwise negation.
func (e *expander) negate(m *ir.Instr) *ir.Instr {
	n := m.Type.Mat
	cols := make([]*ir.Instr, n)
	for j := 0; j < n; j++ {
		neg := e.p.NewInstr(ir.OpUn, sem.VecType(sem.KindFloat, n), e.extract(m, j))
		neg.UnOp = "-"
		cols[j] = e.emit(neg)
	}
	return e.construct(m.Type, cols...)
}
