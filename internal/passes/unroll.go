package passes

import (
	"shaderopt/internal/ir"
	"shaderopt/internal/sem"
)

// unrollMaxTrips bounds the trip count of loops the Unroll pass expands.
const unrollMaxTrips = 128

// unrollMaxInstrs bounds the total instructions created by one unroll.
const unrollMaxInstrs = 8192

// Unroll performs "simple loop unrolling for constant loop indices"
// (§III-A): counted loops with static trip counts are fully expanded, the
// counter loads replaced by iteration constants. This is the transform
// behind the motivating example's win, and the source of the "very large
// basic blocks" artefact (§III-C).
func Unroll(p *ir.Program) bool {
	return UnrollWithLimit(p, unrollMaxTrips, unrollMaxInstrs)
}

// UnrollWithLimit unrolls loops up to the given trip-count and
// expanded-size budgets. The vendor driver models use this with their own
// heuristic budgets (e.g. a JIT that only unrolls small bodies).
func UnrollWithLimit(p *ir.Program, maxTrips, maxInstrs int) bool {
	if maxTrips <= 0 {
		return false
	}
	changed := false
	var walk func(b *ir.Block) bool
	walk = func(b *ir.Block) bool {
		local := false
		var out []ir.Item
		for _, it := range b.Items {
			switch item := it.(type) {
			case *ir.Loop:
				// Innermost first so nested constant loops expand fully.
				if walk(item.Body) {
					local = true
				}
				trips, ok := item.TripCount()
				if !ok || trips > maxTrips ||
					trips*item.Body.CountInstrs() > maxInstrs {
					out = append(out, item)
					continue
				}
				start := item.Start.Const.Int(0)
				step := item.Step.Const.Int(0)
				iv := start
				for n := 0; n < trips; n++ {
					subst := map[*ir.Instr]*ir.Instr{}
					clone := p.CloneBlock(item.Body, subst, map[*ir.Var]*ir.Var{})
					// Replace loads of the counter with this iteration's
					// constant.
					clone.WalkInstrs(func(in *ir.Instr) {
						if in.Op == ir.OpLoad && in.Var == item.Counter {
							makeConst(in, ir.IntConst(iv))
							in.Type = sem.Int
						}
					})
					out = append(out, clone.Items...)
					iv += step
				}
				local = true
			case *ir.If:
				if walk(item.Then) {
					local = true
				}
				if item.Else != nil && walk(item.Else) {
					local = true
				}
				out = append(out, item)
			case *ir.While:
				if walk(item.Body) {
					local = true
				}
				out = append(out, item)
			default:
				out = append(out, it)
			}
		}
		b.Items = out
		return local
	}
	for walk(p.Body) {
		changed = true
	}
	if changed {
		p.RenumberIDs()
	}
	return changed
}
