package passes

import "shaderopt/internal/ir"

// Run applies the optimizer with the given flag set: the always-on
// canonicalization pipeline first (constant folding, local CSE, redundant
// load/store elimination — the passes LunarGlass cannot disable, §III-A),
// then the flagged passes in a fixed LunarGlass-like order,
// re-canonicalizing after each structural change. The result is
// deterministic: the same program and flags always produce the same IR.
func Run(p *ir.Program, flags Flags) {
	Prepare(p)
	RunFlagged(p, flags)
}

// Prepare runs the flag-independent prefix of the optimizer: matrix
// scalarization and the first canonicalization fixed point. Every flag
// combination shares this work, so enumeration prepares a program once
// and clones the result per combination. Run == Prepare + RunFlagged.
func Prepare(p *ir.Program) {
	// The offline middle end has no matrix types: scalarization always
	// happens, independent of flags — it is the §III-C(a) codegen artefact
	// all measurements relative to the all-off baseline share.
	ScalarizeMatrices(p)
	Canonicalize(p)
}

// RunFlagged applies the flagged passes to an already-Prepared program.
func RunFlagged(p *ir.Program, flags Flags) {
	if flags.Has(FlagUnroll) {
		if Unroll(p) {
			Canonicalize(p)
		}
	}
	if flags.Has(FlagHoist) {
		if Hoist(p) {
			Canonicalize(p)
		}
	}
	if flags.Has(FlagReassociate) {
		if Reassociate(p) {
			Canonicalize(p)
		}
	}
	if flags.Has(FlagDivToMul) {
		if DivToMul(p) {
			Canonicalize(p)
		}
	}
	if flags.Has(FlagFPReassociate) {
		FPReassoc(p) // canonicalizes internally per round
	}
	if flags.Has(FlagGVN) {
		if GVN(p) {
			Canonicalize(p)
		}
	}
	if flags.Has(FlagCoalesce) {
		Coalesce(p) // canonicalizes internally when it fires
	}
	if flags.Has(FlagADCE) {
		if ADCE(p) {
			Canonicalize(p)
		}
	}
	p.RenumberIDs()
}
