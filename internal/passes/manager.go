package passes

import "shaderopt/internal/ir"

// Run applies the optimizer with the given flag set: the always-on
// canonicalization pipeline first (constant folding, local CSE, redundant
// load/store elimination — the passes LunarGlass cannot disable, §III-A),
// then the flagged passes in a fixed LunarGlass-like order,
// re-canonicalizing after each structural change. The result is
// deterministic: the same program and flags always produce the same IR.
func Run(p *ir.Program, flags Flags) {
	Prepare(p)
	RunFlagged(p, flags)
}

// Prepare runs the flag-independent prefix of the optimizer: matrix
// scalarization and the first canonicalization fixed point. Every flag
// combination shares this work, so enumeration prepares a program once
// and clones the result per combination. Run == Prepare + RunFlagged.
func Prepare(p *ir.Program) {
	// The offline middle end has no matrix types: scalarization always
	// happens, independent of flags — it is the §III-C(a) codegen artefact
	// all measurements relative to the all-off baseline share.
	ScalarizeMatrices(p)
	Canonicalize(p)
}

// RunFlagged applies the flagged passes to an already-Prepared program:
// the steps of FlaggedSteps in order, for every flag in the set, then a
// final ID renumbering. Incremental pipelines (the memoized variant
// enumeration) replay the same step list one step at a time, so the two
// paths cannot drift.
func RunFlagged(p *ir.Program, flags Flags) {
	for _, st := range flaggedSteps {
		if flags.Has(st.Flag) {
			st.Run(p)
		}
	}
	p.RenumberIDs()
}

// Step is one flagged stage of the optimizer pipeline: the flag that
// enables it and the transformation it applies (the pass itself plus the
// re-canonicalization RunFlagged performs after a structural change).
// Steps are pure functions of the program: the same input program always
// produces the same output program.
type Step struct {
	// Flag is the combination bit that enables this step.
	Flag Flags
	// Run applies the step in place.
	Run func(p *ir.Program)
	// NameBlind reports that the step's output is independent of
	// identifier spellings: running it on two alpha-equivalent programs
	// yields alpha-equivalent results under the same renaming, so a
	// cross-shader enumeration may transport one program's result onto
	// the other by renaming interface slots. Every step qualifies except
	// Hoist, which orders the select/store pairs it synthesizes by
	// variable name (sortedVarsByName), so its *output* can depend on
	// spellings even though its firing decision is purely structural.
	NameBlind bool
}

// flaggedSteps is the fixed LunarGlass-like pass order. RunFlagged and the
// enumeration trie both execute exactly this list; each entry bundles the
// pass with its conditional re-canonicalization.
var flaggedSteps = []Step{
	{Flag: FlagUnroll, NameBlind: true, Run: func(p *ir.Program) {
		if Unroll(p) {
			Canonicalize(p)
		}
	}},
	// Hoist is the one name-sensitive step: see Step.NameBlind.
	{Flag: FlagHoist, NameBlind: false, Run: func(p *ir.Program) {
		if Hoist(p) {
			Canonicalize(p)
		}
	}},
	{Flag: FlagReassociate, NameBlind: true, Run: func(p *ir.Program) {
		if Reassociate(p) {
			Canonicalize(p)
		}
	}},
	{Flag: FlagDivToMul, NameBlind: true, Run: func(p *ir.Program) {
		if DivToMul(p) {
			Canonicalize(p)
		}
	}},
	{Flag: FlagFPReassociate, NameBlind: true, Run: func(p *ir.Program) {
		FPReassoc(p) // canonicalizes internally per round
	}},
	{Flag: FlagGVN, NameBlind: true, Run: func(p *ir.Program) {
		if GVN(p) {
			Canonicalize(p)
		}
	}},
	{Flag: FlagCoalesce, NameBlind: true, Run: func(p *ir.Program) {
		Coalesce(p) // canonicalizes internally when it fires
	}},
	{Flag: FlagADCE, NameBlind: true, Run: func(p *ir.Program) {
		if ADCE(p) {
			Canonicalize(p)
		}
	}},
}

// FlaggedSteps returns the flagged pipeline stages in execution order.
// Callers must not mutate the returned slice.
func FlaggedSteps() []Step { return flaggedSteps }

// Finish completes a program assembled step by step: the final ID
// renumbering RunFlagged ends with. Apply it to a clone just before
// codegen so printed output is identical to a monolithic Run.
func Finish(p *ir.Program) { p.RenumberIDs() }
