package passes

import (
	"shaderopt/internal/ir"
)

// GVN performs global value numbering over the structured region tree:
// pure instructions are merged with any equivalent instruction defined in
// an enclosing (dominating) scope, extending the always-on per-block CSE
// across conditional arms and loop bodies. As in the paper, it "applies
// mainly to the few more complex shaders" — straight-line duplicates are
// already gone by the time GVN runs (§VI-D2).
func GVN(p *ir.Program) bool {
	changed := false
	type scope struct {
		table  map[vnKey]*ir.Instr
		parent *scope
	}
	lookup := func(s *scope, key vnKey) (*ir.Instr, bool) {
		for ; s != nil; s = s.parent {
			if v, ok := s.table[key]; ok {
				return v, true
			}
		}
		return nil, false
	}

	var walk func(b *ir.Block, parent *scope)
	walk = func(b *ir.Block, parent *scope) {
		cur := &scope{table: map[vnKey]*ir.Instr{}, parent: parent}
		for _, it := range b.Items {
			switch it := it.(type) {
			case *ir.Instr:
				if !it.IsPure() || !it.HasResult() {
					continue
				}
				key := instrKey(it)
				if prev, ok := lookup(cur, key); ok && prev != it {
					replaceUses(p, it, prev)
					changed = true
					continue
				}
				cur.table[key] = it
			case *ir.If:
				walk(it.Then, cur)
				if it.Else != nil {
					walk(it.Else, cur)
				}
			case *ir.Loop:
				walk(it.Body, cur)
			case *ir.While:
				walk(it.Cond, cur)
				walk(it.Body, cur)
			}
		}
	}
	walk(p.Body, nil)
	if changed {
		trivialDCE(p)
		p.RenumberIDs()
	}
	return changed
}
