package passes

import (
	"fmt"
	"strings"
)

// Flags selects which optional optimization passes run, mirroring
// LunarGlass's command-line flags plus the paper's two custom unsafe
// floating point additions. With 8 flags there are 256 combinations —
// small enough for the exhaustive search of §III-A.
type Flags uint16

// The eight flags, in the paper's Table I column order.
const (
	FlagADCE Flags = 1 << iota
	FlagCoalesce
	FlagGVN
	FlagReassociate
	FlagUnroll
	FlagHoist
	FlagFPReassociate
	FlagDivToMul
)

// NumFlags is the number of independent flags.
const NumFlags = 8

// AllFlags enables everything.
const AllFlags Flags = 1<<NumFlags - 1

// DefaultFlags matches LunarGlass's defaults: the six pre-existing passes
// are on, the two custom unsafe floating point passes are off ("the best
// flags chosen experimentally are not the flags enabled by default",
// §VI-B).
const DefaultFlags = FlagADCE | FlagCoalesce | FlagGVN | FlagReassociate | FlagUnroll | FlagHoist

// NoFlags is the all-off baseline used to isolate per-flag impact from
// codegen artefacts (§VI-D, Figure 9).
const NoFlags Flags = 0

// flagOrder lists flags in canonical display order.
var flagOrder = []Flags{
	FlagADCE, FlagCoalesce, FlagGVN, FlagReassociate,
	FlagUnroll, FlagHoist, FlagFPReassociate, FlagDivToMul,
}

var flagNames = map[Flags]string{
	FlagADCE:          "adce",
	FlagCoalesce:      "coalesce",
	FlagGVN:           "gvn",
	FlagReassociate:   "reassociate",
	FlagUnroll:        "unroll",
	FlagHoist:         "hoist",
	FlagFPReassociate: "fp-reassociate",
	FlagDivToMul:      "div-to-mul",
}

// FlagList returns the individual flags in canonical order.
func FlagList() []Flags { return append([]Flags(nil), flagOrder...) }

// FlagName returns the command-line name of a single flag.
func FlagName(f Flags) string { return flagNames[f] }

// Has reports whether all bits in q are set.
func (f Flags) Has(q Flags) bool { return f&q == q }

// String renders the enabled set, e.g. "coalesce+unroll+fp-reassociate".
func (f Flags) String() string {
	if f == 0 {
		return "none"
	}
	var parts []string
	for _, fl := range flagOrder {
		if f.Has(fl) {
			parts = append(parts, flagNames[fl])
		}
	}
	return strings.Join(parts, "+")
}

// ParseFlags parses a "+"- or ","-separated list of flag names. "none",
// "default", and "all" are accepted.
func ParseFlags(s string) (Flags, error) {
	s = strings.TrimSpace(strings.ToLower(s))
	switch s {
	case "", "none":
		return NoFlags, nil
	case "default":
		return DefaultFlags, nil
	case "all":
		return AllFlags, nil
	}
	var out Flags
	for _, part := range strings.FieldsFunc(s, func(r rune) bool { return r == '+' || r == ',' }) {
		found := false
		for fl, name := range flagNames {
			if part == name {
				out |= fl
				found = true
				break
			}
		}
		if !found {
			return 0, fmt.Errorf("unknown optimization flag %q", part)
		}
	}
	return out, nil
}

// AllCombinations returns all 2^NumFlags flag sets in ascending bit order.
func AllCombinations() []Flags {
	out := make([]Flags, 0, 1<<NumFlags)
	for i := 0; i < 1<<NumFlags; i++ {
		out = append(out, Flags(i))
	}
	return out
}
