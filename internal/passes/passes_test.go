package passes

import (
	"math"
	"testing"

	"shaderopt/internal/exec"
	"shaderopt/internal/glsl"
	"shaderopt/internal/ir"
	"shaderopt/internal/lower"
	"shaderopt/internal/sem"
)

func mustLower(t *testing.T, src string) *ir.Program {
	t.Helper()
	sh, err := glsl.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	p, err := lower.Lower(sh, "test")
	if err != nil {
		t.Fatalf("lower: %v", err)
	}
	return p
}

func runProg(t *testing.T, p *ir.Program, env *exec.Env) *exec.Result {
	t.Helper()
	if env == nil {
		env = &exec.Env{}
	}
	res, err := exec.Run(p, env)
	if err != nil {
		t.Fatalf("run: %v\n%s", err, p)
	}
	return res
}

// checkEquiv optimizes src with flags and checks outputs match the
// unoptimized program under env, within tol (0 = exact).
func checkEquiv(t *testing.T, src string, flags Flags, env *exec.Env, tol float64) *ir.Program {
	t.Helper()
	ref := mustLower(t, src)
	opt := mustLower(t, src)
	Run(opt, flags)
	if err := opt.Verify(); err != nil {
		t.Fatalf("flags %v: optimized IR invalid: %v\n%s", flags, err, opt)
	}
	r1 := runProg(t, ref, env)
	r2 := runProg(t, opt, env)
	if r1.Discarded != r2.Discarded {
		t.Fatalf("flags %v: discard mismatch", flags)
	}
	for name, v1 := range r1.Outputs {
		v2 := r2.Outputs[name]
		if v2 == nil || v1.Len() != v2.Len() {
			t.Fatalf("flags %v: output %q shape mismatch", flags, name)
		}
		for i := 0; i < v1.Len(); i++ {
			a, b := v1.Float(i), v2.Float(i)
			if math.IsNaN(a) && math.IsNaN(b) {
				continue
			}
			diff := math.Abs(a - b)
			scale := math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
			if diff > tol*scale && diff > tol {
				t.Fatalf("flags %v: output %q[%d] = %v, want %v\n%s", flags, name, i, b, a, opt)
			}
		}
	}
	return opt
}

const testEnvShader = `
uniform sampler2D tex;
uniform vec4 ambient;
uniform float gain;
uniform int mode;
in vec2 uv;
in vec3 normal;
out vec4 color;
void main() {
    vec4 acc = vec4(0.0);
    float wsum = 0.0;
    const float w[5] = float[](0.1, 0.2, 0.4, 0.2, 0.1);
    for (int i = 0; i < 5; i++) {
        wsum += w[i];
        acc += w[i] * texture(tex, uv + vec2(float(i) * 0.01, 0.0)) * 2.0 * ambient;
    }
    acc /= wsum;
    vec3 n = normalize(normal);
    float d = max(dot(n, vec3(0.0, 0.0, 1.0)), 0.0);
    if (mode > 0) { acc = acc * d + acc * gain; } else { acc = acc * d; }
    vec4 outc = vec4(0.0);
    outc.x = acc.x; outc.y = acc.y; outc.z = acc.z; outc.w = 1.0;
    color = outc / 2.0;
}
`

func testEnv() *exec.Env {
	return &exec.Env{
		Uniforms: map[string]*ir.ConstVal{
			"ambient": ir.FloatConst(0.9, 0.8, 0.7, 1),
			"gain":    ir.FloatConst(0.3),
			"mode":    ir.IntConst(1),
		},
		Inputs: map[string]*ir.ConstVal{
			"uv":     ir.FloatConst(0.37, 0.61),
			"normal": ir.FloatConst(0.3, -0.2, 0.8),
		},
		Samplers: map[string]exec.Sampler{"tex": exec.DefaultSampler{}},
	}
}

// TestAllFlagCombinationsPreserveSemantics is the central soundness check:
// every one of the 256 flag combinations preserves the shader's observable
// behaviour (exactly for safe flags, within float tolerance for the unsafe
// FP flags).
func TestAllFlagCombinationsPreserveSemantics(t *testing.T) {
	env := testEnv()
	for _, flags := range AllCombinations() {
		tol := 0.0
		if flags.Has(FlagFPReassociate) || flags.Has(FlagDivToMul) {
			tol = 1e-9
		}
		checkEquiv(t, testEnvShader, flags, env, tol)
	}
}

func TestCanonicalizeFoldsConstants(t *testing.T) {
	p := mustLower(t, `
out vec4 c;
void main() {
    float a = 2.0 * 3.0 + 1.0;
    c = vec4(a) * vec4(1.0, 2.0, 3.0, 4.0);
}
`)
	Canonicalize(p)
	// Everything is constant: expect a single store of a constant.
	nonStore := 0
	p.Body.WalkInstrs(func(in *ir.Instr) {
		if in.Op != ir.OpStore && in.Op != ir.OpConst {
			nonStore++
		}
	})
	if nonStore != 0 {
		t.Errorf("expected full folding, leftover ops:\n%s", p)
	}
	res := runProg(t, p, nil)
	want := []float64{7, 14, 21, 28}
	for i, w := range want {
		if res.Outputs["c"].F[i] != w {
			t.Errorf("c[%d] = %v, want %v", i, res.Outputs["c"].F[i], w)
		}
	}
}

func TestCanonicalizeForwardsLoads(t *testing.T) {
	p := mustLower(t, `
uniform float k;
out vec4 c;
void main() {
    float a = k * 2.0;
    float b = a + 1.0;
    c = vec4(a, b, a, b);
}
`)
	Canonicalize(p)
	loads := 0
	p.Body.WalkInstrs(func(in *ir.Instr) {
		if in.Op == ir.OpLoad {
			loads++
		}
	})
	if loads != 0 {
		t.Errorf("straight-line loads should all forward:\n%s", p)
	}
}

func TestCanonicalizeCSE(t *testing.T) {
	p := mustLower(t, `
uniform float k;
out vec4 c;
void main() {
    float a = k * k + 1.0;
    float b = k * k + 1.0;
    c = vec4(a + b);
}
`)
	Canonicalize(p)
	muls := 0
	p.Body.WalkInstrs(func(in *ir.Instr) {
		if in.Op == ir.OpBin && in.BinOp == "*" {
			muls++
		}
	})
	if muls != 1 {
		t.Errorf("CSE should leave one k*k, got %d:\n%s", muls, p)
	}
}

func TestUnrollExpandsConstantLoop(t *testing.T) {
	p := mustLower(t, `
uniform sampler2D tex;
in vec2 uv;
out vec4 c;
void main() {
    vec4 acc = vec4(0.0);
    for (int i = 0; i < 4; i++) {
        acc += texture(tex, uv + vec2(float(i), 0.0));
    }
    c = acc;
}
`)
	Canonicalize(p)
	if !Unroll(p) {
		t.Fatal("unroll did not fire")
	}
	for _, it := range p.Body.Items {
		if _, ok := it.(*ir.Loop); ok {
			t.Fatalf("loop survived unrolling:\n%s", p)
		}
	}
	Canonicalize(p)
	texCount := 0
	p.Body.WalkInstrs(func(in *ir.Instr) {
		if in.Op == ir.OpCall && in.Callee == "texture" {
			texCount++
		}
	})
	if texCount != 4 {
		t.Errorf("expected 4 texture calls after unroll, got %d", texCount)
	}
	if err := p.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestUnrollSkipsDynamicLoop(t *testing.T) {
	p := mustLower(t, `
uniform int n;
out vec4 c;
void main() {
    float s = 0.0;
    for (int i = 0; i < n; i++) { s += 1.0; }
    c = vec4(s);
}
`)
	Canonicalize(p)
	if Unroll(p) {
		t.Error("unroll must not fire on dynamic bounds")
	}
}

func TestHoistCreatesSelects(t *testing.T) {
	p := mustLower(t, `
uniform float k;
out vec4 c;
void main() {
    vec4 v;
    if (k > 0.5) { v = vec4(1.0); } else { v = vec4(2.0); }
    c = v;
}
`)
	Canonicalize(p)
	if !Hoist(p) {
		t.Fatal("hoist did not fire")
	}
	if p.Body.HasControlFlow() {
		t.Fatalf("control flow survived hoisting:\n%s", p)
	}
	sel := 0
	p.Body.WalkInstrs(func(in *ir.Instr) {
		if in.Op == ir.OpSelect {
			sel++
		}
	})
	if sel != 1 {
		t.Errorf("expected 1 select, got %d", sel)
	}
	if err := p.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestHoistSkipsDiscard(t *testing.T) {
	p := mustLower(t, `
uniform float k;
out vec4 c;
void main() {
    c = vec4(1.0);
    if (k > 0.5) { discard; }
}
`)
	Canonicalize(p)
	if Hoist(p) {
		t.Error("hoist must not flatten discards")
	}
	if !p.Body.HasControlFlow() {
		t.Error("if must survive")
	}
}

func TestHoistPartialAssignment(t *testing.T) {
	// Only one arm stores: the other side must keep the old value.
	src := `
uniform float k;
out vec4 c;
void main() {
    vec4 v = vec4(7.0);
    if (k > 0.5) { v = vec4(1.0); }
    c = v;
}
`
	for _, kv := range []float64{0.9, 0.1} {
		env := &exec.Env{Uniforms: map[string]*ir.ConstVal{"k": ir.FloatConst(kv)}}
		checkEquiv(t, src, FlagHoist, env, 0)
	}
}

func TestCoalesceMergesInsertChains(t *testing.T) {
	p := mustLower(t, `
uniform float k;
out vec4 c;
void main() {
    vec4 v = vec4(0.0);
    v.x = k;
    v.y = k * 2.0;
    v.z = k * 3.0;
    v.w = 1.0;
    c = v;
}
`)
	Canonicalize(p)
	if !Coalesce(p) {
		t.Fatal("coalesce did not fire")
	}
	inserts := 0
	p.Body.WalkInstrs(func(in *ir.Instr) {
		if in.Op == ir.OpInsert {
			inserts++
		}
	})
	if inserts != 0 {
		t.Errorf("insert chain survived coalescing:\n%s", p)
	}
	env := &exec.Env{Uniforms: map[string]*ir.ConstVal{"k": ir.FloatConst(5)}}
	res := runProg(t, p, env)
	want := []float64{5, 10, 15, 1}
	for i, w := range want {
		if res.Outputs["c"].F[i] != w {
			t.Errorf("c[%d] = %v, want %v", i, res.Outputs["c"].F[i], w)
		}
	}
}

func TestCoalescePartialChainKeepsBase(t *testing.T) {
	src := `
uniform float k;
uniform vec4 base;
out vec4 c;
void main() {
    vec4 v = base;
    v.x = k;
    v.y = k * 2.0;
    c = v;
}
`
	env := &exec.Env{Uniforms: map[string]*ir.ConstVal{
		"k":    ir.FloatConst(5),
		"base": ir.FloatConst(1, 2, 3, 4),
	}}
	opt := checkEquiv(t, src, FlagCoalesce, env, 0)
	inserts := 0
	opt.Body.WalkInstrs(func(in *ir.Instr) {
		if in.Op == ir.OpInsert {
			inserts++
		}
	})
	if inserts != 0 {
		t.Errorf("partial chain should coalesce too:\n%s", opt)
	}
}

func TestGVNMergesAcrossBlocks(t *testing.T) {
	p := mustLower(t, `
uniform float k;
uniform float m;
out vec4 c;
void main() {
    float a = k * m;
    vec4 v = vec4(0.0);
    if (k > 0.5) {
        v = vec4(k * m + 1.0);
    } else {
        v = vec4(k * m - 1.0);
    }
    c = v * a;
}
`)
	Canonicalize(p)
	countMuls := func() int {
		n := 0
		p.Body.WalkInstrs(func(in *ir.Instr) {
			if in.Op == ir.OpBin && in.BinOp == "*" && in.Type.Equal(sem.Float) {
				n++
			}
		})
		return n
	}
	before := countMuls()
	if !GVN(p) {
		t.Fatalf("GVN did not fire (%d muls):\n%s", before, p)
	}
	after := countMuls()
	if after >= before {
		t.Errorf("GVN should reduce k*m count: %d -> %d", before, after)
	}
}

func TestReassociateIntCancellation(t *testing.T) {
	src := `
uniform int a;
uniform int b;
out vec4 c;
void main() {
    int r = a + b - a;
    int s = a + a + a;
    c = vec4(float(r), float(s), 0.0, 0.0);
}
`
	env := &exec.Env{Uniforms: map[string]*ir.ConstVal{"a": ir.IntConst(7), "b": ir.IntConst(3)}}
	opt := checkEquiv(t, src, FlagReassociate, env, 0)
	// a+b-a should be just b: count int adds/subs.
	intOps := 0
	opt.Body.WalkInstrs(func(in *ir.Instr) {
		if isIntAddSub(in) {
			intOps++
		}
	})
	if intOps > 0 {
		t.Errorf("expected cancellation to remove int adds (a+b-a -> b, a+a+a -> 3*a), got %d:\n%s", intOps, opt)
	}
}

func TestReassociateFloatIdentities(t *testing.T) {
	src := `
uniform float k;
out vec4 c;
void main() {
    float a = k + 0.0;
    float b = k * 1.0;
    float z = k * 0.0;
    c = vec4(a, b, z, a / 1.0);
}
`
	env := &exec.Env{Uniforms: map[string]*ir.ConstVal{"k": ir.FloatConst(3)}}
	opt := checkEquiv(t, src, FlagReassociate, env, 0)
	ops := 0
	opt.Body.WalkInstrs(func(in *ir.Instr) {
		if in.Op == ir.OpBin {
			ops++
		}
	})
	if ops != 0 {
		t.Errorf("identities should fold away all arithmetic:\n%s", opt)
	}
}

func TestDivToMul(t *testing.T) {
	src := `
uniform vec4 v;
out vec4 c;
void main() { c = v / 4.0; }
`
	env := &exec.Env{Uniforms: map[string]*ir.ConstVal{"v": ir.FloatConst(1, 2, 3, 4)}}
	opt := checkEquiv(t, src, FlagDivToMul, env, 1e-12)
	divs, muls := 0, 0
	opt.Body.WalkInstrs(func(in *ir.Instr) {
		if in.Op == ir.OpBin && in.BinOp == "/" {
			divs++
		}
		if in.Op == ir.OpBin && in.BinOp == "*" {
			muls++
		}
	})
	if divs != 0 || muls != 1 {
		t.Errorf("want 0 divs / 1 mul, got %d/%d:\n%s", divs, muls, opt)
	}
}

func TestDivToMulSkipsDynamicAndZero(t *testing.T) {
	p := mustLower(t, `
uniform float k;
uniform vec2 d;
out vec4 c;
void main() { c = vec4(k / d.x, k / 0.0, 0.0, 0.0); }
`)
	Canonicalize(p)
	if DivToMul(p) {
		t.Error("div-to-mul must skip dynamic and zero denominators")
	}
}

func TestFPReassocCommonFactor(t *testing.T) {
	// ab + ac -> a(b+c)
	src := `
uniform float a;
uniform float b;
uniform float fc;
out vec4 c;
void main() { c = vec4(a * b + a * fc); }
`
	env := &exec.Env{Uniforms: map[string]*ir.ConstVal{
		"a": ir.FloatConst(2), "b": ir.FloatConst(3), "fc": ir.FloatConst(5),
	}}
	opt := checkEquiv(t, src, FlagFPReassociate, env, 1e-9)
	muls := 0
	opt.Body.WalkInstrs(func(in *ir.Instr) {
		if in.Op == ir.OpBin && in.BinOp == "*" {
			muls++
		}
	})
	if muls != 1 {
		t.Errorf("ab+ac should become a*(b+c) with one multiply, got %d:\n%s", muls, opt)
	}
}

func TestFPReassocTripleSum(t *testing.T) {
	// a + a + a -> 3a
	src := `
uniform float a;
out vec4 c;
void main() { c = vec4(a + a + a); }
`
	env := &exec.Env{Uniforms: map[string]*ir.ConstVal{"a": ir.FloatConst(2.5)}}
	opt := checkEquiv(t, src, FlagFPReassociate, env, 1e-9)
	adds, muls := 0, 0
	opt.Body.WalkInstrs(func(in *ir.Instr) {
		if in.Op == ir.OpBin && in.BinOp == "+" {
			adds++
		}
		if in.Op == ir.OpBin && in.BinOp == "*" {
			muls++
		}
	})
	if adds != 0 || muls != 1 {
		t.Errorf("a+a+a should become 3*a (0 adds, 1 mul), got %d adds %d muls:\n%s", adds, muls, opt)
	}
}

func TestFPReassocCancellation(t *testing.T) {
	// a + b - a -> b
	src := `
uniform float a;
uniform float b;
out vec4 c;
void main() { c = vec4(a + b - a); }
`
	env := &exec.Env{Uniforms: map[string]*ir.ConstVal{"a": ir.FloatConst(1e8), "b": ir.FloatConst(1)}}
	opt := checkEquiv(t, src, FlagFPReassociate, env, 1e-6)
	ops := 0
	opt.Body.WalkInstrs(func(in *ir.Instr) {
		if in.Op == ir.OpBin {
			ops++
		}
	})
	if ops != 0 {
		t.Errorf("a+b-a should cancel to b, %d ops left:\n%s", ops, opt)
	}
}

func TestFPReassocScalarGrouping(t *testing.T) {
	// f1*(f2*v) -> (f1*f2)*v: scalar multiply happens before splat.
	src := `
uniform float f1;
uniform float f2;
uniform vec4 v;
out vec4 c;
void main() { c = f1 * (f2 * v); }
`
	env := &exec.Env{Uniforms: map[string]*ir.ConstVal{
		"f1": ir.FloatConst(2), "f2": ir.FloatConst(3), "v": ir.FloatConst(1, 2, 3, 4),
	}}
	opt := checkEquiv(t, src, FlagFPReassociate, env, 1e-9)
	scalarMuls, vecMuls := 0, 0
	opt.Body.WalkInstrs(func(in *ir.Instr) {
		if in.Op == ir.OpBin && in.BinOp == "*" {
			if in.Type.IsScalar() {
				scalarMuls++
			} else {
				vecMuls++
			}
		}
	})
	if scalarMuls != 1 || vecMuls != 1 {
		t.Errorf("want 1 scalar mul + 1 vector mul, got %d + %d:\n%s", scalarMuls, vecMuls, opt)
	}
}

func TestFPReassocConstantGrouping(t *testing.T) {
	// c1*(c2*v) -> (c1*c2)*v with the constant folded.
	src := `
uniform vec4 v;
out vec4 c;
void main() { c = 2.0 * (3.0 * v); }
`
	env := &exec.Env{Uniforms: map[string]*ir.ConstVal{"v": ir.FloatConst(1, 2, 3, 4)}}
	opt := checkEquiv(t, src, FlagFPReassociate, env, 1e-9)
	muls := 0
	opt.Body.WalkInstrs(func(in *ir.Instr) {
		if in.Op == ir.OpBin && in.BinOp == "*" {
			muls++
		}
	})
	if muls != 1 {
		t.Errorf("constants should group into one multiply, got %d:\n%s", muls, opt)
	}
}

func TestFPReassocSymmetricWeights(t *testing.T) {
	// w*(x) + w*(y) -> (x+y)*w — the Listing 2 pairing.
	src := `
uniform vec4 x;
uniform vec4 y;
out vec4 c;
void main() { c = 0.21 * x + 0.21 * y; }
`
	env := &exec.Env{Uniforms: map[string]*ir.ConstVal{
		"x": ir.FloatConst(1, 2, 3, 4), "y": ir.FloatConst(5, 6, 7, 8),
	}}
	opt := checkEquiv(t, src, FlagFPReassociate, env, 1e-9)
	muls := 0
	opt.Body.WalkInstrs(func(in *ir.Instr) {
		if in.Op == ir.OpBin && in.BinOp == "*" {
			muls++
		}
	})
	if muls != 1 {
		t.Errorf("symmetric weights should pair into (x+y)*w, got %d muls:\n%s", muls, opt)
	}
}

func TestADCENoChangeAfterCanonicalize(t *testing.T) {
	// The paper's §VI-D1 observation: ADCE never changes canonicalized
	// output because trivially-dead removal is always on.
	p := mustLower(t, testEnvShader)
	Canonicalize(p)
	if ADCE(p) {
		t.Errorf("ADCE changed canonicalized IR:\n%s", p)
	}
}

func TestADCERemovesDeadWithoutCanonicalize(t *testing.T) {
	// On raw lowered IR (dead stores present), real mark-sweep ADCE fires.
	p := mustLower(t, `
uniform float k;
out vec4 c;
void main() {
    float unused = k * 42.0;
    float dead = unused + 1.0;
    c = vec4(k);
}
`)
	before := p.Body.CountInstrs()
	if !ADCE(p) {
		t.Fatal("ADCE should remove dead computation on raw IR")
	}
	after := p.Body.CountInstrs()
	if after >= before {
		t.Errorf("ADCE did not shrink program: %d -> %d", before, after)
	}
	env := &exec.Env{Uniforms: map[string]*ir.ConstVal{"k": ir.FloatConst(2)}}
	res := runProg(t, p, env)
	if res.Outputs["c"].F[0] != 2 {
		t.Error("ADCE broke semantics")
	}
}

func TestMotivatingExampleOptimization(t *testing.T) {
	// Listing 1 with all flags: the loop disappears, weightTotal folds, the
	// division becomes a multiplication, and instruction count collapses.
	src := `#version 330
out vec4 fragColor;
in vec2 uv;
uniform sampler2D tex;
uniform vec4 ambient;
void main() {
    const vec4 weights[9] = vec4[](vec4(0.01), vec4(0.05), vec4(0.14),
        vec4(0.21), vec4(0.61), vec4(0.21), vec4(0.14), vec4(0.05), vec4(0.01));
    const vec2 offsets[9] = vec2[](vec2(-0.0083), vec2(-0.0062), vec2(-0.0042),
        vec2(-0.0021), vec2(0.0), vec2(0.0021), vec2(0.0042), vec2(0.0062), vec2(0.0083));
    float weightTotal = 0.0;
    fragColor = vec4(0.0);
    for (int i = 0; i < 9; i++) {
        weightTotal += weights[i][0];
        fragColor += weights[i] * texture(tex, uv + offsets[i]) * 3.0 * ambient;
    }
    fragColor /= weightTotal;
}
`
	env := &exec.Env{
		Uniforms: map[string]*ir.ConstVal{"ambient": ir.FloatConst(0.5, 0.6, 0.7, 1)},
		Inputs:   map[string]*ir.ConstVal{"uv": ir.FloatConst(0.3, 0.7)},
		Samplers: map[string]exec.Sampler{"tex": exec.DefaultSampler{}},
	}
	opt := checkEquiv(t, src, AllFlags, env, 1e-6)

	var loops, divs, texs, vecMuls int
	opt.Body.WalkInstrs(func(in *ir.Instr) {
		switch {
		case in.Op == ir.OpBin && in.BinOp == "/":
			divs++
		case in.Op == ir.OpCall && in.Callee == "texture":
			texs++
		case in.Op == ir.OpBin && in.BinOp == "*" && in.Type.IsVector():
			vecMuls++
		}
	})
	for _, it := range opt.Body.Items {
		if _, ok := it.(*ir.Loop); ok {
			loops++
		}
	}
	if loops != 0 {
		t.Error("loop should be fully unrolled")
	}
	if divs != 0 {
		t.Error("division should become multiplication")
	}
	if texs != 9 {
		t.Errorf("9 texture samples expected, got %d", texs)
	}
	// Listing 2 shape: 5 weight-group multiplies + the ambient factor
	// multiply + final combined-constant multiply — far fewer than the 27+
	// of the unrolled naive form.
	if vecMuls > 9 {
		t.Errorf("expected aggressive factoring (<=9 vector muls), got %d:\n%s", vecMuls, opt)
	}
}

// TestOptimizedProgramsAlwaysVerify runs every flag combination over a set
// of structurally diverse shaders and requires verifiable IR out.
func TestOptimizedProgramsAlwaysVerify(t *testing.T) {
	shaders := []string{
		`out vec4 c; void main() { c = vec4(1.0); }`,
		`uniform float k; out vec4 c; void main() { if (k > 0.0) { c = vec4(k); } else { c = vec4(-k); } }`,
		`uniform sampler2D t; in vec2 uv; out vec4 c;
		 void main() { vec4 s = vec4(0.0); for (int i = 0; i < 3; i++) { s += texture(t, uv * float(i)); } c = s / 3.0; }`,
		`uniform float k; out vec4 c;
		 void main() { float s = 1.0; while (s < k) { s = s * 2.0; } c = vec4(s); }`,
		`uniform mat3 m; in vec3 p; out vec4 c; void main() { c = vec4(m * p, 1.0); }`,
	}
	for si, src := range shaders {
		for _, flags := range []Flags{NoFlags, DefaultFlags, AllFlags, FlagHoist | FlagUnroll, FlagFPReassociate | FlagDivToMul} {
			p := mustLower(t, src)
			Run(p, flags)
			if err := p.Verify(); err != nil {
				t.Errorf("shader %d flags %v: %v\n%s", si, flags, err, p)
			}
		}
	}
}

func TestFlagsParseAndString(t *testing.T) {
	if DefaultFlags.String() != "adce+coalesce+gvn+reassociate+unroll+hoist" {
		t.Errorf("DefaultFlags = %q", DefaultFlags.String())
	}
	f, err := ParseFlags("unroll+fp-reassociate")
	if err != nil || !f.Has(FlagUnroll) || !f.Has(FlagFPReassociate) || f.Has(FlagADCE) {
		t.Errorf("ParseFlags: %v %v", f, err)
	}
	for _, s := range []string{"none", "default", "all"} {
		if _, err := ParseFlags(s); err != nil {
			t.Errorf("ParseFlags(%q): %v", s, err)
		}
	}
	if _, err := ParseFlags("bogus"); err == nil {
		t.Error("bogus flag should fail")
	}
	rt, err := ParseFlags(AllFlags.String())
	if err != nil || rt != AllFlags {
		t.Errorf("round trip all flags: %v %v", rt, err)
	}
	if NoFlags.String() != "none" {
		t.Error("NoFlags string")
	}
	if len(AllCombinations()) != 256 {
		t.Error("expected 256 combinations")
	}
	if len(FlagList()) != NumFlags {
		t.Error("FlagList size")
	}
}

func TestRunDeterministic(t *testing.T) {
	a := mustLower(t, testEnvShader)
	b := mustLower(t, testEnvShader)
	Run(a, AllFlags)
	Run(b, AllFlags)
	if a.String() != b.String() {
		t.Error("Run is not deterministic")
	}
}

// --- step-list pipeline ---

// TestFlaggedStepsCoverEveryFlagOnce pins the step list the memoized
// enumeration replays: every flag appears exactly once, in the fixed
// LunarGlass-like execution order RunFlagged documents.
func TestFlaggedStepsCoverEveryFlagOnce(t *testing.T) {
	wantOrder := []Flags{
		FlagUnroll, FlagHoist, FlagReassociate, FlagDivToMul,
		FlagFPReassociate, FlagGVN, FlagCoalesce, FlagADCE,
	}
	steps := FlaggedSteps()
	if len(steps) != len(wantOrder) {
		t.Fatalf("got %d steps, want %d", len(steps), len(wantOrder))
	}
	var covered Flags
	for i, st := range steps {
		if st.Flag != wantOrder[i] {
			t.Fatalf("step %d runs %v, want %v", i, st.Flag, wantOrder[i])
		}
		if covered.Has(st.Flag) {
			t.Fatalf("flag %v appears twice", st.Flag)
		}
		if st.Run == nil {
			t.Fatalf("step %d has no Run", i)
		}
		covered |= st.Flag
	}
	if covered != AllFlags {
		t.Fatalf("steps cover %v, want all flags", covered)
	}
}

// TestStepwiseMatchesRunFlagged checks the incremental contract the
// enumeration trie relies on: applying the enabled steps one at a time to
// a clone chain, then Finish, prints byte-identically to a monolithic
// RunFlagged — for every flag combination.
func TestStepwiseMatchesRunFlagged(t *testing.T) {
	src := `#version 330 core
uniform float u;
out vec4 color;
void main() {
    float acc = 0.0;
    for (int i = 0; i < 4; i++) {
        acc += float(i) * u / 2.0 + (u + 1.0) * (u + 1.0);
    }
    vec3 v = vec3(acc, acc * 2.0, acc / u);
    color = vec4(v, 1.0);
}`
	for _, flags := range AllCombinations() {
		mono := mustLower(t, src)
		Prepare(mono)
		step := mono.Clone()

		RunFlagged(mono, flags)

		for _, st := range FlaggedSteps() {
			if flags.Has(st.Flag) {
				next := step.Clone()
				st.Run(next)
				step = next
			}
		}
		final := step.Clone()
		Finish(final)

		if got, want := final.String(), mono.String(); got != want {
			t.Fatalf("flags %v: stepwise pipeline diverged from RunFlagged\nstepwise:\n%s\nmonolithic:\n%s", flags, got, want)
		}
	}
}

// TestFPReassocKeepsFullyExtractedTerm is the regression pin for a term
// deletion the differential-equivalence suite caught on the bloom corpus
// family: in a·b + c·(a·b·d), common-factor extraction strips a and b
// from every term, reducing the first term to a bare coefficient of 1 —
// which the rebuilder used to drop entirely, turning the sum into
// c·(a·b·d). The rebuilt sum must stay ≡ a·b·(1 + c·d).
func TestFPReassocKeepsFullyExtractedTerm(t *testing.T) {
	src := `#version 330 core
uniform sampler2D tex;
uniform float strength;
in vec2 uv;
out vec4 color;
void main() {
    vec4 base = texture(tex, uv);
    vec4 halo = texture(tex, uv * 0.5);
    vec4 glow = (halo + (halo * base) * 0.35) * strength;
    color = base + glow * 0.8 + glow * 0.2;
}`
	env := &exec.Env{
		Uniforms: map[string]*ir.ConstVal{"strength": ir.FloatConst(0.8)},
		Inputs:   map[string]*ir.ConstVal{"uv": ir.FloatConst(0.37, 0.61)},
		Samplers: map[string]exec.Sampler{"tex": exec.DefaultSampler{}},
	}
	checkEquiv(t, src, FlagFPReassociate, env, 1e-9)
	checkEquiv(t, src, FlagFPReassociate|FlagDivToMul|FlagGVN|FlagADCE, env, 1e-9)
}
