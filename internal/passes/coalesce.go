package passes

import (
	"shaderopt/internal/ir"
)

// Coalesce rewrites chains of individual vector element insertions into a
// single constructor ("change multiple individual vector element
// insertions into a single swizzled vector assignment", §III-A). Chains
// that overwrite every component drop their dependency on the base value;
// partial chains keep the surviving components as extracts of the base.
func Coalesce(p *ir.Program) bool {
	changed := false
	uses := p.UseCounts()
	users := userMap(p)

	p.Body.WalkBlocks(func(b *ir.Block) {
		for idx := 0; idx < len(b.Items); idx++ {
			in, ok := b.Items[idx].(*ir.Instr)
			if !ok || in.Op != ir.OpInsert || !in.Type.IsVector() {
				continue
			}
			// Only rewrite chain heads: inserts whose value feeds another
			// insert in the chain are interior links.
			if isChainLink(in, uses, users) {
				continue
			}
			// Walk head -> tail; the first write seen per component is the
			// final value.
			comps := make([]*ir.Instr, in.Type.Vec)
			links := 0
			cur := in
			var base *ir.Instr
			for {
				if comps[cur.Index] == nil {
					comps[cur.Index] = cur.Args[1]
				}
				links++
				next := cur.Args[0]
				if next.Op == ir.OpInsert && next.Type.Equal(in.Type) && uses[next] == 1 {
					cur = next
					continue
				}
				base = next
				break
			}
			if links < 2 {
				continue
			}
			args := make([]*ir.Instr, in.Type.Vec)
			var extra []*ir.Instr
			for i := range args {
				if comps[i] != nil {
					args[i] = comps[i]
					continue
				}
				ex := p.NewInstr(ir.OpExtract, in.Type.ScalarOf(), base)
				ex.Index = i
				extra = append(extra, ex)
				args[i] = ex
			}
			ctor := p.NewInstr(ir.OpConstruct, in.Type, args...)
			items := append([]ir.Item{}, b.Items[:idx]...)
			for _, ex := range extra {
				items = append(items, ex)
			}
			items = append(items, ctor)
			items = append(items, b.Items[idx:]...)
			b.Items = items
			replaceUses(p, in, ctor)
			changed = true
			idx += len(extra) + 1 // skip the items we just inserted
		}
	})
	if changed {
		Canonicalize(p)
	}
	return changed
}

// userMap returns, for every instruction, the instructions that use it as
// an operand.
func userMap(p *ir.Program) map[*ir.Instr][]*ir.Instr {
	users := map[*ir.Instr][]*ir.Instr{}
	p.Body.WalkInstrs(func(in *ir.Instr) {
		for _, a := range in.Args {
			users[a] = append(users[a], in)
		}
	})
	return users
}

// isChainLink reports whether the insert's only use is a following insert
// that consumes it as the aggregate operand — interior links are handled
// when their chain head is processed.
func isChainLink(in *ir.Instr, uses map[*ir.Instr]int, users map[*ir.Instr][]*ir.Instr) bool {
	if uses[in] != 1 || len(users[in]) != 1 {
		return false
	}
	u := users[in][0]
	return u.Op == ir.OpInsert && u.Args[0] == in && u.Type.Equal(in.Type)
}
