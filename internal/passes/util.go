// Package passes implements the offline optimizer's transformation passes:
// the eight flag-controlled passes the paper evaluates (ADCE, Coalesce,
// GVN, Reassociate, Unroll, Hoist, plus the authors' custom unsafe
// FP-Reassociate and Const-Div-to-Mul) and the always-on canonicalization
// the paper lists as prerequisites (constant folding, common subexpression
// elimination, redundant load/store elimination).
package passes

import (
	"shaderopt/internal/ir"
	"shaderopt/internal/sem"
)

// replaceUses rewrites every operand reference from old to new across the
// whole program, including region headers.
func replaceUses(p *ir.Program, old, new *ir.Instr) {
	var walk func(b *ir.Block)
	walk = func(b *ir.Block) {
		for _, it := range b.Items {
			switch it := it.(type) {
			case *ir.Instr:
				for i, a := range it.Args {
					if a == old {
						it.Args[i] = new
					}
				}
			case *ir.If:
				if it.Cond == old {
					it.Cond = new
				}
				walk(it.Then)
				if it.Else != nil {
					walk(it.Else)
				}
			case *ir.Loop:
				if it.Start == old {
					it.Start = new
				}
				if it.End == old {
					it.End = new
				}
				if it.Step == old {
					it.Step = new
				}
				walk(it.Body)
			case *ir.While:
				walk(it.Cond)
				if it.CondVal == old {
					it.CondVal = new
				}
				walk(it.Body)
			}
		}
	}
	walk(p.Body)
}

// makeConst mutates an instruction in place into an OpConst, preserving its
// identity so existing references stay valid.
func makeConst(in *ir.Instr, c *ir.ConstVal) {
	in.Op = ir.OpConst
	in.Const = c
	in.Args = nil
	in.BinOp = ""
	in.UnOp = ""
	in.Callee = ""
	in.Index = 0
	in.Indices = nil
	in.Var = nil
	in.Global = nil
}

// newConst builds a fresh constant instruction (not yet placed in a block).
func newConst(p *ir.Program, t sem.Type, c *ir.ConstVal) *ir.Instr {
	in := p.NewInstr(ir.OpConst, t)
	in.Const = c
	return in
}

// storedVars returns the set of Vars written anywhere inside the block
// tree, including loop counters.
func storedVars(b *ir.Block) map[*ir.Var]bool {
	out := map[*ir.Var]bool{}
	var walk func(b *ir.Block)
	walk = func(b *ir.Block) {
		for _, it := range b.Items {
			switch it := it.(type) {
			case *ir.Instr:
				if it.Op == ir.OpStore {
					out[it.Var] = true
				}
			case *ir.If:
				walk(it.Then)
				if it.Else != nil {
					walk(it.Else)
				}
			case *ir.Loop:
				out[it.Counter] = true
				walk(it.Body)
			case *ir.While:
				walk(it.Cond)
				walk(it.Body)
			}
		}
	}
	walk(b)
	return out
}

// hasDiscard reports whether the block tree contains a discard.
func hasDiscard(b *ir.Block) bool {
	found := false
	b.WalkInstrs(func(in *ir.Instr) {
		if in.Op == ir.OpDiscard {
			found = true
		}
	})
	return found
}

// loadedVars returns the set of Vars read anywhere in the block tree.
func loadedVars(b *ir.Block) map[*ir.Var]bool {
	out := map[*ir.Var]bool{}
	b.WalkInstrs(func(in *ir.Instr) {
		if in.Op == ir.OpLoad {
			out[in.Var] = true
		}
	})
	return out
}

// isCommutative reports whether a binary operator commutes.
func isCommutative(op string) bool {
	switch op {
	case "+", "*", "==", "!=", "&&", "||", "^^":
		return true
	}
	return false
}

// splatConstOf returns (value, true) when in is a constant with every
// component equal (covers both scalar constants and splat vectors).
func splatConstOf(in *ir.Instr) (float64, bool) {
	if in.Op != ir.OpConst || in.Const.Kind != sem.KindFloat {
		return 0, false
	}
	if !in.Const.IsSplat() || in.Const.Len() == 0 {
		return 0, false
	}
	return in.Const.F[0], true
}

// splatThrough looks through OpConstruct splats: if in is a construct whose
// operands are all the same scalar instruction, it returns that scalar.
func splatThrough(in *ir.Instr) (*ir.Instr, bool) {
	if in.Op != ir.OpConstruct || !in.Type.IsVector() {
		return nil, false
	}
	first := in.Args[0]
	if !first.Type.IsScalar() {
		return nil, false
	}
	for _, a := range in.Args[1:] {
		if a != first {
			return nil, false
		}
	}
	return first, true
}
