package passes

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"shaderopt/internal/ir"
	"shaderopt/internal/sem"
)

// FPReassoc is the paper's custom unsafe floating-point reassociation pass
// (§III-B). It rewrites float add/sub trees as canonical linear
// combinations:
//
//	ab + ac        -> a(b + c)     (common-factor extraction)
//	a + a + a      -> 3a           (term combining)
//	a + b - a      -> b            (cancellation)
//	f1*(f2*v)      -> (f1*f2)*v    (scalar grouping before vectorization)
//	c1*(c2*v)      -> (c1*c2)*v    (constant grouping)
//
// Terms sharing a coefficient are paired — (fc1 + fc9) * w — reproducing
// the symmetric-weight factoring of the motivating example (Listing 2).
// Operand order is canonicalized, enabling later CSE. None of this is
// legal for a conformant driver compiler; offline, the developer opts in.
const fpMaxTerms = 64

// FPReassoc applies the rewrite to every maximal float add/sub tree and
// multiplication chain. It reports whether anything changed.
func FPReassoc(p *ir.Program) bool {
	changed := false
	// Bounded rounds: a rewrite can expose new opportunities after
	// canonicalization (constant folding of grouped coefficients), but an
	// already-canonical tree rebuilds to an identical shape, so iterating
	// to a "no change" fixed point would not terminate.
	for round := 0; round < 3; round++ {
		uses := p.UseCounts()
		users := userMap(p)
		r := &fpRewriter{p: p, uses: uses, users: users}
		var roots []*ir.Instr
		p.Body.WalkInstrs(func(in *ir.Instr) {
			if r.isRoot(in) {
				roots = append(roots, in)
			}
		})
		any := false
		for _, root := range roots {
			if r.rewrite(root) {
				any = true
			}
		}
		if !any {
			break
		}
		changed = true
		Canonicalize(p)
	}
	return changed
}

type fpRewriter struct {
	p     *ir.Program
	uses  map[*ir.Instr]int
	users map[*ir.Instr][]*ir.Instr
}

// floatArith reports whether in is a float +,-,* on scalars or vectors
// (matrix operands are opaque to reassociation).
func floatArith(in *ir.Instr) bool {
	if in.Op != ir.OpBin || in.Type.Kind != sem.KindFloat || in.Type.IsMatrix() || in.Type.IsArray() {
		return false
	}
	if in.Args[0].Type.IsMatrix() || in.Args[1].Type.IsMatrix() {
		return false
	}
	return in.BinOp == "+" || in.BinOp == "-" || in.BinOp == "*"
}

// isRoot selects maximal arithmetic trees: float arith nodes not consumed
// exclusively by a same-type float arith parent.
func (r *fpRewriter) isRoot(in *ir.Instr) bool {
	if !floatArith(in) {
		return false
	}
	if r.uses[in] == 1 && len(r.users[in]) == 1 {
		u := r.users[in][0]
		if floatArith(u) && u.Type.Equal(in.Type) {
			return false
		}
	}
	return true
}

// term is one summand: coeff × Π factors.
type term struct {
	coeff   float64
	factors []*ir.Instr
}

func termKey(factors []*ir.Instr) string {
	ids := make([]string, len(factors))
	for i, f := range factors {
		ids[i] = fmt.Sprintf("%p", f)
	}
	sort.Strings(ids)
	return strings.Join(ids, ",")
}

// rewrite flattens the tree rooted at root and rebuilds it canonically.
func (r *fpRewriter) rewrite(root *ir.Instr) bool {
	t := root.Type
	width := t.Components()

	var terms []*term
	index := map[string]*term{}
	constAcc := make([]float64, width)
	consumed := 0
	overflow := false

	addTerm := func(coeff float64, factors []*ir.Instr) {
		if len(factors) == 0 {
			for i := range constAcc {
				constAcc[i] += coeff
			}
			return
		}
		key := termKey(factors)
		if ex, ok := index[key]; ok {
			ex.coeff += coeff
			return
		}
		if len(terms) >= fpMaxTerms {
			overflow = true
			return
		}
		nt := &term{coeff: coeff, factors: factors}
		index[key] = nt
		terms = append(terms, nt)
	}

	var flattenLinear func(in *ir.Instr, coeff float64, extra []*ir.Instr)

	// flattenMul decomposes a multiplicative node into (coeff, factors).
	var flattenMul func(in *ir.Instr) (float64, []*ir.Instr)
	flattenMul = func(in *ir.Instr) (float64, []*ir.Instr) {
		switch {
		case in.Op == ir.OpConst && in.Const.Kind == sem.KindFloat && in.Const.IsSplat() && in.Const.Len() > 0:
			consumed++
			return in.Const.F[0], nil
		case in.Op == ir.OpBin && in.BinOp == "*" && in.Type.Kind == sem.KindFloat &&
			!in.Args[0].Type.IsMatrix() && !in.Args[1].Type.IsMatrix() &&
			(in == root || (r.uses[in] == 1 && !in.Type.IsMatrix())):
			consumed++
			c1, f1 := flattenMul(in.Args[0])
			c2, f2 := flattenMul(in.Args[1])
			return c1 * c2, append(f1, f2...)
		case in.Op == ir.OpUn && in.UnOp == "-" && r.uses[in] == 1:
			consumed++
			c, f := flattenMul(in.Args[0])
			return -c, f
		default:
			if s, ok := splatThrough(in); ok && r.uses[in] == 1 {
				// Splat of a scalar: descend so scalar factors group before
				// vectorization.
				consumed++
				return flattenMul(s)
			}
			return 1, []*ir.Instr{in}
		}
	}

	flattenLinear = func(in *ir.Instr, coeff float64, extra []*ir.Instr) {
		switch {
		case in.Op == ir.OpConst && in.Const.Kind == sem.KindFloat && len(extra) == 0:
			consumed++
			for i := 0; i < width; i++ {
				ci := i
				if in.Const.Len() == 1 {
					ci = 0
				}
				constAcc[i] += coeff * in.Const.F[ci]
			}
		case in.Op == ir.OpBin && (in.BinOp == "+" || in.BinOp == "-") && in.Type.Equal(t) &&
			(in == root || r.uses[in] == 1):
			consumed++
			flattenLinear(in.Args[0], coeff, extra)
			if in.BinOp == "+" {
				flattenLinear(in.Args[1], coeff, extra)
			} else {
				flattenLinear(in.Args[1], -coeff, extra)
			}
		case in.Op == ir.OpUn && in.UnOp == "-" && in.Type.Equal(t) && r.uses[in] == 1:
			consumed++
			flattenLinear(in.Args[0], -coeff, extra)
		case in.Op == ir.OpBin && in.BinOp == "*" && in.Type.Kind == sem.KindFloat &&
			!in.Args[0].Type.IsMatrix() && !in.Args[1].Type.IsMatrix():
			c, factors := flattenMul(in)
			// Distribute over a single-use additive subtree if present.
			var sub *ir.Instr
			rest := factors[:0:0]
			for _, f := range factors {
				if sub == nil && f.Type.Equal(t) && r.uses[f] == 1 &&
					f.Op == ir.OpBin && (f.BinOp == "+" || f.BinOp == "-") {
					sub = f
					continue
				}
				rest = append(rest, f)
			}
			if sub != nil {
				flattenLinear(sub, coeff*c, append(append([]*ir.Instr{}, extra...), rest...))
			} else {
				addTerm(coeff*c, append(append([]*ir.Instr{}, extra...), rest...))
			}
		default:
			addTerm(coeff, append(append([]*ir.Instr{}, extra...), []*ir.Instr{in}...))
		}
	}

	flattenLinear(root, 1, nil)
	if overflow || consumed <= 1 {
		return false
	}

	// Drop cancelled terms (unsafe: ignores NaN/Inf propagation).
	kept := terms[:0]
	for _, tm := range terms {
		if tm.coeff != 0 {
			kept = append(kept, tm)
		}
	}
	terms = kept

	// Common-factor extraction across all terms (only valid when there is
	// no bare constant term).
	var common []*ir.Instr
	constZero := true
	for _, v := range constAcc {
		if v != 0 {
			constZero = false
		}
	}
	if len(terms) >= 2 && constZero {
		for {
			f := commonFactor(terms)
			if f == nil {
				break
			}
			common = append(common, f)
			for _, tm := range terms {
				tm.factors = removeOne(tm.factors, f)
			}
		}
	}

	// Group terms by coefficient.
	type group struct {
		coeff float64
		terms []*term
	}
	groupIdx := map[float64]*group{}
	var groups []*group
	for _, tm := range terms {
		g, ok := groupIdx[tm.coeff]
		if !ok {
			g = &group{coeff: tm.coeff}
			groupIdx[tm.coeff] = g
			groups = append(groups, g)
		}
		g.terms = append(g.terms, tm)
	}
	sort.Slice(groups, func(i, j int) bool {
		ai, aj := math.Abs(groups[i].coeff), math.Abs(groups[j].coeff)
		if ai != aj {
			return ai > aj
		}
		return groups[i].coeff > groups[j].coeff
	})

	// Rebuild.
	b := &fpBuilder{p: r.p, t: t}
	var total *ir.Instr
	for _, g := range groups {
		var gsum *ir.Instr
		sort.Slice(g.terms, func(i, j int) bool { return termLess(g.terms[i], g.terms[j]) })
		for _, tm := range g.terms {
			prod := b.product(tm.factors, 1)
			if prod == nil {
				// Width-mismatched factor (defensive): abort the whole
				// rewrite rather than rebuild a sum missing a term.
				return false
			}
			gsum = b.add(gsum, prod)
		}
		if g.coeff != 1 {
			gsum = b.mulConst(gsum, g.coeff)
		}
		total = b.add(total, gsum)
	}
	if !constZero || total == nil {
		cv := make([]float64, width)
		copy(cv, constAcc)
		c := newConst(r.p, t, &ir.ConstVal{Kind: sem.KindFloat, F: cv})
		b.emit(c)
		total = b.add(total, c)
	}
	for _, f := range sortFactors(common) {
		total = b.mulFactor(total, f)
	}

	if len(b.emitted) > consumed {
		return false
	}
	if len(b.emitted) > 0 {
		insertBefore(r.p.Body, root, b.emitted...)
	}
	if total != root {
		replaceUses(r.p, root, total)
	}
	return true
}

// commonFactor returns a factor present in every term, or nil.
func commonFactor(terms []*term) *ir.Instr {
	if len(terms) == 0 {
		return nil
	}
	for _, cand := range terms[0].factors {
		inAll := true
		for _, tm := range terms[1:] {
			if !containsFactor(tm.factors, cand) {
				inAll = false
				break
			}
		}
		if inAll {
			return cand
		}
	}
	return nil
}

func containsFactor(fs []*ir.Instr, f *ir.Instr) bool {
	for _, x := range fs {
		if x == f {
			return true
		}
	}
	return false
}

func removeOne(fs []*ir.Instr, f *ir.Instr) []*ir.Instr {
	for i, x := range fs {
		if x == f {
			return append(fs[:i:i], fs[i+1:]...)
		}
	}
	return fs
}

func termLess(a, b *term) bool {
	la, lb := len(a.factors), len(b.factors)
	if la != lb {
		return la < lb
	}
	for i := range a.factors {
		if a.factors[i].ID != b.factors[i].ID {
			return a.factors[i].ID < b.factors[i].ID
		}
	}
	return false
}

func sortFactors(fs []*ir.Instr) []*ir.Instr {
	out := append([]*ir.Instr(nil), fs...)
	sort.Slice(out, func(i, j int) bool {
		// Scalars first (grouped before vectorization), then by ID.
		si, sj := out[i].Type.IsScalar(), out[j].Type.IsScalar()
		if si != sj {
			return si
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// fpBuilder emits canonical rebuilt arithmetic.
type fpBuilder struct {
	p       *ir.Program
	t       sem.Type
	emitted []*ir.Instr
}

func (b *fpBuilder) emit(in *ir.Instr) *ir.Instr {
	b.emitted = append(b.emitted, in)
	return in
}

func (b *fpBuilder) bin(op string, t sem.Type, x, y *ir.Instr) *ir.Instr {
	in := b.p.NewInstr(ir.OpBin, t, x, y)
	in.BinOp = op
	return b.emit(in)
}

// splat widens a scalar to the target width.
func (b *fpBuilder) splat(s *ir.Instr) *ir.Instr {
	if b.t.IsScalar() || s.Type.Equal(b.t) {
		return s
	}
	args := make([]*ir.Instr, b.t.Vec)
	for i := range args {
		args[i] = s
	}
	return b.emit(b.p.NewInstr(ir.OpConstruct, b.t, args...))
}

// add folds a running sum (nil-safe).
func (b *fpBuilder) add(total, v *ir.Instr) *ir.Instr {
	if v == nil {
		return total
	}
	if total == nil {
		return v
	}
	return b.bin("+", b.t, total, v)
}

// product multiplies coeff × factors, grouping scalar factors before
// splatting to vector width.
func (b *fpBuilder) product(factors []*ir.Instr, coeff float64) *ir.Instr {
	fs := sortFactors(factors)
	var scalarProd, vecProd *ir.Instr
	for _, f := range fs {
		switch {
		case f.Type.IsScalar():
			if scalarProd == nil {
				scalarProd = f
			} else {
				scalarProd = b.bin("*", sem.Float, scalarProd, f)
			}
		default:
			ff := f
			if !ff.Type.Equal(b.t) {
				// Width-mismatched factor (shouldn't happen; defensive).
				return nil
			}
			if vecProd == nil {
				vecProd = ff
			} else {
				vecProd = b.bin("*", b.t, vecProd, ff)
			}
		}
	}
	if coeff != 1 {
		if scalarProd != nil {
			c := newConst(b.p, sem.Float, ir.FloatConst(coeff))
			b.emit(c)
			scalarProd = b.bin("*", sem.Float, scalarProd, c)
		} else if vecProd != nil {
			return b.mulConst(vecProd, coeff)
		} else {
			c := newConst(b.p, b.t, ir.SplatFloat(coeff, b.t.Components()))
			return b.emit(c)
		}
	}
	switch {
	case scalarProd != nil && vecProd != nil:
		return b.bin("*", b.t, vecProd, b.splat(scalarProd))
	case scalarProd != nil:
		return b.splat(scalarProd)
	case vecProd != nil:
		return vecProd
	default:
		// Every factor was extracted as common (coeff 1 reaches here;
		// other coefficients returned above): the term is the constant 1.
		// Emitting it keeps sums like a·b + c·a·b ≡ a·b·(1 + c) intact —
		// returning nil here silently deleted the term (caught by the
		// differential-equivalence suite on the bloom family).
		c := newConst(b.p, b.t, ir.SplatFloat(1, b.t.Components()))
		return b.emit(c)
	}
}

// mulConst multiplies a value by a constant (splatted to width).
func (b *fpBuilder) mulConst(v *ir.Instr, c float64) *ir.Instr {
	if v == nil || c == 1 {
		return v
	}
	k := newConst(b.p, v.Type, ir.SplatFloat(c, v.Type.Components()))
	b.emit(k)
	return b.bin("*", v.Type, v, k)
}

// mulFactor multiplies the total by one common factor.
func (b *fpBuilder) mulFactor(total, f *ir.Instr) *ir.Instr {
	if total == nil {
		return f
	}
	if f.Type.IsScalar() && !b.t.IsScalar() {
		return b.bin("*", b.t, total, b.splat(f))
	}
	return b.bin("*", b.t, total, f)
}
