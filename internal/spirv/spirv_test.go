package spirv

import (
	"testing"

	"shaderopt/internal/core"
	"shaderopt/internal/corpus"
	"shaderopt/internal/exec"
	"shaderopt/internal/ir"
	"shaderopt/internal/sem"
)

// testEnv builds an interpreter environment with fixed defaults (0.5
// floats, ones for ints, the procedural default sampler). The harness has
// a richer version, but importing it here would cycle through crossc.
func testEnv(p *ir.Program) *exec.Env {
	env := &exec.Env{
		Uniforms: map[string]*ir.ConstVal{},
		Inputs:   map[string]*ir.ConstVal{},
		Samplers: map[string]exec.Sampler{},
	}
	fill := func(t sem.Type) *ir.ConstVal {
		n := t.Components()
		if t.Kind == sem.KindInt {
			vals := make([]int64, n)
			for i := range vals {
				vals[i] = 1
			}
			return ir.IntConst(vals...)
		}
		vals := make([]float64, n)
		for i := range vals {
			vals[i] = 0.5
		}
		return ir.FloatConst(vals...)
	}
	for _, u := range p.Uniforms {
		if u.Type.IsSampler() {
			env.Samplers[u.Name] = exec.DefaultSampler{}
			continue
		}
		env.Uniforms[u.Name] = fill(u.Type)
	}
	for _, in := range p.Inputs {
		env.Inputs[in.Name] = fill(in.Type)
	}
	return env
}

func lowerCorpusShader(t *testing.T, name string) *ir.Program {
	t.Helper()
	shaders := corpus.MustLoad()
	s := corpus.ByName(shaders, name)
	if s == nil {
		t.Fatalf("missing corpus shader %s", name)
	}
	prog, err := core.LowerLang(s.Source, s.Name, s.Lang)
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

func TestEncodeHeaderLayout(t *testing.T) {
	prog := lowerCorpusShader(t, "blur/v9")
	words := Encode(prog)
	if len(words) < 5 {
		t.Fatalf("module has %d words, want at least the 5-word header", len(words))
	}
	if words[0] != Magic {
		t.Errorf("magic = %#x, want %#x", words[0], Magic)
	}
	if words[1] != Version {
		t.Errorf("version = %#x, want %#x", words[1], Version)
	}
	if words[2] != Generator {
		t.Errorf("generator = %#x, want %#x", words[2], Generator)
	}
	if words[3] == 0 {
		t.Error("ID bound not patched")
	}
	if words[4] != 0 {
		t.Errorf("reserved word = %#x, want 0", words[4])
	}
}

// TestEncodeInstructionStream walks the word stream by each instruction's
// (wordcount<<16 | opcode) header and checks it is well-formed and has a
// sane instruction count for a known shader.
func TestEncodeInstructionStream(t *testing.T) {
	prog := lowerCorpusShader(t, "blur/v9")
	words := Encode(prog)
	count := 0
	for pos := 5; pos < len(words); {
		wc := int(words[pos] >> 16)
		if wc < 1 {
			t.Fatalf("instruction at word %d has wordcount 0", pos)
		}
		if pos+wc > len(words) {
			t.Fatalf("instruction at word %d overruns the module (%d + %d > %d)", pos, pos, wc, len(words))
		}
		pos += wc
		count++
	}
	// blur/v9 has interface declarations, a loop, and a body of dozens of
	// instructions; anything tiny or enormous means the encoder broke.
	if count < 20 || count > 5000 {
		t.Errorf("instruction count = %d, want a few dozen to a few thousand", count)
	}
	if n := prog.Body.CountInstrs(); count < n {
		t.Errorf("encoded %d instructions for a body of %d", count, n)
	}
}

func TestEncodeDeclaresInterface(t *testing.T) {
	prog := lowerCorpusShader(t, "blur/v9")
	words := Encode(prog)
	counts := map[uint32]int{}
	for pos := 5; pos < len(words); pos += int(words[pos] >> 16) {
		counts[words[pos]&0xffff]++
	}
	if counts[opUniform] != len(prog.Uniforms) {
		t.Errorf("uniform decls = %d, want %d", counts[opUniform], len(prog.Uniforms))
	}
	if counts[opInput] != len(prog.Inputs) {
		t.Errorf("input decls = %d, want %d", counts[opInput], len(prog.Inputs))
	}
	outputs := 0
	for _, v := range prog.Vars {
		if v.IsOutput {
			outputs++
		}
	}
	if counts[opOutput] != outputs {
		t.Errorf("output decls = %d, want %d", counts[opOutput], outputs)
	}
}

// TestEncodeDecodeRoundTrip checks the conversion-path property the
// paper's artefact (d) depends on: the decoded program is semantically
// identical (same interpreter results) even though names are synthesized.
func TestEncodeDecodeRoundTrip(t *testing.T) {
	for _, name := range []string{"blur/v9", "simple/luma", "wgsl/ripple"} {
		prog := lowerCorpusShader(t, name)
		decoded, err := Decode(Encode(prog), name)
		if err != nil {
			t.Fatalf("%s: decode: %v", name, err)
		}
		env := testEnv(prog)
		for _, in := range prog.Inputs {
			env.Inputs[in.Name] = ir.FloatConst(0.4, 0.6)
		}
		res, err := exec.Run(prog, env)
		if err != nil {
			t.Fatalf("%s: run original: %v", name, err)
		}
		denv := testEnv(decoded)
		for _, in := range decoded.Inputs {
			denv.Inputs[in.Name] = ir.FloatConst(0.4, 0.6)
		}
		dres, err := exec.Run(decoded, denv)
		if err != nil {
			t.Fatalf("%s: run decoded: %v", name, err)
		}
		if len(res.Outputs) != len(dres.Outputs) {
			t.Fatalf("%s: output count changed", name)
		}
		for _, out := range prog.Outputs {
			got := dres.Outputs[decodedOutputName(decoded, prog, out.Name)]
			want := res.Outputs[out.Name]
			if got == nil {
				t.Fatalf("%s: decoded program lost output %s", name, out.Name)
			}
			for i := 0; i < want.Len(); i++ {
				if got.Float(i) != want.Float(i) {
					t.Errorf("%s: output %s[%d] = %v, want %v", name, out.Name, i, got.Float(i), want.Float(i))
				}
			}
		}
	}
}

// decodedOutputName maps an original output to its synthesized name by
// position (the encoding strips names like debug-info-free SPIR-V).
func decodedOutputName(decoded, orig *ir.Program, name string) string {
	for i, out := range orig.Outputs {
		if out.Name == name && i < len(decoded.Outputs) {
			return decoded.Outputs[i].Name
		}
	}
	return ""
}

func TestDecodeRejectsCorruptModules(t *testing.T) {
	if _, err := Decode(nil, "x"); err == nil {
		t.Error("empty module accepted")
	}
	if _, err := Decode([]uint32{0xdeadbeef, Version, Generator, 9, 0}, "x"); err == nil {
		t.Error("bad magic accepted")
	}
	if _, err := Decode([]uint32{Magic, 0x00090000, Generator, 9, 0}, "x"); err == nil {
		t.Error("bad version accepted")
	}
}
