// Package spirv implements a compact SPIR-V-like binary module format for
// the optimizer IR: a word stream with a magic/version header, a type and
// interface section, and a structured instruction stream. It is the
// interchange format of the mobile conversion path (glslang → SPIR-V →
// SPIRV-Cross in the paper, §III-C(d)). Like real SPIR-V without debug
// info, the encoding does not carry variable names — the decoder
// synthesizes them, which is one of the translation artefacts the paper
// observes on mobile.
package spirv

import (
	"fmt"
	"math"

	"shaderopt/internal/ir"
	"shaderopt/internal/sem"
)

// Magic identifies a module (SPIR-V's own magic, as a homage).
const Magic = 0x07230203

// Version of the encoding.
const Version = 0x00010000

// Generator tag.
const Generator = 0x53484F50 // "SHOP"

// Module opcodes. Declarations first, then body ops (mirroring ir.Op),
// then structured-region markers.
const (
	opUniform uint32 = iota + 1
	opInput
	opOutput
	opVar
	opBodyBase // body ops encode as opBodyBase + uint32(ir.Op)
)

const (
	opIfBegin uint32 = iota + 64
	opElse
	opIfEnd
	opLoopBegin
	opLoopEnd
	opWhileBegin
	opWhileCond
	opWhileEnd
)

var samplerDims = []string{"2D", "3D", "Cube", "2DShadow", "2DArray"}

func dimIndex(d string) uint32 {
	for i, s := range samplerDims {
		if s == d {
			return uint32(i)
		}
	}
	return 0
}

// encodeType packs a sem.Type into two words.
func encodeType(t sem.Type) [2]uint32 {
	w0 := uint32(t.Kind)<<24 | uint32(t.Vec)<<16 | uint32(t.Mat)<<8 | dimIndex(t.Dim)
	return [2]uint32{w0, uint32(t.ArrayLen)}
}

func decodeType(w [2]uint32) sem.Type {
	t := sem.Type{
		Kind: sem.Kind(w[0] >> 24),
		Vec:  int(w[0] >> 16 & 0xff),
		Mat:  int(w[0] >> 8 & 0xff),
	}
	if t.Kind == sem.KindSampler {
		t.Dim = samplerDims[w[0]&0xff]
	}
	t.ArrayLen = int(w[1])
	return t
}

// Encode serializes a program to a word stream.
func Encode(p *ir.Program) []uint32 {
	e := &encoder{
		instrID: map[*ir.Instr]uint32{},
		varID:   map[*ir.Var]uint32{},
		globID:  map[*ir.Global]uint32{},
	}
	e.words = append(e.words, Magic, Version, Generator, 0 /* bound patched below */, 0)

	for _, g := range p.Uniforms {
		id := e.newID()
		e.globID[g] = id
		e.emitTyped(opUniform, id, g.Type)
	}
	for _, g := range p.Inputs {
		id := e.newID()
		e.globID[g] = id
		e.emitTyped(opInput, id, g.Type)
	}
	for _, v := range p.Vars {
		id := e.newID()
		e.varID[v] = id
		if v.IsOutput {
			e.emitTyped(opOutput, id, v.Type)
		} else {
			e.emitTyped(opVar, id, v.Type)
		}
	}
	e.block(p.Body)
	e.words[3] = e.nextID // bound
	return e.words
}

type encoder struct {
	words   []uint32
	nextID  uint32
	instrID map[*ir.Instr]uint32
	varID   map[*ir.Var]uint32
	globID  map[*ir.Global]uint32
}

func (e *encoder) newID() uint32 {
	e.nextID++
	return e.nextID
}

// emit writes one instruction: (wordcount<<16 | opcode) followed by
// operand words.
func (e *encoder) emit(op uint32, operands ...uint32) {
	e.words = append(e.words, uint32(len(operands)+1)<<16|op)
	e.words = append(e.words, operands...)
}

func (e *encoder) emitTyped(op, id uint32, t sem.Type) {
	tw := encodeType(t)
	e.emit(op, id, tw[0], tw[1])
}

func (e *encoder) block(b *ir.Block) {
	for _, it := range b.Items {
		switch it := it.(type) {
		case *ir.Instr:
			e.instr(it)
		case *ir.If:
			e.emit(opIfBegin, e.instrID[it.Cond])
			e.block(it.Then)
			if it.Else != nil && len(it.Else.Items) > 0 {
				e.emit(opElse)
				e.block(it.Else)
			}
			e.emit(opIfEnd)
		case *ir.Loop:
			e.emit(opLoopBegin, e.varID[it.Counter],
				e.instrID[it.Start], e.instrID[it.End], e.instrID[it.Step])
			e.block(it.Body)
			e.emit(opLoopEnd)
		case *ir.While:
			e.emit(opWhileBegin, uint32(it.MaxIter))
			e.block(it.Cond)
			e.emit(opWhileCond, e.instrID[it.CondVal])
			e.block(it.Body)
			e.emit(opWhileEnd)
		}
	}
}

func (e *encoder) instr(in *ir.Instr) {
	id := uint32(0)
	if in.HasResult() {
		id = e.newID()
		e.instrID[in] = id
	}
	tw := encodeType(in.Type)
	ops := []uint32{id, tw[0], tw[1]}

	// Fixed metadata: binop/unop/callee as interned strings, index,
	// swizzle, var/global refs, const payload.
	ops = append(ops, internString(in.BinOp+in.UnOp+in.Callee))
	ops = append(ops, uint32(int32(in.Index)))
	ops = append(ops, uint32(len(in.Indices)))
	for _, ix := range in.Indices {
		ops = append(ops, uint32(ix))
	}
	switch in.Op {
	case ir.OpLoad, ir.OpStore:
		ops = append(ops, e.varID[in.Var])
	case ir.OpUniform, ir.OpInput:
		ops = append(ops, e.globID[in.Global])
	case ir.OpConst:
		c := in.Const
		ops = append(ops, uint32(c.Kind), uint32(c.Len()))
		for i := 0; i < c.Len(); i++ {
			switch c.Kind {
			case sem.KindFloat:
				bits := math.Float64bits(c.F[i])
				ops = append(ops, uint32(bits>>32), uint32(bits))
			case sem.KindInt:
				bits := uint64(c.I[i])
				ops = append(ops, uint32(bits>>32), uint32(bits))
			case sem.KindBool:
				v := uint32(0)
				if c.B[i] {
					v = 1
				}
				ops = append(ops, v, 0)
			}
		}
	}
	ops = append(ops, uint32(len(in.Args)))
	for _, a := range in.Args {
		ops = append(ops, e.instrID[a])
	}
	e.emit(opBodyBase+uint32(in.Op), ops...)
}

// internString packs short op mnemonics into a word (they are all ASCII
// and at most 14 chars; we hash deterministically and keep a side table).
var stringTable = []string{
	"", "+", "-", "*", "/", "%", "<", ">", "<=", ">=", "==", "!=", "&&", "||", "^^", "!",
	"abs", "sign", "floor", "ceil", "fract", "radians", "degrees", "saturate",
	"mod", "min", "max", "step", "clamp", "mix", "smoothstep", "reflect",
	"refract", "normalize", "faceforward", "sin", "cos", "tan", "asin",
	"acos", "atan", "pow", "exp", "log", "exp2", "log2", "sqrt",
	"inversesqrt", "dot", "length", "distance", "cross", "texture",
	"texture2D", "textureCube", "textureLod", "texelFetch", "dFdx", "dFdy",
	"fwidth",
}

func internString(s string) uint32 {
	for i, x := range stringTable {
		if x == s {
			return uint32(i)
		}
	}
	return 0
}

// Decode reconstructs a program from a word stream. Variable and interface
// names are synthesized (u0, in1, v2, ...), as with real SPIR-V stripped
// of debug info.
func Decode(words []uint32, name string) (*ir.Program, error) {
	if len(words) < 5 {
		return nil, fmt.Errorf("spirv: module too short")
	}
	if words[0] != Magic {
		return nil, fmt.Errorf("spirv: bad magic %#x", words[0])
	}
	if words[1] != Version {
		return nil, fmt.Errorf("spirv: unsupported version %#x", words[1])
	}
	d := &decoder{
		p:      ir.NewProgram(name),
		instrs: map[uint32]*ir.Instr{},
		vars:   map[uint32]*ir.Var{},
		globs:  map[uint32]*ir.Global{},
	}
	d.p.Version = "300 es"
	pos := 5
	blockStack := []*ir.Block{d.p.Body}
	type pendingWhile struct {
		w    *ir.While
		body *ir.Block
	}
	var whileStack []*pendingWhile
	var ifStack []*ir.If

	cur := func() *ir.Block { return blockStack[len(blockStack)-1] }

	for pos < len(words) {
		head := words[pos]
		wc := int(head >> 16)
		op := head & 0xffff
		if wc == 0 || pos+wc > len(words) {
			return nil, fmt.Errorf("spirv: truncated instruction at word %d", pos)
		}
		operands := words[pos+1 : pos+wc]
		pos += wc

		switch {
		case op == opUniform || op == opInput || op == opOutput || op == opVar:
			if len(operands) != 3 {
				return nil, fmt.Errorf("spirv: bad declaration")
			}
			id := operands[0]
			t := decodeType([2]uint32{operands[1], operands[2]})
			switch op {
			case opUniform:
				d.globs[id] = d.p.AddUniform(fmt.Sprintf("u%d", id), t)
			case opInput:
				d.globs[id] = d.p.AddInput(fmt.Sprintf("in%d", id), t)
			case opOutput:
				d.vars[id] = d.p.AddOutput(fmt.Sprintf("out%d", id), t)
			case opVar:
				d.vars[id] = d.p.AddVar(fmt.Sprintf("v%d", id), t)
			}
		case op == opIfBegin:
			cond, ok := d.instrs[operands[0]]
			if !ok {
				return nil, fmt.Errorf("spirv: if references unknown id %d", operands[0])
			}
			node := &ir.If{Cond: cond, Then: &ir.Block{}}
			cur().Append(node)
			ifStack = append(ifStack, node)
			blockStack = append(blockStack, node.Then)
		case op == opElse:
			if len(ifStack) == 0 {
				return nil, fmt.Errorf("spirv: else without if")
			}
			node := ifStack[len(ifStack)-1]
			node.Else = &ir.Block{}
			blockStack[len(blockStack)-1] = node.Else
		case op == opIfEnd:
			if len(ifStack) == 0 {
				return nil, fmt.Errorf("spirv: endif without if")
			}
			ifStack = ifStack[:len(ifStack)-1]
			blockStack = blockStack[:len(blockStack)-1]
		case op == opLoopBegin:
			counter := d.vars[operands[0]]
			start := d.instrs[operands[1]]
			end := d.instrs[operands[2]]
			step := d.instrs[operands[3]]
			if counter == nil || start == nil || end == nil || step == nil {
				return nil, fmt.Errorf("spirv: loop references unknown ids")
			}
			node := &ir.Loop{Counter: counter, Start: start, End: end, Step: step, Body: &ir.Block{}}
			cur().Append(node)
			blockStack = append(blockStack, node.Body)
		case op == opLoopEnd:
			blockStack = blockStack[:len(blockStack)-1]
		case op == opWhileBegin:
			node := &ir.While{Cond: &ir.Block{}, Body: &ir.Block{}, MaxIter: int(operands[0])}
			cur().Append(node)
			whileStack = append(whileStack, &pendingWhile{w: node, body: node.Body})
			blockStack = append(blockStack, node.Cond)
		case op == opWhileCond:
			if len(whileStack) == 0 {
				return nil, fmt.Errorf("spirv: while-cond without while")
			}
			pw := whileStack[len(whileStack)-1]
			cv := d.instrs[operands[0]]
			if cv == nil {
				return nil, fmt.Errorf("spirv: while cond id unknown")
			}
			pw.w.CondVal = cv
			blockStack[len(blockStack)-1] = pw.body
		case op == opWhileEnd:
			whileStack = whileStack[:len(whileStack)-1]
			blockStack = blockStack[:len(blockStack)-1]
		case op >= opBodyBase && op < opIfBegin:
			in, err := d.decodeInstr(ir.Op(op-opBodyBase), operands)
			if err != nil {
				return nil, err
			}
			cur().Append(in)
		default:
			return nil, fmt.Errorf("spirv: unknown opcode %d", op)
		}
	}
	if len(blockStack) != 1 {
		return nil, fmt.Errorf("spirv: unbalanced regions")
	}
	d.p.RenumberIDs()
	if err := d.p.Verify(); err != nil {
		return nil, fmt.Errorf("spirv: decoded module invalid: %w", err)
	}
	return d.p, nil
}

type decoder struct {
	p      *ir.Program
	instrs map[uint32]*ir.Instr
	vars   map[uint32]*ir.Var
	globs  map[uint32]*ir.Global
}

func (d *decoder) decodeInstr(op ir.Op, w []uint32) (*ir.Instr, error) {
	rd := func() (uint32, error) {
		if len(w) == 0 {
			return 0, fmt.Errorf("spirv: short instruction")
		}
		v := w[0]
		w = w[1:]
		return v, nil
	}
	id, err := rd()
	if err != nil {
		return nil, err
	}
	t0, err := rd()
	if err != nil {
		return nil, err
	}
	t1, err := rd()
	if err != nil {
		return nil, err
	}
	t := decodeType([2]uint32{t0, t1})
	in := d.p.NewInstr(op, t)

	strIdx, err := rd()
	if err != nil {
		return nil, err
	}
	if int(strIdx) >= len(stringTable) {
		return nil, fmt.Errorf("spirv: bad string index")
	}
	s := stringTable[strIdx]
	switch op {
	case ir.OpBin:
		in.BinOp = s
	case ir.OpUn:
		in.UnOp = s
	case ir.OpCall:
		in.Callee = s
	}
	idx, err := rd()
	if err != nil {
		return nil, err
	}
	in.Index = int(int32(idx))
	nIdx, err := rd()
	if err != nil {
		return nil, err
	}
	for i := uint32(0); i < nIdx; i++ {
		v, err := rd()
		if err != nil {
			return nil, err
		}
		in.Indices = append(in.Indices, int(v))
	}

	switch op {
	case ir.OpLoad, ir.OpStore:
		vid, err := rd()
		if err != nil {
			return nil, err
		}
		in.Var = d.vars[vid]
		if in.Var == nil {
			return nil, fmt.Errorf("spirv: unknown var id %d", vid)
		}
	case ir.OpUniform, ir.OpInput:
		gid, err := rd()
		if err != nil {
			return nil, err
		}
		in.Global = d.globs[gid]
		if in.Global == nil {
			return nil, fmt.Errorf("spirv: unknown global id %d", gid)
		}
	case ir.OpConst:
		kindW, err := rd()
		if err != nil {
			return nil, err
		}
		n, err := rd()
		if err != nil {
			return nil, err
		}
		c := &ir.ConstVal{Kind: sem.Kind(kindW)}
		for i := uint32(0); i < n; i++ {
			hi, err := rd()
			if err != nil {
				return nil, err
			}
			lo, err := rd()
			if err != nil {
				return nil, err
			}
			switch c.Kind {
			case sem.KindFloat:
				c.F = append(c.F, math.Float64frombits(uint64(hi)<<32|uint64(lo)))
			case sem.KindInt:
				c.I = append(c.I, int64(uint64(hi)<<32|uint64(lo)))
			case sem.KindBool:
				c.B = append(c.B, hi != 0)
			}
		}
		in.Const = c
	}

	nArgs, err := rd()
	if err != nil {
		return nil, err
	}
	for i := uint32(0); i < nArgs; i++ {
		aid, err := rd()
		if err != nil {
			return nil, err
		}
		a := d.instrs[aid]
		if a == nil {
			return nil, fmt.Errorf("spirv: unknown operand id %d", aid)
		}
		in.Args = append(in.Args, a)
	}
	if len(w) != 0 {
		return nil, fmt.Errorf("spirv: %d trailing operand words", len(w))
	}
	if id != 0 {
		d.instrs[id] = in
	}
	return in, nil
}
