package corpus

// Übershader family templates. Each is a desktop GLSL base shader
// specialized through preprocessor defines, the structure the paper
// observes in GFXBench 4.0 (§IV-A: "a single file containing numerous
// graphics techniques is customised via preprocessor directives").
//
// The families deliberately cover the whole optimization surface: constant
// loops (Unroll), weighted sums with symmetric constants (FP-Reassociate),
// constant divisions (Div-to-Mul), conditional assignments small and large
// (Hoist), duplicate expressions across branch arms (GVN), per-component
// writes (Coalesce), integer index arithmetic (Reassociate), and plain
// texture passthroughs (the power-law tail of Fig. 4a).

// blurTemplate is the paper's motivating example generalized over tap
// count and direction (Listing 1).
const blurTemplate = `#version 330
out vec4 fragColor;
in vec2 uv;
uniform sampler2D tex;
uniform vec4 ambient;
#ifndef TAPS
#define TAPS 9
#endif
#ifndef SPREAD
#define SPREAD 0.0083
#endif
void main() {
#if TAPS == 5
    const float wts[5] = float[](0.06, 0.24, 0.4, 0.24, 0.06);
    const float offs[5] = float[](-1.0, -0.5, 0.0, 0.5, 1.0);
#elif TAPS == 9
    const float wts[9] = float[](0.01, 0.05, 0.14, 0.21, 0.61, 0.21, 0.14, 0.05, 0.01);
    const float offs[9] = float[](-1.0, -0.75, -0.5, -0.25, 0.0, 0.25, 0.5, 0.75, 1.0);
#else
    const float wts[13] = float[](0.002, 0.011, 0.044, 0.115, 0.206, 0.251, 0.742,
        0.251, 0.206, 0.115, 0.044, 0.011, 0.002);
    const float offs[13] = float[](-1.0, -0.83, -0.67, -0.5, -0.33, -0.17, 0.0,
        0.17, 0.33, 0.5, 0.67, 0.83, 1.0);
#endif
    float weightTotal = 0.0;
    fragColor = vec4(0.0);
    for (int i = 0; i < TAPS; i++) {
#ifdef HORIZONTAL
        vec2 offset = vec2(offs[i] * SPREAD, 0.0);
#else
        vec2 offset = vec2(0.0, offs[i] * SPREAD);
#endif
        weightTotal += wts[i];
        fragColor += vec4(wts[i]) * texture(tex, uv + offset) * 3.0 * ambient;
    }
    fragColor /= weightTotal;
}
`

// bloomTemplate composites blurred highlights over the scene with
// constant-weighted adds and constant divisions.
const bloomTemplate = `#version 330
out vec4 color;
in vec2 uv;
uniform sampler2D sceneTex;
uniform sampler2D bloomTex;
uniform float bloomStrength;
void main() {
    vec4 scene = texture(sceneTex, uv);
    vec4 bloom = texture(bloomTex, uv);
#ifdef WIDE
    bloom += texture(bloomTex, uv + vec2(0.004, 0.0)) / 2.0;
    bloom += texture(bloomTex, uv - vec2(0.004, 0.0)) / 2.0;
    bloom += texture(bloomTex, uv + vec2(0.0, 0.004)) / 2.0;
    bloom += texture(bloomTex, uv - vec2(0.0, 0.004)) / 2.0;
    bloom /= 3.0;
#endif
#ifdef DIRT
    vec4 dirt = texture(sceneTex, uv * 0.5);
    bloom = bloom + bloom * dirt * 0.35;
#endif
    color = scene + bloom * bloomStrength * 0.8 + bloom * bloomStrength * 0.2;
    color.a = 1.0;
}
`

// tonemapTemplate: transcendental-heavy colour grading with selectable
// operator (ternaries become selects; constant divisions abound).
const tonemapTemplate = `#version 330
out vec4 color;
in vec2 uv;
uniform sampler2D hdrTex;
uniform float exposure;
uniform float whitePoint;
float luminance(vec3 c) {
    return dot(c, vec3(0.2126, 0.7152, 0.0722));
}
void main() {
    vec3 hdr = texture(hdrTex, uv).rgb * exposure;
#if OPERATOR == 0
    vec3 mapped = hdr / (hdr + vec3(1.0));
#elif OPERATOR == 1
    float l = luminance(hdr);
    float lm = l * (1.0 + l / (whitePoint * whitePoint)) / (1.0 + l);
    vec3 mapped = hdr * (lm / (l + 0.0001));
#else
    vec3 x = max(vec3(0.0), hdr - 0.004);
    vec3 mapped = (x * (6.2 * x + 0.5)) / (x * (6.2 * x + 1.7) + 0.06);
#endif
#ifdef GAMMA
    mapped = pow(mapped, vec3(1.0 / 2.2));
#endif
#ifdef VIGNETTE
    vec2 d = uv - vec2(0.5);
    float vig = 1.0 - dot(d, d) * 0.7;
    mapped = mapped * vig;
#endif
    color = vec4(mapped, 1.0);
}
`

// pbrTemplate is the big übershader: an N-light PBR-ish shading loop with
// optional normal mapping, specular, fog, shadows, and emissive — the
// GFXBench "Car Chase" style family whose instances share optimizable
// segments (§IV-A).
const pbrTemplate = `#version 330
out vec4 fragColor;
in vec2 uv;
in vec3 worldNormal;
in vec3 worldPos;
uniform sampler2D albedoTex;
uniform sampler2D normalTex;
uniform sampler2D aoTex;
uniform sampler2D shadowTex;
uniform vec3 cameraPos;
uniform vec4 lightPositions[4];
uniform vec4 lightColors[4];
uniform float roughness;
uniform float metalness;
uniform vec3 fogColor;
uniform float fogDensity;
#ifndef NUM_LIGHTS
#define NUM_LIGHTS 1
#endif
float distribution(float ndoth, float rough) {
    float a = rough * rough;
    float a2 = a * a;
    float d = ndoth * ndoth * (a2 - 1.0) + 1.0;
    return a2 / (3.14159265 * d * d + 0.0001);
}
float geometry(float ndotv, float k) {
    return ndotv / (ndotv * (1.0 - k) + k);
}
void main() {
    vec4 albedo = texture(albedoTex, uv);
#ifdef ALPHA_TEST
    if (albedo.a < 0.5) { discard; }
#endif
    vec3 n = normalize(worldNormal);
#ifdef NORMAL_MAP
    vec3 tn = texture(normalTex, uv).xyz * 2.0 - 1.0;
    n = normalize(n + tn * 0.5);
#endif
    vec3 v = normalize(cameraPos - worldPos);
    float ndotv = max(dot(n, v), 0.001);
    vec3 acc = vec3(0.0);
    for (int i = 0; i < NUM_LIGHTS; i++) {
        vec3 lp = lightPositions[i].xyz;
        vec3 l = normalize(lp - worldPos);
        float ndotl = max(dot(n, l), 0.0);
        vec3 radiance = lightColors[i].rgb * lightColors[i].a;
#ifdef SPECULAR
        vec3 h = normalize(l + v);
        float ndoth = max(dot(n, h), 0.0);
        float spec = distribution(ndoth, roughness) *
            geometry(ndotv, roughness * 0.5) * geometry(ndotl, roughness * 0.5);
        acc += (albedo.rgb * (1.0 - metalness) + vec3(spec) * metalness) * radiance * ndotl;
#else
        acc += albedo.rgb * radiance * ndotl;
#endif
    }
#ifdef AO_MAP
    float ao = texture(aoTex, uv).r;
    acc *= ao;
#endif
#ifdef SHADOWS
    vec2 shadowUV = worldPos.xy * 0.05 + 0.5;
    float shadowDepth = texture(shadowTex, shadowUV).r;
    float lit = shadowDepth < worldPos.z * 0.1 ? 0.35 : 1.0;
    acc *= lit;
#endif
#ifdef EMISSIVE
    acc += albedo.rgb * albedo.a * 0.6;
#endif
#ifdef FOG
    float dist = length(cameraPos - worldPos);
    float fog = 1.0 - exp(-fogDensity * dist);
    acc = mix(acc, fogColor, clamp(fog, 0.0, 1.0));
#endif
    fragColor = vec4(acc, albedo.a);
}
`

// shadowPCFTemplate: a percentage-closer-filter kernel — a constant loop
// of texture compares with integer index math.
const shadowPCFTemplate = `#version 330
out vec4 color;
in vec2 uv;
in vec3 worldPos;
uniform sampler2D shadowMap;
uniform float bias;
#ifndef KERNEL
#define KERNEL 2
#endif
void main() {
    float depth = worldPos.z * 0.5 + 0.5;
    float lit = 0.0;
    float taps = 0.0;
    for (int x = 0; x < KERNEL * 2 + 1; x++) {
        for (int y = 0; y < KERNEL * 2 + 1; y++) {
            int ox = x - KERNEL;
            int oy = y - KERNEL;
            vec2 off = vec2(float(ox), float(oy)) * 0.0009765625;
            float sample_d = texture(shadowMap, uv + off).r;
            lit += sample_d + bias < depth ? 0.0 : 1.0;
            taps += 1.0;
        }
    }
    float shadow = lit / taps;
#ifdef SOFT
    shadow = smoothstep(0.1, 0.9, shadow);
#endif
    color = vec4(vec3(shadow), 1.0);
}
`

// ssaoTemplate: screen-space ambient occlusion with a constant sample
// kernel (const arrays, dot products, clamps).
const ssaoTemplate = `#version 330
out vec4 color;
in vec2 uv;
uniform sampler2D depthTex;
uniform sampler2D noiseTex;
uniform float radius;
uniform float intensity;
#ifndef SAMPLES
#define SAMPLES 8
#endif
void main() {
    float center = texture(depthTex, uv).r;
    vec2 noise = texture(noiseTex, uv * 64.0).rg * 2.0 - 1.0;
    const vec2 kernel[8] = vec2[](
        vec2(0.7, 0.1), vec2(-0.6, 0.3), vec2(0.2, -0.8), vec2(-0.3, -0.4),
        vec2(0.5, 0.6), vec2(-0.8, -0.1), vec2(0.1, 0.9), vec2(-0.2, 0.5));
    float occlusion = 0.0;
    for (int i = 0; i < SAMPLES; i++) {
        vec2 offset = kernel[i] + noise * 0.15;
        float d = texture(depthTex, uv + offset * radius).r;
        float diff = center - d;
        occlusion += clamp(diff * 30.0, 0.0, 1.0) * (1.0 - clamp(diff * 4.0, 0.0, 1.0));
    }
    float ao = 1.0 - occlusion * intensity / float(SAMPLES);
#ifdef BLUR_NOISE
    ao = ao * 0.5 + texture(noiseTex, uv).b * 0.5;
#endif
    color = vec4(vec3(clamp(ao, 0.0, 1.0)), 1.0);
}
`

// fxaaTemplate: edge anti-aliasing with lots of swizzles, min/max chains,
// and a large two-sided branch (the hoist-pathology shape).
const fxaaTemplate = `#version 330
out vec4 color;
in vec2 uv;
uniform sampler2D tex;
uniform vec2 texelSize;
float lum(vec3 c) { return dot(c, vec3(0.299, 0.587, 0.114)); }
void main() {
    vec3 rgbNW = texture(tex, uv + vec2(-1.0, -1.0) * texelSize).rgb;
    vec3 rgbNE = texture(tex, uv + vec2(1.0, -1.0) * texelSize).rgb;
    vec3 rgbSW = texture(tex, uv + vec2(-1.0, 1.0) * texelSize).rgb;
    vec3 rgbSE = texture(tex, uv + vec2(1.0, 1.0) * texelSize).rgb;
    vec3 rgbM = texture(tex, uv).rgb;
    float lNW = lum(rgbNW);
    float lNE = lum(rgbNE);
    float lSW = lum(rgbSW);
    float lSE = lum(rgbSE);
    float lM = lum(rgbM);
    float lMin = min(lM, min(min(lNW, lNE), min(lSW, lSE)));
    float lMax = max(lM, max(max(lNW, lNE), max(lSW, lSE)));
    vec2 dir = vec2(-((lNW + lNE) - (lSW + lSE)), ((lNW + lSW) - (lNE + lSE)));
    float dirReduce = max((lNW + lNE + lSW + lSE) * 0.03125, 0.0078125);
    float rcpDirMin = 1.0 / (min(abs(dir.x), abs(dir.y)) + dirReduce);
    dir = clamp(dir * rcpDirMin, vec2(-8.0), vec2(8.0)) * texelSize;
    vec3 rgbA = (texture(tex, uv + dir * (1.0 / 3.0 - 0.5)).rgb +
                 texture(tex, uv + dir * (2.0 / 3.0 - 0.5)).rgb) / 2.0;
#ifdef HIGH_QUALITY
    vec3 rgbB = rgbA / 2.0 + (texture(tex, uv + dir * -0.5).rgb +
                 texture(tex, uv + dir * 0.5).rgb) / 4.0;
    float lB = lum(rgbB);
    vec3 result = vec3(0.0);
    if (lB < lMin || lB > lMax) {
        vec3 t0 = rgbA * 0.9 + rgbM * 0.1;
        vec3 t1 = t0 * 0.95 + rgbNW * 0.0125 + rgbNE * 0.0125 + rgbSW * 0.0125 + rgbSE * 0.0125;
        result = t1;
    } else {
        vec3 t2 = rgbB * 0.9 + rgbM * 0.1;
        vec3 t3 = t2 * 0.95 + rgbNW * 0.0125 + rgbNE * 0.0125 + rgbSW * 0.0125 + rgbSE * 0.0125;
        result = t3;
    }
    color = vec4(result, 1.0);
#else
    color = vec4(rgbA, 1.0);
#endif
}
`

// godraysTemplate: radial light-shaft march — a long constant loop that,
// fully unrolled, produces the very large basic blocks of §III-C(c).
const godraysTemplate = `#version 330
out vec4 color;
in vec2 uv;
uniform sampler2D occlusionTex;
uniform vec2 lightScreenPos;
uniform float density;
uniform float decay;
uniform float exposure2;
#ifndef STEPS
#define STEPS 32
#endif
void main() {
    vec2 delta = (uv - lightScreenPos) * (density / float(STEPS));
    vec2 pos = uv;
    float illum = 0.0;
    float weight = 1.0;
    for (int i = 0; i < STEPS; i++) {
        pos = pos - delta;
        float sampleV = texture(occlusionTex, pos).r;
        illum += sampleV * weight;
        weight = weight * decay;
    }
    color = vec4(vec3(illum * exposure2 / float(STEPS)), 1.0);
}
`

// waterTemplate: sine-wave surface with groupable scalar trigonometry and
// a matrix transform (scalarization artefact source).
const waterTemplate = `#version 330
out vec4 color;
in vec2 uv;
in vec3 worldPos;
uniform sampler2D reflectionTex;
uniform mat3 waveTransform;
uniform float time;
uniform vec3 deepColor;
uniform vec3 shallowColor;
void main() {
    float w1 = sin(worldPos.x * 4.0 + time * 2.0) * 0.5;
    float w2 = sin(worldPos.y * 6.0 + time * 3.1) * 0.25;
    float w3 = cos((worldPos.x + worldPos.y) * 2.5 + time * 1.3) * 0.125;
    float height = w1 + w2 + w3;
#ifdef CHOPPY
    height = height + sin(worldPos.x * 19.0 + time * 7.0) * 0.06
                    + cos(worldPos.y * 23.0 + time * 6.0) * 0.06;
#endif
    vec3 n = normalize(waveTransform * vec3(w1 * 0.2, w2 * 0.2, 1.0));
    vec2 refUV = uv + n.xy * 0.04;
    vec3 reflection = texture(reflectionTex, refUV).rgb;
    float facing = clamp(height * 0.5 + 0.5, 0.0, 1.0);
    vec3 waterColor = mix(deepColor, shallowColor, facing);
#ifdef FRESNEL
    float fr = pow(1.0 - facing, 3.0);
    color = vec4(mix(waterColor, reflection, fr * 0.8 + 0.1), 1.0);
#else
    color = vec4(waterColor * 0.7 + reflection * 0.3, 1.0);
#endif
}
`

// skyboxTemplate: trivial cube sample (part of the power-law tail).
const skyboxTemplate = `#version 330
out vec4 color;
in vec3 viewDir;
uniform samplerCube skyTex;
uniform float skyIntensity;
void main() {
#ifdef TINT_HORIZON
    vec4 sky = texture(skyTex, viewDir);
    float horizon = 1.0 - abs(viewDir.y);
    color = vec4(sky.rgb * skyIntensity + vec3(0.8, 0.5, 0.3) * horizon * 0.2, 1.0);
#else
    color = texture(skyTex, viewDir) * skyIntensity;
#endif
}
`

// particleTemplate: soft-particle billboard with per-component writes (the
// Coalesce target shape) and a discard path.
const particleTemplate = `#version 330
out vec4 color;
in vec2 uv;
in vec3 worldPos;
uniform sampler2D particleTex;
uniform sampler2D depthTex;
uniform vec4 particleColor;
uniform float softness;
void main() {
    vec4 tex = texture(particleTex, uv);
#ifdef ALPHA_KILL
    if (tex.a < 0.01) { discard; }
#endif
    vec4 result = vec4(0.0);
    result.r = tex.r * particleColor.r;
    result.g = tex.g * particleColor.g;
    result.b = tex.b * particleColor.b;
    result.a = tex.a * particleColor.a;
#ifdef SOFT_DEPTH
    float sceneDepth = texture(depthTex, uv).r;
    float fade = clamp((sceneDepth - worldPos.z * 0.1) * softness, 0.0, 1.0);
    result.a = result.a * fade;
#endif
    color = result;
}
`

// dofTemplate: depth-of-field circle-of-confusion with constant divisions
// and ternaries.
const dofTemplate = `#version 330
out vec4 color;
in vec2 uv;
uniform sampler2D sceneTex;
uniform sampler2D depthTex;
uniform float focusDepth;
uniform float focusRange;
void main() {
    float depth = texture(depthTex, uv).r;
    float coc = (depth - focusDepth) / focusRange;
    coc = clamp(coc, -1.0, 1.0);
    float blurAmount = abs(coc);
#ifdef NEAR_BLUR
    blurAmount = coc < 0.0 ? blurAmount * 1.5 : blurAmount;
    blurAmount = min(blurAmount, 1.0);
#endif
    vec4 sharp = texture(sceneTex, uv);
    vec4 blurred = (texture(sceneTex, uv + vec2(0.004, 0.0)) +
                    texture(sceneTex, uv - vec2(0.004, 0.0)) +
                    texture(sceneTex, uv + vec2(0.0, 0.004)) +
                    texture(sceneTex, uv - vec2(0.0, 0.004))) / 4.0;
#ifdef PREMULTIPLY
    sharp.rgb = sharp.rgb * sharp.a;
    blurred.rgb = blurred.rgb / (blurred.a + 0.001);
#endif
    color = mix(sharp, blurred, blurAmount);
    color.a = 1.0;
}
`

// uiTemplate: the trivial tail — textured or flat-colour UI quads.
const uiTemplate = `#version 330
out vec4 color;
in vec2 uv;
uniform sampler2D uiTex;
uniform vec4 uiColor;
void main() {
#if STYLE == 0
    color = uiColor;
#elif STYLE == 1
    color = texture(uiTex, uv);
#elif STYLE == 2
    color = texture(uiTex, uv) * uiColor;
#elif STYLE == 3
    vec4 t = texture(uiTex, uv);
    color = vec4(uiColor.rgb, t.a * uiColor.a);
#else
    vec4 t = texture(uiTex, uv);
    float gray = dot(t.rgb, vec3(0.333, 0.334, 0.333));
    color = vec4(vec3(gray), t.a) * uiColor;
#endif
}
`

// aluTemplate: the ALU-stress family — long arithmetic chains with
// duplicate subexpressions across branch arms (GVN bait), integer index
// arithmetic (Reassociate bait), and factorizable float math.
const aluTemplate = `#version 330
out vec4 color;
in vec2 uv;
uniform vec4 paramA;
uniform vec4 paramB;
uniform float scale1;
uniform float scale2;
uniform int rounds;
void main() {
    vec4 a = paramA;
    vec4 b = paramB;
    vec4 acc = vec4(0.0);
    acc += a * b * 0.25 + a * paramB * 0.25;
    acc += scale1 * (scale2 * a);
    acc += a * 0.125 + b * 0.125;
#if DEPTH >= 2
    vec4 q = a * b + vec4(uv, uv) * 0.5;
    acc += q * q * 0.0625;
    acc += (q + a) * 0.1 - q * 0.1;
#endif
#if DEPTH >= 3
    int base = rounds * 2 + 1;
    int idx = base + rounds - base;
    acc += a * float(idx) * 0.01;
    vec4 r = vec4(0.0);
    if (scale1 > 0.5) {
        r = a * b * 0.5 + paramA * 0.2;
    } else {
        r = a * b * 0.5 - paramA * 0.2;
    }
    acc += r / 8.0;
#endif
#if DEPTH >= 4
    vec4 s = acc;
    s += s.wzyx * 0.3;
    s += s.yxwz * 0.15;
    acc = s / 2.0 + acc / 2.0;
#endif
    color = acc / 4.0 + vec4(0.1);
    color.a = 1.0;
}
`

// colorGradeTemplate: LUT-less grading with mix chains and vector consts.
const colorGradeTemplate = `#version 330
out vec4 color;
in vec2 uv;
uniform sampler2D sceneTex;
uniform float saturation;
uniform float contrast;
uniform float brightness;
void main() {
    vec3 c = texture(sceneTex, uv).rgb;
    c = c * brightness;
    float gray = dot(c, vec3(0.2126, 0.7152, 0.0722));
    c = mix(vec3(gray), c, saturation);
    c = (c - 0.5) * contrast + 0.5;
#ifdef LIFT_GAMMA_GAIN
    c = pow(max(c, vec3(0.0)), vec3(0.9, 1.0, 1.1));
    c = c * vec3(1.05, 1.0, 0.95) + vec3(0.01, 0.0, -0.01);
#endif
#ifdef TEAL_ORANGE
    vec3 shadowsTint = vec3(0.1, 0.3, 0.4);
    vec3 highlightTint = vec3(1.0, 0.8, 0.6);
    float l = clamp(gray * 1.4, 0.0, 1.0);
    c = c * mix(shadowsTint, highlightTint, l) * 1.3;
#endif
    color = vec4(clamp(c, vec3(0.0), vec3(1.0)), 1.0);
}
`

// hazeTemplate: screen-space distortion with a dynamic-bound loop (one of
// the few non-constant loops, kept rare per §V-A).
const hazeTemplate = `#version 330
out vec4 color;
in vec2 uv;
uniform sampler2D sceneTex;
uniform float time;
uniform int octaves;
uniform float strength;
void main() {
    vec2 distortion = vec2(0.0);
    float amp = strength;
    float freq = 7.0;
    for (int i = 0; i < octaves; i++) {
        distortion.x += sin(uv.y * freq + time * 2.0) * amp;
        distortion.y += cos(uv.x * freq + time * 1.7) * amp;
        amp = amp * 0.5;
        freq = freq * 2.0;
    }
    color = texture(sceneTex, uv + distortion);
    color.a = 1.0;
}
`

// motionBlurTemplate: velocity-buffer blur with a short constant loop.
const motionBlurTemplate = `#version 330
out vec4 color;
in vec2 uv;
uniform sampler2D sceneTex;
uniform sampler2D velocityTex;
uniform float blurScale;
#ifndef BLUR_TAPS
#define BLUR_TAPS 4
#endif
void main() {
    vec2 velocity = (texture(velocityTex, uv).rg * 2.0 - 1.0) * blurScale;
    vec4 acc = texture(sceneTex, uv);
    for (int i = 1; i < BLUR_TAPS; i++) {
        vec2 offset = velocity * (float(i) / float(BLUR_TAPS));
        acc += texture(sceneTex, uv + offset);
    }
    color = acc / float(BLUR_TAPS);
    color.a = 1.0;
}
`

// terrainTemplate: splat-mapped terrain blending four layers (texture
// heavy, weight normalization with a division).
const terrainTemplate = `#version 330
out vec4 color;
in vec2 uv;
in vec3 worldNormal;
uniform sampler2D splatTex;
uniform sampler2D grassTex;
uniform sampler2D rockTex;
uniform sampler2D snowTex;
uniform vec3 sunDir;
void main() {
    vec4 splat = texture(splatTex, uv);
    vec3 grass = texture(grassTex, uv * 16.0).rgb;
    vec3 rock = texture(rockTex, uv * 12.0).rgb;
    vec3 snow = texture(snowTex, uv * 8.0).rgb;
    float total = splat.r + splat.g + splat.b + 0.001;
    vec3 blended = (grass * splat.r + rock * splat.g + snow * splat.b) / total;
#ifdef SLOPE_ROCK
    float slope = 1.0 - clamp(worldNormal.y, 0.0, 1.0);
    blended = mix(blended, rock, clamp(slope * 2.0 - 0.4, 0.0, 1.0));
#endif
    float light = max(dot(normalize(worldNormal), sunDir), 0.0) * 0.8 + 0.2;
    color = vec4(blended * light, 1.0);
}
`

// projtexTemplate: projective texturing with mat4 algebra. The driver
// compiles the matrix products natively; the offline optimizer's
// scalarization artefact (§III-C(a)) turns them into dozens of scalar
// operations, so LunarGlass output can lose to the original here — the
// corpus's "all optimizations cause slow-downs" cases.
const projtexTemplate = `#version 330
out vec4 color;
in vec2 uv;
in vec3 worldPos;
uniform sampler2D sceneTex;
uniform sampler2D projTex;
uniform mat4 projMatrix;
uniform mat4 viewMatrix;
uniform float blend;
void main() {
#ifdef COMPOSE
    mat4 m = projMatrix * viewMatrix;
    vec4 clip = m * vec4(worldPos, 1.0);
#else
    vec4 clip = projMatrix * vec4(worldPos, 1.0);
#endif
    vec2 puv = clip.xy / (clip.w + 0.0001) * 0.5 + 0.5;
    vec4 projected = texture(projTex, puv);
    vec4 scene = texture(sceneTex, uv);
#ifdef FADE_EDGES
    vec2 d = abs(puv - 0.5) * 2.0;
    float edge = clamp(1.0 - max(d.x, d.y), 0.0, 1.0);
    color = mix(scene, projected, blend * edge);
#else
    color = mix(scene, projected, blend);
#endif
}
`

// deferredTemplate: deferred-lighting position reconstruction — more mat4
// work plus normal transforms (mat3), straight-line.
const deferredTemplate = `#version 330
out vec4 color;
in vec2 uv;
uniform sampler2D depthTex;
uniform sampler2D normalTex;
uniform sampler2D albedoTex;
uniform mat4 invViewProj;
uniform mat3 normalMatrix;
uniform vec3 lightDir;
uniform vec3 lightColor;
void main() {
    float depth = texture(depthTex, uv).r;
    vec4 clip = vec4(uv * 2.0 - 1.0, depth * 2.0 - 1.0, 1.0);
    vec4 world4 = invViewProj * clip;
    vec3 world = world4.xyz / world4.w;
    vec3 n = normalMatrix * (texture(normalTex, uv).xyz * 2.0 - 1.0);
    n = normalize(n);
    vec3 albedo = texture(albedoTex, uv).rgb;
    float ndl = max(dot(n, lightDir), 0.0);
#ifdef SPEC
    vec3 viewDir = normalize(-world);
    vec3 h = normalize(lightDir + viewDir);
    float spec = pow(max(dot(n, h), 0.0), 24.0);
    color = vec4(albedo * lightColor * ndl + lightColor * spec * 0.4, 1.0);
#else
    color = vec4(albedo * lightColor * ndl, 1.0);
#endif
}
`

// reliefTemplate: two heavy mutually-exclusive branches — the shape on
// which conditional flattening backfires (§VI-D6: hoist's pathological
// cases; on Mali the flattened block's register pressure causes the -35%
// case).
const reliefTemplate = `#version 330
out vec4 color;
in vec2 uv;
in vec3 worldPos;
uniform sampler2D heightTex;
uniform sampler2D detailTex;
uniform float threshold;
void main() {
    float h = texture(heightTex, uv).r;
    vec4 result;
    if (h > threshold) {
        vec4 a0 = texture(detailTex, uv * 2.0);
        vec4 a1 = texture(detailTex, uv * 4.0 + vec2(0.1, 0.0));
        vec4 a2 = texture(detailTex, uv * 8.0 + vec2(0.0, 0.1));
        vec4 a3 = texture(detailTex, uv * 16.0 + vec2(0.05, 0.05));
#ifdef HEAVY
        vec4 a4 = texture(detailTex, uv * 3.0 + vec2(0.2, 0.1));
        vec4 a5 = texture(detailTex, uv * 5.0 + vec2(0.1, 0.2));
        vec4 a6 = texture(detailTex, uv * 7.0 + vec2(0.3, 0.0));
        vec4 a7 = texture(detailTex, uv * 9.0 + vec2(0.0, 0.3));
        result = (a0 * 0.3 + a1 * 0.25 + a2 * 0.2 + a3 * 0.1 + a4 * 0.05 +
                  a5 * 0.04 + a6 * 0.03 + a7 * 0.03) * (h * 2.0);
#else
        result = (a0 * 0.4 + a1 * 0.3 + a2 * 0.2 + a3 * 0.1) * (h * 2.0);
#endif
    } else {
        vec4 b0 = texture(detailTex, uv * 1.5 + vec2(0.5, 0.5));
        vec4 b1 = texture(detailTex, uv * 2.5 + vec2(0.25, 0.75));
        vec4 b2 = texture(detailTex, uv * 3.5 + vec2(0.75, 0.25));
        vec4 b3 = texture(detailTex, uv * 4.5 + vec2(0.4, 0.6));
#ifdef HEAVY
        vec4 b4 = texture(detailTex, uv * 5.5 + vec2(0.6, 0.4));
        vec4 b5 = texture(detailTex, uv * 6.5 + vec2(0.15, 0.85));
        vec4 b6 = texture(detailTex, uv * 7.5 + vec2(0.85, 0.15));
        vec4 b7 = texture(detailTex, uv * 8.5 + vec2(0.35, 0.65));
        result = (b0 * 0.3 + b1 * 0.25 + b2 * 0.2 + b3 * 0.1 + b4 * 0.05 +
                  b5 * 0.04 + b6 * 0.03 + b7 * 0.03) * (1.0 - h);
#else
        result = (b0 * 0.4 + b1 * 0.3 + b2 * 0.2 + b3 * 0.1) * (1.0 - h);
#endif
    }
    color = vec4(result.rgb, 1.0);
}
`

// envmapTemplate: the same expensive expressions appear in both branch
// arms and in the tail — value numbering across blocks (the GVN flag's
// territory, §VI-D2; merged duplicate texture fetches give the Qualcomm
// +15% case).
const envmapTemplate = `#version 330
out vec4 color;
in vec2 uv;
in vec3 worldNormal;
in vec3 viewDir;
uniform samplerCube envTex;
uniform sampler2D glossTex;
uniform float metallic;
void main() {
    vec3 n = normalize(worldNormal);
    vec3 r = reflect(normalize(viewDir), n);
    float gloss = texture(glossTex, uv).r;
    vec4 result;
    if (gloss > 0.5) {
        vec4 env = texture(envTex, reflect(normalize(viewDir), n));
        float fres = pow(1.0 - max(dot(n, normalize(viewDir)), 0.0), 5.0);
        result = env * (metallic + fres * (1.0 - metallic)) * gloss;
    } else {
        vec4 env = texture(envTex, reflect(normalize(viewDir), n));
        float fres = pow(1.0 - max(dot(n, normalize(viewDir)), 0.0), 5.0);
        result = env * fres * 0.25 + vec4(0.04) * gloss;
    }
#ifdef BASE_BLEND
    vec4 env2 = texture(envTex, reflect(normalize(viewDir), n));
    result = result * 0.75 + env2 * 0.25;
#endif
    color = vec4(result.rgb, 1.0);
}
`

// blendTemplate: the trivial texture-bound tail (compositing ops) — the
// near-zero mass of Figures 7 and 9.
const blendTemplate = `#version 330
out vec4 color;
in vec2 uv;
uniform sampler2D srcTex;
uniform sampler2D dstTex;
uniform float opacity;
void main() {
    vec4 src = texture(srcTex, uv);
    vec4 dst = texture(dstTex, uv);
#if MODE == 0
    color = mix(dst, src, opacity);
#elif MODE == 1
    color = dst + src * opacity;
#elif MODE == 2
    color = dst * mix(vec4(1.0), src, opacity);
#elif MODE == 3
    color = vec4(1.0) - (vec4(1.0) - dst) * (vec4(1.0) - src * opacity);
#elif MODE == 4
    color = abs(dst - src) * opacity + dst * (1.0 - opacity);
#else
    color = max(dst, src * opacity);
#endif
    color.a = 1.0;
}
`

// simpleTemplate: single-purpose utility shaders (the bulk of the
// power-law tail: "numerous simpler shaders, many containing only a few
// lines", §V-A).
const simpleTemplate = `#version 330
out vec4 color;
in vec2 uv;
uniform sampler2D tex;
uniform vec4 param;
void main() {
#if KIND == 0
    color = texture(tex, uv);
#elif KIND == 1
    float g = dot(texture(tex, uv).rgb, vec3(0.2126, 0.7152, 0.0722));
    color = vec4(vec3(g), 1.0);
#elif KIND == 2
    color = vec4(texture(tex, uv).rgb * param.rgb, 1.0);
#elif KIND == 3
    float d = texture(tex, uv).r;
    color = vec4(vec3(d * param.x), 1.0);
#elif KIND == 4
    vec4 t = texture(tex, uv);
    color = t.a < param.x ? vec4(0.0) : t;
#elif KIND == 5
    color = vec4(uv, param.x, 1.0);
#elif KIND == 6
    vec2 d = uv - vec2(0.5);
    color = texture(tex, uv) * (1.0 - dot(d, d) * param.x);
#else
    color = param;
#endif
}
`
