package corpus

// The HLSL slice of the corpus: fragment (pixel) shaders written natively
// in HLSL, run through the same exhaustive flag study as the GLSL and
// WGSL suites via the hlsl frontend. The family is a hand-specialized
// port of the GLSL tonemap übershader family — instance for instance,
// same math, same uniform interface — so flag effectiveness is directly
// comparable across source languages: each hlsl/<instance> must produce
// exactly as many distinct variants as its tonemap/<instance> source (a
// cross-language fingerprint the equivalence suite pins).
//
// HLSL has no preprocessor in the subset, so the #if OPERATOR / #ifdef
// GAMMA / #ifdef VIGNETTE specializations of the GLSL template appear
// here pre-expanded, exactly as the preprocessor would leave them.

type hlslEntry struct {
	name   string
	source string
}

func hlslEntries() []hlslEntry {
	return []hlslEntry{
		{"reinhard", hlslReinhard},
		{"reinhard_ext", hlslReinhardExt},
		{"filmic", hlslFilmic},
		{"reinhard_gamma", hlslReinhardGamma},
		{"filmic_gamma", hlslFilmicGamma},
		{"filmic_full", hlslFilmicFull},
	}
}

// hlslHeader is the shared interface of the family: the HDR source
// texture with its sampler state, the tonemap constant block, and the
// luminance helper (the port of the GLSL template's shared prelude).
const hlslHeader = `
Texture2D hdrTex : register(t0);
SamplerState hdrSmp : register(s0);

cbuffer Tonemap : register(b0) {
    float exposure;
    float whitePoint;
};

float luminance(float3 c) {
    return dot(c, float3(0.2126, 0.7152, 0.0722));
}
`

// hlslReinhard ports tonemap/reinhard (OPERATOR == 0).
const hlslReinhard = hlslHeader + `
float4 main(float2 uv : TEXCOORD0) : SV_Target {
    float3 hdr = hdrTex.Sample(hdrSmp, uv).rgb * exposure;
    float3 mapped = hdr / (hdr + float3(1.0, 1.0, 1.0));
    return float4(mapped, 1.0);
}
`

// hlslReinhardExt ports tonemap/reinhard_ext (OPERATOR == 1): the
// extended Reinhard operator with a white-point term.
const hlslReinhardExt = hlslHeader + `
float4 main(float2 uv : TEXCOORD0) : SV_Target {
    float3 hdr = hdrTex.Sample(hdrSmp, uv).rgb * exposure;
    float l = luminance(hdr);
    float lm = l * (1.0 + l / (whitePoint * whitePoint)) / (1.0 + l);
    float3 mapped = hdr * (lm / (l + 0.0001));
    return float4(mapped, 1.0);
}
`

// hlslFilmic ports tonemap/filmic (OPERATOR == 2): the Hejl/Burgess-Dawson
// curve with the gamma baked into the fit.
const hlslFilmic = hlslHeader + `
float4 main(float2 uv : TEXCOORD0) : SV_Target {
    float3 hdr = hdrTex.Sample(hdrSmp, uv).rgb * exposure;
    float3 x = max(float3(0.0, 0.0, 0.0), hdr - 0.004);
    float3 mapped = (x * (6.2 * x + 0.5)) / (x * (6.2 * x + 1.7) + 0.06);
    return float4(mapped, 1.0);
}
`

// hlslReinhardGamma ports tonemap/reinhard_gamma (OPERATOR == 0 + GAMMA).
const hlslReinhardGamma = hlslHeader + `
float4 main(float2 uv : TEXCOORD0) : SV_Target {
    float3 hdr = hdrTex.Sample(hdrSmp, uv).rgb * exposure;
    float3 mapped = hdr / (hdr + float3(1.0, 1.0, 1.0));
    mapped = pow(mapped, float3(1.0 / 2.2, 1.0 / 2.2, 1.0 / 2.2));
    return float4(mapped, 1.0);
}
`

// hlslFilmicGamma ports tonemap/filmic_gamma (OPERATOR == 2 + GAMMA).
const hlslFilmicGamma = hlslHeader + `
float4 main(float2 uv : TEXCOORD0) : SV_Target {
    float3 hdr = hdrTex.Sample(hdrSmp, uv).rgb * exposure;
    float3 x = max(float3(0.0, 0.0, 0.0), hdr - 0.004);
    float3 mapped = (x * (6.2 * x + 0.5)) / (x * (6.2 * x + 1.7) + 0.06);
    mapped = pow(mapped, float3(1.0 / 2.2, 1.0 / 2.2, 1.0 / 2.2));
    return float4(mapped, 1.0);
}
`

// hlslFilmicFull ports tonemap/filmic_full (OPERATOR == 2 + GAMMA +
// VIGNETTE).
const hlslFilmicFull = hlslHeader + `
float4 main(float2 uv : TEXCOORD0) : SV_Target {
    float3 hdr = hdrTex.Sample(hdrSmp, uv).rgb * exposure;
    float3 x = max(float3(0.0, 0.0, 0.0), hdr - 0.004);
    float3 mapped = (x * (6.2 * x + 0.5)) / (x * (6.2 * x + 1.7) + 0.06);
    mapped = pow(mapped, float3(1.0 / 2.2, 1.0 / 2.2, 1.0 / 2.2));
    float2 d = uv - float2(0.5, 0.5);
    float vig = 1.0 - dot(d, d) * 0.7;
    mapped = mapped * vig;
    return float4(mapped, 1.0);
}
`
