// Package corpus generates the synthetic GFXBench-4.0-like fragment shader
// suite. The closed-source benchmark's shaders are replaced (per the
// reproduction's substitution rule) by übershader families specialized via
// preprocessor defines, tuned to the paper's measured corpus shape (§V):
// a power-law lines-of-code distribution with most shaders under 50 lines
// and a ~300-line maximum, long arithmetic sequences, 1-3 branches, rare
// loops, and families of near-identical instances.
package corpus

import (
	"fmt"
	"sort"

	"shaderopt/internal/core"
	"shaderopt/internal/glsl"
	"shaderopt/internal/hlsl"
	"shaderopt/internal/pp"
	"shaderopt/internal/wgsl"
)

// Shader is one corpus entry: a compile-ready fragment shader in one of
// the supported source languages.
type Shader struct {
	// Name is family/instance, e.g. "pbr/l2_spec_fog".
	Name string
	// Family groups übershader instances.
	Family string
	// Lang is the source language (GLSL for the übershader families, WGSL
	// for the wgsl family, HLSL for the hlsl family).
	Lang core.Lang
	// Defines are the specialization knobs applied to the family template
	// (GLSL families only; the WGSL and HLSL entries are pre-specialized).
	Defines map[string]string
	// Source is the compile-ready source text (preprocessed, for GLSL).
	Source string
	// Lines is the paper's Fig. 4a metric (executable lines after
	// preprocessing; for WGSL and HLSL, of the canonical lowered form, so
	// the metric is comparable across languages).
	Lines int
}

// instance describes one specialization of a family template.
type instance struct {
	name    string
	defines map[string]string
}

type family struct {
	name      string
	template  string
	instances []instance
}

func families() []family {
	return []family{
		{"blur", blurTemplate, []instance{
			{"h9", defs("TAPS", "9", "HORIZONTAL", "")},
			{"v9", defs("TAPS", "9")},
			{"h13", defs("TAPS", "13", "HORIZONTAL", "", "SPREAD", "0.0062")},
		}},
		{"bloom", bloomTemplate, []instance{
			{"basic", defs()},
			{"wide", defs("WIDE", "")},
			{"dirt", defs("DIRT", "")},
			{"wide_dirt", defs("WIDE", "", "DIRT", "")},
		}},
		{"tonemap", tonemapTemplate, []instance{
			{"reinhard", defs("OPERATOR", "0")},
			{"reinhard_ext", defs("OPERATOR", "1")},
			{"filmic", defs("OPERATOR", "2")},
			{"reinhard_gamma", defs("OPERATOR", "0", "GAMMA", "")},
			{"filmic_gamma", defs("OPERATOR", "2", "GAMMA", "")},
			{"filmic_full", defs("OPERATOR", "2", "GAMMA", "", "VIGNETTE", "")},
		}},
		{"pbr", pbrTemplate, pbrInstances()},
		{"shadow", shadowPCFTemplate, []instance{
			{"pcf1", defs("KERNEL", "1")},
			{"pcf2_soft", defs("KERNEL", "2", "SOFT", "")},
		}},
		{"ssao", ssaoTemplate, []instance{
			{"s8", defs("SAMPLES", "8")},
			{"s8_blur", defs("SAMPLES", "8", "BLUR_NOISE", "")},
		}},
		{"fxaa", fxaaTemplate, []instance{
			{"fast", defs()},
			{"hq", defs("HIGH_QUALITY", "")},
		}},
		{"godrays", godraysTemplate, []instance{
			{"s16", defs("STEPS", "16")},
			{"s32", defs("STEPS", "32")},
			{"s64", defs("STEPS", "64")},
		}},
		{"water", waterTemplate, []instance{
			{"calm", defs()},
			{"choppy", defs("CHOPPY", "")},
			{"fresnel", defs("FRESNEL", "")},
			{"full", defs("CHOPPY", "", "FRESNEL", "")},
		}},
		{"skybox", skyboxTemplate, []instance{
			{"plain", defs()},
			{"horizon", defs("TINT_HORIZON", "")},
		}},
		{"particle", particleTemplate, []instance{
			{"basic", defs()},
			{"kill", defs("ALPHA_KILL", "")},
			{"soft", defs("SOFT_DEPTH", "")},
			{"soft_kill", defs("ALPHA_KILL", "", "SOFT_DEPTH", "")},
		}},
		{"dof", dofTemplate, []instance{
			{"basic", defs()},
			{"near", defs("NEAR_BLUR", "")},
			{"premul", defs("PREMULTIPLY", "")},
			{"full", defs("NEAR_BLUR", "", "PREMULTIPLY", "")},
		}},
		{"ui", uiTemplate, []instance{
			{"flat", defs("STYLE", "0")},
			{"tex", defs("STYLE", "1")},
			{"tinted", defs("STYLE", "2")},
			{"font", defs("STYLE", "3")},
			{"gray", defs("STYLE", "4")},
		}},
		{"alu", aluTemplate, []instance{
			{"d1", defs("DEPTH", "1")},
			{"d2", defs("DEPTH", "2")},
			{"d3", defs("DEPTH", "3")},
			{"d4", defs("DEPTH", "4")},
		}},
		{"grade", colorGradeTemplate, []instance{
			{"basic", defs()},
			{"lgg", defs("LIFT_GAMMA_GAIN", "")},
			{"teal", defs("TEAL_ORANGE", "")},
			{"full", defs("LIFT_GAMMA_GAIN", "", "TEAL_ORANGE", "")},
		}},
		{"haze", hazeTemplate, []instance{
			{"basic", defs()},
		}},
		{"motionblur", motionBlurTemplate, []instance{
			{"t4", defs("BLUR_TAPS", "4")},
			{"t8", defs("BLUR_TAPS", "8")},
		}},
		{"terrain", terrainTemplate, []instance{
			{"basic", defs()},
			{"slope", defs("SLOPE_ROCK", "")},
		}},
		{"projtex", projtexTemplate, []instance{
			{"basic", defs()},
			{"compose", defs("COMPOSE", "")},
			{"fade", defs("FADE_EDGES", "")},
			{"compose_fade", defs("COMPOSE", "", "FADE_EDGES", "")},
		}},
		{"deferred", deferredTemplate, []instance{
			{"diffuse", defs()},
			{"spec", defs("SPEC", "")},
		}},
		{"relief", reliefTemplate, []instance{
			{"basic", defs()},
			{"heavy", defs("HEAVY", "")},
		}},
		{"envmap", envmapTemplate, []instance{
			{"basic", defs()},
			{"blend", defs("BASE_BLEND", "")},
		}},
		{"blend", blendTemplate, []instance{
			{"alpha", defs("MODE", "0")},
			{"add", defs("MODE", "1")},
			{"mul", defs("MODE", "2")},
			{"screen", defs("MODE", "3")},
			{"diff", defs("MODE", "4")},
			{"lighten", defs("MODE", "5")},
		}},
		{"simple", simpleTemplate, []instance{
			{"copy", defs("KIND", "0")},
			{"luma", defs("KIND", "1")},
			{"tint", defs("KIND", "2")},
			{"depthvis", defs("KIND", "3")},
			{"alphatest", defs("KIND", "4")},
			{"gradient", defs("KIND", "5")},
			{"vignette", defs("KIND", "6")},
			{"flat", defs("KIND", "7")},
		}},
	}
}

// pbrInstances enumerates the big übershader family — the paper's "families
// of similar shaders" with shared optimizable segments.
func pbrInstances() []instance {
	var out []instance
	for _, lights := range []string{"1", "2", "4"} {
		for _, spec := range []bool{false, true} {
			base := defs("NUM_LIGHTS", lights)
			name := "l" + lights
			if spec {
				base["SPECULAR"] = ""
				name += "_spec"
			}
			out = append(out, instance{name, base})

			if spec {
				withNM := copyDefs(base)
				withNM["NORMAL_MAP"] = ""
				out = append(out, instance{name + "_nm", withNM})

				full := copyDefs(withNM)
				full["FOG"] = ""
				full["SHADOWS"] = ""
				full["AO_MAP"] = ""
				out = append(out, instance{name + "_full", full})
			}
		}
	}
	// A few specials.
	out = append(out,
		instance{"l2_alpha", defs("NUM_LIGHTS", "2", "ALPHA_TEST", "")},
		instance{"l4_emissive_fog", defs("NUM_LIGHTS", "4", "SPECULAR", "", "EMISSIVE", "", "FOG", "")},
		instance{"l1_shadow", defs("NUM_LIGHTS", "1", "SHADOWS", "")},
	)
	return out
}

func defs(kv ...string) map[string]string {
	m := map[string]string{}
	for i := 0; i+1 < len(kv); i += 2 {
		m[kv[i]] = kv[i+1]
	}
	return m
}

func copyDefs(m map[string]string) map[string]string {
	out := make(map[string]string, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// Load builds the full corpus: every family instance preprocessed,
// parsed, and checked. The result is deterministic and sorted by name.
func Load() ([]*Shader, error) {
	var out []*Shader
	for _, fam := range families() {
		for _, inst := range fam.instances {
			src, err := pp.Preprocess(fam.template, inst.defines)
			if err != nil {
				return nil, fmt.Errorf("%s/%s: preprocess: %w", fam.name, inst.name, err)
			}
			sh, err := glsl.Parse(src)
			if err != nil {
				return nil, fmt.Errorf("%s/%s: parse: %w", fam.name, inst.name, err)
			}
			out = append(out, &Shader{
				Name:    fam.name + "/" + inst.name,
				Family:  fam.name,
				Lang:    core.LangGLSL,
				Defines: inst.defines,
				Source:  src,
				Lines:   glsl.CountLines(sh),
			})
		}
	}
	for _, g := range generatedShaders() {
		sh, err := glsl.Parse(g.Source)
		if err != nil {
			return nil, fmt.Errorf("%s: parse: %w", g.Name, err)
		}
		g.Lang = core.LangGLSL
		g.Lines = glsl.CountLines(sh)
		out = append(out, g)
	}
	for _, e := range wgslEntries() {
		m, err := wgsl.Parse(e.source)
		if err != nil {
			return nil, fmt.Errorf("wgsl/%s: parse: %w", e.name, err)
		}
		sh, err := wgsl.Translate(m)
		if err != nil {
			return nil, fmt.Errorf("wgsl/%s: translate: %w", e.name, err)
		}
		out = append(out, &Shader{
			Name:   "wgsl/" + e.name,
			Family: "wgsl",
			Lang:   core.LangWGSL,
			Source: e.source,
			Lines:  glsl.CountLines(sh),
		})
	}
	for _, e := range hlslEntries() {
		m, err := hlsl.Parse(e.source)
		if err != nil {
			return nil, fmt.Errorf("hlsl/%s: parse: %w", e.name, err)
		}
		sh, err := hlsl.Translate(m)
		if err != nil {
			return nil, fmt.Errorf("hlsl/%s: translate: %w", e.name, err)
		}
		out = append(out, &Shader{
			Name:   "hlsl/" + e.name,
			Family: "hlsl",
			Lang:   core.LangHLSL,
			Source: e.source,
			Lines:  glsl.CountLines(sh),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, nil
}

// MustLoad panics on error; the corpus is static so errors are build bugs.
func MustLoad() []*Shader {
	s, err := Load()
	if err != nil {
		panic(err)
	}
	return s
}

// FamilyNames lists the distinct family names in order.
func FamilyNames() []string {
	var names []string
	for _, f := range families() {
		names = append(names, f.name)
	}
	seen := map[string]bool{}
	for _, g := range generatedShaders() {
		if !seen[g.Family] {
			seen[g.Family] = true
			names = append(names, g.Family)
		}
	}
	names = append(names, "wgsl", "hlsl")
	sort.Strings(names)
	return names
}

// ByName returns the named shader from a loaded corpus, or nil.
func ByName(shaders []*Shader, name string) *Shader {
	for _, s := range shaders {
		if s.Name == name {
			return s
		}
	}
	return nil
}

// MotivatingExample returns the paper's Listing 1 shader (the 9-tap blur,
// vertical) — the subject of Figure 3.
func MotivatingExample() *Shader {
	shaders := MustLoad()
	return ByName(shaders, "blur/v9")
}
