package corpus

import (
	"fmt"
	"strings"

	"shaderopt/internal/glsl"
)

// Generated long-tail shaders. The paper's corpus has a power-law LoC
// distribution with a few shaders around 300 lines (§V-A, Fig. 4a); those
// big GFXBench shaders are themselves machine-assembled übershader
// expansions, so we synthesize ours the same way: deterministic generators
// that emit long, mostly-straight-line arithmetic with occasional
// branches, many texture samples, and family-shared segments.

// genMegaPost builds an N-stage post-processing chain: each stage samples
// the scene at a different offset and folds it into the accumulator with
// stage-specific constant weights, interleaved with the occasional
// conditional segment. stages≈20 → ~70 lines; stages≈80 → ~300 lines.
func genMegaPost(stages int) string {
	var sb strings.Builder
	sb.WriteString(`#version 330
out vec4 color;
in vec2 uv;
uniform sampler2D sceneTex;
uniform sampler2D auxTex;
uniform vec4 grade;
uniform float intensity;
void main() {
    vec4 acc = texture(sceneTex, uv);
    float lum = dot(acc.rgb, vec3(0.2126, 0.7152, 0.0722));
`)
	for i := 0; i < stages; i++ {
		// Deterministic pseudo-random-ish constants from the stage index.
		dx := float64((i*37)%17-8) / 1000.0
		dy := float64((i*53)%19-9) / 1000.0
		w := 0.5 + float64((i*29)%13)/26.0
		div := []string{"2.0", "4.0", "8.0", "16.0"}[i%4]
		tex := "sceneTex"
		if i%3 == 1 {
			tex = "auxTex"
		}
		fmt.Fprintf(&sb, "    vec4 s%d = texture(%s, uv + vec2(%s, %s));\n", i, tex, glsl.FormatFloat(dx), glsl.FormatFloat(dy))
		switch i % 5 {
		case 0:
			fmt.Fprintf(&sb, "    acc += s%d * %s * grade / %s;\n", i, glsl.FormatFloat(w), div)
		case 1:
			fmt.Fprintf(&sb, "    acc += s%d * %s + s%d * %s;\n", i, glsl.FormatFloat(w/2), i, glsl.FormatFloat(w/2))
		case 2:
			fmt.Fprintf(&sb, "    acc = acc + intensity * (%s * s%d);\n", glsl.FormatFloat(w), i)
		case 3:
			fmt.Fprintf(&sb, "    if (lum > %s) { acc += s%d * %s; } else { acc += s%d * %s; }\n",
				glsl.FormatFloat(0.2+float64(i%7)/10.0), i, glsl.FormatFloat(w), i, glsl.FormatFloat(w*0.5))
		case 4:
			fmt.Fprintf(&sb, "    acc.rgb += s%d.rgb * %s;\n    acc.a = max(acc.a, s%d.a);\n", i, glsl.FormatFloat(w), i)
		}
	}
	fmt.Fprintf(&sb, "    color = acc / %d.0;\n    color.a = 1.0;\n}\n", stages/2+1)
	return sb.String()
}

// genCarChase builds a straight-line multi-light shading shader (the
// "long sequences of arithmetic, only a small number of branches" shape of
// §V-A), with per-light code manually expanded the way engine-generated
// shaders are.
func genCarChase(lights int, spec, fog bool) string {
	var sb strings.Builder
	sb.WriteString(`#version 330
out vec4 fragColor;
in vec2 uv;
in vec3 worldNormal;
in vec3 worldPos;
uniform sampler2D albedoTex;
uniform sampler2D specTex;
uniform vec3 cameraPos;
uniform vec4 lightPosA;
uniform vec4 lightPosB;
uniform vec4 lightPosC;
uniform vec4 lightPosD;
uniform vec4 lightColA;
uniform vec4 lightColB;
uniform vec4 lightColC;
uniform vec4 lightColD;
uniform vec3 fogColor;
void main() {
    vec4 albedo = texture(albedoTex, uv);
    vec3 n = normalize(worldNormal);
    vec3 v = normalize(cameraPos - worldPos);
    vec3 acc = albedo.rgb * 0.15;
`)
	pos := []string{"lightPosA", "lightPosB", "lightPosC", "lightPosD"}
	col := []string{"lightColA", "lightColB", "lightColC", "lightColD"}
	for i := 0; i < lights; i++ {
		fmt.Fprintf(&sb, "    vec3 l%d = normalize(%s.xyz - worldPos);\n", i, pos[i])
		fmt.Fprintf(&sb, "    float nl%d = max(dot(n, l%d), 0.0);\n", i, i)
		fmt.Fprintf(&sb, "    float att%d = 1.0 / (1.0 + %s.w * dot(%s.xyz - worldPos, %s.xyz - worldPos));\n",
			i, pos[i], pos[i], pos[i])
		fmt.Fprintf(&sb, "    acc += albedo.rgb * %s.rgb * nl%d * att%d;\n", col[i], i, i)
		if spec {
			fmt.Fprintf(&sb, "    vec3 h%d = normalize(l%d + v);\n", i, i)
			fmt.Fprintf(&sb, "    float sp%d = pow(max(dot(n, h%d), 0.0), 32.0);\n", i, i)
			fmt.Fprintf(&sb, "    acc += texture(specTex, uv).rgb * %s.rgb * sp%d * att%d;\n", col[i], i, i)
		}
	}
	if fog {
		sb.WriteString(`    float dist = length(cameraPos - worldPos);
    float fogAmt = 1.0 - exp(-0.02 * dist);
    acc = mix(acc, fogColor, clamp(fogAmt, 0.0, 1.0));
`)
	}
	sb.WriteString("    fragColor = vec4(acc, albedo.a);\n}\n")
	return sb.String()
}

// genNoiseField builds a pure-ALU procedural shader with deep arithmetic
// (GVN and reassociation territory) and no textures.
func genNoiseField(octaves int) string {
	var sb strings.Builder
	sb.WriteString(`#version 330
out vec4 color;
in vec2 uv;
uniform float time;
uniform vec4 warp;
void main() {
    vec2 p = uv * 8.0;
    float v = 0.0;
    float amp = 0.5;
`)
	for i := 0; i < octaves; i++ {
		f := 1 << uint(i)
		fmt.Fprintf(&sb, "    float n%d = sin(p.x * %d.0 + time * %s) * cos(p.y * %d.0 - time * %s);\n",
			i, f, glsl.FormatFloat(1.0+float64(i)*0.3), f, glsl.FormatFloat(0.7+float64(i)*0.2))
		fmt.Fprintf(&sb, "    v += n%d * amp + n%d * amp * warp.x * 0.0;\n", i, i)
		sb.WriteString("    amp = amp * 0.5;\n")
	}
	sb.WriteString(`    vec3 c = vec3(0.5 + 0.5 * v);
    c = c * warp.rgb + vec3(0.5) * (1.0 - warp.rgb);
    color = vec4(c, 1.0);
}
`)
	return sb.String()
}

// generatedShaders returns the synthesized long-tail entries.
func generatedShaders() []*Shader {
	entries := []struct {
		name string
		src  string
	}{
		{"megapost/s12", genMegaPost(12)},
		{"megapost/s24", genMegaPost(24)},
		{"megapost/s48", genMegaPost(48)},
		{"megapost/s80", genMegaPost(80)},
		{"carchase/l2", genCarChase(2, false, false)},
		{"carchase/l2_spec", genCarChase(2, true, false)},
		{"carchase/l4_spec", genCarChase(4, true, false)},
		{"carchase/l4_spec_fog", genCarChase(4, true, true)},
		{"noise/o3", genNoiseField(3)},
		{"noise/o5", genNoiseField(5)},
		{"noise/o8", genNoiseField(8)},
	}
	var out []*Shader
	for _, e := range entries {
		fam := e.name[:strings.IndexByte(e.name, '/')]
		out = append(out, &Shader{
			Name:    e.name,
			Family:  fam,
			Defines: map[string]string{},
			Source:  e.src,
		})
	}
	return out
}
