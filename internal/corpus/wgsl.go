package corpus

// The WGSL slice of the corpus: fragment shaders written natively in the
// WebGPU Shading Language, run through the same exhaustive flag study as
// the GLSL suite via the wgsl frontend. The family deliberately covers
// the whole optimization surface again from the second language: constant
// loops over const arrays (Unroll), weighted sums and constant divisions
// (FP-Reassociate, Div-to-Mul), helper functions (inlining), select and
// discard (control flow), and a trivial passthrough mirroring simple/luma
// so cross-language pixel equivalence is directly checkable.

type wgslEntry struct {
	name   string
	source string
}

func wgslEntries() []wgslEntry {
	return []wgslEntry{
		{"luma", wgslLuma},
		{"glow", wgslGlow},
		{"ripple", wgslRipple},
		{"fade", wgslFade},
		{"tonemap", wgslTonemap},
	}
}

// wgslLuma mirrors simple/luma exactly (same math, same interface names),
// the designated GLSL/WGSL render-equivalence pair.
const wgslLuma = `
@group(0) @binding(0) var tex: texture_2d<f32>;
@group(0) @binding(1) var samp: sampler;

@fragment
fn main(@location(0) uv: vec2<f32>) -> @location(0) vec4<f32> {
    let g = dot(textureSample(tex, samp, uv).rgb, vec3<f32>(0.2126, 0.7152, 0.0722));
    return vec4<f32>(vec3<f32>(g), 1.0);
}
`

// wgslGlow: luminance-keyed glow with a vignette — transcendentals and
// wide mixed arithmetic.
const wgslGlow = `
@group(0) @binding(0) var tex: texture_2d<f32>;
@group(0) @binding(1) var samp: sampler;
var<uniform> glowColor: vec4<f32>;
var<uniform> intensity: f32;

@fragment
fn main(@location(0) uv: vec2<f32>) -> @location(0) vec4<f32> {
    let base = textureSample(tex, samp, uv);
    let l = dot(base.rgb, vec3<f32>(0.299, 0.587, 0.114));
    let glow = glowColor.rgb * pow(l, 2.0) * intensity;
    let d = distance(uv, vec2<f32>(0.5, 0.5));
    let vig = 1.0 - smoothstep(0.3, 0.8, d);
    return vec4<f32>(mix(base.rgb, glow, 0.35) * vig, base.a);
}
`

// wgslRipple: a counted loop over module-scope const arrays with constant
// divisions — the Unroll / FP-Reassociate / Div-to-Mul surface.
const wgslRipple = `
@group(0) @binding(0) var tex: texture_2d<f32>;
@group(0) @binding(1) var samp: sampler;
var<uniform> time: f32;
var<uniform> strength: f32;

const freqs = array<f32, 4>(8.0, 16.0, 24.0, 40.0);
const amps = array<f32, 4>(0.5, 0.25, 0.125, 0.0625);

@fragment
fn main(@location(0) uv: vec2<f32>) -> @location(0) vec4<f32> {
    var offset = vec2<f32>(0.0, 0.0);
    for (var i = 0; i < 4; i++) {
        let d = distance(uv, vec2<f32>(0.5, 0.5));
        let w = sin(d * freqs[i] + time * 2.0) * amps[i];
        offset += vec2<f32>(w / 24.0, w / 32.0);
    }
    let c = textureSample(tex, samp, uv + offset * strength);
    return vec4<f32>(c.rgb, 1.0);
}
`

// wgslFade: select(), discard, and constant-divisor edge softening.
const wgslFade = `
@group(0) @binding(0) var tex: texture_2d<f32>;
@group(0) @binding(1) var samp: sampler;
var<uniform> threshold: f32;
var<uniform> fadeColor: vec4<f32>;

@fragment
fn main(@location(0) uv: vec2<f32>) -> @location(0) vec4<f32> {
    let c = textureSample(tex, samp, uv);
    let l = dot(c.rgb, vec3<f32>(0.2126, 0.7152, 0.0722));
    if (l < threshold / 8.0) {
        discard;
    }
    let edge = min(min(uv.x, 1.0 - uv.x), min(uv.y, 1.0 - uv.y));
    let soft = clamp(edge / 0.125, 0.0, 1.0);
    let mixed = select(c, fadeColor, l > 0.75);
    return vec4<f32>(mixed.rgb * soft, c.a);
}
`

// wgslTonemap: helper functions exercising the shared inlining path from
// the second frontend.
const wgslTonemap = `
@group(0) @binding(0) var hdr: texture_2d<f32>;
@group(0) @binding(1) var samp: sampler;
var<uniform> exposure: f32;
var<uniform> gammaInv: f32;

fn reinhard(x: vec3<f32>) -> vec3<f32> {
    return x / (x + vec3<f32>(1.0, 1.0, 1.0));
}

fn gammaCorrect(x: vec3<f32>, g: f32) -> vec3<f32> {
    return pow(x, vec3<f32>(g, g, g));
}

@fragment
fn main(@location(0) uv: vec2<f32>) -> @location(0) vec4<f32> {
    let c = textureSample(hdr, samp, uv);
    let exposed = c.rgb * exp(exposure * 0.69314718);
    let toned = reinhard(exposed);
    return vec4<f32>(gammaCorrect(toned, gammaInv), 1.0);
}
`
