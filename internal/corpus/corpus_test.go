package corpus

import (
	"testing"

	"shaderopt/internal/core"
	"shaderopt/internal/crossc"
	"shaderopt/internal/exec"
	"shaderopt/internal/gpu"
	"shaderopt/internal/harness"
)

func TestLoadCorpus(t *testing.T) {
	shaders, err := Load()
	if err != nil {
		t.Fatal(err)
	}
	if len(shaders) < 60 {
		t.Fatalf("corpus too small: %d shaders", len(shaders))
	}
	seen := map[string]bool{}
	for _, s := range shaders {
		if seen[s.Name] {
			t.Errorf("duplicate shader name %q", s.Name)
		}
		seen[s.Name] = true
		if s.Lines <= 0 {
			t.Errorf("%s: zero lines", s.Name)
		}
	}
}

// TestCorpusShapeMatchesPaper checks the Fig. 4a distribution claims: a
// power-law-like shape, most shaders below 50 lines, maximum around 300,
// and rare loops.
func TestCorpusShapeMatchesPaper(t *testing.T) {
	shaders := MustLoad()
	under50, maxLines := 0, 0
	for _, s := range shaders {
		if s.Lines < 50 {
			under50++
		}
		if s.Lines > maxLines {
			maxLines = s.Lines
		}
	}
	if frac := float64(under50) / float64(len(shaders)); frac < 0.5 {
		t.Errorf("only %.0f%% of shaders under 50 lines; paper says the majority", frac*100)
	}
	if maxLines > 400 {
		t.Errorf("largest shader has %d lines; paper caps around 300", maxLines)
	}
	if maxLines < 40 {
		t.Errorf("largest shader only %d lines; need a long tail", maxLines)
	}
}

// TestEveryShaderCompilesEverywhere is the corpus gate: each shader must
// lower, run under the interpreter with the default harness environment,
// and compile on all five platforms (including the mobile conversion).
func TestEveryShaderCompilesEverywhere(t *testing.T) {
	shaders := MustLoad()
	platforms := gpu.Platforms()
	for _, s := range shaders {
		prog, err := core.Lower(s.Source, s.Name)
		if err != nil {
			t.Fatalf("%s: %v", s.Name, err)
		}
		env := harness.DefaultEnv(prog)
		if _, err := exec.Run(prog, env); err != nil {
			t.Fatalf("%s: interpreter: %v", s.Name, err)
		}
		// Drivers consume desktop GLSL: WGSL shaders reach them through
		// the frontend's translation, GLSL shaders as written.
		driverSrc, err := core.ToGLSL(s.Source, s.Name, s.Lang)
		if err != nil {
			t.Fatalf("%s: to GLSL: %v", s.Name, err)
		}
		for _, pl := range platforms {
			src := driverSrc
			if pl.Mobile {
				src, err = crossc.ToES(driverSrc, s.Name)
				if err != nil {
					t.Fatalf("%s on %s: conversion: %v", s.Name, pl.Vendor, err)
				}
			}
			if _, err := pl.CompileSource(src); err != nil {
				t.Fatalf("%s on %s: %v", s.Name, pl.Vendor, err)
			}
		}
	}
}

// TestVariantEnumerationShape checks the Fig. 4c claims on a sample: few
// unique variants per shader (max ≤ 48, most below 10).
func TestVariantEnumerationShape(t *testing.T) {
	shaders := MustLoad()
	// Sample across the complexity range.
	names := []string{"ui/flat", "skybox/plain", "blur/v9", "tonemap/filmic_full", "fxaa/hq", "pbr/l2_spec_nm"}
	maxUnique := 0
	for _, name := range names {
		s := ByName(shaders, name)
		if s == nil {
			t.Fatalf("missing %s", name)
		}
		vs, err := core.EnumerateVariants(s.Source, s.Name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if vs.Unique() < 1 || vs.Unique() > 48 {
			t.Errorf("%s: %d unique variants, want 1..48", name, vs.Unique())
		}
		if vs.Unique() > maxUnique {
			maxUnique = vs.Unique()
		}
		// All 256 combinations must be mapped.
		if len(vs.ByFlags) != 256 {
			t.Errorf("%s: %d flag mappings", name, len(vs.ByFlags))
		}
	}
	if maxUnique < 2 {
		t.Error("expected at least one shader with multiple variants")
	}
}

func TestTrivialShaderHasFewVariants(t *testing.T) {
	shaders := MustLoad()
	s := ByName(shaders, "ui/flat")
	vs, err := core.EnumerateVariants(s.Source, s.Name)
	if err != nil {
		t.Fatal(err)
	}
	if vs.Unique() != 1 {
		t.Errorf("ui/flat should have exactly 1 variant, got %d", vs.Unique())
	}
}

func TestMotivatingExample(t *testing.T) {
	s := MotivatingExample()
	if s == nil {
		t.Fatal("missing motivating example")
	}
	vs, err := core.EnumerateVariants(s.Source, s.Name)
	if err != nil {
		t.Fatal(err)
	}
	if vs.Unique() < 4 {
		t.Errorf("blur/v9 should respond to several flags, got %d variants", vs.Unique())
	}
}

func TestFamilyNames(t *testing.T) {
	names := FamilyNames()
	if len(names) < 14 {
		t.Errorf("families = %d", len(names))
	}
	shaders := MustLoad()
	for _, s := range shaders {
		found := false
		for _, f := range names {
			if s.Family == f {
				found = true
			}
		}
		if !found {
			t.Errorf("%s has unknown family %q", s.Name, s.Family)
		}
	}
}

func TestByName(t *testing.T) {
	shaders := MustLoad()
	if ByName(shaders, "blur/v9") == nil {
		t.Error("blur/v9 missing")
	}
	if ByName(shaders, "nope/nope") != nil {
		t.Error("unexpected hit")
	}
}

// TestCorpusLangAutoDetects: every corpus shader must auto-detect to its
// tagged language, so LangAuto pipelines treat the corpus correctly.
func TestCorpusLangAutoDetects(t *testing.T) {
	for _, s := range MustLoad() {
		if got := core.DetectLang(s.Source); got != s.Lang {
			t.Errorf("%s: detected %v, tagged %v", s.Name, got, s.Lang)
		}
	}
}
