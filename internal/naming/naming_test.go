package naming

import (
	"testing"

	"shaderopt/internal/sem"
)

func TestRenameEscapesAndMemoizes(t *testing.T) {
	n := New("_w")
	if got := n.Rename("scale"); got != "scale" {
		t.Errorf("Rename(scale) = %q, want unchanged", got)
	}
	// Keywords, type names, and builtins all escape with the suffix.
	for _, bad := range []string{"float", "return", "mix"} {
		got := n.Rename(bad)
		if got == bad {
			t.Errorf("Rename(%q) kept an unsafe spelling", bad)
		}
		if got != bad+"_w" {
			t.Errorf("Rename(%q) = %q, want %q", bad, got, bad+"_w")
		}
	}
	// Memoized: the same identifier always gets the same answer.
	if a, b := n.Rename("float"), n.Rename("float"); a != b {
		t.Errorf("Rename not memoized: %q vs %q", a, b)
	}
	// The escaped spelling is reserved, so a source identifier that
	// already spells it moves aside instead of aliasing.
	if got := n.Rename("float_w"); got != "float_w_w" {
		t.Errorf("Rename(float_w) = %q, want float_w_w", got)
	}
}

func TestFreshBypassesRenameMap(t *testing.T) {
	n := New("_h")
	n.Reserve("main")
	if got := n.Fresh("main"); got != "main_h" {
		t.Errorf("Fresh(main) = %q, want main_h", got)
	}
	// Fresh must not poison the rename map: a later source identifier
	// "main" still renames independently (and moves further aside,
	// since Fresh reserved main_h).
	if got := n.Rename("main"); got != "main_h_h" {
		t.Errorf("Rename(main) after Fresh = %q, want main_h_h", got)
	}
	if _, ok := n.Renamed("fragColor"); ok {
		t.Error("Renamed reported an identifier that was never renamed")
	}
}

func TestLocalDoesNotReserve(t *testing.T) {
	n := New("_w")
	n.Reserve("acc")
	if got := n.Local("acc"); got != "acc_w" {
		t.Errorf("Local(acc) = %q, want acc_w", got)
	}
	// Locals in sibling scopes share spellings: Local must not reserve.
	if got := n.Local("acc"); got != "acc_w" {
		t.Errorf("second Local(acc) = %q, want acc_w again", got)
	}
}

func TestScopesShadowByOriginalName(t *testing.T) {
	var s Scopes
	s.Push()
	s.Bind("color", "color", sem.Vec3)
	s.Push()
	s.Bind("color", "color_w", sem.Float)

	if b, ok := s.Lookup("color"); !ok || b.Name != "color_w" || !b.T.Equal(sem.Float) {
		t.Errorf("inner Lookup(color) = %+v, %v; want the shadowing binding", b, ok)
	}
	s.Pop()
	if b, ok := s.Lookup("color"); !ok || b.Name != "color" || !b.T.Equal(sem.Vec3) {
		t.Errorf("outer Lookup(color) = %+v, %v; want the module binding", b, ok)
	}
	if _, ok := s.Lookup("missing"); ok {
		t.Error("Lookup(missing) succeeded")
	}
}
