// Package naming owns the identifier-sanitizing state shared by the
// non-GLSL frontends. WGSL and HLSL both translate into the checked
// GLSL AST, so every identifier they emit must steer clear of GLSL
// keywords, type names, builtin functions, and every other module-scope
// spelling; each frontend tags its escapes with its own suffix ("_w",
// "_h") so provenance stays visible in generated sources.
//
// The package also provides the canonical value-scope representation:
// a Scopes stack keyed by the ORIGINAL source name, with the sanitized
// GLSL spelling riding along in each Binding. Keying by original name
// makes shadowing resolve by source semantics, and two identifiers
// whose sanitized spellings would collide can never alias each other.
package naming

import (
	"fmt"

	"shaderopt/internal/glsl"
	"shaderopt/internal/sem"
)

// SemToSpec renders a sem type as a GLSL syntactic type reference for
// the canonical AST. It is the single sem→GLSL type spelling used by
// every translating frontend (WGSL, HLSL); living here rather than in
// each frontend keeps the generated texts' type vocabulary identical by
// construction.
func SemToSpec(t sem.Type) (glsl.TypeSpec, error) {
	if t.IsArray() {
		elem, err := SemToSpec(t.Elem())
		if err != nil {
			return glsl.TypeSpec{}, err
		}
		elem.ArrayLen = t.ArrayLen
		return elem, nil
	}
	name := ""
	switch {
	case t.IsSampler():
		name = "sampler" + t.Dim
	case t.IsMatrix():
		name = fmt.Sprintf("mat%d", t.Mat)
	case t.IsVector():
		switch t.Kind {
		case sem.KindFloat:
			name = fmt.Sprintf("vec%d", t.Vec)
		case sem.KindInt:
			name = fmt.Sprintf("ivec%d", t.Vec)
		case sem.KindBool:
			name = fmt.Sprintf("bvec%d", t.Vec)
		}
	case t.IsScalar():
		switch t.Kind {
		case sem.KindFloat:
			name = "float"
		case sem.KindInt:
			name = "int"
		case sem.KindBool:
			name = "bool"
		}
	}
	if name == "" {
		return glsl.TypeSpec{}, fmt.Errorf("type %s has no GLSL equivalent", t)
	}
	return glsl.Scalar(name), nil
}

// Namer hands out GLSL-safe spellings for one module translation. The
// zero value is not usable; construct with New.
type Namer struct {
	suffix  string
	renames map[string]string
	taken   map[string]bool
}

// New returns a Namer that escapes unsafe spellings by appending suffix
// until they are free.
func New(suffix string) *Namer {
	return &Namer{
		suffix:  suffix,
		renames: map[string]string{},
		taken:   map[string]bool{},
	}
}

// unsafe reports whether a spelling cannot be emitted as-is: it would
// collide with a GLSL keyword, type name, builtin function, or a name
// already used at module scope.
func (n *Namer) unsafe(name string) bool {
	return glsl.IsKeyword(name) || glsl.IsTypeName(name) || sem.IsBuiltin(name) || n.taken[name]
}

// Reserve marks a spelling as used at module scope without renaming
// anything (e.g. the generated "main").
func (n *Namer) Reserve(name string) { n.taken[name] = true }

// Rename maps a source identifier to a GLSL-safe module-scope spelling,
// memoized so every mention of the identifier gets the same answer, and
// reserves the result.
func (n *Namer) Rename(name string) string {
	if nn, ok := n.renames[name]; ok {
		return nn
	}
	nn := name
	for n.unsafe(nn) {
		nn += n.suffix
	}
	n.renames[name] = nn
	n.taken[nn] = true
	return nn
}

// Renamed reports the memoized module-scope rename of a source
// identifier, if Rename has been called for it.
func (n *Namer) Renamed(name string) (string, bool) {
	nn, ok := n.renames[name]
	return nn, ok
}

// Fresh reserves a GLSL-safe module-scope name for a synthesized
// variable. It bypasses the rename map: a user identifier that happens
// to share the base name keeps its own slot and the synthesized
// variable moves aside.
func (n *Namer) Fresh(base string) string {
	nn := base
	for n.unsafe(nn) {
		nn += n.suffix
	}
	n.taken[nn] = true
	return nn
}

// Local keeps a function-local identifier GLSL-safe and clear of every
// module-level spelling, without reserving it (locals in sibling scopes
// may share a spelling; GLSL shadowing handles nesting). Steering clear
// of taken names matters for correctness, not just hygiene: the entry
// return desugars into an assignment to the synthesized out variable by
// name, so a local that kept a colliding spelling (e.g. one literally
// named fragColor) would capture that store and the shader would
// silently output nothing.
func (n *Namer) Local(name string) string {
	for n.unsafe(name) {
		name += n.suffix
	}
	return name
}

// Binding pairs an identifier's sanitized GLSL spelling with its type.
type Binding struct {
	Name string // GLSL spelling
	T    sem.Type
}

// Scopes is a lexical value-scope stack keyed by the ORIGINAL source
// name. The zero value is an empty stack ready for Push.
type Scopes struct {
	stack []map[string]Binding
}

// Push opens a scope.
func (s *Scopes) Push() { s.stack = append(s.stack, map[string]Binding{}) }

// Pop closes the innermost scope.
func (s *Scopes) Pop() { s.stack = s.stack[:len(s.stack)-1] }

// Bind records a value binding in the innermost scope.
func (s *Scopes) Bind(orig, glslName string, t sem.Type) {
	s.stack[len(s.stack)-1][orig] = Binding{Name: glslName, T: t}
}

// Lookup resolves an original source name innermost-first.
func (s *Scopes) Lookup(orig string) (Binding, bool) {
	for i := len(s.stack) - 1; i >= 0; i-- {
		if b, ok := s.stack[i][orig]; ok {
			return b, true
		}
	}
	return Binding{}, false
}
