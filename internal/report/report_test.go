package report

import (
	"strings"
	"testing"

	"shaderopt/internal/analysis"
	"shaderopt/internal/core"
	"shaderopt/internal/passes"
	"shaderopt/internal/search"
)

func TestTable1Rendering(t *testing.T) {
	rows := []search.MeanSpeedups{
		{Vendor: "Intel", BestStatic: 2.5, StaticSet: core.FlagCoalesce | core.FlagUnroll},
		{Vendor: "ARM", BestStatic: 4.0, StaticSet: core.FlagGVN},
	}
	out := Table1(rows)
	if !strings.Contains(out, "Intel") || !strings.Contains(out, "ARM") {
		t.Error("vendors missing")
	}
	if !strings.Contains(out, "+2.50%") {
		t.Error("mean missing")
	}
	// Intel row must mark Coalesce and Unroll.
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "Intel") {
			if strings.Count(line, "X") != 2 {
				t.Errorf("Intel row marks: %q", line)
			}
		}
	}
}

func TestFig5Fig6(t *testing.T) {
	rows := []search.MeanSpeedups{{Vendor: "AMD", Best: 4, Default: -0.5, BestStatic: 3}}
	out := Fig5(rows)
	if !strings.Contains(out, "AMD") || !strings.Contains(out, "+4.00%") || !strings.Contains(out, "-0.50%") {
		t.Errorf("fig5:\n%s", out)
	}
	out6 := Fig6([]string{"AMD"}, map[string]float64{"AMD": 8.5})
	if !strings.Contains(out6, "+8.50%") {
		t.Errorf("fig6:\n%s", out6)
	}
}

func TestFig7(t *testing.T) {
	per := []search.PerShader{
		{Name: "a", Best: 10, Default: 5, BestStatic: 7},
		{Name: "b", Best: 0, Default: -1, BestStatic: 0},
	}
	out := Fig7("ARM", per, 1)
	if !strings.Contains(out, "a") || !strings.Contains(out, "1 more shaders") {
		t.Errorf("fig7:\n%s", out)
	}
	if !strings.Contains(out, "Summary") {
		t.Error("summary missing")
	}
}

func TestFig8(t *testing.T) {
	apps := []search.FlagApplicability{
		{Flag: core.FlagADCE, Total: 10, ChangesCode: 0, InOptimalSet: map[string]int{"AMD": 3}},
		{Flag: core.FlagUnroll, Total: 10, ChangesCode: 4, InOptimalSet: map[string]int{"AMD": 4}},
	}
	out := Fig8(apps, []string{"AMD"})
	if !strings.Contains(out, "adce") || !strings.Contains(out, "unroll") {
		t.Errorf("fig8:\n%s", out)
	}
}

func TestFig9(t *testing.T) {
	iso := map[core.Flags][]float64{}
	for _, f := range passes.FlagList() {
		iso[f] = []float64{-5, 0, 1, 2, 25}
	}
	out := Fig9("Qualcomm", iso)
	if !strings.Contains(out, "fp-reassociate") || !strings.Contains(out, "+25.00%") {
		t.Errorf("fig9:\n%s", out)
	}
}

func TestHistogramRendering(t *testing.T) {
	out := Histogram("title", []float64{-10, 0, 0, 5, 5, 5}, -15, 15, 6)
	if !strings.Contains(out, "title") || !strings.Contains(out, "###") {
		t.Errorf("histogram:\n%s", out)
	}
}

func TestFig4Renderers(t *testing.T) {
	locs := []analysis.LoC{{Name: "big", Lines: 300}, {Name: "small", Lines: 5}}
	out := Fig4a(locs)
	if !strings.Contains(out, "max 300 lines") {
		t.Errorf("fig4a:\n%s", out)
	}
	cyc := []analysis.StaticCycles{{Name: "x", Arith: 10, LoadStore: 5, Texture: 3}}
	out = Fig4b(cyc)
	if !strings.Contains(out, "A 10.0") {
		t.Errorf("fig4b:\n%s", out)
	}
	uni := []analysis.Uniqueness{{Name: "x", Unique: 48, MaxSets: 256}, {Name: "y", Unique: 2, MaxSets: 256}}
	out = Fig4c(uni)
	if !strings.Contains(out, "Max 48 variants") {
		t.Errorf("fig4c:\n%s", out)
	}
}

func TestFig3Rendering(t *testing.T) {
	out := Fig3(
		map[string]float64{"Intel": 7, "ARM": 45},
		[]string{"Intel", "ARM"},
		"ARM",
		[]float64{-30, -5, 0, 0, 2, 10},
	)
	if !strings.Contains(out, "+45.00%") || !strings.Contains(out, "ARM") {
		t.Errorf("fig3:\n%s", out)
	}
}
