package report_test

// Golden-file tests for the study reports: every table and figure
// renderer is run over a small deterministic sweep (simulated platforms,
// seeded noise — identical output on every machine) and compared against
// testdata/*.golden byte-for-byte, so formatting changes show up as
// reviewable diffs.
//
// Regenerate after an intentional change with:
//
//	go test ./internal/report -run TestGolden -update
import (
	"flag"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"shaderopt/internal/analysis"
	"shaderopt/internal/core"
	"shaderopt/internal/corpus"
	"shaderopt/internal/gpu"
	"shaderopt/internal/harness"
	"shaderopt/internal/report"
	"shaderopt/internal/search"
)

var update = flag.Bool("update", false, "rewrite golden files with current output")

// goldenNames is the fixed study subset behind every golden: small enough
// to sweep in test time, diverse enough (loop, übershader, trivial, WGSL)
// that each report exercises its interesting rows.
var goldenNames = []string{"blur/v9", "projtex/compose", "ui/flat", "simple/luma", "wgsl/ripple"}

func goldenShaders(t *testing.T) []*corpus.Shader {
	t.Helper()
	all, err := corpus.Load()
	if err != nil {
		t.Fatal(err)
	}
	var out []*corpus.Shader
	for _, n := range goldenNames {
		s := corpus.ByName(all, n)
		if s == nil {
			t.Fatalf("missing corpus shader %s", n)
		}
		out = append(out, s)
	}
	return out
}

var (
	goldenOnce  sync.Once
	goldenSweep *search.Sweep
	goldenErr   error
)

func sweepForGolden(t *testing.T) *search.Sweep {
	t.Helper()
	goldenOnce.Do(func() {
		var shaders []*corpus.Shader
		all, err := corpus.Load()
		if err != nil {
			goldenErr = err
			return
		}
		for _, n := range goldenNames {
			shaders = append(shaders, corpus.ByName(all, n))
		}
		goldenSweep, goldenErr = search.Run(shaders, gpu.Platforms(), search.Options{Cfg: harness.FastConfig()})
	})
	if goldenErr != nil {
		t.Fatal(goldenErr)
	}
	return goldenSweep
}

// transferNames is the fixture behind the comparative-study goldens: the
// full GLSL tonemap family with its pinned HLSL twin family (so the
// exact twin cells appear in the language matrix) plus one WGSL shader
// for a best-effort third group.
var transferNames = []string{
	"tonemap/reinhard", "tonemap/reinhard_ext", "tonemap/reinhard_gamma",
	"tonemap/filmic", "tonemap/filmic_gamma", "tonemap/filmic_full",
	"hlsl/reinhard", "hlsl/reinhard_ext", "hlsl/reinhard_gamma",
	"hlsl/filmic", "hlsl/filmic_gamma", "hlsl/filmic_full",
	"wgsl/ripple",
}

var (
	transferOnce   sync.Once
	transferResult *search.Sweep
	transferErr    error
)

func sweepForTransfer(t *testing.T) *search.Sweep {
	t.Helper()
	transferOnce.Do(func() {
		var shaders []*corpus.Shader
		all, err := corpus.Load()
		if err != nil {
			transferErr = err
			return
		}
		for _, n := range transferNames {
			shaders = append(shaders, corpus.ByName(all, n))
		}
		transferResult, transferErr = search.Run(shaders, gpu.Platforms(), search.Options{Cfg: harness.FastConfig()})
	})
	if transferErr != nil {
		t.Fatal(transferErr)
	}
	return transferResult
}

// checkGolden compares got against testdata/<name>.golden, rewriting the
// file under -update.
func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name+".golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden %s (run with -update to create): %v", path, err)
	}
	if got != string(want) {
		t.Errorf("%s differs from golden; rerun with -update after reviewing.\n--- got ---\n%s\n--- want ---\n%s", name, got, want)
	}
}

func TestGoldenTable1(t *testing.T) {
	sweep := sweepForGolden(t)
	var rows []search.MeanSpeedups
	for _, pl := range sweep.Platforms {
		rows = append(rows, sweep.MeanSpeedups(pl.Vendor))
	}
	checkGolden(t, "table1", report.Table1(rows))
}

func TestGoldenFig5(t *testing.T) {
	sweep := sweepForGolden(t)
	var rows []search.MeanSpeedups
	for _, pl := range sweep.Platforms {
		rows = append(rows, sweep.MeanSpeedups(pl.Vendor))
	}
	checkGolden(t, "fig5", report.Fig5(rows))
}

func TestGoldenFig6(t *testing.T) {
	sweep := sweepForGolden(t)
	means := map[string]float64{}
	var vendors []string
	for _, pl := range sweep.Platforms {
		vendors = append(vendors, pl.Vendor)
		means[pl.Vendor] = sweep.Top30Mean(pl.Vendor)
	}
	checkGolden(t, "fig6", report.Fig6(vendors, means))
}

func TestGoldenFig7(t *testing.T) {
	sweep := sweepForGolden(t)
	checkGolden(t, "fig7_arm", report.Fig7("ARM", sweep.PerShaderSpeedups("ARM"), 15))
}

func TestGoldenFig8(t *testing.T) {
	sweep := sweepForGolden(t)
	var vendors []string
	for _, pl := range sweep.Platforms {
		vendors = append(vendors, pl.Vendor)
	}
	checkGolden(t, "fig8", report.Fig8(sweep.FlagApplicabilities(), vendors))
}

func TestGoldenFig9(t *testing.T) {
	sweep := sweepForGolden(t)
	checkGolden(t, "fig9_arm", report.Fig9("ARM", sweep.FlagIsolation("ARM")))
}

func TestGoldenFig3(t *testing.T) {
	sweep := sweepForGolden(t)
	me := corpus.MotivatingExample()
	r := sweep.ResultFor(me.Name)
	if r == nil {
		t.Fatalf("motivating example %s not in the golden subset", me.Name)
	}
	gains := map[string]float64{}
	var vendors []string
	for _, pl := range sweep.Platforms {
		vendors = append(vendors, pl.Vendor)
		gains[pl.Vendor] = r.BestSpeedup(pl.Vendor)
	}
	dist := sweep.SpeedupDistribution("ARM", core.AllFlags)
	checkGolden(t, "fig3", report.Fig3(gains, vendors, "ARM", dist))
}

func TestGoldenFig4(t *testing.T) {
	shaders := goldenShaders(t)
	checkGolden(t, "fig4a", report.Fig4a(analysis.LinesOfCode(shaders)))
	cyc, err := analysis.ARMStaticCycles(shaders)
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "fig4b", report.Fig4b(cyc))
	uni, err := analysis.UniqueVariants(shaders)
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "fig4c", report.Fig4c(uni))
}

func TestGoldenHistogram(t *testing.T) {
	sweep := sweepForGolden(t)
	dist := sweep.SpeedupDistribution("ARM", core.DefaultFlags)
	checkGolden(t, "histogram", report.Histogram("Default-flags speed-up distribution (ARM)", dist, -35, 15, 20))
}

func TestGoldenTransferLang(t *testing.T) {
	sweep := sweepForTransfer(t)
	m := analysis.LangTransferMatrix(sweep)
	got := report.TransferMatrix(m) + "\n" + report.TransferHeadline(m) + "\n"
	checkGolden(t, "transfer_lang", got)
}

func TestGoldenTransferBackend(t *testing.T) {
	sweep := sweepForTransfer(t)
	m := analysis.BackendTransferMatrix(sweep)
	got := report.TransferMatrix(m) + "\n" + report.TransferHeadline(m) + "\n"
	checkGolden(t, "transfer_backend", got)
}

func TestGoldenTable1Grouped(t *testing.T) {
	sweep := sweepForTransfer(t)
	checkGolden(t, "table1_lang", report.Table1Grouped("language", analysis.LangGroupMeans(sweep)))
	checkGolden(t, "table1_backend", report.Table1Grouped("backend", analysis.BackendGroupMeans(sweep)))
}

func TestGoldenFig5Grouped(t *testing.T) {
	sweep := sweepForTransfer(t)
	checkGolden(t, "fig5_lang", report.Fig5Grouped("language", analysis.LangGroupMeans(sweep)))
	checkGolden(t, "fig5_backend", report.Fig5Grouped("backend", analysis.BackendGroupMeans(sweep)))
}

// TestGoldenFilesHaveNoStrays keeps testdata in lockstep with the tests:
// every .golden file must belong to a renderer above.
func TestGoldenFilesHaveNoStrays(t *testing.T) {
	known := map[string]bool{
		"table1": true, "fig3": true, "fig4a": true, "fig4b": true, "fig4c": true,
		"fig5": true, "fig6": true, "fig7_arm": true, "fig8": true, "fig9_arm": true,
		"histogram":     true,
		"transfer_lang": true, "transfer_backend": true,
		"table1_lang": true, "table1_backend": true,
		"fig5_lang": true, "fig5_backend": true,
	}
	entries, err := os.ReadDir("testdata")
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		name := e.Name()
		if filepath.Ext(name) != ".golden" {
			continue
		}
		if !known[name[:len(name)-len(".golden")]] {
			t.Errorf("stray golden file %s", name)
		}
	}
}
