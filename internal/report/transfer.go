package report

// Renderers for the comparative study layer: the cross-language /
// cross-backend transfer matrices and the grouped Table I / Fig. 5
// variants, all over internal/analysis's aggregates.

import (
	"fmt"
	"strings"

	"shaderopt/internal/analysis"
)

// cellBits renders a transfer cell's learned set in Table I column order.
func cellBits(c analysis.TransferCell) string {
	var sb strings.Builder
	for _, h := range flagHeaders {
		if c.Flags.Has(h.flag) {
			sb.WriteByte('1')
		} else {
			sb.WriteByte('0')
		}
	}
	return sb.String()
}

// TransferMatrix renders one transfer matrix: per row, the best static
// set learned on that group against the all-off baseline, its self win,
// and the retention when the set is applied to each column group.
func TransferMatrix(m *analysis.TransferMatrix) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Transfer matrix (%s axis). Best static set learned on the row group\n", m.Axis)
	sb.WriteString("(vs the all-off baseline), applied to the column group; cells show the\n")
	sb.WriteString("fraction of the row's own win retained.\n\n")
	fmt.Fprintf(&sb, "%-10s | %-8s | %-8s", "Learned on", "Best set", "Self win")
	for _, g := range m.Groups {
		fmt.Fprintf(&sb, " | %8s", g)
	}
	sb.WriteString("\n")
	sb.WriteString(strings.Repeat("-", 32+len(m.Groups)*11) + "\n")
	exact := false
	for i, row := range m.Cells {
		// The row legend shows the full-group learned set; exact twin
		// cells re-learn on the pinned twin slice (footnoted below).
		fmt.Fprintf(&sb, "%-10s | %s | %+7.2f%%", m.Groups[i], cellBits(row[i]), row[i].SelfWin)
		for _, c := range row {
			mark := " "
			if c.Exact {
				mark, exact = "*", true
			}
			fmt.Fprintf(&sb, " | %7.1f%%%s", 100*c.Retention, mark)
		}
		sb.WriteString("\n")
	}
	sb.WriteString("\nBest set bits, left to right:")
	for _, h := range flagHeaders {
		sb.WriteString(" " + h.title)
	}
	sb.WriteString("\n")
	if exact {
		sb.WriteString("* exact: computed on the pinned GLSL<->HLSL twin pairing (instance-\n")
		sb.WriteString("  matched tonemap/ and hlsl/ subsets, set re-learned on the row's slice).\n")
	}
	return sb.String()
}

// TransferHeadline formats the matrix's headline cell — the best
// off-diagonal retention — as one stable grep-able line (the nightly
// workflow lifts it into the run's step summary). Empty for a
// single-group matrix.
func TransferHeadline(m *analysis.TransferMatrix) string {
	c, ok := m.BestCross()
	if !ok {
		return ""
	}
	return fmt.Sprintf("Headline: best cross-%s retention %s->%s %.1f%% (set %s, self win %+.2f%%)",
		m.Axis, c.From, c.To, 100*c.Retention, cellBits(c), c.SelfWin)
}

// Table1Grouped renders Table I re-learned per comparison group: one
// section per group, same row format as the ungrouped table.
func Table1Grouped(axis string, groups []analysis.GroupMeans) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Table I by %s. Best static flags per platform, re-learned per group\n", axis)
	for _, g := range groups {
		fmt.Fprintf(&sb, "\n[%s] %d shaders\n", g.Group, g.Shaders)
		fmt.Fprintf(&sb, "%-10s", "Platform")
		for _, h := range flagHeaders {
			fmt.Fprintf(&sb, " | %-14s", h.title)
		}
		sb.WriteString(" | Mean speed-up\n")
		sb.WriteString(strings.Repeat("-", 10+len(flagHeaders)*17+16) + "\n")
		for _, r := range g.Rows {
			fmt.Fprintf(&sb, "%-10s", r.Vendor)
			for _, h := range flagHeaders {
				mark := "-"
				if r.StaticSet.Has(h.flag) {
					mark = "X"
				}
				fmt.Fprintf(&sb, " | %-14s", mark)
			}
			fmt.Fprintf(&sb, " | %+.2f%%\n", r.BestStatic)
		}
	}
	return sb.String()
}

// Fig5Grouped renders the Fig. 5 aggregates per comparison group: one
// section per group, same row format as the ungrouped figure.
func Fig5Grouped(axis string, groups []analysis.GroupMeans) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Figure 5 by %s. Average percentage speed-ups per group\n", axis)
	for _, g := range groups {
		fmt.Fprintf(&sb, "\n[%s] %d shaders\n", g.Group, g.Shaders)
		fmt.Fprintf(&sb, "%-10s | %-22s | %-22s | %-22s\n", "Platform", "Best per shader", "Default LunarGlass", "Best static flags")
		sb.WriteString(strings.Repeat("-", 85) + "\n")
		for _, r := range g.Rows {
			fmt.Fprintf(&sb, "%-10s | %+7.2f%% %-12s | %+7.2f%% %-12s | %+7.2f%% %-12s\n",
				r.Vendor,
				r.Best, bar(r.Best, 1),
				r.Default, bar(r.Default, 1),
				r.BestStatic, bar(r.BestStatic, 1))
		}
	}
	return sb.String()
}
