// Package report renders the paper's tables and figures as text: Table I
// (best static flags), the Fig. 3 motivating-example table and histogram,
// the Fig. 4 corpus characterizations, the Fig. 5-9 evaluation charts,
// and the comparative study layer — Table I / Fig. 5 re-learned per
// source language or ingestion format (Table1Grouped, Fig5Grouped) and
// the cross-language / cross-backend transfer matrices (TransferMatrix,
// with TransferHeadline's grep-able summary line for the nightly).
package report

import (
	"fmt"
	"sort"
	"strings"

	"shaderopt/internal/analysis"
	"shaderopt/internal/core"
	"shaderopt/internal/passes"
	"shaderopt/internal/search"
	"shaderopt/internal/stats"
)

// flagHeaders are Table I's column titles, in the paper's order.
var flagHeaders = []struct {
	flag  core.Flags
	title string
}{
	{passes.FlagADCE, "ADCE"},
	{passes.FlagCoalesce, "Coalesce"},
	{passes.FlagGVN, "GVN"},
	{passes.FlagReassociate, "Reassociate"},
	{passes.FlagUnroll, "Unroll"},
	{passes.FlagHoist, "Hoist"},
	{passes.FlagFPReassociate, "FP Reassociate"},
	{passes.FlagDivToMul, "Div to Mul"},
}

// Table1 renders the best-static-flags table.
func Table1(rows []search.MeanSpeedups) string {
	var sb strings.Builder
	sb.WriteString("Table I. Best static flags per platform (flags maximising mean speed-up)\n\n")
	fmt.Fprintf(&sb, "%-10s", "Platform")
	for _, h := range flagHeaders {
		fmt.Fprintf(&sb, " | %-14s", h.title)
	}
	sb.WriteString(" | Mean speed-up\n")
	sb.WriteString(strings.Repeat("-", 10+len(flagHeaders)*17+16) + "\n")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-10s", r.Vendor)
		for _, h := range flagHeaders {
			mark := "-"
			if r.StaticSet.Has(h.flag) {
				mark = "X"
			}
			fmt.Fprintf(&sb, " | %-14s", mark)
		}
		fmt.Fprintf(&sb, " | %+.2f%%\n", r.BestStatic)
	}
	return sb.String()
}

// Fig5 renders the overall mean speedups chart.
func Fig5(rows []search.MeanSpeedups) string {
	var sb strings.Builder
	sb.WriteString("Figure 5. Average percentage speed-ups across all shaders\n\n")
	fmt.Fprintf(&sb, "%-10s | %-22s | %-22s | %-22s\n", "Platform", "Best per shader", "Default LunarGlass", "Best static flags")
	sb.WriteString(strings.Repeat("-", 85) + "\n")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-10s | %+7.2f%% %-12s | %+7.2f%% %-12s | %+7.2f%% %-12s\n",
			r.Vendor,
			r.Best, bar(r.Best, 1),
			r.Default, bar(r.Default, 1),
			r.BestStatic, bar(r.BestStatic, 1))
	}
	return sb.String()
}

// Fig6 renders the top-30 most-improved shaders means.
func Fig6(vendors []string, means map[string]float64) string {
	var sb strings.Builder
	sb.WriteString("Figure 6. Average speed-up of the 30 most-improved shaders per platform\n\n")
	for _, v := range vendors {
		fmt.Fprintf(&sb, "%-10s | %+7.2f%% %s\n", v, means[v], bar(means[v], 0.5))
	}
	return sb.String()
}

// Fig7 renders per-shader speedup curves (best / default / best static) as
// a compact table of ranked shaders.
func Fig7(vendor string, per []search.PerShader, maxRows int) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Figure 7 (%s). Per-shader speed-ups, ranked by best variant\n\n", vendor)
	fmt.Fprintf(&sb, "%-24s | %9s | %9s | %9s\n", "Shader", "Best", "Default", "Static")
	sb.WriteString(strings.Repeat("-", 62) + "\n")
	rows := per
	if maxRows > 0 && len(rows) > maxRows {
		rows = rows[:maxRows]
	}
	for _, p := range rows {
		fmt.Fprintf(&sb, "%-24s | %+8.2f%% | %+8.2f%% | %+8.2f%%\n", p.Name, p.Best, p.Default, p.BestStatic)
	}
	if maxRows > 0 && len(per) > maxRows {
		fmt.Fprintf(&sb, "... (%d more shaders)\n", len(per)-maxRows)
	}
	var bests, defaults, statics []float64
	for _, p := range per {
		bests = append(bests, p.Best)
		defaults = append(defaults, p.Default)
		statics = append(statics, p.BestStatic)
	}
	sb.WriteString("\nSummary (min / median / max):\n")
	fmt.Fprintf(&sb, "  best    %+7.2f%% / %+7.2f%% / %+7.2f%%\n", stats.Min(bests), stats.Median(bests), stats.Max(bests))
	fmt.Fprintf(&sb, "  default %+7.2f%% / %+7.2f%% / %+7.2f%%\n", stats.Min(defaults), stats.Median(defaults), stats.Max(defaults))
	fmt.Fprintf(&sb, "  static  %+7.2f%% / %+7.2f%% / %+7.2f%%\n", stats.Min(statics), stats.Median(statics), stats.Max(statics))
	return sb.String()
}

// Fig8 renders flag applicability (total / changes-code / in-optimal-set).
func Fig8(apps []search.FlagApplicability, vendors []string) string {
	var sb strings.Builder
	sb.WriteString("Figure 8. Per-flag applicability: total shaders (all), output-changing (chg),\n")
	sb.WriteString("and in the optimal 10% of variants (opt, per platform)\n\n")
	fmt.Fprintf(&sb, "%-15s | %5s | %5s", "Flag", "all", "chg")
	for _, v := range vendors {
		fmt.Fprintf(&sb, " | opt %-9s", v)
	}
	sb.WriteString("\n" + strings.Repeat("-", 31+len(vendors)*16) + "\n")
	for _, a := range apps {
		fmt.Fprintf(&sb, "%-15s | %5d | %5d", passes.FlagName(a.Flag), a.Total, a.ChangesCode)
		for _, v := range vendors {
			fmt.Fprintf(&sb, " | %-13d", a.InOptimalSet[v])
		}
		sb.WriteString("\n")
	}
	return sb.String()
}

// Fig9 renders the per-flag isolated-impact violins for one platform.
func Fig9(vendor string, iso map[core.Flags][]float64) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Figure 9 (%s). Per-flag speed-up vs all-off baseline (violin summaries)\n\n", vendor)
	fmt.Fprintf(&sb, "%-15s | %8s %8s %8s %8s %8s | %8s\n", "Flag", "min", "p25", "med", "p75", "max", "mean")
	sb.WriteString(strings.Repeat("-", 78) + "\n")
	for _, f := range passes.FlagList() {
		sm := stats.Summarize(iso[f])
		fmt.Fprintf(&sb, "%-15s | %+7.2f%% %+7.2f%% %+7.2f%% %+7.2f%% %+7.2f%% | %+7.2f%%\n",
			passes.FlagName(f), sm.Min, sm.P25, sm.Median, sm.P75, sm.Max, sm.Mean)
	}
	return sb.String()
}

// Histogram renders an ASCII histogram of values.
func Histogram(title string, values []float64, lo, hi float64, bins int) string {
	h := stats.NewHistogram(values, lo, hi, bins)
	var sb strings.Builder
	sb.WriteString(title + "\n\n")
	maxC := h.MaxCount()
	if maxC == 0 {
		maxC = 1
	}
	for i, c := range h.Counts {
		width := c * 40 / maxC
		fmt.Fprintf(&sb, "%+8.1f%% | %-40s %d\n", h.BinCenter(i), strings.Repeat("#", width), c)
	}
	return sb.String()
}

// Fig4a renders the lines-of-code distribution.
func Fig4a(locs []analysis.LoC) string {
	var sb strings.Builder
	sb.WriteString("Figure 4a. Lines of code per shader (after preprocessing), descending\n\n")
	values := make([]float64, len(locs))
	for i, l := range locs {
		values[i] = float64(l.Lines)
	}
	writeDescendingCurve(&sb, values, 50)
	under50 := 0
	for _, l := range locs {
		if l.Lines < 50 {
			under50++
		}
	}
	fmt.Fprintf(&sb, "\nShaders: %d; max %d lines; %d (%.0f%%) under 50 lines\n",
		len(locs), locs[0].Lines, under50, 100*float64(under50)/float64(len(locs)))
	return sb.String()
}

// Fig4b renders the ARM static cycle distribution.
func Fig4b(cycles []analysis.StaticCycles) string {
	var sb strings.Builder
	sb.WriteString("Figure 4b. ARM static analyser cycles (arith + load/store + texture),\nlongest execution path, descending\n\n")
	values := make([]float64, len(cycles))
	for i, c := range cycles {
		values[i] = c.Total()
	}
	writeDescendingCurve(&sb, values, 50)
	fmt.Fprintf(&sb, "\nTop shader: %s (A %.1f / LS %.1f / T %.1f)\n",
		cycles[0].Name, cycles[0].Arith, cycles[0].LoadStore, cycles[0].Texture)
	return sb.String()
}

// Fig4c renders the unique-variant counts.
func Fig4c(uniq []analysis.Uniqueness) string {
	var sb strings.Builder
	sb.WriteString("Figure 4c. Unique shader variants out of 256 flag combinations, descending\n\n")
	values := make([]float64, len(uniq))
	for i, u := range uniq {
		values[i] = float64(u.Unique)
	}
	writeDescendingCurve(&sb, values, 50)
	under10 := 0
	for _, u := range uniq {
		if u.Unique < 10 {
			under10++
		}
	}
	fmt.Fprintf(&sb, "\nMax %d variants (%s); %d of %d shaders below 10 variants\n",
		uniq[0].Unique, uniq[0].Name, under10, len(uniq))
	return sb.String()
}

// Fig3 renders the motivating example per-platform gains plus the
// all-shaders distribution histogram for one platform.
func Fig3(gains map[string]float64, vendors []string, histVendor string, dist []float64) string {
	var sb strings.Builder
	sb.WriteString("Figure 3. Motivating example (Listing 1 blur): best-variant speed-up per platform\n\n")
	for _, v := range vendors {
		fmt.Fprintf(&sb, "  %-10s %+7.2f%% %s\n", v, gains[v], bar(gains[v], 0.5))
	}
	sb.WriteString("\n")
	sb.WriteString(Histogram(
		fmt.Sprintf("Speed-up distribution applying the same optimization to all shaders (%s)", histVendor),
		dist, -35, 15, 20))
	return sb.String()
}

// writeDescendingCurve renders sorted values as a fixed-width bar curve.
func writeDescendingCurve(sb *strings.Builder, values []float64, width int) {
	sorted := append([]float64(nil), values...)
	sort.Sort(sort.Reverse(sort.Float64Slice(sorted)))
	maxV := sorted[0]
	if maxV <= 0 {
		maxV = 1
	}
	// Show at most ~20 representative rows (deciles of the rank axis).
	step := len(sorted) / 20
	if step < 1 {
		step = 1
	}
	for i := 0; i < len(sorted); i += step {
		w := int(sorted[i] / maxV * float64(width))
		fmt.Fprintf(sb, "#%-4d %7.1f | %s\n", i+1, sorted[i], strings.Repeat("#", w))
	}
}

func bar(v float64, scale float64) string {
	n := int(v * scale)
	if n < 0 {
		n = -n
		if n > 30 {
			n = 30
		}
		return strings.Repeat("-", n)
	}
	if n > 30 {
		n = 30
	}
	return strings.Repeat("+", n)
}
