package glslgen

import (
	"math"
	"strings"
	"testing"

	"shaderopt/internal/exec"
	"shaderopt/internal/glsl"
	"shaderopt/internal/ir"
	"shaderopt/internal/lower"
	"shaderopt/internal/passes"
)

// roundTrip lowers src, generates GLSL, re-lowers the generated source, and
// checks both programs compute identical outputs under env.
func roundTrip(t *testing.T, src string, env *exec.Env) string {
	t.Helper()
	sh, err := glsl.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	prog, err := lower.Lower(sh, "orig")
	if err != nil {
		t.Fatalf("lower: %v", err)
	}
	out := Generate(prog, Desktop)

	sh2, err := glsl.Parse(out)
	if err != nil {
		t.Fatalf("generated source does not parse: %v\n%s", err, out)
	}
	prog2, err := lower.Lower(sh2, "regen")
	if err != nil {
		t.Fatalf("generated source does not lower: %v\n%s", err, out)
	}

	if env == nil {
		env = &exec.Env{}
	}
	r1, err := exec.Run(prog, env)
	if err != nil {
		t.Fatalf("run original: %v", err)
	}
	r2, err := exec.Run(prog2, env)
	if err != nil {
		t.Fatalf("run regenerated: %v\n%s", err, out)
	}
	if r1.Discarded != r2.Discarded {
		t.Fatalf("discard mismatch: %v vs %v", r1.Discarded, r2.Discarded)
	}
	for name, v1 := range r1.Outputs {
		v2 := r2.Outputs[name]
		if v2 == nil {
			t.Fatalf("missing output %q in regenerated shader", name)
		}
		if v1.Len() != v2.Len() {
			t.Fatalf("output %q widths differ", name)
		}
		for i := 0; i < v1.Len(); i++ {
			a, b := v1.Float(i), v2.Float(i)
			if a != b && !(math.IsNaN(a) && math.IsNaN(b)) {
				t.Fatalf("output %q[%d]: %v vs %v\n--- generated ---\n%s", name, i, a, b, out)
			}
		}
	}
	return out
}

func TestRoundTripSimple(t *testing.T) {
	out := roundTrip(t, `
uniform vec4 tint;
in vec2 uv;
out vec4 color;
void main() { color = tint * vec4(uv, 0.5, 1.0); }
`, &exec.Env{
		Uniforms: map[string]*ir.ConstVal{"tint": ir.FloatConst(1, 2, 3, 4)},
		Inputs:   map[string]*ir.ConstVal{"uv": ir.FloatConst(0.25, 0.75)},
	})
	for _, want := range []string{"#version 330", "uniform vec4 tint;", "in vec2 uv;", "out vec4 color;"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRoundTripControlFlow(t *testing.T) {
	roundTrip(t, `
uniform float k;
out vec4 c;
void main() {
    float acc = 0.0;
    for (int i = 0; i < 5; i++) {
        if (float(i) > k) { acc += 2.0; } else { acc += 1.0; }
    }
    c = vec4(acc);
}
`, &exec.Env{Uniforms: map[string]*ir.ConstVal{"k": ir.FloatConst(2.5)}})
}

func TestRoundTripWhile(t *testing.T) {
	out := roundTrip(t, `
out vec4 c;
void main() {
    float s = 1.0;
    while (s < 100.0) { s = s * 3.0; }
    c = vec4(s);
}
`, nil)
	if !strings.Contains(out, "while (") {
		t.Errorf("expected while loop in output:\n%s", out)
	}
}

func TestRoundTripTexture(t *testing.T) {
	roundTrip(t, `
uniform sampler2D tex;
in vec2 uv;
out vec4 c;
void main() { c = texture(tex, uv * 2.0) + textureLod(tex, uv, 1.0); }
`, &exec.Env{
		Inputs:   map[string]*ir.ConstVal{"uv": ir.FloatConst(0.3, 0.4)},
		Samplers: map[string]exec.Sampler{"tex": exec.DefaultSampler{}},
	})
}

func TestRoundTripMatrix(t *testing.T) {
	out := roundTrip(t, `
uniform mat3 m;
in vec3 p;
out vec4 c;
void main() {
    vec3 r = m * p;
    mat3 mm = m * m;
    c = vec4(r + mm[1], 1.0);
}
`, &exec.Env{
		Uniforms: map[string]*ir.ConstVal{"m": ir.FloatConst(1, 2, 3, 4, 5, 6, 7, 8, 9)},
		Inputs:   map[string]*ir.ConstVal{"p": ir.FloatConst(1, 0, -1)},
	})
	// Plain lowering preserves matrix algebra (the driver-efficient form).
	if !strings.Contains(out, "* ") || !strings.Contains(out, "mat3") {
		t.Errorf("expected matrix ops preserved:\n%s", out)
	}

	// The offline pipeline's scalarization artefact expands it to tens of
	// lines (§III-C(a)).
	sh2 := glsl.MustParse(out)
	prog2, err := lower.Lower(sh2, "scal")
	if err != nil {
		t.Fatal(err)
	}
	passes.ScalarizeMatrices(prog2)
	scalOut := Generate(prog2, Desktop)
	if lines := strings.Count(scalOut, "\n"); lines < 40 {
		t.Errorf("expected scalarized matrix code (tens of lines), got %d lines:\n%s", lines, scalOut)
	}
	if strings.Contains(scalOut, "m * ") {
		t.Errorf("matrix multiply survived scalarization:\n%s", scalOut)
	}
}

func TestRoundTripInsertChain(t *testing.T) {
	out := roundTrip(t, `
out vec4 c;
void main() {
    vec4 v = vec4(0.0);
    v.x = 1.0;
    v.y = 2.0;
    v.zw = vec2(3.0, 4.0);
    c = v;
}
`, nil)
	// Element-insert chains must appear as copy+component-store pairs.
	if !strings.Contains(out, ".x = ") || !strings.Contains(out, ".y = ") {
		t.Errorf("expected element insertion statements:\n%s", out)
	}
}

func TestRoundTripDiscard(t *testing.T) {
	roundTrip(t, `
uniform float k;
out vec4 c;
void main() {
    c = vec4(0.5);
    if (k > 0.5) { discard; }
}
`, &exec.Env{Uniforms: map[string]*ir.ConstVal{"k": ir.FloatConst(0.75)}})
}

func TestRoundTripArrays(t *testing.T) {
	roundTrip(t, `
uniform int pick;
out vec4 c;
void main() {
    const float w[4] = float[](0.1, 0.2, 0.3, 0.4);
    c = vec4(w[pick], w[0], w[3], 1.0);
}
`, &exec.Env{Uniforms: map[string]*ir.ConstVal{"pick": ir.IntConst(2)}})
}

func TestRoundTripBlurShader(t *testing.T) {
	src := `#version 330
out vec4 fragColor;
in vec2 uv;
uniform sampler2D tex;
uniform vec4 ambient;
void main() {
    const vec4 weights[9] = vec4[](vec4(0.01), vec4(0.05), vec4(0.14),
        vec4(0.21), vec4(0.61), vec4(0.21), vec4(0.14), vec4(0.05), vec4(0.01));
    const vec2 offsets[9] = vec2[](vec2(-0.0083), vec2(-0.0062), vec2(-0.0042),
        vec2(-0.0021), vec2(0.0), vec2(0.0021), vec2(0.0042), vec2(0.0062), vec2(0.0083));
    float weightTotal = 0.0;
    fragColor = vec4(0.0);
    for (int i = 0; i < 9; i++) {
        weightTotal += weights[i][0];
        fragColor += weights[i] * texture(tex, uv + offsets[i]) * 3.0 * ambient;
    }
    fragColor /= weightTotal;
}
`
	roundTrip(t, src, &exec.Env{
		Uniforms: map[string]*ir.ConstVal{"ambient": ir.FloatConst(0.5, 0.6, 0.7, 1)},
		Inputs:   map[string]*ir.ConstVal{"uv": ir.FloatConst(0.3, 0.7)},
		Samplers: map[string]exec.Sampler{"tex": exec.DefaultSampler{}},
	})
}

func TestGenerateESDialect(t *testing.T) {
	sh := glsl.MustParse(`
uniform sampler2D tex;
in vec2 uv;
out vec4 c;
void main() { c = texture(tex, uv); }
`)
	prog, err := lower.Lower(sh, "es")
	if err != nil {
		t.Fatal(err)
	}
	out := Generate(prog, ES)
	if !strings.HasPrefix(out, "#version 300 es\n") {
		t.Errorf("missing ES version:\n%s", out)
	}
	if !strings.Contains(out, "precision highp float;") {
		t.Errorf("missing precision statement:\n%s", out)
	}
	// ES output must itself parse and lower.
	sh2, err := glsl.Parse(out)
	if err != nil {
		t.Fatalf("ES output does not parse: %v\n%s", err, out)
	}
	if _, err := lower.Lower(sh2, "es2"); err != nil {
		t.Fatalf("ES output does not lower: %v", err)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	sh := glsl.MustParse(`
uniform float k;
out vec4 c;
void main() {
    float a = k * 2.0;
    float b = a + 1.0;
    c = vec4(a, b, a * b, 1.0);
}
`)
	prog, err := lower.Lower(sh, "det")
	if err != nil {
		t.Fatal(err)
	}
	a := Generate(prog, Desktop)
	b := Generate(prog, Desktop)
	if a != b {
		t.Error("Generate is not deterministic for the same program")
	}
	// A fresh lowering must also generate identical source (stable IDs).
	prog2, err := lower.Lower(sh, "det")
	if err != nil {
		t.Fatal(err)
	}
	c := Generate(prog2, Desktop)
	if a != c {
		t.Errorf("Generate differs across lowerings:\n--- a ---\n%s\n--- c ---\n%s", a, c)
	}
}

func TestGenerateNameCollisions(t *testing.T) {
	// A shader variable colliding with a builtin name must be renamed.
	sh := glsl.MustParse(`
out vec4 c;
void main() {
    float mix = 1.0;
    float texture = 2.0;
    c = vec4(mix + texture);
}
`)
	prog, err := lower.Lower(sh, "collide")
	if err != nil {
		t.Fatal(err)
	}
	out := Generate(prog, Desktop)
	sh2, err := glsl.Parse(out)
	if err != nil {
		t.Fatalf("output does not parse: %v\n%s", err, out)
	}
	if _, err := lower.Lower(sh2, "collide2"); err != nil {
		t.Fatalf("output does not lower: %v\n%s", err, out)
	}
}

func TestGenerateNegativeConstants(t *testing.T) {
	roundTrip(t, `
out vec4 c;
void main() {
    float a = -1.5;
    c = vec4(a - -2.0, -a, a * -3.0, 1.0);
}
`, nil)
}
