// Package glslgen renders IR programs back to GLSL source — the
// source-to-source output stage of the offline optimizer. Its style matches
// LunarGlass's verbose backend: one temporary per instruction, scalarized
// matrix math, splatted vector constants, and element-insert chains that
// only the Coalesce pass turns back into constructors. These are exactly
// the §III-C artefacts whose performance effects the paper studies.
package glslgen

import (
	"fmt"
	"strconv"
	"strings"

	"shaderopt/internal/glsl"
	"shaderopt/internal/ir"
	"shaderopt/internal/sem"
)

// Dialect selects the output flavour.
type Dialect int

// Dialects.
const (
	Desktop Dialect = iota // #version 330 core style
	ES                     // #version 300 es style
)

// Generate renders the program as GLSL source.
func Generate(p *ir.Program, d Dialect) string {
	g := &gen{
		p:       p,
		dialect: d,
		names:   map[any]string{},
		used:    map[string]bool{},
		uses:    p.UseCounts(),
	}
	return g.run()
}

type gen struct {
	p       *ir.Program
	dialect Dialect
	sb      strings.Builder
	indent  int

	names map[any]string // *ir.Var / *ir.Global / *ir.Instr -> GLSL name
	used  map[string]bool
	uses  map[*ir.Instr]int
}

func (g *gen) run() string {
	if g.dialect == ES {
		g.line("#version 300 es")
		g.line("precision highp float;")
		g.line("precision highp int;")
	} else {
		g.line("#version 330")
	}

	for _, u := range g.p.Uniforms {
		g.line("uniform %s;", g.declString(g.globalName(u), u.Type))
	}
	for _, in := range g.p.Inputs {
		g.line("in %s;", g.declString(g.globalName(in), in.Type))
	}
	for _, out := range g.p.Outputs {
		g.line("out %s;", g.declString(g.varName(out), out.Type))
	}

	g.line("void main()")
	g.line("{")
	g.indent++

	// Declare non-output, non-counter vars up front (counters are declared
	// by their for statements).
	counters := map[*ir.Var]bool{}
	g.p.Body.WalkBlocks(func(b *ir.Block) {
		for _, it := range b.Items {
			if l, ok := it.(*ir.Loop); ok {
				counters[l.Counter] = true
			}
		}
	})
	for _, v := range g.p.Vars {
		if v.IsOutput || counters[v] {
			continue
		}
		g.line("%s;", g.declString(g.varName(v), v.Type))
	}

	g.block(g.p.Body)

	g.indent--
	g.line("}")
	return g.sb.String()
}

func (g *gen) line(format string, args ...any) {
	for i := 0; i < g.indent; i++ {
		g.sb.WriteString("    ")
	}
	fmt.Fprintf(&g.sb, format, args...)
	g.sb.WriteByte('\n')
}

// --- naming ---

func (g *gen) unique(base string) string {
	if base == "" {
		base = "v"
	}
	name := base
	for i := 2; g.used[name] || glsl.IsKeyword(name) || glsl.IsTypeName(name) || sem.IsBuiltin(name); i++ {
		name = base + "_" + strconv.Itoa(i)
	}
	g.used[name] = true
	return name
}

func (g *gen) globalName(gl *ir.Global) string {
	if n, ok := g.names[gl]; ok {
		return n
	}
	n := g.unique(gl.Name)
	g.names[gl] = n
	return n
}

func (g *gen) varName(v *ir.Var) string {
	if n, ok := g.names[v]; ok {
		return n
	}
	n := g.unique(v.Name)
	g.names[v] = n
	return n
}

func (g *gen) tempName(in *ir.Instr) string {
	if n, ok := g.names[in]; ok {
		return n
	}
	n := g.unique("t" + strconv.Itoa(in.ID))
	g.names[in] = n
	return n
}

// declString renders "type name" with array suffix placement.
func (g *gen) declString(name string, t sem.Type) string {
	if t.IsArray() {
		return fmt.Sprintf("%s %s[%d]", t.Elem(), name, t.ArrayLen)
	}
	return fmt.Sprintf("%s %s", t, name)
}

// --- blocks & statements ---

func (g *gen) block(b *ir.Block) {
	for _, item := range b.Items {
		switch item := item.(type) {
		case *ir.Instr:
			g.instr(item)
		case *ir.If:
			g.line("if (%s)", g.ref(item.Cond))
			g.line("{")
			g.indent++
			g.block(item.Then)
			g.indent--
			if item.Else != nil && len(item.Else.Items) > 0 {
				g.line("}")
				g.line("else")
				g.line("{")
				g.indent++
				g.block(item.Else)
				g.indent--
			}
			g.line("}")
		case *ir.Loop:
			cn := g.varName(item.Counter)
			g.line("for (int %s = %s; %s < %s; %s += %s)", cn, g.ref(item.Start), cn, g.ref(item.End), cn, g.ref(item.Step))
			g.line("{")
			g.indent++
			g.block(item.Body)
			g.indent--
			g.line("}")
		case *ir.While:
			g.while(item)
		}
	}
}

// while emits a general loop. When the condition block is pure it becomes
// "while (expr)"; otherwise a guard-variable form is used.
func (g *gen) while(w *ir.While) {
	pure := true
	w.Cond.WalkInstrs(func(in *ir.Instr) {
		if in.Op == ir.OpStore || in.Op == ir.OpDiscard {
			pure = false
		}
	})
	if pure && !w.Cond.HasControlFlow() {
		g.line("while (%s)", g.inlineExpr(w.CondVal, w.Cond))
		g.line("{")
		g.indent++
		g.block(w.Body)
		g.indent--
		g.line("}")
		return
	}
	guard := g.unique("wcond")
	g.line("bool %s = true;", guard)
	g.line("while (%s)", guard)
	g.line("{")
	g.indent++
	g.block(w.Cond)
	g.line("%s = %s;", guard, g.ref(w.CondVal))
	g.line("if (%s)", guard)
	g.line("{")
	g.indent++
	g.block(w.Body)
	g.indent--
	g.line("}")
	g.indent--
	g.line("}")
}

// instr emits one instruction as statement(s).
func (g *gen) instr(in *ir.Instr) {
	switch in.Op {
	case ir.OpConst, ir.OpUniform, ir.OpInput:
		// Rendered inline at each use.
		return
	case ir.OpStore:
		g.line("%s = %s;", g.varName(in.Var), g.ref(in.Args[0]))
		return
	case ir.OpDiscard:
		g.line("discard;")
		return
	case ir.OpLoad:
		// Loads must be materialized at their program point so later stores
		// to the same variable do not change their value.
		g.line("%s = %s;", g.declString(g.tempName(in), in.Type), g.varName(in.Var))
		return
	case ir.OpInsert, ir.OpInsertDyn:
		// Copy + element assignment — the "individual vector element
		// insertions" the Coalesce pass targets.
		name := g.tempName(in)
		g.line("%s = %s;", g.declString(name, in.Type), g.ref(in.Args[0]))
		if in.Op == ir.OpInsert {
			g.line("%s%s = %s;", name, g.elemSuffix(in.Type, in.Index), g.ref(in.Args[1]))
		} else {
			g.line("%s[%s] = %s;", name, g.ref(in.Args[1]), g.ref(in.Args[2]))
		}
		return
	}
	// Pure value: single temp assignment.
	g.line("%s = %s;", g.declString(g.tempName(in), in.Type), g.exprFor(in))
}

// elemSuffix renders the access suffix for element Index of a type.
func (g *gen) elemSuffix(t sem.Type, idx int) string {
	if t.IsVector() {
		return "." + string("xyzw"[idx])
	}
	return "[" + strconv.Itoa(idx) + "]"
}

// --- expressions ---

// ref renders a use of a value: a literal for constants, the interface name
// for uniform/input reads, or the temp/var name otherwise.
func (g *gen) ref(in *ir.Instr) string {
	switch in.Op {
	case ir.OpConst:
		return g.constExpr(in.Type, in.Const)
	case ir.OpUniform, ir.OpInput:
		return g.globalName(in.Global)
	}
	return g.tempName(in)
}

// exprFor renders the defining expression of a pure instruction, operands
// as refs.
func (g *gen) exprFor(in *ir.Instr) string {
	return g.expr(in, nil)
}

// inlineExpr renders val as a self-contained expression, inlining every
// instruction defined in scope (used for while conditions).
func (g *gen) inlineExpr(val *ir.Instr, scope *ir.Block) string {
	inScope := map[*ir.Instr]bool{}
	scope.WalkInstrs(func(i *ir.Instr) { inScope[i] = true })
	return g.expr(val, inScope)
}

// expr renders in's defining expression. Operands in the inline set are
// expanded recursively; others render as refs. Operand expressions are
// parenthesized when non-atomic.
func (g *gen) expr(in *ir.Instr, inline map[*ir.Instr]bool) string {
	operand := func(a *ir.Instr) string {
		var s string
		if inline != nil && inline[a] {
			if a.Op == ir.OpLoad {
				return g.varName(a.Var)
			}
			s = g.expr(a, inline)
			if !isAtomicExpr(a) {
				return "(" + s + ")"
			}
		} else {
			s = g.ref(a)
		}
		if strings.HasPrefix(s, "-") {
			return "(" + s + ")"
		}
		return s
	}

	switch in.Op {
	case ir.OpConst:
		return g.constExpr(in.Type, in.Const)
	case ir.OpUniform, ir.OpInput:
		return g.globalName(in.Global)
	case ir.OpLoad:
		return g.varName(in.Var)
	case ir.OpBin:
		return fmt.Sprintf("%s %s %s", operand(in.Args[0]), in.BinOp, operand(in.Args[1]))
	case ir.OpUn:
		return in.UnOp + operand(in.Args[0])
	case ir.OpCall:
		args := make([]string, len(in.Args))
		for i, a := range in.Args {
			args[i] = g.argString(a, inline)
		}
		return in.Callee + "(" + strings.Join(args, ", ") + ")"
	case ir.OpConstruct:
		return g.constructExpr(in, inline)
	case ir.OpExtract:
		src := in.Args[0]
		if src.Type.IsVector() {
			return operand(src) + "." + string("xyzw"[in.Index])
		}
		return operand(src) + "[" + strconv.Itoa(in.Index) + "]"
	case ir.OpExtractDyn:
		return operand(in.Args[0]) + "[" + g.argString(in.Args[1], inline) + "]"
	case ir.OpSwizzle:
		var sw strings.Builder
		for _, ix := range in.Indices {
			sw.WriteByte("xyzw"[ix])
		}
		return operand(in.Args[0]) + "." + sw.String()
	case ir.OpSelect:
		return fmt.Sprintf("%s ? %s : %s", operand(in.Args[0]), operand(in.Args[1]), operand(in.Args[2]))
	}
	return "/*unsupported*/"
}

// argString renders a call argument (no parens needed).
func (g *gen) argString(a *ir.Instr, inline map[*ir.Instr]bool) string {
	if inline != nil && inline[a] {
		return g.expr(a, inline)
	}
	return g.ref(a)
}

func isAtomicExpr(in *ir.Instr) bool {
	switch in.Op {
	case ir.OpCall, ir.OpConstruct, ir.OpUniform, ir.OpInput, ir.OpLoad:
		return true
	case ir.OpConst:
		return true
	}
	return false
}

// constructExpr renders OpConstruct. Splats collapse to the single-scalar
// constructor form.
func (g *gen) constructExpr(in *ir.Instr, inline map[*ir.Instr]bool) string {
	t := in.Type
	// Splat detection: all operands are the same instruction.
	if t.IsVector() && len(in.Args) == t.Vec {
		same := true
		for _, a := range in.Args[1:] {
			if a != in.Args[0] {
				same = false
			}
		}
		if same {
			return fmt.Sprintf("%s(%s)", t, g.argString(in.Args[0], inline))
		}
	}
	args := make([]string, len(in.Args))
	for i, a := range in.Args {
		args[i] = g.argString(a, inline)
	}
	joined := strings.Join(args, ", ")
	if t.IsArray() {
		return fmt.Sprintf("%s[](%s)", t.Elem(), joined)
	}
	return fmt.Sprintf("%s(%s)", t, joined)
}

// constExpr renders a constant literal.
func (g *gen) constExpr(t sem.Type, c *ir.ConstVal) string {
	if t.IsScalar() {
		return scalarLit(t.Kind, c, 0)
	}
	if t.IsVector() || t.IsMatrix() {
		if c.IsSplat() && t.IsVector() {
			return fmt.Sprintf("%s(%s)", t, scalarLit(t.Kind, c, 0))
		}
		parts := make([]string, c.Len())
		for i := range parts {
			parts[i] = scalarLit(t.Kind, c, i)
		}
		return fmt.Sprintf("%s(%s)", t, strings.Join(parts, ", "))
	}
	if t.IsArray() {
		elem := t.Elem()
		parts := make([]string, t.ArrayLen)
		for i := range parts {
			parts[i] = g.constExpr(elem, ir.EvalExtract(t, c, i))
		}
		return fmt.Sprintf("%s[](%s)", elem, strings.Join(parts, ", "))
	}
	return "/*const?*/"
}

func scalarLit(k sem.Kind, c *ir.ConstVal, i int) string {
	switch k {
	case sem.KindFloat:
		return glsl.FormatFloat(c.F[i])
	case sem.KindInt:
		return strconv.FormatInt(c.I[i], 10)
	case sem.KindBool:
		return strconv.FormatBool(c.B[i])
	}
	return "0"
}
