package sweepd

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

// syntheticSources builds n distinct GLSL shaders (distinct constants, so
// nothing dedupes across them) — enough serialized sweep work that a
// client disconnect lands mid-stream.
func syntheticSources(n int) []ShaderSource {
	out := make([]ShaderSource, n)
	for i := range out {
		src := fmt.Sprintf(`#version 330 core
uniform float gain;
in vec2 uv;
out vec4 fragColor;
void main() {
    float g = gain * uv.x + %d.5 * uv.y;
    for (int i = 0; i < 4; i++) { g = g * 0.5 + 0.25; }
    fragColor = vec4(g, g * 0.25, g + float(%d), 1.0);
}`, i, i)
		out[i] = ShaderSource{Name: fmt.Sprintf("synthetic/s%02d", i), Source: src, Lang: "glsl"}
	}
	return out
}

// TestSweepdClientDisconnectCancelsSweep pins the abort path: a client
// that drops its /sweep connection mid-stream must cancel the in-flight
// sweep (the request context propagates into SweepContext), not leave
// the daemon measuring for nobody. Run under -race in CI, so a handler
// racing its dead connection would also surface here.
func TestSweepdClientDisconnectCancelsSweep(t *testing.T) {
	server := New(Config{Workers: 1})
	handlerDone := make(chan struct{})
	var doneOnce sync.Once
	inner := server.Handler()
	mux := http.NewServeMux()
	mux.HandleFunc("/sweep", func(w http.ResponseWriter, r *http.Request) {
		// Only the first request (the one we abandon) is tracked; the
		// follow-up sweep reuses this mux.
		defer doneOnce.Do(func() { close(handlerDone) })
		inner.ServeHTTP(w, r)
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()

	// The default protocol (not "fast") keeps each shader's measurement
	// heavy enough that the cancel reliably lands mid-corpus even on a
	// fast machine; the abort path means only a couple of shaders are
	// actually paid for.
	sources := syntheticSources(24)
	body, err := json.Marshal(SweepRequest{Shaders: sources, Protocol: "default"})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/sweep", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()

	// Read exactly one event line, then walk away: canceling the request
	// context closes the connection, which the server surfaces as a
	// canceled r.Context().
	sc := bufio.NewScanner(resp.Body)
	if !sc.Scan() {
		t.Fatalf("stream ended before the first event: %v", sc.Err())
	}
	var first StreamLine
	if err := json.Unmarshal(sc.Bytes(), &first); err != nil {
		t.Fatalf("first stream line: %v", err)
	}
	if first.Event == nil {
		t.Fatalf("first stream line is not an event: %s", sc.Text())
	}
	cancel()

	select {
	case <-handlerDone:
	case <-time.After(30 * time.Second):
		t.Fatal("handler still running 30s after client disconnect; sweep not canceled")
	}
	// The abort must land mid-corpus: a handler that ignored the
	// disconnect would have enumerated (and measured) all 24 shaders
	// before returning. Enumerations run once per distinct source, so the
	// counter at handler return is the corpus progress when the sweep
	// stopped.
	enumsAtReturn := server.Telemetry().Counter("enum.runs").Value()
	if enumsAtReturn >= int64(len(sources)) {
		t.Fatalf("handler returned only after enumerating all %d shaders; disconnect did not cancel", len(sources))
	}

	// The shared session (sessions are per protocol, so the same one the
	// abort hit) must come out unharmed: a fresh client sweeping a slice
	// of the same corpus succeeds.
	c := &Client{BaseURL: ts.URL}
	got, err := c.Sweep(SweepRequest{Shaders: sources[:3], Protocol: "default"}, nil)
	if err != nil {
		t.Fatalf("follow-up sweep after aborted client: %v", err)
	}
	if len(got) != 3 {
		t.Fatalf("follow-up sweep returned %d results, want 3", len(got))
	}
}

// TestSweepdHTTPServer pins the daemon's server hardening: header reads
// are bounded (slow-loris), while read/write stay unbounded for corpus
// uploads and long-lived sweep streams.
func TestSweepdHTTPServer(t *testing.T) {
	server := New(Config{})
	srv := server.HTTPServer("127.0.0.1:0")
	if srv.ReadHeaderTimeout != DefaultReadHeaderTimeout {
		t.Errorf("ReadHeaderTimeout = %v, want %v", srv.ReadHeaderTimeout, DefaultReadHeaderTimeout)
	}
	if srv.ReadTimeout != 0 || srv.WriteTimeout != 0 {
		t.Errorf("read/write timeouts = %v/%v, want 0/0 (bodies and streams are unbounded)",
			srv.ReadTimeout, srv.WriteTimeout)
	}
	if srv.Handler == nil {
		t.Fatal("HTTPServer has no handler")
	}

	// Serve for real: normal requests work through it, and a slow-loris
	// peer is cut off once the (shortened, for test time) header window
	// expires.
	srv.ReadHeaderTimeout = 100 * time.Millisecond
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	defer srv.Close()
	base := "http://" + ln.Addr().String()

	c := &Client{BaseURL: base}
	if err := c.Health(); err != nil {
		t.Errorf("healthz through HTTPServer: %v", err)
	}

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte("POST /sweep HTTP/1.1\r\nHost: x\r\nX-Dribble: ")); err != nil {
		t.Fatal(err)
	}
	// Never finish the headers; the server must close the connection
	// instead of holding the goroutine forever.
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	buf := make([]byte, 1)
	if _, err := conn.Read(buf); err == nil {
		t.Error("slow-loris connection produced a response body byte, want close")
	} else if ne, ok := err.(net.Error); ok && ne.Timeout() {
		t.Error("slow-loris connection still open after the header timeout")
	}
}
