// Package sweepd is the sweep service: an HTTP/JSON daemon that owns one
// shared measurement Session per protocol, all layered over a single
// persistent store and reporting into a single telemetry registry, and
// serves concurrent sweep requests from thin clients.
//
// Protocol: POST /sweep with a JSON SweepRequest (shader sources plus a
// named flag protocol) answers with a chunked newline-delimited JSON
// stream — one {"event": ...} line per completed shader as the sweep
// progresses, then one final {"results": ...} line carrying every score
// (or {"error": ...}; see StreamLine). Because every session shares one
// store and one in-flight measurement table, concurrent clients with
// overlapping corpora dedupe: each distinct (vendor, source, protocol)
// measurement runs at most once, and warm restarts serve entirely from
// the store. GET /healthz answers "ok"; GET /metricz renders the shared
// telemetry registry as the same table `-metrics` prints.
//
// The daemon binary is cmd/sweepd; cmd/sweep -server <addr> is the
// matching client.
package sweepd

import (
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"sort"
	"sync"
	"time"

	"shaderopt/internal/core"
	"shaderopt/internal/gpu"
	"shaderopt/internal/harness"
	"shaderopt/internal/search"
	"shaderopt/internal/store"
	"shaderopt/internal/telemetry"
)

// ShaderSource is one shader submitted for sweeping: the raw source
// text, a study name for reporting, and an optional language ("auto",
// "glsl", "wgsl", "hlsl"; empty means auto-detect).
type ShaderSource struct {
	Name   string `json:"name"`
	Source string `json:"source"`
	Lang   string `json:"lang,omitempty"`
}

// SweepRequest is the /sweep request body.
type SweepRequest struct {
	Shaders []ShaderSource `json:"shaders"`
	// Protocol names the measurement protocol: "default" or "fast"
	// (empty means "default"). Sessions are per protocol; all share the
	// daemon's store and registry.
	Protocol string `json:"protocol,omitempty"`
}

// ShaderScores is one shader's complete sweep result: the original
// baseline and every distinct variant, per platform vendor. Variant
// hashes are the enumeration's content hashes, which a client can
// regenerate locally (enumeration is deterministic) to join scores back
// to variant sources and flag sets.
type ShaderScores struct {
	Name string `json:"name"`
	// Orig maps vendor -> measured time of the unmodified original.
	Orig map[string]float64 `json:"orig"`
	// Variants maps vendor -> variant hash -> measured time.
	Variants map[string]map[string]float64 `json:"variants"`
}

// StreamLine is one line of the /sweep response stream. Exactly one
// field is set: Event for per-shader progress, Results for the final
// payload, Error if the sweep failed (always the last line).
type StreamLine struct {
	Event   *search.SweepEvent `json:"event,omitempty"`
	Results []ShaderScores     `json:"results,omitempty"`
	Error   string             `json:"error,omitempty"`
}

// Config configures a Server.
type Config struct {
	// Store, when non-nil, is the persistent layer every session shares.
	Store *store.Store
	// Workers bounds each session's parallelism (0 = GOMAXPROCS).
	Workers int
	// Telemetry is the shared registry; nil creates a private one.
	Telemetry *telemetry.Registry
	// Platforms is the measurement roster; nil means gpu.Platforms().
	Platforms []*gpu.Platform
}

// Server owns the shared sessions and serves the sweep service. Create
// with New, mount via Handler, and on shutdown call Drain after the HTTP
// server has stopped accepting requests.
type Server struct {
	cfg Config
	reg *telemetry.Registry

	mu       sync.Mutex
	sessions map[string]*search.Session
}

// protocols maps the wire protocol names to measurement configs. A named
// protocol, not a raw config, is the wire format: the protocol is part
// of every persistent measurement key, so clients must not be able to
// submit configs that collide.
func protocols() map[string]harness.Config {
	return map[string]harness.Config{
		"default": harness.DefaultConfig(),
		"fast":    harness.FastConfig(),
	}
}

// ProtocolNames lists the protocol names /sweep accepts.
func ProtocolNames() []string {
	names := make([]string, 0, len(protocols()))
	for name := range protocols() {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// New creates a sweep server. Sessions are created lazily per protocol
// and live for the server's lifetime, so their in-memory caches and
// in-flight measurement tables are shared by every request.
func New(cfg Config) *Server {
	reg := cfg.Telemetry
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	if cfg.Platforms == nil {
		cfg.Platforms = gpu.Platforms()
	}
	return &Server{cfg: cfg, reg: reg, sessions: make(map[string]*search.Session)}
}

// Telemetry returns the server's shared registry.
func (s *Server) Telemetry() *telemetry.Registry { return s.reg }

// session returns the shared session for a named protocol.
func (s *Server) session(protocol string) (*search.Session, error) {
	if protocol == "" {
		protocol = "default"
	}
	cfg, ok := protocols()[protocol]
	if !ok {
		return nil, fmt.Errorf("unknown protocol %q (want one of %v)", protocol, ProtocolNames())
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if sess, ok := s.sessions[protocol]; ok {
		return sess, nil
	}
	sess := search.NewSession(s.cfg.Platforms, search.Options{
		Cfg:       cfg,
		Workers:   s.cfg.Workers,
		Telemetry: s.reg,
		Store:     s.cfg.Store,
	})
	s.sessions[protocol] = sess
	return sess, nil
}

// Drain finishes a graceful shutdown: with no requests left in flight
// (http.Server.Shutdown guarantees that), it syncs the store so a warm
// restart sees every completed entry.
func (s *Server) Drain() error {
	if s.cfg.Store == nil {
		return nil
	}
	return s.cfg.Store.Sync()
}

// DefaultReadHeaderTimeout bounds how long HTTPServer waits for a
// request's headers. Generous for any real client, but it means a peer
// that opens a connection and trickles header bytes (slow-loris) cannot
// pin a server goroutine indefinitely.
const DefaultReadHeaderTimeout = 10 * time.Second

// HTTPServer returns an http.Server configured for the daemon's traffic
// shape: ReadHeaderTimeout set (headers are tiny; only a hostile or
// broken client needs longer), but no overall read or write timeout —
// request bodies can carry whole corpora, and a /sweep response is a
// long-lived chunked stream whose duration is the sweep's, so blanket
// timeouts would sever legitimate clients mid-study. Disconnected
// clients are handled by cancellation instead: the server cancels the
// request context, which stops the in-flight sweep (see handleSweep).
func (s *Server) HTTPServer(addr string) *http.Server {
	return &http.Server{
		Addr:              addr,
		Handler:           s.Handler(),
		ReadHeaderTimeout: DefaultReadHeaderTimeout,
	}
}

// Handler returns the daemon's HTTP handler: POST /sweep, GET /healthz,
// GET /metricz.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/sweep", s.handleSweep)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/metricz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, s.reg.Snapshot().Table())
	})
	return mux
}

// handleSweep runs one sweep request against the shared session,
// streaming progress as newline-delimited JSON. The response status is
// always 200 once streaming starts; failures end the stream with an
// {"error": ...} line (the transport-level contract of chunked streams).
func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	var req SweepRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, fmt.Sprintf("bad request: %v", err), http.StatusBadRequest)
		return
	}
	if len(req.Shaders) == 0 {
		http.Error(w, "no shaders", http.StatusBadRequest)
		return
	}
	sess, err := s.session(req.Protocol)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	handles := make([]*core.Shader, len(req.Shaders))
	for i, sh := range req.Shaders {
		lang, err := core.ParseLang(sh.Lang)
		if err != nil {
			http.Error(w, fmt.Sprintf("shader %s: %v", sh.Name, err), http.StatusBadRequest)
			return
		}
		h, err := core.CompileT(s.reg, sh.Source, sh.Name, lang)
		if err != nil {
			http.Error(w, fmt.Sprintf("shader %s: %v", sh.Name, err), http.StatusBadRequest)
			return
		}
		handles[i] = h
	}

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	enc := json.NewEncoder(w)
	flusher, _ := w.(http.Flusher)
	var writeErr error
	emit := func(line StreamLine) {
		// Session event callbacks are serialized, and the final line is
		// emitted after Sweep returns, so writes never interleave (no
		// mutex needed). Once a write fails the client is gone: stop
		// encoding into the dead connection and let the request context
		// (which the server cancels on disconnect) stop the sweep.
		if writeErr != nil {
			return
		}
		if err := enc.Encode(line); err != nil {
			writeErr = err
			return
		}
		if flusher != nil {
			flusher.Flush()
		}
	}

	// The request context is canceled when the client disconnects (or the
	// server shuts down), so an abandoned stream stops claiming shaders
	// and starting measurement passes instead of sweeping for nobody.
	// Work other concurrent clients wait on still completes; that is
	// SweepContext's cancellation contract.
	sweep, err := sess.SweepContext(r.Context(), handles, func(ev search.SweepEvent) {
		emit(StreamLine{Event: &ev})
	})
	if err != nil {
		emit(StreamLine{Error: err.Error()})
		return
	}
	results := make([]ShaderScores, len(sweep.Results))
	for i, res := range sweep.Results {
		results[i] = ShaderScores{Name: res.Name(), Orig: res.OrigNS, Variants: res.VariantNS}
	}
	// Guard the harness boundary: a NaN or ±Inf score (a corrupted cost
	// model, a poisoned store entry) would make enc.Encode fail with
	// "json: unsupported value" — killing the stream mid-line with no
	// error line and leaving the client to diagnose a truncated read.
	// Catch it here and end the stream with a structured error instead.
	if err := validateScores(results); err != nil {
		s.reg.Counter("sweepd.nonfinite_scores").Inc()
		emit(StreamLine{Error: err.Error()})
		return
	}
	emit(StreamLine{Results: results})
}

// validateScores scans a sweep's scores for non-finite values, returning
// a diagnostic naming the first offender (in deterministic order) and
// the total count.
func validateScores(results []ShaderScores) error {
	bad := 0
	first := ""
	note := func(where string, ns float64) {
		if !math.IsNaN(ns) && !math.IsInf(ns, 0) {
			return
		}
		bad++
		if first == "" {
			first = fmt.Sprintf("%s = %v", where, ns)
		}
	}
	for _, r := range results {
		for _, vendor := range sortedKeys(r.Orig) {
			note(fmt.Sprintf("%s orig on %s", r.Name, vendor), r.Orig[vendor])
		}
		for _, vendor := range sortedKeys(r.Variants) {
			m := r.Variants[vendor]
			for _, hash := range sortedKeys(m) {
				note(fmt.Sprintf("%s variant %s on %s", r.Name, hash, vendor), m[hash])
			}
		}
	}
	if bad == 0 {
		return nil
	}
	return fmt.Errorf("sweep produced %d non-finite score(s); first: %s", bad, first)
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
