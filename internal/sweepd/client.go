package sweepd

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"

	"shaderopt/internal/search"
)

// Client is a thin sweep-service client: it submits shader sources and
// receives scores, leaving enumeration and reporting to the caller
// (variant enumeration is deterministic, so a local enumeration joins
// the returned hashes back to sources and flag sets bit-exactly).
type Client struct {
	// BaseURL is the daemon's root, e.g. "http://127.0.0.1:7077".
	BaseURL string
	// HTTPClient, when non-nil, overrides http.DefaultClient. Sweeps are
	// long-lived streams, so any timeout must be generous or absent.
	HTTPClient *http.Client
}

func (c *Client) httpClient() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

func (c *Client) url(path string) string {
	return strings.TrimRight(c.BaseURL, "/") + path
}

// drainAndClose consumes a bounded remainder of a response body before
// closing it. Closing with unread bytes buffered makes the transport
// tear down the TCP connection; draining first lets keep-alive return
// it to the pool. The limit keeps a misbehaving server from turning
// cleanup into an unbounded read — past it the connection is simply not
// reused. Every response-body path in this file must end here: the
// audit invariant is close-exactly-once on every path, early-error or
// success, so a long-lived client (the sweep CLI polling a daemon, a
// test harness looping requests) can never accumulate dead connections.
func drainAndClose(body io.ReadCloser) {
	_, _ = io.Copy(io.Discard, io.LimitReader(body, 64<<10))
	_ = body.Close()
}

// Sweep submits a sweep request and consumes the event stream, invoking
// onEvent (when non-nil) per progress line, and returns the final
// per-shader scores.
func (c *Client) Sweep(req SweepRequest, onEvent func(search.SweepEvent)) ([]ShaderScores, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	resp, err := c.httpClient().Post(c.url("/sweep"), "application/json", bytes.NewReader(body))
	if err != nil {
		return nil, fmt.Errorf("sweep request: %w", err)
	}
	defer drainAndClose(resp.Body)
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return nil, fmt.Errorf("sweep request: %s: %s", resp.Status, strings.TrimSpace(string(msg)))
	}
	dec := json.NewDecoder(resp.Body)
	for {
		var line StreamLine
		if err := dec.Decode(&line); err != nil {
			if errors.Is(err, io.EOF) {
				return nil, errors.New("sweep stream ended without a result")
			}
			return nil, fmt.Errorf("sweep stream: %w", err)
		}
		switch {
		case line.Error != "":
			return nil, fmt.Errorf("sweep failed: %s", line.Error)
		case line.Results != nil:
			return line.Results, nil
		case line.Event != nil:
			if onEvent != nil {
				onEvent(*line.Event)
			}
		}
	}
}

// Health checks /healthz.
func (c *Client) Health() error {
	resp, err := c.httpClient().Get(c.url("/healthz"))
	if err != nil {
		return err
	}
	defer drainAndClose(resp.Body)
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("healthz: %s", resp.Status)
	}
	return nil
}

// Metrics fetches the daemon's telemetry table from /metricz.
func (c *Client) Metrics() (string, error) {
	resp, err := c.httpClient().Get(c.url("/metricz"))
	if err != nil {
		return "", err
	}
	defer drainAndClose(resp.Body)
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("metricz: %s", resp.Status)
	}
	b, err := io.ReadAll(resp.Body)
	return string(b), err
}
