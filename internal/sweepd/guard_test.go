package sweepd

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"

	"shaderopt/internal/corpus"
	"shaderopt/internal/gpu"
	"shaderopt/internal/search"
)

// brokenPlatforms returns a roster whose one platform produces NaN
// scores: every measured time is CyclesPerFragment * fragments *
// NSPerFragCycle + overhead, so a NaN conversion factor poisons every
// score the harness emits — the "corrupted cost model" case the
// boundary guard exists for.
func brokenPlatforms() []*gpu.Platform {
	p := gpu.NewIntel()
	p.Cost.NSPerFragCycle = math.NaN()
	return []*gpu.Platform{p}
}

// TestSweepdNonFiniteScoresEndStreamWithError pins the harness-boundary
// guard: a sweep whose scores come out NaN must end the ndjson stream
// with a structured {"error": ...} line — not die mid-encode leaving
// the client a truncated stream — and must bump the
// sweepd.nonfinite_scores counter.
func TestSweepdNonFiniteScoresEndStreamWithError(t *testing.T) {
	server := New(Config{Platforms: brokenPlatforms()})
	ts := httptest.NewServer(server.Handler())
	defer ts.Close()

	probe := corpus.ByName(corpus.MustLoad(), "simple/luma")
	if probe == nil {
		t.Fatal("missing corpus shader simple/luma")
	}
	req := SweepRequest{
		Shaders:  []ShaderSource{{Name: probe.Name, Source: probe.Source, Lang: probe.Lang.String()}},
		Protocol: "fast",
	}
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}

	// Raw POST first: the stream-shape assertion. Every line must be
	// valid JSON (the failure mode was enc.Encode aborting mid-line),
	// the last line must be the error, and no line may carry results.
	resp, err := http.Post(ts.URL+"/sweep", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %s, want 200 (errors after streaming starts are in-band)", resp.Status)
	}
	var last StreamLine
	sc := bufio.NewScanner(resp.Body)
	lines := 0
	for sc.Scan() {
		line := sc.Bytes()
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		lines++
		last = StreamLine{}
		if err := json.Unmarshal(line, &last); err != nil {
			t.Fatalf("line %d is not valid JSON (truncated stream?): %v\n%s", lines, err, line)
		}
		if last.Results != nil {
			t.Fatalf("stream carried a results line despite non-finite scores")
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("reading stream: %v", err)
	}
	if lines == 0 {
		t.Fatal("empty stream")
	}
	if last.Error == "" {
		t.Fatalf("last stream line is not an error line: %+v", last)
	}
	if !strings.Contains(last.Error, "non-finite") {
		t.Errorf("error %q does not name the non-finite guard", last.Error)
	}

	// The client must surface the same error.
	client := &Client{BaseURL: ts.URL}
	if _, err := client.Sweep(req, nil); err == nil || !strings.Contains(err.Error(), "non-finite") {
		t.Errorf("Client.Sweep error = %v, want non-finite score failure", err)
	}

	if n := server.Telemetry().Counter("sweepd.nonfinite_scores").Value(); n < 2 {
		t.Errorf("sweepd.nonfinite_scores = %d, want >= 2 (one per request)", n)
	}
}

func TestValidateScores(t *testing.T) {
	finite := []ShaderScores{{
		Name:     "a",
		Orig:     map[string]float64{"Intel": 1000},
		Variants: map[string]map[string]float64{"Intel": {"h1": 900}},
	}}
	if err := validateScores(finite); err != nil {
		t.Errorf("finite scores rejected: %v", err)
	}
	cases := []struct {
		name string
		bad  float64
	}{
		{"nan", math.NaN()},
		{"+inf", math.Inf(1)},
		{"-inf", math.Inf(-1)},
	}
	for _, tc := range cases {
		scores := []ShaderScores{{
			Name:     "a",
			Orig:     map[string]float64{"Intel": 1000},
			Variants: map[string]map[string]float64{"Intel": {"h1": tc.bad, "h2": tc.bad}},
		}}
		err := validateScores(scores)
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), "2 non-finite") {
			t.Errorf("%s: error %q does not count both offenders", tc.name, err)
		}
		if !strings.Contains(err.Error(), "variant h1 on Intel") {
			t.Errorf("%s: error %q does not name the first offender deterministically", tc.name, err)
		}
	}
}

// countingTransport wraps a transport with a dialer that counts dials
// and tracks open connections, so tests can pin connection reuse (the
// observable benefit of draining response bodies) and the absence of
// leaked connections.
type countingTransport struct {
	*http.Transport
	dials int64
	open  int64
}

func newCountingTransport() *countingTransport {
	ct := &countingTransport{}
	ct.Transport = &http.Transport{
		DialContext: func(_ context.Context, network, addr string) (net.Conn, error) {
			c, err := net.Dial(network, addr)
			if err != nil {
				return nil, err
			}
			atomic.AddInt64(&ct.dials, 1)
			atomic.AddInt64(&ct.open, 1)
			return &countedConn{Conn: c, open: &ct.open}, nil
		},
	}
	return ct
}

type countedConn struct {
	net.Conn
	open   *int64
	closed int64
}

func (c *countedConn) Close() error {
	if atomic.CompareAndSwapInt64(&c.closed, 0, 1) {
		atomic.AddInt64(c.open, -1)
	}
	return c.Conn.Close()
}

// TestSweepdClientMalformedStreamNoLeak pins the client's response-body
// hygiene on the error path: a server that emits a valid event line and
// then garbage mid-stream must produce a "sweep stream" decode error,
// and the connection must come back to the keep-alive pool — proven by
// the next request over the same transport reusing it (one dial total)
// and by every connection closing once the pool is flushed. Before
// drainAndClose, the unread garbage made the transport tear the
// connection down (or, without a close, leak it).
func TestSweepdClientMalformedStreamNoLeak(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/sweep" {
			fmt.Fprintln(w, "ok")
			return
		}
		w.Header().Set("Content-Type", "application/x-ndjson")
		fmt.Fprintln(w, `{"event":{}}`)
		fmt.Fprintln(w, `this is not json`)
	}))
	defer ts.Close()

	ct := newCountingTransport()
	defer ct.CloseIdleConnections()
	client := &Client{BaseURL: ts.URL, HTTPClient: &http.Client{Transport: ct.Transport}}

	events := 0
	_, err := client.Sweep(SweepRequest{Shaders: []ShaderSource{{Name: "x", Source: "s"}}},
		func(search.SweepEvent) { events++ })
	if err == nil || !strings.Contains(err.Error(), "sweep stream") {
		t.Fatalf("Sweep error = %v, want sweep stream decode failure", err)
	}
	if events != 1 {
		t.Errorf("delivered %d events before the malformed line, want 1", events)
	}

	// The failed request's connection must be reusable: Health over the
	// same transport must not dial again.
	if err := client.Health(); err != nil {
		t.Fatal(err)
	}
	if n := atomic.LoadInt64(&ct.dials); n != 1 {
		t.Errorf("dials = %d, want 1 (connection not reused after stream error)", n)
	}

	// And nothing may be left open once the idle pool is flushed.
	ct.CloseIdleConnections()
	if n := atomic.LoadInt64(&ct.open); n != 0 {
		t.Errorf("%d connection(s) still open after flushing the idle pool: leaked", n)
	}
}

// TestSweepdClientReusesConnections pins keep-alive reuse on the happy
// paths: Health (whose body was never read before the drain fix) and a
// canned Sweep (whose stream has bytes after the results line) must
// both reuse one connection across repeated calls.
func TestSweepdClientReusesConnections(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case "/sweep":
			w.Header().Set("Content-Type", "application/x-ndjson")
			fmt.Fprintln(w, `{"event":{}}`)
			fmt.Fprintln(w, `{"results":[]}`)
			// Trailing bytes after the results line: the client returns
			// as soon as it decodes results, so these sit unread in the
			// buffer — exactly what drainAndClose exists to consume.
			fmt.Fprintln(w, `{"event":{}}`)
		default:
			fmt.Fprintln(w, "ok")
		}
	}))
	defer ts.Close()

	ct := newCountingTransport()
	defer ct.CloseIdleConnections()
	client := &Client{BaseURL: ts.URL, HTTPClient: &http.Client{Transport: ct.Transport}}

	for i := 0; i < 3; i++ {
		if err := client.Health(); err != nil {
			t.Fatal(err)
		}
		if _, err := client.Sweep(SweepRequest{Shaders: []ShaderSource{{Name: "x", Source: "s"}}}, nil); err != nil {
			t.Fatal(err)
		}
	}
	if n := atomic.LoadInt64(&ct.dials); n != 1 {
		t.Errorf("dials = %d across 6 requests, want 1 (bodies not drained before close)", n)
	}
}
